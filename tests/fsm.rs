//! Property tests over the Migration Enclave's session-layer state
//! machines ([`SenderFsm`] / [`ReceiverFsm`]): random event traces must
//! never reach an inconsistent state, invalid events must be rejected
//! without side effects, and crash/resume replays must converge on the
//! same released state.

use mig_core::error::MigError;
use mig_core::library::state::{MigrationData, COUNTER_SLOTS};
use mig_core::me::{ReceiverFsm, ReceiverRelease, SenderFsm, StreamProgress};
use mig_core::transfer::chunker::{ChunkAssembler, ChunkStream};
use mig_core::transfer::delta::{self, PageDigests};
use proptest::prelude::*;
use sgx_sim::machine::MachineId;
use sgx_sim::measurement::MrEnclave;

const N_CHUNKS: u32 = 4;
const CHUNK: u32 = 4096;

fn fresh_progress() -> StreamProgress {
    StreamProgress::new(
        [1; 16],
        CHUNK,
        u64::from(N_CHUNKS) * u64::from(CHUNK),
        1,
        None,
    )
}

fn data() -> MigrationData {
    MigrationData {
        counters_active: [false; COUNTER_SLOTS],
        counter_values: [0; COUNTER_SLOTS],
        msk: [9; 16],
    }
}

/// Structural invariants that must hold in *every* reachable sender
/// state, no matter the event trace.
fn assert_sender_invariants(fsm: &SenderFsm) {
    if let Some(s) = fsm.stream() {
        assert!(s.acked() <= s.n_chunks(), "acked within the stream");
        assert!(s.next_to_send() >= s.acked(), "never resend acked chunks");
        assert!(s.next_to_send() <= s.n_chunks(), "cursor within the stream");
    }
    match fsm.name() {
        "Complete" => assert!(
            fsm.stream().expect("Complete carries a stream").complete(),
            "Complete implies full cumulative ack"
        ),
        "Streaming" => assert!(
            !fsm.stream().expect("Streaming carries a stream").complete(),
            "Streaming is incomplete by construction"
        ),
        // AwaitingResume may hold a complete stream: a fully-acked
        // stream restored from a checkpoint renegotiates and resolves
        // to Stored.
        "AwaitingReceipt" | "AwaitingResume" | "Idle" | "Stored" => {}
        other => panic!("unknown state {other}"),
    }
    // Exactly the incomplete active states occupy a stream slot.
    assert_eq!(
        fsm.stream_active(),
        matches!(fsm.name(), "Streaming" | "AwaitingResume")
            && !fsm
                .stream()
                .expect("active states carry a stream")
                .complete()
    );
    // Chunks may only be granted while Streaming.
    assert_eq!(fsm.sendable_stream().is_some(), fsm.name() == "Streaming");
}

proptest! {
    /// Drives a random event trace into a `SenderFsm` and checks that
    /// (a) no inconsistent state is ever reachable, and (b) rejected
    /// events leave the machine exactly where it was.
    #[test]
    fn sender_fsm_no_invalid_state_reachable(raw in proptest::collection::vec(0u32..10_000u32, 1..80)) {
        let mut fsm = SenderFsm::Idle { stream: None };
        for v in raw {
            let before = fsm.name();
            let stream_before = fsm.stream().cloned();
            let upto = (v / 8) % (N_CHUNKS + 2); // occasionally beyond the end
            let result: Result<(), MigError> = match v % 8 {
                0 => fsm.dispatch_single_shot(),
                1 => fsm.dispatch_resume().map(|_| ()),
                2 => fsm.dispatch_announce(fresh_progress()),
                3 => fsm.on_ack(upto),
                4 => fsm.on_resume_point(upto),
                5 => fsm.on_stored().map(|_| ()),
                6 => fsm.on_delta_nack(),
                _ => {
                    fsm.reset_channel();
                    Ok(())
                }
            };
            if result.is_err() {
                prop_assert_eq!(fsm.name(), before);
                prop_assert_eq!(fsm.stream().cloned(), stream_before);
            }
            assert_sender_invariants(&fsm);
        }
    }

    /// A sender stream interrupted by arbitrary crash/reconnect cycles
    /// (each losing the unacked tail, renegotiating a resume point at
    /// or below the last ack) always converges to `Complete` once the
    /// destination acknowledges everything — and never rewinds the
    /// cumulative ack across a crash.
    #[test]
    fn sender_crash_resume_replays_converge(
        steps in proptest::collection::vec(0u32..10_000u32, 0..24)
    ) {
        let mut fsm = SenderFsm::Idle { stream: None };
        fsm.dispatch_announce(fresh_progress()).unwrap();
        for v in steps {
            let (kind, k) = (v % 3, (v / 3) % (N_CHUNKS + 1));
            match kind {
                // A cumulative ack (may be stale — acked never rewinds).
                0 => {
                    let acked_before = fsm.stream().unwrap().acked();
                    if fsm.name() == "Streaming" || fsm.name() == "AwaitingResume" || fsm.name() == "Complete" {
                        fsm.on_ack(k).unwrap();
                        prop_assert!(fsm.stream().unwrap().acked() >= acked_before);
                    }
                }
                // Crash + persisted restore: progress survives as the
                // acked prefix; the channel must be renegotiated.
                1 => {
                    let s = fsm.stream().unwrap().clone();
                    fsm = SenderFsm::Idle {
                        stream: Some(StreamProgress::restored(
                            s.nonce(), CHUNK, u64::from(N_CHUNKS) * u64::from(CHUNK), s.generation(), s.delta_base(), s.acked(),
                        )),
                    };
                    let nonce = fsm.dispatch_resume().unwrap();
                    prop_assert_eq!(nonce, [1; 16]);
                    // The destination names a resume point at or below
                    // what we already sent; modelled here as ≤ acked.
                    let point = k.min(fsm.stream().unwrap().acked());
                    fsm.on_resume_point(point).unwrap();
                }
                // Live reconnect (RETRY): same convergence guarantee.
                _ => {
                    fsm.reset_channel();
                    if fsm.stream().is_some() {
                        fsm.dispatch_resume().unwrap();
                        let point = k.min(fsm.stream().unwrap().acked());
                        fsm.on_resume_point(point).unwrap();
                    } else {
                        fsm.dispatch_announce(fresh_progress()).unwrap();
                    }
                }
            }
            assert_sender_invariants(&fsm);
        }
        // The destination eventually acknowledges the full stream.
        if fsm.name() != "Complete" {
            fsm.on_ack(N_CHUNKS).unwrap();
        }
        prop_assert_eq!(fsm.name(), "Complete");
        prop_assert_eq!(fsm.stream().unwrap().acked(), N_CHUNKS);
        prop_assert_eq!(fsm.on_stored().unwrap(), Some(1));
    }

    /// Drives a receiver through a random interleaving of valid chunks,
    /// replays/skips (rejected, no progress), and crash/restore cycles
    /// — under both restore modes, for full and delta streams — and
    /// checks the released state always equals the sender's.
    #[test]
    fn receiver_fsm_replays_converge_on_the_same_state(
        seed in any::<u8>(),
        is_delta in any::<bool>(),
        speculative in any::<bool>(),
        events in proptest::collection::vec(0u32..6u32, 0..40)
    ) {
        let base: Vec<u8> = (0..30_000u32).map(|i| (i as u8).wrapping_add(seed)).collect();
        let mut new_state = base.clone();
        new_state[7] ^= 0x5A;
        new_state[20_000] ^= 0xA5;

        let (stream, manifest, expected) = if is_delta {
            let digests = PageDigests::compute(&base, delta::PAGE_SIZE);
            let (manifest, payload) = delta::diff(&digests, 3, 4, &new_state);
            (ChunkStream::new([2; 16], 1024, payload), Some(manifest), new_state.clone())
        } else {
            (ChunkStream::new([2; 16], 1024, new_state.clone()), None, new_state.clone())
        };

        let start = |spec: bool| -> ReceiverFsm {
            match &manifest {
                Some(m) => ReceiverFsm::start_delta(
                    MachineId(1), MrEnclave([4; 32]), data(), [2; 16], 1024,
                    stream.digest(), m.clone(), Some(&base), spec,
                ).unwrap(),
                None => ReceiverFsm::start_full(
                    MachineId(1), MrEnclave([4; 32]), data(), [2; 16], 1,
                    stream.total_len(), 1024, stream.digest(), spec,
                ).unwrap(),
            }
        };
        let mut fsm = start(speculative);
        let mut spec_now = speculative;

        for e in events {
            if fsm.is_complete() {
                break;
            }
            let next = fsm.next_idx();
            match e {
                // Deliver the next chunk: always verifies and advances.
                0..=2 => {
                    let (c, m) = stream.chunk(next);
                    fsm.on_chunk(next, c, &m).unwrap();
                    prop_assert_eq!(fsm.next_idx(), next + 1);
                }
                // Replay an old chunk / skip ahead: rejected as a loss
                // artifact, progress untouched.
                3 | 4 => {
                    let idx = if e == 3 && next > 0 { next - 1 } else { next + 1 };
                    if idx < stream.n_chunks() {
                        let (c, m) = stream.chunk(idx);
                        let err = fsm.on_chunk(idx, c, &m).unwrap_err();
                        prop_assert!(matches!(err, MigError::Transfer("chunk index out of order")));
                        prop_assert_eq!(fsm.next_idx(), next);
                    }
                }
                // Crash: persist the assembler, restore (possibly with
                // the other speculation mode — a re-provisioned ME).
                _ => {
                    let assembler = ChunkAssembler::from_bytes(&fsm.assembler_bytes()).unwrap();
                    spec_now = !spec_now;
                    fsm = ReceiverFsm::restore(
                        MachineId(1), MrEnclave([4; 32]), data(), fsm.generation(),
                        assembler, manifest.clone(), Some(&base), spec_now,
                    );
                    prop_assert_eq!(fsm.next_idx(), next);
                }
            }
        }
        for idx in fsm.next_idx()..stream.n_chunks() {
            let (c, m) = stream.chunk(idx);
            fsm.on_chunk(idx, c, &m).unwrap();
        }
        prop_assert!(fsm.is_complete());
        match fsm.release(Some(&base)).unwrap() {
            ReceiverRelease::Released { state, .. } => {
                prop_assert_eq!(&state[..], &expected[..]);
            }
            ReceiverRelease::BaseMissing => prop_assert!(false, "base was supplied"),
        }
    }
}

/// The transition table itself, exercised event-by-event from every
/// state (the deterministic companion to the random traces above).
#[test]
#[allow(clippy::type_complexity)]
fn sender_transition_table_matrix() {
    type Event = (&'static str, fn(&mut SenderFsm) -> Result<(), MigError>);
    let events: Vec<Event> = vec![
        ("dispatch_single_shot", |f| f.dispatch_single_shot()),
        ("dispatch_resume", |f| f.dispatch_resume().map(|_| ())),
        ("dispatch_announce", |f| {
            f.dispatch_announce(fresh_progress())
        }),
        ("on_ack(1)", |f| f.on_ack(1)),
        ("on_resume_point(1)", |f| f.on_resume_point(1)),
        ("on_stored", |f| f.on_stored().map(|_| ())),
        ("on_delta_nack", |f| f.on_delta_nack()),
    ];
    // Builders for each reachable state.
    let states: Vec<(&'static str, fn() -> SenderFsm)> = vec![
        ("Idle", || SenderFsm::Idle { stream: None }),
        ("Idle+stream", || SenderFsm::Idle {
            stream: Some(fresh_progress()),
        }),
        ("AwaitingReceipt", || {
            let mut f = SenderFsm::Idle { stream: None };
            f.dispatch_single_shot().unwrap();
            f
        }),
        ("AwaitingResume", || {
            let mut f = SenderFsm::Idle {
                stream: Some(fresh_progress()),
            };
            f.dispatch_resume().unwrap();
            f
        }),
        ("Streaming", || {
            let mut f = SenderFsm::Idle { stream: None };
            f.dispatch_announce(fresh_progress()).unwrap();
            f
        }),
        ("Complete", || {
            let mut f = SenderFsm::Idle { stream: None };
            f.dispatch_announce(fresh_progress()).unwrap();
            f.on_ack(N_CHUNKS).unwrap();
            f
        }),
        ("Stored", || {
            let mut f = SenderFsm::Idle { stream: None };
            f.dispatch_single_shot().unwrap();
            f.on_stored().unwrap();
            f
        }),
    ];
    // Expected acceptance per (state, event): the full transition table.
    let accepts = |state: &str, event: &str| -> bool {
        matches!(
            (state, event),
            ("Idle", "dispatch_single_shot" | "dispatch_announce")
                | ("Idle+stream", "dispatch_resume")
                | ("AwaitingReceipt" | "Stored", "on_stored")
                | (
                    "AwaitingResume" | "Streaming",
                    "on_ack(1)" | "on_resume_point(1)" | "on_stored" | "on_delta_nack"
                )
                | ("Complete", "on_ack(1)" | "on_stored" | "on_delta_nack")
        )
    };
    for (sname, build) in &states {
        for (ename, apply) in &events {
            let mut fsm = build();
            let result = apply(&mut fsm);
            assert_eq!(
                result.is_ok(),
                accepts(sname, ename),
                "state {sname} × event {ename}: got {result:?}"
            );
            if result.is_err() {
                assert!(
                    matches!(
                        result,
                        Err(MigError::InvalidTransition { .. }) | Err(MigError::Protocol(_))
                    ),
                    "rejections are typed"
                );
            }
            assert_sender_invariants(&fsm);
        }
        // reset_channel is total: accepted everywhere, lands in Idle.
        let mut fsm = build();
        fsm.reset_channel();
        assert!(matches!(fsm, SenderFsm::Idle { .. }));
    }
}
