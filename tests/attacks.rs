//! Reproduction of the paper's §III attacks.
//!
//! Each attack runs twice:
//!
//! 1. against the **baseline** — persistent state protected à la
//!    Teechan/TrInX (portable KDC key + hardware monotonic counter) but
//!    migrated with a mechanism that ignores persistent state (the
//!    Gu-et-al-style memory migration of `mig_core::baseline`) — where it
//!    **succeeds**, confirming the vulnerability;
//! 2. against **this paper's framework**, where it is **blocked**, and
//!    the blocking mechanism is asserted precisely (frozen flag, stale
//!    counter detection, version mismatch).
//!
//! The §III-B Gu freeze-flag dichotomy is also reproduced: the
//! non-persisted flag admits the fork; the persisted flag prevents it but
//! forecloses ever migrating back.

use cloud_sim::machine::MachineLabels;
use mig_core::baseline::gu::FreezeFlag;
use mig_core::baseline::victim::{ops as vops, PortableVictim};
use mig_core::datacenter::Datacenter;
use mig_core::harness::{AppCtx, AppLogic};
use mig_core::library::InitRequest;
use mig_core::policy::MigrationPolicy;
use mig_core::remote_attest::{RaHello, RaResponseQuote};
use rand::rngs::StdRng;
use rand::SeedableRng;
use sgx_sim::enclave::EnclaveHandle;
use sgx_sim::ias::AttestationService;
use sgx_sim::machine::{MachineId, SgxMachine};
use sgx_sim::measurement::{EnclaveImage, EnclaveSigner};
use sgx_sim::wire::{WireReader, WireWriter};
use sgx_sim::SgxError;

fn victim_image() -> EnclaveImage {
    EnclaveImage::build(
        "attack-victim",
        1,
        b"teechan-style victim",
        &EnclaveSigner::from_seed([21; 32]),
    )
}

/// Baseline world: two bare machines + IAS, no migration framework.
struct BaselineWorld {
    ias: AttestationService,
    m1: SgxMachine,
    m2: SgxMachine,
    kdc_key: [u8; 16],
}

fn baseline_world(seed: u64) -> BaselineWorld {
    let mut rng = StdRng::seed_from_u64(seed);
    let ias = AttestationService::new(&mut rng);
    let m1 = SgxMachine::new(MachineId(1), &ias, &mut rng);
    let m2 = SgxMachine::new(MachineId(2), &ias, &mut rng);
    BaselineWorld {
        ias,
        m1,
        m2,
        kdc_key: [0xD1; 16],
    }
}

fn load_victim(w: &BaselineWorld, machine: &SgxMachine, variant: FreezeFlag) -> EnclaveHandle {
    let enclave = machine
        .load_enclave(&victim_image(), Box::new(PortableVictim::new(variant)))
        .unwrap();
    let mut req = WireWriter::new();
    req.array(&w.kdc_key).array(&w.ias.verifying_key().0);
    enclave.ecall(vops::PROVISION, &req.finish()).unwrap();
    enclave
}

/// Runs the Gu-style memory migration from `src` to `dst` (the untrusted
/// relay does the IAS conversions). Returns the sealed freeze flag if the
/// source uses the persisted variant.
fn gu_migrate(w: &BaselineWorld, src: &EnclaveHandle, dst: &EnclaveHandle) -> Option<Vec<u8>> {
    let hello_bytes = src.ecall(vops::GU_BEGIN_EXPORT, &[]).unwrap();
    let hello = RaHello::from_bytes(&hello_bytes).unwrap();
    let evidence_i = w.ias.verify_quote(&hello.quote).unwrap().to_bytes();

    let mut req = WireWriter::new();
    req.array(&hello.g_i.0).bytes(&evidence_i);
    let response_bytes = dst.ecall(vops::GU_BEGIN_IMPORT, &req.finish()).unwrap();
    let response = RaResponseQuote::from_bytes(&response_bytes).unwrap();
    let evidence_r = w.ias.verify_quote(&response.quote).unwrap().to_bytes();

    let mut req = WireWriter::new();
    req.array(&response.g_r.0).bytes(&evidence_r);
    let out = src.ecall(vops::GU_EXPORT, &req.finish()).unwrap();
    let mut r = WireReader::new(&out);
    let memory_ct = r.bytes_vec().unwrap();
    let sealed_flag = match r.u8().unwrap() {
        1 => Some(r.bytes_vec().unwrap()),
        _ => None,
    };
    r.finish().unwrap();

    dst.ecall(vops::GU_IMPORT, &memory_ct).unwrap();
    sealed_flag
}

// =======================================================================
// §III-B — Fork attack
// =======================================================================

#[test]
fn fork_attack_succeeds_against_baseline_migration() {
    let w = baseline_world(101);

    // Step 1 (start-stop-restart): the enclave persists its state with a
    // fresh counter (c = v = 1) and restarts from it on m1.
    let src = load_victim(&w, &w.m1, FreezeFlag::InMemory);
    src.ecall(vops::SET_DATA, b"channel-state-genesis").unwrap();
    let package_v1 = src.ecall(vops::PERSIST, &[]).unwrap();
    src.ecall(vops::RESTORE, &package_v1).unwrap(); // accepted: c == v == 1

    // Step 2 (migrate): memory moves to m2; persistent state does not.
    let dst = load_victim(&w, &w.m2, FreezeFlag::InMemory);
    gu_migrate(&w, &src, &dst);
    assert_eq!(
        dst.ecall(vops::GET_DATA, &[]).unwrap(),
        b"channel-state-genesis"
    );
    // The copy on m2 operates and persists with its own fresh counter c'.
    dst.ecall(vops::SET_DATA, b"channel-state-after-payments")
        .unwrap();
    dst.ecall(vops::PERSIST, &[]).unwrap();

    // Step 3 (terminate-restart on the SOURCE): the in-memory freeze flag
    // dies with the process...
    src.destroy();
    let resurrected = load_victim(&w, &w.m1, FreezeFlag::InMemory);
    assert_eq!(resurrected.ecall(vops::IS_FROZEN, &[]).unwrap(), vec![0]);
    // ...its counter (c = 1) still exists on m1; a first persist binds a
    // fresh instance... the adversary instead replays the old package.
    // Recreate the counter state by persisting once (c continues at 1
    // only for the original instance; the resurrected instance creates
    // its own) — the key point: the OLD package still validates against
    // a counter with value 1.
    resurrected.ecall(vops::SET_DATA, b"x").unwrap();
    let _ = resurrected.ecall(vops::PERSIST, &[]).unwrap(); // its c = 1
    resurrected.ecall(vops::RESTORE, &package_v1).unwrap(); // v = 1 == c = 1 ✓

    // FORK: two live enclaves with inconsistent state.
    assert_eq!(
        resurrected.ecall(vops::GET_DATA, &[]).unwrap(),
        b"channel-state-genesis"
    );
    assert_eq!(
        dst.ecall(vops::GET_DATA, &[]).unwrap(),
        b"channel-state-after-payments"
    );
}

#[test]
fn fork_attack_blocked_by_migration_framework() {
    // The same workflow over this paper's framework: after migration the
    // source's counters are destroyed and its blob is frozen, so any
    // resurrection attempt fails loudly.
    struct Victim;
    impl AppLogic for Victim {
        fn handle(
            &mut self,
            ctx: &mut AppCtx<'_, '_>,
            opcode: u32,
            input: &[u8],
        ) -> Result<Vec<u8>, SgxError> {
            match opcode {
                1 => {
                    let (id, _) = ctx.lib.create_migratable_counter(ctx.env)?;
                    Ok(vec![id])
                }
                2 => Ok(ctx
                    .lib
                    .increment_migratable_counter(ctx.env, input[0])?
                    .to_le_bytes()
                    .to_vec()),
                3 => Ok(ctx.lib.seal_migratable_data(ctx.env, b"", input)?),
                _ => Err(SgxError::InvalidParameter("opcode")),
            }
        }
    }
    let image = EnclaveImage::build("fw-victim", 1, b"code", &EnclaveSigner::from_seed([22; 32]));

    let mut dc = Datacenter::new(102);
    let policy = MigrationPolicy::same_operator_only();
    let m1 = dc.add_machine(MachineLabels::default(), &policy);
    let m2 = dc.add_machine(MachineLabels::default(), &policy);

    dc.deploy_app("src", m1, &image, Victim, InitRequest::New)
        .unwrap();
    let id = dc.call_app("src", 1, &[]).unwrap()[0];
    dc.call_app("src", 2, &[id]).unwrap();

    // Adversary snapshots the disk (pre-migration blob, frozen = 0).
    let pre_migration_disk = dc.world().machine(m1).disk.snapshot();

    dc.deploy_app("dst", m2, &image, Victim, InitRequest::Migrate)
        .unwrap();
    dc.migrate_app("src", "dst").unwrap();
    dc.call_app("dst", 2, &[id]).unwrap(); // destination operates

    // Attack 3a: restart the source from the POST-migration blob.
    let err = dc.restart_app("src", m1, &image, Victim).unwrap_err();
    assert!(
        matches!(err, SgxError::Enclave(ref m) if m.contains("frozen")),
        "post-migration blob must be frozen: {err:?}"
    );

    // Attack 3b: restart from the PRE-migration blob (frozen = 0). The
    // hardware counters were destroyed before the data left the machine
    // (§V-C), so the library detects stale state.
    dc.world().machine(m1).disk.restore(&pre_migration_disk);
    let err = dc.restart_app("src", m1, &image, Victim).unwrap_err();
    assert!(
        matches!(err, SgxError::Enclave(ref m) if m.contains("stale")),
        "pre-migration blob must be stale: {err:?}"
    );
}

// =======================================================================
// §III-B — Gu freeze-flag dichotomy
// =======================================================================

#[test]
fn gu_persisted_flag_prevents_fork_but_forecloses_migrate_back() {
    let w = baseline_world(103);

    // Persisted-flag variant: export seals the flag to disk.
    let src = load_victim(&w, &w.m1, FreezeFlag::Persisted);
    src.ecall(vops::SET_DATA, b"state").unwrap();
    let dst = load_victim(&w, &w.m2, FreezeFlag::Persisted);
    let sealed_flag = gu_migrate(&w, &src, &dst).expect("persisted variant seals the flag");

    // Fork attempt: restart the source and hand it the sealed flag (an
    // honest host does; the flag is on its disk).
    src.destroy();
    let resurrected = load_victim(&w, &w.m1, FreezeFlag::Persisted);
    resurrected
        .ecall(vops::GU_RESTORE_FLAG, &sealed_flag)
        .unwrap();
    assert_eq!(resurrected.ecall(vops::IS_FROZEN, &[]).unwrap(), vec![1]);
    let err = resurrected.ecall(vops::SET_DATA, b"fork").unwrap_err();
    assert!(matches!(err, SgxError::Enclave(ref m) if m.contains("frozen")));

    // Migrate-back attempt: m2 → m1. The returning instance on m1 is the
    // same enclave identity, so the honest host must feed it the sealed
    // flag — and it freezes. A legitimate return is indistinguishable
    // from a fork: "this would prevent the same enclave from ever being
    // migrated back to the source machine" (§III-B).
    let returning = load_victim(&w, &w.m1, FreezeFlag::Persisted);
    returning
        .ecall(vops::GU_RESTORE_FLAG, &sealed_flag)
        .unwrap();
    let response = returning.ecall(vops::GU_BEGIN_EXPORT, &[]);
    // The returning instance CAN handshake, but it is frozen for all
    // operational purposes:
    let _ = response;
    assert_eq!(returning.ecall(vops::IS_FROZEN, &[]).unwrap(), vec![1]);
    assert!(returning.ecall(vops::SET_DATA, b"resume").is_err());
}

#[test]
fn gu_in_memory_flag_is_cleared_by_restart() {
    let w = baseline_world(104);
    let src = load_victim(&w, &w.m1, FreezeFlag::InMemory);
    src.ecall(vops::SET_DATA, b"state").unwrap();
    let dst = load_victim(&w, &w.m2, FreezeFlag::InMemory);
    assert!(gu_migrate(&w, &src, &dst).is_none(), "no sealed flag");

    // The live source instance is frozen...
    assert_eq!(src.ecall(vops::IS_FROZEN, &[]).unwrap(), vec![1]);
    assert!(src.ecall(vops::SET_DATA, b"x").is_err());

    // ...but a restart clears the flag entirely: the fork door is open.
    src.destroy();
    let resurrected = load_victim(&w, &w.m1, FreezeFlag::InMemory);
    assert_eq!(resurrected.ecall(vops::IS_FROZEN, &[]).unwrap(), vec![0]);
    resurrected.ecall(vops::SET_DATA, b"forked").unwrap();
}

// =======================================================================
// §III-C — Roll-back attack
// =======================================================================

#[test]
fn rollback_attack_succeeds_against_baseline_migration() {
    let w = baseline_world(105);

    // Step 1 (start-stop-restart): persist v = 1 on m1.
    let src = load_victim(&w, &w.m1, FreezeFlag::InMemory);
    src.ecall(vops::SET_DATA, b"balance=1000").unwrap();
    let package_v1 = src.ecall(vops::PERSIST, &[]).unwrap();

    // Step 2 (continue): more activity on m1 (v = 2, 3).
    src.ecall(vops::SET_DATA, b"balance=500").unwrap();
    src.ecall(vops::PERSIST, &[]).unwrap();
    src.ecall(vops::SET_DATA, b"balance=0").unwrap();
    let package_v3 = src.ecall(vops::PERSIST, &[]).unwrap();

    // Step 3 (migrate): memory moves to m2.
    let dst = load_victim(&w, &w.m2, FreezeFlag::InMemory);
    gu_migrate(&w, &src, &dst);

    // Step 4 (terminate): the enclave persists once on m2; since no
    // counter exists there yet, a fresh one is created (c' = 1).
    dst.ecall(vops::PERSIST, &[]).unwrap();

    // Step 5 (restart with the v = 1 package): ACCEPTED, because
    // c' = v = 1. The enclave's state is rolled back three versions.
    dst.ecall(vops::RESTORE, &package_v1).unwrap();
    assert_eq!(dst.ecall(vops::GET_DATA, &[]).unwrap(), b"balance=1000");

    // Control: the *current* package v = 3 is now REJECTED on m2 — the
    // adversary has inverted freshness.
    let err = dst.ecall(vops::RESTORE, &package_v3).unwrap_err();
    assert!(matches!(err, SgxError::Enclave(ref m) if m.contains("version mismatch")));
}

#[test]
fn rollback_attack_blocked_by_migration_framework() {
    // Same discipline over migratable counters: the counter's effective
    // value travels with the enclave, so old packages stay old.
    struct Vault;
    impl AppLogic for Vault {
        fn handle(
            &mut self,
            ctx: &mut AppCtx<'_, '_>,
            opcode: u32,
            input: &[u8],
        ) -> Result<Vec<u8>, SgxError> {
            match opcode {
                1 => {
                    let (id, _) = ctx.lib.create_migratable_counter(ctx.env)?;
                    Ok(vec![id])
                }
                // persist: increment counter, seal {version, data}
                2 => {
                    let id = input[0];
                    let data = &input[1..];
                    let version = ctx.lib.increment_migratable_counter(ctx.env, id)?;
                    let mut body = WireWriter::new();
                    body.u32(version).bytes(data);
                    Ok(ctx
                        .lib
                        .seal_migratable_data(ctx.env, b"vault", &body.finish())?)
                }
                // restore: unseal, check version
                3 => {
                    let id = input[0];
                    let blob = &input[1..];
                    let (body, aad) = ctx.lib.unseal_migratable_data(ctx.env, blob)?;
                    if aad != b"vault" {
                        return Err(SgxError::Decode);
                    }
                    let mut r = WireReader::new(&body);
                    let version = r.u32()?;
                    let data = r.bytes_vec()?;
                    r.finish()?;
                    let current = ctx.lib.read_migratable_counter(ctx.env, id)?;
                    if version != current {
                        return Err(SgxError::Enclave(format!(
                            "rollback detected: {version} != {current}"
                        )));
                    }
                    Ok(data)
                }
                _ => Err(SgxError::InvalidParameter("opcode")),
            }
        }
    }
    let image = EnclaveImage::build("vault", 1, b"vault", &EnclaveSigner::from_seed([23; 32]));

    let mut dc = Datacenter::new(106);
    let policy = MigrationPolicy::same_operator_only();
    let m1 = dc.add_machine(MachineLabels::default(), &policy);
    let m2 = dc.add_machine(MachineLabels::default(), &policy);

    dc.deploy_app("src", m1, &image, Vault, InitRequest::New)
        .unwrap();
    let id = dc.call_app("src", 1, &[]).unwrap()[0];

    let persist = |dc: &mut Datacenter, instance: &str, data: &[u8]| {
        let mut input = vec![id];
        input.extend_from_slice(data);
        dc.call_app(instance, 2, &input).unwrap()
    };

    let package_v1 = persist(&mut dc, "src", b"balance=1000");
    let _v2 = persist(&mut dc, "src", b"balance=500");
    let package_v3 = persist(&mut dc, "src", b"balance=0");

    dc.deploy_app("dst", m2, &image, Vault, InitRequest::Migrate)
        .unwrap();
    dc.migrate_app("src", "dst").unwrap();

    // The migrated counter's effective value is 3: the stale v = 1
    // package is rejected on the destination...
    let mut input = vec![id];
    input.extend_from_slice(&package_v1);
    let err = dc.call_app("dst", 3, &input).unwrap_err();
    assert!(
        matches!(err, SgxError::Enclave(ref m) if m.contains("rollback detected")),
        "{err:?}"
    );

    // ...while the fresh v = 3 package is accepted.
    let mut input = vec![id];
    input.extend_from_slice(&package_v3);
    assert_eq!(dc.call_app("dst", 3, &input).unwrap(), b"balance=0");
}

// =======================================================================
// Controlled migration (R2): rogue operators
// =======================================================================

#[test]
fn migration_to_foreign_operator_machine_rejected() {
    // A machine whose ME is credentialed by a DIFFERENT operator (e.g.
    // the adversary's own datacenter) must be rejected during the
    // operator-authentication step, even though its ME runs the genuine
    // ME image on genuine hardware.
    use mig_core::host::{MeHost, ME_SERVICE};
    use mig_core::me::{me_image, ops as me_ops, MigrationEnclave};
    use mig_core::operator::CloudOperator;
    use mig_crypto::ed25519::VerifyingKey;
    use parking_lot::Mutex;
    use std::sync::Arc;

    struct Dummy;
    impl AppLogic for Dummy {
        fn handle(
            &mut self,
            ctx: &mut AppCtx<'_, '_>,
            _opcode: u32,
            input: &[u8],
        ) -> Result<Vec<u8>, SgxError> {
            Ok(ctx.lib.seal_migratable_data(ctx.env, b"", input)?)
        }
    }
    let image = EnclaveImage::build("r2-app", 1, b"code", &EnclaveSigner::from_seed([24; 32]));

    let mut dc = Datacenter::new(107);
    let policy = MigrationPolicy::same_operator_only();
    let m1 = dc.add_machine(MachineLabels::default(), &policy);
    // m2 is physically in the same world, but its ME is provisioned by a
    // rogue operator.
    let m2 = dc.world_mut().add_machine(MachineLabels::default());
    {
        let machine = dc.world().machine(m2).clone();
        let enclave = machine
            .sgx
            .load_enclave(&me_image(), Box::new(MigrationEnclave::new()))
            .unwrap();
        let pubkey = enclave.ecall(me_ops::KEYGEN, &[]).unwrap();
        let mut rng = StdRng::seed_from_u64(666);
        let rogue = CloudOperator::new(&mut rng);
        let cred = rogue.issue_credential(
            VerifyingKey(pubkey.try_into().unwrap()),
            m2,
            &MachineLabels::default(),
        );
        let mut w = WireWriter::new();
        w.bytes(&cred.to_bytes());
        w.array(&rogue.root_key().0);
        let ias_vk = dc.world().ias().verifying_key();
        w.array(&ias_vk.0);
        w.bytes(&MigrationPolicy::same_operator_only().to_bytes());
        enclave.ecall(me_ops::PROVISION, &w.finish()).unwrap();

        let endpoint = cloud_sim::network::Endpoint::new(m2, ME_SERVICE);
        let host = Arc::new(Mutex::new(MeHost::new(
            endpoint.clone(),
            enclave,
            dc.world().ias().clone(),
            dc.world().clock(),
        )));
        dc.world_mut().register_service(endpoint, host);
    }

    dc.deploy_app("src", m1, &image, Dummy, InitRequest::New)
        .unwrap();
    {
        let src = dc.app("src");
        let mut src = src.lock();
        src.migrate_to(dc.world_mut().network_mut(), m2).unwrap();
    }
    dc.run();

    // The source ME must have rejected the rogue credential; the app
    // never completes its migration.
    let me_errors = dc.me_host(m1).lock().errors.clone();
    assert!(
        me_errors
            .iter()
            .any(|e| e.contains("operator credential") || e.contains("peer authentication")),
        "expected credential rejection, got {me_errors:?}"
    );
    use mig_core::host::AppStatus;
    assert_eq!(dc.app("src").lock().status(), AppStatus::MigratingOut);
}

// =======================================================================
// MITM on the migration path
// =======================================================================

#[test]
fn tampered_transfer_is_detected_and_replay_rejected() {
    use cloud_sim::network::{Envelope, TapAction};

    struct Dummy;
    impl AppLogic for Dummy {
        fn handle(
            &mut self,
            ctx: &mut AppCtx<'_, '_>,
            _opcode: u32,
            input: &[u8],
        ) -> Result<Vec<u8>, SgxError> {
            Ok(ctx.lib.seal_migratable_data(ctx.env, b"", input)?)
        }
    }
    let image = EnclaveImage::build("mitm-app", 1, b"code", &EnclaveSigner::from_seed([25; 32]));

    let mut dc = Datacenter::new(108);
    let policy = MigrationPolicy::same_operator_only();
    let m1 = dc.add_machine(MachineLabels::default(), &policy);
    let m2 = dc.add_machine(MachineLabels::default(), &policy);

    dc.deploy_app("src", m1, &image, Dummy, InitRequest::New)
        .unwrap();
    dc.deploy_app("dst", m2, &image, Dummy, InitRequest::Migrate)
        .unwrap();

    // The adversary flips one byte of every cross-machine message body.
    dc.world_mut()
        .network_mut()
        .add_tap(Box::new(|e: &Envelope| {
            if e.from.machine != e.to.machine && !e.payload.is_empty() {
                let mut p = e.payload.clone();
                let last = p.len() - 1;
                p[last] ^= 0x01;
                TapAction::Replace(p)
            } else {
                TapAction::Deliver
            }
        }));

    let result = dc.migrate_app("src", "dst");
    assert!(result.is_err(), "tampered migration must not complete");
    // Errors were detected by MAC checks somewhere along the path.
    let src_errors = dc.me_host(m1).lock().errors.clone();
    let dst_errors = dc.me_host(m2).lock().errors.clone();
    assert!(
        !src_errors.is_empty() || !dst_errors.is_empty(),
        "some ME must report a failure"
    );
    // The destination never became ready.
    use mig_core::host::AppStatus;
    assert_eq!(dc.app("dst").lock().status(), AppStatus::AwaitingIncoming);
}

#[test]
fn recorded_protocol_messages_cannot_be_replayed() {
    use cloud_sim::network::Envelope;

    struct Dummy;
    impl AppLogic for Dummy {
        fn handle(
            &mut self,
            ctx: &mut AppCtx<'_, '_>,
            _opcode: u32,
            input: &[u8],
        ) -> Result<Vec<u8>, SgxError> {
            Ok(ctx.lib.seal_migratable_data(ctx.env, b"", input)?)
        }
    }
    let image = EnclaveImage::build(
        "replay-app",
        1,
        b"code",
        &EnclaveSigner::from_seed([26; 32]),
    );

    let mut dc = Datacenter::new(109);
    let policy = MigrationPolicy::same_operator_only();
    let m1 = dc.add_machine(MachineLabels::default(), &policy);
    let m2 = dc.add_machine(MachineLabels::default(), &policy);

    dc.deploy_app("src", m1, &image, Dummy, InitRequest::New)
        .unwrap();
    dc.deploy_app("dst", m2, &image, Dummy, InitRequest::Migrate)
        .unwrap();

    // Record everything during a legitimate migration.
    dc.world_mut().network_mut().start_recording();
    dc.migrate_app("src", "dst").unwrap();
    let log = dc.world_mut().network_mut().stop_recording();
    assert!(!log.is_empty());

    let dst_errors_before = dc.me_host(m2).lock().errors.len();
    // Replay every cross-machine message at the destination ME.
    let replays: Vec<Envelope> = log
        .iter()
        .filter(|e| e.from.machine != e.to.machine)
        .cloned()
        .collect();
    assert!(!replays.is_empty());
    for envelope in replays {
        dc.world_mut().network_mut().inject(envelope);
    }
    dc.run();

    // Every replay must have failed (channel sequence numbers) — and the
    // destination's state must be unaffected (still exactly one app,
    // Ready, with its data intact).
    let dst_errors_after = dc.me_host(m2).lock().errors.len();
    assert!(
        dst_errors_after > dst_errors_before,
        "replays must surface as errors"
    );
    use mig_core::host::AppStatus;
    assert_eq!(dc.app("dst").lock().status(), AppStatus::Ready);
}

// ---------------------------------------------------------------------
// Streaming state transfer: chunk replay / reorder / splice attacks
// ---------------------------------------------------------------------

/// A recorded chunk of a streamed state transfer cannot be replayed into
/// the destination (per-session channel sequencing), a delivery gap the
/// adversary forces is detected and survived via resume, and the chunk
/// HMAC chain + per-transfer nonce reject reordering and cross-transfer
/// splicing even below the channel layer.
#[test]
fn chunk_replay_and_reorder_attacks_blocked() {
    use cloud_sim::network::{Envelope, TapAction};
    use mig_apps::kvstore::{self, ops as kv_ops, KvStore};
    use mig_core::datacenter::ResumableOutcome;
    use mig_core::host::AppStatus;
    use mig_core::transfer::TransferConfig;
    use std::sync::atomic::{AtomicBool, AtomicUsize, Ordering};
    use std::sync::Arc;

    let image = EnclaveImage::build("chunk-kv", 1, b"kv", &EnclaveSigner::from_seed([27; 32]));
    let config = TransferConfig {
        stream_threshold: 4096,
        chunk_size: 64 * 1024,
        window: 4,
        ..TransferConfig::default()
    };
    let mut dc = Datacenter::new(110);
    let policy = MigrationPolicy::same_operator_only();
    let m1 = dc.add_machine_with_transfer(MachineLabels::default(), &policy, config);
    let m2 = dc.add_machine_with_transfer(MachineLabels::default(), &policy, config);

    // Adversary capability: drop a mid-stream chunk on demand, forcing
    // the remaining in-flight chunks to arrive out of order.
    let dropping = Arc::new(AtomicBool::new(false));
    let seen = Arc::new(AtomicUsize::new(0));
    let tap_dropping = Arc::clone(&dropping);
    let tap_seen = Arc::clone(&seen);
    dc.world_mut()
        .network_mut()
        .add_tap(Box::new(move |e: &Envelope| {
            if e.from.machine == MachineId(1)
                && e.to.machine == MachineId(2)
                && e.from.service == "me"
                && !e.payload.is_empty()
                && e.payload[0] == mig_core::host::tags::RA_TRANSFER
            {
                let n = tap_seen.fetch_add(1, Ordering::SeqCst);
                // Swallow exactly one mid-stream frame (the 4th).
                if tap_dropping.load(Ordering::SeqCst) && n == 3 {
                    tap_dropping.store(false, Ordering::SeqCst);
                    return TapAction::Drop;
                }
            }
            TapAction::Deliver
        }));

    // A ~1 MiB store → 17 chunks at 64 KiB.
    dc.deploy_app("src", m1, &image, KvStore::new(), InitRequest::New)
        .unwrap();
    dc.call_app("src", kv_ops::INIT, &[]).unwrap();
    dc.call_app(
        "src",
        kv_ops::BULK_PUT,
        &kvstore::encode_bulk_put(256, 4096, 0x33),
    )
    .unwrap();
    dc.deploy_app("dst", m2, &image, KvStore::new(), InitRequest::Migrate)
        .unwrap();

    // (1) Reorder-by-loss: one chunk vanishes mid-window, so the chunks
    // behind it arrive out of order. The channel sequencing rejects
    // them all (fail-safe: nothing out-of-order is ever installed), the
    // transfer stalls, and the operator-driven resume repairs it from
    // the last acknowledged chunk.
    dropping.store(true, Ordering::SeqCst);
    dc.world_mut().network_mut().start_recording();
    let outcome = dc.migrate_app_resumable("src", "dst").unwrap();
    let log = dc.world_mut().network_mut().stop_recording();
    assert!(
        matches!(outcome, ResumableOutcome::Stalled { .. }),
        "forced gap must stall, not corrupt: {outcome:?}"
    );
    let gap_errors = dc.me_host(m2).lock().errors.len();
    assert!(
        gap_errors > 0,
        "out-of-order chunks surface as channel errors"
    );

    dc.resume_migration("src", "dst").unwrap();
    assert_eq!(dc.app("dst").lock().status(), AppStatus::Ready);

    // (2) Replay: re-inject every recorded source→destination transfer
    // frame (ChunkStart + chunks). Every single one must be rejected —
    // the channel nonces moved on — and the migrated store must remain
    // exactly as delivered.
    let errors_before = dc.me_host(m2).lock().errors.len();
    let replays: Vec<Envelope> = log
        .iter()
        .filter(|e| {
            e.from.machine == m1
                && e.to.machine == m2
                && e.payload.first() == Some(&mig_core::host::tags::RA_TRANSFER)
        })
        .cloned()
        .collect();
    assert!(replays.len() >= 4, "captured stream frames to replay");
    let n_replays = replays.len();
    for envelope in replays {
        dc.world_mut().network_mut().inject(envelope);
    }
    dc.run();
    let errors_after = dc.me_host(m2).lock().errors.len();
    assert_eq!(
        errors_after - errors_before,
        n_replays,
        "every replayed stream frame must be rejected"
    );

    // Destination state is untouched by the attack traffic.
    let state = dc.app_bulk_state("dst").unwrap().expect("migrated state");
    dc.call_app("dst", kv_ops::LOAD, &state).unwrap();
    let len = dc.call_app("dst", kv_ops::LEN, &[]).unwrap();
    assert_eq!(u32::from_le_bytes(len[..4].try_into().unwrap()), 256);

    // (3) Defense in depth, below the channel: the HMAC chain itself
    // rejects reordering and the per-transfer nonce rejects splicing a
    // chunk from one transfer into another at the same index.
    use mig_core::transfer::chunker::{ChunkAssembler, ChunkStream};
    let payload: Vec<u8> = (0..100_000u32).map(|i| i as u8).collect();
    let xfer_a = ChunkStream::new([0xA1; 16], 4096, payload.clone());
    let xfer_b = ChunkStream::new([0xB2; 16], 4096, payload);
    let mut asm =
        ChunkAssembler::new([0xA1; 16], 4096, xfer_a.total_len(), xfer_a.digest()).unwrap();
    let (a0, a0_mac) = xfer_a.chunk(0);
    let (a1, a1_mac) = xfer_a.chunk(1);
    let (b0, b0_mac) = xfer_b.chunk(0);
    // Reorder: chunk 1 ahead of chunk 0.
    assert!(asm.accept(1, a1, &a1_mac).is_err());
    // Splice: transfer B's chunk at transfer A's position 0.
    assert!(asm.accept(0, b0, &b0_mac).is_err());
    // The genuine sequence still verifies afterwards.
    asm.accept(0, a0, &a0_mac).unwrap();
    asm.accept(1, a1, &a1_mac).unwrap();
}

// ---------------------------------------------------------------------
// Concurrent multiplexed streams: cross-stream splice / ack replay
// ---------------------------------------------------------------------

/// Splicing a valid `Chunk` frame from stream A into stream B — at any
/// layer — is rejected and quarantines only the affected stream.
///
/// Below the channel, the per-nonce HMAC chain rejects A's chunk+MAC
/// presented under B's nonce even at the matching index, and the failed
/// attempt poisons neither assembler: B's genuine sequence still
/// verifies and A is untouched. On the wire, stream frames travel
/// sealed with per-session sequence numbers, so a cross-position splice
/// of a *recorded* frame desyncs only the shared channel — never
/// installs a byte — and both multiplexed streams recover via their
/// per-nonce resume points while the destination keeps each stream's
/// verified prefix.
#[test]
fn cross_stream_chunk_splice_rejected_and_quarantined() {
    use cloud_sim::network::{Envelope, TapAction};
    use mig_apps::kvstore::{self, ops as kv_ops, KvStore};
    use mig_core::host::AppStatus;
    use mig_core::transfer::chunker::{ChunkAssembler, ChunkStream};
    use mig_core::transfer::TransferConfig;
    use parking_lot::Mutex;
    use std::sync::atomic::{AtomicUsize, Ordering};
    use std::sync::Arc;

    // --- Engine level: the per-nonce chain rejects the splice and only
    // the targeted stream is affected.
    let payload: Vec<u8> = (0..200_000u32).map(|i| (i / 7) as u8).collect();
    let xfer_a = ChunkStream::new([0xA7; 16], 4096, payload.clone());
    let xfer_b = ChunkStream::new([0xB8; 16], 4096, payload.clone());
    let mut asm_a =
        ChunkAssembler::new([0xA7; 16], 4096, xfer_a.total_len(), xfer_a.digest()).unwrap();
    let mut asm_b =
        ChunkAssembler::new([0xB8; 16], 4096, xfer_b.total_len(), xfer_b.digest()).unwrap();
    for idx in 0..xfer_a.n_chunks() {
        // At every position, A's genuine frame spliced into B fails...
        let (a_chunk, a_mac) = xfer_a.chunk(idx);
        assert!(
            asm_b.accept(idx, a_chunk, &a_mac).is_err(),
            "cross-nonce splice at index {idx} must fail the chain"
        );
        // ...while both genuine streams proceed: the rejection is
        // per-frame, the quarantine per-stream.
        let (b_chunk, b_mac) = xfer_b.chunk(idx);
        asm_b.accept(idx, b_chunk, &b_mac).unwrap();
        asm_a.accept(idx, a_chunk, &a_mac).unwrap();
    }
    assert_eq!(asm_a.finish().unwrap(), payload);
    assert_eq!(asm_b.finish().unwrap(), payload);

    // --- Wire level: two concurrent streams; the adversary replaces a
    // mid-flight frame with a recorded earlier frame (a cross-position /
    // cross-stream splice of genuine ciphertexts).
    let image_a = EnclaveImage::build("splice-a", 1, b"kv", &EnclaveSigner::from_seed([28; 32]));
    let image_b = EnclaveImage::build("splice-b", 1, b"kv", &EnclaveSigner::from_seed([29; 32]));
    let config = TransferConfig {
        stream_threshold: 4096,
        chunk_size: 64 * 1024,
        window: 4,
        ..TransferConfig::default()
    };
    let mut dc = Datacenter::new(111);
    let policy = MigrationPolicy::same_operator_only();
    let m1 = dc.add_machine_with_transfer(MachineLabels::default(), &policy, config);
    let m2 = dc.add_machine_with_transfer(MachineLabels::default(), &policy, config);

    let captured: Arc<Mutex<Vec<Vec<u8>>>> = Arc::new(Mutex::new(Vec::new()));
    let seen = Arc::new(AtomicUsize::new(0));
    {
        let captured = Arc::clone(&captured);
        let seen = Arc::clone(&seen);
        dc.world_mut()
            .network_mut()
            .add_tap(Box::new(move |e: &Envelope| {
                if e.from.machine == m1
                    && e.to.machine == m2
                    && e.from.service == "me"
                    && e.payload.first() == Some(&mig_core::host::tags::RA_TRANSFER)
                {
                    let n = seen.fetch_add(1, Ordering::SeqCst);
                    let mut log = captured.lock();
                    log.push(e.payload.clone());
                    if n == 8 {
                        // Splice: deliver frame #2's ciphertext in frame
                        // #8's slot (both are genuine stream frames).
                        return TapAction::Replace(log[2].clone());
                    }
                }
                TapAction::Deliver
            }));
    }

    for (app, dst, image, entries) in [
        ("a", "a-dst", &image_a, 512u32),
        ("b", "b-dst", &image_b, 256),
    ] {
        dc.deploy_app(app, m1, image, KvStore::new(), InitRequest::New)
            .unwrap();
        dc.call_app(app, kv_ops::INIT, &[]).unwrap();
        dc.call_app(
            app,
            kv_ops::BULK_PUT,
            &kvstore::encode_bulk_put(entries, 4096, 0x61),
        )
        .unwrap();
        dc.deploy_app(dst, m2, image, KvStore::new(), InitRequest::Migrate)
            .unwrap();
    }

    // Both migrations fire together; the splice stalls the shared
    // channel mid-flight without installing a single spliced byte.
    {
        let a = dc.app("a");
        a.lock()
            .migrate_to(dc.world_mut().network_mut(), m2)
            .unwrap();
    }
    {
        let b = dc.app("b");
        b.lock()
            .migrate_to(dc.world_mut().network_mut(), m2)
            .unwrap();
    }
    dc.run();
    assert!(
        !dc.me_host(m2).lock().errors.is_empty(),
        "the spliced frame and the frames behind it surface as MAC errors"
    );
    assert_eq!(dc.app("a-dst").lock().status(), AppStatus::AwaitingIncoming);
    assert_eq!(dc.app("b-dst").lock().status(), AppStatus::AwaitingIncoming);

    // Per-nonce recovery: one retry renegotiates both streams' resume
    // points and both payloads arrive byte-exactly.
    dc.resume_migration("a", "a-dst").unwrap();
    for (dst, entries) in [("a-dst", 512u32), ("b-dst", 256)] {
        assert_eq!(dc.app(dst).lock().status(), AppStatus::Ready, "{dst}");
        let state = dc.app_bulk_state(dst).unwrap().expect("migrated state");
        dc.call_app(dst, kv_ops::LOAD, &state).unwrap();
        let len = dc.call_app(dst, kv_ops::LEN, &[]).unwrap();
        assert_eq!(u32::from_le_bytes(len[..4].try_into().unwrap()), entries);
        let probe = dc.call_app(dst, kv_ops::GET, b"bulk-00000001").unwrap();
        let expected: Vec<u8> = (0..4096usize)
            .map(|j| 0x61u8.wrapping_add((1 + j) as u8))
            .collect();
        assert_eq!(probe, expected, "{dst} entry survives the splice attempt");
    }
}

/// Replaying a recorded `ChunkAck` across streams (or at all) is
/// rejected by the source ME and quarantines nothing: every replay
/// fails the channel sequence check, no stream's window moves, and the
/// completed migrations' retained state is unaffected.
#[test]
fn chunk_ack_replay_across_streams_rejected() {
    use cloud_sim::network::Envelope;
    use mig_apps::kvstore::{self, ops as kv_ops, KvStore};
    use mig_core::host::AppStatus;
    use mig_core::transfer::TransferConfig;

    let image_a = EnclaveImage::build("ackrep-a", 1, b"kv", &EnclaveSigner::from_seed([30; 32]));
    let image_b = EnclaveImage::build("ackrep-b", 1, b"kv", &EnclaveSigner::from_seed([31; 32]));
    let config = TransferConfig {
        stream_threshold: 4096,
        chunk_size: 64 * 1024,
        window: 4,
        ..TransferConfig::default()
    };
    let mut dc = Datacenter::new(112);
    let policy = MigrationPolicy::same_operator_only();
    let m1 = dc.add_machine_with_transfer(MachineLabels::default(), &policy, config);
    let m2 = dc.add_machine_with_transfer(MachineLabels::default(), &policy, config);

    for (app, dst, image, entries) in [
        ("a", "a-dst", &image_a, 256u32),
        ("b", "b-dst", &image_b, 128),
    ] {
        dc.deploy_app(app, m1, image, KvStore::new(), InitRequest::New)
            .unwrap();
        dc.call_app(app, kv_ops::INIT, &[]).unwrap();
        dc.call_app(
            app,
            kv_ops::BULK_PUT,
            &kvstore::encode_bulk_put(entries, 4096, 0x71),
        )
        .unwrap();
        dc.deploy_app(dst, m2, image, KvStore::new(), InitRequest::Migrate)
            .unwrap();
    }

    // Record every destination→source acknowledgement of the two
    // interleaved streams during a clean concurrent run.
    dc.world_mut().network_mut().start_recording();
    dc.migrate_apps_concurrent(&[("a", "a-dst"), ("b", "b-dst")])
        .unwrap();
    let log = dc.world_mut().network_mut().stop_recording();
    let replays: Vec<Envelope> = log
        .iter()
        .filter(|e| {
            e.from.machine == m2
                && e.to.machine == m1
                && e.payload.first() == Some(&mig_core::host::tags::RA_ACK)
        })
        .cloned()
        .collect();
    assert!(
        replays.len() > 8,
        "two interleaved streams produce many acks, got {}",
        replays.len()
    );

    // Replay them all — cumulative acks, resumes, final acks, delivery
    // confirmations — in original order and reversed (cross-stream
    // orderings included).
    let errors_before = dc.me_host(m1).lock().errors.len();
    let n_replays = replays.len() * 2;
    for envelope in replays.iter().cloned().chain(replays.iter().rev().cloned()) {
        dc.world_mut().network_mut().inject(envelope);
    }
    dc.run();
    let errors_after = dc.me_host(m1).lock().errors.len();
    assert_eq!(
        errors_after - errors_before,
        n_replays,
        "every replayed ack must be rejected by the channel sequencing"
    );

    // No stream state resurrected at the source, no status disturbed.
    for (app, dst) in [("a", "a-dst"), ("b", "b-dst")] {
        let mr = dc.app(app).lock().enclave().identity().mr_enclave;
        assert_eq!(
            dc.me_host(m1).lock().stream_progress(mr).unwrap(),
            None,
            "no retained outgoing stream reappears for {app}"
        );
        assert_eq!(dc.app(app).lock().status(), AppStatus::Migrated);
        assert_eq!(dc.app(dst).lock().status(), AppStatus::Ready);
    }
}

// ---------------------------------------------------------------------
// Delta transfer: tampered-manifest attacks
// ---------------------------------------------------------------------

/// A tampered dirty-page delta manifest is rejected *before any page is
/// applied*: out-of-range indices, reordered/duplicated indices, payload
/// truncation, a wrong base, and a flipped whole-state digest all fail
/// `delta::apply`, and a malformed wire encoding never parses (or
/// panics). The destination never installs a state reconstructed from a
/// manipulated manifest.
#[test]
fn tampered_delta_manifest_rejected_before_any_page_applied() {
    use mig_core::error::MigError;
    use mig_core::transfer::delta::{self, DeltaManifest, PageDigests};

    let base: Vec<u8> = (0..64 * 1024).map(|i| (i % 251) as u8).collect();
    let mut new = base.clone();
    new[4096 * 3] ^= 0x5A; // page 3
    new[4096 * 9 + 17] ^= 0x11; // page 9
    let digests = PageDigests::compute(&base, delta::PAGE_SIZE);
    let (manifest, payload) = delta::diff(&digests, 0, 1, &new);
    assert_eq!(manifest.dirty, vec![3, 9]);
    // The genuine delta applies.
    assert_eq!(delta::apply(&base, &manifest, &payload).unwrap(), new);

    let expect_rejected = |m: &DeltaManifest, payload: &[u8]| {
        assert!(
            matches!(delta::apply(&base, m, payload), Err(MigError::Transfer(_))),
            "tampered manifest must be rejected"
        );
    };

    // Redirect a dirty page out of range.
    let mut m = manifest.clone();
    m.dirty = vec![3, 4096];
    expect_rejected(&m, &payload);
    // Reorder the dirty list (apply would misplace pages).
    let mut m = manifest.clone();
    m.dirty = vec![9, 3];
    expect_rejected(&m, &payload);
    // Duplicate an index (double-consume the payload).
    let mut m = manifest.clone();
    m.dirty = vec![3, 3];
    expect_rejected(&m, &payload);
    // Drop a page from the manifest (payload length mismatch).
    let mut m = manifest.clone();
    m.dirty = vec![3];
    expect_rejected(&m, &payload);
    // Truncate the payload itself.
    expect_rejected(&manifest, &payload[..payload.len() - 1]);
    // Claim a different base length (apply onto the wrong snapshot).
    let mut m = manifest.clone();
    m.base_len -= 1;
    expect_rejected(&m, &payload);
    // Redirect the delta onto a different base (content mismatch).
    let mut m = manifest.clone();
    m.base_digest[0] ^= 1;
    expect_rejected(&m, &payload);
    // Flip the whole-state digest: reconstruction happens but the result
    // is discarded, never installed.
    let mut m = manifest.clone();
    m.new_digest[0] ^= 1;
    expect_rejected(&m, &payload);
    // Claim page 9 is clean while keeping its payload length: the digest
    // over the reconstruction catches the page-content swap.
    let mut m = manifest.clone();
    m.dirty = vec![3, 10];
    expect_rejected(&m, &payload);

    // Wire level: truncations never parse (or panic), and any bit-flipped
    // encoding that still parses and applies can only ever produce a
    // state hashing to the digest the manifest itself commits to — so
    // with the genuine digest, only the genuine state installs. (Flips
    // in the generation fields are caught one layer up, where the ME
    // matches them against its retained cache.)
    let bytes = manifest.to_bytes();
    for cut in 1..bytes.len() {
        assert!(DeltaManifest::from_bytes(&bytes[..bytes.len() - cut]).is_err());
    }
    for i in 0..bytes.len() {
        let mut evil = bytes.clone();
        evil[i] ^= 1;
        if let Ok(parsed) = DeltaManifest::from_bytes(&evil) {
            if let Ok(out) = delta::apply(&base, &parsed, &payload) {
                assert_eq!(
                    mig_crypto::sha256::sha256(&out),
                    parsed.new_digest,
                    "applied state must match the committed digest"
                );
                if parsed.new_digest == manifest.new_digest {
                    assert_eq!(out, new, "genuine digest admits only the genuine state");
                }
            }
        }
    }
}
