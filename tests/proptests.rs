//! Property-based tests over the full migration stack.
//!
//! These drive randomized operation sequences (increments, restarts,
//! migrations, seal/unseal cycles) through the simulated datacenter and
//! check the paper's core invariants: effective counter continuity,
//! sealed-data portability, and wire-format round-trips.

use cloud_sim::machine::MachineLabels;
use mig_core::datacenter::Datacenter;
use mig_core::harness::{AppCtx, AppLogic};
use mig_core::library::state::{LibraryState, MigrationData, COUNTER_SLOTS};
use mig_core::library::InitRequest;
use mig_core::policy::MigrationPolicy;
use mig_core::transfer::chunker::{chunk_count, ChunkAssembler, ChunkStream};
use proptest::prelude::*;
use sgx_sim::counters::CounterUuid;
use sgx_sim::measurement::{EnclaveImage, EnclaveSigner};
use sgx_sim::SgxError;

struct PropApp;

mod ops {
    pub const CREATE: u32 = 1;
    pub const INC: u32 = 2;
    pub const READ: u32 = 3;
    pub const SEAL: u32 = 4;
    pub const UNSEAL: u32 = 5;
}

impl AppLogic for PropApp {
    fn handle(
        &mut self,
        ctx: &mut AppCtx<'_, '_>,
        opcode: u32,
        input: &[u8],
    ) -> Result<Vec<u8>, SgxError> {
        match opcode {
            ops::CREATE => {
                let (id, _) = ctx.lib.create_migratable_counter(ctx.env)?;
                Ok(vec![id])
            }
            ops::INC => Ok(ctx
                .lib
                .increment_migratable_counter(ctx.env, input[0])?
                .to_le_bytes()
                .to_vec()),
            ops::READ => Ok(ctx
                .lib
                .read_migratable_counter(ctx.env, input[0])?
                .to_le_bytes()
                .to_vec()),
            ops::SEAL => Ok(ctx.lib.seal_migratable_data(ctx.env, b"p", input)?),
            ops::UNSEAL => Ok(ctx.lib.unseal_migratable_data(ctx.env, input)?.0),
            _ => Err(SgxError::InvalidParameter("opcode")),
        }
    }
}

fn image() -> EnclaveImage {
    EnclaveImage::build("prop-app", 1, b"code", &EnclaveSigner::from_seed([31; 32]))
}

/// A lifecycle event the adversary-controlled host can trigger.
#[derive(Clone, Copy, Debug)]
enum Event {
    Increment,
    Restart,
    Migrate,
}

fn event_strategy() -> impl Strategy<Value = Event> {
    prop_oneof![
        4 => Just(Event::Increment),
        1 => Just(Event::Restart),
        1 => Just(Event::Migrate),
    ]
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(12))]

    /// The effective counter value equals the number of increments, no
    /// matter how restarts and migrations interleave.
    #[test]
    fn counter_continuity_under_lifecycle_events(
        seed in 0u64..10_000,
        events in proptest::collection::vec(event_strategy(), 1..14),
    ) {
        let mut dc = Datacenter::new(seed);
        let policy = MigrationPolicy::same_operator_only();
        let machines = [
            dc.add_machine(MachineLabels::default(), &policy),
            dc.add_machine(MachineLabels::default(), &policy),
        ];
        let mut current_machine = 0usize;
        let mut generation = 0usize;
        let mut instance = format!("gen{generation}");
        dc.deploy_app(&instance, machines[0], &image(), PropApp, InitRequest::New)
            .unwrap();
        let id = dc.call_app(&instance, ops::CREATE, &[]).unwrap()[0];

        let mut expected = 0u32;
        for event in events {
            match event {
                Event::Increment => {
                    expected += 1;
                    let v = u32::from_le_bytes(
                        dc.call_app(&instance, ops::INC, &[id]).unwrap()[..4]
                            .try_into()
                            .unwrap(),
                    );
                    prop_assert_eq!(v, expected);
                }
                Event::Restart => {
                    dc.restart_app(&instance, machines[current_machine], &image(), PropApp)
                        .unwrap();
                }
                Event::Migrate => {
                    let target = 1 - current_machine;
                    generation += 1;
                    let next = format!("gen{generation}");
                    dc.deploy_app(
                        &next,
                        machines[target],
                        &image(),
                        PropApp,
                        InitRequest::Migrate,
                    )
                    .unwrap();
                    dc.migrate_app(&instance, &next).unwrap();
                    instance = next;
                    current_machine = target;
                }
            }
            // Invariant: a read always returns the exact increment count.
            let v = u32::from_le_bytes(
                dc.call_app(&instance, ops::READ, &[id]).unwrap()[..4]
                    .try_into()
                    .unwrap(),
            );
            prop_assert_eq!(v, expected);
        }
    }

    /// Migratable-sealed blobs of arbitrary content unseal identically
    /// after a migration.
    #[test]
    fn sealed_blobs_portable_across_migration(
        seed in 0u64..10_000,
        payloads in proptest::collection::vec(
            proptest::collection::vec(any::<u8>(), 0..200), 1..5),
    ) {
        let mut dc = Datacenter::new(seed);
        let policy = MigrationPolicy::same_operator_only();
        let m1 = dc.add_machine(MachineLabels::default(), &policy);
        let m2 = dc.add_machine(MachineLabels::default(), &policy);
        dc.deploy_app("src", m1, &image(), PropApp, InitRequest::New).unwrap();

        let blobs: Vec<Vec<u8>> = payloads
            .iter()
            .map(|p| dc.call_app("src", ops::SEAL, p).unwrap())
            .collect();

        dc.deploy_app("dst", m2, &image(), PropApp, InitRequest::Migrate).unwrap();
        dc.migrate_app("src", "dst").unwrap();

        for (payload, blob) in payloads.iter().zip(&blobs) {
            let pt = dc.call_app("dst", ops::UNSEAL, blob).unwrap();
            prop_assert_eq!(&pt, payload);
        }
    }

    /// Table I wire format round-trips arbitrary contents.
    #[test]
    fn migration_data_round_trips(
        active_ids in proptest::collection::btree_set(0usize..COUNTER_SLOTS, 0..20),
        values in proptest::collection::vec(any::<u32>(), COUNTER_SLOTS),
        msk in any::<[u8; 16]>(),
    ) {
        let mut data = MigrationData {
            counters_active: [false; COUNTER_SLOTS],
            counter_values: values.try_into().unwrap(),
            msk,
        };
        for id in active_ids {
            data.counters_active[id] = true;
        }
        let parsed = MigrationData::from_bytes(&data.to_bytes()).unwrap();
        prop_assert_eq!(parsed, data);
    }

    /// Table II wire format round-trips arbitrary contents, and every
    /// truncation is rejected.
    #[test]
    fn library_state_round_trips_and_rejects_truncation(
        frozen in any::<bool>(),
        active_ids in proptest::collection::btree_set(0usize..COUNTER_SLOTS, 0..10),
        offsets in proptest::collection::vec(any::<u32>(), COUNTER_SLOTS),
        msk in any::<[u8; 16]>(),
        nonce_seed in any::<u8>(),
        cut in 1usize..100,
    ) {
        let mut state = LibraryState::fresh(msk);
        state.frozen = u8::from(frozen);
        state.counter_offsets = offsets.try_into().unwrap();
        for id in &active_ids {
            state.counters_active[*id] = true;
            state.counter_uuids[*id] = CounterUuid {
                slot: *id as u8,
                nonce: [nonce_seed; 8],
            };
        }
        let bytes = state.to_bytes();
        let parsed = LibraryState::from_bytes(&bytes).unwrap();
        prop_assert_eq!(parsed, state);
        let cut = cut.min(bytes.len());
        prop_assert!(LibraryState::from_bytes(&bytes[..bytes.len() - cut]).is_err());
    }

    /// The Fig. 4 "init restore" path is idempotent: restarting any
    /// number of times preserves counters and sealed data.
    #[test]
    fn repeated_restarts_are_lossless(
        seed in 0u64..10_000,
        restarts in 1usize..5,
        increments in 1u32..6,
    ) {
        let mut dc = Datacenter::new(seed);
        let policy = MigrationPolicy::same_operator_only();
        let m1 = dc.add_machine(MachineLabels::default(), &policy);
        dc.deploy_app("app", m1, &image(), PropApp, InitRequest::New).unwrap();
        let id = dc.call_app("app", ops::CREATE, &[]).unwrap()[0];
        for _ in 0..increments {
            dc.call_app("app", ops::INC, &[id]).unwrap();
        }
        let blob = dc.call_app("app", ops::SEAL, b"durable").unwrap();

        for _ in 0..restarts {
            dc.restart_app("app", m1, &image(), PropApp).unwrap();
        }
        let v = u32::from_le_bytes(
            dc.call_app("app", ops::READ, &[id]).unwrap()[..4].try_into().unwrap(),
        );
        prop_assert_eq!(v, increments);
        prop_assert_eq!(dc.call_app("app", ops::UNSEAL, &blob).unwrap(), b"durable");
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]

    /// The streaming chunker round-trips arbitrary payloads across
    /// arbitrary chunk geometries, including a crash/persist/resume at
    /// an arbitrary chunk boundary.
    #[test]
    fn chunker_round_trips_arbitrary_sizes_and_boundaries(
        payload in proptest::collection::vec(any::<u8>(), 1..20_000),
        chunk_size in 1u32..700,
        nonce in any::<[u8; 16]>(),
        resume_frac in 0u32..=100,
    ) {
        let stream = ChunkStream::new(nonce, chunk_size, payload.clone());
        let n = stream.n_chunks();
        prop_assert_eq!(n, chunk_count(payload.len() as u64, chunk_size));
        let mut asm = ChunkAssembler::new(
            nonce,
            chunk_size,
            stream.total_len(),
            stream.digest(),
        ).unwrap();

        // Feed chunks up to an arbitrary boundary, persist, resume.
        let crash_at = n * resume_frac / 100;
        for idx in 0..crash_at {
            let (chunk, mac) = stream.chunk(idx);
            asm.accept(idx, chunk, &mac).unwrap();
        }
        let mut asm = ChunkAssembler::from_bytes(&asm.to_bytes()).unwrap();
        prop_assert_eq!(asm.next_idx(), crash_at);
        for idx in crash_at..n {
            let (chunk, mac) = stream.chunk(idx);
            asm.accept(idx, chunk, &mac).unwrap();
        }
        prop_assert!(asm.is_complete());
        prop_assert_eq!(asm.finish().unwrap(), payload);
    }

    /// Any single bit flip in any chunk payload, any index rewrite, and
    /// any cross-nonce splice breaks the digest chain.
    #[test]
    fn chunker_chain_detects_any_tamper(
        payload in proptest::collection::vec(any::<u8>(), 2..5_000),
        chunk_size in 1u32..300,
        nonce in any::<[u8; 16]>(),
        other_nonce in any::<[u8; 16]>(),
        flip_byte in any::<usize>(),
        flip_bit in 0u8..8,
    ) {
        prop_assume!(nonce != other_nonce);
        let stream = ChunkStream::new(nonce, chunk_size, payload.clone());
        let mut asm = ChunkAssembler::new(
            nonce,
            chunk_size,
            stream.total_len(),
            stream.digest(),
        ).unwrap();

        // Tampered payload at chunk 0 is rejected.
        let (chunk0, mac0) = stream.chunk(0);
        let mut evil = chunk0.to_vec();
        let i = flip_byte % evil.len();
        evil[i] ^= 1 << flip_bit;
        prop_assert!(asm.accept(0, &evil, &mac0).is_err());

        // A chunk from a different transfer nonce is rejected (splice).
        let foreign = ChunkStream::new(other_nonce, chunk_size, payload.clone());
        let (f0, fmac0) = foreign.chunk(0);
        prop_assert!(asm.accept(0, f0, &fmac0).is_err());

        // The genuine chunk still goes through afterwards: failed
        // attempts do not poison the assembler.
        asm.accept(0, chunk0, &mac0).unwrap();

        // Replay of chunk 0 (right position, already consumed) and a
        // skip ahead are both rejected.
        prop_assert!(asm.accept(0, chunk0, &mac0).is_err());
        if stream.n_chunks() > 2 {
            let (c2, m2) = stream.chunk(2);
            prop_assert!(asm.accept(2, c2, &m2).is_err());
        }
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(24))]

    /// Concurrent multi-enclave migration at the engine level: 2–4 chunk
    /// streams (one of them a dirty-page *delta* stream mixed with the
    /// full streams) interleave in an arbitrary adversary-chosen order,
    /// one assembler additionally crashes and resumes from its persisted
    /// partial state mid-interleaving — and every payload reconstructs
    /// byte-identically. Cross-stream frames can never bleed into each
    /// other: each assembler only ever sees its own nonce's chunks here,
    /// exactly the per-nonce keying the ME's stream table enforces.
    #[test]
    fn interleaved_concurrent_streams_reconstruct_every_payload(
        n_streams in 2usize..=4,
        payload_seed in any::<u8>(),
        lens in proptest::collection::vec(1usize..30_000, 4),
        chunk_size in 64u32..2_000,
        schedule in proptest::collection::vec(0usize..4, 1..400),
        crash_stream in 0usize..4,
        crash_after in 0u32..20,
        dirty_offsets in proptest::collection::vec(any::<usize>(), 1..6),
    ) {
        use mig_core::transfer::chunker::{ChunkAssembler, ChunkStream};
        use mig_core::transfer::delta::{self, PageDigests};

        // Stream 0 is a delta stream: its payload is the packed dirty
        // pages of a mutated copy of a base state.
        let base: Vec<u8> = (0..lens[0].max(delta::PAGE_SIZE as usize))
            .map(|i| (i as u8).wrapping_mul(payload_seed | 1))
            .collect();
        let mut new_state = base.clone();
        for off in &dirty_offsets {
            let i = off % new_state.len();
            new_state[i] ^= 0x5A;
        }
        let digests = PageDigests::compute(&base, delta::PAGE_SIZE);
        let (manifest, delta_payload) = delta::diff(&digests, 0, 1, &new_state);
        prop_assume!(!delta_payload.is_empty());

        // Streams 1..n are full streams with unrelated payloads.
        let mut payloads: Vec<Vec<u8>> = vec![delta_payload.clone()];
        for (i, len) in lens.iter().take(n_streams).enumerate().skip(1) {
            payloads.push(
                (0..*len)
                    .map(|j| (j as u8).wrapping_add(payload_seed).wrapping_mul(i as u8 | 1))
                    .collect(),
            );
        }

        let mut nonces = Vec::new();
        let mut streams = Vec::new();
        let mut assemblers = Vec::new();
        for (i, payload) in payloads.iter().enumerate() {
            let mut nonce = [0u8; 16];
            nonce[0] = i as u8;
            nonce[1] = payload_seed;
            let stream = ChunkStream::new(nonce, chunk_size, payload.clone());
            assemblers.push(
                ChunkAssembler::new(nonce, chunk_size, stream.total_len(), stream.digest())
                    .unwrap(),
            );
            nonces.push(nonce);
            streams.push(stream);
        }

        // Adversary-chosen interleaving: the schedule names which stream
        // makes progress next; exhausted streams round-robin onward.
        let n = payloads.len();
        let mut crashed = false;
        let step = |i: usize, assemblers: &mut Vec<ChunkAssembler>, crashed: &mut bool| {
            let idx = assemblers[i].next_idx();
            if idx >= streams[i].n_chunks() {
                return false;
            }
            // Mid-interleaving crash of one destination stream: persist,
            // drop, restore — the other streams never notice.
            if !*crashed
                && i == crash_stream % n
                && idx == crash_after.min(streams[i].n_chunks() - 1)
            {
                let blob = assemblers[i].to_bytes();
                assemblers[i] = ChunkAssembler::from_bytes(&blob).unwrap();
                assert_eq!(assemblers[i].next_idx(), idx, "resume keeps the offset");
                *crashed = true;
            }
            let (chunk, mac) = streams[i].chunk(idx);
            assemblers[i].accept(idx, chunk, &mac).unwrap();
            true
        };
        for pick in &schedule {
            step(pick % n, &mut assemblers, &mut crashed);
        }
        // Drain whatever the schedule left over, round-robin.
        loop {
            let mut progressed = false;
            for i in 0..n {
                progressed |= step(i, &mut assemblers, &mut crashed);
            }
            if !progressed {
                break;
            }
        }

        // Every payload reconstructs byte-identically...
        for (i, asm) in assemblers.drain(..).enumerate() {
            prop_assert!(asm.is_complete(), "stream {i} complete");
            let out = asm.finish().unwrap();
            prop_assert_eq!(&out, &payloads[i]);
        }
        // ...and the delta stream's payload applies onto the base to the
        // exact mutated state.
        let applied = delta::apply(&base, &manifest, &delta_payload).unwrap();
        prop_assert_eq!(applied, new_state);
    }

    /// Delta-checkpoint correctness: for any base state, any dirty-byte
    /// pattern, and any growth/shrink of the state,
    /// `apply(restore(g), delta_since(g)) == restore(latest)` — and the
    /// delta payload survives the HMAC-chained chunker unchanged.
    #[test]
    fn delta_checkpoints_reconstruct_latest(
        base in proptest::collection::vec(any::<u8>(), 1..40_000),
        dirty_offsets in proptest::collection::vec(any::<usize>(), 0..12),
        growth in proptest::collection::vec(any::<u8>(), 0..6_000),
        shrink in 0usize..6_000,
        flip in 1u8..=255,
        chunk_size in 512u32..5_000,
        nonce in any::<[u8; 16]>(),
    ) {
        use cloud_sim::disk::UntrustedDisk;
        use mig_core::transfer::checkpoint::CheckpointStore;
        use mig_core::transfer::delta;

        let store = CheckpointStore::new(UntrustedDisk::new(), "prop-delta");
        let g0 = store.put(base.clone()).unwrap();

        let mut new = base.clone();
        for off in &dirty_offsets {
            let i = off % new.len();
            new[i] ^= flip;
        }
        new.extend_from_slice(&growth);
        let keep = new.len().saturating_sub(shrink).max(1);
        new.truncate(keep);
        let g1 = store.put(new.clone()).unwrap();

        let (manifest, payload) = store.delta_since(g0).expect("both generations retained");
        prop_assert_eq!(manifest.base_generation, g0);
        prop_assert_eq!(manifest.new_generation, g1);
        prop_assert_eq!(payload.len() as u64, manifest.payload_len());

        // The reconstruction is exact.
        let applied = delta::apply(&base, &manifest, &payload).unwrap();
        prop_assert_eq!(&applied, &new);

        // The packed dirty pages stream through the chunker verbatim.
        let stream = ChunkStream::new(nonce, chunk_size, payload.clone());
        let mut asm = ChunkAssembler::new(
            nonce,
            chunk_size,
            stream.total_len(),
            stream.digest(),
        ).unwrap();
        for idx in 0..stream.n_chunks() {
            let (chunk, mac) = stream.chunk(idx);
            asm.accept(idx, chunk, &mac).unwrap();
        }
        prop_assert_eq!(asm.finish().unwrap(), payload);

        // A delta applied to the wrong base is rejected, never silently
        // wrong: flip one byte of the base inside a clean page (if any
        // page is clean, the digest check fires; if every page is dirty,
        // the base is ignored and application still succeeds).
        if new.len() == base.len() {
            let mut wrong_base = base.clone();
            wrong_base[0] ^= 1;
            match delta::apply(&wrong_base, &manifest, &payload) {
                // A dirty page over the flipped byte masks the base flip.
                Ok(out) => prop_assert_eq!(out, new),
                Err(e) => prop_assert!(matches!(e, mig_core::error::MigError::Transfer(_))),
            }
        }
    }
}
