//! End-to-end coverage of destination-side **speculative restore**
//! (`TransferConfig::speculative_restore`): the staged-prefix path and
//! the legacy unseal-after-complete path must release bit-identical
//! state for both full and dirty-page delta streams, and the
//! destination host's release-latency telemetry must be populated by
//! the final-chunk ECALL.

use cloud_sim::machine::MachineLabels;
use mig_apps::kvstore::{self, ops as kv_ops, KvStore};
use mig_core::datacenter::Datacenter;
use mig_core::library::InitRequest;
use mig_core::policy::MigrationPolicy;
use mig_core::transfer::TransferConfig;
use sgx_sim::machine::MachineId;
use sgx_sim::measurement::{EnclaveImage, EnclaveSigner};

fn image() -> EnclaveImage {
    EnclaveImage::build(
        "spec-kv",
        1,
        b"kvstore",
        &EnclaveSigner::from_seed([81; 32]),
    )
}

/// 1024 × 4 KiB values ≈ 4 MiB of sealed state: enough chunks to make
/// staging meaningful, small enough to keep the suite fast.
const BULK_COUNT: u32 = 1024;
const BULK_VALUE_LEN: u32 = 4096;

fn config(speculative: bool) -> TransferConfig {
    TransferConfig {
        stream_threshold: 64 * 1024,
        chunk_size: 256 * 1024,
        window: 4,
        speculative_restore: speculative,
        ..TransferConfig::default()
    }
}

fn dc_pair(seed: u64, speculative: bool) -> (Datacenter, MachineId, MachineId) {
    let mut dc = Datacenter::new(seed);
    let policy = MigrationPolicy::same_operator_only();
    let m1 = dc.add_machine_with_transfer(MachineLabels::default(), &policy, config(speculative));
    let m2 = dc.add_machine_with_transfer(MachineLabels::default(), &policy, config(speculative));
    (dc, m1, m2)
}

/// Runs full migration → dirty pass → repeat (delta) migration and
/// returns the two transferred snapshots, as released at each
/// destination.
fn full_then_delta_cycle(seed: u64, speculative: bool) -> (Vec<u8>, Vec<u8>) {
    let (mut dc, m1, m2) = dc_pair(seed, speculative);
    dc.deploy_app("src", m1, &image(), KvStore::new(), InitRequest::New)
        .unwrap();
    dc.call_app("src", kv_ops::INIT, &[]).unwrap();
    dc.call_app(
        "src",
        kv_ops::BULK_PUT,
        &kvstore::encode_bulk_put(BULK_COUNT, BULK_VALUE_LEN, 0x5A),
    )
    .unwrap();
    dc.deploy_app("dst", m2, &image(), KvStore::new(), InitRequest::Migrate)
        .unwrap();
    dc.migrate_app("src", "dst").unwrap();
    let full_state = dc
        .app_bulk_state("dst")
        .unwrap()
        .expect("full snapshot released at the destination");
    // The telemetry the speculative-restore benchmark reads: the final
    // chunk's ECALL released the payload.
    let latency = dc.me_host(m2).lock().release_latency();
    assert!(
        latency.is_some_and(|d| d > std::time::Duration::ZERO),
        "destination recorded a time-to-release"
    );

    // Dirty a slice of the working set at the destination and migrate
    // back: a repeat migration, shipped as a dirty-page delta.
    dc.call_app("dst", kv_ops::LOAD, &full_state).unwrap();
    dc.call_app(
        "dst",
        kv_ops::BULK_PUT,
        &kvstore::encode_bulk_put(BULK_COUNT / 64, BULK_VALUE_LEN, 0xC3),
    )
    .unwrap();
    dc.deploy_app("back", m1, &image(), KvStore::new(), InitRequest::Migrate)
        .unwrap();
    dc.migrate_app("dst", "back").unwrap();
    let delta_state = dc
        .app_bulk_state("back")
        .unwrap()
        .expect("delta snapshot released at the source machine");
    (full_state, delta_state)
}

#[test]
fn speculative_and_unseal_paths_release_identical_state() {
    // Identical seeds → identical protocol runs up to the restore
    // strategy; both modes must release byte-identical snapshots for
    // the full stream and for the dirty-page delta stream.
    let (full_spec, delta_spec) = full_then_delta_cycle(4901, true);
    let (full_unseal, delta_unseal) = full_then_delta_cycle(4901, false);
    assert_eq!(
        full_spec, full_unseal,
        "full-stream release differs between restore modes"
    );
    assert_eq!(
        delta_spec, delta_unseal,
        "delta-stream release differs between restore modes"
    );
    assert_ne!(full_spec, delta_spec, "the dirty pass changed the state");
}

#[test]
fn speculative_restore_survives_destination_me_restart() {
    // ME restarts between migrations must not break the speculative
    // path: the delta bases ride the me-state checkpoint, so the
    // repeat migration after the restart still content-verifies and
    // stages its base at announce time. (Mid-stream restarts — the
    // `ReceiverFsm::restore` re-absorb of a partially received prefix —
    // are covered by `tests/me_recovery.rs` and the session-layer unit
    // and property tests.)
    let (mut dc, m1, m2) = dc_pair(4903, true);
    dc.deploy_app("src", m1, &image(), KvStore::new(), InitRequest::New)
        .unwrap();
    dc.call_app("src", kv_ops::INIT, &[]).unwrap();
    dc.call_app(
        "src",
        kv_ops::BULK_PUT,
        &kvstore::encode_bulk_put(BULK_COUNT, BULK_VALUE_LEN, 0x77),
    )
    .unwrap();
    dc.deploy_app("dst", m2, &image(), KvStore::new(), InitRequest::Migrate)
        .unwrap();
    dc.migrate_app("src", "dst").unwrap();
    let first = dc.app_bulk_state("dst").unwrap().expect("released");

    // Persist + restart both MEs (the delta bases and, on a future
    // stream, any in-flight prefixes ride the me-state checkpoint).
    dc.persist_me(m1).unwrap();
    dc.persist_me(m2).unwrap();
    dc.restart_me(m1).unwrap();
    dc.restart_me(m2).unwrap();

    // Attested sessions are ephemeral: the apps re-attest with their
    // restarted MEs before further migration traffic.
    {
        let dst = dc.app("dst");
        dst.lock().attest_me(dc.world_mut().network_mut());
    }
    dc.run();

    // Repeat migration after the restart: the delta base was persisted
    // on both ends, so the repeat still streams (and stages) a delta.
    dc.call_app("dst", kv_ops::LOAD, &first).unwrap();
    dc.call_app(
        "dst",
        kv_ops::BULK_PUT,
        &kvstore::encode_bulk_put(8, BULK_VALUE_LEN, 0x11),
    )
    .unwrap();
    dc.deploy_app("back", m1, &image(), KvStore::new(), InitRequest::Migrate)
        .unwrap();
    dc.migrate_app("dst", "back").unwrap();
    let second = dc.app_bulk_state("back").unwrap().expect("released");
    assert_ne!(first, second);
    dc.call_app("back", kv_ops::LOAD, &second).unwrap();
    let len = dc.call_app("back", kv_ops::LEN, &[]).unwrap();
    assert_eq!(u32::from_le_bytes(len[..4].try_into().unwrap()), BULK_COUNT);
}
