//! End-to-end tests of the observability layer (`mig-trace`): the
//! deterministic per-migration trace export, the destination-side phase
//! partition, the transition-count telemetry attributed to migration
//! trace ids, and the bounded event ring buffer.

use cloud_sim::machine::MachineLabels;
use mig_apps::kvstore::{self, ops as kv_ops, KvStore};
use mig_core::datacenter::Datacenter;
use mig_core::library::InitRequest;
use mig_core::policy::MigrationPolicy;
use mig_core::transfer::chunker::chunk_count;
use mig_core::transfer::TransferConfig;
use mig_trace::{Phase, Telemetry, TraceId, EVENT_BYTES};
use sgx_sim::machine::MachineId;
use sgx_sim::measurement::{EnclaveImage, EnclaveSigner};

fn image(tag: u8) -> EnclaveImage {
    EnclaveImage::build(
        &format!("trace-kv-{tag}"),
        1,
        b"kvstore",
        &EnclaveSigner::from_seed([80 + tag; 32]),
    )
}

/// 4096 × 4 KiB values ≈ 16 MiB of sealed state.
const BULK_COUNT: u32 = 4096;
const BULK_VALUE_LEN: u32 = 4096;

fn two_machines(seed: u64, config: TransferConfig) -> (Datacenter, MachineId, MachineId) {
    let mut dc = Datacenter::new(seed);
    let policy = MigrationPolicy::same_operator_only();
    let m1 = dc.add_machine_with_transfer(MachineLabels::default(), &policy, config);
    let m2 = dc.add_machine_with_transfer(MachineLabels::default(), &policy, config);
    (dc, m1, m2)
}

/// Runs one seeded 16 MiB migration with the default 256 KiB chunk
/// geometry and returns the fleet telemetry plus the transferred state
/// length (for chunk-count arithmetic).
fn run_bulk_migration(seed: u64) -> (Telemetry, u64) {
    let (mut dc, m1, m2) = two_machines(seed, TransferConfig::default());
    dc.deploy_app("src", m1, &image(0), KvStore::new(), InitRequest::New)
        .unwrap();
    dc.call_app("src", kv_ops::INIT, &[]).unwrap();
    dc.call_app(
        "src",
        kv_ops::BULK_PUT,
        &kvstore::encode_bulk_put(BULK_COUNT, BULK_VALUE_LEN, 0x5A),
    )
    .unwrap();
    dc.deploy_app("dst", m2, &image(0), KvStore::new(), InitRequest::Migrate)
        .unwrap();
    dc.migrate_app("src", "dst").unwrap();
    let state_len = dc
        .app_bulk_state("dst")
        .unwrap()
        .expect("migrated state present")
        .len() as u64;
    let telemetry = dc.fleet_telemetry().unwrap();
    (telemetry, state_len)
}

/// The migration's trace id: the one carrying a Stream-phase span (the
/// channel-negotiation pseudo traces only carry Negotiate spans).
fn migration_trace(telemetry: &Telemetry) -> TraceId {
    let traces: Vec<TraceId> = telemetry
        .trace_ids()
        .into_iter()
        .filter(|t| {
            telemetry
                .spans_for(*t)
                .iter()
                .any(|(p, _, _)| *p == Phase::Stream)
        })
        .collect();
    assert_eq!(traces.len(), 1, "exactly one migration stream expected");
    traces[0]
}

/// Acceptance: a seeded 16 MiB migration emits a byte-identical
/// `TRACE.json` across two runs, its destination phase spans are
/// contiguous and sum to the total time-to-release, and the
/// per-migration transition counter equals the chunk count.
#[test]
fn seeded_migration_trace_is_deterministic_with_exact_spans_and_transitions() {
    let (telemetry, state_len) = run_bulk_migration(4201);
    let (repeat, _) = run_bulk_migration(4201);
    let json = telemetry.to_json();
    assert_eq!(
        json,
        repeat.to_json(),
        "same seed must export byte-identical TRACE.json"
    );
    assert!(json.starts_with('{') && json.ends_with("}\n"));

    // Destination phase partition: Announce → Stream → Stage → Release,
    // contiguous, summing to the trace's total extent — which is
    // exactly what the time-to-release histogram observed.
    let tid = migration_trace(&telemetry);
    let spans = telemetry.spans_for(tid);
    let phases: Vec<Phase> = spans.iter().map(|(p, _, _)| *p).collect();
    assert_eq!(
        phases,
        vec![Phase::Announce, Phase::Stream, Phase::Stage, Phase::Release],
        "destination-side phases in order"
    );
    for w in spans.windows(2) {
        assert_eq!(w[0].2, w[1].1, "phase partition must be contiguous");
    }
    let sum: u64 = spans.iter().map(|(_, at, end)| end - at).sum();
    let extent = spans.last().unwrap().2 - spans[0].1;
    assert_eq!(sum, extent, "span durations sum to the migration extent");
    assert!(sum > 0, "a 16 MiB stream takes nonzero virtual time");
    let ttr = telemetry
        .histograms
        .get("me.time_to_release_ns")
        .expect("time-to-release histogram populated");
    assert_eq!(ttr.n, 1);
    assert_eq!(ttr.sum, extent, "histogram observed the same quantity");

    // Transition telemetry: the destination handles exactly one
    // chain-verified TRANSFER ECALL per chunk, the source one ACK ECALL
    // per cumulative chunk ack — both attributed to the migration's
    // trace id, so the per-trace tally is 2× the chunk count.
    let chunks = u64::from(chunk_count(state_len, TransferConfig::default().chunk_size));
    assert_eq!(chunks, 66, "16.8 MiB sealed state at 256 KiB per chunk");
    let per_trace = telemetry
        .transitions
        .by_trace
        .get(&tid)
        .expect("transitions attributed to the migration trace");
    assert_eq!(
        per_trace.ecalls,
        2 * chunks,
        "one destination TRANSFER + one source ACK ECALL per chunk"
    );
    assert!(
        telemetry.transitions.total.ecalls > per_trace.ecalls,
        "fleet total includes attestation and lifecycle ECALLs"
    );

    // Counters crossed the TELEMETRY ECALL: the source sealed every
    // chunk once, the destination chain-verified every chunk.
    assert_eq!(telemetry.counters.get("me.chunks_sealed"), Some(&chunks));
    assert_eq!(telemetry.counters.get("me.chunks_received"), Some(&chunks));
    assert_eq!(telemetry.counters.get("me.announcements"), Some(&1));

    // Chunk RTTs were observed on the source side.
    let rtt = telemetry
        .histograms
        .get("me.chunk_rtt_ns")
        .expect("chunk RTT histogram populated");
    assert!(rtt.n > 0 && rtt.mean() > 0.0);

    // And a Negotiate span covered the ME↔ME channel establishment.
    assert!(
        telemetry.trace_ids().iter().any(|t| telemetry
            .spans_for(*t)
            .iter()
            .any(|(p, at, end)| *p == Phase::Negotiate && end > at)),
        "channel negotiation span recorded"
    );
}

/// k = 4 concurrent migrations on one link: every recorder stays within
/// its byte budget, the per-nonce traces stay separate, and the merged
/// fleet export remains deterministic.
#[test]
fn concurrent_migrations_keep_ring_buffer_bounded_and_traces_separate() {
    let run = |seed: u64| {
        let config = TransferConfig {
            stream_threshold: 4096,
            chunk_size: 16 * 1024,
            window: 4,
            ..TransferConfig::default()
        };
        let (mut dc, m1, m2) = two_machines(seed, config);
        for i in 0..4u8 {
            let src = format!("src-{i}");
            let dst = format!("dst-{i}");
            dc.deploy_app(&src, m1, &image(i), KvStore::new(), InitRequest::New)
                .unwrap();
            dc.call_app(&src, kv_ops::INIT, &[]).unwrap();
            dc.call_app(
                &src,
                kv_ops::BULK_PUT,
                &kvstore::encode_bulk_put(64 + u32::from(i) * 16, 4096, 0x30 + i),
            )
            .unwrap();
            dc.deploy_app(&dst, m2, &image(i), KvStore::new(), InitRequest::Migrate)
                .unwrap();
        }
        dc.migrate_apps_concurrent(&[
            ("src-0", "dst-0"),
            ("src-1", "dst-1"),
            ("src-2", "dst-2"),
            ("src-3", "dst-3"),
        ])
        .unwrap();

        // Per-machine ring-buffer bound (the fleet view cannot exceed
        // the per-recorder budgets either).
        for machine in [m1, m2] {
            let host = dc.me_host(machine);
            let t = host.lock().telemetry().unwrap();
            assert!(
                t.events.len() * EVENT_BYTES <= mig_trace::DEFAULT_RECORDER_BUDGET,
                "machine {} recorder exceeded its byte budget",
                machine.0
            );
        }
        dc.fleet_telemetry().unwrap()
    };

    let telemetry = run(4202);
    // Four distinct migration streams, each with its own full phase
    // partition.
    let stream_traces: Vec<TraceId> = telemetry
        .trace_ids()
        .into_iter()
        .filter(|t| {
            telemetry
                .spans_for(*t)
                .iter()
                .any(|(p, _, _)| *p == Phase::Stream)
        })
        .collect();
    assert_eq!(stream_traces.len(), 4, "one trace per concurrent stream");
    for t in &stream_traces {
        let phases: Vec<Phase> = telemetry.spans_for(*t).iter().map(|(p, _, _)| *p).collect();
        assert_eq!(
            phases,
            vec![Phase::Announce, Phase::Stream, Phase::Stage, Phase::Release],
            "every stream carries the full phase partition"
        );
    }
    assert_eq!(
        telemetry
            .histograms
            .get("me.time_to_release_ns")
            .map(|h| h.n),
        Some(4)
    );

    // The concurrent interleaving is deterministic too.
    assert_eq!(telemetry.to_json(), run(4202).to_json());
}

/// Regression (observability attribution leak): TELEMETRY exports,
/// STREAM_STAT progress probes, and LINK_STAT window probes issued
/// **while the chunk stream is in flight** must not be attributed to
/// the migration's trace. The world is pumped one message at a time
/// with all three polls fired every few deliveries; the per-trace
/// transition tally still comes out at exactly one destination
/// TRANSFER plus one source ACK ECALL per chunk, as if the host had
/// never polled.
#[test]
fn mid_stream_observability_polls_never_inflate_per_trace_transitions() {
    let (mut dc, m1, m2) = two_machines(4204, TransferConfig::default());
    dc.deploy_app("src", m1, &image(0), KvStore::new(), InitRequest::New)
        .unwrap();
    dc.call_app("src", kv_ops::INIT, &[]).unwrap();
    dc.call_app(
        "src",
        kv_ops::BULK_PUT,
        &kvstore::encode_bulk_put(BULK_COUNT, BULK_VALUE_LEN, 0x5A),
    )
    .unwrap();
    dc.deploy_app("dst", m2, &image(0), KvStore::new(), InitRequest::Migrate)
        .unwrap();

    let mr = dc.app("src").lock().enclave().identity().mr_enclave;
    let dst_machine = dc.app_machine("dst");
    let src = dc.app("src");
    src.lock()
        .migrate_to(dc.world_mut().network_mut(), dst_machine)
        .unwrap();

    let mut steps = 0u64;
    let mut polls = 0u32;
    while dc.world_mut().step() {
        steps += 1;
        if steps.is_multiple_of(5) {
            dc.fleet_telemetry().unwrap();
            dc.me_host(m1).lock().stream_progress(mr).unwrap();
            dc.me_host(m1).lock().link_state(m2).unwrap();
            polls += 1;
        }
    }
    assert!(
        polls > 10,
        "a 16 MiB stream must leave room for many mid-stream polls (got {polls})"
    );

    let state_len = dc
        .app_bulk_state("dst")
        .unwrap()
        .expect("migration released despite mid-stream polling")
        .len() as u64;
    let chunks = u64::from(chunk_count(state_len, TransferConfig::default().chunk_size));
    let telemetry = dc.fleet_telemetry().unwrap();
    assert_eq!(telemetry.counters.get("me.chunks_received"), Some(&chunks));

    let tid = migration_trace(&telemetry);
    let per_trace = telemetry.transitions.by_trace.get(&tid).unwrap();
    assert_eq!(
        per_trace.ecalls,
        2 * chunks,
        "observability polls leaked into the migration's transition tally"
    );
}

/// The timeline rendering covers every migration trace (smoke — the
/// exact format is pinned down by mig-trace's unit tests).
#[test]
fn timeline_renders_every_trace() {
    let (telemetry, _) = run_bulk_migration(4203);
    let timeline = telemetry.render_timeline();
    for t in telemetry.trace_ids() {
        assert!(
            timeline.contains(&mig_trace::hex8(&t)),
            "timeline must mention trace {}",
            mig_trace::hex8(&t)
        );
    }
    assert!(timeline.contains("release"), "phases are spelled out");
}
