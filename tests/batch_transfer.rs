//! Adversarial end-to-end tests of the hot-call batched TRANSFER path:
//! a `TRANSFER_BATCH` container carries many sealed cells through one
//! enclave transition, so every attack that used to target individual
//! `RA_TRANSFER` frames gets re-run against the container — tampering
//! inside a batch, replaying whole containers, truncating one mid-cell,
//! downgrade negotiation with a batch-incapable peer, and an ME crash
//! while a batch is partially acknowledged.

use cloud_sim::machine::MachineLabels;
use cloud_sim::network::{Envelope, TapAction};
use mig_apps::kvstore::{self, ops as kv_ops, KvStore};
use mig_core::datacenter::{Datacenter, ResumableOutcome};
use mig_core::host::{tags, AppStatus};
use mig_core::library::InitRequest;
use mig_core::policy::MigrationPolicy;
use mig_core::transfer::TransferConfig;
use sgx_sim::machine::MachineId;
use sgx_sim::measurement::{EnclaveImage, EnclaveSigner};
use std::sync::atomic::{AtomicBool, AtomicUsize, Ordering};
use std::sync::Arc;

fn image() -> EnclaveImage {
    EnclaveImage::build(
        "batch-kv",
        1,
        b"kvstore",
        &EnclaveSigner::from_seed([75; 32]),
    )
}

/// 512 × 4 KiB values ≈ 2.2 MiB of sealed state → ~35 chunks at 64 KiB,
/// shipped as ~9 containers of up to 4 cells.
const BULK_COUNT: u32 = 512;
const BULK_VALUE_LEN: u32 = 4096;
const BULK_FILL: u8 = 0x5C;

fn batched_config() -> TransferConfig {
    TransferConfig {
        stream_threshold: 4096,
        chunk_size: 64 * 1024,
        window: 8,
        max_window: 8,
        batch_size: 4,
        seal_lanes: 2,
        ..TransferConfig::default()
    }
}

fn dc_with_configs(
    seed: u64,
    src_config: TransferConfig,
    dst_config: TransferConfig,
) -> (Datacenter, MachineId, MachineId) {
    let mut dc = Datacenter::new(seed);
    let policy = MigrationPolicy::same_operator_only();
    let m1 = dc.add_machine_with_transfer(MachineLabels::default(), &policy, src_config);
    let m2 = dc.add_machine_with_transfer(MachineLabels::default(), &policy, dst_config);
    (dc, m1, m2)
}

fn deploy_loaded_pair(dc: &mut Datacenter, m1: MachineId, m2: MachineId) {
    dc.deploy_app("src", m1, &image(), KvStore::new(), InitRequest::New)
        .unwrap();
    dc.call_app("src", kv_ops::INIT, &[]).unwrap();
    dc.call_app(
        "src",
        kv_ops::BULK_PUT,
        &kvstore::encode_bulk_put(BULK_COUNT, BULK_VALUE_LEN, BULK_FILL),
    )
    .unwrap();
    dc.deploy_app("dst", m2, &image(), KvStore::new(), InitRequest::Migrate)
        .unwrap();
}

fn verify_destination(dc: &mut Datacenter) {
    let state = dc
        .app_bulk_state("dst")
        .unwrap()
        .expect("migrated bulk state present");
    dc.call_app("dst", kv_ops::LOAD, &state).unwrap();
    let len = dc.call_app("dst", kv_ops::LEN, &[]).unwrap();
    assert_eq!(u32::from_le_bytes(len[..4].try_into().unwrap()), BULK_COUNT);
    for i in [0u32, 1, BULK_COUNT / 2, BULK_COUNT - 1] {
        let key = format!("bulk-{i:08}");
        let value = dc.call_app("dst", kv_ops::GET, key.as_bytes()).unwrap();
        let expected: Vec<u8> = (0..BULK_VALUE_LEN as usize)
            .map(|j| BULK_FILL.wrapping_add((i as usize + j) as u8))
            .collect();
        assert_eq!(value, expected, "entry {key} corrupted in transit");
    }
}

/// A flipped byte inside one cell of a mid-stream container: the cells
/// before it verify and install (the verified prefix), nothing at or
/// after the tampered cell is ever installed, the stream stalls instead
/// of corrupting, and the per-nonce resume repairs it. Afterwards,
/// replaying every recorded container is a no-op: the channel sequence
/// numbers moved on, so no replayed cell verifies and the destination
/// counters and state stay untouched.
#[test]
fn tampered_cell_mid_batch_keeps_verified_prefix_and_replay_is_inert() {
    let (mut dc, m1, m2) = dc_with_configs(1701, batched_config(), batched_config());

    let seen = Arc::new(AtomicUsize::new(0));
    let tampering = Arc::new(AtomicBool::new(false));
    {
        let seen = Arc::clone(&seen);
        let tampering = Arc::clone(&tampering);
        dc.world_mut()
            .network_mut()
            .add_tap(Box::new(move |e: &Envelope| {
                if e.from.machine == m1
                    && e.to.machine == m2
                    && e.from.service == "me"
                    && e.payload.first() == Some(&tags::RA_TRANSFER_BATCH)
                {
                    let n = seen.fetch_add(1, Ordering::SeqCst);
                    if tampering.load(Ordering::SeqCst) && n == 2 {
                        // Flip one ciphertext byte inside the third
                        // container's first cell (the frame is
                        // [tag][u32 len][u32 count][u32 cell0-len]
                        // [cell0…], so offset 45 is cell payload —
                        // containers pad to uniform size, so a flip
                        // near the tail could land in inert padding).
                        let mut payload = e.payload.clone();
                        payload[45] ^= 1;
                        return TapAction::Replace(payload);
                    }
                }
                TapAction::Deliver
            }));
    }

    deploy_loaded_pair(&mut dc, m1, m2);
    tampering.store(true, Ordering::SeqCst);
    dc.world_mut().network_mut().start_recording();
    let outcome = dc.migrate_app_resumable("src", "dst").unwrap();
    let log = dc.world_mut().network_mut().stop_recording();
    let ResumableOutcome::Stalled { progress } = outcome else {
        panic!("tampered container must stall the stream, got {outcome:?}");
    };
    let (acked, total) = progress.expect("stream progress available");
    assert!(
        acked < total,
        "the tail behind the tampered cell must stay unacknowledged: {acked}/{total}"
    );
    assert!(
        seen.load(Ordering::SeqCst) >= 3,
        "the stream actually travelled in containers"
    );

    // Per-nonce resume repairs the stream from the last acked chunk.
    tampering.store(false, Ordering::SeqCst);
    dc.resume_migration("src", "dst").unwrap();
    assert_eq!(dc.app("dst").lock().status(), AppStatus::Ready);
    verify_destination(&mut dc);

    // Replay every recorded container at the destination. The channel
    // nonces moved on: no cell verifies, nothing is installed, and the
    // chunk counters do not move.
    let telemetry = dc.fleet_telemetry().unwrap();
    let chunks_before = telemetry.counters.get("me.chunks_received").copied();
    let replays: Vec<Envelope> = log
        .iter()
        .filter(|e| {
            e.from.machine == m1
                && e.to.machine == m2
                && e.payload.first() == Some(&tags::RA_TRANSFER_BATCH)
        })
        .cloned()
        .collect();
    assert!(!replays.is_empty(), "captured containers to replay");
    for envelope in replays {
        dc.world_mut().network_mut().inject(envelope);
    }
    dc.run();
    let telemetry = dc.fleet_telemetry().unwrap();
    assert_eq!(
        telemetry.counters.get("me.chunks_received").copied(),
        chunks_before,
        "replayed containers must not install a single chunk"
    );
    verify_destination(&mut dc);
}

/// A container truncated mid-cell is rejected by the untrusted-framing
/// check **before any AEAD work**: the ECALL errors out, no channel
/// sequence number is consumed by the malformed container, the stream
/// stalls fail-safe, and resume completes the migration.
#[test]
fn batch_truncated_mid_cell_rejected_before_aead() {
    let (mut dc, m1, m2) = dc_with_configs(1702, batched_config(), batched_config());

    let seen = Arc::new(AtomicUsize::new(0));
    let truncating = Arc::new(AtomicBool::new(false));
    {
        let seen = Arc::clone(&seen);
        let truncating = Arc::clone(&truncating);
        dc.world_mut()
            .network_mut()
            .add_tap(Box::new(move |e: &Envelope| {
                if e.from.machine == m1
                    && e.to.machine == m2
                    && e.from.service == "me"
                    && e.payload.first() == Some(&tags::RA_TRANSFER_BATCH)
                {
                    let n = seen.fetch_add(1, Ordering::SeqCst);
                    if truncating.load(Ordering::SeqCst) && n == 1 {
                        // Blow up the first cell's length field in
                        // place: the outer frame stays well-formed (so
                        // it reaches the enclave), but the container
                        // now truncates mid-cell.
                        let mut payload = e.payload.clone();
                        payload[9..13].copy_from_slice(&u32::MAX.to_le_bytes());
                        return TapAction::Replace(payload);
                    }
                }
                TapAction::Deliver
            }));
    }

    deploy_loaded_pair(&mut dc, m1, m2);
    truncating.store(true, Ordering::SeqCst);
    let outcome = dc.migrate_app_resumable("src", "dst").unwrap();
    assert!(
        matches!(outcome, ResumableOutcome::Stalled { .. }),
        "truncated container must stall, not corrupt: {outcome:?}"
    );
    let errors = dc.me_host(m2).lock().errors.clone();
    assert!(
        errors.iter().any(|e| e.contains("ra transfer batch")),
        "the malformed container surfaces as a TRANSFER_BATCH ECALL error: {errors:?}"
    );

    truncating.store(false, Ordering::SeqCst);
    dc.resume_migration("src", "dst").unwrap();
    assert_eq!(dc.app("dst").lock().status(), AppStatus::Ready);
    verify_destination(&mut dc);
}

/// Mixed fleet: a batch-capable source negotiating with a peer
/// provisioned at `batch_size: 1` falls back to the per-frame path —
/// zero containers on the wire, zero `me.batches_sealed` — and the
/// migration still completes byte-exactly.
#[test]
fn mixed_peers_negotiate_down_to_per_frame_path() {
    let legacy = TransferConfig {
        batch_size: 1,
        seal_lanes: 1,
        ..batched_config()
    };
    let (mut dc, m1, m2) = dc_with_configs(1703, batched_config(), legacy);

    let batch_frames = Arc::new(AtomicUsize::new(0));
    let single_frames = Arc::new(AtomicUsize::new(0));
    {
        let batch_frames = Arc::clone(&batch_frames);
        let single_frames = Arc::clone(&single_frames);
        dc.world_mut()
            .network_mut()
            .add_tap(Box::new(move |e: &Envelope| {
                if e.from.machine == m1 && e.to.machine == m2 && e.from.service == "me" {
                    match e.payload.first() {
                        Some(&tags::RA_TRANSFER_BATCH) => {
                            batch_frames.fetch_add(1, Ordering::SeqCst);
                        }
                        Some(&tags::RA_TRANSFER) => {
                            single_frames.fetch_add(1, Ordering::SeqCst);
                        }
                        _ => {}
                    }
                }
                TapAction::Deliver
            }));
    }

    deploy_loaded_pair(&mut dc, m1, m2);
    dc.migrate_app("src", "dst").unwrap();

    assert_eq!(
        batch_frames.load(Ordering::SeqCst),
        0,
        "a batch-size-1 peer must never be sent a container"
    );
    assert!(
        single_frames.load(Ordering::SeqCst) > 30,
        "the stream fell back to one frame per chunk"
    );
    let telemetry = dc.fleet_telemetry().unwrap();
    assert_eq!(telemetry.counters.get("me.batches_sealed"), Some(&0));
    assert_eq!(telemetry.counters.get("me.batches_received"), Some(&0));
    verify_destination(&mut dc);
}

/// Source-ME crash while the container stream is partially acknowledged:
/// the durable checkpoint retains the per-chunk progress, the restarted
/// ME renegotiates (fresh channel, fresh batch negotiation), and the
/// resumed stream ships only the missing chunks — still in containers.
#[test]
fn me_crash_resumes_from_partially_acked_batch() {
    let (mut dc, m1, m2) = dc_with_configs(1704, batched_config(), batched_config());

    let seen = Arc::new(AtomicUsize::new(0));
    let dropping = Arc::new(AtomicBool::new(false));
    let resumed_batches = Arc::new(AtomicUsize::new(0));
    let counting_resume = Arc::new(AtomicBool::new(false));
    {
        let seen = Arc::clone(&seen);
        let dropping = Arc::clone(&dropping);
        let resumed_batches = Arc::clone(&resumed_batches);
        let counting_resume = Arc::clone(&counting_resume);
        dc.world_mut()
            .network_mut()
            .add_tap(Box::new(move |e: &Envelope| {
                if e.from.machine == m1
                    && e.to.machine == m2
                    && e.from.service == "me"
                    && e.payload.first() == Some(&tags::RA_TRANSFER_BATCH)
                {
                    if counting_resume.load(Ordering::SeqCst) {
                        resumed_batches.fetch_add(1, Ordering::SeqCst);
                    }
                    // Let two containers through, then cut the cable.
                    let n = seen.fetch_add(1, Ordering::SeqCst);
                    if dropping.load(Ordering::SeqCst) && n >= 2 {
                        return TapAction::Drop;
                    }
                }
                TapAction::Deliver
            }));
    }

    deploy_loaded_pair(&mut dc, m1, m2);
    dropping.store(true, Ordering::SeqCst);
    let outcome = dc.migrate_app_resumable("src", "dst").unwrap();
    let ResumableOutcome::Stalled { progress } = outcome else {
        panic!("cut cable must stall the container stream, got {outcome:?}");
    };
    let (acked, total) = progress.expect("stream progress available");
    assert!(
        acked > 0 && acked < total,
        "some containers were combined-acked before the cut: {acked}/{total}"
    );

    // Source machine crashes; its ME comes back from the checkpoint
    // `migrate_app_resumable` wrote, and the repaired link resumes.
    dc.restart_me(m1).unwrap();
    dropping.store(false, Ordering::SeqCst);
    counting_resume.store(true, Ordering::SeqCst);
    dc.resume_migration("src", "dst").unwrap();
    assert_eq!(dc.app("src").lock().status(), AppStatus::Migrated);
    assert_eq!(dc.app("dst").lock().status(), AppStatus::Ready);
    assert!(
        resumed_batches.load(Ordering::SeqCst) > 0,
        "the resumed tail still travels in containers"
    );
    verify_destination(&mut dc);
}

/// Determinism under batching: two same-seed batched migrations export
/// byte-identical fleet telemetry (`TRACE.json`), including the batch
/// counters — the container path adds no nondeterminism.
#[test]
fn batched_migration_telemetry_is_deterministic() {
    let run = |seed: u64| {
        let (mut dc, m1, m2) = dc_with_configs(seed, batched_config(), batched_config());
        deploy_loaded_pair(&mut dc, m1, m2);
        dc.migrate_app("src", "dst").unwrap();
        dc.fleet_telemetry().unwrap()
    };
    let a = run(1705);
    let b = run(1705);
    assert_eq!(a.to_json(), b.to_json(), "same seed, same TRACE.json");
    assert!(
        a.counters.get("me.batches_received").copied().unwrap_or(0) > 0,
        "the batched path was actually exercised"
    );
    assert_eq!(
        a.counters.get("me.batches_sealed"),
        a.counters.get("me.batches_received"),
        "every sealed container was received"
    );
}
