//! Chaos and supervision tests: a seeded soak subset over the full
//! fault mix, same-seed determinism, clean supervised aborts with the
//! source left authoritative, corrupted-control-frame recovery, and
//! resume idempotency after repeated crashes.
//!
//! The full 200-seed campaign runs via `cargo run --release --bin
//! chaos_soak`; this file keeps a fixed subset in the tier-1 suite.

use cloud_sim::machine::MachineLabels;
use cloud_sim::network::{Envelope, TapAction};
use mig_apps::kvstore::{self, ops as kv_ops, KvStore};
use mig_core::datacenter::{Datacenter, ResumableOutcome};
use mig_core::host::{tags, AppStatus};
use mig_core::library::InitRequest;
use mig_core::policy::MigrationPolicy;
use mig_core::supervisor::{AbortReason, MigrationOutcome, MigrationSupervisor, SupervisorConfig};
use mig_core::transfer::TransferConfig;
use sgx_migrate::soak;
use sgx_sim::machine::MachineId;
use sgx_sim::measurement::{EnclaveImage, EnclaveSigner};
use std::sync::atomic::{AtomicBool, AtomicUsize, Ordering};
use std::sync::Arc;
use std::time::Duration;

/// Fixed seed subset kept in tier 1 — k ranges over 1..=4 streams and
/// the generated schedules cover every fault kind.
const SOAK_SUBSET: std::ops::Range<u64> = 0..24;

#[test]
fn soak_subset_every_stream_releases_once_or_aborts_cleanly() {
    let report = soak::run_seeds(SOAK_SUBSET);
    assert_eq!(report.seeds.len(), SOAK_SUBSET.count());
    let mut injected = 0usize;
    for run in &report.seeds {
        // Every stream is accounted for: exactly-once release or
        // source-authoritative abort, nothing wedged or double-counted.
        assert_eq!(
            run.released + run.aborted,
            run.streams,
            "seed {}: {} streams but {} released + {} aborted",
            run.seed,
            run.streams,
            run.released,
            run.aborted
        );
        injected += run.faults.len();
    }
    assert!(
        injected > SOAK_SUBSET.count(),
        "fault schedules fired only {injected} faults across the subset"
    );
    // The report serialiser is stable: seeds ascending.
    let seeds: Vec<u64> = report.seeds.iter().map(|r| r.seed).collect();
    let mut sorted = seeds.clone();
    sorted.sort_unstable();
    assert_eq!(seeds, sorted);
}

#[test]
fn same_seed_reruns_are_byte_identical() {
    for seed in [3u64, 7, 11] {
        let a = soak::run_seeds([seed]);
        let b = soak::run_seeds([seed]);
        assert_eq!(
            a.to_json(),
            b.to_json(),
            "seed {seed} produced divergent reports across reruns"
        );
    }
}

fn image(tag: u8) -> EnclaveImage {
    EnclaveImage::build(
        &format!("chaos-kv-{tag}"),
        1,
        &[tag; 16],
        &EnclaveSigner::from_seed([tag; 32]),
    )
}

fn chaos_config() -> TransferConfig {
    TransferConfig {
        stream_threshold: 4096,
        chunk_size: 4096,
        window: 4,
        deadline: Duration::from_secs(2),
        retry_budget: 3,
        backoff_base: Duration::from_millis(1),
        ..TransferConfig::default()
    }
}

fn dc_pair(seed: u64, config: TransferConfig) -> (Datacenter, MachineId, MachineId) {
    let mut dc = Datacenter::new(seed);
    let policy = MigrationPolicy::same_operator_only();
    let m1 = dc.add_machine_with_transfer(MachineLabels::default(), &policy, config);
    let m2 = dc.add_machine_with_transfer(MachineLabels::default(), &policy, config);
    (dc, m1, m2)
}

/// Deploys a loaded source / awaiting destination pair and returns the
/// source's staged bulk snapshot for later bit-identity checks.
fn deploy_pair(
    dc: &mut Datacenter,
    m1: MachineId,
    m2: MachineId,
    tag: u8,
    src: &str,
    dst: &str,
) -> Vec<u8> {
    let image = image(tag);
    dc.deploy_app(src, m1, &image, KvStore::new(), InitRequest::New)
        .unwrap();
    dc.call_app(src, kv_ops::INIT, &[]).unwrap();
    dc.call_app(
        src,
        kv_ops::BULK_PUT,
        &kvstore::encode_bulk_put(64, 2048, tag),
    )
    .unwrap();
    dc.deploy_app(dst, m2, &image, KvStore::new(), InitRequest::Migrate)
        .unwrap();
    dc.app_bulk_state(src)
        .unwrap()
        .expect("source staged bulk state")
}

#[test]
fn supervisor_abort_leaves_source_authoritative() {
    let (mut dc, m1, m2) = dc_pair(8101, chaos_config());
    let snapshot = deploy_pair(&mut dc, m1, m2, 0x21, "src", "dst");

    // "Cut the cable" permanently: drop every ME frame between the two
    // machines in both directions, so retries can never make progress.
    let cut = Arc::new(AtomicBool::new(true));
    let tap_cut = Arc::clone(&cut);
    dc.world_mut()
        .network_mut()
        .add_tap(Box::new(move |e: &Envelope| {
            let between = (e.from.machine == m1 && e.to.machine == m2)
                || (e.from.machine == m2 && e.to.machine == m1);
            if between && e.from.service == "me" && tap_cut.load(Ordering::SeqCst) {
                return TapAction::Drop;
            }
            TapAction::Deliver
        }));

    let supervisor = MigrationSupervisor::new(SupervisorConfig::from(&chaos_config()));
    let outcomes = supervisor.run(&mut dc, &[("src", "dst")], |_| Vec::new());
    let MigrationOutcome::Aborted { reason, retries } = outcomes[0] else {
        panic!("expected a supervised abort, got {:?}", outcomes[0]);
    };
    assert!(
        matches!(
            reason,
            AbortReason::DeadPeer | AbortReason::RetryBudgetExhausted
        ),
        "unexpected abort reason {reason:?}"
    );
    assert!(retries >= 1, "the supervisor never retried before aborting");

    // Graceful degradation: the destination never released and the
    // source's state survived — durably checkpointed, not half-moved.
    assert_ne!(dc.app("dst").lock().status(), AppStatus::Ready);
    dc.persist_me(m1).unwrap();
    assert!(dc.me_checkpoints(m1).latest_meta().is_some());

    // The network heals; an operator retry of the retained transfer
    // still converges to a single, bit-identical release.
    cut.store(false, Ordering::SeqCst);
    for app in ["src", "dst"] {
        let host = dc.app(app);
        host.lock().attest_me(dc.world_mut().network_mut());
    }
    dc.run();
    let mr = dc.app("src").lock().enclave().identity().mr_enclave;
    {
        let me = dc.me_host(m1);
        me.lock()
            .retry_migration(dc.world_mut().network_mut(), mr, m2)
            .unwrap();
    }
    dc.run();
    assert_eq!(dc.app("dst").lock().status(), AppStatus::Ready);
    assert_ne!(dc.app("src").lock().status(), AppStatus::Ready);
    assert_eq!(dc.app_bulk_state("dst").unwrap().unwrap(), snapshot);

    // The injected recovery actions are visible in telemetry.
    let counters = dc.me_host(m1).lock().telemetry().unwrap().counters;
    assert!(*counters.get("edge.backoff").unwrap_or(&0) >= 1);
    assert!(*counters.get("edge.abort").unwrap_or(&0) >= 1);
}

/// Satellite: a bit-flipped 64-byte control frame (a `ChunkAck` riding
/// an `RA_ACK`-tagged envelope) must not wedge the shared ME↔ME
/// channel. The AEAD check rejects the frame, the affected stream
/// stalls, and supervised recovery renegotiates the channel — both
/// concurrent streams still release exactly once, bit-identical.
#[test]
fn corrupted_control_frame_is_rejected_and_streams_recover() {
    let (mut dc, m1, m2) = dc_pair(8102, chaos_config());
    let snap_a = deploy_pair(&mut dc, m1, m2, 0x31, "src-a", "dst-a");
    let snap_b = deploy_pair(&mut dc, m1, m2, 0x32, "src-b", "dst-b");

    // Bit-flip exactly one small dst→src control frame mid-transfer.
    let corrupted = Arc::new(AtomicUsize::new(0));
    let tap_corrupted = Arc::clone(&corrupted);
    dc.world_mut()
        .network_mut()
        .add_tap(Box::new(move |e: &Envelope| {
            if e.from.machine == m2
                && e.to.machine == m1
                && e.from.service == "me"
                && e.payload.first() == Some(&tags::RA_ACK)
                && e.payload.len() < 160
                && tap_corrupted.fetch_add(1, Ordering::SeqCst) == 0
            {
                let mut tampered = e.payload.clone();
                let mid = tampered.len() / 2;
                tampered[mid] ^= 0x20;
                return TapAction::Replace(tampered);
            }
            TapAction::Deliver
        }));

    let supervisor = MigrationSupervisor::new(SupervisorConfig::from(&chaos_config()));
    let outcomes = supervisor.run(&mut dc, &[("src-a", "dst-a"), ("src-b", "dst-b")], |_| {
        Vec::new()
    });

    assert!(
        corrupted.load(Ordering::SeqCst) >= 1,
        "the tamper tap never saw a small RA_ACK control frame"
    );
    assert!(
        outcomes.iter().all(MigrationOutcome::is_released),
        "corrupted control frame wedged a stream: {outcomes:?}"
    );
    for (dst, snap) in [("dst-a", &snap_a), ("dst-b", &snap_b)] {
        assert_eq!(dc.app(dst).lock().status(), AppStatus::Ready);
        assert_eq!(&dc.app_bulk_state(dst).unwrap().unwrap(), snap);
    }
    // Exactly once: both sources froze.
    assert_ne!(dc.app("src-a").lock().status(), AppStatus::Ready);
    assert_ne!(dc.app("src-b").lock().status(), AppStatus::Ready);
}

/// Installs a tap dropping src→dst stream frames beyond a mutable
/// budget while `dropping` holds.
struct CrashTap {
    seen: Arc<AtomicUsize>,
    allow: Arc<AtomicUsize>,
    dropping: Arc<AtomicBool>,
}

fn install_crash_tap(dc: &mut Datacenter, src: MachineId, dst: MachineId) -> CrashTap {
    let seen = Arc::new(AtomicUsize::new(0));
    let allow = Arc::new(AtomicUsize::new(usize::MAX));
    let dropping = Arc::new(AtomicBool::new(false));
    let (t_seen, t_allow, t_dropping) =
        (Arc::clone(&seen), Arc::clone(&allow), Arc::clone(&dropping));
    dc.world_mut()
        .network_mut()
        .add_tap(Box::new(move |e: &Envelope| {
            if e.from.machine == src
                && e.to.machine == dst
                && e.from.service == "me"
                && e.payload.first() == Some(&tags::RA_TRANSFER)
            {
                let n = t_seen.fetch_add(1, Ordering::SeqCst);
                if t_dropping.load(Ordering::SeqCst) && n >= t_allow.load(Ordering::SeqCst) {
                    return TapAction::Drop;
                }
            }
            TapAction::Deliver
        }));
    CrashTap {
        seen,
        allow,
        dropping,
    }
}

/// 4096 × 2048-byte values: enough chunks (with the default 1 MiB
/// chunk size) to stall the stream mid-flight.
fn big_streaming_config() -> TransferConfig {
    TransferConfig {
        stream_threshold: 64 * 1024,
        chunk_size: 1024 * 1024,
        window: 4,
        ..TransferConfig::default()
    }
}

fn deploy_big_pair(dc: &mut Datacenter, m1: MachineId, m2: MachineId) -> Vec<u8> {
    let image = image(0x41);
    dc.deploy_app("src", m1, &image, KvStore::new(), InitRequest::New)
        .unwrap();
    dc.call_app("src", kv_ops::INIT, &[]).unwrap();
    dc.call_app(
        "src",
        kv_ops::BULK_PUT,
        &kvstore::encode_bulk_put(4096, 2048, 0x5A),
    )
    .unwrap();
    dc.deploy_app("dst", m2, &image, KvStore::new(), InitRequest::Migrate)
        .unwrap();
    dc.app_bulk_state("src").unwrap().expect("staged state")
}

/// Satellite: `resume_migration` is idempotent — calling it again after
/// the migration already released must not double-release or disturb
/// the destination.
#[test]
fn double_resume_converges_to_a_single_release() {
    let (mut dc, m1, m2) = dc_pair(8103, big_streaming_config());
    let tap = install_crash_tap(&mut dc, m1, m2);
    let snapshot = deploy_big_pair(&mut dc, m1, m2);

    tap.allow.store(6, Ordering::SeqCst);
    tap.dropping.store(true, Ordering::SeqCst);
    let outcome = dc.migrate_app_resumable("src", "dst").unwrap();
    assert!(matches!(outcome, ResumableOutcome::Stalled { .. }));

    dc.restart_me(m1).unwrap();
    tap.dropping.store(false, Ordering::SeqCst);
    dc.resume_migration("src", "dst").unwrap();
    assert_eq!(dc.app("src").lock().status(), AppStatus::Migrated);
    assert_eq!(dc.app("dst").lock().status(), AppStatus::Ready);
    assert_eq!(dc.app_bulk_state("dst").unwrap().unwrap(), snapshot);

    // Second resume: the source ME retains nothing for this enclave any
    // more, so the call must fail cleanly rather than re-transfer.
    let second = dc.resume_migration("src", "dst");
    assert!(second.is_err(), "second resume re-dispatched a transfer");
    // Nothing moved: still a single release, destination undisturbed.
    assert_eq!(dc.app("src").lock().status(), AppStatus::Migrated);
    assert_eq!(dc.app("dst").lock().status(), AppStatus::Ready);
    let state = dc.app_bulk_state("dst").unwrap().unwrap();
    assert_eq!(state, snapshot);
    // The restored store serves, with counter continuity intact.
    dc.call_app("dst", kv_ops::LOAD, &state).unwrap();
    let version = dc.call_app("dst", kv_ops::VERSION, &[]).unwrap();
    assert_eq!(u32::from_le_bytes(version[..4].try_into().unwrap()), 1);
}

/// Satellite: a second crash mid-resume still converges — the second
/// resume picks up from the later acknowledged chunk and the
/// destination releases exactly once.
#[test]
fn resume_after_second_crash_converges_to_a_single_release() {
    let (mut dc, m1, m2) = dc_pair(8104, big_streaming_config());
    let tap = install_crash_tap(&mut dc, m1, m2);
    let snapshot = deploy_big_pair(&mut dc, m1, m2);
    let mr = dc.app("src").lock().enclave().identity().mr_enclave;

    // First crash: announcement + 5 chunks delivered, then the cable
    // goes, then the source management VM restarts from its checkpoint.
    tap.allow.store(6, Ordering::SeqCst);
    tap.dropping.store(true, Ordering::SeqCst);
    let outcome = dc.migrate_app_resumable("src", "dst").unwrap();
    let ResumableOutcome::Stalled {
        progress: Some((first_acked, total)),
    } = outcome
    else {
        panic!("expected a stalled stream with progress, got {outcome:?}");
    };
    dc.restart_me(m1).unwrap();

    // First resume also gets cut a few chunks further in: the
    // ResumeRequest plus two chunks pass, then the cable goes again.
    tap.allow
        .store(tap.seen.load(Ordering::SeqCst) + 3, Ordering::SeqCst);
    assert!(
        dc.resume_migration("src", "dst").is_err(),
        "resume completed despite the dropped frames"
    );
    let second_acked = dc
        .me_host(m1)
        .lock()
        .stream_progress(mr)
        .unwrap()
        .expect("retained stream progress")
        .acked;
    assert!(
        second_acked > first_acked,
        "first resume made no progress past chunk {first_acked}"
    );

    // Second crash, then a clean resume: only the tail travels and the
    // stream converges to one release.
    dc.persist_me(m1).unwrap();
    dc.restart_me(m1).unwrap();
    tap.dropping.store(false, Ordering::SeqCst);
    dc.resume_migration("src", "dst").unwrap();

    assert_eq!(dc.app("src").lock().status(), AppStatus::Migrated);
    assert_eq!(dc.app("dst").lock().status(), AppStatus::Ready);
    let state = dc.app_bulk_state("dst").unwrap().unwrap();
    assert_eq!(state, snapshot);
    assert!(second_acked < total, "the stream had already finished");
    dc.call_app("dst", kv_ops::LOAD, &state).unwrap();
    let version = dc.call_app("dst", kv_ops::VERSION, &[]).unwrap();
    assert_eq!(u32::from_le_bytes(version[..4].try_into().unwrap()), 1);
}
