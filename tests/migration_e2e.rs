//! End-to-end migration flows over the full stack: application enclave →
//! Migration Library → local attestation → Migration Enclave → remote
//! attestation + operator authentication → transfer → DONE confirmation.
//!
//! Covers the paper's Fig. 1/Fig. 2 flows: new/restored/migrated starts,
//! counter and sealed-data continuity, store-and-forward delivery,
//! migrate-back (the capability Gu et al.'s persisted flag forecloses,
//! §III-B), retries after policy failures, and multi-enclave machines.

use cloud_sim::machine::MachineLabels;
use mig_apps::kvstore::{self, KvStore};
use mig_apps::kvstore_image;
use mig_core::datacenter::Datacenter;
use mig_core::harness::{AppCtx, AppLogic};
use mig_core::host::AppStatus;
use mig_core::library::InitRequest;
use mig_core::policy::MigrationPolicy;
use sgx_sim::measurement::{EnclaveImage, EnclaveSigner};
use sgx_sim::wire::{WireReader, WireWriter};
use sgx_sim::SgxError;

/// A minimal counter+seal app used across these tests.
struct CounterApp;

mod counter_ops {
    pub const CREATE: u32 = 1;
    pub const INCREMENT: u32 = 2;
    pub const READ: u32 = 3;
    pub const DESTROY: u32 = 4;
    pub const SEAL: u32 = 5;
    pub const UNSEAL: u32 = 6;
}

impl AppLogic for CounterApp {
    fn handle(
        &mut self,
        ctx: &mut AppCtx<'_, '_>,
        opcode: u32,
        input: &[u8],
    ) -> Result<Vec<u8>, SgxError> {
        match opcode {
            counter_ops::CREATE => {
                let (id, value) = ctx.lib.create_migratable_counter(ctx.env)?;
                let mut w = WireWriter::new();
                w.u8(id).u32(value);
                Ok(w.finish())
            }
            counter_ops::INCREMENT => {
                let id = input[0];
                Ok(ctx
                    .lib
                    .increment_migratable_counter(ctx.env, id)?
                    .to_le_bytes()
                    .to_vec())
            }
            counter_ops::READ => {
                let id = input[0];
                Ok(ctx
                    .lib
                    .read_migratable_counter(ctx.env, id)?
                    .to_le_bytes()
                    .to_vec())
            }
            counter_ops::DESTROY => {
                ctx.lib.destroy_migratable_counter(ctx.env, input[0])?;
                Ok(vec![])
            }
            counter_ops::SEAL => Ok(ctx.lib.seal_migratable_data(ctx.env, b"e2e", input)?),
            counter_ops::UNSEAL => {
                let (pt, aad) = ctx.lib.unseal_migratable_data(ctx.env, input)?;
                assert_eq!(aad, b"e2e");
                Ok(pt)
            }
            _ => Err(SgxError::InvalidParameter("opcode")),
        }
    }
}

fn app_image() -> EnclaveImage {
    EnclaveImage::build(
        "e2e-counter-app",
        1,
        b"counter app code",
        &EnclaveSigner::from_seed([11; 32]),
    )
}

fn two_machine_dc(
    seed: u64,
) -> (
    Datacenter,
    sgx_sim::machine::MachineId,
    sgx_sim::machine::MachineId,
) {
    let mut dc = Datacenter::new(seed);
    let policy = MigrationPolicy::same_operator_only();
    let m1 = dc.add_machine(MachineLabels::new("dc-1", "eu"), &policy);
    let m2 = dc.add_machine(MachineLabels::new("dc-1", "eu"), &policy);
    (dc, m1, m2)
}

fn read_u32(bytes: &[u8]) -> u32 {
    u32::from_le_bytes(bytes[..4].try_into().unwrap())
}

#[test]
fn counters_continue_across_migration() {
    let (mut dc, m1, m2) = two_machine_dc(1);
    dc.deploy_app("src", m1, &app_image(), CounterApp, InitRequest::New)
        .unwrap();

    // Create a counter and advance it to 5.
    let out = dc.call_app("src", counter_ops::CREATE, &[]).unwrap();
    let id = out[0];
    for _ in 0..5 {
        dc.call_app("src", counter_ops::INCREMENT, &[id]).unwrap();
    }
    assert_eq!(
        read_u32(&dc.call_app("src", counter_ops::READ, &[id]).unwrap()),
        5
    );

    // Migrate.
    dc.deploy_app("dst", m2, &app_image(), CounterApp, InitRequest::Migrate)
        .unwrap();
    dc.migrate_app("src", "dst").unwrap();

    // The effective value survives; increments continue from it.
    assert_eq!(
        read_u32(&dc.call_app("dst", counter_ops::READ, &[id]).unwrap()),
        5
    );
    assert_eq!(
        read_u32(&dc.call_app("dst", counter_ops::INCREMENT, &[id]).unwrap()),
        6
    );

    // The source is frozen: migratable operations are refused.
    let err = dc.call_app("src", counter_ops::READ, &[id]).unwrap_err();
    assert!(
        matches!(err, SgxError::Enclave(ref m) if m.contains("frozen")),
        "{err:?}"
    );
}

#[test]
fn sealed_data_migrates_as_opaque_bytes() {
    let (mut dc, m1, m2) = two_machine_dc(2);
    dc.deploy_app("src", m1, &app_image(), CounterApp, InitRequest::New)
        .unwrap();
    let blob = dc
        .call_app("src", counter_ops::SEAL, b"portable secret")
        .unwrap();

    dc.deploy_app("dst", m2, &app_image(), CounterApp, InitRequest::Migrate)
        .unwrap();
    dc.migrate_app("src", "dst").unwrap();

    // The blob was sealed under the MSK, which travelled with the enclave.
    let pt = dc.call_app("dst", counter_ops::UNSEAL, &blob).unwrap();
    assert_eq!(pt, b"portable secret");
}

#[test]
fn native_sealed_data_does_not_migrate() {
    // Control: the same flow with *native* sealing loses the data — the
    // §II-B limitation that motivates the MSK.
    struct NativeSealApp;
    impl AppLogic for NativeSealApp {
        fn handle(
            &mut self,
            ctx: &mut AppCtx<'_, '_>,
            opcode: u32,
            input: &[u8],
        ) -> Result<Vec<u8>, SgxError> {
            match opcode {
                1 => Ok(ctx
                    .env
                    .seal_data(sgx_sim::cpu::KeyPolicy::MrEnclave, b"", input)),
                2 => Ok(ctx.env.unseal_data(input)?.0),
                _ => Err(SgxError::InvalidParameter("opcode")),
            }
        }
    }
    let image = EnclaveImage::build(
        "native-seal-app",
        1,
        b"native",
        &EnclaveSigner::from_seed([12; 32]),
    );
    let (mut dc, m1, m2) = two_machine_dc(3);
    dc.deploy_app("src", m1, &image, NativeSealApp, InitRequest::New)
        .unwrap();
    let blob = dc.call_app("src", 1, b"machine-bound secret").unwrap();

    dc.deploy_app("dst", m2, &image, NativeSealApp, InitRequest::Migrate)
        .unwrap();
    dc.migrate_app("src", "dst").unwrap();

    // The destination cannot unseal: different CPU secret.
    assert_eq!(
        dc.call_app("dst", 2, &blob).unwrap_err(),
        SgxError::MacMismatch
    );
}

#[test]
fn migrate_back_to_source_machine_works() {
    // The capability Gu et al.'s persisted flag forecloses (§III-B):
    // after migrating m1 → m2, the enclave can migrate m2 → m1 again.
    let (mut dc, m1, m2) = two_machine_dc(4);
    dc.deploy_app("gen1", m1, &app_image(), CounterApp, InitRequest::New)
        .unwrap();
    let out = dc.call_app("gen1", counter_ops::CREATE, &[]).unwrap();
    let id = out[0];
    dc.call_app("gen1", counter_ops::INCREMENT, &[id]).unwrap();

    dc.deploy_app("gen2", m2, &app_image(), CounterApp, InitRequest::Migrate)
        .unwrap();
    dc.migrate_app("gen1", "gen2").unwrap();
    dc.call_app("gen2", counter_ops::INCREMENT, &[id]).unwrap(); // now 2

    // Back to m1, as a fresh instance.
    dc.deploy_app("gen3", m1, &app_image(), CounterApp, InitRequest::Migrate)
        .unwrap();
    dc.migrate_app("gen2", "gen3").unwrap();
    assert_eq!(
        read_u32(&dc.call_app("gen3", counter_ops::READ, &[id]).unwrap()),
        2
    );
    assert_eq!(
        read_u32(&dc.call_app("gen3", counter_ops::INCREMENT, &[id]).unwrap()),
        3
    );
}

#[test]
fn store_and_forward_when_destination_not_yet_deployed() {
    // §VI-A: "If there is no matching enclave running on the machine for
    // an incoming migration, the migration data will be stored until an
    // enclave with the matching MRENCLAVE value performs a local
    // attestation."
    let (mut dc, m1, m2) = two_machine_dc(5);
    dc.deploy_app("src", m1, &app_image(), CounterApp, InitRequest::New)
        .unwrap();
    let out = dc.call_app("src", counter_ops::CREATE, &[]).unwrap();
    let id = out[0];
    dc.call_app("src", counter_ops::INCREMENT, &[id]).unwrap();

    // Start the migration with no destination enclave present.
    {
        let src = dc.app("src");
        let mut src = src.lock();
        src.migrate_to(dc.world_mut().network_mut(), m2).unwrap();
    }
    dc.run();
    // Source keeps waiting (data is stored at the destination ME).
    assert_eq!(dc.app("src").lock().status(), AppStatus::MigratingOut);

    // Deploying the matching enclave triggers delivery during attestation.
    dc.deploy_app("dst", m2, &app_image(), CounterApp, InitRequest::Migrate)
        .unwrap();
    dc.run();
    assert_eq!(dc.app("dst").lock().status(), AppStatus::Ready);
    assert_eq!(dc.app("src").lock().status(), AppStatus::Migrated);
    assert_eq!(
        read_u32(&dc.call_app("dst", counter_ops::READ, &[id]).unwrap()),
        1
    );
}

#[test]
fn migration_data_not_delivered_to_different_enclave() {
    // R2/§VI-A: only an enclave with the *same MRENCLAVE* may receive.
    let (mut dc, m1, m2) = two_machine_dc(6);
    dc.deploy_app("src", m1, &app_image(), CounterApp, InitRequest::New)
        .unwrap();

    // A different enclave image waits on the destination machine.
    let other_image = EnclaveImage::build(
        "imposter-app",
        1,
        b"different code",
        &EnclaveSigner::from_seed([13; 32]),
    );
    dc.deploy_app(
        "imposter",
        m2,
        &other_image,
        CounterApp,
        InitRequest::Migrate,
    )
    .unwrap();

    {
        let src = dc.app("src");
        let mut src = src.lock();
        src.migrate_to(dc.world_mut().network_mut(), m2).unwrap();
    }
    dc.run();

    // The imposter never receives anything; data is parked for the real
    // measurement.
    assert_eq!(
        dc.app("imposter").lock().status(),
        AppStatus::AwaitingIncoming
    );
    assert_eq!(dc.app("src").lock().status(), AppStatus::MigratingOut);

    // The genuine enclave arriving later gets the data.
    dc.deploy_app("real", m2, &app_image(), CounterApp, InitRequest::Migrate)
        .unwrap();
    dc.run();
    assert_eq!(dc.app("real").lock().status(), AppStatus::Ready);
    assert_eq!(dc.app("src").lock().status(), AppStatus::Migrated);
}

#[test]
fn policy_violation_blocks_and_retry_succeeds() {
    let mut dc = Datacenter::new(7);
    let policy = MigrationPolicy::same_datacenter();
    let m1 = dc.add_machine(MachineLabels::new("dc-1", "eu"), &policy);
    let m2 = dc.add_machine(MachineLabels::new("dc-2", "eu"), &policy); // other DC
    let m3 = dc.add_machine(MachineLabels::new("dc-1", "eu"), &policy); // same DC

    dc.deploy_app("src", m1, &app_image(), CounterApp, InitRequest::New)
        .unwrap();
    dc.deploy_app(
        "bad-dst",
        m2,
        &app_image(),
        CounterApp,
        InitRequest::Migrate,
    )
    .unwrap();

    // Attempt to migrate across datacenters: the source ME must refuse.
    let err = dc.migrate_app("src", "bad-dst").unwrap_err();
    assert!(matches!(err, mig_core::MigError::HostState(_)), "{err:?}");
    let me_errors = dc.me_host(m1).lock().errors.clone();
    assert!(
        me_errors.iter().any(|e| e.contains("policy violation")),
        "expected a policy violation, got {me_errors:?}"
    );
    // The destination never became ready.
    assert_eq!(
        dc.app("bad-dst").lock().status(),
        AppStatus::AwaitingIncoming
    );

    // Fig. 2 error rule: data is retained; select a compliant destination.
    dc.deploy_app(
        "good-dst",
        m3,
        &app_image(),
        CounterApp,
        InitRequest::Migrate,
    )
    .unwrap();
    dc.retry_migration("src", "good-dst").unwrap();
    assert_eq!(dc.app("good-dst").lock().status(), AppStatus::Ready);
}

#[test]
fn two_apps_on_one_machine_migrate_independently() {
    let (mut dc, m1, m2) = two_machine_dc(8);
    dc.deploy_app("a-src", m1, &app_image(), CounterApp, InitRequest::New)
        .unwrap();
    dc.deploy_app(
        "b-src",
        m1,
        &kvstore_image(),
        KvStore::new(),
        InitRequest::New,
    )
    .unwrap();

    let out = dc.call_app("a-src", counter_ops::CREATE, &[]).unwrap();
    let id = out[0];
    dc.call_app("a-src", counter_ops::INCREMENT, &[id]).unwrap();

    dc.call_app("b-src", kvstore::ops::INIT, &[]).unwrap();
    dc.call_app("b-src", kvstore::ops::PUT, &kvstore::encode_put(b"k", b"v"))
        .unwrap();

    // Migrate only app A; app B stays operational on m1.
    dc.deploy_app("a-dst", m2, &app_image(), CounterApp, InitRequest::Migrate)
        .unwrap();
    dc.migrate_app("a-src", "a-dst").unwrap();

    assert_eq!(
        read_u32(&dc.call_app("a-dst", counter_ops::READ, &[id]).unwrap()),
        1
    );
    let v = dc.call_app("b-src", kvstore::ops::GET, b"k").unwrap();
    assert_eq!(v, b"v");
}

#[test]
fn restart_on_destination_after_migration() {
    // After a migration, the destination's sealed state is a normal
    // Table II blob: restart-with-restore must work there.
    let (mut dc, m1, m2) = two_machine_dc(9);
    dc.deploy_app("src", m1, &app_image(), CounterApp, InitRequest::New)
        .unwrap();
    let out = dc.call_app("src", counter_ops::CREATE, &[]).unwrap();
    let id = out[0];
    for _ in 0..3 {
        dc.call_app("src", counter_ops::INCREMENT, &[id]).unwrap();
    }

    dc.deploy_app("dst", m2, &app_image(), CounterApp, InitRequest::Migrate)
        .unwrap();
    dc.migrate_app("src", "dst").unwrap();
    dc.call_app("dst", counter_ops::INCREMENT, &[id]).unwrap(); // 4

    // Stop and restore on the destination machine.
    dc.restart_app("dst", m2, &app_image(), CounterApp).unwrap();
    assert_eq!(
        read_u32(&dc.call_app("dst", counter_ops::READ, &[id]).unwrap()),
        4
    );
    assert_eq!(
        read_u32(&dc.call_app("dst", counter_ops::INCREMENT, &[id]).unwrap()),
        5
    );
}

#[test]
fn restart_on_same_machine_without_migration() {
    // Fig. 1 "restored enclave": ordinary stop/restart via the sealed
    // Table II blob keeps counters and the MSK.
    let (mut dc, m1, _m2) = two_machine_dc(10);
    dc.deploy_app("app", m1, &app_image(), CounterApp, InitRequest::New)
        .unwrap();
    let out = dc.call_app("app", counter_ops::CREATE, &[]).unwrap();
    let id = out[0];
    dc.call_app("app", counter_ops::INCREMENT, &[id]).unwrap();
    let blob = dc.call_app("app", counter_ops::SEAL, b"keepme").unwrap();

    dc.restart_app("app", m1, &app_image(), CounterApp).unwrap();
    assert_eq!(
        read_u32(&dc.call_app("app", counter_ops::READ, &[id]).unwrap()),
        1
    );
    // MSK also survived the restart.
    assert_eq!(
        dc.call_app("app", counter_ops::UNSEAL, &blob).unwrap(),
        b"keepme"
    );
}

#[test]
fn migration_requires_me_session() {
    // A library that never attested the ME cannot start a migration.
    let (dc, m1, m2) = two_machine_dc(11);
    // Deploy normally (attestation runs), then check the opposite via a
    // fresh enclave that skips attestation by calling MIG_START directly.
    let machine = dc.world().machine(m1).clone();
    let enclave = machine
        .sgx
        .load_enclave(
            &app_image(),
            Box::new(mig_core::harness::MigratableEnclave::new(CounterApp)),
        )
        .unwrap();
    let init = mig_core::harness::encode_init(&dc.me_mr_enclave(), &InitRequest::New);
    enclave
        .ecall(mig_core::harness::ops::MIG_INIT, &init)
        .unwrap();

    let mut w = WireWriter::new();
    w.u64(m2.0);
    let err = enclave
        .ecall(mig_core::harness::ops::MIG_START, &w.finish())
        .unwrap_err();
    assert!(
        matches!(err, SgxError::Enclave(ref m) if m.contains("migration enclave")),
        "{err:?}"
    );
}

#[test]
fn destroyed_counters_do_not_migrate() {
    let (mut dc, m1, m2) = two_machine_dc(12);
    dc.deploy_app("src", m1, &app_image(), CounterApp, InitRequest::New)
        .unwrap();
    let a = dc.call_app("src", counter_ops::CREATE, &[]).unwrap()[0];
    let b = dc.call_app("src", counter_ops::CREATE, &[]).unwrap()[0];
    assert_ne!(a, b);
    dc.call_app("src", counter_ops::INCREMENT, &[a]).unwrap();
    dc.call_app("src", counter_ops::INCREMENT, &[b]).unwrap();
    dc.call_app("src", counter_ops::DESTROY, &[a]).unwrap();

    dc.deploy_app("dst", m2, &app_image(), CounterApp, InitRequest::Migrate)
        .unwrap();
    dc.migrate_app("src", "dst").unwrap();

    // Counter b survived with its value; counter a is gone.
    assert_eq!(
        read_u32(&dc.call_app("dst", counter_ops::READ, &[b]).unwrap()),
        1
    );
    let err = dc.call_app("dst", counter_ops::READ, &[a]).unwrap_err();
    assert!(
        matches!(err, SgxError::Enclave(ref m) if m.contains("unknown")),
        "{err:?}"
    );
}

#[test]
fn library_phase_is_observable() {
    let (mut dc, m1, _m2) = two_machine_dc(13);
    dc.deploy_app("app", m1, &app_image(), CounterApp, InitRequest::New)
        .unwrap();
    let host = dc.app("app");
    let enclave = host.lock().enclave().clone();
    let out = enclave.ecall(mig_core::harness::ops::PHASE, &[]).unwrap();
    let (payload, _) = mig_core::harness::open_envelope(&out).unwrap();
    assert_eq!(payload, vec![1], "operational");
}

#[test]
fn kvstore_full_workflow_across_migration() {
    let (mut dc, m1, m2) = two_machine_dc(14);
    dc.deploy_app(
        "kv-src",
        m1,
        &kvstore_image(),
        KvStore::new(),
        InitRequest::New,
    )
    .unwrap();
    dc.call_app("kv-src", kvstore::ops::INIT, &[]).unwrap();

    let mut last_blob = Vec::new();
    for i in 0..5u32 {
        let resp = dc
            .call_app(
                "kv-src",
                kvstore::ops::PUT,
                &kvstore::encode_put(format!("key-{i}").as_bytes(), &i.to_le_bytes()),
            )
            .unwrap();
        let (version, blob) = kvstore::decode_put_response(&resp).unwrap();
        assert_eq!(version, i + 1);
        last_blob = blob;
    }

    dc.deploy_app(
        "kv-dst",
        m2,
        &kvstore_image(),
        KvStore::new(),
        InitRequest::Migrate,
    )
    .unwrap();
    dc.migrate_app("kv-src", "kv-dst").unwrap();

    // Load the latest snapshot on the destination: version check passes.
    dc.call_app("kv-dst", kvstore::ops::LOAD, &last_blob)
        .unwrap();
    assert_eq!(
        dc.call_app("kv-dst", kvstore::ops::GET, b"key-3").unwrap(),
        3u32.to_le_bytes().to_vec()
    );
    assert_eq!(
        read_u32(&dc.call_app("kv-dst", kvstore::ops::LEN, &[]).unwrap()),
        5
    );
}

#[test]
fn semi_transparent_vm_migration_moves_enclaves_and_vm() {
    // The paper's §X sketch: the management VM calls migration_start on
    // every enclave of a guest VM, then the VM live-migrates; the guest
    // applications never participate.
    let (mut dc, m1, m2) = two_machine_dc(16);
    dc.deploy_app("app-a", m1, &app_image(), CounterApp, InitRequest::New)
        .unwrap();
    let other_image = EnclaveImage::build(
        "second-tenant",
        1,
        b"code",
        &EnclaveSigner::from_seed([14; 32]),
    );
    dc.deploy_app("app-b", m1, &other_image, CounterApp, InitRequest::New)
        .unwrap();
    let id = dc.call_app("app-a", counter_ops::CREATE, &[]).unwrap()[0];
    dc.call_app("app-a", counter_ops::INCREMENT, &[id]).unwrap();

    let vm = dc.world_mut().create_vm(m1, 1 << 30);
    dc.deploy_app("app-a'", m2, &app_image(), CounterApp, InitRequest::Migrate)
        .unwrap();
    dc.deploy_app("app-b'", m2, &other_image, CounterApp, InitRequest::Migrate)
        .unwrap();

    let (enclave_time, vm_time) = dc
        .migrate_vm_with_enclaves(vm, m2, &[("app-a", "app-a'"), ("app-b", "app-b'")])
        .unwrap();
    assert!(enclave_time < vm_time, "enclave state is the cheap part");
    assert_eq!(dc.world().vm(vm).host, m2);
    assert_eq!(
        read_u32(&dc.call_app("app-a'", counter_ops::READ, &[id]).unwrap()),
        1
    );

    // Destination placement is validated.
    let vm2 = dc.world_mut().create_vm(m2, 1 << 30);
    let err = dc
        .migrate_vm_with_enclaves(vm2, m1, &[("app-a'", "app-b'")])
        .unwrap_err();
    assert!(matches!(err, mig_core::MigError::HostState(_)));
}

#[test]
fn reader_pattern_check_wire_reader_consistency() {
    // Guard against silent envelope format drift: a PUT response always
    // parses with the documented shape.
    let mut w = WireWriter::new();
    w.u32(7).bytes(b"blob");
    let bytes = w.finish();
    let mut r = WireReader::new(&bytes);
    assert_eq!(r.u32().unwrap(), 7);
    assert_eq!(r.bytes().unwrap(), b"blob");
    r.finish().unwrap();
}
