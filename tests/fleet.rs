//! Fleet-scale exercises: many machines, many enclaves, long randomized
//! migration chains, and the full 256-counter quota crossing a machine
//! boundary — the scale a cloud operator would actually run.

use cloud_sim::machine::MachineLabels;
use mig_core::datacenter::Datacenter;
use mig_core::harness::{AppCtx, AppLogic};
use mig_core::library::InitRequest;
use mig_core::policy::MigrationPolicy;
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use sgx_sim::machine::MachineId;
use sgx_sim::measurement::{EnclaveImage, EnclaveSigner};
use sgx_sim::SgxError;

struct App;

mod ops {
    pub const CREATE: u32 = 1;
    pub const INC: u32 = 2;
    pub const READ: u32 = 3;
    pub const SEAL: u32 = 4;
    pub const UNSEAL: u32 = 5;
}

impl AppLogic for App {
    fn handle(
        &mut self,
        ctx: &mut AppCtx<'_, '_>,
        opcode: u32,
        input: &[u8],
    ) -> Result<Vec<u8>, SgxError> {
        match opcode {
            ops::CREATE => {
                let (id, _) = ctx.lib.create_migratable_counter(ctx.env)?;
                Ok(vec![id])
            }
            ops::INC => Ok(ctx
                .lib
                .increment_migratable_counter(ctx.env, input[0])?
                .to_le_bytes()
                .to_vec()),
            ops::READ => Ok(ctx
                .lib
                .read_migratable_counter(ctx.env, input[0])?
                .to_le_bytes()
                .to_vec()),
            ops::SEAL => Ok(ctx.lib.seal_migratable_data(ctx.env, b"fleet", input)?),
            ops::UNSEAL => Ok(ctx.lib.unseal_migratable_data(ctx.env, input)?.0),
            _ => Err(SgxError::InvalidParameter("opcode")),
        }
    }
}

fn tenant_image(tenant: usize) -> EnclaveImage {
    EnclaveImage::build(
        "fleet-tenant",
        tenant as u32,
        b"tenant code",
        &EnclaveSigner::from_seed([71; 32]),
    )
}

#[test]
fn twelve_tenants_roam_a_six_machine_fleet() {
    let mut dc = Datacenter::new(501);
    let policy = MigrationPolicy::same_operator_only();
    let machines: Vec<MachineId> = (0..6)
        .map(|i| {
            dc.add_machine(
                MachineLabels::new(&format!("dc-{}", i % 2 + 1), "eu"),
                &policy,
            )
        })
        .collect();

    // Deploy 12 tenants round-robin; each creates a counter and seals a
    // token.
    let n_tenants = 12usize;
    struct Tenant {
        instance: String,
        generation: usize,
        machine_idx: usize,
        counter: u8,
        expected: u32,
        sealed: Vec<u8>,
    }
    let mut tenants = Vec::new();
    for t in 0..n_tenants {
        let machine_idx = t % machines.len();
        let instance = format!("t{t}-g0");
        dc.deploy_app(
            &instance,
            machines[machine_idx],
            &tenant_image(t),
            App,
            InitRequest::New,
        )
        .unwrap();
        let counter = dc.call_app(&instance, ops::CREATE, &[]).unwrap()[0];
        let sealed = dc
            .call_app(&instance, ops::SEAL, format!("token-{t}").as_bytes())
            .unwrap();
        tenants.push(Tenant {
            instance,
            generation: 0,
            machine_idx,
            counter,
            expected: 0,
            sealed,
        });
    }

    // 60 randomized events: increments and migrations, deterministic.
    let mut rng = StdRng::seed_from_u64(777);
    for _ in 0..60 {
        let t = rng.gen_range(0..n_tenants);
        let tenant = &mut tenants[t];
        if rng.gen_bool(0.6) {
            tenant.expected += 1;
            let v = u32::from_le_bytes(
                dc.call_app(&tenant.instance, ops::INC, &[tenant.counter])
                    .unwrap()[..4]
                    .try_into()
                    .unwrap(),
            );
            assert_eq!(v, tenant.expected, "tenant {t}");
        } else {
            // Migrate to a different machine.
            let mut target_idx = rng.gen_range(0..machines.len());
            if target_idx == tenant.machine_idx {
                target_idx = (target_idx + 1) % machines.len();
            }
            tenant.generation += 1;
            let next = format!("t{t}-g{}", tenant.generation);
            dc.deploy_app(
                &next,
                machines[target_idx],
                &tenant_image(t),
                App,
                InitRequest::Migrate,
            )
            .unwrap();
            dc.migrate_app(&tenant.instance, &next).unwrap();
            tenant.instance = next;
            tenant.machine_idx = target_idx;
        }
    }

    // Every tenant's counter and sealed token survived its journey.
    for (t, tenant) in tenants.iter().enumerate() {
        let v = u32::from_le_bytes(
            dc.call_app(&tenant.instance, ops::READ, &[tenant.counter])
                .unwrap()[..4]
                .try_into()
                .unwrap(),
        );
        assert_eq!(v, tenant.expected, "tenant {t} counter");
        let token = dc
            .call_app(&tenant.instance, ops::UNSEAL, &tenant.sealed)
            .unwrap();
        assert_eq!(token, format!("token-{t}").as_bytes(), "tenant {t} token");
    }

    // No ME observed a protocol error anywhere in the fleet.
    for machine in &machines {
        let errors = dc.me_host(*machine).lock().errors.clone();
        assert!(errors.is_empty(), "{machine}: {errors:?}");
    }
}

#[test]
fn full_counter_quota_migrates_with_distinct_values() {
    // All 256 counters active, each with a distinct value: the complete
    // Table I payload crosses the machine boundary intact.
    let mut dc = Datacenter::new(502);
    let policy = MigrationPolicy::same_operator_only();
    let m1 = dc.add_machine(MachineLabels::default(), &policy);
    let m2 = dc.add_machine(MachineLabels::default(), &policy);

    dc.deploy_app("src", m1, &tenant_image(99), App, InitRequest::New)
        .unwrap();
    let mut ids = Vec::new();
    for _ in 0..256 {
        ids.push(dc.call_app("src", ops::CREATE, &[]).unwrap()[0]);
    }
    // Give the first 32 counters distinct values i+1 (incrementing all
    // 256 would be slow and adds nothing).
    for (i, id) in ids.iter().take(32).enumerate() {
        for _ in 0..=i {
            dc.call_app("src", ops::INC, &[*id]).unwrap();
        }
    }

    dc.deploy_app("dst", m2, &tenant_image(99), App, InitRequest::Migrate)
        .unwrap();
    dc.migrate_app("src", "dst").unwrap();

    for (i, id) in ids.iter().take(32).enumerate() {
        let v = u32::from_le_bytes(
            dc.call_app("dst", ops::READ, &[*id]).unwrap()[..4]
                .try_into()
                .unwrap(),
        );
        assert_eq!(v, i as u32 + 1, "counter {i}");
    }
    // The untouched tail is present with value 0.
    for id in ids.iter().skip(32) {
        let v = u32::from_le_bytes(
            dc.call_app("dst", ops::READ, &[*id]).unwrap()[..4]
                .try_into()
                .unwrap(),
        );
        assert_eq!(v, 0);
    }
    // And the destination can still create nothing (quota full) until it
    // destroys one — checked indirectly: creating must fail.
    let err = dc.call_app("dst", ops::CREATE, &[]).unwrap_err();
    assert_eq!(err, SgxError::CounterQuotaExceeded);
}
