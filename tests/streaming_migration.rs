//! End-to-end tests of the CTR-style streaming state-transfer subsystem:
//! a kvstore with multi-megabyte sealed state migrates via the chunked
//! path, survives a mid-transfer source-machine crash, resumes from the
//! last acknowledged chunk, and the destination unseals identical state.

use cloud_sim::machine::MachineLabels;
use cloud_sim::network::{Envelope, TapAction};
use mig_apps::kvstore::{self, ops as kv_ops, KvStore};
use mig_core::datacenter::{Datacenter, ResumableOutcome};
use mig_core::host::AppStatus;
use mig_core::library::InitRequest;
use mig_core::policy::MigrationPolicy;
use mig_core::transfer::TransferConfig;
use sgx_sim::machine::MachineId;
use sgx_sim::measurement::{EnclaveImage, EnclaveSigner};
use std::sync::atomic::{AtomicBool, AtomicUsize, Ordering};
use std::sync::Arc;

fn image() -> EnclaveImage {
    EnclaveImage::build(
        "stream-kv",
        1,
        b"kvstore",
        &EnclaveSigner::from_seed([71; 32]),
    )
}

fn small_image() -> EnclaveImage {
    EnclaveImage::build(
        "stream-kv-2",
        1,
        b"kvstore 2",
        &EnclaveSigner::from_seed([72; 32]),
    )
}

/// 4096 × 4 KiB values ≈ 16 MiB of sealed state.
const BULK_COUNT: u32 = 4096;
const BULK_VALUE_LEN: u32 = 4096;
const BULK_FILL: u8 = 0x5A;

fn streaming_config() -> TransferConfig {
    TransferConfig {
        stream_threshold: 64 * 1024,
        chunk_size: 1024 * 1024,
        window: 4,
        ..TransferConfig::default()
    }
}

fn dc_with_config(seed: u64, config: TransferConfig) -> (Datacenter, MachineId, MachineId) {
    let mut dc = Datacenter::new(seed);
    let policy = MigrationPolicy::same_operator_only();
    let m1 = dc.add_machine_with_transfer(MachineLabels::default(), &policy, config);
    let m2 = dc.add_machine_with_transfer(MachineLabels::default(), &policy, config);
    (dc, m1, m2)
}

/// Deploys the source kvstore on `m1` with the bulk working set loaded.
fn deploy_loaded_src(dc: &mut Datacenter, m1: MachineId) -> u32 {
    dc.deploy_app("src", m1, &image(), KvStore::new(), InitRequest::New)
        .unwrap();
    dc.call_app("src", kv_ops::INIT, &[]).unwrap();
    let out = dc
        .call_app(
            "src",
            kv_ops::BULK_PUT,
            &kvstore::encode_bulk_put(BULK_COUNT, BULK_VALUE_LEN, BULK_FILL),
        )
        .unwrap();
    let (version, state_len) = kvstore::decode_bulk_put_response(&out).unwrap();
    assert_eq!(version, 1);
    assert!(
        state_len > 16 * 1024 * 1024,
        "bulk snapshot should exceed 16 MiB, got {state_len}"
    );
    version
}

fn expected_value(i: u32) -> Vec<u8> {
    (0..BULK_VALUE_LEN as usize)
        .map(|j| BULK_FILL.wrapping_add((i as usize + j) as u8))
        .collect()
}

/// Restores the transferred snapshot into the destination store and
/// checks it is bit-identical to the source's working set.
fn verify_destination(dc: &mut Datacenter) {
    let state = dc
        .app_bulk_state("dst")
        .unwrap()
        .expect("migrated bulk state present");
    dc.call_app("dst", kv_ops::LOAD, &state).unwrap();
    let len = dc.call_app("dst", kv_ops::LEN, &[]).unwrap();
    assert_eq!(u32::from_le_bytes(len[..4].try_into().unwrap()), BULK_COUNT);
    for i in [0u32, 1, 17, BULK_COUNT / 2, BULK_COUNT - 1] {
        let key = format!("bulk-{i:08}");
        let value = dc.call_app("dst", kv_ops::GET, key.as_bytes()).unwrap();
        assert_eq!(value, expected_value(i), "entry {key} corrupted in transit");
    }
    // Counter continuity: the version counter survived the migration.
    let version = dc.call_app("dst", kv_ops::VERSION, &[]).unwrap();
    assert_eq!(u32::from_le_bytes(version[..4].try_into().unwrap()), 1);
}

/// Counts (and optionally drops) source→destination stream frames.
struct StreamTap {
    /// RA_TRANSFER frames src→dst observed.
    seen: Arc<AtomicUsize>,
    /// When `true`, frames beyond the tap's `allow` budget are dropped.
    dropping: Arc<AtomicBool>,
}

fn install_stream_tap(
    dc: &mut Datacenter,
    src: MachineId,
    dst: MachineId,
    allow: usize,
) -> StreamTap {
    let seen = Arc::new(AtomicUsize::new(0));
    let dropping = Arc::new(AtomicBool::new(false));
    let tap_seen = Arc::clone(&seen);
    let tap_dropping = Arc::clone(&dropping);
    dc.world_mut()
        .network_mut()
        .add_tap(Box::new(move |e: &Envelope| {
            if e.from.machine == src
                && e.to.machine == dst
                && e.from.service == "me"
                && e.to.service == "me"
                && !e.payload.is_empty()
                && e.payload[0] == mig_core::host::tags::RA_TRANSFER
            {
                let n = tap_seen.fetch_add(1, Ordering::SeqCst);
                if tap_dropping.load(Ordering::SeqCst) && n >= allow {
                    return TapAction::Drop;
                }
            }
            TapAction::Deliver
        }));
    StreamTap { seen, dropping }
}

/// Sums the wire bytes (and frames) of src→dst ME stream traffic.
struct ByteTap {
    frames: Arc<AtomicUsize>,
    bytes: Arc<AtomicUsize>,
}

impl ByteTap {
    fn reset(&self) {
        self.frames.store(0, Ordering::SeqCst);
        self.bytes.store(0, Ordering::SeqCst);
    }

    fn snapshot(&self) -> (usize, usize) {
        (
            self.frames.load(Ordering::SeqCst),
            self.bytes.load(Ordering::SeqCst),
        )
    }
}

fn install_byte_tap(dc: &mut Datacenter, src: MachineId, dst: MachineId) -> ByteTap {
    let frames = Arc::new(AtomicUsize::new(0));
    let bytes = Arc::new(AtomicUsize::new(0));
    let tap_frames = Arc::clone(&frames);
    let tap_bytes = Arc::clone(&bytes);
    dc.world_mut()
        .network_mut()
        .add_tap(Box::new(move |e: &Envelope| {
            if e.from.machine == src
                && e.to.machine == dst
                && e.from.service == "me"
                && e.to.service == "me"
                && e.payload.first() == Some(&mig_core::host::tags::RA_TRANSFER)
            {
                tap_frames.fetch_add(1, Ordering::SeqCst);
                tap_bytes.fetch_add(e.payload.len(), Ordering::SeqCst);
            }
            TapAction::Deliver
        }));
    ByteTap { frames, bytes }
}

#[test]
fn sixteen_mib_state_migrates_via_streamed_path() {
    let (mut dc, m1, m2) = dc_with_config(1601, streaming_config());
    let tap = install_stream_tap(&mut dc, m1, m2, usize::MAX);
    deploy_loaded_src(&mut dc, m1);
    dc.deploy_app("dst", m2, &image(), KvStore::new(), InitRequest::Migrate)
        .unwrap();

    let duration = dc.migrate_app("src", "dst").unwrap();
    assert!(duration.as_micros() > 0);

    // The state went down the chunked path: 17 chunks (16.8 MiB at
    // 1 MiB/chunk) + the ChunkStart announcement.
    let frames = tap.seen.load(Ordering::SeqCst);
    assert!(
        frames >= 18,
        "expected a chunked transfer, saw {frames} frames"
    );

    verify_destination(&mut dc);
    // The source froze and can no longer serve.
    assert_eq!(dc.app("src").lock().status(), AppStatus::Migrated);
    assert!(dc.call_app("src", kv_ops::VERSION, &[]).is_err());
}

#[test]
fn small_state_keeps_single_shot_fast_path() {
    let (mut dc, m1, m2) = dc_with_config(1602, TransferConfig::default());
    let tap = install_stream_tap(&mut dc, m1, m2, usize::MAX);
    dc.deploy_app("src", m1, &image(), KvStore::new(), InitRequest::New)
        .unwrap();
    dc.call_app("src", kv_ops::INIT, &[]).unwrap();
    dc.call_app("src", kv_ops::PUT, &kvstore::encode_put(b"k", b"v"))
        .unwrap();
    dc.deploy_app("dst", m2, &image(), KvStore::new(), InitRequest::Migrate)
        .unwrap();
    dc.migrate_app("src", "dst").unwrap();

    // One RA_TRANSFER frame: the paper's single-shot Transfer message.
    assert_eq!(tap.seen.load(Ordering::SeqCst), 1);

    let state = dc.app_bulk_state("dst").unwrap().expect("staged snapshot");
    dc.call_app("dst", kv_ops::LOAD, &state).unwrap();
    assert_eq!(dc.call_app("dst", kv_ops::GET, b"k").unwrap(), b"v");
}

#[test]
fn source_crash_mid_stream_resumes_from_last_acked_chunk() {
    let (mut dc, m1, m2) = dc_with_config(1603, streaming_config());
    // Let the announcement plus 5 chunks through, then "cut the cable".
    let tap = install_stream_tap(&mut dc, m1, m2, 6);
    deploy_loaded_src(&mut dc, m1);
    dc.deploy_app("dst", m2, &image(), KvStore::new(), InitRequest::Migrate)
        .unwrap();

    tap.dropping.store(true, Ordering::SeqCst);
    let outcome = dc.migrate_app_resumable("src", "dst").unwrap();
    let ResumableOutcome::Stalled { progress } = outcome else {
        panic!("expected a stalled transfer, got {outcome:?}");
    };
    let (acked, total) = progress.expect("stream progress available");
    assert_eq!(acked, 5, "five chunks were delivered and acknowledged");
    assert_eq!(total, 17, "16.8 MiB at 1 MiB per chunk");
    assert_eq!(dc.app("dst").lock().status(), AppStatus::AwaitingIncoming);

    // Source machine "crashes": its management VM restarts and the ME
    // comes back from the disk checkpoint `migrate_app_resumable` wrote.
    dc.restart_me(m1).unwrap();
    tap.dropping.store(false, Ordering::SeqCst);
    let frames_before_resume = tap.seen.load(Ordering::SeqCst);

    dc.resume_migration("src", "dst").unwrap();
    assert_eq!(dc.app("src").lock().status(), AppStatus::Migrated);
    assert_eq!(dc.app("dst").lock().status(), AppStatus::Ready);

    // Only the missing chunks travelled after the resume: the
    // ResumeRequest plus chunks 5..17, nowhere near a full restart.
    let resumed_frames = tap.seen.load(Ordering::SeqCst) - frames_before_resume;
    assert!(
        (13..=14).contains(&resumed_frames),
        "expected ~13 resume frames (1 request + 12 chunks), saw {resumed_frames}"
    );

    verify_destination(&mut dc);
}

#[test]
fn destination_crash_mid_stream_resumes_from_persisted_partial() {
    let (mut dc, m1, m2) = dc_with_config(1604, streaming_config());
    let tap = install_stream_tap(&mut dc, m1, m2, 6);
    deploy_loaded_src(&mut dc, m1);
    dc.deploy_app("dst", m2, &image(), KvStore::new(), InitRequest::Migrate)
        .unwrap();

    tap.dropping.store(true, Ordering::SeqCst);
    let outcome = dc.migrate_app_resumable("src", "dst").unwrap();
    assert!(matches!(outcome, ResumableOutcome::Stalled { .. }));

    // Destination management VM reboots; its partially reassembled
    // stream was checkpointed and comes back with the ME.
    dc.persist_me(m2).unwrap();
    dc.restart_me(m2).unwrap();
    {
        let dst = dc.app("dst");
        let mut dst = dst.lock();
        dst.attest_me(dc.world_mut().network_mut());
    }
    dc.run();

    tap.dropping.store(false, Ordering::SeqCst);
    dc.resume_migration("src", "dst").unwrap();
    assert_eq!(dc.app("dst").lock().status(), AppStatus::Ready);
    verify_destination(&mut dc);
}

#[test]
fn app_host_writes_periodic_durable_checkpoints() {
    let (mut dc, m1, _m2) = dc_with_config(1605, TransferConfig::default());
    dc.deploy_app("app", m1, &image(), KvStore::new(), InitRequest::New)
        .unwrap();
    dc.call_app("app", kv_ops::INIT, &[]).unwrap();
    for i in 0..10u8 {
        dc.call_app("app", kv_ops::PUT, &kvstore::encode_put(&[i], b"v"))
            .unwrap();
    }
    let host = dc.app("app");
    let (generation, blob) = host
        .lock()
        .checkpoints()
        .latest()
        .expect("checkpoints exist");
    assert!(generation >= 1, "several generations accumulated");
    drop(host);

    // A checkpoint blob is a complete sealed library state (Table II
    // plus the staged snapshot): an enclave restarted from it comes up
    // operational with its bulk state intact.
    dc.stop_app("app");
    dc.deploy_app(
        "app",
        m1,
        &image(),
        KvStore::new(),
        InitRequest::Restore { blob },
    )
    .unwrap();
    let phase = dc
        .call_app("app", mig_core::harness::ops::PHASE, &[])
        .unwrap();
    assert_eq!(phase, vec![1], "restored library is operational");
    let staged = dc.app_bulk_state("app").unwrap();
    assert!(staged.is_some(), "checkpoint carried the staged snapshot");
}

/// The acceptance scenario for delta-aware streaming: a 16 MiB store
/// migrates m1→m2 in full, ~1 % of its entries are dirtied at the
/// destination, and the repeat migration m2→m1 ships a dirty-page delta
/// that is a small fraction of the full transfer — asserted on wire
/// frame/byte telemetry.
#[test]
fn repeat_migration_ships_dirty_page_delta() {
    let (mut dc, m1, m2) = dc_with_config(1607, streaming_config());
    let fwd = install_byte_tap(&mut dc, m1, m2);
    let back_tap = install_byte_tap(&mut dc, m2, m1);
    deploy_loaded_src(&mut dc, m1);
    dc.deploy_app("dst", m2, &image(), KvStore::new(), InitRequest::Migrate)
        .unwrap();
    dc.migrate_app("src", "dst").unwrap();
    let (full_frames, full_bytes) = fwd.snapshot();
    assert!(full_frames >= 18, "first migration streams in full");

    // The destination restores its working set (adopting the migrated
    // container's sealed segments verbatim) and dirties ~1 % of the
    // entries: 40 of 4096, one counter bump.
    let state = dc.app_bulk_state("dst").unwrap().expect("migrated state");
    dc.call_app("dst", kv_ops::LOAD, &state).unwrap();
    dc.call_app(
        "dst",
        kv_ops::BULK_PUT,
        &kvstore::encode_bulk_put(40, BULK_VALUE_LEN, 0x77),
    )
    .unwrap();

    // Repeat migration back to m1: the source ME (m2) diffs against the
    // generation both MEs retained from the first transfer.
    dc.deploy_app("back", m1, &image(), KvStore::new(), InitRequest::Migrate)
        .unwrap();
    back_tap.reset();
    dc.migrate_app("dst", "back").unwrap();
    let (delta_frames, delta_bytes) = back_tap.snapshot();

    assert!(
        delta_frames <= 4,
        "~1% dirty at 1 MiB chunks is a handful of frames, saw {delta_frames}"
    );
    assert!(
        delta_bytes * 10 < full_bytes,
        "delta transfer must be under 10% of the full one: {delta_bytes} vs {full_bytes}"
    );

    // The reconstructed state is exact: dirtied entries carry the new
    // fill, untouched entries the original, and the version counter
    // continued (two updates so far).
    let state = dc.app_bulk_state("back").unwrap().expect("delta state");
    dc.call_app("back", kv_ops::LOAD, &state).unwrap();
    let len = dc.call_app("back", kv_ops::LEN, &[]).unwrap();
    assert_eq!(u32::from_le_bytes(len[..4].try_into().unwrap()), BULK_COUNT);
    let dirtied = dc.call_app("back", kv_ops::GET, b"bulk-00000007").unwrap();
    let expected_dirty: Vec<u8> = (0..BULK_VALUE_LEN as usize)
        .map(|j| 0x77u8.wrapping_add((7 + j) as u8))
        .collect();
    assert_eq!(
        dirtied, expected_dirty,
        "dirtied entry must be the new value"
    );
    let clean = dc.call_app("back", kv_ops::GET, b"bulk-00003000").unwrap();
    assert_eq!(
        clean,
        expected_value(3000),
        "clean entry survives the delta"
    );
    let version = dc.call_app("back", kv_ops::VERSION, &[]).unwrap();
    assert_eq!(u32::from_le_bytes(version[..4].try_into().unwrap()), 2);
}

/// A delta against a base the destination does not hold is NACKed and
/// the source falls back to a full stream — the migration still
/// completes, just without the savings.
#[test]
fn delta_to_unknown_base_falls_back_to_full_stream() {
    let config = streaming_config();
    let mut dc = Datacenter::new(1608);
    let policy = MigrationPolicy::same_operator_only();
    let m1 = dc.add_machine_with_transfer(MachineLabels::default(), &policy, config);
    let m2 = dc.add_machine_with_transfer(MachineLabels::default(), &policy, config);
    let m3 = dc.add_machine_with_transfer(MachineLabels::default(), &policy, config);
    let tap = install_byte_tap(&mut dc, m2, m3);

    // ~2 MiB store migrates m1→m2 in full; both MEs cache generation 0.
    dc.deploy_app("src", m1, &image(), KvStore::new(), InitRequest::New)
        .unwrap();
    dc.call_app("src", kv_ops::INIT, &[]).unwrap();
    dc.call_app(
        "src",
        kv_ops::BULK_PUT,
        &kvstore::encode_bulk_put(512, 4096, 0x21),
    )
    .unwrap();
    dc.deploy_app("dst", m2, &image(), KvStore::new(), InitRequest::Migrate)
        .unwrap();
    dc.migrate_app("src", "dst").unwrap();

    // Dirty a little, then migrate onward to m3 — whose ME has never
    // seen this enclave's state. The m2 ME optimistically announces a
    // delta against its cached base; m3 NACKs; the transfer restarts as
    // a full stream on the same channel.
    let state = dc.app_bulk_state("dst").unwrap().expect("migrated state");
    dc.call_app("dst", kv_ops::LOAD, &state).unwrap();
    dc.call_app(
        "dst",
        kv_ops::BULK_PUT,
        &kvstore::encode_bulk_put(4, 4096, 0x44),
    )
    .unwrap();
    dc.deploy_app("third", m3, &image(), KvStore::new(), InitRequest::Migrate)
        .unwrap();
    dc.migrate_app("dst", "third").unwrap();

    let (frames, bytes) = tap.snapshot();
    let state_len = dc
        .app_bulk_state("third")
        .unwrap()
        .expect("full state arrived")
        .len();
    assert!(
        bytes >= state_len,
        "fallback must ship the full state: {bytes} wire bytes for {state_len} state"
    );
    assert!(
        frames >= 4,
        "DeltaStart + full restart is several frames, saw {frames}"
    );

    // And the state is intact.
    let state = dc.app_bulk_state("third").unwrap().unwrap();
    dc.call_app("third", kv_ops::LOAD, &state).unwrap();
    let len = dc.call_app("third", kv_ops::LEN, &[]).unwrap();
    assert_eq!(u32::from_le_bytes(len[..4].try_into().unwrap()), 512);
}

/// The delta base (the ME's per-measurement generation cache) is part of
/// the persisted ME state: both MEs restart between the two migrations
/// and the repeat migration still ships a delta.
#[test]
fn delta_base_survives_me_restart() {
    let (mut dc, m1, m2) = dc_with_config(1609, streaming_config());
    let back_tap = install_byte_tap(&mut dc, m2, m1);
    let fwd = install_byte_tap(&mut dc, m1, m2);
    dc.deploy_app("src", m1, &image(), KvStore::new(), InitRequest::New)
        .unwrap();
    dc.call_app("src", kv_ops::INIT, &[]).unwrap();
    dc.call_app(
        "src",
        kv_ops::BULK_PUT,
        &kvstore::encode_bulk_put(512, 4096, 0x21),
    )
    .unwrap();
    dc.deploy_app("dst", m2, &image(), KvStore::new(), InitRequest::Migrate)
        .unwrap();
    dc.migrate_app("src", "dst").unwrap();
    let (_, full_bytes) = fwd.snapshot();

    dc.app_bulk_state("dst")
        .map(|s| dc.call_app("dst", kv_ops::LOAD, &s.unwrap()))
        .unwrap()
        .unwrap();
    dc.call_app(
        "dst",
        kv_ops::BULK_PUT,
        &kvstore::encode_bulk_put(4, 4096, 0x44),
    )
    .unwrap();

    // Management-VM reboots on both machines; the generation caches come
    // back from the sealed ME checkpoints.
    dc.persist_me(m1).unwrap();
    dc.persist_me(m2).unwrap();
    dc.restart_me(m1).unwrap();
    dc.restart_me(m2).unwrap();
    {
        let dst = dc.app("dst");
        let mut dst = dst.lock();
        dst.attest_me(dc.world_mut().network_mut());
    }
    dc.run();

    dc.deploy_app("back", m1, &image(), KvStore::new(), InitRequest::Migrate)
        .unwrap();
    back_tap.reset();
    dc.migrate_app("dst", "back").unwrap();
    let (_, delta_bytes) = back_tap.snapshot();
    assert!(
        delta_bytes * 5 < full_bytes,
        "restarted MEs still delta: {delta_bytes} vs {full_bytes}"
    );
    let state = dc.app_bulk_state("back").unwrap().expect("delta state");
    dc.call_app("back", kv_ops::LOAD, &state).unwrap();
    let len = dc.call_app("back", kv_ops::LEN, &[]).unwrap();
    assert_eq!(u32::from_le_bytes(len[..4].try_into().unwrap()), 512);
}

/// The adaptive controller: clean acks grow the send window to its
/// ceiling; a mid-stream disruption (resume renegotiation) halves the
/// chunk size for future streams and resets the window.
#[test]
fn adaptive_link_reacts_to_acks_and_disruptions() {
    let config = TransferConfig {
        stream_threshold: 64 * 1024,
        chunk_size: 1024 * 1024,
        window: 2,
        max_window: 6,
        ..TransferConfig::default()
    };

    // Clean 16 MiB migration: 17 cumulative acks push the window from 2
    // to the ceiling; the chunk size is untouched.
    let (mut dc, m1, m2) = dc_with_config(1610, config);
    deploy_loaded_src(&mut dc, m1);
    dc.deploy_app("dst", m2, &image(), KvStore::new(), InitRequest::Migrate)
        .unwrap();
    dc.migrate_app("src", "dst").unwrap();
    let link = dc
        .me_host(m1)
        .lock()
        .link_state(m2)
        .unwrap()
        .expect("link seen traffic");
    assert_eq!(link, (1024 * 1024, 6), "window grew to max, chunks intact");

    // Disrupted migration: drop frames mid-stream, resume, complete.
    // The resume renegotiation halves the chunk size and resets the
    // window before the remaining acks grow it again.
    let (mut dc, m1, m2) = dc_with_config(1611, config);
    let tap = install_stream_tap(&mut dc, m1, m2, 6);
    deploy_loaded_src(&mut dc, m1);
    dc.deploy_app("dst", m2, &image(), KvStore::new(), InitRequest::Migrate)
        .unwrap();
    tap.dropping.store(true, Ordering::SeqCst);
    let outcome = dc.migrate_app_resumable("src", "dst").unwrap();
    assert!(matches!(outcome, ResumableOutcome::Stalled { .. }));
    tap.dropping.store(false, Ordering::SeqCst);
    dc.resume_migration("src", "dst").unwrap();
    assert_eq!(dc.app("dst").lock().status(), AppStatus::Ready);
    let (chunk_size, _window) = dc
        .me_host(m1)
        .lock()
        .link_state(m2)
        .unwrap()
        .expect("link seen traffic");
    assert_eq!(
        chunk_size,
        512 * 1024,
        "one disruption halves the chunk size for future streams"
    );
}

/// The fairness acceptance test: a 16 MiB and a 256 KiB migration are
/// started together on one link. With per-nonce multiplexed streams and
/// the deficit-round-robin share of the link window, the small one must
/// complete in well under 25 % of the large one's wall-clock — measured
/// from the first stream frame on the wire to each destination's
/// incoming-migration delivery, with chunk-count telemetry backing it.
#[test]
fn concurrent_small_migration_not_starved_by_large() {
    use cloud_sim::clock::SimTime;
    use std::sync::atomic::AtomicU64;

    let config = TransferConfig {
        stream_threshold: 4096,
        chunk_size: 16 * 1024,
        window: 4,
        max_window: 8,
        ..TransferConfig::default()
    };
    let (mut dc, m1, m2) = dc_with_config(1612, config);

    // Telemetry: virtual time of the first src→dst stream frame, of each
    // destination's ME_FORWARD delivery, and running/total frame counts.
    let stream_start = Arc::new(AtomicU64::new(0));
    let big_done = Arc::new(AtomicU64::new(0));
    let small_done = Arc::new(AtomicU64::new(0));
    let frames = Arc::new(AtomicUsize::new(0));
    let frames_at_small_done = Arc::new(AtomicUsize::new(0));
    {
        let stream_start = Arc::clone(&stream_start);
        let big_done = Arc::clone(&big_done);
        let small_done = Arc::clone(&small_done);
        let frames = Arc::clone(&frames);
        let frames_at_small_done = Arc::clone(&frames_at_small_done);
        dc.world_mut()
            .network_mut()
            .add_tap(Box::new(move |e: &Envelope| {
                if e.from.machine == m1
                    && e.to.machine == m2
                    && e.from.service == "me"
                    && e.to.service == "me"
                    && e.payload.first() == Some(&mig_core::host::tags::RA_TRANSFER)
                {
                    frames.fetch_add(1, Ordering::SeqCst);
                    let _ = stream_start.compare_exchange(
                        0,
                        e.deliver_at.0.max(1),
                        Ordering::SeqCst,
                        Ordering::SeqCst,
                    );
                }
                if e.to.machine == m2
                    && e.payload.first() == Some(&mig_core::host::tags::ME_FORWARD)
                {
                    let done = match e.to.service.as_str() {
                        "app:dst" => Some(&big_done),
                        "app:dst-small" => Some(&small_done),
                        _ => None,
                    };
                    if let Some(done) = done {
                        if done
                            .compare_exchange(
                                0,
                                e.deliver_at.0.max(1),
                                Ordering::SeqCst,
                                Ordering::SeqCst,
                            )
                            .is_ok()
                            && e.to.service == "app:dst-small"
                        {
                            frames_at_small_done
                                .store(frames.load(Ordering::SeqCst), Ordering::SeqCst);
                        }
                    }
                }
                TapAction::Deliver
            }));
    }

    // 16 MiB elephant, 256 KiB mouse, both on m1.
    deploy_loaded_src(&mut dc, m1);
    dc.deploy_app(
        "src-small",
        m1,
        &small_image(),
        KvStore::new(),
        InitRequest::New,
    )
    .unwrap();
    dc.call_app("src-small", kv_ops::INIT, &[]).unwrap();
    dc.call_app(
        "src-small",
        kv_ops::BULK_PUT,
        &kvstore::encode_bulk_put(64, 4096, 0x42),
    )
    .unwrap();
    dc.deploy_app("dst", m2, &image(), KvStore::new(), InitRequest::Migrate)
        .unwrap();
    dc.deploy_app(
        "dst-small",
        m2,
        &small_image(),
        KvStore::new(),
        InitRequest::Migrate,
    )
    .unwrap();

    dc.migrate_apps_concurrent(&[("src", "dst"), ("src-small", "dst-small")])
        .unwrap();

    let start = SimTime(stream_start.load(Ordering::SeqCst));
    let big = SimTime(big_done.load(Ordering::SeqCst));
    let small = SimTime(small_done.load(Ordering::SeqCst));
    assert!(
        start.0 > 0 && big.0 > 0 && small.0 > 0,
        "telemetry captured"
    );
    let big_wall = big.since(start);
    let small_wall = small.since(start);
    assert!(
        small_wall.as_nanos() * 4 < big_wall.as_nanos(),
        "small stream must finish in < 25% of the large one's wall-clock: \
         small {small_wall:?} vs big {big_wall:?}"
    );
    let total = frames.load(Ordering::SeqCst);
    let at_small = frames_at_small_done.load(Ordering::SeqCst);
    assert!(
        at_small * 4 < total,
        "small stream completed within the first quarter of the chunk \
         traffic: {at_small} of {total} frames"
    );

    // Both payloads arrived intact.
    verify_destination(&mut dc);
    let state = dc
        .app_bulk_state("dst-small")
        .unwrap()
        .expect("small state");
    dc.call_app("dst-small", kv_ops::LOAD, &state).unwrap();
    let len = dc.call_app("dst-small", kv_ops::LEN, &[]).unwrap();
    assert_eq!(u32::from_le_bytes(len[..4].try_into().unwrap()), 64);
}

/// A dirty-page *delta* stream multiplexes with a concurrent *full*
/// stream on the same channel and both reconstruct byte-identically —
/// the per-nonce chunk chains keep the interleaved frames apart.
#[test]
fn concurrent_delta_and_full_streams_interleave() {
    let config = TransferConfig {
        stream_threshold: 4096,
        chunk_size: 64 * 1024,
        window: 4,
        ..TransferConfig::default()
    };
    let (mut dc, m1, m2) = dc_with_config(1613, config);
    let back_tap = install_byte_tap(&mut dc, m2, m1);

    // App A: ~2 MiB, migrates m1→m2 in full (both MEs cache the base).
    dc.deploy_app("a-src", m1, &image(), KvStore::new(), InitRequest::New)
        .unwrap();
    dc.call_app("a-src", kv_ops::INIT, &[]).unwrap();
    dc.call_app(
        "a-src",
        kv_ops::BULK_PUT,
        &kvstore::encode_bulk_put(512, 4096, 0x21),
    )
    .unwrap();
    dc.deploy_app("a-mid", m2, &image(), KvStore::new(), InitRequest::Migrate)
        .unwrap();
    dc.migrate_app("a-src", "a-mid").unwrap();

    // Dirty a sliver of A at m2; deploy a fresh ~2 MiB app B on m2.
    let state = dc.app_bulk_state("a-mid").unwrap().expect("A state");
    dc.call_app("a-mid", kv_ops::LOAD, &state).unwrap();
    dc.call_app(
        "a-mid",
        kv_ops::BULK_PUT,
        &kvstore::encode_bulk_put(8, 4096, 0x99),
    )
    .unwrap();
    dc.deploy_app(
        "b-src",
        m2,
        &small_image(),
        KvStore::new(),
        InitRequest::New,
    )
    .unwrap();
    dc.call_app("b-src", kv_ops::INIT, &[]).unwrap();
    dc.call_app(
        "b-src",
        kv_ops::BULK_PUT,
        &kvstore::encode_bulk_put(512, 4096, 0x55),
    )
    .unwrap();

    // Concurrent m2→m1: A's repeat migration (delta against the cached
    // base) and B's first migration (full stream) on one channel.
    dc.deploy_app("a-back", m1, &image(), KvStore::new(), InitRequest::Migrate)
        .unwrap();
    dc.deploy_app(
        "b-dst",
        m1,
        &small_image(),
        KvStore::new(),
        InitRequest::Migrate,
    )
    .unwrap();
    back_tap.reset();
    dc.migrate_apps_concurrent(&[("a-mid", "a-back"), ("b-src", "b-dst")])
        .unwrap();

    // The delta actually saved bytes: the channel carried roughly B's
    // full state plus a small delta, not two full states.
    let (_, bytes) = back_tap.snapshot();
    let a_state = dc.app_bulk_state("a-back").unwrap().expect("A delta state");
    let b_state = dc.app_bulk_state("b-dst").unwrap().expect("B full state");
    assert!(
        bytes < b_state.len() + a_state.len() / 2,
        "concurrent delta must still save bytes: {bytes} wire bytes for \
         {} + {} of state",
        a_state.len(),
        b_state.len()
    );

    // Byte-exact reconstruction on both streams.
    dc.call_app("a-back", kv_ops::LOAD, &a_state).unwrap();
    let dirtied = dc
        .call_app("a-back", kv_ops::GET, b"bulk-00000003")
        .unwrap();
    let expected: Vec<u8> = (0..4096usize)
        .map(|j| 0x99u8.wrapping_add((3 + j) as u8))
        .collect();
    assert_eq!(dirtied, expected, "dirtied entry carries the delta value");
    let version = dc.call_app("a-back", kv_ops::VERSION, &[]).unwrap();
    assert_eq!(u32::from_le_bytes(version[..4].try_into().unwrap()), 2);
    dc.call_app("b-dst", kv_ops::LOAD, &b_state).unwrap();
    let len = dc.call_app("b-dst", kv_ops::LEN, &[]).unwrap();
    assert_eq!(u32::from_le_bytes(len[..4].try_into().unwrap()), 512);
}

/// Delta cache bounds: an ME whose generation cache is byte-budgeted
/// evicts the least-recently-used base; a later delta against the
/// evicted base is NACKed and the migration falls back to a full stream
/// — completing correctly, just without the savings.
#[test]
fn evicted_delta_base_falls_back_to_full_stream() {
    let small_cache = TransferConfig {
        stream_threshold: 4096,
        chunk_size: 256 * 1024,
        window: 4,
        // Fits one ~2.2 MiB state, not two: storing B's base evicts A's.
        cache_budget: 3 * 1024 * 1024,
        ..TransferConfig::default()
    };
    let big_cache = TransferConfig {
        cache_budget: 256 * 1024 * 1024,
        ..small_cache
    };
    let mut dc = Datacenter::new(1614);
    let policy = MigrationPolicy::same_operator_only();
    let m1 = dc.add_machine_with_transfer(MachineLabels::default(), &policy, small_cache);
    let m2 = dc.add_machine_with_transfer(MachineLabels::default(), &policy, big_cache);
    let back_tap = install_byte_tap(&mut dc, m2, m1);

    let bulk = |dc: &mut Datacenter, app: &str| {
        dc.call_app(app, kv_ops::INIT, &[]).unwrap();
        dc.call_app(
            app,
            kv_ops::BULK_PUT,
            &kvstore::encode_bulk_put(512, 4096, 0x21),
        )
        .unwrap();
    };

    // A migrates m1→m2: m1 (source) caches A's base; m2 (dest) too.
    dc.deploy_app("a-src", m1, &image(), KvStore::new(), InitRequest::New)
        .unwrap();
    bulk(&mut dc, "a-src");
    dc.deploy_app("a-mid", m2, &image(), KvStore::new(), InitRequest::Migrate)
        .unwrap();
    dc.migrate_app("a-src", "a-mid").unwrap();

    // B migrates m1→m2: m1's budgeted cache must evict A's base (LRU).
    dc.deploy_app(
        "b-src",
        m1,
        &small_image(),
        KvStore::new(),
        InitRequest::New,
    )
    .unwrap();
    bulk(&mut dc, "b-src");
    dc.deploy_app(
        "b-dst",
        m2,
        &small_image(),
        KvStore::new(),
        InitRequest::Migrate,
    )
    .unwrap();
    dc.migrate_app("b-src", "b-dst").unwrap();

    // A returns m2→m1. m2 still holds A's base (big budget) and
    // announces a delta; m1 evicted it and NACKs; the transfer restarts
    // as a full stream on the same channel and completes.
    let state = dc.app_bulk_state("a-mid").unwrap().expect("A state");
    dc.call_app("a-mid", kv_ops::LOAD, &state).unwrap();
    dc.call_app(
        "a-mid",
        kv_ops::BULK_PUT,
        &kvstore::encode_bulk_put(4, 4096, 0x44),
    )
    .unwrap();
    dc.deploy_app("a-back", m1, &image(), KvStore::new(), InitRequest::Migrate)
        .unwrap();
    back_tap.reset();
    dc.migrate_app("a-mid", "a-back").unwrap();

    let (frames, bytes) = back_tap.snapshot();
    let state = dc.app_bulk_state("a-back").unwrap().expect("full state");
    assert!(
        bytes >= state.len(),
        "evicted base forces the full-stream fallback: {bytes} wire bytes \
         for {} state",
        state.len()
    );
    assert!(
        frames >= 4,
        "DeltaStart + NACKed restart is several frames, saw {frames}"
    );
    dc.call_app("a-back", kv_ops::LOAD, &state).unwrap();
    let len = dc.call_app("a-back", kv_ops::LEN, &[]).unwrap();
    assert_eq!(u32::from_le_bytes(len[..4].try_into().unwrap()), 512);
    let version = dc.call_app("a-back", kv_ops::VERSION, &[]).unwrap();
    assert_eq!(u32::from_le_bytes(version[..4].try_into().unwrap()), 2);
}

/// Regression: a below-threshold single-shot `Transfer` and a streaming
/// migration fired together on a **warm** channel must both complete.
/// The Transfer's ciphertext is larger than the stream's cell-padded
/// chunk frames, so the announcement must defer until the Stored /
/// Delivered confirmation — chunks sealed behind the in-flight Transfer
/// would otherwise overtake it on the size-ordered network and desync
/// the channel.
#[test]
fn single_shot_and_stream_fired_together_on_warm_channel_both_complete() {
    let config = TransferConfig {
        stream_threshold: 64 * 1024,
        chunk_size: 4096,
        window: 4,
        ..TransferConfig::default()
    };
    let (mut dc, m1, m2) = dc_with_config(1615, config);

    // Warm the ME↔ME channel with a throwaway migration.
    dc.deploy_app("warm", m1, &image(), KvStore::new(), InitRequest::New)
        .unwrap();
    dc.call_app("warm", kv_ops::INIT, &[]).unwrap();
    dc.deploy_app(
        "warm-dst",
        m2,
        &image(),
        KvStore::new(),
        InitRequest::Migrate,
    )
    .unwrap();
    dc.migrate_app("warm", "warm-dst").unwrap();

    // A ~48 KiB below-threshold state (single-shot) and a ~96 KiB
    // streaming state (4 KiB chunks), fired back to back.
    let small_img = EnclaveImage::build("warm-s", 1, b"kv", &EnclaveSigner::from_seed([73; 32]));
    let big_img = EnclaveImage::build("warm-b", 1, b"kv", &EnclaveSigner::from_seed([74; 32]));
    for (app, dst, img, entries) in [
        ("s-src", "s-dst", &small_img, 10u32),
        ("b-src", "b-dst", &big_img, 20),
    ] {
        dc.deploy_app(app, m1, img, KvStore::new(), InitRequest::New)
            .unwrap();
        dc.call_app(app, kv_ops::INIT, &[]).unwrap();
        dc.call_app(
            app,
            kv_ops::BULK_PUT,
            &kvstore::encode_bulk_put(entries, 4096, 0x77),
        )
        .unwrap();
        dc.deploy_app(dst, m2, img, KvStore::new(), InitRequest::Migrate)
            .unwrap();
    }
    dc.migrate_apps_concurrent(&[("s-src", "s-dst"), ("b-src", "b-dst")])
        .unwrap();

    for (dst, entries) in [("s-dst", 10u32), ("b-dst", 20)] {
        let state = dc.app_bulk_state(dst).unwrap().expect("state arrived");
        dc.call_app(dst, kv_ops::LOAD, &state).unwrap();
        let len = dc.call_app(dst, kv_ops::LEN, &[]).unwrap();
        assert_eq!(u32::from_le_bytes(len[..4].try_into().unwrap()), entries);
    }
}

#[test]
fn queued_migrations_to_same_destination_all_complete() {
    // Two enclaves request migration to the same machine before any
    // ME↔ME channel exists: the first (large state) streams, and the
    // second drains from the queue once the channel frees up — the ME
    // must re-dispatch after Delivered instead of parking it forever.
    let (mut dc, m1, m2) = dc_with_config(1606, streaming_config());
    dc.deploy_app("src-big", m1, &image(), KvStore::new(), InitRequest::New)
        .unwrap();
    dc.call_app("src-big", kv_ops::INIT, &[]).unwrap();
    dc.call_app(
        "src-big",
        kv_ops::BULK_PUT,
        &kvstore::encode_bulk_put(512, 4096, 0x21),
    )
    .unwrap();
    dc.deploy_app(
        "src-small",
        m1,
        &small_image(),
        KvStore::new(),
        InitRequest::New,
    )
    .unwrap();
    dc.call_app("src-small", kv_ops::INIT, &[]).unwrap();
    dc.call_app("src-small", kv_ops::PUT, &kvstore::encode_put(b"x", b"y"))
        .unwrap();

    dc.deploy_app(
        "dst-big",
        m2,
        &image(),
        KvStore::new(),
        InitRequest::Migrate,
    )
    .unwrap();
    dc.deploy_app(
        "dst-small",
        m2,
        &small_image(),
        KvStore::new(),
        InitRequest::Migrate,
    )
    .unwrap();

    // Queue both requests back to back, before pumping the world.
    {
        let a = dc.app("src-big");
        let mut a = a.lock();
        a.migrate_to(dc.world_mut().network_mut(), m2).unwrap();
    }
    {
        let b = dc.app("src-small");
        let mut b = b.lock();
        b.migrate_to(dc.world_mut().network_mut(), m2).unwrap();
    }
    dc.run();

    for (src, dst) in [("src-big", "dst-big"), ("src-small", "dst-small")] {
        assert_eq!(dc.app(src).lock().status(), AppStatus::Migrated, "{src}");
        assert_eq!(dc.app(dst).lock().status(), AppStatus::Ready, "{dst}");
    }
    let state = dc
        .app_bulk_state("dst-big")
        .unwrap()
        .expect("streamed state");
    dc.call_app("dst-big", kv_ops::LOAD, &state).unwrap();
    let len = dc.call_app("dst-big", kv_ops::LEN, &[]).unwrap();
    assert_eq!(u32::from_le_bytes(len[..4].try_into().unwrap()), 512);
    let state = dc
        .app_bulk_state("dst-small")
        .unwrap()
        .expect("small state");
    dc.call_app("dst-small", kv_ops::LOAD, &state).unwrap();
    assert_eq!(dc.call_app("dst-small", kv_ops::GET, b"x").unwrap(), b"y");
}
