//! Migration Enclave crash recovery: the Fig. 2 retention rule ("the
//! migration data remains in the Migration Enclave ... until the error is
//! resolved") must survive management-VM restarts, and duplicated
//! deliveries after a crash must be idempotent.

use cloud_sim::machine::MachineLabels;
use cloud_sim::network::{Envelope, TapAction};
use mig_core::datacenter::Datacenter;
use mig_core::harness::{AppCtx, AppLogic};
use mig_core::host::AppStatus;
use mig_core::library::InitRequest;
use mig_core::policy::MigrationPolicy;
use sgx_sim::measurement::{EnclaveImage, EnclaveSigner};
use sgx_sim::SgxError;
use std::sync::atomic::{AtomicUsize, Ordering};
use std::sync::Arc;

struct App;

impl AppLogic for App {
    fn handle(
        &mut self,
        ctx: &mut AppCtx<'_, '_>,
        opcode: u32,
        input: &[u8],
    ) -> Result<Vec<u8>, SgxError> {
        match opcode {
            1 => {
                let (id, _) = ctx.lib.create_migratable_counter(ctx.env)?;
                Ok(vec![id])
            }
            2 => Ok(ctx
                .lib
                .increment_migratable_counter(ctx.env, input[0])?
                .to_le_bytes()
                .to_vec()),
            3 => Ok(ctx
                .lib
                .read_migratable_counter(ctx.env, input[0])?
                .to_le_bytes()
                .to_vec()),
            _ => Err(SgxError::InvalidParameter("opcode")),
        }
    }
}

fn image() -> EnclaveImage {
    EnclaveImage::build(
        "recovery-app",
        1,
        b"code",
        &EnclaveSigner::from_seed([61; 32]),
    )
}

fn dc2(
    seed: u64,
) -> (
    Datacenter,
    sgx_sim::machine::MachineId,
    sgx_sim::machine::MachineId,
) {
    let mut dc = Datacenter::new(seed);
    let policy = MigrationPolicy::same_operator_only();
    let m1 = dc.add_machine(MachineLabels::default(), &policy);
    let m2 = dc.add_machine(MachineLabels::default(), &policy);
    (dc, m1, m2)
}

#[test]
fn stored_migration_data_survives_me_restart() {
    // Transfer arrives with no matching enclave; the destination ME
    // parks it, checkpoints, and reboots. The enclave deployed afterwards
    // still receives the data.
    let (mut dc, m1, m2) = dc2(401);
    dc.deploy_app("src", m1, &image(), App, InitRequest::New)
        .unwrap();
    let id = dc.call_app("src", 1, &[]).unwrap()[0];
    dc.call_app("src", 2, &[id]).unwrap();

    {
        let src = dc.app("src");
        let mut src = src.lock();
        src.migrate_to(dc.world_mut().network_mut(), m2).unwrap();
    }
    dc.run();
    assert_eq!(dc.app("src").lock().status(), AppStatus::MigratingOut);

    // Checkpoint + reboot the destination's management VM.
    dc.persist_me(m2).unwrap();
    dc.restart_me(m2).unwrap();

    // The matching enclave arrives after the reboot: the parked data is
    // delivered from the restored checkpoint and installed...
    dc.deploy_app("dst", m2, &image(), App, InitRequest::Migrate)
        .unwrap();
    dc.run();
    assert_eq!(dc.app("dst").lock().status(), AppStatus::Ready);
    let v = u32::from_le_bytes(
        dc.call_app("dst", 3, &[id]).unwrap()[..4]
            .try_into()
            .unwrap(),
    );
    assert_eq!(v, 1);

    // ...but the DONE acknowledgement cannot reach the source over the
    // pre-restart channel (attested channels are ephemeral). The Fig. 2
    // error rule applies: the source retained its copy; an operator
    // retry re-attests and completes (idempotently on the destination).
    assert_eq!(dc.app("src").lock().status(), AppStatus::MigratingOut);
    dc.retry_migration("src", "dst").unwrap();
    assert_eq!(dc.app("src").lock().status(), AppStatus::Migrated);
    let v = u32::from_le_bytes(
        dc.call_app("dst", 3, &[id]).unwrap()[..4]
            .try_into()
            .unwrap(),
    );
    assert_eq!(v, 1, "idempotent re-delivery left state untouched");
}

#[test]
fn me_restart_without_checkpoint_loses_parked_data() {
    // Control: without the checkpoint, the §V design still fails safe —
    // the destination never becomes ready, the source retains its copy.
    let (mut dc, m1, m2) = dc2(402);
    dc.deploy_app("src", m1, &image(), App, InitRequest::New)
        .unwrap();
    {
        let src = dc.app("src");
        let mut src = src.lock();
        src.migrate_to(dc.world_mut().network_mut(), m2).unwrap();
    }
    dc.run();

    // Reboot WITHOUT persisting.
    dc.restart_me(m2).unwrap();
    dc.deploy_app("dst", m2, &image(), App, InitRequest::Migrate)
        .unwrap();
    dc.run();

    assert_eq!(dc.app("dst").lock().status(), AppStatus::AwaitingIncoming);
    assert_eq!(dc.app("src").lock().status(), AppStatus::MigratingOut);
    // The source ME still holds the data: a retry delivers it.
    dc.retry_migration("src", "dst").unwrap();
    assert_eq!(dc.app("dst").lock().status(), AppStatus::Ready);
}

#[test]
fn duplicate_delivery_after_crash_is_idempotent() {
    // The library installs the data, but its DONE is lost; the ME
    // restarts from a checkpoint taken before delivery and re-forwards
    // when the enclave re-attests. The library acknowledges without
    // reinstalling; the source completes.
    let (mut dc, m1, m2) = dc2(403);
    dc.deploy_app("src", m1, &image(), App, InitRequest::New)
        .unwrap();
    let id = dc.call_app("src", 1, &[]).unwrap()[0];
    dc.call_app("src", 2, &[id]).unwrap();
    dc.deploy_app("dst", m2, &image(), App, InitRequest::Migrate)
        .unwrap();

    // Drop the first destination-side DONE (app→ME LIB_MSG after the
    // attestation handshake completes; tag 5 = LIB_MSG).
    let drops = Arc::new(AtomicUsize::new(0));
    let drops_tap = Arc::clone(&drops);
    dc.world_mut()
        .network_mut()
        .add_tap(Box::new(move |e: &Envelope| {
            if e.to.machine == sgx_sim::machine::MachineId(2)
                && e.to.service == "me"
                && e.from.service.starts_with("app:dst")
                && !e.payload.is_empty()
                && e.payload[0] == mig_core::host::tags::LIB_MSG
                && drops_tap.load(Ordering::SeqCst) == 0
            {
                drops_tap.fetch_add(1, Ordering::SeqCst);
                TapAction::Drop
            } else {
                TapAction::Deliver
            }
        }));

    let result = dc.migrate_app("src", "dst");
    assert!(
        result.is_err(),
        "DONE was dropped; source cannot complete yet"
    );
    assert_eq!(drops.load(Ordering::SeqCst), 1);
    // The destination *did* install the data.
    assert_eq!(dc.app("dst").lock().status(), AppStatus::Ready);
    assert_eq!(dc.app("src").lock().status(), AppStatus::MigratingOut);

    // Destination management VM reboots; parked data was checkpointed
    // earlier (the ME retains it until DONE).
    dc.persist_me(m2).unwrap();
    dc.restart_me(m2).unwrap();

    // The destination app re-attests (its old channel died with the ME);
    // the restored ME re-forwards the parked data, and the library
    // acknowledges idempotently without reinstalling.
    {
        let dst = dc.app("dst");
        let mut dst = dst.lock();
        dst.attest_me(dc.world_mut().network_mut());
    }
    dc.run();

    // The ack still cannot reach the source (its channel predates the
    // reboot); the operator-driven retry re-attests and completes.
    dc.retry_migration("src", "dst").unwrap();
    assert_eq!(dc.app("src").lock().status(), AppStatus::Migrated);
    // And the destination state is exactly what it was (no reinstall).
    let v = u32::from_le_bytes(
        dc.call_app("dst", 3, &[id]).unwrap()[..4]
            .try_into()
            .unwrap(),
    );
    assert_eq!(v, 1);
}

#[test]
fn restored_me_state_is_machine_bound() {
    // A checkpoint from machine A cannot be restored into machine B's ME
    // (native sealing): stolen ME state cannot seed a rogue machine.
    let (mut dc, m1, m2) = dc2(404);
    dc.persist_me(m1).unwrap();
    let (_, blob) = dc.me_checkpoints(m1).latest().unwrap();
    dc.me_checkpoints(m2).put(blob);
    let err = dc.restart_me(m2).unwrap_err();
    assert_eq!(err, SgxError::MacMismatch);
}
