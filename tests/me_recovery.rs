//! Migration Enclave crash recovery: the Fig. 2 retention rule ("the
//! migration data remains in the Migration Enclave ... until the error is
//! resolved") must survive management-VM restarts, and duplicated
//! deliveries after a crash must be idempotent.

use cloud_sim::machine::MachineLabels;
use cloud_sim::network::{Envelope, TapAction};
use mig_core::datacenter::Datacenter;
use mig_core::harness::{AppCtx, AppLogic};
use mig_core::host::AppStatus;
use mig_core::library::InitRequest;
use mig_core::policy::MigrationPolicy;
use sgx_sim::measurement::{EnclaveImage, EnclaveSigner};
use sgx_sim::SgxError;
use std::sync::atomic::{AtomicUsize, Ordering};
use std::sync::Arc;

struct App;

impl AppLogic for App {
    fn handle(
        &mut self,
        ctx: &mut AppCtx<'_, '_>,
        opcode: u32,
        input: &[u8],
    ) -> Result<Vec<u8>, SgxError> {
        match opcode {
            1 => {
                let (id, _) = ctx.lib.create_migratable_counter(ctx.env)?;
                Ok(vec![id])
            }
            2 => Ok(ctx
                .lib
                .increment_migratable_counter(ctx.env, input[0])?
                .to_le_bytes()
                .to_vec()),
            3 => Ok(ctx
                .lib
                .read_migratable_counter(ctx.env, input[0])?
                .to_le_bytes()
                .to_vec()),
            _ => Err(SgxError::InvalidParameter("opcode")),
        }
    }
}

fn image() -> EnclaveImage {
    EnclaveImage::build(
        "recovery-app",
        1,
        b"code",
        &EnclaveSigner::from_seed([61; 32]),
    )
}

fn dc2(
    seed: u64,
) -> (
    Datacenter,
    sgx_sim::machine::MachineId,
    sgx_sim::machine::MachineId,
) {
    let mut dc = Datacenter::new(seed);
    let policy = MigrationPolicy::same_operator_only();
    let m1 = dc.add_machine(MachineLabels::default(), &policy);
    let m2 = dc.add_machine(MachineLabels::default(), &policy);
    (dc, m1, m2)
}

#[test]
fn stored_migration_data_survives_me_restart() {
    // Transfer arrives with no matching enclave; the destination ME
    // parks it, checkpoints, and reboots. The enclave deployed afterwards
    // still receives the data.
    let (mut dc, m1, m2) = dc2(401);
    dc.deploy_app("src", m1, &image(), App, InitRequest::New)
        .unwrap();
    let id = dc.call_app("src", 1, &[]).unwrap()[0];
    dc.call_app("src", 2, &[id]).unwrap();

    {
        let src = dc.app("src");
        let mut src = src.lock();
        src.migrate_to(dc.world_mut().network_mut(), m2).unwrap();
    }
    dc.run();
    assert_eq!(dc.app("src").lock().status(), AppStatus::MigratingOut);

    // Checkpoint + reboot the destination's management VM.
    dc.persist_me(m2).unwrap();
    dc.restart_me(m2).unwrap();

    // The matching enclave arrives after the reboot: the parked data is
    // delivered from the restored checkpoint and installed...
    dc.deploy_app("dst", m2, &image(), App, InitRequest::Migrate)
        .unwrap();
    dc.run();
    assert_eq!(dc.app("dst").lock().status(), AppStatus::Ready);
    let v = u32::from_le_bytes(
        dc.call_app("dst", 3, &[id]).unwrap()[..4]
            .try_into()
            .unwrap(),
    );
    assert_eq!(v, 1);

    // ...but the DONE acknowledgement cannot reach the source over the
    // pre-restart channel (attested channels are ephemeral). The Fig. 2
    // error rule applies: the source retained its copy; an operator
    // retry re-attests and completes (idempotently on the destination).
    assert_eq!(dc.app("src").lock().status(), AppStatus::MigratingOut);
    dc.retry_migration("src", "dst").unwrap();
    assert_eq!(dc.app("src").lock().status(), AppStatus::Migrated);
    let v = u32::from_le_bytes(
        dc.call_app("dst", 3, &[id]).unwrap()[..4]
            .try_into()
            .unwrap(),
    );
    assert_eq!(v, 1, "idempotent re-delivery left state untouched");
}

#[test]
fn me_restart_without_checkpoint_loses_parked_data() {
    // Control: without the checkpoint, the §V design still fails safe —
    // the destination never becomes ready, the source retains its copy.
    let (mut dc, m1, m2) = dc2(402);
    dc.deploy_app("src", m1, &image(), App, InitRequest::New)
        .unwrap();
    {
        let src = dc.app("src");
        let mut src = src.lock();
        src.migrate_to(dc.world_mut().network_mut(), m2).unwrap();
    }
    dc.run();

    // Reboot WITHOUT persisting.
    dc.restart_me(m2).unwrap();
    dc.deploy_app("dst", m2, &image(), App, InitRequest::Migrate)
        .unwrap();
    dc.run();

    assert_eq!(dc.app("dst").lock().status(), AppStatus::AwaitingIncoming);
    assert_eq!(dc.app("src").lock().status(), AppStatus::MigratingOut);
    // The source ME still holds the data: a retry delivers it.
    dc.retry_migration("src", "dst").unwrap();
    assert_eq!(dc.app("dst").lock().status(), AppStatus::Ready);
}

#[test]
fn duplicate_delivery_after_crash_is_idempotent() {
    // The library installs the data, but its DONE is lost; the ME
    // restarts from a checkpoint taken before delivery and re-forwards
    // when the enclave re-attests. The library acknowledges without
    // reinstalling; the source completes.
    let (mut dc, m1, m2) = dc2(403);
    dc.deploy_app("src", m1, &image(), App, InitRequest::New)
        .unwrap();
    let id = dc.call_app("src", 1, &[]).unwrap()[0];
    dc.call_app("src", 2, &[id]).unwrap();
    dc.deploy_app("dst", m2, &image(), App, InitRequest::Migrate)
        .unwrap();

    // Drop the first destination-side DONE (app→ME LIB_MSG after the
    // attestation handshake completes; tag 5 = LIB_MSG).
    let drops = Arc::new(AtomicUsize::new(0));
    let drops_tap = Arc::clone(&drops);
    dc.world_mut()
        .network_mut()
        .add_tap(Box::new(move |e: &Envelope| {
            if e.to.machine == sgx_sim::machine::MachineId(2)
                && e.to.service == "me"
                && e.from.service.starts_with("app:dst")
                && !e.payload.is_empty()
                && e.payload[0] == mig_core::host::tags::LIB_MSG
                && drops_tap.load(Ordering::SeqCst) == 0
            {
                drops_tap.fetch_add(1, Ordering::SeqCst);
                TapAction::Drop
            } else {
                TapAction::Deliver
            }
        }));

    let result = dc.migrate_app("src", "dst");
    assert!(
        result.is_err(),
        "DONE was dropped; source cannot complete yet"
    );
    assert_eq!(drops.load(Ordering::SeqCst), 1);
    // The destination *did* install the data.
    assert_eq!(dc.app("dst").lock().status(), AppStatus::Ready);
    assert_eq!(dc.app("src").lock().status(), AppStatus::MigratingOut);

    // Destination management VM reboots; parked data was checkpointed
    // earlier (the ME retains it until DONE).
    dc.persist_me(m2).unwrap();
    dc.restart_me(m2).unwrap();

    // The destination app re-attests (its old channel died with the ME);
    // the restored ME re-forwards the parked data, and the library
    // acknowledges idempotently without reinstalling.
    {
        let dst = dc.app("dst");
        let mut dst = dst.lock();
        dst.attest_me(dc.world_mut().network_mut());
    }
    dc.run();

    // The ack still cannot reach the source (its channel predates the
    // reboot); the operator-driven retry re-attests and completes.
    dc.retry_migration("src", "dst").unwrap();
    assert_eq!(dc.app("src").lock().status(), AppStatus::Migrated);
    // And the destination state is exactly what it was (no reinstall).
    let v = u32::from_le_bytes(
        dc.call_app("dst", 3, &[id]).unwrap()[..4]
            .try_into()
            .unwrap(),
    );
    assert_eq!(v, 1);
}

/// The multiplexed-stream retention rule: the source ME crashes with
/// **three** concurrent chunk streams at different offsets; after
/// `restart_me` restores the sealed checkpoint, a single retry
/// renegotiates every stream's per-nonce resume point and all three
/// complete from their persisted progress.
#[test]
fn me_crash_with_three_streams_resumes_all_from_persisted_progress() {
    use mig_apps::kvstore::{self, ops as kv_ops, KvStore};
    use mig_core::transfer::TransferConfig;
    use std::sync::atomic::AtomicBool;

    let kv_image = |n: u8| {
        EnclaveImage::build(
            &format!("recovery-kv-{n}"),
            1,
            b"kv",
            &EnclaveSigner::from_seed([62 + n; 32]),
        )
    };
    let config = TransferConfig {
        stream_threshold: 4096,
        chunk_size: 256 * 1024,
        window: 4,
        ..TransferConfig::default()
    };
    let mut dc = Datacenter::new(405);
    let policy = MigrationPolicy::same_operator_only();
    let m1 = dc.add_machine_with_transfer(MachineLabels::default(), &policy, config);
    let m2 = dc.add_machine_with_transfer(MachineLabels::default(), &policy, config);

    // Cut the link after a fixed number of stream frames, mid-flight for
    // all three streams (sizes differ so their offsets do too).
    let seen = Arc::new(AtomicUsize::new(0));
    let dropping = Arc::new(AtomicBool::new(false));
    {
        let seen = Arc::clone(&seen);
        let dropping = Arc::clone(&dropping);
        dc.world_mut()
            .network_mut()
            .add_tap(Box::new(move |e: &Envelope| {
                if e.from.machine == m1
                    && e.to.machine == m2
                    && e.from.service == "me"
                    && e.to.service == "me"
                    && e.payload.first() == Some(&mig_core::host::tags::RA_TRANSFER)
                {
                    let n = seen.fetch_add(1, Ordering::SeqCst);
                    if dropping.load(Ordering::SeqCst) && n >= 12 {
                        return TapAction::Drop;
                    }
                }
                TapAction::Deliver
            }));
    }

    // Three kvstores with 2/4/6 MiB of bulk state on m1, three awaiting
    // destinations on m2.
    let sizes = [512u32, 1024, 1536];
    let mut mrs = Vec::new();
    for (i, entries) in sizes.iter().enumerate() {
        let src = format!("src-{i}");
        let dst = format!("dst-{i}");
        dc.deploy_app(
            &src,
            m1,
            &kv_image(i as u8),
            KvStore::new(),
            InitRequest::New,
        )
        .unwrap();
        dc.call_app(&src, kv_ops::INIT, &[]).unwrap();
        dc.call_app(
            &src,
            kv_ops::BULK_PUT,
            &kvstore::encode_bulk_put(*entries, 4096, 0x10 + i as u8),
        )
        .unwrap();
        dc.deploy_app(
            &dst,
            m2,
            &kv_image(i as u8),
            KvStore::new(),
            InitRequest::Migrate,
        )
        .unwrap();
        mrs.push(dc.app(&src).lock().enclave().identity().mr_enclave);
    }

    // Fire all three migrations together, then cut the cable mid-stream.
    dropping.store(true, Ordering::SeqCst);
    for i in 0..3 {
        let src = dc.app(&format!("src-{i}"));
        let mut src = src.lock();
        src.migrate_to(dc.world_mut().network_mut(), m2).unwrap();
    }
    dc.run();

    // All three stalled mid-stream, each with its own per-nonce progress.
    let mut total_acked = 0;
    for (i, mr) in mrs.iter().enumerate() {
        let progress = dc
            .me_host(m1)
            .lock()
            .stream_progress(*mr)
            .unwrap()
            .unwrap_or_else(|| panic!("stream {i} went down the chunked path"));
        assert!(
            progress.acked < progress.total_chunks,
            "stream {i} must stall mid-stream: {progress:?}"
        );
        total_acked += progress.acked;
        assert!(
            progress.total_chunks > sizes[i] / 64,
            "2/4/6 MiB at 256 KiB per chunk: {progress:?}"
        );
    }
    assert!(
        total_acked > 0,
        "the link carried some chunks before the cut"
    );
    // Per-stream link telemetry sees all three multiplexed streams.
    let (streams, _cell) = dc.me_host(m1).lock().link_streams(m2).unwrap();
    assert_eq!(streams.len(), 3, "three per-nonce streams on the link");

    // Management-VM crash: checkpoint, restart, re-attest the sources.
    dc.persist_me(m1).unwrap();
    dc.restart_me(m1).unwrap();
    for i in 0..3 {
        let src = dc.app(&format!("src-{i}"));
        let mut src = src.lock();
        src.attest_me(dc.world_mut().network_mut());
    }
    dc.run();
    dropping.store(false, Ordering::SeqCst);

    // ONE retry renegotiates every stream on the reconnected channel —
    // the restored per-nonce table covers all of them.
    dc.resume_migration("src-0", "dst-0").unwrap();
    for (i, entries) in sizes.iter().enumerate() {
        assert_eq!(
            dc.app(&format!("src-{i}")).lock().status(),
            AppStatus::Migrated,
            "src-{i}"
        );
        assert_eq!(
            dc.app(&format!("dst-{i}")).lock().status(),
            AppStatus::Ready,
            "dst-{i}"
        );
        let dst = format!("dst-{i}");
        let state = dc.app_bulk_state(&dst).unwrap().expect("migrated state");
        dc.call_app(&dst, kv_ops::LOAD, &state).unwrap();
        let len = dc.call_app(&dst, kv_ops::LEN, &[]).unwrap();
        assert_eq!(
            u32::from_le_bytes(len[..4].try_into().unwrap()),
            *entries,
            "dst-{i} reconstructed every entry"
        );
        let key = format!("bulk-{:08}", entries - 1);
        let value = dc.call_app(&dst, kv_ops::GET, key.as_bytes()).unwrap();
        let fill = 0x10 + i as u8;
        let expected: Vec<u8> = (0..4096usize)
            .map(|j| fill.wrapping_add(((entries - 1) as usize + j) as u8))
            .collect();
        assert_eq!(value, expected, "dst-{i} last entry byte-identical");
    }
}

#[test]
fn restored_me_state_is_machine_bound() {
    // A checkpoint from machine A cannot be restored into machine B's ME
    // (native sealing): stolen ME state cannot seed a rogue machine.
    let (mut dc, m1, m2) = dc2(404);
    dc.persist_me(m1).unwrap();
    let (_, blob) = dc.me_checkpoints(m1).latest().unwrap();
    dc.me_checkpoints(m2).put(blob).unwrap();
    let err = dc.restart_me(m2).unwrap_err();
    assert_eq!(err, SgxError::MacMismatch);
}
