//! The paper's four security requirements (§IV-A), verified one by one
//! as the security evaluation (§VII-A) argues them.
//!
//! * **R1 — SGX guarantees**: migratable primitives are as strong as the
//!   native ones (confidentiality, integrity, monotonicity).
//! * **R2 — Controlled migration**: only operator-authorized machines,
//!   and only the correct destination enclave, receive migration data.
//! * **R3 — Fork prevention**: no reachable interleaving leaves two
//!   operable copies of one enclave's state.
//! * **R4 — Roll-back prevention**: persistent state cannot be reverted
//!   to an earlier version, before, during, or after migration.

use cloud_sim::machine::MachineLabels;
use mig_core::datacenter::Datacenter;
use mig_core::harness::{AppCtx, AppLogic};
use mig_core::library::InitRequest;
use mig_core::policy::MigrationPolicy;
use sgx_sim::measurement::{EnclaveImage, EnclaveSigner};
use sgx_sim::wire::{WireReader, WireWriter};
use sgx_sim::SgxError;

/// Generic test app exposing the library surface.
struct TestApp;

mod t {
    pub const COUNTER_CREATE: u32 = 1;
    pub const COUNTER_INC: u32 = 2;
    pub const COUNTER_READ: u32 = 3;
    pub const SEAL: u32 = 4; // input: aad_len u32 | aad | pt
    pub const UNSEAL: u32 = 5;
}

impl AppLogic for TestApp {
    fn handle(
        &mut self,
        ctx: &mut AppCtx<'_, '_>,
        opcode: u32,
        input: &[u8],
    ) -> Result<Vec<u8>, SgxError> {
        match opcode {
            t::COUNTER_CREATE => {
                let (id, _) = ctx.lib.create_migratable_counter(ctx.env)?;
                Ok(vec![id])
            }
            t::COUNTER_INC => Ok(ctx
                .lib
                .increment_migratable_counter(ctx.env, input[0])?
                .to_le_bytes()
                .to_vec()),
            t::COUNTER_READ => Ok(ctx
                .lib
                .read_migratable_counter(ctx.env, input[0])?
                .to_le_bytes()
                .to_vec()),
            t::SEAL => {
                let mut r = WireReader::new(input);
                let aad = r.bytes_vec()?;
                let pt = r.bytes_vec()?;
                r.finish()?;
                Ok(ctx.lib.seal_migratable_data(ctx.env, &aad, &pt)?)
            }
            t::UNSEAL => {
                let (pt, aad) = ctx.lib.unseal_migratable_data(ctx.env, input)?;
                let mut w = WireWriter::new();
                w.bytes(&aad).bytes(&pt);
                Ok(w.finish())
            }
            _ => Err(SgxError::InvalidParameter("opcode")),
        }
    }
}

fn image(tag: u8) -> EnclaveImage {
    // The tag feeds the *code*, so distinct tags give distinct MRENCLAVEs
    // (the ME keys sessions and migrations by measurement).
    EnclaveImage::build(
        "sec-req-app",
        1,
        &[b"code ".as_slice(), &[tag]].concat(),
        &EnclaveSigner::from_seed([7; 32]),
    )
}

fn seal_req(aad: &[u8], pt: &[u8]) -> Vec<u8> {
    let mut w = WireWriter::new();
    w.bytes(aad).bytes(pt);
    w.finish()
}

fn dc_with_two_machines(
    seed: u64,
) -> (
    Datacenter,
    sgx_sim::machine::MachineId,
    sgx_sim::machine::MachineId,
) {
    let mut dc = Datacenter::new(seed);
    let policy = MigrationPolicy::same_operator_only();
    let m1 = dc.add_machine(MachineLabels::default(), &policy);
    let m2 = dc.add_machine(MachineLabels::default(), &policy);
    (dc, m1, m2)
}

// =======================================================================
// R1 — SGX guarantees
// =======================================================================

#[test]
fn r1_migratable_sealing_confidentiality_and_integrity() {
    let (mut dc, m1, _) = dc_with_two_machines(201);
    dc.deploy_app("app", m1, &image(1), TestApp, InitRequest::New)
        .unwrap();

    let blob = dc
        .call_app("app", t::SEAL, &seal_req(b"context", b"plaintext secret"))
        .unwrap();

    // Confidentiality: the ciphertext leaks nothing of the plaintext.
    assert!(!blob.windows(16).any(|w| w == b"plaintext secret"));

    // Integrity: every single-byte corruption is rejected.
    for i in 0..blob.len() {
        let mut bad = blob.clone();
        bad[i] ^= 0x01;
        assert!(dc.call_app("app", t::UNSEAL, &bad).is_err(), "byte {i}");
    }

    // Round trip returns both plaintext and AAD.
    let out = dc.call_app("app", t::UNSEAL, &blob).unwrap();
    let mut r = WireReader::new(&out);
    assert_eq!(r.bytes().unwrap(), b"context");
    assert_eq!(r.bytes().unwrap(), b"plaintext secret");
}

#[test]
fn r1_migratable_seal_isolated_between_enclaves() {
    // Blobs sealed by one enclave's MSK are unreadable by another
    // enclave, exactly like MRENCLAVE-policy native sealing.
    let (mut dc, m1, _) = dc_with_two_machines(202);
    dc.deploy_app("a", m1, &image(1), TestApp, InitRequest::New)
        .unwrap();
    dc.deploy_app("b", m1, &image(2), TestApp, InitRequest::New)
        .unwrap();

    let blob = dc
        .call_app("a", t::SEAL, &seal_req(b"", b"a's secret"))
        .unwrap();
    assert!(dc.call_app("b", t::UNSEAL, &blob).is_err());
}

#[test]
fn r1_migratable_counters_strictly_monotonic() {
    let (mut dc, m1, _) = dc_with_two_machines(203);
    dc.deploy_app("app", m1, &image(1), TestApp, InitRequest::New)
        .unwrap();
    let id = dc.call_app("app", t::COUNTER_CREATE, &[]).unwrap()[0];

    let mut last = 0u32;
    for _ in 0..100 {
        let v = u32::from_le_bytes(
            dc.call_app("app", t::COUNTER_INC, &[id]).unwrap()[..4]
                .try_into()
                .unwrap(),
        );
        assert!(v > last, "monotonicity violated: {v} after {last}");
        last = v;
    }
    // Reads never decrease it.
    let read = u32::from_le_bytes(
        dc.call_app("app", t::COUNTER_READ, &[id]).unwrap()[..4]
            .try_into()
            .unwrap(),
    );
    assert_eq!(read, last);
}

#[test]
fn r1_monotonicity_spans_migration() {
    // The effective counter never decreases across an arbitrary mix of
    // increments and migrations.
    let (mut dc, m1, m2) = dc_with_two_machines(204);
    dc.deploy_app("gen1", m1, &image(1), TestApp, InitRequest::New)
        .unwrap();
    let id = dc.call_app("gen1", t::COUNTER_CREATE, &[]).unwrap()[0];

    let mut last = 0u32;
    let inc = |dc: &mut Datacenter, inst: &str, last: &mut u32| {
        let v = u32::from_le_bytes(
            dc.call_app(inst, t::COUNTER_INC, &[id]).unwrap()[..4]
                .try_into()
                .unwrap(),
        );
        assert!(v > *last);
        *last = v;
    };

    inc(&mut dc, "gen1", &mut last);
    inc(&mut dc, "gen1", &mut last);

    dc.deploy_app("gen2", m2, &image(1), TestApp, InitRequest::Migrate)
        .unwrap();
    dc.migrate_app("gen1", "gen2").unwrap();
    inc(&mut dc, "gen2", &mut last);

    dc.deploy_app("gen3", m1, &image(1), TestApp, InitRequest::Migrate)
        .unwrap();
    dc.migrate_app("gen2", "gen3").unwrap();
    inc(&mut dc, "gen3", &mut last);
    assert_eq!(last, 4);
}

// =======================================================================
// R2 — Controlled migration
// =======================================================================

#[test]
fn r2_policy_restricts_destination_regions() {
    let mut dc = Datacenter::new(205);
    let eu_policy = MigrationPolicy::regions(&["eu"]);
    let m1 = dc.add_machine(MachineLabels::new("dc-1", "eu"), &eu_policy);
    let m2 = dc.add_machine(MachineLabels::new("dc-2", "us"), &eu_policy);

    dc.deploy_app("src", m1, &image(1), TestApp, InitRequest::New)
        .unwrap();
    dc.deploy_app("dst", m2, &image(1), TestApp, InitRequest::Migrate)
        .unwrap();

    assert!(dc.migrate_app("src", "dst").is_err());
    let errors = dc.me_host(m1).lock().errors.clone();
    assert!(
        errors.iter().any(|e| e.contains("policy violation")),
        "{errors:?}"
    );
}

#[test]
fn r2_destination_must_match_credential_machine() {
    // The credential binds the ME key to a machine id; a host that lies
    // about which machine it speaks for cannot redirect a migration.
    // (Covered structurally: the source ME verifies cred.machine equals
    // the library-requested destination. Here we verify the plumbing by
    // migrating to the correct machine and checking the credential path
    // ran — the negative case is exercised in attacks.rs with the rogue
    // operator.)
    let (mut dc, m1, m2) = dc_with_two_machines(206);
    dc.deploy_app("src", m1, &image(1), TestApp, InitRequest::New)
        .unwrap();
    dc.deploy_app("dst", m2, &image(1), TestApp, InitRequest::Migrate)
        .unwrap();
    dc.migrate_app("src", "dst").unwrap();
    assert!(dc.me_host(m1).lock().errors.is_empty());
    assert!(dc.me_host(m2).lock().errors.is_empty());
}

#[test]
fn r2_data_only_reaches_same_mrenclave() {
    // A different enclave (even same signer, same machine) never sees
    // the migration data; it stays parked for the right measurement.
    let (mut dc, m1, m2) = dc_with_two_machines(207);
    dc.deploy_app("src", m1, &image(1), TestApp, InitRequest::New)
        .unwrap();

    let other = EnclaveImage::build(
        "sec-req-app",
        2, // different version ⇒ different MRENCLAVE
        b"code",
        &EnclaveSigner::from_seed([1; 32]),
    );
    dc.deploy_app("other", m2, &other, TestApp, InitRequest::Migrate)
        .unwrap();

    {
        let src = dc.app("src");
        let mut src = src.lock();
        src.migrate_to(dc.world_mut().network_mut(), m2).unwrap();
    }
    dc.run();

    use mig_core::host::AppStatus;
    assert_eq!(dc.app("other").lock().status(), AppStatus::AwaitingIncoming);
}

// =======================================================================
// R3 — Fork prevention
// =======================================================================

#[test]
fn r3_no_two_operable_copies_after_migration() {
    let (mut dc, m1, m2) = dc_with_two_machines(208);
    dc.deploy_app("src", m1, &image(1), TestApp, InitRequest::New)
        .unwrap();
    let id = dc.call_app("src", t::COUNTER_CREATE, &[]).unwrap()[0];
    dc.call_app("src", t::COUNTER_INC, &[id]).unwrap();

    dc.deploy_app("dst", m2, &image(1), TestApp, InitRequest::Migrate)
        .unwrap();
    dc.migrate_app("src", "dst").unwrap();

    // Destination operates.
    dc.call_app("dst", t::COUNTER_INC, &[id]).unwrap();
    // Source refuses every migratable operation.
    assert!(dc.call_app("src", t::COUNTER_INC, &[id]).is_err());
    assert!(dc.call_app("src", t::COUNTER_READ, &[id]).is_err());
    assert!(dc.call_app("src", t::SEAL, &seal_req(b"", b"x")).is_err());
    // And restarting the source from disk fails (frozen blob).
    assert!(dc.restart_app("src", m1, &image(1), TestApp).is_err());
}

#[test]
fn r3_freeze_happens_even_if_transfer_stalls() {
    // The freeze + counter destruction happen BEFORE the data leaves the
    // machine, so even a migration that never completes cannot fork.
    let (mut dc, m1, m2) = dc_with_two_machines(209);
    dc.deploy_app("src", m1, &image(1), TestApp, InitRequest::New)
        .unwrap();
    let id = dc.call_app("src", t::COUNTER_CREATE, &[]).unwrap()[0];

    // Drop every cross-machine message: the transfer will stall forever.
    dc.world_mut()
        .network_mut()
        .add_tap(Box::new(|e: &cloud_sim::network::Envelope| {
            if e.from.machine != e.to.machine {
                cloud_sim::network::TapAction::Drop
            } else {
                cloud_sim::network::TapAction::Deliver
            }
        }));

    {
        let src = dc.app("src");
        let mut src = src.lock();
        src.migrate_to(dc.world_mut().network_mut(), m2).unwrap();
    }
    dc.run();

    // The source is already frozen and its counters destroyed.
    assert!(dc.call_app("src", t::COUNTER_INC, &[id]).is_err());
    assert!(dc.restart_app("src", m1, &image(1), TestApp).is_err());
}

// =======================================================================
// R4 — Roll-back prevention
// =======================================================================

#[test]
fn r4_library_state_blob_cannot_be_rolled_back() {
    // The adversary snapshots the Table II blob after counter creation,
    // lets the enclave advance, then rolls the disk back and restarts.
    // The restored blob references the same counters with the same
    // offsets — and the hardware counter has moved on, so effective
    // values are unaffected; the enclave simply continues at the true
    // count. No stale value is ever observable.
    let (mut dc, m1, _) = dc_with_two_machines(210);
    dc.deploy_app("app", m1, &image(1), TestApp, InitRequest::New)
        .unwrap();
    let id = dc.call_app("app", t::COUNTER_CREATE, &[]).unwrap()[0];
    dc.call_app("app", t::COUNTER_INC, &[id]).unwrap();

    let old_disk = dc.world().machine(m1).disk.snapshot();

    for _ in 0..4 {
        dc.call_app("app", t::COUNTER_INC, &[id]).unwrap();
    }

    // Roll the disk back and restart the enclave from the stale blob.
    dc.world().machine(m1).disk.restore(&old_disk);
    dc.restart_app("app", m1, &image(1), TestApp).unwrap();

    // The hardware counter is the source of truth: still 5, not 1.
    let v = u32::from_le_bytes(
        dc.call_app("app", t::COUNTER_READ, &[id]).unwrap()[..4]
            .try_into()
            .unwrap(),
    );
    assert_eq!(v, 5, "hardware counter defeats the disk rollback");
}

#[test]
fn r4_stale_offsets_cannot_survive_migration_boundary() {
    // Variant of the §III-C defence: an old Table II blob (with smaller
    // offsets) re-fed during a later incarnation is either frozen or
    // references destroyed counters — it can never load.
    let (mut dc, m1, m2) = dc_with_two_machines(211);
    dc.deploy_app("gen1", m1, &image(1), TestApp, InitRequest::New)
        .unwrap();
    let id = dc.call_app("gen1", t::COUNTER_CREATE, &[]).unwrap()[0];
    dc.call_app("gen1", t::COUNTER_INC, &[id]).unwrap();

    // Adversary snapshots m1's disk before migration.
    let pre_migration = dc.world().machine(m1).disk.snapshot();

    dc.deploy_app("gen2", m2, &image(1), TestApp, InitRequest::Migrate)
        .unwrap();
    dc.migrate_app("gen1", "gen2").unwrap();
    dc.call_app("gen2", t::COUNTER_INC, &[id]).unwrap(); // effective 2

    // Migrate BACK to m1 (fresh incarnation, fresh hardware counters).
    dc.deploy_app("gen3", m1, &image(1), TestApp, InitRequest::Migrate)
        .unwrap();
    dc.migrate_app("gen2", "gen3").unwrap();

    // Now roll m1's disk back to the pre-migration snapshot and restart
    // the ORIGINAL incarnation from it: that blob's counters were
    // destroyed in the first migration, even though a fresh incarnation
    // (gen3) of the same MRENCLAVE now legitimately runs on m1.
    dc.world().machine(m1).disk.restore(&pre_migration);
    let err = dc.restart_app("gen1", m1, &image(1), TestApp).unwrap_err();
    assert!(
        matches!(err, SgxError::Enclave(ref m) if m.contains("stale") || m.contains("frozen")),
        "{err:?}"
    );
}

#[test]
fn r4_unseal_rejects_cross_incarnation_blob_forgery() {
    // Sealed snapshots from a *different* enclave's MSK cannot be passed
    // off after migration (the MSK travels, so legitimate blobs work —
    // foreign ones never do).
    let (mut dc, m1, m2) = dc_with_two_machines(212);
    dc.deploy_app("src", m1, &image(1), TestApp, InitRequest::New)
        .unwrap();
    dc.deploy_app("evil", m1, &image(2), TestApp, InitRequest::New)
        .unwrap();

    let legit = dc
        .call_app("src", t::SEAL, &seal_req(b"", b"real"))
        .unwrap();
    let forged = dc
        .call_app("evil", t::SEAL, &seal_req(b"", b"fake"))
        .unwrap();

    dc.deploy_app("dst", m2, &image(1), TestApp, InitRequest::Migrate)
        .unwrap();
    dc.migrate_app("src", "dst").unwrap();

    assert!(dc.call_app("dst", t::UNSEAL, &legit).is_ok());
    assert!(dc.call_app("dst", t::UNSEAL, &forged).is_err());
}
