//! The paper's motivating workloads (§III-B) running over the migration
//! framework: a Teechan-style payment channel and a TrInX-style certified
//! counter service, both surviving machine migration with their security
//! guarantees intact.

use cloud_sim::machine::MachineLabels;
use mig_apps::teechan::{self, TeechanNode};
use mig_apps::trinx::{self, Certificate, TrinxService};
use mig_apps::{teechan_image, trinx_image};
use mig_core::datacenter::Datacenter;
use mig_core::library::InitRequest;
use mig_core::policy::MigrationPolicy;
use sgx_sim::machine::MachineId;

fn dc3(seed: u64) -> (Datacenter, MachineId, MachineId, MachineId) {
    let mut dc = Datacenter::new(seed);
    let policy = MigrationPolicy::same_operator_only();
    let m1 = dc.add_machine(MachineLabels::new("dc-1", "eu"), &policy);
    let m2 = dc.add_machine(MachineLabels::new("dc-1", "eu"), &policy);
    let m3 = dc.add_machine(MachineLabels::new("dc-1", "eu"), &policy);
    (dc, m1, m2, m3)
}

// =======================================================================
// Teechan
// =======================================================================

const CHANNEL_ID: [u8; 16] = [0xC4; 16];
const CHANNEL_KEY: [u8; 16] = [0x8E; 16];

fn open_channel(dc: &mut Datacenter, alice: &str, bob: &str) {
    dc.call_app(
        alice,
        teechan::ops::SETUP,
        &teechan::encode_setup(0, &CHANNEL_ID, &CHANNEL_KEY, 1_000, 1_000),
    )
    .unwrap();
    dc.call_app(
        bob,
        teechan::ops::SETUP,
        &teechan::encode_setup(1, &CHANNEL_ID, &CHANNEL_KEY, 1_000, 1_000),
    )
    .unwrap();
}

fn pay(dc: &mut Datacenter, from: &str, to: &str, amount: u64) {
    let payment = dc
        .call_app(from, teechan::ops::PAY, amount.to_le_bytes().as_ref())
        .unwrap();
    dc.call_app(to, teechan::ops::RECEIVE, &payment).unwrap();
}

fn balances(dc: &mut Datacenter, who: &str) -> (u64, u64) {
    let out = dc.call_app(who, teechan::ops::BALANCES, &[]).unwrap();
    teechan::decode_balances(&out).unwrap()
}

#[test]
fn payment_channel_works_and_conserves_funds() {
    let (mut dc, m1, m2, _) = dc3(301);
    dc.deploy_app(
        "alice",
        m1,
        &teechan_image(),
        TeechanNode::new(),
        InitRequest::New,
    )
    .unwrap();
    dc.deploy_app(
        "bob",
        m2,
        &teechan_image(),
        TeechanNode::new(),
        InitRequest::New,
    )
    .unwrap();
    open_channel(&mut dc, "alice", "bob");

    pay(&mut dc, "alice", "bob", 250);
    pay(&mut dc, "bob", "alice", 100);
    pay(&mut dc, "alice", "bob", 50);

    let (a_mine, a_peer) = balances(&mut dc, "alice");
    let (b_mine, b_peer) = balances(&mut dc, "bob");
    assert_eq!(a_mine, 800);
    assert_eq!(b_mine, 1200);
    assert_eq!(a_mine, b_peer);
    assert_eq!(b_mine, a_peer);
    assert_eq!(a_mine + b_mine, 2_000, "channel conserves funds");
}

#[test]
fn payment_channel_rejects_tampered_and_replayed_payments() {
    let (mut dc, m1, m2, _) = dc3(302);
    dc.deploy_app(
        "alice",
        m1,
        &teechan_image(),
        TeechanNode::new(),
        InitRequest::New,
    )
    .unwrap();
    dc.deploy_app(
        "bob",
        m2,
        &teechan_image(),
        TeechanNode::new(),
        InitRequest::New,
    )
    .unwrap();
    open_channel(&mut dc, "alice", "bob");

    let payment = dc
        .call_app("alice", teechan::ops::PAY, 100u64.to_le_bytes().as_ref())
        .unwrap();
    // Tampered amount.
    let mut bad = payment.clone();
    bad[20] ^= 1;
    assert!(dc.call_app("bob", teechan::ops::RECEIVE, &bad).is_err());
    // Legitimate delivery.
    dc.call_app("bob", teechan::ops::RECEIVE, &payment).unwrap();
    // Replay.
    assert!(dc.call_app("bob", teechan::ops::RECEIVE, &payment).is_err());
    // Reflection back at the sender.
    assert!(dc
        .call_app("alice", teechan::ops::RECEIVE, &payment)
        .is_err());
}

#[test]
fn channel_endpoint_migrates_with_balances_intact() {
    let (mut dc, m1, m2, m3) = dc3(303);
    dc.deploy_app(
        "alice",
        m1,
        &teechan_image(),
        TeechanNode::new(),
        InitRequest::New,
    )
    .unwrap();
    dc.deploy_app(
        "bob",
        m2,
        &teechan_image(),
        TeechanNode::new(),
        InitRequest::New,
    )
    .unwrap();
    open_channel(&mut dc, "alice", "bob");
    pay(&mut dc, "alice", "bob", 300);

    // Persist Bob's endpoint, migrate it to m3, and restore.
    let resp = dc.call_app("bob", teechan::ops::PERSIST, &[]).unwrap();
    let (_version, blob) = teechan::decode_persist_response(&resp).unwrap();

    dc.deploy_app(
        "bob2",
        m3,
        &teechan_image(),
        TeechanNode::new(),
        InitRequest::Migrate,
    )
    .unwrap();
    dc.migrate_app("bob", "bob2").unwrap();
    dc.call_app("bob2", teechan::ops::RESTORE, &blob).unwrap();

    let (mine, peer) = balances(&mut dc, "bob2");
    assert_eq!(mine, 1300);
    assert_eq!(peer, 700);

    // The channel continues: payments flow to/from the migrated endpoint.
    pay(&mut dc, "bob2", "alice", 50);
    let (a_mine, _) = balances(&mut dc, "alice");
    assert_eq!(a_mine, 750);
}

#[test]
fn stale_channel_state_rejected_after_migration() {
    // A Teechan endpoint cannot be rolled back across a migration: the
    // §III-C scenario applied to the channel workload.
    let (mut dc, m1, _, m3) = dc3(304);
    dc.deploy_app(
        "alice",
        m1,
        &teechan_image(),
        TeechanNode::new(),
        InitRequest::New,
    )
    .unwrap();
    dc.deploy_app(
        "bob",
        m1,
        &teechan_image(),
        TeechanNode::new(),
        InitRequest::New,
    )
    .unwrap();
    open_channel(&mut dc, "alice", "bob");

    // Bob persists at a rich state (v1)...
    pay(&mut dc, "alice", "bob", 500);
    let resp = dc.call_app("bob", teechan::ops::PERSIST, &[]).unwrap();
    let (_v1, rich_blob) = teechan::decode_persist_response(&resp).unwrap();

    // ...then pays most of it away and persists again (v2).
    pay(&mut dc, "bob", "alice", 1_400);
    let resp = dc.call_app("bob", teechan::ops::PERSIST, &[]).unwrap();
    let (_v2, poor_blob) = teechan::decode_persist_response(&resp).unwrap();

    // Bob migrates to m3.
    dc.deploy_app(
        "bob2",
        m3,
        &teechan_image(),
        TeechanNode::new(),
        InitRequest::Migrate,
    )
    .unwrap();
    dc.migrate_app("bob", "bob2").unwrap();

    // The adversary serves the rich v1 snapshot: rejected.
    let err = dc
        .call_app("bob2", teechan::ops::RESTORE, &rich_blob)
        .unwrap_err();
    assert!(
        matches!(err, sgx_sim::SgxError::Enclave(ref m) if m.contains("rollback")),
        "{err:?}"
    );
    // The fresh snapshot restores fine.
    dc.call_app("bob2", teechan::ops::RESTORE, &poor_blob)
        .unwrap();
    let (mine, _) = balances(&mut dc, "bob2");
    assert_eq!(mine, 100);
}

// =======================================================================
// TrInX
// =======================================================================

const TRINX_KEY: [u8; 16] = [0x77; 16];

fn certify(dc: &mut Datacenter, instance: &str, counter: u32, msg: &[u8]) -> Certificate {
    let out = dc
        .call_app(
            instance,
            trinx::ops::CERTIFY,
            &trinx::encode_certify(counter, msg),
        )
        .unwrap();
    Certificate::from_bytes(&out).unwrap()
}

#[test]
fn trinx_certificates_are_verifiable_and_ordered() {
    let (mut dc, m1, _, _) = dc3(305);
    dc.deploy_app(
        "trinx",
        m1,
        &trinx_image(),
        TrinxService::new(),
        InitRequest::New,
    )
    .unwrap();
    dc.call_app("trinx", trinx::ops::INIT, &TRINX_KEY).unwrap();
    dc.call_app("trinx", trinx::ops::CREATE, &trinx::encode_create(1))
        .unwrap();

    let c1 = certify(&mut dc, "trinx", 1, b"request A");
    let c2 = certify(&mut dc, "trinx", 1, b"request B");
    let c3 = certify(&mut dc, "trinx", 1, b"request C");

    assert!(c1.verify(&TRINX_KEY, b"request A"));
    assert!(!c1.verify(&TRINX_KEY, b"request B"));
    assert_eq!((c1.value, c2.value, c3.value), (1, 2, 3));
    assert!(!trinx::detect_equivocation(&[c1, c2, c3]));
}

#[test]
fn trinx_counter_values_never_repeat_across_migration() {
    // The Hybster guarantee: an adversary must not obtain two different
    // messages certified at the same counter value — even by migrating
    // the service between machines.
    let (mut dc, m1, m2, _) = dc3(306);
    dc.deploy_app(
        "t1",
        m1,
        &trinx_image(),
        TrinxService::new(),
        InitRequest::New,
    )
    .unwrap();
    dc.call_app("t1", trinx::ops::INIT, &TRINX_KEY).unwrap();
    dc.call_app("t1", trinx::ops::CREATE, &trinx::encode_create(1))
        .unwrap();

    let mut certs = Vec::new();
    certs.push(certify(&mut dc, "t1", 1, b"op-1"));
    certs.push(certify(&mut dc, "t1", 1, b"op-2"));

    // Persist, migrate, restore — then continue certifying.
    let resp = dc.call_app("t1", trinx::ops::PERSIST, &[]).unwrap();
    let mut r = sgx_sim::wire::WireReader::new(&resp);
    let _version = r.u32().unwrap();
    let blob = r.bytes_vec().unwrap();

    dc.deploy_app(
        "t2",
        m2,
        &trinx_image(),
        TrinxService::new(),
        InitRequest::Migrate,
    )
    .unwrap();
    dc.migrate_app("t1", "t2").unwrap();
    dc.call_app("t2", trinx::ops::RESTORE, &blob).unwrap();

    certs.push(certify(&mut dc, "t2", 1, b"op-3"));
    certs.push(certify(&mut dc, "t2", 1, b"op-4"));

    // Strictly increasing values 1..=4, no equivocation.
    let values: Vec<u64> = certs.iter().map(|c| c.value).collect();
    assert_eq!(values, vec![1, 2, 3, 4]);
    assert!(!trinx::detect_equivocation(&certs));
    for (cert, msg) in certs
        .iter()
        .zip([b"op-1".as_slice(), b"op-2", b"op-3", b"op-4"])
    {
        assert!(cert.verify(&TRINX_KEY, msg));
    }
}

#[test]
fn trinx_rollback_would_enable_equivocation_and_is_blocked() {
    let (mut dc, m1, m2, _) = dc3(307);
    dc.deploy_app(
        "t1",
        m1,
        &trinx_image(),
        TrinxService::new(),
        InitRequest::New,
    )
    .unwrap();
    dc.call_app("t1", trinx::ops::INIT, &TRINX_KEY).unwrap();
    dc.call_app("t1", trinx::ops::CREATE, &trinx::encode_create(1))
        .unwrap();

    // Snapshot at counter value 1.
    let c1 = certify(&mut dc, "t1", 1, b"commit X");
    let resp = dc.call_app("t1", trinx::ops::PERSIST, &[]).unwrap();
    let mut r = sgx_sim::wire::WireReader::new(&resp);
    let _ = r.u32().unwrap();
    let old_blob = r.bytes_vec().unwrap();

    // Advance and persist again.
    let _c2 = certify(&mut dc, "t1", 1, b"commit Y");
    let resp = dc.call_app("t1", trinx::ops::PERSIST, &[]).unwrap();
    let mut r = sgx_sim::wire::WireReader::new(&resp);
    let _ = r.u32().unwrap();
    let new_blob = r.bytes_vec().unwrap();

    // Migrate.
    dc.deploy_app(
        "t2",
        m2,
        &trinx_image(),
        TrinxService::new(),
        InitRequest::Migrate,
    )
    .unwrap();
    dc.migrate_app("t1", "t2").unwrap();

    // Restoring the OLD state (which would let the service re-certify
    // value 2 for a different message → equivocation) must fail.
    let err = dc
        .call_app("t2", trinx::ops::RESTORE, &old_blob)
        .unwrap_err();
    assert!(
        matches!(err, sgx_sim::SgxError::Enclave(ref m) if m.contains("rollback")),
        "{err:?}"
    );

    // The fresh state restores, and certification continues safely.
    dc.call_app("t2", trinx::ops::RESTORE, &new_blob).unwrap();
    let c3 = certify(&mut dc, "t2", 1, b"commit Z");
    assert_eq!(c3.value, 3);
    assert!(!trinx::detect_equivocation(&[c1, c3]));
}

// =======================================================================
// ROTE (§IX): distributed counters + migratable identity key
// =======================================================================

#[test]
fn rote_identity_key_migrates_counters_stay_distributed() {
    // The paper's §IX observation: with ROTE-style virtual counters, the
    // *counters* need no migration — only the client's identity key does.
    // The key travels as migratable-sealed data; the quorum group keeps
    // enforcing monotonicity across the move.
    use mig_apps::rote::{quorum_increment, verify_quorum, RoteIdentityKey, RoteReplica};
    use mig_core::harness::AppCtx;
    use sgx_sim::SgxError;

    struct RoteUser;
    impl mig_core::harness::AppLogic for RoteUser {
        fn handle(
            &mut self,
            ctx: &mut AppCtx<'_, '_>,
            opcode: u32,
            input: &[u8],
        ) -> Result<Vec<u8>, SgxError> {
            match opcode {
                // Seal the ROTE identity key under the MSK.
                1 => Ok(ctx.lib.seal_migratable_data(ctx.env, b"rote-id", input)?),
                // Recover it (post-migration).
                2 => {
                    let (key, aad) = ctx.lib.unseal_migratable_data(ctx.env, input)?;
                    if aad != b"rote-id" {
                        return Err(SgxError::Decode);
                    }
                    Ok(key)
                }
                _ => Err(SgxError::InvalidParameter("opcode")),
            }
        }
    }

    let image = sgx_sim::measurement::EnclaveImage::build(
        "rote-user",
        1,
        b"code",
        &sgx_sim::measurement::EnclaveSigner::from_seed([81; 32]),
    );
    let (mut dc, m1, m2, _) = dc3(308);

    // The ROTE group: three replicas on machines that never migrate.
    const GROUP_KEY: [u8; 16] = [0x55; 16];
    let mut replicas: Vec<RoteReplica> = (0..3).map(|i| RoteReplica::new(i, GROUP_KEY)).collect();

    // The client enclave seals its identity key with the migratable seal.
    dc.deploy_app("rote-src", m1, &image, RoteUser, InitRequest::New)
        .unwrap();
    let identity_key = RoteIdentityKey([0xA7; 32]);
    let sealed_key = dc.call_app("rote-src", 1, &identity_key.0).unwrap();

    // Counter activity before migration.
    let acks = quorum_increment(&mut replicas, &identity_key, 1, 2).unwrap();
    assert!(verify_quorum(
        &acks,
        &GROUP_KEY,
        &identity_key.identity(),
        1,
        2
    ));
    quorum_increment(&mut replicas, &identity_key, 2, 2).unwrap();

    // Migrate the client; the replicas are untouched.
    dc.deploy_app("rote-dst", m2, &image, RoteUser, InitRequest::Migrate)
        .unwrap();
    dc.migrate_app("rote-src", "rote-dst").unwrap();

    // The destination recovers the identity key from the sealed blob...
    let recovered = dc.call_app("rote-dst", 2, &sealed_key).unwrap();
    assert_eq!(recovered, identity_key.0);
    let recovered_key = RoteIdentityKey(recovered.try_into().unwrap());

    // ...and continues counting where it left off; the group rejects any
    // attempt to reuse an old value (rollback protection without any
    // hardware-counter migration).
    let acks = quorum_increment(&mut replicas, &recovered_key, 3, 2).unwrap();
    assert!(verify_quorum(
        &acks,
        &GROUP_KEY,
        &recovered_key.identity(),
        3,
        2
    ));
    assert!(quorum_increment(&mut replicas, &recovered_key, 2, 2).is_err());
}
