//! Seeded chaos soak harness: drives supervised migrations under
//! generated fault schedules and asserts the convergence invariant.
//!
//! One [`run_seed`] call builds a fresh two-machine datacenter, deploys
//! `1 + seed % 4` concurrent kvstore migration streams, arms a
//! [`mig_chaos::FaultPlan`] generated from the seed (network drops /
//! corruption / delays / partitions, failed and torn disk writes, ME
//! crashes, scheduled ECALL aborts), and supervises the migrations to
//! completion with the [`mig_core::supervisor::MigrationSupervisor`].
//!
//! The invariant asserted for every stream:
//!
//! * **Released** — the destination is `Ready` exactly once and its
//!   bulk state is bit-identical to the source's pre-migration
//!   snapshot, with the source frozen; or
//! * **Aborted** — the destination never released (no half-installed
//!   state), the source's durable checkpoint is intact, and — with the
//!   fault window closed — the retained source state still converges
//!   to a single bit-identical release on a later operator retry
//!   (nothing was lost).
//!
//! Everything runs on virtual time from the seed alone, so a seed's
//! [`SeedReport`] (including the fired-fault history) is byte-stable
//! across reruns.

use cloud_sim::machine::MachineLabels;
use mig_apps::kvstore::{self, ops as kv_ops, KvStore};
use mig_chaos::{ChaosEngine, ChaosReport, FaultKind, FaultPlan, FaultSpec, SeedReport};
use mig_core::datacenter::Datacenter;
use mig_core::host::AppStatus;
use mig_core::library::InitRequest;
use mig_core::policy::MigrationPolicy;
use mig_core::supervisor::{HostFault, MigrationOutcome, MigrationSupervisor, SupervisorConfig};
use mig_core::transfer::TransferConfig;
use mig_trace::Edge;
use sgx_sim::machine::MachineId;
use sgx_sim::measurement::{EnclaveImage, EnclaveSigner};
use std::time::Duration;

/// Per-stream bulk value size (bytes).
const VALUE_LEN: u32 = 2048;

/// Transfer geometry of the soak fleet: small chunks so even modest
/// state exercises the streamed path, plus tight supervision knobs so
/// fault-heavy seeds abort within a bounded virtual-time budget.
#[must_use]
pub fn soak_config() -> TransferConfig {
    TransferConfig {
        stream_threshold: 4096,
        chunk_size: 4096,
        window: 4,
        deadline: Duration::from_secs(2),
        retry_budget: 4,
        backoff_base: Duration::from_millis(1),
        ..TransferConfig::default()
    }
}

fn stream_image(i: u32) -> EnclaveImage {
    let name = format!("soak-kv-{i}");
    let mut signer_seed = [0x53u8; 32];
    signer_seed[0] = i as u8;
    EnclaveImage::build(
        &name,
        1,
        name.as_bytes(),
        &EnclaveSigner::from_seed(signer_seed),
    )
}

/// Fault envelope for one seeded run: a mixed burst inside the first
/// ~10 ms of virtual time after setup, which brackets the transfers.
fn soak_spec(start: cloud_sim::SimTime, machines: Vec<MachineId>) -> FaultSpec {
    FaultSpec {
        start,
        horizon: Duration::from_millis(10),
        machines,
        net_faults: 3,
        partitions: 1,
        disk_faults: 2,
        crashes: 1,
        ecall_aborts: 1,
        max_delay: Duration::from_millis(2),
        max_partition: Duration::from_millis(3),
    }
}

/// Best-effort post-abort convergence: re-attest both endpoints and
/// re-dispatch the retained transfer a few times (the operator retry of
/// Fig. 2), with the fault window already closed. Returns whether the
/// destination released.
fn converge(dc: &mut Datacenter, src: &str, dst: &str) -> bool {
    let mr = dc.app(src).lock().enclave().identity().mr_enclave;
    let src_machine = dc.app_machine(src);
    let dst_machine = dc.app_machine(dst);
    for _ in 0..4 {
        for instance in [src, dst] {
            let app = dc.app(instance);
            app.lock().attest_me(dc.world_mut().network_mut());
        }
        dc.world_mut().run_until_idle();
        let me = dc.me_host(src_machine);
        let result = {
            let mut me = me.lock();
            me.retry_migration(dc.world_mut().network_mut(), mr, dst_machine)
        };
        drop(result);
        dc.world_mut().run_until_idle();
        if dc.app(dst).lock().status() == AppStatus::Ready {
            return true;
        }
    }
    false
}

/// Runs one seeded chaos soak iteration and asserts the convergence
/// invariant for every stream.
///
/// # Panics
///
/// Panics when the invariant is violated — a double release, lost or
/// corrupted state, or a half-released abort.
#[must_use]
pub fn run_seed(seed: u64) -> SeedReport {
    let streams = 1 + (seed % 4) as u32;
    let config = soak_config();
    let mut dc = Datacenter::new(seed);
    let policy = MigrationPolicy::same_operator_only();
    let m1 = dc.add_machine_with_transfer(MachineLabels::default(), &policy, config);
    let m2 = dc.add_machine_with_transfer(MachineLabels::default(), &policy, config);

    // Deploy the fleet: k loaded sources on m1, k awaiting destinations
    // on m2, each pair its own enclave image (streams are keyed by
    // measurement).
    let mut pairs: Vec<(String, String)> = Vec::new();
    let mut snapshots: Vec<Vec<u8>> = Vec::new();
    for i in 0..streams {
        let (src, dst) = (format!("src-{i}"), format!("dst-{i}"));
        let image = stream_image(i);
        dc.deploy_app(&src, m1, &image, KvStore::new(), InitRequest::New)
            .expect("deploy source");
        dc.call_app(&src, kv_ops::INIT, &[]).expect("init source");
        let count = 48 + 16 * i;
        dc.call_app(
            &src,
            kv_ops::BULK_PUT,
            &kvstore::encode_bulk_put(count, VALUE_LEN, 0x40 + i as u8),
        )
        .expect("load source");
        dc.deploy_app(&dst, m2, &image, KvStore::new(), InitRequest::Migrate)
            .expect("deploy destination");
        let snapshot = dc
            .app_bulk_state(&src)
            .expect("read staged state")
            .expect("source staged bulk state");
        snapshots.push(snapshot);
        pairs.push((src, dst));
    }

    // Arm the fault plan only now: setup ran clean, the transfers run
    // under fire.
    let engine = ChaosEngine::new(FaultPlan::generate(
        seed,
        &soak_spec(dc.world().now(), vec![m1, m2]),
    ));
    dc.world_mut()
        .network_mut()
        .add_tap(engine.network_tap("me"));
    let clock = dc.world().clock();
    for machine in [m1, m2] {
        dc.world()
            .machine(machine)
            .disk
            .set_fault_hook(engine.disk_hook(machine, clock.clone()));
    }

    let supervisor = MigrationSupervisor::new(SupervisorConfig::from(&config));
    let pair_refs: Vec<(&str, &str)> = pairs
        .iter()
        .map(|(s, d)| (s.as_str(), d.as_str()))
        .collect();
    let poll_engine = engine.clone();
    let outcomes = supervisor.run(&mut dc, &pair_refs, move |dc| {
        poll_engine
            .take_due_host_faults(dc.world().now())
            .into_iter()
            .map(|fault| match fault {
                mig_chaos::HostFault::CrashMe(m) => HostFault::CrashMe(m),
                mig_chaos::HostFault::EcallAbort(m) => HostFault::EcallAbort(m),
            })
            .collect()
    });

    // Close the fault window before verifying: snapshot the fired
    // history, disarm what never fired, drop the disk hooks.
    let faults = engine.fired();
    engine.disarm();
    for machine in [m1, m2] {
        dc.world().machine(machine).disk.clear_fault_hook();
        // A scheduled ECALL abort the run never consumed must not fire
        // on the verification ECALLs below.
        dc.world()
            .machine(machine)
            .sgx
            .clear_scheduled_ecall_aborts();
    }
    // Mirror the network/disk fault history into the source ME's trace
    // (the supervisor already records machine-level faults as it applies
    // them), so the exported trace accounts for the full history.
    {
        let me = dc.me_host(m1);
        let mut me = me.lock();
        for record in &faults {
            match record.kind {
                FaultKind::CrashMe { .. } | FaultKind::EcallAbort { .. } => {}
                _ => me.record_channel_edge(m1, m2, record.at, Edge::Fault),
            }
        }
    }

    let mut released = 0u32;
    let mut aborted = 0u32;
    for (i, outcome) in outcomes.iter().enumerate() {
        let (src, dst) = (&pairs[i].0, &pairs[i].1);
        match outcome {
            MigrationOutcome::Released { .. } => {
                released += 1;
                assert_eq!(
                    dc.app(dst).lock().status(),
                    AppStatus::Ready,
                    "seed {seed} stream {i}: released outcome but destination not ready"
                );
                let state = dc
                    .app_bulk_state(dst)
                    .expect("read released state")
                    .expect("released destination holds state");
                assert_eq!(
                    state, snapshots[i],
                    "seed {seed} stream {i}: released state not bit-identical"
                );
                assert_ne!(
                    dc.app(src).lock().status(),
                    AppStatus::Ready,
                    "seed {seed} stream {i}: both sides live after release"
                );
            }
            MigrationOutcome::Aborted { .. } => {
                aborted += 1;
                assert_ne!(
                    dc.app(dst).lock().status(),
                    AppStatus::Ready,
                    "seed {seed} stream {i}: aborted but destination released"
                );
                // Source authoritative: its ME state can be durably
                // checkpointed now that disk faults are disarmed.
                dc.persist_me(m1)
                    .expect("post-abort source checkpoint succeeds");
                assert!(
                    dc.me_checkpoints(m1).latest_meta().is_some(),
                    "seed {seed} stream {i}: no durable source checkpoint after abort"
                );
                // Nothing was lost: with the faults gone, an operator
                // retry still converges to a single bit-identical
                // release (or the pair stays cleanly aborted if the
                // destination host is beyond recovery).
                if converge(&mut dc, src, dst) {
                    let state = dc
                        .app_bulk_state(dst)
                        .expect("read converged state")
                        .expect("converged destination holds state");
                    assert_eq!(
                        state, snapshots[i],
                        "seed {seed} stream {i}: post-abort convergence not bit-identical"
                    );
                } else {
                    assert_ne!(
                        dc.app(dst).lock().status(),
                        AppStatus::Ready,
                        "seed {seed} stream {i}: inconsistent post-abort state"
                    );
                }
            }
        }
    }

    SeedReport {
        seed,
        streams,
        released,
        aborted,
        retries: outcomes.iter().map(MigrationOutcome::retries).sum(),
        faults,
    }
}

/// Runs [`run_seed`] over a seed range and collects the stable report.
#[must_use]
pub fn run_seeds(seeds: impl IntoIterator<Item = u64>) -> ChaosReport {
    ChaosReport {
        seeds: seeds.into_iter().map(run_seed).collect(),
    }
}
