//! **sgx-migrate** — a full-system reproduction of *Migrating SGX
//! Enclaves with Persistent State* (Alder, Kurnikov, Paverd, Asokan;
//! DSN 2018) on a simulated SGX datacenter.
//!
//! This facade crate re-exports the workspace's public API:
//!
//! * [`crypto`] — from-scratch primitives (SHA-2, HMAC, HKDF,
//!   AES-128-GCM, X25519, Ed25519);
//! * [`sgx`] — the simulated SGX platform (measurement, sealing,
//!   reports, monotonic counters, quoting, attestation service);
//! * [`cloud`] — the discrete-event datacenter (machines, VMs, network
//!   with adversary taps, untrusted disks);
//! * [`core`] — the paper's contribution: Migration Library, Migration
//!   Enclave, protocol, policies, baselines;
//! * [`apps`] — Teechan-style payment channels, TrInX-style certified
//!   counters, and a sealed KV store built on the public API;
//! * [`stats`] — the evaluation statistics (99 % CIs, Welch t-tests);
//! * [`trace`] — deterministic per-migration tracing, the metrics
//!   registry, transition tallies, and the `TRACE.json` exporter;
//! * [`chaos`] — deterministic seeded fault injection (network, disk,
//!   crash, ECALL-abort faults on virtual time);
//! * [`soak`] — the chaos soak harness asserting the convergence
//!   invariant under generated fault schedules (`cargo run --release
//!   --bin chaos_soak`).
//!
//! See `README.md` for a guided tour, `DESIGN.md` for the system
//! inventory, and `examples/` for runnable end-to-end scenarios
//! (`cargo run --example quickstart`).

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod soak;

pub use cloud_sim as cloud;
pub use mig_apps as apps;
pub use mig_chaos as chaos;
pub use mig_core as core;
pub use mig_crypto as crypto;
pub use mig_stats as stats;
pub use mig_trace as trace;
pub use sgx_sim as sgx;
