//! Seeded chaos soak driver: `chaos_soak [count] [start-seed] [out-path]`.
//!
//! Runs `count` seeded fault schedules (default 200) starting at
//! `start-seed` (default 0) through the soak harness and writes the
//! stable sorted report to `out-path` (default `CHAOS.json`). Any
//! convergence-invariant violation panics, so a clean exit means every
//! migration either released exactly once with bit-identical state or
//! aborted with the source authoritative.

use sgx_migrate::soak;

fn main() {
    let mut args = std::env::args().skip(1);
    let count: u64 = args
        .next()
        .map(|a| a.parse().expect("count must be a u64"))
        .unwrap_or(200);
    let start: u64 = args
        .next()
        .map(|a| a.parse().expect("start-seed must be a u64"))
        .unwrap_or(0);
    let out = args.next().unwrap_or_else(|| "CHAOS.json".to_string());

    let report = soak::run_seeds(start..start + count);
    let released: u32 = report.seeds.iter().map(|s| s.released).sum();
    let aborted: u32 = report.seeds.iter().map(|s| s.aborted).sum();
    let faults: usize = report.seeds.iter().map(|s| s.faults.len()).sum();
    std::fs::write(&out, report.to_json()).expect("write report");
    println!(
        "chaos soak: {count} seeds, {released} released, {aborted} aborted, \
         {faults} faults injected -> {out}"
    );
}
