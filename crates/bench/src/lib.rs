//! **mig-bench** — shared harness for regenerating the paper's evaluation
//! (§VII-B): Figs. 3 and 4, the end-to-end migration overhead, and the
//! TCB size accounting.
//!
//! The paper's methodology, reproduced exactly: every measurement is the
//! wall-clock duration of an ECALL, repeated (1000× by default), reported
//! as a mean with a 99 % confidence interval, and compared with a
//! one-tailed t-test. The platform firmware latencies are modelled by
//! [`ScaledIntelCost`] (Intel's Management-Engine latencies scaled
//! ~1000×, *spun* on the CPU so measurements inherit them — see
//! EXPERIMENTS.md).

#![forbid(unsafe_code)]
#![warn(missing_docs)]

use cloud_sim::machine::MachineLabels;
use mig_core::baseline::native::{ops as native_ops, NativeEnclave};
use mig_core::datacenter::Datacenter;
use mig_core::harness::{open_envelope, ops as lib_ops, AppCtx, AppLogic, MigratableEnclave};
use mig_core::library::InitRequest;
use mig_core::policy::MigrationPolicy;
use rand::rngs::StdRng;
use rand::SeedableRng;
use sgx_sim::cost::ScaledIntelCost;
use sgx_sim::enclave::EnclaveHandle;
use sgx_sim::ias::AttestationService;
use sgx_sim::machine::{MachineId, SgxMachine};
use sgx_sim::measurement::{EnclaveImage, EnclaveSigner};
use sgx_sim::SgxError;
use std::sync::Arc;
use std::time::{Duration, Instant};

/// The benchmark app: exposes the migratable primitives 1:1 with the
/// native baseline's opcodes, so both sides measure the same ECALL shape.
pub struct BenchApp;

/// Opcodes of [`BenchApp`] (aligned with
/// [`mig_core::baseline::native::ops`]).
pub mod ops {
    /// Create a migratable counter → `[id]`.
    pub const COUNTER_CREATE: u32 = 1;
    /// Increment counter `[id]` → effective value.
    pub const COUNTER_INCREMENT: u32 = 2;
    /// Read counter `[id]` → effective value.
    pub const COUNTER_READ: u32 = 3;
    /// Destroy counter `[id]`.
    pub const COUNTER_DESTROY: u32 = 4;
    /// Migratable seal.
    pub const SEAL: u32 = 5;
    /// Migratable unseal.
    pub const UNSEAL: u32 = 6;
}

impl AppLogic for BenchApp {
    fn handle(
        &mut self,
        ctx: &mut AppCtx<'_, '_>,
        opcode: u32,
        input: &[u8],
    ) -> Result<Vec<u8>, SgxError> {
        match opcode {
            ops::COUNTER_CREATE => {
                let (id, _) = ctx.lib.create_migratable_counter(ctx.env)?;
                Ok(vec![id])
            }
            ops::COUNTER_INCREMENT => Ok(ctx
                .lib
                .increment_migratable_counter(ctx.env, input[0])?
                .to_le_bytes()
                .to_vec()),
            ops::COUNTER_READ => Ok(ctx
                .lib
                .read_migratable_counter(ctx.env, input[0])?
                .to_le_bytes()
                .to_vec()),
            ops::COUNTER_DESTROY => {
                ctx.lib.destroy_migratable_counter(ctx.env, input[0])?;
                Ok(vec![])
            }
            ops::SEAL => Ok(ctx.lib.seal_migratable_data(ctx.env, b"bench", input)?),
            ops::UNSEAL => Ok(ctx.lib.unseal_migratable_data(ctx.env, input)?.0),
            _ => Err(SgxError::InvalidParameter("opcode")),
        }
    }
}

/// The canonical bench enclave image.
#[must_use]
pub fn bench_image() -> EnclaveImage {
    EnclaveImage::build(
        "mig-bench.app",
        1,
        b"benchmark enclave",
        &EnclaveSigner::from_seed([42; 32]),
    )
}

/// Wraps the native baseline so its ECALL responses cross the boundary
/// in the same envelope format as the migratable enclave's — otherwise
/// the baseline would skip the response-marshalling cost the migratable
/// side pays, biasing the 100 kB sealing comparison.
struct EnvelopedNative(NativeEnclave);

impl sgx_sim::enclave::EnclaveCode for EnvelopedNative {
    fn ecall(
        &mut self,
        env: &mut sgx_sim::enclave::EnclaveEnv<'_>,
        opcode: u32,
        input: &[u8],
    ) -> Result<Vec<u8>, SgxError> {
        let payload = self.0.ecall(env, opcode, input)?;
        let mut w = sgx_sim::wire::WireWriter::new();
        w.bytes(&payload);
        w.u8(0); // no persist blob
        Ok(w.finish())
    }
}

/// Fixture: one machine (with the scaled Intel cost model, spinning) plus
/// a migratable enclave and the native baseline enclave.
pub struct BenchSetup {
    /// The machine everything runs on.
    pub machine: SgxMachine,
    /// Enclave embedding the Migration Library.
    pub migratable: EnclaveHandle,
    /// Native (non-migratable) baseline enclave.
    pub baseline: EnclaveHandle,
}

impl BenchSetup {
    /// Builds the fixture. `spin` selects whether the cost model burns
    /// real CPU time (true for wall-clock measurements).
    #[must_use]
    pub fn new(spin: bool) -> Self {
        let mut rng = StdRng::seed_from_u64(0xBEEF);
        let ias = AttestationService::new(&mut rng);
        let cost = Arc::new(ScaledIntelCost::paper_scaled(spin));
        let machine = SgxMachine::with_cost_model(MachineId(1), &ias, cost, &mut rng);

        let migratable = machine
            .load_enclave(&bench_image(), Box::new(MigratableEnclave::new(BenchApp)))
            .expect("load migratable");
        let init = mig_core::harness::encode_init(
            &mig_core::me::me_image().mr_enclave(),
            &InitRequest::New,
        );
        migratable
            .ecall(lib_ops::MIG_INIT, &init)
            .expect("init library");

        let baseline = machine
            .load_enclave(
                &bench_image(),
                Box::new(EnvelopedNative(NativeEnclave::new())),
            )
            .expect("load baseline");
        BenchSetup {
            machine,
            migratable,
            baseline,
        }
    }

    /// ECALL into the migratable enclave, unwrapping the envelope.
    ///
    /// # Panics
    ///
    /// Panics on enclave errors (bench fixture invariants).
    pub fn call_migratable(&self, opcode: u32, input: &[u8]) -> Vec<u8> {
        let out = self.migratable.ecall(opcode, input).expect("ecall");
        open_envelope(&out).expect("envelope").0
    }

    /// ECALL into the baseline enclave, unwrapping the envelope (the
    /// baseline is wrapped so both sides pay identical marshalling).
    ///
    /// # Panics
    ///
    /// Panics on enclave errors (bench fixture invariants).
    pub fn call_baseline(&self, opcode: u32, input: &[u8]) -> Vec<u8> {
        let out = self.baseline.ecall(opcode, input).expect("ecall");
        open_envelope(&out).expect("envelope").0
    }

    /// Creates a counter on both enclaves, returning `(mig_id, base_idx)`.
    #[must_use]
    pub fn create_counters(&self) -> (u8, u8) {
        let mig = self.call_migratable(ops::COUNTER_CREATE, &[])[0];
        let base = self.call_baseline(native_ops::COUNTER_CREATE, &[])[0];
        (mig, base)
    }
}

/// Measures `f` once, returning seconds.
pub fn time_once(mut f: impl FnMut()) -> f64 {
    let start = Instant::now();
    f();
    start.elapsed().as_secs_f64()
}

/// Collects `n` wall-clock samples (in **microseconds**) of `f`.
pub fn sample_n(n: usize, mut f: impl FnMut()) -> Vec<f64> {
    let mut samples = Vec::with_capacity(n);
    for _ in 0..n {
        let start = Instant::now();
        f();
        samples.push(start.elapsed().as_secs_f64() * 1e6);
    }
    samples
}

/// A measured comparison row of a paper figure.
#[derive(Clone, Debug)]
pub struct FigureRow {
    /// Operation label (e.g. "Increase Counter").
    pub label: String,
    /// Baseline summary (µs). `None` when the paper has no baseline
    /// (library initialization).
    pub baseline: Option<mig_stats::Summary>,
    /// Migration-library summary (µs).
    pub migratable: mig_stats::Summary,
    /// One-tailed Welch p-value for H1 "migratable > baseline".
    pub p_value: Option<f64>,
}

impl FigureRow {
    /// Builds a row from raw microsecond samples.
    #[must_use]
    pub fn from_samples(label: &str, baseline: Option<Vec<f64>>, migratable: Vec<f64>) -> Self {
        let base_summary = baseline.as_ref().map(|s| mig_stats::summarize(s, 0.99));
        let mig_summary = mig_stats::summarize(&migratable, 0.99);
        let p_value = baseline
            .as_ref()
            .map(|b| mig_stats::welch_one_tailed_p(&migratable, b));
        FigureRow {
            label: label.to_string(),
            baseline: base_summary,
            migratable: mig_summary,
            p_value,
        }
    }

    /// Relative overhead of the migratable version, in percent.
    #[must_use]
    pub fn overhead_percent(&self) -> Option<f64> {
        self.baseline
            .map(|b| 100.0 * (self.migratable.mean - b.mean) / b.mean)
    }

    /// Formats the row in the `figures` binary's table layout.
    #[must_use]
    pub fn format(&self) -> String {
        let base = match &self.baseline {
            Some(b) => format!("{:>10.1} ± {:>5.1}", b.mean, b.ci_half_width),
            None => format!("{:>18}", "—"),
        };
        let overhead = match self.overhead_percent() {
            Some(o) => format!("{o:>+7.1}%"),
            None => format!("{:>8}", "—"),
        };
        let p = match self.p_value {
            Some(p) if p < 0.0005 => "≈0".to_string(),
            Some(p) => format!("{p:.3}"),
            None => "—".to_string(),
        };
        format!(
            "{:<22} {} {:>10.1} ± {:>5.1} {} {:>6}",
            self.label, base, self.migratable.mean, self.migratable.ci_half_width, overhead, p
        )
    }
}

/// Table header matching [`FigureRow::format`].
#[must_use]
pub fn figure_header() -> String {
    format!(
        "{:<22} {:>18} {:>18} {:>8} {:>6}\n{}",
        "operation",
        "baseline (µs)",
        "migratable (µs)",
        "overhead",
        "p",
        "-".repeat(78)
    )
}

/// Builds a two-machine datacenter with the scaled cost model for the
/// end-to-end migration experiment (E3).
#[must_use]
pub fn migration_fixture(seed: u64) -> (Datacenter, MachineId, MachineId) {
    let cost = Arc::new(ScaledIntelCost::paper_scaled(false));
    let mut dc = Datacenter::with_cost_model(seed, cost);
    let policy = MigrationPolicy::same_operator_only();
    let m1 = dc.add_machine(MachineLabels::new("dc-1", "eu"), &policy);
    let m2 = dc.add_machine(MachineLabels::new("dc-1", "eu"), &policy);
    (dc, m1, m2)
}

/// The kvstore image used by the state-size sweep (E4).
#[must_use]
pub fn kv_image() -> sgx_sim::measurement::EnclaveImage {
    EnclaveImage::build(
        "mig-bench.kvstore",
        1,
        b"benchmark kvstore enclave",
        &EnclaveSigner::from_seed([43; 32]),
    )
}

/// Builds a two-machine datacenter (per-ME streaming config `transfer`)
/// with a kvstore holding `entries` × `value_len` bytes deployed as
/// `"src"` and an awaiting `"dst"` — ready for the `migrate_app` call to
/// be measured.
///
/// # Panics
///
/// Panics on deployment failures (bench fixture invariants).
#[must_use]
pub fn prepared_kv_datacenter(
    seed: u64,
    transfer: mig_core::transfer::TransferConfig,
    entries: u32,
    value_len: u32,
) -> Datacenter {
    use mig_apps::kvstore::{self, ops as kv_ops, KvStore};

    let mut dc = Datacenter::new(seed);
    let policy = MigrationPolicy::same_operator_only();
    let m1 = dc.add_machine_with_transfer(MachineLabels::new("dc-1", "eu"), &policy, transfer);
    let m2 = dc.add_machine_with_transfer(MachineLabels::new("dc-1", "eu"), &policy, transfer);
    dc.deploy_app("src", m1, &kv_image(), KvStore::new(), InitRequest::New)
        .expect("deploy src");
    dc.call_app("src", kv_ops::INIT, &[]).expect("init kv");
    dc.call_app(
        "src",
        kv_ops::BULK_PUT,
        &kvstore::encode_bulk_put(entries, value_len, 0xB7),
    )
    .expect("bulk load");
    dc.deploy_app("dst", m2, &kv_image(), KvStore::new(), InitRequest::Migrate)
        .expect("deploy dst");
    dc
}

/// The state sizes of the E4 sweep: label plus kvstore geometry
/// (entries × value bytes ≈ sealed-state size).
pub const STATE_SWEEP: &[(&str, u32, u32)] = &[
    ("4KiB", 16, 256),
    ("64KiB", 64, 1024),
    ("1MiB", 256, 4096),
    ("16MiB", 4096, 4096),
    ("64MiB", 16384, 4096),
];

/// One cell of the E4 delta-vs-full series: a full first migration, a
/// dirtying pass at the destination, and the repeat (delta) migration
/// back — virtual times plus the RA-transfer wire bytes each direction.
#[derive(Clone, Copy, Debug)]
pub struct DeltaCell {
    /// Virtual time of the first (full) migration in ms.
    pub full_virt_ms: f64,
    /// Virtual time of the repeat (delta) migration in ms.
    pub delta_virt_ms: f64,
    /// Wire bytes of the first migration's stream frames.
    pub full_bytes: u64,
    /// Wire bytes of the repeat migration's stream frames.
    pub delta_bytes: u64,
}

/// Installs a tap summing RA-transfer wire bytes `from` → `to`.
fn transfer_byte_tap(
    dc: &mut Datacenter,
    from: MachineId,
    to: MachineId,
) -> Arc<std::sync::atomic::AtomicU64> {
    use cloud_sim::network::{Envelope, TapAction};
    use std::sync::atomic::{AtomicU64, Ordering};

    let bytes = Arc::new(AtomicU64::new(0));
    let tap_bytes = Arc::clone(&bytes);
    dc.world_mut()
        .network_mut()
        .add_tap(Box::new(move |e: &Envelope| {
            if e.from.machine == from
                && e.to.machine == to
                && e.from.service == "me"
                && e.to.service == "me"
                && matches!(
                    e.payload.first(),
                    Some(&mig_core::host::tags::RA_TRANSFER)
                        | Some(&mig_core::host::tags::RA_TRANSFER_BATCH)
                )
            {
                tap_bytes.fetch_add(e.payload.len() as u64, Ordering::SeqCst);
            }
            TapAction::Deliver
        }));
    bytes
}

/// Runs one full+delta migration cycle: `entries` × `value_len` bytes
/// migrate m1→m2 in full, `dirty_entries` entries are rewritten at the
/// destination, and the repeat migration m2→m1 ships the dirty-page
/// delta (or falls back to full when the delta is too large a fraction).
///
/// # Panics
///
/// Panics on fixture failures (bench invariants).
#[must_use]
pub fn delta_migration_cycle(
    seed: u64,
    entries: u32,
    value_len: u32,
    dirty_entries: u32,
) -> DeltaCell {
    use mig_apps::kvstore::{self, ops as kv_ops, KvStore};
    use std::sync::atomic::Ordering;

    let transfer = sweep_stream_config();
    let mut dc = Datacenter::new(seed);
    let policy = MigrationPolicy::same_operator_only();
    let m1 = dc.add_machine_with_transfer(MachineLabels::new("dc-1", "eu"), &policy, transfer);
    let m2 = dc.add_machine_with_transfer(MachineLabels::new("dc-1", "eu"), &policy, transfer);
    let fwd_bytes = transfer_byte_tap(&mut dc, m1, m2);
    let back_bytes = transfer_byte_tap(&mut dc, m2, m1);

    dc.deploy_app("src", m1, &kv_image(), KvStore::new(), InitRequest::New)
        .expect("deploy src");
    dc.call_app("src", kv_ops::INIT, &[]).expect("init kv");
    dc.call_app(
        "src",
        kv_ops::BULK_PUT,
        &kvstore::encode_bulk_put(entries, value_len, 0xB7),
    )
    .expect("bulk load");
    dc.deploy_app("dst", m2, &kv_image(), KvStore::new(), InitRequest::Migrate)
        .expect("deploy dst");
    let full_virt = dc.migrate_app("src", "dst").expect("full migration");

    // Restore the working set at the destination and dirty a slice of it.
    let state = dc
        .app_bulk_state("dst")
        .expect("bulk state")
        .expect("migrated state present");
    dc.call_app("dst", kv_ops::LOAD, &state).expect("load");
    dc.call_app(
        "dst",
        kv_ops::BULK_PUT,
        &kvstore::encode_bulk_put(dirty_entries, value_len, 0xC3),
    )
    .expect("dirty pass");

    dc.deploy_app(
        "back",
        m1,
        &kv_image(),
        KvStore::new(),
        InitRequest::Migrate,
    )
    .expect("deploy back");
    back_bytes.store(0, Ordering::SeqCst);
    let delta_virt = dc.migrate_app("dst", "back").expect("delta migration");

    DeltaCell {
        full_virt_ms: full_virt.as_secs_f64() * 1e3,
        delta_virt_ms: delta_virt.as_secs_f64() * 1e3,
        full_bytes: fwd_bytes.load(Ordering::SeqCst),
        delta_bytes: back_bytes.load(Ordering::SeqCst),
    }
}

/// One cell of the E4 concurrency series: `k` enclaves of equal state
/// size migrating to one destination machine at once, their chunk
/// streams multiplexed (per-nonce, deficit-round-robin) on the shared
/// ME↔ME channel.
#[derive(Clone, Copy, Debug)]
pub struct ConcurrencyCell {
    /// Number of concurrent migrations.
    pub k: u32,
    /// Virtual time until the **last** migration completed, in ms.
    pub total_virt_ms: f64,
    /// Spread between the first and last completion, in ms (fairness:
    /// a small spread means no stream was starved to the end).
    pub spread_ms: f64,
    /// Total RA-transfer wire bytes of the run.
    pub wire_bytes: u64,
}

/// Runs one E4 concurrency cell: `k` kvstores of `entries` ×
/// `value_len` bytes each on one machine, `k` awaiting destinations on
/// another, all `migration_start`s fired before the world is pumped.
///
/// # Panics
///
/// Panics on fixture failures (bench invariants).
#[must_use]
pub fn concurrent_migration_cell(
    seed: u64,
    k: u32,
    entries: u32,
    value_len: u32,
) -> ConcurrencyCell {
    use cloud_sim::network::{Envelope, TapAction};
    use mig_apps::kvstore::{self, ops as kv_ops, KvStore};
    use std::sync::atomic::{AtomicU64, Ordering};

    let transfer = sweep_stream_config();
    let mut dc = Datacenter::new(seed);
    let policy = MigrationPolicy::same_operator_only();
    let m1 = dc.add_machine_with_transfer(MachineLabels::new("dc-1", "eu"), &policy, transfer);
    let m2 = dc.add_machine_with_transfer(MachineLabels::new("dc-1", "eu"), &policy, transfer);
    let wire_bytes = {
        let bytes = Arc::new(AtomicU64::new(0));
        let tap_bytes = Arc::clone(&bytes);
        dc.world_mut()
            .network_mut()
            .add_tap(Box::new(move |e: &Envelope| {
                if e.from.machine == m1
                    && e.to.machine == m2
                    && e.from.service == "me"
                    && matches!(
                        e.payload.first(),
                        Some(&mig_core::host::tags::RA_TRANSFER)
                            | Some(&mig_core::host::tags::RA_TRANSFER_BATCH)
                    )
                {
                    tap_bytes.fetch_add(e.payload.len() as u64, Ordering::SeqCst);
                }
                TapAction::Deliver
            }));
        bytes
    };
    // Completion times per destination app (virtual nanos of the
    // incoming-migration delivery).
    let completions = Arc::new(parking_lot::Mutex::new(Vec::<u64>::new()));
    {
        let completions = Arc::clone(&completions);
        dc.world_mut()
            .network_mut()
            .add_tap(Box::new(move |e: &Envelope| {
                if e.to.machine == m2
                    && e.to.service.starts_with("app:dst-")
                    && e.payload.first() == Some(&mig_core::host::tags::ME_FORWARD)
                {
                    completions.lock().push(e.deliver_at.0);
                }
                TapAction::Deliver
            }));
    }

    let mut pairs = Vec::new();
    for i in 0..k {
        let image = EnclaveImage::build(
            &format!("mig-bench.kv-conc-{i}"),
            1,
            b"benchmark kvstore enclave",
            &EnclaveSigner::from_seed([44 + i as u8; 32]),
        );
        let src = format!("src-{i}");
        let dst = format!("dst-{i}");
        dc.deploy_app(&src, m1, &image, KvStore::new(), InitRequest::New)
            .expect("deploy src");
        dc.call_app(&src, kv_ops::INIT, &[]).expect("init kv");
        dc.call_app(
            &src,
            kv_ops::BULK_PUT,
            &kvstore::encode_bulk_put(entries, value_len, 0xB7),
        )
        .expect("bulk load");
        dc.deploy_app(&dst, m2, &image, KvStore::new(), InitRequest::Migrate)
            .expect("deploy dst");
        pairs.push((src, dst));
    }
    let pair_refs: Vec<(&str, &str)> = pairs
        .iter()
        .map(|(s, d)| (s.as_str(), d.as_str()))
        .collect();
    let total = dc
        .migrate_apps_concurrent(&pair_refs)
        .expect("concurrent migration");

    let done = completions.lock();
    let spread_ms = match (done.iter().min(), done.iter().max()) {
        (Some(first), Some(last)) => (last - first) as f64 / 1e6,
        _ => 0.0,
    };
    ConcurrencyCell {
        k,
        total_virt_ms: total.as_secs_f64() * 1e3,
        spread_ms,
        wire_bytes: wire_bytes.load(std::sync::atomic::Ordering::SeqCst),
    }
}

/// One cell of the E4 speculative-restore series: the same streamed
/// migration measured with destination-side speculative restore on and
/// off. `release_ms` is the destination ME host's wall-clock duration
/// of the TRANSFER ECALL that completed the stream and released the
/// payload — everything serialized between the final chunk's arrival
/// and the state leaving the enclave. Speculation moves the whole-state
/// digest (and, for deltas, the base staging and page overlay) off that
/// path, so its cell should be markedly smaller at large state sizes.
#[derive(Clone, Copy, Debug)]
pub struct SpeculativeCell {
    /// Time-to-release with speculative restore (staged prefixes,
    /// incremental digest), in ms.
    pub speculative_release_ms: f64,
    /// Time-to-release with the legacy unseal-after-complete path, in
    /// ms.
    pub unseal_release_ms: f64,
}

/// Runs one streamed migration of `entries` × `value_len` bytes and
/// returns the destination's time-to-release (ms), with speculative
/// restore on or off.
///
/// # Panics
///
/// Panics on fixture failures (bench invariants).
#[must_use]
pub fn release_latency_cell(seed: u64, entries: u32, value_len: u32, speculative: bool) -> f64 {
    let transfer = mig_core::transfer::TransferConfig {
        speculative_restore: speculative,
        ..sweep_stream_config()
    };
    let mut dc = prepared_kv_datacenter(seed, transfer, entries, value_len);
    dc.migrate_app("src", "dst").expect("migrate");
    let dst_machine = dc.app_machine("dst");
    let latency = dc
        .me_host(dst_machine)
        .lock()
        .release_latency()
        .expect("a transfer completed at the destination");
    latency.as_secs_f64() * 1e3
}

/// The VM-migration transfer-time model evaluated at a bulk-state size
/// (ms over the datacenter link profile): what moving the same number
/// of bytes as guest memory would cost under
/// [`cloud_sim::vm::vm_migration_time`]. The E4 sweep reports this
/// next to the measured enclave-migration times so the two transfer
/// models are comparable at equal state sizes (ROADMAP item).
#[must_use]
pub fn vm_model_ms(state_bytes: u64) -> f64 {
    let vm = cloud_sim::vm::Vm {
        id: cloud_sim::vm::VmId(0),
        host: MachineId(0),
        memory_bytes: state_bytes,
    };
    cloud_sim::vm::vm_migration_time(&vm, &cloud_sim::network::LinkProfile::datacenter())
        .as_secs_f64()
        * 1e3
}

/// Streaming-transfer configuration used by the sweep's streamed arm.
#[must_use]
pub fn sweep_stream_config() -> mig_core::transfer::TransferConfig {
    mig_core::transfer::TransferConfig {
        stream_threshold: 4096,
        chunk_size: 256 * 1024,
        window: 8,
        ..mig_core::transfer::TransferConfig::default()
    }
}

/// Blob (single-shot) configuration: the threshold is unreachable, so
/// every transfer takes the paper's original path.
#[must_use]
pub fn sweep_blob_config() -> mig_core::transfer::TransferConfig {
    mig_core::transfer::TransferConfig {
        stream_threshold: u32::MAX,
        chunk_size: 256 * 1024,
        window: 8,
        ..mig_core::transfer::TransferConfig::default()
    }
}

/// Per-phase breakdown of one streamed migration plus its transition
/// tally, extracted from the fleet telemetry.
///
/// The phases are the destination-side partition recorded by the ME
/// host: Announce (announcement arrival → first chunk), Stream (first
/// chunk → completion), Stage (zero-width under speculative staging),
/// Release (the completing ECALL's virtual cost). All in virtual
/// milliseconds, so the breakdown is deterministic per seed.
#[derive(Clone, Copy, Debug, Default)]
pub struct PhaseBreakdown {
    /// Announce span duration in ms.
    pub announce_ms: f64,
    /// Stream span duration in ms.
    pub stream_ms: f64,
    /// Stage span duration in ms.
    pub stage_ms: f64,
    /// Release span duration in ms.
    pub release_ms: f64,
    /// ECALL + OCALL transitions attributed to the migration's trace id.
    pub transitions: u64,
}

/// Extracts the streamed migration's phase breakdown from `telemetry`:
/// the unique trace carrying a Stream-phase span. Returns `None` when
/// no such trace exists (e.g. the blob path's single-shot transfer).
#[must_use]
pub fn stream_phase_breakdown(telemetry: &mig_trace::Telemetry) -> Option<PhaseBreakdown> {
    for trace in telemetry.trace_ids() {
        let spans = telemetry.spans_for(trace);
        if !spans.iter().any(|(p, _, _)| *p == mig_trace::Phase::Stream) {
            continue;
        }
        let mut breakdown = PhaseBreakdown::default();
        for (phase, at, end) in &spans {
            let ms = (end - at) as f64 / 1e6;
            match phase {
                mig_trace::Phase::Announce => breakdown.announce_ms += ms,
                mig_trace::Phase::Stream => breakdown.stream_ms += ms,
                mig_trace::Phase::Stage => breakdown.stage_ms += ms,
                mig_trace::Phase::Release => breakdown.release_ms += ms,
                mig_trace::Phase::Negotiate => {}
            }
        }
        if let Some(tally) = telemetry.transitions.by_trace.get(&trace) {
            breakdown.transitions = tally.ecalls + tally.ocalls;
        }
        return Some(breakdown);
    }
    None
}

/// Runs one full enclave migration in a fresh datacenter, returning
/// `(virtual_duration, wall_duration)`.
///
/// The virtual duration accounts network transfers, IAS round trips and
/// platform-firmware latencies; the wall duration is the real compute
/// cost of the protocol (crypto + simulation).
///
/// # Panics
///
/// Panics if the migration does not complete (fixture invariant).
#[must_use]
pub fn run_one_migration(seed: u64) -> (Duration, Duration) {
    let (mut dc, m1, m2) = migration_fixture(seed);
    dc.deploy_app("src", m1, &bench_image(), BenchApp, InitRequest::New)
        .expect("deploy src");
    // A representative working set: one counter + some sealed data.
    let id = {
        let out = dc
            .call_app("src", ops::COUNTER_CREATE, &[])
            .expect("create");
        out[0]
    };
    dc.call_app("src", ops::COUNTER_INCREMENT, &[id])
        .expect("inc");
    let _sealed = dc.call_app("src", ops::SEAL, &[7u8; 100]).expect("seal");

    dc.deploy_app("dst", m2, &bench_image(), BenchApp, InitRequest::Migrate)
        .expect("deploy dst");

    let wall_start = Instant::now();
    let virtual_time = dc.migrate_app("src", "dst").expect("migrate");
    let wall = wall_start.elapsed();
    (virtual_time, wall)
}

/// Ablation (paper §VI-B): the naive counter-transfer strategy — create a
/// counter on the destination and *increment it until it reaches the
/// transferred value* — measured in simulated platform time against the
/// offset design's constant cost.
///
/// Returns `(fast_forward_time, offset_time)` for a counter at `value`.
///
/// # Panics
///
/// Panics on fixture failures.
#[must_use]
pub fn counter_transfer_ablation(value: u32) -> (Duration, Duration) {
    let mut rng = StdRng::seed_from_u64(0xAB1A);
    let ias = AttestationService::new(&mut rng);
    let cost = Arc::new(ScaledIntelCost::paper_scaled(false));
    let machine = SgxMachine::with_cost_model(MachineId(9), &ias, cost, &mut rng);
    let enclave = machine
        .load_enclave(
            &bench_image(),
            Box::new(mig_core::baseline::native::NativeEnclave::new()),
        )
        .expect("load");

    // Naive strategy: create, then increment up to `value`.
    let _ = machine.drain_virtual_time();
    let idx = enclave
        .ecall(mig_core::baseline::native::ops::COUNTER_CREATE, &[])
        .expect("create")[0];
    for _ in 0..value {
        enclave
            .ecall(mig_core::baseline::native::ops::COUNTER_INCREMENT, &[idx])
            .expect("inc");
    }
    let fast_forward = machine.drain_virtual_time();

    // Offset strategy: one create; the offset installation is free.
    let _ = enclave
        .ecall(mig_core::baseline::native::ops::COUNTER_CREATE, &[])
        .expect("create");
    let offset = machine.drain_virtual_time();
    (fast_forward, offset)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn setup_supports_all_paired_ops() {
        let setup = BenchSetup::new(false);
        let (mig, base) = setup.create_counters();

        assert_eq!(
            setup.call_migratable(ops::COUNTER_INCREMENT, &[mig]).len(),
            4
        );
        assert_eq!(
            setup
                .call_baseline(native_ops::COUNTER_INCREMENT, &[base])
                .len(),
            4
        );
        assert_eq!(setup.call_migratable(ops::COUNTER_READ, &[mig]).len(), 4);
        assert_eq!(
            setup.call_baseline(native_ops::COUNTER_READ, &[base]).len(),
            4
        );

        let blob = setup.call_migratable(ops::SEAL, b"x");
        assert_eq!(setup.call_migratable(ops::UNSEAL, &blob), b"x");
        let blob = setup.call_baseline(native_ops::SEAL, b"x");
        assert_eq!(setup.call_baseline(native_ops::UNSEAL, &blob), b"x");

        setup.call_migratable(ops::COUNTER_DESTROY, &[mig]);
        setup.call_baseline(native_ops::COUNTER_DESTROY, &[base]);
    }

    #[test]
    fn one_migration_completes_with_plausible_times() {
        let (virtual_time, wall) = run_one_migration(1);
        // Virtual time includes two IAS round trips (~40 ms) plus
        // transfers: tens of milliseconds.
        assert!(virtual_time > Duration::from_millis(10), "{virtual_time:?}");
        assert!(virtual_time < Duration::from_secs(2), "{virtual_time:?}");
        assert!(wall < Duration::from_secs(10), "{wall:?}");
    }

    #[test]
    fn figure_row_formatting() {
        let row = FigureRow::from_samples(
            "Increase Counter",
            Some(vec![250.0, 251.0, 252.0, 249.0]),
            vec![280.0, 281.0, 279.0, 280.5],
        );
        let s = row.format();
        assert!(s.contains("Increase Counter"));
        assert!(row.overhead_percent().unwrap() > 10.0);
        let init_row = FigureRow::from_samples("Init New", None, vec![10.0, 11.0, 9.5]);
        assert!(init_row.format().contains("Init New"));
        assert!(init_row.overhead_percent().is_none());
    }
}
