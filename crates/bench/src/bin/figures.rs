//! Regenerates the paper's evaluation figures with its exact methodology:
//! per-ECALL wall-clock timing, 1000 repetitions, means with 99 %
//! confidence intervals, one-tailed Welch t-tests.
//!
//! ```sh
//! cargo run -p mig-bench --release --bin figures            # all figures
//! cargo run -p mig-bench --release --bin figures -- fig3    # one figure
//! FIG_ITERS=200 cargo run -p mig-bench --release --bin figures
//! ```
//!
//! Paper reference points (DSN'18 §VII-B): counter-increment overhead
//! 12.3 % (p ≈ 0), counter-read overhead not significant (p ≈ 0.12),
//! migratable sealing slightly *faster* than native, initialization
//! negligible, and enclave migration 0.47 ± 0.035 s — an order of
//! magnitude below VM migration.

use mig_bench::{
    bench_image, figure_header, migration_fixture, ops, run_one_migration, sample_n, BenchApp,
    BenchSetup, FigureRow,
};
use mig_core::baseline::native::ops as native_ops;
use mig_core::harness::{encode_init, ops as lib_ops};
use mig_core::library::InitRequest;
use mig_core::me::me_image;

fn iterations() -> usize {
    std::env::var("FIG_ITERS")
        .ok()
        .and_then(|v| v.parse().ok())
        .unwrap_or(1000)
}

fn fig3(n: usize) {
    println!("\n=== Figure 3 — average duration of counter operations ===");
    println!("({n} reps per op; scaled Intel-ME latency model; 99% CI)\n");
    println!("{}", figure_header());

    let setup = BenchSetup::new(true);

    // Create/Destroy are measured as a pair so the quota stays level.
    let mut create_base = Vec::with_capacity(n);
    let mut destroy_base = Vec::with_capacity(n);
    let mut create_mig = Vec::with_capacity(n);
    let mut destroy_mig = Vec::with_capacity(n);
    for _ in 0..n {
        let mut idx = 0u8;
        create_base.push(
            mig_bench::time_once(|| {
                idx = setup.call_baseline(native_ops::COUNTER_CREATE, &[])[0];
            }) * 1e6,
        );
        destroy_base.push(
            mig_bench::time_once(|| {
                setup.call_baseline(native_ops::COUNTER_DESTROY, &[idx]);
            }) * 1e6,
        );
        let mut id = 0u8;
        create_mig.push(
            mig_bench::time_once(|| {
                id = setup.call_migratable(ops::COUNTER_CREATE, &[])[0];
            }) * 1e6,
        );
        destroy_mig.push(
            mig_bench::time_once(|| {
                setup.call_migratable(ops::COUNTER_DESTROY, &[id]);
            }) * 1e6,
        );
    }

    let (mig_id, base_idx) = setup.create_counters();
    let inc_base = sample_n(n, || {
        setup.call_baseline(native_ops::COUNTER_INCREMENT, &[base_idx]);
    });
    let inc_mig = sample_n(n, || {
        setup.call_migratable(ops::COUNTER_INCREMENT, &[mig_id]);
    });
    let read_base = sample_n(n, || {
        setup.call_baseline(native_ops::COUNTER_READ, &[base_idx]);
    });
    let read_mig = sample_n(n, || {
        setup.call_migratable(ops::COUNTER_READ, &[mig_id]);
    });

    for row in [
        FigureRow::from_samples("Create Counter", Some(create_base), create_mig),
        FigureRow::from_samples("Increase Counter", Some(inc_base), inc_mig),
        FigureRow::from_samples("Read Counter", Some(read_base), read_mig),
        FigureRow::from_samples("Destroy Counter", Some(destroy_base), destroy_mig),
    ] {
        println!("{}", row.format());
    }
    println!("\npaper: increment overhead 12.3% (p≈0); read not significant (p≈0.12);");
    println!("       create/destroy overhead from resealing the internal state buffer.");
}

fn fig4(n: usize) {
    println!("\n=== Figure 4 — initialization and sealing operations ===");
    println!("({n} reps per op; 99% CI)\n");
    println!("{}", figure_header());

    let setup = BenchSetup::new(true);

    // Init New / Init Restore: repeated MIG_INIT ECALLs (no baseline —
    // the baseline has no library to initialize).
    let me_mr = me_image().mr_enclave();
    let init_new = sample_n(n, || {
        let req = encode_init(&me_mr, &InitRequest::New);
        let _ = setup.migratable.ecall(lib_ops::MIG_INIT, &req).unwrap();
    });
    // Produce a persistent blob to restore from (one counter active, as
    // a restarted production enclave would have).
    let init_req = encode_init(&me_mr, &InitRequest::New);
    let _ = setup
        .migratable
        .ecall(lib_ops::MIG_INIT, &init_req)
        .unwrap();
    let out = setup.migratable.ecall(ops::COUNTER_CREATE, &[]).unwrap();
    let (_, persist) = mig_core::harness::open_envelope(&out).unwrap();
    let blob = persist.expect("create persists");
    let init_restore = sample_n(n, || {
        let req = encode_init(&me_mr, &InitRequest::Restore { blob: blob.clone() });
        let _ = setup.migratable.ecall(lib_ops::MIG_INIT, &req).unwrap();
    });

    for row in [
        FigureRow::from_samples("Init New", None, init_new),
        FigureRow::from_samples("Init Restore", None, init_restore),
    ] {
        println!("{}", row.format());
    }

    // Seal/Unseal at 100 B and 100 KiB, native vs migratable.
    for (label, size) in [("100B", 100usize), ("100kB", 100 * 1024)] {
        let payload = vec![0xA5u8; size];
        let seal_base = sample_n(n, || {
            setup.call_baseline(native_ops::SEAL, &payload);
        });
        let seal_mig = sample_n(n, || {
            setup.call_migratable(ops::SEAL, &payload);
        });
        let blob_base = setup.call_baseline(native_ops::SEAL, &payload);
        let blob_mig = setup.call_migratable(ops::SEAL, &payload);
        let unseal_base = sample_n(n, || {
            setup.call_baseline(native_ops::UNSEAL, &blob_base);
        });
        let unseal_mig = sample_n(n, || {
            setup.call_migratable(ops::UNSEAL, &blob_mig);
        });
        println!(
            "{}",
            FigureRow::from_samples(&format!("Seal {label}"), Some(seal_base), seal_mig).format()
        );
        println!(
            "{}",
            FigureRow::from_samples(&format!("Unseal {label}"), Some(unseal_base), unseal_mig)
                .format()
        );
    }
    println!("\npaper: migratable sealing is slightly FASTER than native (the MSK is at");
    println!("       hand; native sealing pays an extra EGETKEY); init times negligible.");
}

fn e3(n: usize) {
    println!("\n=== §VII-B — enclave migration overhead (E3) ===");
    println!("({n} full migrations, each in a fresh two-machine datacenter)\n");

    let mut virtual_ms = Vec::with_capacity(n);
    let mut wall_ms = Vec::with_capacity(n);
    for i in 0..n {
        let (virt, wall) = run_one_migration(i as u64);
        virtual_ms.push(virt.as_secs_f64() * 1e3);
        wall_ms.push(wall.as_secs_f64() * 1e3);
    }
    let virt = mig_stats::summarize(&virtual_ms, 0.99);
    let wall = mig_stats::summarize(&wall_ms, 0.99);
    println!(
        "enclave migration (simulated time): {:.3} ± {:.3} ms  [attestation + IAS + transfer]",
        virt.mean, virt.ci_half_width
    );
    println!(
        "enclave migration (host compute):   {:.3} ± {:.3} ms  [crypto + protocol]",
        wall.mean, wall.ci_half_width
    );

    // Steady-state migrations reuse the ME↔ME channel (no RA/IAS).
    let (mut dc, m1, m2) = migration_fixture(0xE3);
    dc.deploy_app("w0", m1, &bench_image(), BenchApp, InitRequest::New)
        .unwrap();
    let machines = [m1, m2];
    let mut steady_ms = Vec::new();
    for g in 0..20usize {
        let next = format!("w{}", g + 1);
        let target = machines[(g + 1) % 2];
        dc.deploy_app(
            &next,
            target,
            &bench_image(),
            BenchApp,
            InitRequest::Migrate,
        )
        .unwrap();
        let took = dc.migrate_app(&format!("w{g}"), &next).unwrap();
        // Channels are per direction: both ME↔ME channels exist from the
        // third migration onward, so only then is the state steady.
        if g > 1 {
            steady_ms.push(took.as_secs_f64() * 1e3);
        }
    }
    let steady = mig_stats::summarize(&steady_ms, 0.99);
    println!(
        "steady state (ME channel reused):   {:.3} ± {:.3} ms",
        steady.mean, steady.ci_half_width
    );

    // Context: VM migration of typical guests over the same fabric.
    let link = cloud_sim::network::LinkProfile::datacenter();
    for gib in [1u64, 4, 8] {
        let vm = cloud_sim::vm::Vm {
            id: cloud_sim::vm::VmId(1),
            host: m1,
            memory_bytes: gib << 30,
        };
        let t = cloud_sim::vm::vm_migration_time(&vm, &link);
        println!(
            "VM live migration, {gib:>2} GiB guest:    {:>9.1} ms   (enclave adds {:.2}%)",
            t.as_secs_f64() * 1e3,
            100.0 * virt.mean / (t.as_secs_f64() * 1e3),
        );
    }
    println!("\npaper: 0.47 ± 0.035 s per enclave migration (real IAS + ME latencies),");
    println!("       'an order of magnitude lower' than VM migration — same shape here.");
}

/// The E4 sweep entries up to (and including) the `E4_SWEEP_MAX` label
/// (default: all — 4 KiB through 64 MiB; CI smoke caps it at 1 MiB).
fn e4_sweep() -> &'static [(&'static str, u32, u32)] {
    match std::env::var("E4_SWEEP_MAX") {
        Ok(max) => {
            let cut = mig_bench::STATE_SWEEP
                .iter()
                .position(|(label, _, _)| *label == max)
                .map_or(mig_bench::STATE_SWEEP.len(), |i| i + 1);
            &mig_bench::STATE_SWEEP[..cut]
        }
        Err(_) => mig_bench::STATE_SWEEP,
    }
}

fn e4(n: usize) {
    let sweep = e4_sweep();
    println!("\n=== E4 — persistent-state size sweep: blob vs streamed transfer ===");
    println!("(kvstore sealed state 4 KiB → 64 MiB; streamed = 256 KiB chunks,");
    println!(" window 8, HMAC-chained, resumable; {n} migrations per cell)\n");
    println!(
        "{:<8} {:>22} {:>22} {:>22} {:>12}",
        "state", "blob virt (ms)", "streamed virt (ms)", "streamed wall (ms)", "VM model"
    );
    println!("{}", "-".repeat(92));

    let mut json_sweep = Vec::new();
    let mut phase_rows = Vec::new();
    let mut trace_export = None;
    let mut seed = 0xE4_00u64;
    for &(label, entries, value_len) in sweep {
        let vm_ms = mig_bench::vm_model_ms(u64::from(entries) * u64::from(value_len));
        let mut cells: Vec<Vec<f64>> = vec![Vec::new(); 3];
        let mut phases: Vec<Vec<f64>> = vec![Vec::new(); 4];
        let mut transitions = Vec::new();
        for _ in 0..n {
            for (i, config) in [
                mig_bench::sweep_blob_config(),
                mig_bench::sweep_stream_config(),
            ]
            .into_iter()
            .enumerate()
            {
                seed += 1;
                let mut dc = mig_bench::prepared_kv_datacenter(seed, config, entries, value_len);
                let wall_start = std::time::Instant::now();
                let virt = dc.migrate_app("src", "dst").expect("migrate");
                let wall = wall_start.elapsed();
                cells[i].push(virt.as_secs_f64() * 1e3);
                if i == 1 {
                    cells[2].push(wall.as_secs_f64() * 1e3);
                    // Per-phase breakdown and transition count from the
                    // deterministic trace export (streamed arm only).
                    let telemetry = dc.fleet_telemetry().expect("fleet telemetry");
                    let b = mig_bench::stream_phase_breakdown(&telemetry)
                        .expect("streamed migration leaves a Stream-phase trace");
                    phases[0].push(b.announce_ms);
                    phases[1].push(b.stream_ms);
                    phases[2].push(b.stage_ms);
                    phases[3].push(b.release_ms);
                    transitions.push(b.transitions as f64);
                    trace_export = Some(telemetry);
                }
            }
        }
        let fmt = |samples: &[f64]| {
            let s = mig_stats::summarize(samples, 0.99);
            format!("{:>13.3} ± {:>6.3}", s.mean, s.ci_half_width)
        };
        println!(
            "{:<8} {} {} {} {:>9.3}",
            label,
            fmt(&cells[0]),
            fmt(&cells[1]),
            fmt(&cells[2]),
            vm_ms
        );
        let mean = |samples: &[f64]| mig_stats::summarize(samples, 0.99).mean;
        json_sweep.push(format!(
            "    {{\"label\": \"{label}\", \"blob_virt_ms\": {:.4}, \"stream_virt_ms\": {:.4}, \"stream_wall_ms\": {:.4}, \"vm_model_ms\": {:.4}, \"announce_ms\": {:.4}, \"stream_ms\": {:.4}, \"stage_ms\": {:.4}, \"release_ms\": {:.4}, \"transitions_per_migration\": {:.1}}}",
            mean(&cells[0]),
            mean(&cells[1]),
            mean(&cells[2]),
            vm_ms,
            mean(&phases[0]),
            mean(&phases[1]),
            mean(&phases[2]),
            mean(&phases[3]),
            mean(&transitions),
        ));
        phase_rows.push((
            label,
            mean(&phases[0]),
            mean(&phases[1]),
            mean(&phases[2]),
            mean(&phases[3]),
            mean(&transitions),
        ));
    }
    println!(
        "(VM model: cloud_sim::vm::vm_migration_time at the same byte count over the\n datacenter link — the enclave streamed path tracks it at equal state sizes.)"
    );

    // Per-phase breakdown of the streamed arm, from the mig-trace span
    // partition (virtual time — deterministic per seed). The transition
    // column counts the ECALLs/OCALLs attributed to the migration's
    // trace id: 2 × chunks (one destination TRANSFER + one source ACK
    // per chunk).
    println!("\n--- streamed path per-phase breakdown (virtual ms; mean over {n} runs) ---");
    println!(
        "{:<8} {:>12} {:>12} {:>8} {:>12} {:>13}",
        "state", "announce", "stream", "stage", "release", "transitions"
    );
    println!("{}", "-".repeat(70));
    for (label, announce, stream, stage, release, trans) in &phase_rows {
        println!(
            "{:<8} {:>12.3} {:>12.3} {:>8.3} {:>12.3} {:>13.1}",
            label, announce, stream, stage, release, trans
        );
    }

    // Delta-vs-full series on the largest swept geometry: dirty 1 %,
    // 10 %, and 50 % of the entries at the destination, then migrate
    // back. Transfer time should scale with the dirty size, not the
    // total state size.
    let &(label, entries, value_len) = sweep.last().expect("sweep is non-empty");
    println!("\n--- delta repeat migration ({label} state, {n} cycles per row) ---");
    println!(
        "{:<8} {:>18} {:>18} {:>14} {:>14}",
        "dirty", "full virt (ms)", "delta virt (ms)", "full MiB", "delta MiB"
    );
    println!("{}", "-".repeat(78));
    let mut json_delta = Vec::new();
    for dirty_percent in [1u32, 10, 50] {
        let dirty_entries = (entries * dirty_percent / 100).max(1);
        let mut full_ms = Vec::new();
        let mut delta_ms = Vec::new();
        let mut full_bytes = 0u64;
        let mut delta_bytes = 0u64;
        for _ in 0..n {
            seed += 1;
            let cell = mig_bench::delta_migration_cycle(seed, entries, value_len, dirty_entries);
            full_ms.push(cell.full_virt_ms);
            delta_ms.push(cell.delta_virt_ms);
            full_bytes = cell.full_bytes;
            delta_bytes = cell.delta_bytes;
        }
        let full = mig_stats::summarize(&full_ms, 0.99);
        let delta = mig_stats::summarize(&delta_ms, 0.99);
        println!(
            "{:<8} {:>10.3} ± {:>4.3} {:>10.3} ± {:>4.3} {:>14.2} {:>14.2}",
            format!("{dirty_percent}%"),
            full.mean,
            full.ci_half_width,
            delta.mean,
            delta.ci_half_width,
            full_bytes as f64 / (1024.0 * 1024.0),
            delta_bytes as f64 / (1024.0 * 1024.0),
        );
        json_delta.push(format!(
            "    {{\"dirty_percent\": {dirty_percent}, \"full_virt_ms\": {:.4}, \"delta_virt_ms\": {:.4}, \"full_bytes\": {full_bytes}, \"delta_bytes\": {delta_bytes}}}",
            full.mean, delta.mean
        ));
    }

    // Concurrency series: k enclaves of the largest swept geometry
    // migrating to one destination at once. The per-nonce multiplexed
    // streams share the link under deficit round-robin, so the total
    // time should grow roughly linearly with k while the completion
    // spread stays a small fraction of the total (no stream starves).
    let conc_max: u32 = std::env::var("E4_CONC_MAX")
        .ok()
        .and_then(|v| v.parse().ok())
        .unwrap_or(4);
    println!("\n--- concurrent multi-enclave migration ({label} state each, {n} runs per row) ---");
    println!(
        "{:<4} {:>18} {:>18} {:>14}",
        "k", "total virt (ms)", "spread (ms)", "wire MiB"
    );
    println!("{}", "-".repeat(60));
    let mut json_conc = Vec::new();
    for k in [1u32, 2, 4, 8] {
        if k > conc_max {
            break;
        }
        let mut total_ms = Vec::new();
        let mut spread_ms = Vec::new();
        let mut wire_bytes_sum = 0u64;
        for _ in 0..n {
            seed += 1;
            let cell = mig_bench::concurrent_migration_cell(seed, k, entries, value_len);
            total_ms.push(cell.total_virt_ms);
            spread_ms.push(cell.spread_ms);
            wire_bytes_sum += cell.wire_bytes;
        }
        // Mean over the runs, like the latency columns (per-run byte
        // counts vary with the adaptive link's settled geometry).
        let wire_bytes = wire_bytes_sum / n as u64;
        let total = mig_stats::summarize(&total_ms, 0.99);
        let spread = mig_stats::summarize(&spread_ms, 0.99);
        println!(
            "{:<4} {:>10.3} ± {:>4.3} {:>10.3} ± {:>4.3} {:>14.2}",
            k,
            total.mean,
            total.ci_half_width,
            spread.mean,
            spread.ci_half_width,
            wire_bytes as f64 / (1024.0 * 1024.0),
        );
        json_conc.push(format!(
            "    {{\"k\": {k}, \"total_virt_ms\": {:.4}, \"spread_ms\": {:.4}, \"wire_bytes\": {wire_bytes}}}",
            total.mean, spread.mean
        ));
    }

    // Speculative-restore series: the destination's time-to-release
    // (wall-clock tail of the final-chunk ECALL) with verified-prefix
    // staging + incremental digest versus the legacy
    // unseal-after-complete path, at the largest swept geometry.
    println!("\n--- speculative restore: destination time-to-release ({label} state, {n} runs per cell) ---");
    println!(
        "{:<14} {:>22} {:>22}",
        "mode", "release (ms)", "speedup vs unseal"
    );
    println!("{}", "-".repeat(62));
    // One discarded warmup run per mode: the first migration in the
    // process pays allocator and page-cache effects that would
    // otherwise land entirely on one arm of the comparison.
    let _ = mig_bench::release_latency_cell(seed + 9001, entries, value_len, true);
    let _ = mig_bench::release_latency_cell(seed + 9002, entries, value_len, false);
    let mut spec_cells: Vec<Vec<f64>> = vec![Vec::new(); 2];
    for _ in 0..n {
        for (i, speculative) in [true, false].into_iter().enumerate() {
            seed += 1;
            spec_cells[i].push(mig_bench::release_latency_cell(
                seed,
                entries,
                value_len,
                speculative,
            ));
        }
    }
    let spec = mig_stats::summarize(&spec_cells[0], 0.99);
    let unseal = mig_stats::summarize(&spec_cells[1], 0.99);
    println!(
        "{:<14} {:>15.3} ± {:>4.3} {:>21.2}x",
        "speculative",
        spec.mean,
        spec.ci_half_width,
        unseal.mean / spec.mean.max(1e-9)
    );
    println!(
        "{:<14} {:>15.3} ± {:>4.3} {:>22}",
        "unseal-after", unseal.mean, unseal.ci_half_width, "1.00x"
    );
    let json_spec = format!(
        "    {{\"label\": \"{label}\", \"speculative_release_ms\": {:.4}, \"unseal_release_ms\": {:.4}}}",
        spec.mean, unseal.mean
    );

    let json = format!(
        "{{\n  \"sweep\": [\n{}\n  ],\n  \"delta\": [\n{}\n  ],\n  \"concurrency\": [\n{}\n  ],\n  \"speculative\": [\n{}\n  ]\n}}\n",
        json_sweep.join(",\n"),
        json_delta.join(",\n"),
        json_conc.join(",\n"),
        json_spec
    );
    let path = std::env::var("E4_JSON_PATH").unwrap_or_else(|_| "BENCH_e4.json".to_string());
    match std::fs::write(&path, &json) {
        Ok(()) => println!("\nmachine-readable results written to {path}"),
        Err(e) => eprintln!("\nfailed to write {path}: {e}"),
    }

    // The last streamed sweep cell's full fleet telemetry, exported as
    // the stable sorted TRACE.json (byte-identical for identical seeds
    // and sweep geometry).
    if let Some(telemetry) = trace_export {
        let trace_path =
            std::env::var("TRACE_JSON_PATH").unwrap_or_else(|_| "TRACE.json".to_string());
        match std::fs::write(&trace_path, telemetry.to_json()) {
            Ok(()) => println!("deterministic trace export written to {trace_path}"),
            Err(e) => eprintln!("failed to write {trace_path}: {e}"),
        }
    }

    println!("\nThe streamed path pipelines chunks through the attested channel, so its");
    println!("simulated time tracks the blob path while surviving mid-transfer crashes;");
    println!("the delta rows show repeat-migration cost scaling with the dirty size,");
    println!("not the total state size (tests/streaming_migration.rs asserts the same).");
}

fn ablation() {
    println!("\n=== §VI-B ablation — counter transfer strategy ===");
    println!("(naive: increment a fresh destination counter up to the transferred");
    println!(" value; offset: install the value as a constant-time offset)\n");
    println!(
        "{:<16} {:>18} {:>18} {:>10}",
        "counter value", "fast-forward", "offset design", "ratio"
    );
    println!("{}", "-".repeat(66));
    for value in [1u32, 10, 100, 1_000, 10_000] {
        let (naive, offset) = mig_bench::counter_transfer_ablation(value);
        println!(
            "{:<16} {:>15.1} ms {:>15.1} ms {:>9.0}x",
            value,
            naive.as_secs_f64() * 1e3,
            offset.as_secs_f64() * 1e3,
            naive.as_secs_f64() / offset.as_secs_f64().max(1e-9),
        );
    }
    println!("\npaper: \"this will incur significant performance overhead because");
    println!("monotonic counter operations are usually rate-limited. Instead, our");
    println!("implementation uses a counter offset ... the processing time of a");
    println!("counter during migration is constant, regardless of the counter value.\"");
}

fn main() {
    let which: Vec<String> = std::env::args().skip(1).collect();
    let all = which.is_empty();
    let n = iterations();

    println!("sgx-migrate evaluation harness — reproducing DSN'18 Figs. 3-4 + §VII-B");
    if all || which.iter().any(|w| w == "fig3") {
        fig3(n);
    }
    if all || which.iter().any(|w| w == "fig4") {
        fig4(n);
    }
    if all || which.iter().any(|w| w == "e3") {
        e3(n.min(100));
    }
    if all || which.iter().any(|w| w == "e4") {
        e4(n.clamp(2, 5));
    }
    if all || which.iter().any(|w| w == "ablation") {
        ablation();
    }
}
