//! E4 — TCB size accounting (paper §VII-A, "Software TCB size").
//!
//! The paper reports the Migration Enclave at **217 LoC** and the
//! Migration Library at **940 LoC** (excluding the SGX trusted
//! libraries). This tool counts the equivalent in-enclave trusted code of
//! this reproduction the same way — non-blank, non-comment lines,
//! excluding tests — and prints the comparison.
//!
//! ```sh
//! cargo run -p mig-bench --bin tcb_loc
//! ```

use std::fs;
use std::path::Path;

/// Counts non-blank, non-comment lines, stopping at `#[cfg(test)]`
/// (everything after the test marker is test code in this workspace's
/// module layout).
fn count_loc(path: &Path) -> usize {
    let source = fs::read_to_string(path).unwrap_or_else(|e| panic!("read {path:?}: {e}"));
    let mut loc = 0usize;
    let mut in_block_comment = false;
    for line in source.lines() {
        let trimmed = line.trim();
        if trimmed.starts_with("#[cfg(test)]") {
            break;
        }
        if in_block_comment {
            if trimmed.contains("*/") {
                in_block_comment = false;
            }
            continue;
        }
        if trimmed.is_empty()
            || trimmed.starts_with("//")
            || trimmed.starts_with("///")
            || trimmed.starts_with("//!")
        {
            continue;
        }
        if trimmed.starts_with("/*") {
            if !trimmed.contains("*/") {
                in_block_comment = true;
            }
            continue;
        }
        loc += 1;
    }
    loc
}

fn main() {
    let root = Path::new(env!("CARGO_MANIFEST_DIR")).join("../core/src");

    let me_files = ["me.rs"];
    let lib_files = [
        "library/mod.rs",
        "library/state.rs",
        "secure_channel.rs",
        "remote_attest.rs",
        "msgs.rs",
    ];

    println!("=== E4 — software TCB size (cf. paper §VII-A) ===\n");

    let mut me_total = 0;
    println!("Migration Enclave (trusted):");
    for file in me_files {
        let loc = count_loc(&root.join(file));
        println!("  {file:<24} {loc:>5} LoC");
        me_total += loc;
    }
    println!("  {:<24} {me_total:>5} LoC   (paper: 217)\n", "total");

    let mut lib_total = 0;
    println!("Migration Library (trusted, linked into each enclave):");
    for file in lib_files {
        let loc = count_loc(&root.join(file));
        println!("  {file:<24} {loc:>5} LoC");
        lib_total += loc;
    }
    println!("  {:<24} {lib_total:>5} LoC   (paper: 940)\n", "total");

    println!("note: this reproduction in-lines the attestation/channel machinery the");
    println!("paper counts under 'SGX trusted libraries' (sgx_dh, RA key exchange),");
    println!("so the library total here covers strictly more functionality.");
}
