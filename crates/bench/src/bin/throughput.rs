//! Sealed-state migration **throughput** microbench: wall-clock MB/s
//! from `migration_start` on the source to payload release on the
//! destination, at 64 MiB of kvstore state, comparing the hot-call
//! batched + pipelined transfer path against the legacy per-frame path.
//!
//! ```sh
//! cargo run -p mig-bench --release --bin throughput
//! THROUGHPUT_MIB=16 cargo run -p mig-bench --release --bin throughput
//! THROUGHPUT_BATCH=8 cargo run -p mig-bench --release --bin throughput
//! THROUGHPUT_ROUNDS=3 cargo run -p mig-bench --release --bin throughput
//! THROUGHPUT_DEBUG=1 cargo run -p mig-bench --release --bin throughput  # dump counters
//! THROUGHPUT_ASSERT=1 cargo run -p mig-bench --release --bin throughput  # CI smoke
//! ```
//!
//! Each arm runs `THROUGHPUT_ROUNDS` times (default 2) with the arms
//! interleaved — unbatched, batched, unbatched, batched — and the
//! fastest round per arm is reported. Interleaving matters: the two
//! arms do several seconds of identical crypto per round, and on a
//! shared machine a strictly sequential A-then-B order hands whichever
//! arm runs second a measurable frequency/cache handicap (a control
//! run with `THROUGHPUT_BATCH=1`, i.e. both arms doing literally the
//! same work, still measured the second arm ~4% slower). Best-of-N
//! over alternating rounds compares the arms' actual work instead of
//! their slot in the schedule.
//!
//! The batched arm ships `batch_size` sealed cells per `TRANSFER_BATCH`
//! ECALL and seals/digests chunks on `seal_lanes` worker lanes, so
//! enclave transitions per migration drop from ~2×chunks towards
//! ~2×⌈chunks/batch⌉ and the AES-GCM cost (the wall-clock bottleneck)
//! is spread across cores. Results land in `BENCH_throughput.json`
//! (override with `THROUGHPUT_JSON_PATH`). With `THROUGHPUT_ASSERT=1`
//! the run exits nonzero unless the batched arm's trace-attributed
//! ECALLs stay under 0.25 × chunks **and** the batched arm is at least
//! as fast as the unbatched arm end to end (`speedup >= 1.0`) — fewer
//! transitions must never be bought with a wall-clock regression.

use mig_bench::prepared_kv_datacenter;
use mig_core::transfer::TransferConfig;
use std::time::Instant;

/// One measured arm of the comparison.
struct Arm {
    label: &'static str,
    wall_s: f64,
    mb_per_s: f64,
    state_bytes: u64,
    chunks: u64,
    trace_ecalls: u64,
    batches_received: u64,
}

fn stream_config(batched: bool, chunk_size: u32) -> TransferConfig {
    TransferConfig {
        stream_threshold: 4096,
        chunk_size,
        window: 32,
        max_window: 32,
        batch_size: if batched {
            std::env::var("THROUGHPUT_BATCH")
                .ok()
                .and_then(|v| v.parse().ok())
                .unwrap_or(32)
        } else {
            1
        },
        seal_lanes: if batched { 4 } else { 1 },
        ..TransferConfig::default()
    }
}

fn run_arm(label: &'static str, seed: u64, entries: u32, batched: bool) -> Arm {
    const VALUE_LEN: u32 = 4096;
    const CHUNK_SIZE: u32 = 256 * 1024;
    let transfer = stream_config(batched, CHUNK_SIZE);
    let mut dc = prepared_kv_datacenter(seed, transfer, entries, VALUE_LEN);

    let wall_start = Instant::now();
    dc.migrate_app("src", "dst").expect("migrate");
    let wall_s = wall_start.elapsed().as_secs_f64();

    // The released payload's real size (kvstore state ≈ entries ×
    // value_len plus serialization overhead) is the byte count the
    // stream actually moved.
    let state_bytes = dc
        .app_bulk_state("dst")
        .expect("bulk state")
        .expect("migrated state present")
        .len() as u64;
    let chunks = state_bytes.div_ceil(u64::from(CHUNK_SIZE));

    let telemetry = dc.fleet_telemetry().expect("telemetry");
    // The migration's transition cost: ECALLs attributed to the unique
    // trace that carried Stream-phase spans, across both machines
    // (destination TRANSFER/TRANSFER_BATCH + source ACK ECALLs).
    let trace_ecalls = telemetry
        .trace_ids()
        .into_iter()
        .find(|t| {
            telemetry
                .spans_for(*t)
                .iter()
                .any(|(p, _, _)| *p == mig_trace::Phase::Stream)
        })
        .and_then(|t| telemetry.transitions.by_trace.get(&t).map(|c| c.ecalls))
        .unwrap_or(0);
    let batches_received = telemetry
        .counters
        .iter()
        .find(|(name, _)| name.as_str() == "me.batches_received")
        .map_or(0, |(_, v)| *v);
    if std::env::var("THROUGHPUT_DEBUG").is_ok() {
        for (name, v) in &telemetry.counters {
            eprintln!("  [{label}] {name} = {v}");
        }
    }

    Arm {
        label,
        wall_s,
        mb_per_s: state_bytes as f64 / (1024.0 * 1024.0) / wall_s,
        state_bytes,
        chunks,
        trace_ecalls,
        batches_received,
    }
}

fn arm_json(arm: &Arm) -> String {
    format!(
        concat!(
            "    {{\"label\": \"{}\", \"wall_s\": {:.3}, \"mb_per_s\": {:.2}, ",
            "\"state_bytes\": {}, \"chunks\": {}, \"trace_ecalls\": {}, ",
            "\"transitions_per_migration\": {}, \"batches_received\": {}}}"
        ),
        arm.label,
        arm.wall_s,
        arm.mb_per_s,
        arm.state_bytes,
        arm.chunks,
        arm.trace_ecalls,
        arm.trace_ecalls,
        arm.batches_received,
    )
}

fn main() {
    let mib: u32 = std::env::var("THROUGHPUT_MIB")
        .ok()
        .and_then(|v| v.parse().ok())
        .unwrap_or(64);
    // 4 KiB values: entries × 4096 ≈ the requested state size.
    let entries = mib * 256;

    let rounds: u32 = std::env::var("THROUGHPUT_ROUNDS")
        .ok()
        .and_then(|v| v.parse().ok())
        .unwrap_or(2)
        .max(1);

    println!("=== Sealed-state migration throughput ({mib} MiB kvstore, best of {rounds}) ===\n");
    let faster = |best: Option<Arm>, arm: Arm| match best {
        Some(b) if b.wall_s <= arm.wall_s => Some(b),
        _ => Some(arm),
    };
    let mut best_unbatched: Option<Arm> = None;
    let mut best_batched: Option<Arm> = None;
    for _ in 0..rounds {
        best_unbatched = faster(best_unbatched, run_arm("unbatched", 0x7A11, entries, false));
        best_batched = faster(best_batched, run_arm("batched", 0x7A11, entries, true));
    }
    let unbatched = best_unbatched.expect("rounds >= 1");
    let batched = best_batched.expect("rounds >= 1");

    for arm in [&unbatched, &batched] {
        println!(
            "{:<10} {:>8.2} MB/s  wall {:>6.2} s  chunks {:>4}  trace ECALLs {:>5}  batches {:>3}",
            arm.label, arm.mb_per_s, arm.wall_s, arm.chunks, arm.trace_ecalls, arm.batches_received,
        );
    }
    let speedup = batched.mb_per_s / unbatched.mb_per_s;
    println!("\nspeedup (batched / unbatched): {speedup:.2}x");
    println!(
        "transitions per migration: {} → {} (2×chunks would be {})",
        unbatched.trace_ecalls,
        batched.trace_ecalls,
        2 * batched.chunks
    );

    let json = format!(
        "{{\n  \"bench\": \"throughput\",\n  \"mib\": {},\n  \"speedup\": {:.3},\n  \"arms\": [\n{},\n{}\n  ]\n}}\n",
        mib,
        speedup,
        arm_json(&unbatched),
        arm_json(&batched),
    );
    let path = std::env::var("THROUGHPUT_JSON_PATH")
        .unwrap_or_else(|_| "BENCH_throughput.json".to_string());
    match std::fs::write(&path, &json) {
        Ok(()) => println!("\nwrote {path}"),
        Err(e) => eprintln!("\nfailed to write {path}: {e}"),
    }

    if std::env::var("THROUGHPUT_ASSERT").is_ok() {
        // CI smoke bound: the batched path must collapse enclave
        // transitions well below the per-frame path's 2×chunks.
        let bound = 0.25 * batched.chunks as f64;
        assert!(
            (batched.trace_ecalls as f64) < bound,
            "batched trace ECALLs {} not under 0.25×chunks = {bound:.1}",
            batched.trace_ecalls
        );
        assert!(
            batched.batches_received > 0,
            "batched arm never took the TRANSFER_BATCH path"
        );
        // Wall-clock regression guard: saving transitions is worthless
        // if batching is slower end to end. This caught the pre-kernel
        // state of the world (speedup 0.967) and keeps the next crypto
        // or pipelining regression out of CI.
        assert!(
            speedup >= 1.0,
            "batched arm is wall-clock slower than unbatched: speedup {speedup:.3} < 1.0 \
             ({:.2} vs {:.2} MB/s)",
            batched.mb_per_s,
            unbatched.mb_per_s
        );
        println!(
            "assert ok: {} trace ECALLs < {bound:.1} (0.25 × {} chunks); speedup {speedup:.2}x >= 1.0",
            batched.trace_ecalls, batched.chunks
        );
    }
}
