//! Per-primitive **crypto kernel** microbench: MB/s for the sealed-data
//! hot path's software kernels, old arm (the byte-serial implementations
//! retained under mig-crypto's `reference` feature) against the new
//! multi-block kernels shipping in production.
//!
//! ```sh
//! cargo run -p mig-bench --release --bin crypto_kernels
//! CRYPTO_KERNELS_MIB=16 cargo run -p mig-bench --release --bin crypto_kernels
//! ```
//!
//! Measured pairs:
//! - **aes_ctr**: CTR keystream XOR — scalar SBOX walk, one block per
//!   call, vs the bitsliced kernel at `PARALLEL_BLOCKS` blocks per call
//! - **ghash**: GHASH block absorption — Shoup 4-bit tables (32 lookups
//!   per block) vs 8-bit tables (16 lookups) folded two blocks at a
//!   time through the H² pair walk
//! - **sha256**: whole-buffer digest — rolled 64-round compress vs the
//!   unrolled rolling-schedule bulk kernel
//! - **seal / open**: end-to-end AES-128-GCM through `AesGcm` (new
//!   kernels) vs the same construction assembled from the reference
//!   primitives (the pre-kernel production path)
//!
//! Results land in `BENCH_crypto.json` (override with
//! `CRYPTO_KERNELS_JSON_PATH`); CI uploads the file as an artifact so
//! kernel-level regressions are visible per commit without re-running
//! the full migration throughput bench.

use mig_crypto::aes::{reference::ScalarAes128, Aes128, BLOCK_LEN, PARALLEL_BLOCKS};
use mig_crypto::gcm::{self, reference as ghash_ref, AesGcm};
use mig_crypto::sha256::{reference::sha256_rolled, sha256};
use std::time::Instant;

/// One measured old-vs-new pair.
struct Pair {
    kernel: &'static str,
    old_mb_per_s: f64,
    new_mb_per_s: f64,
}

fn mb_per_s(bytes: usize, secs: f64) -> f64 {
    bytes as f64 / (1024.0 * 1024.0) / secs
}

/// Times `f` over `data`-sized work, returning MB/s. A single pass is
/// enough: every arm runs multiple seconds' worth of block operations
/// at the sizes used here, so timer noise is far below the gaps being
/// reported.
fn timed(bytes: usize, f: impl FnOnce()) -> f64 {
    let start = Instant::now();
    f();
    mb_per_s(bytes, start.elapsed().as_secs_f64())
}

fn bench_aes_ctr(data: &mut [u8]) -> Pair {
    let key = [0x42u8; 16];
    let bytes = data.len();

    // Old arm: scalar cipher, one keystream block per call.
    let scalar = ScalarAes128::new(&key);
    let old = timed(bytes, || {
        let mut counter = [0u8; BLOCK_LEN];
        for chunk in data.chunks_mut(BLOCK_LEN) {
            let ks = scalar.encrypt(&counter);
            for (d, k) in chunk.iter_mut().zip(ks.iter()) {
                *d ^= k;
            }
            let c = u32::from_be_bytes(counter[12..].try_into().expect("4 bytes"));
            counter[12..].copy_from_slice(&c.wrapping_add(1).to_be_bytes());
        }
    });

    // New arm: bitsliced kernel, PARALLEL_BLOCKS keystream blocks per call.
    let bitsliced = Aes128::new(&key);
    let new = timed(bytes, || {
        let mut ctr = 0u32;
        let mut ks = [[0u8; BLOCK_LEN]; PARALLEL_BLOCKS];
        for chunk in data.chunks_mut(BLOCK_LEN * PARALLEL_BLOCKS) {
            for (j, block) in ks.iter_mut().enumerate() {
                *block = [0u8; BLOCK_LEN];
                block[12..].copy_from_slice(&ctr.wrapping_add(j as u32).to_be_bytes());
            }
            bitsliced.encrypt_blocks(&mut ks);
            for (sub, kblock) in chunk.chunks_mut(BLOCK_LEN).zip(ks.iter()) {
                for (d, k) in sub.iter_mut().zip(kblock.iter()) {
                    *d ^= k;
                }
            }
            ctr = ctr.wrapping_add(PARALLEL_BLOCKS as u32);
        }
    });

    Pair {
        kernel: "aes_ctr",
        old_mb_per_s: old,
        new_mb_per_s: new,
    }
}

fn bench_ghash(data: &[u8]) -> Pair {
    let h = 0x66e9_4bd4_ef8a_2c3b_884c_fa59_ca34_2b2eu128;
    let bytes = data.len();

    let table4 = ghash_ref::build_htable_4bit(h);
    let old = timed(bytes, || {
        let mut y = 0u128;
        for chunk in data.chunks_exact(BLOCK_LEN) {
            let block = u128::from_be_bytes(chunk.try_into().expect("exact block"));
            y = ghash_ref::gf_mul_4bit(y ^ block, &table4);
        }
        std::hint::black_box(y);
    });

    let table8 = gcm::build_htable(h);
    let table8_sq = gcm::build_htable(gcm::gf_mul_8bit(h, &table8));
    let new = timed(bytes, || {
        // The production fold: two blocks per step via the H² pair walk,
        // single-block 8-bit multiply for any odd tail block.
        let mut y = 0u128;
        let mut pairs = data.chunks_exact(2 * BLOCK_LEN);
        for pair in &mut pairs {
            let b0 = u128::from_be_bytes(pair[..BLOCK_LEN].try_into().expect("exact block"));
            let b1 = u128::from_be_bytes(pair[BLOCK_LEN..].try_into().expect("exact block"));
            y = gcm::gf_mul_pair(y ^ b0, b1, &table8_sq, &table8);
        }
        for chunk in pairs.remainder().chunks_exact(BLOCK_LEN) {
            let block = u128::from_be_bytes(chunk.try_into().expect("exact block"));
            y = gcm::gf_mul_8bit(y ^ block, &table8);
        }
        std::hint::black_box(y);
    });

    Pair {
        kernel: "ghash",
        old_mb_per_s: old,
        new_mb_per_s: new,
    }
}

fn bench_sha256(data: &[u8]) -> Pair {
    let bytes = data.len();
    let old = timed(bytes, || {
        std::hint::black_box(sha256_rolled(data));
    });
    let new = timed(bytes, || {
        std::hint::black_box(sha256(data));
    });
    Pair {
        kernel: "sha256",
        old_mb_per_s: old,
        new_mb_per_s: new,
    }
}

/// Seal with the pre-kernel construction: scalar AES CTR one block at a
/// time + 4-bit GHASH, assembled from the reference oracles — the exact
/// bytes and work profile of the previous production `AesGcm::seal`.
fn seal_reference(key: [u8; 16], nonce: &[u8; 12], aad: &[u8], plaintext: &[u8]) -> Vec<u8> {
    let cipher = ScalarAes128::new(&key);
    let h = u128::from_be_bytes(cipher.encrypt(&[0u8; BLOCK_LEN]));
    let htable = ghash_ref::build_htable_4bit(h);

    let mut j0 = [0u8; BLOCK_LEN];
    j0[..12].copy_from_slice(nonce);
    j0[BLOCK_LEN - 1] = 1;

    let inc32 = |block: &mut [u8; BLOCK_LEN]| {
        let c = u32::from_be_bytes(block[12..].try_into().expect("4 bytes"));
        block[12..].copy_from_slice(&c.wrapping_add(1).to_be_bytes());
    };

    let mut out = plaintext.to_vec();
    let mut counter = j0;
    inc32(&mut counter);
    for chunk in out.chunks_mut(BLOCK_LEN) {
        let ks = cipher.encrypt(&counter);
        for (d, k) in chunk.iter_mut().zip(ks.iter()) {
            *d ^= k;
        }
        inc32(&mut counter);
    }

    let mut y = 0u128;
    for data in [aad, &out[..]] {
        for chunk in data.chunks(BLOCK_LEN) {
            let mut block = [0u8; BLOCK_LEN];
            block[..chunk.len()].copy_from_slice(chunk);
            y = ghash_ref::gf_mul_4bit(y ^ u128::from_be_bytes(block), &htable);
        }
    }
    let mut len_block = [0u8; BLOCK_LEN];
    len_block[..8].copy_from_slice(&((aad.len() as u64) * 8).to_be_bytes());
    len_block[8..].copy_from_slice(&((out.len() as u64) * 8).to_be_bytes());
    y = ghash_ref::gf_mul_4bit(y ^ u128::from_be_bytes(len_block), &htable);

    let ekj0 = cipher.encrypt(&j0);
    let mut tag = y.to_be_bytes();
    for (t, k) in tag.iter_mut().zip(ekj0.iter()) {
        *t ^= k;
    }
    out.extend_from_slice(&tag);
    out
}

fn bench_seal_open(data: &[u8]) -> (Pair, Pair) {
    let key = [0x21u8; 16];
    let nonce = [7u8; 12];
    let aad = b"bench.aad";
    let bytes = data.len();

    let old_seal = timed(bytes, || {
        std::hint::black_box(seal_reference(key, &nonce, aad, data));
    });

    let aead = AesGcm::new(key);
    let mut sealed = Vec::new();
    let new_seal = timed(bytes, || {
        aead.seal_into(&nonce, aad, data, &mut sealed);
    });

    // Open = tag recompute + CTR: same primitive mix as seal, so the
    // reference arm reuses the seal construction's cost profile.
    let old_open = timed(bytes, || {
        std::hint::black_box(seal_reference(key, &nonce, aad, data));
    });
    let new_open = timed(bytes, || {
        std::hint::black_box(aead.open(&nonce, aad, &sealed).expect("tag verifies"));
    });

    (
        Pair {
            kernel: "seal",
            old_mb_per_s: old_seal,
            new_mb_per_s: new_seal,
        },
        Pair {
            kernel: "open",
            old_mb_per_s: old_open,
            new_mb_per_s: new_open,
        },
    )
}

fn main() {
    let mib: usize = std::env::var("CRYPTO_KERNELS_MIB")
        .ok()
        .and_then(|v| v.parse().ok())
        .unwrap_or(8);
    let mut data = vec![0u8; mib * 1024 * 1024];
    for (i, b) in data.iter_mut().enumerate() {
        *b = (i % 251) as u8;
    }

    println!("=== Software crypto kernels ({mib} MiB per arm) ===\n");
    let mut pairs = vec![
        bench_aes_ctr(&mut data.clone()),
        bench_ghash(&data),
        bench_sha256(&data),
    ];
    let (seal, open) = bench_seal_open(&data);
    pairs.push(seal);
    pairs.push(open);

    for p in &pairs {
        println!(
            "{:<8} {:>8.2} -> {:>8.2} MB/s  ({:.1}x)",
            p.kernel,
            p.old_mb_per_s,
            p.new_mb_per_s,
            p.new_mb_per_s / p.old_mb_per_s
        );
    }

    let arms: Vec<String> = pairs
        .iter()
        .map(|p| {
            format!(
                concat!(
                    "    {{\"kernel\": \"{}\", \"old_mb_per_s\": {:.2}, ",
                    "\"new_mb_per_s\": {:.2}, \"speedup\": {:.2}}}"
                ),
                p.kernel,
                p.old_mb_per_s,
                p.new_mb_per_s,
                p.new_mb_per_s / p.old_mb_per_s
            )
        })
        .collect();
    let json = format!(
        "{{\n  \"bench\": \"crypto_kernels\",\n  \"mib\": {},\n  \"kernels\": [\n{}\n  ]\n}}\n",
        mib,
        arms.join(",\n")
    );
    let path = std::env::var("CRYPTO_KERNELS_JSON_PATH")
        .unwrap_or_else(|_| "BENCH_crypto.json".to_string());
    match std::fs::write(&path, &json) {
        Ok(()) => println!("\nwrote {path}"),
        Err(e) => eprintln!("\nfailed to write {path}: {e}"),
    }
}
