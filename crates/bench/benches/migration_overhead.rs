//! Criterion bench for the end-to-end migration overhead (§VII-B, E3):
//! the host compute cost of one full enclave migration — local
//! attestation, remote attestation with operator auth, transfer, DONE —
//! in a fresh two-machine datacenter per iteration.
//!
//! ```sh
//! cargo bench -p mig-bench --bench migration_overhead
//! ```
//!
//! The *simulated* end-to-end latency (with network/IAS/firmware time)
//! is reported by `cargo run -p mig-bench --bin figures -- e3`.

use criterion::{criterion_group, criterion_main, BatchSize, Criterion};
use mig_bench::{bench_image, migration_fixture, BenchApp};
use mig_core::datacenter::Datacenter;
use mig_core::library::InitRequest;
use std::time::Duration;

/// Builds a datacenter with source and destination deployed, ready for
/// the `migrate_app` call to be measured.
fn prepared_datacenter(seed: u64) -> Datacenter {
    let (mut dc, m1, m2) = migration_fixture(seed);
    dc.deploy_app("src", m1, &bench_image(), BenchApp, InitRequest::New)
        .expect("deploy src");
    let id = dc
        .call_app("src", mig_bench::ops::COUNTER_CREATE, &[])
        .expect("create")[0];
    dc.call_app("src", mig_bench::ops::COUNTER_INCREMENT, &[id])
        .expect("inc");
    dc.deploy_app("dst", m2, &bench_image(), BenchApp, InitRequest::Migrate)
        .expect("deploy dst");
    dc
}

fn bench_migration(c: &mut Criterion) {
    let mut group = c.benchmark_group("migration_overhead");
    group
        .sample_size(20)
        .warm_up_time(Duration::from_millis(500))
        .measurement_time(Duration::from_secs(5));

    let mut seed = 0u64;
    group.bench_function("full_migration/host_compute", |b| {
        b.iter_batched(
            || {
                seed += 1;
                prepared_datacenter(seed)
            },
            |mut dc| dc.migrate_app("src", "dst").expect("migrate"),
            BatchSize::PerIteration,
        )
    });
    group.finish();
}

/// The E4 state-size sweep: one kvstore migration per iteration, state
/// from 4 KiB to 16 MiB, single-shot blob vs chunked streaming.
fn bench_state_sweep(c: &mut Criterion) {
    let mut group = c.benchmark_group("migration_state_sweep");
    group
        .sample_size(3)
        .warm_up_time(Duration::from_millis(100))
        .measurement_time(Duration::from_secs(2));

    let mut seed = 1000u64;
    for &(label, entries, value_len) in mig_bench::STATE_SWEEP {
        for (mode, config) in [
            ("blob", mig_bench::sweep_blob_config()),
            ("streamed", mig_bench::sweep_stream_config()),
        ] {
            group.bench_function(format!("{mode}/{label}"), |b| {
                b.iter_batched(
                    || {
                        seed += 1;
                        mig_bench::prepared_kv_datacenter(seed, config, entries, value_len)
                    },
                    |mut dc| dc.migrate_app("src", "dst").expect("migrate"),
                    BatchSize::PerIteration,
                )
            });
        }
    }
    group.finish();
}

criterion_group!(benches, bench_migration, bench_state_sweep);
criterion_main!(benches);
