//! Criterion bench regenerating Figure 3: counter operations, migration
//! library vs native baseline, over the scaled Intel-ME latency model.
//!
//! ```sh
//! cargo bench -p mig-bench --bench fig3_counters
//! ```

use criterion::{criterion_group, criterion_main, Criterion};
use mig_bench::{ops, BenchSetup};
use mig_core::baseline::native::ops as native_ops;
use std::time::Duration;

fn bench_counters(c: &mut Criterion) {
    let setup = BenchSetup::new(true);
    let (mig_id, base_idx) = setup.create_counters();

    let mut group = c.benchmark_group("fig3_counters");
    group
        .sample_size(30)
        .warm_up_time(Duration::from_millis(400))
        .measurement_time(Duration::from_secs(2));

    group.bench_function("baseline/increase", |b| {
        b.iter(|| setup.call_baseline(native_ops::COUNTER_INCREMENT, &[base_idx]))
    });
    group.bench_function("migratable/increase", |b| {
        b.iter(|| setup.call_migratable(ops::COUNTER_INCREMENT, &[mig_id]))
    });
    group.bench_function("baseline/read", |b| {
        b.iter(|| setup.call_baseline(native_ops::COUNTER_READ, &[base_idx]))
    });
    group.bench_function("migratable/read", |b| {
        b.iter(|| setup.call_migratable(ops::COUNTER_READ, &[mig_id]))
    });
    group.bench_function("baseline/create+destroy", |b| {
        b.iter(|| {
            let idx = setup.call_baseline(native_ops::COUNTER_CREATE, &[])[0];
            setup.call_baseline(native_ops::COUNTER_DESTROY, &[idx]);
        })
    });
    group.bench_function("migratable/create+destroy", |b| {
        b.iter(|| {
            let id = setup.call_migratable(ops::COUNTER_CREATE, &[])[0];
            setup.call_migratable(ops::COUNTER_DESTROY, &[id]);
        })
    });
    group.finish();
}

criterion_group!(benches, bench_counters);
criterion_main!(benches);
