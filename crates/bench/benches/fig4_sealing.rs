//! Criterion bench regenerating Figure 4: library initialization and
//! sealing/unsealing at 100 B and 100 KiB, migratable vs native.
//!
//! ```sh
//! cargo bench -p mig-bench --bench fig4_sealing
//! ```

use criterion::{criterion_group, criterion_main, Criterion, Throughput};
use mig_bench::{ops, BenchSetup};
use mig_core::baseline::native::ops as native_ops;
use mig_core::harness::{encode_init, ops as lib_ops};
use mig_core::library::InitRequest;
use mig_core::me::me_image;
use std::time::Duration;

fn bench_init(c: &mut Criterion) {
    let setup = BenchSetup::new(true);
    let me_mr = me_image().mr_enclave();

    let mut group = c.benchmark_group("fig4_init");
    group
        .sample_size(50)
        .warm_up_time(Duration::from_millis(300))
        .measurement_time(Duration::from_secs(2));

    group.bench_function("init_new", |b| {
        let req = encode_init(&me_mr, &InitRequest::New);
        b.iter(|| setup.migratable.ecall(lib_ops::MIG_INIT, &req).unwrap())
    });
    group.bench_function("init_restore", |b| {
        // Fresh state blob with one active counter to restore from.
        let req = encode_init(&me_mr, &InitRequest::New);
        let out = setup.migratable.ecall(lib_ops::MIG_INIT, &req).unwrap();
        let (_, _) = mig_core::harness::open_envelope(&out).unwrap();
        let out = setup.migratable.ecall(ops::COUNTER_CREATE, &[]).unwrap();
        let (_, blob) = mig_core::harness::open_envelope(&out).unwrap();
        let blob = blob.expect("persisted");
        let req = encode_init(&me_mr, &InitRequest::Restore { blob });
        b.iter(|| setup.migratable.ecall(lib_ops::MIG_INIT, &req).unwrap())
    });
    group.finish();
}

fn bench_sealing(c: &mut Criterion) {
    let setup = BenchSetup::new(true);
    // (Re)initialize after the init benches reset the library.
    let req = encode_init(&me_image().mr_enclave(), &InitRequest::New);
    setup.migratable.ecall(lib_ops::MIG_INIT, &req).unwrap();

    let mut group = c.benchmark_group("fig4_sealing");
    group
        .sample_size(50)
        .warm_up_time(Duration::from_millis(300))
        .measurement_time(Duration::from_secs(2));

    for (label, size) in [("100B", 100usize), ("100kB", 100 * 1024)] {
        let payload = vec![0x5Au8; size];
        group.throughput(Throughput::Bytes(size as u64));
        group.bench_function(format!("baseline/seal_{label}"), |b| {
            b.iter(|| setup.call_baseline(native_ops::SEAL, &payload))
        });
        group.bench_function(format!("migratable/seal_{label}"), |b| {
            b.iter(|| setup.call_migratable(ops::SEAL, &payload))
        });

        let blob_base = setup.call_baseline(native_ops::SEAL, &payload);
        let blob_mig = setup.call_migratable(ops::SEAL, &payload);
        group.bench_function(format!("baseline/unseal_{label}"), |b| {
            b.iter(|| setup.call_baseline(native_ops::UNSEAL, &blob_base))
        });
        group.bench_function(format!("migratable/unseal_{label}"), |b| {
            b.iter(|| setup.call_migratable(ops::UNSEAL, &blob_mig))
        });
    }
    group.finish();
}

criterion_group!(benches, bench_init, bench_sealing);
criterion_main!(benches);
