//! Seeded fault schedules on virtual time.
//!
//! A [`FaultPlan`] is generated up front from a seed and a [`FaultSpec`]
//! envelope, then handed to the [`engine`](crate::engine) for execution.
//! Because the schedule is fixed before the run starts and anchored to
//! virtual time, the same seed always injects the same faults at the
//! same instants — chaos runs are exactly replayable.

use std::time::Duration;

use cloud_sim::clock::SimTime;
use sgx_sim::machine::MachineId;

use crate::rng::SplitMix64;

/// One category of injectable fault.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum FaultKind {
    /// Drop the next matching network frame.
    NetDrop,
    /// Bit-flip the next matching network frame (same length).
    NetCorrupt,
    /// Delay the next matching network frame by `by`.
    NetDelay {
        /// Extra in-flight delay applied to the frame.
        by: Duration,
    },
    /// Drop every frame between machines `a` and `b` for `hold`.
    Partition {
        /// One side of the severed pair.
        a: MachineId,
        /// Other side of the severed pair.
        b: MachineId,
        /// How long the partition holds.
        hold: Duration,
    },
    /// The next hooked disk write on `machine` fails (nothing stored).
    DiskFail {
        /// Machine whose untrusted disk misbehaves.
        machine: MachineId,
    },
    /// The next hooked disk write on `machine` is torn (prefix stored).
    DiskTorn {
        /// Machine whose untrusted disk misbehaves.
        machine: MachineId,
    },
    /// Crash and restart the Migration Enclave on `machine`.
    CrashMe {
        /// Machine whose ME dies.
        machine: MachineId,
    },
    /// Abort the next ECALL on `machine` (AEX-style, state untouched).
    EcallAbort {
        /// Machine whose next enclave call aborts.
        machine: MachineId,
    },
}

impl FaultKind {
    /// Short stable label used in fault records and reports.
    #[must_use]
    pub fn name(&self) -> &'static str {
        match self {
            FaultKind::NetDrop => "net-drop",
            FaultKind::NetCorrupt => "net-corrupt",
            FaultKind::NetDelay { .. } => "net-delay",
            FaultKind::Partition { .. } => "partition",
            FaultKind::DiskFail { .. } => "disk-fail",
            FaultKind::DiskTorn { .. } => "disk-torn",
            FaultKind::CrashMe { .. } => "crash-me",
            FaultKind::EcallAbort { .. } => "ecall-abort",
        }
    }
}

/// A fault armed at a virtual-time instant.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct ScheduledFault {
    /// Instant at which the fault arms.
    pub at: SimTime,
    /// What goes wrong.
    pub kind: FaultKind,
}

/// Envelope bounding what a generated plan may contain.
#[derive(Clone, Debug)]
pub struct FaultSpec {
    /// Earliest instant a fault may arm (lets setup run cleanly).
    pub start: SimTime,
    /// Window after `start` within which all faults arm.
    pub horizon: Duration,
    /// Machines eligible for targeted faults (disk, crash, ECALL,
    /// partition endpoints). Must not be empty.
    pub machines: Vec<MachineId>,
    /// Number of single-frame network faults (drop/corrupt/delay).
    pub net_faults: u32,
    /// Number of timed partitions.
    pub partitions: u32,
    /// Number of disk write faults (fail/torn).
    pub disk_faults: u32,
    /// Number of ME crashes.
    pub crashes: u32,
    /// Number of scheduled ECALL aborts.
    pub ecall_aborts: u32,
    /// Upper bound for `NetDelay` delays.
    pub max_delay: Duration,
    /// Upper bound for partition hold times.
    pub max_partition: Duration,
}

impl FaultSpec {
    /// A moderate mixed-fault envelope over `machines`, starting at
    /// `start`: a few of every category inside a one-second window.
    #[must_use]
    pub fn mixed(start: SimTime, machines: Vec<MachineId>) -> Self {
        FaultSpec {
            start,
            horizon: Duration::from_secs(1),
            machines,
            net_faults: 4,
            partitions: 1,
            disk_faults: 2,
            crashes: 1,
            ecall_aborts: 1,
            max_delay: Duration::from_millis(50),
            max_partition: Duration::from_millis(40),
        }
    }
}

/// A complete, time-ordered fault schedule.
#[derive(Clone, Debug, Default)]
pub struct FaultPlan {
    /// Faults ordered by arming instant.
    pub faults: Vec<ScheduledFault>,
}

impl FaultPlan {
    /// Generates a schedule from `seed` within the `spec` envelope.
    ///
    /// Equal `(seed, spec)` pairs yield identical plans.
    #[must_use]
    pub fn generate(seed: u64, spec: &FaultSpec) -> Self {
        assert!(
            !spec.machines.is_empty(),
            "fault spec needs at least one machine"
        );
        let mut rng = SplitMix64::new(seed);
        let horizon_ns = spec.horizon.as_nanos().min(u128::from(u64::MAX)) as u64;
        let at = |rng: &mut SplitMix64| {
            SimTime(spec.start.0.saturating_add(rng.below(horizon_ns.max(1))))
        };
        let pick = |rng: &mut SplitMix64, machines: &[MachineId]| {
            machines[rng.below(machines.len() as u64) as usize]
        };

        let mut faults = Vec::new();
        for _ in 0..spec.net_faults {
            let kind = match rng.below(3) {
                0 => FaultKind::NetDrop,
                1 => FaultKind::NetCorrupt,
                _ => FaultKind::NetDelay {
                    by: Duration::from_nanos(rng.range(1, spec.max_delay.as_nanos().max(2) as u64)),
                },
            };
            faults.push(ScheduledFault {
                at: at(&mut rng),
                kind,
            });
        }
        for _ in 0..spec.partitions {
            let a = pick(&mut rng, &spec.machines);
            // Partitions need two distinct endpoints; with one machine
            // available the partition severs nothing, which is fine.
            let b = pick(&mut rng, &spec.machines);
            faults.push(ScheduledFault {
                at: at(&mut rng),
                kind: FaultKind::Partition {
                    a,
                    b,
                    hold: Duration::from_nanos(
                        rng.range(1, spec.max_partition.as_nanos().max(2) as u64),
                    ),
                },
            });
        }
        for _ in 0..spec.disk_faults {
            let machine = pick(&mut rng, &spec.machines);
            let kind = if rng.chance(50) {
                FaultKind::DiskFail { machine }
            } else {
                FaultKind::DiskTorn { machine }
            };
            faults.push(ScheduledFault {
                at: at(&mut rng),
                kind,
            });
        }
        for _ in 0..spec.crashes {
            faults.push(ScheduledFault {
                at: at(&mut rng),
                kind: FaultKind::CrashMe {
                    machine: pick(&mut rng, &spec.machines),
                },
            });
        }
        for _ in 0..spec.ecall_aborts {
            faults.push(ScheduledFault {
                at: at(&mut rng),
                kind: FaultKind::EcallAbort {
                    machine: pick(&mut rng, &spec.machines),
                },
            });
        }
        faults.sort_by_key(|f| f.at);
        FaultPlan { faults }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn spec() -> FaultSpec {
        FaultSpec::mixed(SimTime(1_000), vec![MachineId(1), MachineId(2)])
    }

    #[test]
    fn generation_is_deterministic() {
        let a = FaultPlan::generate(99, &spec());
        let b = FaultPlan::generate(99, &spec());
        assert_eq!(a.faults, b.faults);
        assert!(!a.faults.is_empty());
    }

    #[test]
    fn seeds_change_the_plan() {
        let a = FaultPlan::generate(1, &spec());
        let b = FaultPlan::generate(2, &spec());
        assert_ne!(a.faults, b.faults);
    }

    #[test]
    fn plan_respects_window_and_ordering() {
        let s = spec();
        let plan = FaultPlan::generate(7, &s);
        let end = s.start.after(s.horizon);
        for pair in plan.faults.windows(2) {
            assert!(pair[0].at <= pair[1].at);
        }
        for f in &plan.faults {
            assert!(f.at >= s.start && f.at <= end);
        }
        let count = s.net_faults + s.partitions + s.disk_faults + s.crashes + s.ecall_aborts;
        assert_eq!(plan.faults.len(), count as usize);
    }
}
