//! Stable, sorted JSON reports for chaos soak runs.
//!
//! The CI job diffs `CHAOS.json` between runs of the same seed set, so
//! the exporter must be byte-stable: keys in fixed order, seeds sorted,
//! fault records sorted by firing instant then label. All JSON is
//! hand-rolled — every emitted string is a static label, so no escaping
//! is needed.

use crate::engine::FaultRecord;

/// Outcome and fault history of one seeded soak run.
#[derive(Clone, Debug)]
pub struct SeedReport {
    /// The seed that generated the fault plan.
    pub seed: u64,
    /// Number of concurrent migration streams in the run.
    pub streams: u32,
    /// Streams that released exactly once with bit-identical state.
    pub released: u32,
    /// Streams that aborted with the source still authoritative.
    pub aborted: u32,
    /// Total supervisor recovery attempts across the run.
    pub retries: u32,
    /// Every fault that fired, in firing order.
    pub faults: Vec<FaultRecord>,
}

impl SeedReport {
    fn write_json(&self, out: &mut String) {
        let mut faults = self.faults.clone();
        faults.sort_by_key(|f| (f.at, f.kind.name()));
        out.push_str(&format!(
            "{{\"seed\":{},\"streams\":{},\"released\":{},\"aborted\":{},\"retries\":{},\"faults\":[",
            self.seed, self.streams, self.released, self.aborted, self.retries
        ));
        for (i, fault) in faults.iter().enumerate() {
            if i > 0 {
                out.push(',');
            }
            out.push_str(&format!(
                "{{\"at_ns\":{},\"kind\":\"{}\"}}",
                fault.at.0,
                fault.kind.name()
            ));
        }
        out.push_str("]}");
    }
}

/// A full soak report: one [`SeedReport`] per seed.
#[derive(Clone, Debug, Default)]
pub struct ChaosReport {
    /// Per-seed results (sorted on export).
    pub seeds: Vec<SeedReport>,
}

impl ChaosReport {
    /// Serializes to stable JSON: seeds sorted ascending, fixed key
    /// order, fault records sorted by instant then label. Equal runs
    /// yield byte-identical output.
    #[must_use]
    pub fn to_json(&self) -> String {
        let mut seeds = self.seeds.clone();
        seeds.sort_by_key(|s| s.seed);
        let total_faults: usize = seeds.iter().map(|s| s.faults.len()).sum();
        let released: u32 = seeds.iter().map(|s| s.released).sum();
        let aborted: u32 = seeds.iter().map(|s| s.aborted).sum();
        let mut out = String::new();
        out.push_str(&format!(
            "{{\"schema\":\"chaos-v1\",\"seeds\":{},\"released\":{},\"aborted\":{},\"faults\":{},\"runs\":[",
            seeds.len(),
            released,
            aborted,
            total_faults
        ));
        for (i, seed) in seeds.iter().enumerate() {
            if i > 0 {
                out.push(',');
            }
            seed.write_json(&mut out);
        }
        out.push_str("]}\n");
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::plan::FaultKind;
    use cloud_sim::clock::SimTime;

    fn report() -> ChaosReport {
        ChaosReport {
            seeds: vec![
                SeedReport {
                    seed: 2,
                    streams: 1,
                    released: 1,
                    aborted: 0,
                    retries: 3,
                    faults: vec![
                        FaultRecord {
                            at: SimTime(20),
                            kind: FaultKind::NetCorrupt,
                        },
                        FaultRecord {
                            at: SimTime(10),
                            kind: FaultKind::NetDrop,
                        },
                    ],
                },
                SeedReport {
                    seed: 1,
                    streams: 2,
                    released: 1,
                    aborted: 1,
                    retries: 0,
                    faults: Vec::new(),
                },
            ],
        }
    }

    #[test]
    fn export_is_sorted_and_stable() {
        let a = report().to_json();
        let mut shuffled = report();
        shuffled.seeds.reverse();
        shuffled.seeds[1].faults.reverse();
        assert_eq!(a, shuffled.to_json());
        // Seeds ascending, faults by instant.
        let one = a.find("\"seed\":1").unwrap();
        let two = a.find("\"seed\":2").unwrap();
        assert!(one < two);
        let drop_at = a.find("net-drop").unwrap();
        let corrupt_at = a.find("net-corrupt").unwrap();
        assert!(drop_at < corrupt_at);
    }

    #[test]
    fn export_carries_totals() {
        let json = report().to_json();
        assert!(json.starts_with(
            "{\"schema\":\"chaos-v1\",\"seeds\":2,\"released\":2,\"aborted\":1,\"faults\":2,"
        ));
        assert!(json.ends_with("]}\n"));
    }
}
