//! A tiny self-contained deterministic generator (SplitMix64) for
//! fault-schedule synthesis. Chaos runs must be bit-reproducible from
//! the seed alone, independent of the simulation's own RNG streams —
//! so the plan generator keeps its own generator rather than sharing
//! the world's.

/// SplitMix64: fast, full-period, and good enough for schedule
/// synthesis (this is not a cryptographic generator and must never be
/// used as one).
#[derive(Clone, Debug)]
pub struct SplitMix64 {
    state: u64,
}

impl SplitMix64 {
    /// Creates a generator from a seed. Equal seeds yield equal streams.
    #[must_use]
    pub fn new(seed: u64) -> Self {
        SplitMix64 { state: seed }
    }

    /// Next raw 64-bit output.
    pub fn next_u64(&mut self) -> u64 {
        self.state = self.state.wrapping_add(0x9E37_79B9_7F4A_7C15);
        let mut z = self.state;
        z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
        z ^ (z >> 31)
    }

    /// Uniform value in `0..n` (`n` must be non-zero). The modulo bias
    /// is irrelevant at schedule-synthesis fidelity.
    pub fn below(&mut self, n: u64) -> u64 {
        debug_assert!(n > 0);
        self.next_u64() % n
    }

    /// Uniform value in `lo..hi` (`lo < hi`).
    pub fn range(&mut self, lo: u64, hi: u64) -> u64 {
        lo + self.below(hi - lo)
    }

    /// Bernoulli draw with probability `percent / 100`.
    pub fn chance(&mut self, percent: u64) -> bool {
        self.below(100) < percent
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn same_seed_same_stream() {
        let mut a = SplitMix64::new(42);
        let mut b = SplitMix64::new(42);
        for _ in 0..100 {
            assert_eq!(a.next_u64(), b.next_u64());
        }
    }

    #[test]
    fn different_seeds_diverge() {
        let mut a = SplitMix64::new(1);
        let mut b = SplitMix64::new(2);
        let same = (0..64).filter(|_| a.next_u64() == b.next_u64()).count();
        assert_eq!(same, 0);
    }

    #[test]
    fn range_respects_bounds() {
        let mut rng = SplitMix64::new(7);
        for _ in 0..1000 {
            let v = rng.range(10, 20);
            assert!((10..20).contains(&v));
        }
    }
}
