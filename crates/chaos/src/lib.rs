//! Deterministic chaos for the simulated SGX datacenter.
//!
//! The migration protocol ([`mig-core`]) claims convergence under an
//! adversarial environment: frames may be dropped, corrupted, or
//! delayed; untrusted disks may fail or tear writes; Migration Enclaves
//! may crash at any instant. This crate turns those claims into a
//! repeatable test surface:
//!
//! * [`rng`] — a self-contained SplitMix64 generator so schedules are
//!   reproducible from the seed alone;
//! * [`plan`] — seeded [`FaultPlan`]s: time-ordered fault schedules on
//!   virtual time, bounded by a [`FaultSpec`] envelope;
//! * [`engine`] — the [`ChaosEngine`], which executes a plan through the
//!   simulator's existing seams (network taps, disk write-fault hooks,
//!   a polled host-fault queue) and logs every fault that fires;
//! * [`report`] — byte-stable sorted JSON ([`ChaosReport`]) so CI can
//!   diff soak results across runs.
//!
//! The crate deliberately knows nothing about the migration protocol:
//! it depends only on the simulation substrate, and the supervisor in
//! `mig-core` consumes its host-fault queue through a plain callback.
//!
//! [`mig-core`]: ../mig_core/index.html

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod engine;
pub mod plan;
pub mod report;
pub mod rng;

pub use engine::{ChaosEngine, FaultRecord, HostFault};
pub use plan::{FaultKind, FaultPlan, FaultSpec, ScheduledFault};
pub use report::{ChaosReport, SeedReport};
