//! Executes a [`FaultPlan`] against the simulation's existing seams.
//!
//! The engine never reaches into protocol internals. It acts only
//! through public fault surfaces:
//!
//! * a [`NetworkTap`] for frame drop / corruption / delay / partitions;
//! * an [`UntrustedDisk`](cloud_sim::disk::UntrustedDisk) fault hook for
//!   failed and torn writes;
//! * a host-fault queue ([`ChaosEngine::take_due_host_faults`]) the
//!   supervisor polls to crash MEs and abort ECALLs.
//!
//! Every fault that actually fires is appended to a log
//! ([`ChaosEngine::fired`]) so reports can account for the full injected
//! history.

use std::collections::HashMap;
use std::sync::Arc;

use cloud_sim::clock::{SimClock, SimTime};
use cloud_sim::disk::WriteFault;
use cloud_sim::network::{NetworkTap, TapAction};
use parking_lot::Mutex;
use sgx_sim::machine::MachineId;

use crate::plan::{FaultKind, FaultPlan, ScheduledFault};

/// A fault the engine cannot apply itself: the embedding harness must
/// drive the corresponding recovery machinery (ME restart, ECALL-abort
/// scheduling) because only it holds the world.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum HostFault {
    /// Destroy and restart the Migration Enclave on this machine.
    CrashMe(MachineId),
    /// Schedule the next ECALL on this machine to abort.
    EcallAbort(MachineId),
}

/// A fault that actually fired, stamped with its firing instant.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct FaultRecord {
    /// Virtual instant at which the fault took effect.
    pub at: SimTime,
    /// What was injected.
    pub kind: FaultKind,
}

struct PartitionWindow {
    from: SimTime,
    until: SimTime,
    a: MachineId,
    b: MachineId,
    logged: bool,
}

struct Inner {
    /// One-shot network faults, time-ordered; each consumes one frame.
    net: Vec<ScheduledFault>,
    partitions: Vec<PartitionWindow>,
    disk: HashMap<MachineId, Vec<ScheduledFault>>,
    host: Vec<ScheduledFault>,
    fired: Vec<FaultRecord>,
}

/// Shared executor for one [`FaultPlan`].
///
/// Cloneable; all clones (and all taps/hooks handed out) share the same
/// pending-fault state and fired log.
#[derive(Clone)]
pub struct ChaosEngine {
    inner: Arc<Mutex<Inner>>,
}

impl ChaosEngine {
    /// Arms `plan` for execution.
    #[must_use]
    pub fn new(plan: FaultPlan) -> Self {
        let mut inner = Inner {
            net: Vec::new(),
            partitions: Vec::new(),
            disk: HashMap::new(),
            host: Vec::new(),
            fired: Vec::new(),
        };
        for fault in plan.faults {
            match fault.kind {
                FaultKind::NetDrop | FaultKind::NetCorrupt | FaultKind::NetDelay { .. } => {
                    inner.net.push(fault);
                }
                FaultKind::Partition { a, b, hold } => inner.partitions.push(PartitionWindow {
                    from: fault.at,
                    until: fault.at.after(hold),
                    a,
                    b,
                    logged: false,
                }),
                FaultKind::DiskFail { machine } | FaultKind::DiskTorn { machine } => {
                    inner.disk.entry(machine).or_default().push(fault);
                }
                FaultKind::CrashMe { .. } | FaultKind::EcallAbort { .. } => {
                    inner.host.push(fault);
                }
            }
        }
        ChaosEngine {
            inner: Arc::new(Mutex::new(inner)),
        }
    }

    /// A tap for [`Network::add_tap`](cloud_sim::network::Network::add_tap)
    /// that applies this engine's network faults to frames addressed to
    /// `service` (other traffic passes untouched).
    #[must_use]
    pub fn network_tap(&self, service: &str) -> Box<dyn NetworkTap> {
        let inner = Arc::clone(&self.inner);
        let service = service.to_string();
        Box::new(move |envelope: &cloud_sim::network::Envelope| {
            if envelope.to.service != service {
                return TapAction::Deliver;
            }
            let mut inner = inner.lock();
            let now = envelope.deliver_at;
            // Partitions first: a severed link drops everything between
            // its endpoints for the whole window.
            for window in &mut inner.partitions {
                let pair = (envelope.from.machine, envelope.to.machine);
                let severed = pair == (window.a, window.b) || pair == (window.b, window.a);
                if severed && now >= window.from && now <= window.until {
                    if !window.logged {
                        window.logged = true;
                        let record = FaultRecord {
                            at: now,
                            kind: FaultKind::Partition {
                                a: window.a,
                                b: window.b,
                                hold: window.until.since(window.from),
                            },
                        };
                        inner.fired.push(record);
                    }
                    return TapAction::Drop;
                }
            }
            // Then one-shot frame faults, earliest due first.
            let due = inner
                .net
                .iter()
                .position(|f| f.at <= now)
                .map(|idx| inner.net.remove(idx));
            let Some(fault) = due else {
                return TapAction::Deliver;
            };
            inner.fired.push(FaultRecord {
                at: now,
                kind: fault.kind,
            });
            match fault.kind {
                FaultKind::NetDrop => TapAction::Drop,
                FaultKind::NetCorrupt => {
                    let mut payload = envelope.payload.clone();
                    if payload.is_empty() {
                        return TapAction::Drop;
                    }
                    let idx = payload.len() / 2;
                    payload[idx] ^= 0x20;
                    TapAction::Replace(payload)
                }
                FaultKind::NetDelay { by } => TapAction::Delay(by),
                _ => unreachable!("only network faults are queued on net"),
            }
        })
    }

    /// A write-fault hook for `disk.set_fault_hook(...)` on `machine`'s
    /// untrusted disk: each due disk fault makes exactly one write fail
    /// or tear.
    pub fn disk_hook(
        &self,
        machine: MachineId,
        clock: SimClock,
    ) -> impl FnMut(&str, &[u8]) -> WriteFault + Send + 'static {
        let inner = Arc::clone(&self.inner);
        move |_key: &str, value: &[u8]| {
            let mut inner = inner.lock();
            let now = clock.now();
            let due = inner.disk.get_mut(&machine).and_then(|queue| {
                queue
                    .iter()
                    .position(|f| f.at <= now)
                    .map(|idx| queue.remove(idx))
            });
            let Some(fault) = due else {
                return WriteFault::None;
            };
            inner.fired.push(FaultRecord {
                at: now,
                kind: fault.kind,
            });
            match fault.kind {
                FaultKind::DiskFail { .. } => WriteFault::Fail,
                FaultKind::DiskTorn { .. } => WriteFault::Torn {
                    keep: value.len() / 2,
                },
                _ => unreachable!("only disk faults are queued per machine"),
            }
        }
    }

    /// Pops every machine-level fault due at or before `now`, recording
    /// each. The caller applies them (restart the ME, schedule an ECALL
    /// abort) through its own recovery paths.
    pub fn take_due_host_faults(&self, now: SimTime) -> Vec<HostFault> {
        let mut inner = self.inner.lock();
        let mut due = Vec::new();
        let mut remaining = Vec::new();
        for fault in std::mem::take(&mut inner.host) {
            if fault.at <= now {
                inner.fired.push(FaultRecord {
                    at: now,
                    kind: fault.kind,
                });
                due.push(match fault.kind {
                    FaultKind::CrashMe { machine } => HostFault::CrashMe(machine),
                    FaultKind::EcallAbort { machine } => HostFault::EcallAbort(machine),
                    _ => unreachable!("only host faults are queued on host"),
                });
            } else {
                remaining.push(fault);
            }
        }
        inner.host = remaining;
        due
    }

    /// Discards every fault that has not fired yet (network one-shots,
    /// partition windows, disk and host faults). Taps and hooks already
    /// handed out turn inert. Used by soak harnesses to end the fault
    /// window before verifying post-abort recoverability.
    pub fn disarm(&self) {
        let mut inner = self.inner.lock();
        inner.net.clear();
        inner.partitions.clear();
        inner.disk.clear();
        inner.host.clear();
    }

    /// Every fault that has actually fired so far, in firing order.
    #[must_use]
    pub fn fired(&self) -> Vec<FaultRecord> {
        self.inner.lock().fired.clone()
    }

    /// Count of armed faults that have not fired yet (partitions count
    /// until their window has been logged or never matched).
    #[must_use]
    pub fn pending(&self) -> usize {
        let inner = self.inner.lock();
        inner.net.len()
            + inner.disk.values().map(Vec::len).sum::<usize>()
            + inner.host.len()
            + inner.partitions.iter().filter(|w| !w.logged).count()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use cloud_sim::network::{Endpoint, Envelope};
    use std::time::Duration;

    fn frame(from: u64, to: u64, at: u64, payload: Vec<u8>) -> Envelope {
        Envelope {
            from: Endpoint {
                machine: MachineId(from),
                service: "me".into(),
            },
            to: Endpoint {
                machine: MachineId(to),
                service: "me".into(),
            },
            payload,
            deliver_at: SimTime(at),
            seq: 0,
        }
    }

    fn engine(faults: Vec<ScheduledFault>) -> ChaosEngine {
        ChaosEngine::new(FaultPlan { faults })
    }

    #[test]
    fn tap_ignores_other_services_and_early_frames() {
        let engine = engine(vec![ScheduledFault {
            at: SimTime(100),
            kind: FaultKind::NetDrop,
        }]);
        let mut tap = engine.network_tap("me");
        let mut other = frame(1, 2, 200, vec![1]);
        other.to.service = "app".into();
        assert!(matches!(tap.intercept(&other), TapAction::Deliver));
        let early = frame(1, 2, 50, vec![1]);
        assert!(matches!(tap.intercept(&early), TapAction::Deliver));
        assert_eq!(engine.pending(), 1);
    }

    #[test]
    fn one_shot_faults_fire_once_in_order() {
        let engine = engine(vec![
            ScheduledFault {
                at: SimTime(10),
                kind: FaultKind::NetDrop,
            },
            ScheduledFault {
                at: SimTime(20),
                kind: FaultKind::NetCorrupt,
            },
        ]);
        let mut tap = engine.network_tap("me");
        assert!(matches!(
            tap.intercept(&frame(1, 2, 30, vec![0; 8])),
            TapAction::Drop
        ));
        match tap.intercept(&frame(1, 2, 31, vec![0; 8])) {
            TapAction::Replace(bytes) => {
                assert_eq!(bytes.len(), 8);
                assert_ne!(bytes, vec![0; 8]);
            }
            other => panic!("expected corruption, got {other:?}"),
        }
        assert!(matches!(
            tap.intercept(&frame(1, 2, 32, vec![0; 8])),
            TapAction::Deliver
        ));
        assert_eq!(engine.fired().len(), 2);
    }

    #[test]
    fn delay_faults_reschedule() {
        let engine = engine(vec![ScheduledFault {
            at: SimTime(10),
            kind: FaultKind::NetDelay {
                by: Duration::from_millis(5),
            },
        }]);
        let mut tap = engine.network_tap("me");
        assert!(matches!(
            tap.intercept(&frame(1, 2, 20, vec![1])),
            TapAction::Delay(by) if by == Duration::from_millis(5)
        ));
    }

    #[test]
    fn partitions_drop_both_directions_within_window() {
        let engine = engine(vec![ScheduledFault {
            at: SimTime(100),
            kind: FaultKind::Partition {
                a: MachineId(1),
                b: MachineId(2),
                hold: Duration::from_nanos(50),
            },
        }]);
        let mut tap = engine.network_tap("me");
        assert!(matches!(
            tap.intercept(&frame(1, 2, 120, vec![1])),
            TapAction::Drop
        ));
        assert!(matches!(
            tap.intercept(&frame(2, 1, 140, vec![1])),
            TapAction::Drop
        ));
        // Outside the window and between other machines: untouched.
        assert!(matches!(
            tap.intercept(&frame(1, 2, 151, vec![1])),
            TapAction::Deliver
        ));
        assert!(matches!(
            tap.intercept(&frame(1, 3, 120, vec![1])),
            TapAction::Deliver
        ));
        // The partition is logged once, not per dropped frame.
        assert_eq!(engine.fired().len(), 1);
    }

    #[test]
    fn disk_hook_pops_due_faults_per_machine() {
        let engine = engine(vec![
            ScheduledFault {
                at: SimTime(10),
                kind: FaultKind::DiskFail {
                    machine: MachineId(1),
                },
            },
            ScheduledFault {
                at: SimTime(10),
                kind: FaultKind::DiskTorn {
                    machine: MachineId(2),
                },
            },
        ]);
        let clock = SimClock::new();
        let mut hook1 = engine.disk_hook(MachineId(1), clock.clone());
        let mut hook2 = engine.disk_hook(MachineId(2), clock.clone());
        // Not due yet.
        assert!(matches!(hook1("k", &[0; 4]), WriteFault::None));
        clock.advance(Duration::from_nanos(10));
        assert!(matches!(hook1("k", &[0; 4]), WriteFault::Fail));
        assert!(matches!(hook1("k", &[0; 4]), WriteFault::None));
        assert!(matches!(hook2("k", &[0; 4]), WriteFault::Torn { keep: 2 }));
        assert_eq!(engine.fired().len(), 2);
    }

    #[test]
    fn host_faults_pop_when_due() {
        let engine = engine(vec![
            ScheduledFault {
                at: SimTime(10),
                kind: FaultKind::CrashMe {
                    machine: MachineId(1),
                },
            },
            ScheduledFault {
                at: SimTime(99),
                kind: FaultKind::EcallAbort {
                    machine: MachineId(2),
                },
            },
        ]);
        assert!(engine.take_due_host_faults(SimTime(5)).is_empty());
        assert_eq!(
            engine.take_due_host_faults(SimTime(50)),
            vec![HostFault::CrashMe(MachineId(1))]
        );
        assert_eq!(
            engine.take_due_host_faults(SimTime(100)),
            vec![HostFault::EcallAbort(MachineId(2))]
        );
        assert_eq!(engine.pending(), 0);
    }
}
