//! Deterministic migration telemetry: typed per-migration events, a
//! metrics registry, and stable exporters.
//!
//! Everything here is driven by the simulation's virtual clock
//! (`cloud_sim::clock::SimTime` nanoseconds) — never wall-clock — so a
//! seeded run produces byte-identical output. The crate is
//! zero-dependency (like `mig-stats` and `mig-lint`) and holds no
//! policy: instrumentation sites in `mig-core`/`sgx-sim` decide *what*
//! to record, this crate decides *how* it is bounded, aggregated, and
//! rendered.
//!
//! # Model
//!
//! A migration is identified by a [`TraceId`] — an 8-byte hash of the
//! secret `TransferNonce`, computed *inside* the enclave so the nonce
//! itself never reaches the untrusted host or any exported artifact.
//! Each migration's lifecycle is covered by [`Phase`] spans
//! (negotiate → announce → stream → stage → release) plus exceptional
//! [`Edge`] events (retry, quarantine, delta-fallback). Events land in
//! a byte-budgeted ring-buffer [`Recorder`]; scalar series land in a
//! [`MetricsRegistry`] (counters, gauges, fixed-bucket histograms);
//! ECALL/OCALL transition tallies from `sgx-sim` are merged in as
//! [`Transitions`]. A [`Telemetry`] snapshot aggregates all of it and
//! exports a stable sorted JSON document (`TRACE.json`) and a
//! human-readable per-trace timeline.

use std::collections::{BTreeMap, VecDeque};
use std::fmt::Write as _;

/// Per-migration identifier: a hash of the secret transfer nonce,
/// derived inside the enclave. Safe to export.
pub type TraceId = [u8; 8];

/// Accounting size of one recorded event (encoded upper bound: 8-byte
/// timestamp + 8-byte trace id + tag + span payload, rounded up). The
/// ring buffer's byte budget is `EVENT_BYTES * capacity`.
pub const EVENT_BYTES: usize = 32;

/// Migration lifecycle phases, in order.
#[derive(Clone, Copy, Debug, PartialEq, Eq, PartialOrd, Ord)]
pub enum Phase {
    /// Attested-channel establishment between two MEs (channel-scoped:
    /// recorded under a label-derived pseudo trace id, since the
    /// channel is negotiated before any migration nonce exists).
    Negotiate,
    /// Stream announced (ChunkStart/DeltaStart seen) up to the first
    /// payload chunk.
    Announce,
    /// Payload chunks in flight (first chunk to last chunk).
    Stream,
    /// Staging of verified bytes. Under speculative restore this
    /// overlaps [`Phase::Stream`] and the span collapses to zero width.
    Stage,
    /// Final verification and release of the migrated state (the
    /// completing TRANSFER ecall's virtual-time cost).
    Release,
}

impl Phase {
    /// All phases in lifecycle order.
    pub const ALL: [Phase; 5] = [
        Phase::Negotiate,
        Phase::Announce,
        Phase::Stream,
        Phase::Stage,
        Phase::Release,
    ];

    /// Stable lowercase name used in exports.
    #[must_use]
    pub fn name(self) -> &'static str {
        match self {
            Phase::Negotiate => "negotiate",
            Phase::Announce => "announce",
            Phase::Stream => "stream",
            Phase::Stage => "stage",
            Phase::Release => "release",
        }
    }
}

/// Exceptional lifecycle edges.
#[derive(Clone, Copy, Debug, PartialEq, Eq, PartialOrd, Ord)]
pub enum Edge {
    /// Host-driven RETRY: the channel was reset and every in-flight
    /// migration to the peer re-dispatched.
    Retry,
    /// Destination quarantined an inbound stream (chain verification
    /// failure).
    Quarantine,
    /// Delta stream fell back to a full stream (DeltaNack / missing
    /// base).
    DeltaFallback,
    /// An injected fault hit the channel (chaos testing: network drop /
    /// corruption / delay / partition, disk failure, crash, ECALL
    /// abort).
    Fault,
    /// The supervisor backed off before a recovery attempt (bounded
    /// exponential backoff on virtual time).
    Backoff,
    /// The supervisor aborted the migration with the source still
    /// authoritative (retry budget or deadline exhausted).
    Abort,
}

impl Edge {
    /// Stable lowercase name used in exports.
    #[must_use]
    pub fn name(self) -> &'static str {
        match self {
            Edge::Retry => "retry",
            Edge::Quarantine => "quarantine",
            Edge::DeltaFallback => "delta-fallback",
            Edge::Fault => "fault",
            Edge::Backoff => "backoff",
            Edge::Abort => "abort",
        }
    }
}

/// What happened at an event.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum EventKind {
    /// A completed phase span; `end_ns >=` the event's `at_ns`.
    Span {
        /// Which lifecycle phase the span covers.
        phase: Phase,
        /// Span end, virtual nanoseconds.
        end_ns: u64,
    },
    /// A point-in-time exceptional edge.
    Edge(Edge),
}

/// One telemetry event, timestamped in virtual nanoseconds.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct Event {
    /// Event (or span start) time, virtual nanoseconds.
    pub at_ns: u64,
    /// The migration (or channel pseudo-trace) this event belongs to.
    pub trace: TraceId,
    /// Span or edge payload.
    pub kind: EventKind,
}

/// Byte-budgeted ring buffer of [`Event`]s. When full, the oldest
/// event is evicted and counted in [`Recorder::dropped`].
#[derive(Debug)]
pub struct Recorder {
    events: VecDeque<Event>,
    capacity: usize,
    dropped: u64,
}

/// Default recorder budget: 64 KiB (2048 events).
pub const DEFAULT_RECORDER_BUDGET: usize = 64 * 1024;

impl Default for Recorder {
    fn default() -> Self {
        Recorder::with_budget(DEFAULT_RECORDER_BUDGET)
    }
}

impl Recorder {
    /// A recorder bounded to roughly `budget_bytes` of encoded events
    /// (at least one event).
    #[must_use]
    pub fn with_budget(budget_bytes: usize) -> Self {
        Recorder {
            events: VecDeque::new(),
            capacity: (budget_bytes / EVENT_BYTES).max(1),
            dropped: 0,
        }
    }

    /// Appends an event, evicting the oldest if the budget is reached.
    pub fn record_event(&mut self, event: Event) {
        if self.events.len() == self.capacity {
            self.events.pop_front();
            self.dropped += 1;
        }
        self.events.push_back(event);
    }

    /// Current accounted size in bytes (always within the budget).
    #[must_use]
    pub fn bytes(&self) -> usize {
        self.events.len() * EVENT_BYTES
    }

    /// The configured budget in bytes.
    #[must_use]
    pub fn budget_bytes(&self) -> usize {
        self.capacity * EVENT_BYTES
    }

    /// Number of events evicted to stay within the budget.
    #[must_use]
    pub fn dropped(&self) -> u64 {
        self.dropped
    }

    /// Events in record order (oldest first).
    pub fn events(&self) -> impl Iterator<Item = &Event> {
        self.events.iter()
    }
}

/// Fixed-bucket histogram: `counts[i]` holds observations
/// `<= bounds[i]`, the final slot holds overflows.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct Histogram {
    /// Inclusive upper bounds, ascending.
    pub bounds: Vec<u64>,
    /// `bounds.len() + 1` bucket counts (last = overflow).
    pub counts: Vec<u64>,
    /// Sum of all observed values.
    pub sum: u64,
    /// Number of observations.
    pub n: u64,
}

impl Histogram {
    /// An empty histogram over `bounds`.
    #[must_use]
    pub fn new(bounds: &[u64]) -> Self {
        Histogram {
            bounds: bounds.to_vec(),
            counts: vec![0; bounds.len() + 1],
            sum: 0,
            n: 0,
        }
    }

    /// Records one observation.
    pub fn observe(&mut self, value: u64) {
        let idx = self
            .bounds
            .iter()
            .position(|&b| value <= b)
            .unwrap_or(self.bounds.len());
        self.counts[idx] += 1;
        self.sum = self.sum.saturating_add(value);
        self.n += 1;
    }

    /// Mean observation, or 0 with no data.
    #[must_use]
    pub fn mean(&self) -> f64 {
        if self.n == 0 {
            0.0
        } else {
            self.sum as f64 / self.n as f64
        }
    }

    /// Adds `other` into `self`. Bucket counts fold element-wise when
    /// the bounds match; on a bounds mismatch all of `other`'s
    /// observations land in `self`'s overflow bucket instead, so fleet
    /// merges never silently lose counts. Returns whether the bounds
    /// matched.
    pub fn merge(&mut self, other: &Histogram) -> bool {
        let matched = self.bounds == other.bounds;
        if matched {
            for (c, o) in self.counts.iter_mut().zip(&other.counts) {
                *c += o;
            }
        } else if let Some(overflow) = self.counts.last_mut() {
            let total = other.counts.iter().fold(0u64, |a, &c| a.saturating_add(c));
            *overflow = overflow.saturating_add(total);
        }
        self.sum = self.sum.saturating_add(other.sum);
        self.n += other.n;
        matched
    }
}

/// Nanosecond bucket bounds for latency-shaped histograms
/// (10 µs … 100 s, decades with a 1-2-5 ladder).
pub const LATENCY_BOUNDS_NS: &[u64] = &[
    10_000,
    20_000,
    50_000,
    100_000,
    200_000,
    500_000,
    1_000_000,
    2_000_000,
    5_000_000,
    10_000_000,
    20_000_000,
    50_000_000,
    100_000_000,
    200_000_000,
    500_000_000,
    1_000_000_000,
    2_000_000_000,
    5_000_000_000,
    10_000_000_000,
    100_000_000_000,
];

/// Counters, gauges, and fixed-bucket histograms, keyed by stable
/// label strings. All maps are ordered so iteration (and therefore
/// every export) is deterministic.
///
/// Secret-hygiene contract (enforced by the `secret-hygiene` mig-lint
/// rule): arguments to [`MetricsRegistry::bump_counter`],
/// [`MetricsRegistry::set_gauge`], [`MetricsRegistry::observe_ns`] and
/// [`Recorder::record_event`] must never carry key material, sealed
/// payload bytes, or the raw transfer nonce — identify migrations by
/// [`TraceId`] only.
#[derive(Clone, Debug, Default)]
pub struct MetricsRegistry {
    counters: BTreeMap<String, u64>,
    gauges: BTreeMap<String, i64>,
    histograms: BTreeMap<String, Histogram>,
}

impl MetricsRegistry {
    /// Adds `by` to the named counter.
    pub fn bump_counter(&mut self, name: &str, by: u64) {
        *self.counters.entry(name.to_string()).or_insert(0) += by;
    }

    /// Sets the named gauge to `value` (last write wins).
    pub fn set_gauge(&mut self, name: &str, value: i64) {
        self.gauges.insert(name.to_string(), value);
    }

    /// Records `value_ns` into the named histogram, creating it over
    /// `bounds` on first use.
    pub fn observe_ns(&mut self, name: &str, bounds: &[u64], value_ns: u64) {
        self.histograms
            .entry(name.to_string())
            .or_insert_with(|| Histogram::new(bounds))
            .observe(value_ns);
    }

    /// Current counter value (0 when never bumped).
    #[must_use]
    pub fn counter(&self, name: &str) -> u64 {
        self.counters.get(name).copied().unwrap_or(0)
    }

    /// Current gauge value, if set.
    #[must_use]
    pub fn gauge(&self, name: &str) -> Option<i64> {
        self.gauges.get(name).copied()
    }

    /// The named histogram, if any observation landed.
    #[must_use]
    pub fn histogram(&self, name: &str) -> Option<&Histogram> {
        self.histograms.get(name)
    }
}

/// ECALL/OCALL transition counts.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct TransitionCount {
    /// Enclave entries.
    pub ecalls: u64,
    /// Enclave exits for platform services (OCALL-equivalents).
    pub ocalls: u64,
}

impl TransitionCount {
    /// Adds `other` into `self`.
    pub fn add(&mut self, other: TransitionCount) {
        self.ecalls += other.ecalls;
        self.ocalls += other.ocalls;
    }
}

/// Transition tallies: machine totals plus per-migration attribution.
#[derive(Clone, Debug, Default, PartialEq, Eq)]
pub struct Transitions {
    /// All transitions on the contributing machines.
    pub total: TransitionCount,
    /// Transitions attributed to a migration trace.
    pub by_trace: BTreeMap<TraceId, TransitionCount>,
}

impl Transitions {
    /// Adds `other` into `self`.
    pub fn merge(&mut self, other: &Transitions) {
        self.total.add(other.total);
        for (trace, count) in &other.by_trace {
            self.by_trace.entry(*trace).or_default().add(*count);
        }
    }
}

/// A complete telemetry snapshot: events, metrics, and transition
/// tallies, ready to merge across machines and export.
#[derive(Debug, Default)]
pub struct Telemetry {
    /// Events, stably sorted by timestamp.
    pub events: Vec<Event>,
    /// Events evicted from ring buffers before this snapshot.
    pub dropped_events: u64,
    /// Counter values by label.
    pub counters: BTreeMap<String, u64>,
    /// Gauge values by label.
    pub gauges: BTreeMap<String, i64>,
    /// Histograms by label.
    pub histograms: BTreeMap<String, Histogram>,
    /// ECALL/OCALL tallies.
    pub transitions: Transitions,
}

impl Telemetry {
    /// Builds a snapshot from one machine's recorder and registry.
    #[must_use]
    pub fn from_parts(recorder: &Recorder, registry: &MetricsRegistry) -> Self {
        let mut t = Telemetry {
            events: recorder.events().copied().collect(),
            dropped_events: recorder.dropped(),
            counters: registry.counters.clone(),
            gauges: registry.gauges.clone(),
            histograms: registry.histograms.clone(),
            transitions: Transitions::default(),
        };
        t.events.sort_by_key(|e| e.at_ns);
        t
    }

    /// Folds `other` into `self`: events interleave by timestamp
    /// (stable — caller order breaks ties), counters and transitions
    /// add, gauges insert (labels are expected to be machine-scoped),
    /// histograms merge bucket-wise.
    pub fn merge(&mut self, other: &Telemetry) {
        self.events.extend_from_slice(&other.events);
        self.events.sort_by_key(|e| e.at_ns);
        self.dropped_events += other.dropped_events;
        for (k, v) in &other.counters {
            *self.counters.entry(k.clone()).or_insert(0) += v;
        }
        for (k, v) in &other.gauges {
            self.gauges.insert(k.clone(), *v);
        }
        let mut bounds_mismatches = 0u64;
        for (k, h) in &other.histograms {
            match self.histograms.get_mut(k) {
                Some(mine) => {
                    if !mine.merge(h) {
                        bounds_mismatches += 1;
                    }
                }
                None => {
                    self.histograms.insert(k.clone(), h.clone());
                }
            }
        }
        if bounds_mismatches > 0 {
            *self
                .counters
                .entry("trace.merge_bounds_mismatch".to_string())
                .or_insert(0) += bounds_mismatches;
        }
        self.transitions.merge(&other.transitions);
    }

    /// Completed spans for `trace`, in lifecycle-phase order.
    #[must_use]
    pub fn spans_for(&self, trace: TraceId) -> Vec<(Phase, u64, u64)> {
        let mut spans: Vec<(Phase, u64, u64)> = self
            .events
            .iter()
            .filter(|e| e.trace == trace)
            .filter_map(|e| match e.kind {
                EventKind::Span { phase, end_ns } => Some((phase, e.at_ns, end_ns)),
                EventKind::Edge(_) => None,
            })
            .collect();
        spans.sort_by_key(|&(phase, at, _)| (phase, at));
        spans
    }

    /// Distinct trace ids, ordered by first event time (stable across
    /// runs), then id.
    #[must_use]
    pub fn trace_ids(&self) -> Vec<TraceId> {
        let mut first_seen: BTreeMap<TraceId, u64> = BTreeMap::new();
        for e in &self.events {
            let at = first_seen.entry(e.trace).or_insert(e.at_ns);
            *at = (*at).min(e.at_ns);
        }
        let mut ids: Vec<(u64, TraceId)> = first_seen.into_iter().map(|(t, at)| (at, t)).collect();
        ids.sort();
        ids.into_iter().map(|(_, t)| t).collect()
    }

    /// The stable `TRACE.json` document. Same seed ⇒ byte-identical
    /// output: every map is ordered, events are timestamp-sorted, and
    /// all values derive from the virtual clock.
    #[must_use]
    pub fn to_json(&self) -> String {
        let mut out = String::from("{\n  \"events\": [");
        for (i, e) in self.events.iter().enumerate() {
            if i > 0 {
                out.push(',');
            }
            match e.kind {
                EventKind::Span { phase, end_ns } => {
                    let _ = write!(
                        out,
                        "\n    {{\"at_ns\": {}, \"trace\": {}, \"kind\": \"span\", \"phase\": {}, \"end_ns\": {}}}",
                        e.at_ns,
                        json_str(&hex8(&e.trace)),
                        json_str(phase.name()),
                        end_ns
                    );
                }
                EventKind::Edge(edge) => {
                    let _ = write!(
                        out,
                        "\n    {{\"at_ns\": {}, \"trace\": {}, \"kind\": \"edge\", \"edge\": {}}}",
                        e.at_ns,
                        json_str(&hex8(&e.trace)),
                        json_str(edge.name())
                    );
                }
            }
        }
        if !self.events.is_empty() {
            out.push_str("\n  ");
        }
        let _ = write!(out, "],\n  \"dropped_events\": {},", self.dropped_events);
        out.push_str("\n  \"counters\": {");
        for (i, (k, v)) in self.counters.iter().enumerate() {
            if i > 0 {
                out.push(',');
            }
            let _ = write!(out, "\n    {}: {}", json_str(k), v);
        }
        if !self.counters.is_empty() {
            out.push_str("\n  ");
        }
        out.push_str("},\n  \"gauges\": {");
        for (i, (k, v)) in self.gauges.iter().enumerate() {
            if i > 0 {
                out.push(',');
            }
            let _ = write!(out, "\n    {}: {}", json_str(k), v);
        }
        if !self.gauges.is_empty() {
            out.push_str("\n  ");
        }
        out.push_str("},\n  \"histograms\": {");
        for (i, (k, h)) in self.histograms.iter().enumerate() {
            if i > 0 {
                out.push(',');
            }
            let _ = write!(
                out,
                "\n    {}: {{\"bounds\": {}, \"counts\": {}, \"sum\": {}, \"n\": {}}}",
                json_str(k),
                json_u64_array(&h.bounds),
                json_u64_array(&h.counts),
                h.sum,
                h.n
            );
        }
        if !self.histograms.is_empty() {
            out.push_str("\n  ");
        }
        let _ = write!(
            out,
            "}},\n  \"transitions\": {{\"ecalls\": {}, \"ocalls\": {}, \"by_trace\": {{",
            self.transitions.total.ecalls, self.transitions.total.ocalls
        );
        for (i, (trace, c)) in self.transitions.by_trace.iter().enumerate() {
            if i > 0 {
                out.push(',');
            }
            let _ = write!(
                out,
                "\n    {}: {{\"ecalls\": {}, \"ocalls\": {}}}",
                json_str(&hex8(trace)),
                c.ecalls,
                c.ocalls
            );
        }
        if !self.transitions.by_trace.is_empty() {
            out.push_str("\n  ");
        }
        out.push_str("}}\n}\n");
        out
    }

    /// Human-readable per-trace timeline (phases, durations, edges).
    #[must_use]
    pub fn render_timeline(&self) -> String {
        let mut out = String::new();
        for trace in self.trace_ids() {
            let _ = writeln!(out, "trace {}", hex8(&trace));
            let spans = self.spans_for(trace);
            for (phase, at, end) in &spans {
                let _ = writeln!(
                    out,
                    "  {:>12}  {:>12}  ..{:>12}  ({})",
                    phase.name(),
                    fmt_ms(*at),
                    fmt_ms(*end),
                    fmt_ms(end - at)
                );
            }
            for e in self.events.iter().filter(|e| e.trace == trace) {
                if let EventKind::Edge(edge) = e.kind {
                    let _ = writeln!(out, "  {:>12}  @ {}", edge.name(), fmt_ms(e.at_ns));
                }
            }
            if let (Some(first), Some(last)) = (
                spans.iter().map(|&(_, at, _)| at).min(),
                spans.iter().map(|&(_, _, end)| end).max(),
            ) {
                let _ = writeln!(out, "  total {}", fmt_ms(last - first));
            }
            if let Some(c) = self.transitions.by_trace.get(&trace) {
                let _ = writeln!(
                    out,
                    "  transitions: {} ecalls, {} ocalls",
                    c.ecalls, c.ocalls
                );
            }
        }
        let _ = writeln!(
            out,
            "{} events ({} dropped), {} traces",
            self.events.len(),
            self.dropped_events,
            self.trace_ids().len()
        );
        out
    }
}

/// Lowercase hex of a trace id.
#[must_use]
pub fn hex8(id: &TraceId) -> String {
    let mut s = String::with_capacity(16);
    for b in id {
        let _ = write!(s, "{b:02x}");
    }
    s
}

/// FNV-1a 64-bit over a label — used to derive pseudo trace ids for
/// channel-scoped spans (the label is public, e.g. `"m0->m1"`).
#[must_use]
pub fn label_id(label: &str) -> u64 {
    let mut h: u64 = 0xcbf2_9ce4_8422_2325;
    for b in label.as_bytes() {
        h ^= u64::from(*b);
        h = h.wrapping_mul(0x0000_0100_0000_01b3);
    }
    h
}

/// A channel-scoped pseudo [`TraceId`] from a public label.
#[must_use]
pub fn trace_from_label(label: &str) -> TraceId {
    label_id(label).to_be_bytes()
}

fn fmt_ms(ns: u64) -> String {
    format!("{}.{:03}ms", ns / 1_000_000, (ns % 1_000_000) / 1_000)
}

fn json_u64_array(v: &[u64]) -> String {
    let mut out = String::from("[");
    for (i, x) in v.iter().enumerate() {
        if i > 0 {
            out.push_str(", ");
        }
        let _ = write!(out, "{x}");
    }
    out.push(']');
    out
}

/// JSON string literal with the required escapes.
fn json_str(s: &str) -> String {
    let mut out = String::with_capacity(s.len() + 2);
    out.push('"');
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => {
                let _ = write!(out, "\\u{:04x}", c as u32);
            }
            c => out.push(c),
        }
    }
    out.push('"');
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    fn span(at: u64, trace: TraceId, phase: Phase, end: u64) -> Event {
        Event {
            at_ns: at,
            trace,
            kind: EventKind::Span { phase, end_ns: end },
        }
    }

    #[test]
    fn recorder_respects_byte_budget_and_counts_drops() {
        let budget = 4 * EVENT_BYTES;
        let mut r = Recorder::with_budget(budget);
        for i in 0..10 {
            r.record_event(span(i, [1; 8], Phase::Stream, i + 1));
            assert!(r.bytes() <= budget, "over budget at event {i}");
        }
        assert_eq!(r.dropped(), 6);
        assert_eq!(r.events().count(), 4);
        // Oldest evicted first: the survivors are the last four.
        assert_eq!(r.events().next().map(|e| e.at_ns), Some(6));
    }

    #[test]
    fn histogram_buckets_and_overflow() {
        let mut h = Histogram::new(&[10, 100]);
        for v in [5, 10, 11, 1000] {
            h.observe(v);
        }
        assert_eq!(h.counts, vec![2, 1, 1]);
        assert_eq!(h.n, 4);
        assert_eq!(h.sum, 1026);
    }

    #[test]
    fn registry_counters_gauges_histograms() {
        let mut m = MetricsRegistry::default();
        m.bump_counter("chunks", 3);
        m.bump_counter("chunks", 1);
        m.set_gauge("window", 8);
        m.set_gauge("window", 16);
        m.observe_ns("rtt", LATENCY_BOUNDS_NS, 15_000);
        assert_eq!(m.counter("chunks"), 4);
        assert_eq!(m.gauge("window"), Some(16));
        assert_eq!(m.histogram("rtt").map(|h| h.n), Some(1));
    }

    #[test]
    fn histogram_merge_mismatch_folds_into_overflow() {
        let mut a = Histogram::new(&[10, 100]);
        a.observe(5);
        let mut b = Histogram::new(&[7, 9, 11]);
        for v in [1, 8, 10, 2000] {
            b.observe(v);
        }
        assert!(!a.merge(&b), "bounds differ");
        // No observation vanished: the four foreign counts sit in the
        // overflow bucket and sum/n fold in exactly.
        assert_eq!(a.counts, vec![1, 0, 4]);
        assert_eq!(a.n, 5);
        assert_eq!(a.sum, 5 + 1 + 8 + 10 + 2000);
        assert_eq!(a.counts.iter().sum::<u64>(), a.n);

        // Matching bounds still fold bucket-wise and report a match.
        let mut c = Histogram::new(&[10, 100]);
        c.observe(50);
        assert!(a.merge(&c));
        assert_eq!(a.counts, vec![1, 1, 4]);
    }

    #[test]
    fn telemetry_merge_counts_bounds_mismatch() {
        let mut m1 = MetricsRegistry::default();
        m1.observe_ns("rtt", &[10, 100], 5);
        let mut t1 = Telemetry::from_parts(&Recorder::default(), &m1);

        let mut m2 = MetricsRegistry::default();
        m2.observe_ns("rtt", &[1, 2, 3], 99);
        let t2 = Telemetry::from_parts(&Recorder::default(), &m2);

        t1.merge(&t2);
        assert_eq!(t1.counters["trace.merge_bounds_mismatch"], 1);
        let h = &t1.histograms["rtt"];
        assert_eq!(h.n, 2);
        assert_eq!(h.counts.iter().sum::<u64>(), 2);

        // A clean merge does not create the counter.
        let mut t3 = Telemetry::from_parts(&Recorder::default(), &m1);
        let t4 = Telemetry::from_parts(&Recorder::default(), &m1);
        t3.merge(&t4);
        assert!(!t3.counters.contains_key("trace.merge_bounds_mismatch"));
    }

    #[test]
    fn merge_is_deterministic_and_additive() {
        let mut r1 = Recorder::default();
        r1.record_event(span(10, [1; 8], Phase::Announce, 20));
        let mut m1 = MetricsRegistry::default();
        m1.bump_counter("c", 2);
        let mut t1 = Telemetry::from_parts(&r1, &m1);
        t1.transitions.total.ecalls = 5;

        let mut r2 = Recorder::default();
        r2.record_event(span(5, [2; 8], Phase::Announce, 9));
        let mut m2 = MetricsRegistry::default();
        m2.bump_counter("c", 3);
        let mut t2 = Telemetry::from_parts(&r2, &m2);
        t2.transitions.by_trace.insert(
            [2; 8],
            TransitionCount {
                ecalls: 4,
                ocalls: 1,
            },
        );

        t1.merge(&t2);
        assert_eq!(t1.events[0].trace, [2; 8]);
        assert_eq!(t1.counters["c"], 5);
        assert_eq!(t1.transitions.total.ecalls, 5);
        assert_eq!(t1.transitions.by_trace[&[2u8; 8]].ecalls, 4);

        // Merging in the same order twice yields identical JSON.
        let mut t3 = Telemetry::from_parts(&r1, &m1);
        t3.transitions.total.ecalls = 5;
        t3.merge(&t2);
        assert_eq!(t1.to_json(), t3.to_json());
    }

    #[test]
    fn json_is_stable_and_escaped() {
        let mut r = Recorder::default();
        r.record_event(span(1, [0xab; 8], Phase::Stream, 2));
        r.record_event(Event {
            at_ns: 3,
            trace: [0xab; 8],
            kind: EventKind::Edge(Edge::Retry),
        });
        let mut m = MetricsRegistry::default();
        m.bump_counter("a\"b", 1);
        let t = Telemetry::from_parts(&r, &m);
        let j = t.to_json();
        assert!(j.contains("\"kind\": \"span\""));
        assert!(j.contains("\"edge\": \"retry\""));
        assert!(j.contains("\"a\\\"b\": 1"));
        assert!(j.contains("\"trace\": \"abababababababab\""));
        assert_eq!(j, t.to_json());
    }

    #[test]
    fn timeline_lists_phases_in_order() {
        let mut r = Recorder::default();
        r.record_event(span(10_000_000, [1; 8], Phase::Stream, 30_000_000));
        r.record_event(span(0, [1; 8], Phase::Announce, 10_000_000));
        r.record_event(span(30_000_000, [1; 8], Phase::Release, 35_000_000));
        let t = Telemetry::from_parts(&r, &MetricsRegistry::default());
        let tl = t.render_timeline();
        let announce = tl.find("announce").unwrap();
        let stream = tl.find("stream").unwrap();
        let release = tl.find("release").unwrap();
        assert!(announce < stream && stream < release);
        assert!(tl.contains("total 35.000ms"));
    }

    #[test]
    fn label_ids_are_stable() {
        assert_eq!(label_id("m0->m1"), label_id("m0->m1"));
        assert_ne!(label_id("m0->m1"), label_id("m1->m0"));
        assert_eq!(trace_from_label("x"), label_id("x").to_be_bytes());
    }

    #[test]
    fn spans_for_orders_by_phase() {
        let mut r = Recorder::default();
        r.record_event(span(30, [1; 8], Phase::Release, 35));
        r.record_event(span(0, [1; 8], Phase::Announce, 10));
        r.record_event(span(10, [2; 8], Phase::Stream, 30));
        let t = Telemetry::from_parts(&r, &MetricsRegistry::default());
        let spans = t.spans_for([1; 8]);
        assert_eq!(spans.len(), 2);
        assert_eq!(spans[0].0, Phase::Announce);
        assert_eq!(spans[1].0, Phase::Release);
    }
}
