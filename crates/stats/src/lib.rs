//! **mig-stats** — the statistics used by the paper's evaluation (§VII-B).
//!
//! The paper reports, for every measurement: the mean of 1000 repetitions,
//! error bars showing a **99 % mean confidence interval**, and a
//! **one-tailed t-test** for the significance of overhead differences
//! ("the increment operation incurs an average overhead of 12.3 %
//! (statistically significant, p ≈ 0) ... whereas the read operation has
//! no statistically significant overhead (p ≈ 0.12)").
//!
//! This crate implements exactly those tools from first principles:
//! Student-t quantiles via the regularized incomplete beta function, and
//! Welch's unequal-variance one-tailed t-test.
//!
//! # Example
//!
//! ```
//! use mig_stats::{summarize, welch_one_tailed_p};
//!
//! let fast: Vec<f64> = (0..100).map(|i| 10.0 + (i % 7) as f64 * 0.01).collect();
//! let slow: Vec<f64> = (0..100).map(|i| 11.0 + (i % 5) as f64 * 0.01).collect();
//! let s = summarize(&slow, 0.99);
//! assert!(s.ci_half_width > 0.0);
//! // H1: mean(slow) > mean(fast) — overwhelmingly significant.
//! assert!(welch_one_tailed_p(&slow, &fast) < 1e-6);
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

/// Summary statistics of a sample, in the paper's reporting format.
#[derive(Clone, Copy, Debug, PartialEq)]
pub struct Summary {
    /// Number of observations.
    pub n: usize,
    /// Sample mean.
    pub mean: f64,
    /// Sample standard deviation (n−1 denominator).
    pub std_dev: f64,
    /// Half-width of the mean confidence interval at the requested level
    /// (the paper's error bars: mean ± half-width).
    pub ci_half_width: f64,
    /// The confidence level used (e.g. 0.99).
    pub confidence: f64,
}

/// Sample mean.
///
/// # Panics
///
/// Panics on an empty sample.
#[must_use]
pub fn mean(samples: &[f64]) -> f64 {
    assert!(!samples.is_empty(), "mean of empty sample");
    samples.iter().sum::<f64>() / samples.len() as f64
}

/// Sample variance (unbiased, n−1 denominator).
///
/// # Panics
///
/// Panics on samples with fewer than two observations.
#[must_use]
pub fn variance(samples: &[f64]) -> f64 {
    assert!(samples.len() >= 2, "variance needs at least 2 samples");
    let m = mean(samples);
    samples.iter().map(|x| (x - m).powi(2)).sum::<f64>() / (samples.len() - 1) as f64
}

/// Sample standard deviation.
///
/// # Panics
///
/// Panics on samples with fewer than two observations.
#[must_use]
pub fn std_dev(samples: &[f64]) -> f64 {
    variance(samples).sqrt()
}

/// Summarizes a sample with a mean confidence interval at `confidence`
/// (e.g. `0.99` for the paper's 99 % error bars).
///
/// # Panics
///
/// Panics on samples with fewer than two observations or a confidence
/// outside (0, 1).
#[must_use]
pub fn summarize(samples: &[f64], confidence: f64) -> Summary {
    assert!(
        confidence > 0.0 && confidence < 1.0,
        "confidence must be in (0, 1)"
    );
    let n = samples.len();
    let m = mean(samples);
    let sd = std_dev(samples);
    let df = (n - 1) as f64;
    // Two-sided quantile: P(|T| <= t) = confidence.
    let t = student_t_quantile(0.5 + confidence / 2.0, df);
    Summary {
        n,
        mean: m,
        std_dev: sd,
        ci_half_width: t * sd / (n as f64).sqrt(),
        confidence,
    }
}

/// One-tailed Welch t-test p-value for H1: `mean(a) > mean(b)`.
///
/// Uses the Welch–Satterthwaite degrees of freedom. A p-value near 0
/// means `a` is significantly larger; near 1 means significantly
/// smaller; near 0.5 means indistinguishable.
///
/// # Panics
///
/// Panics if either sample has fewer than two observations.
#[must_use]
pub fn welch_one_tailed_p(a: &[f64], b: &[f64]) -> f64 {
    let (na, nb) = (a.len() as f64, b.len() as f64);
    let (va, vb) = (variance(a), variance(b));
    let se2 = va / na + vb / nb;
    if se2 == 0.0 {
        // Identical constant samples: no evidence either way.
        return if mean(a) > mean(b) {
            0.0
        } else if mean(a) < mean(b) {
            1.0
        } else {
            0.5
        };
    }
    let t = (mean(a) - mean(b)) / se2.sqrt();
    let df = se2.powi(2) / ((va / na).powi(2) / (na - 1.0) + (vb / nb).powi(2) / (nb - 1.0));
    // p = P(T_df > t) = 1 - CDF(t)
    1.0 - student_t_cdf(t, df)
}

/// Student-t cumulative distribution function with `df` degrees of
/// freedom.
///
/// Computed via the regularized incomplete beta function:
/// for `t >= 0`, `P(T <= t) = 1 - I_x(df/2, 1/2) / 2` with
/// `x = df / (df + t^2)`.
#[must_use]
pub fn student_t_cdf(t: f64, df: f64) -> f64 {
    let x = df / (df + t * t);
    let p = 0.5 * regularized_incomplete_beta(df / 2.0, 0.5, x);
    if t >= 0.0 {
        1.0 - p
    } else {
        p
    }
}

/// Student-t quantile (inverse CDF) via bisection on [`student_t_cdf`].
///
/// # Panics
///
/// Panics for probabilities outside (0, 1).
#[must_use]
pub fn student_t_quantile(p: f64, df: f64) -> f64 {
    assert!(p > 0.0 && p < 1.0, "probability must be in (0, 1)");
    if (p - 0.5).abs() < f64::EPSILON {
        return 0.0;
    }
    // The t quantile is symmetric; search the positive half.
    let target = if p > 0.5 { p } else { 1.0 - p };
    let mut lo = 0.0f64;
    let mut hi = 1e3f64;
    // Expand until the bracket contains the target (heavy tails at low df).
    while student_t_cdf(hi, df) < target {
        hi *= 2.0;
        assert!(hi < 1e12, "t quantile bracket expansion diverged");
    }
    for _ in 0..200 {
        let mid = 0.5 * (lo + hi);
        if student_t_cdf(mid, df) < target {
            lo = mid;
        } else {
            hi = mid;
        }
    }
    let q = 0.5 * (lo + hi);
    if p > 0.5 {
        q
    } else {
        -q
    }
}

/// Natural log of the gamma function (Lanczos approximation, g = 7).
#[must_use]
pub fn ln_gamma(x: f64) -> f64 {
    const COEFFS: [f64; 9] = [
        0.999_999_999_999_809_9,
        676.520_368_121_885_1,
        -1_259.139_216_722_402_8,
        771.323_428_777_653_1,
        -176.615_029_162_140_6,
        12.507_343_278_686_905,
        -0.138_571_095_265_720_12,
        9.984_369_578_019_572e-6,
        1.505_632_735_149_311_6e-7,
    ];
    if x < 0.5 {
        // Reflection formula.
        let pi = std::f64::consts::PI;
        return (pi / (pi * x).sin()).ln() - ln_gamma(1.0 - x);
    }
    let x = x - 1.0;
    let mut a = COEFFS[0];
    let t = x + 7.5;
    for (i, c) in COEFFS.iter().enumerate().skip(1) {
        a += c / (x + i as f64);
    }
    0.5 * (2.0 * std::f64::consts::PI).ln() + (x + 0.5) * t.ln() - t + a.ln()
}

/// Regularized incomplete beta function `I_x(a, b)` via the continued
/// fraction expansion (Lentz's algorithm).
#[must_use]
pub fn regularized_incomplete_beta(a: f64, b: f64, x: f64) -> f64 {
    if x <= 0.0 {
        return 0.0;
    }
    if x >= 1.0 {
        return 1.0;
    }
    let ln_front = ln_gamma(a + b) - ln_gamma(a) - ln_gamma(b) + a * x.ln() + b * (1.0 - x).ln();
    let front = ln_front.exp();
    // Use the symmetry relation for faster convergence. `<=` keeps the
    // boundary point (e.g. a = b, x = 0.5) in the direct branch, so the
    // mutual recursion always terminates.
    if x <= (a + 1.0) / (a + b + 2.0) {
        front * beta_cf(a, b, x) / a
    } else {
        1.0 - regularized_incomplete_beta(b, a, 1.0 - x)
    }
}

/// Continued fraction for the incomplete beta (Numerical-Recipes form).
fn beta_cf(a: f64, b: f64, x: f64) -> f64 {
    const MAX_ITER: usize = 300;
    const EPS: f64 = 1e-15;
    const TINY: f64 = 1e-300;

    let qab = a + b;
    let qap = a + 1.0;
    let qam = a - 1.0;
    let mut c = 1.0;
    let mut d = 1.0 - qab * x / qap;
    if d.abs() < TINY {
        d = TINY;
    }
    d = 1.0 / d;
    let mut h = d;
    for m in 1..=MAX_ITER {
        let m = m as f64;
        let m2 = 2.0 * m;
        // Even step.
        let aa = m * (b - m) * x / ((qam + m2) * (a + m2));
        d = 1.0 + aa * d;
        if d.abs() < TINY {
            d = TINY;
        }
        c = 1.0 + aa / c;
        if c.abs() < TINY {
            c = TINY;
        }
        d = 1.0 / d;
        h *= d * c;
        // Odd step.
        let aa = -(a + m) * (qab + m) * x / ((a + m2) * (qap + m2));
        d = 1.0 + aa * d;
        if d.abs() < TINY {
            d = TINY;
        }
        c = 1.0 + aa / c;
        if c.abs() < TINY {
            c = TINY;
        }
        d = 1.0 / d;
        let delta = d * c;
        h *= delta;
        if (delta - 1.0).abs() < EPS {
            break;
        }
    }
    h
}

#[cfg(test)]
mod tests {
    use super::*;

    fn assert_close(actual: f64, expected: f64, tol: f64) {
        assert!(
            (actual - expected).abs() < tol,
            "expected {expected}, got {actual} (tol {tol})"
        );
    }

    #[test]
    fn mean_and_std_of_known_sample() {
        let samples = [2.0, 4.0, 4.0, 4.0, 5.0, 5.0, 7.0, 9.0];
        assert_close(mean(&samples), 5.0, 1e-12);
        // Unbiased std of this classic sample is sqrt(32/7).
        assert_close(std_dev(&samples), (32.0f64 / 7.0).sqrt(), 1e-12);
    }

    #[test]
    fn ln_gamma_matches_known_values() {
        assert_close(ln_gamma(1.0), 0.0, 1e-10);
        assert_close(ln_gamma(2.0), 0.0, 1e-10);
        assert_close(ln_gamma(5.0), (24.0f64).ln(), 1e-10); // Γ(5)=24
        assert_close(ln_gamma(0.5), (std::f64::consts::PI).sqrt().ln(), 1e-10);
    }

    #[test]
    fn incomplete_beta_boundary_and_symmetry() {
        assert_eq!(regularized_incomplete_beta(2.0, 3.0, 0.0), 0.0);
        assert_eq!(regularized_incomplete_beta(2.0, 3.0, 1.0), 1.0);
        // I_x(a,b) = 1 - I_{1-x}(b,a)
        let v = regularized_incomplete_beta(2.5, 1.5, 0.3);
        let w = 1.0 - regularized_incomplete_beta(1.5, 2.5, 0.7);
        assert_close(v, w, 1e-12);
        // I_x(1,1) = x (uniform distribution).
        assert_close(regularized_incomplete_beta(1.0, 1.0, 0.42), 0.42, 1e-12);
    }

    #[test]
    fn t_cdf_matches_reference_values() {
        // Standard references: P(T_1 <= 1) = 0.75; P(T_2 <= 0) = 0.5.
        assert_close(student_t_cdf(1.0, 1.0), 0.75, 1e-9);
        assert_close(student_t_cdf(0.0, 5.0), 0.5, 1e-12);
        // Large df approaches the normal: P(Z <= 1.96) ≈ 0.975.
        assert_close(student_t_cdf(1.96, 100_000.0), 0.975, 1e-3);
        // Symmetry.
        assert_close(
            student_t_cdf(-1.3, 7.0),
            1.0 - student_t_cdf(1.3, 7.0),
            1e-12,
        );
    }

    #[test]
    fn t_quantiles_match_tables() {
        // Two-sided 99% critical values (0.995 quantile) from t tables.
        assert_close(student_t_quantile(0.995, 1.0), 63.657, 0.01);
        assert_close(student_t_quantile(0.995, 10.0), 3.169, 0.001);
        assert_close(student_t_quantile(0.995, 30.0), 2.750, 0.001);
        assert_close(student_t_quantile(0.995, 999.0), 2.5808, 0.001);
        // 95% one-sided (0.95 quantile), df=10 → 1.812.
        assert_close(student_t_quantile(0.95, 10.0), 1.812, 0.001);
        // Negative side.
        assert_close(student_t_quantile(0.005, 10.0), -3.169, 0.001);
        assert_eq!(student_t_quantile(0.5, 10.0), 0.0);
    }

    #[test]
    fn quantile_inverts_cdf() {
        for df in [1.0, 5.0, 50.0, 999.0] {
            for p in [0.01, 0.25, 0.6, 0.9, 0.999] {
                let t = student_t_quantile(p, df);
                assert_close(student_t_cdf(t, df), p, 1e-9);
            }
        }
    }

    #[test]
    fn summary_of_thousand_samples_has_tight_ci() {
        // A deterministic sample with known mean 100 and tiny spread.
        let samples: Vec<f64> = (0..1000)
            .map(|i| 100.0 + ((i % 10) as f64 - 4.5) * 0.1)
            .collect();
        let s = summarize(&samples, 0.99);
        assert_eq!(s.n, 1000);
        assert_close(s.mean, 100.0, 1e-9);
        assert!(s.ci_half_width < 0.03, "ci = {}", s.ci_half_width);
        assert_eq!(s.confidence, 0.99);
    }

    #[test]
    fn welch_test_discriminates() {
        let a: Vec<f64> = (0..200).map(|i| 10.0 + (i % 9) as f64 * 0.01).collect();
        let b: Vec<f64> = (0..200).map(|i| 10.5 + (i % 11) as f64 * 0.01).collect();
        // b clearly larger: H1 "a > b" should be near 1, "b > a" near 0.
        assert!(welch_one_tailed_p(&a, &b) > 0.999);
        assert!(welch_one_tailed_p(&b, &a) < 1e-6);
        // Same distribution: inconclusive (≈ 0.5).
        let p = welch_one_tailed_p(&a, &a.clone());
        assert!((p - 0.5).abs() < 0.05, "p = {p}");
    }

    #[test]
    fn welch_handles_constant_samples() {
        let a = vec![5.0; 10];
        let b = vec![4.0; 10];
        assert_eq!(welch_one_tailed_p(&a, &b), 0.0);
        assert_eq!(welch_one_tailed_p(&b, &a), 1.0);
        assert_eq!(welch_one_tailed_p(&a, &a.clone()), 0.5);
    }

    #[test]
    #[should_panic(expected = "empty sample")]
    fn mean_of_empty_panics() {
        let _ = mean(&[]);
    }

    #[test]
    #[should_panic(expected = "at least 2")]
    fn variance_of_singleton_panics() {
        let _ = variance(&[1.0]);
    }
}
