//! A physical machine in the datacenter: SGX platform + untrusted disk +
//! placement labels.

use crate::disk::UntrustedDisk;
use sgx_sim::machine::{MachineId, SgxMachine};

/// Operator-assigned placement labels, consumed by migration policies
/// (the paper's §VIII: restrict migration to a datacenter or region).
#[derive(Clone, PartialEq, Eq, Hash, Debug)]
pub struct MachineLabels {
    /// Datacenter identifier (e.g. `"dc-1"`).
    pub datacenter: String,
    /// Geographic region (e.g. `"eu"`).
    pub region: String,
}

impl MachineLabels {
    /// Convenience constructor.
    #[must_use]
    pub fn new(datacenter: &str, region: &str) -> Self {
        MachineLabels {
            datacenter: datacenter.to_string(),
            region: region.to_string(),
        }
    }
}

impl Default for MachineLabels {
    fn default() -> Self {
        MachineLabels::new("dc-1", "eu")
    }
}

/// A physical machine: one SGX platform, one untrusted disk, labels.
///
/// The SGX platform holds everything machine-bound (CPU secret, counter
/// NVRAM, EPID credential); the disk holds everything the adversary can
/// snapshot and roll back.
#[derive(Clone, Debug)]
pub struct Machine {
    /// Machine identifier (also the network address).
    pub id: MachineId,
    /// The machine's SGX platform.
    pub sgx: SgxMachine,
    /// The machine's untrusted persistent storage.
    pub disk: UntrustedDisk,
    /// Operator placement labels.
    pub labels: MachineLabels,
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::SeedableRng;
    use sgx_sim::ias::AttestationService;

    #[test]
    fn machine_bundles_platform_and_disk() {
        let mut rng = rand::rngs::StdRng::seed_from_u64(1);
        let ias = AttestationService::new(&mut rng);
        let machine = Machine {
            id: MachineId(7),
            sgx: SgxMachine::new(MachineId(7), &ias, &mut rng),
            disk: UntrustedDisk::new(),
            labels: MachineLabels::new("dc-2", "us"),
        };
        assert_eq!(machine.sgx.machine_id(), MachineId(7));
        machine.disk.put("x", vec![1]);
        assert_eq!(machine.disk.get("x").unwrap(), vec![1]);
        assert_eq!(machine.labels.datacenter, "dc-2");
    }
}
