//! Virtual time for the discrete-event datacenter.
//!
//! All latencies — network transfers, Intel firmware operations, VM memory
//! copies — are accounted against a single monotone [`SimClock`], so
//! end-to-end experiments (the paper's §VII-B migration-overhead
//! measurement) can report durations without wall-clock noise.

use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Arc;
use std::time::Duration;

/// A point in virtual time (nanoseconds since world start).
#[derive(Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Debug, Default)]
pub struct SimTime(pub u64);

impl SimTime {
    /// The world's epoch.
    pub const ZERO: SimTime = SimTime(0);

    /// Adds a duration, saturating at the maximum representable time.
    #[must_use]
    pub fn after(self, d: Duration) -> SimTime {
        SimTime(
            self.0
                .saturating_add(d.as_nanos().min(u128::from(u64::MAX)) as u64),
        )
    }

    /// The duration elapsed since `earlier` (zero if `earlier` is later).
    #[must_use]
    pub fn since(self, earlier: SimTime) -> Duration {
        Duration::from_nanos(self.0.saturating_sub(earlier.0))
    }
}

impl std::fmt::Display for SimTime {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        let d = Duration::from_nanos(self.0);
        write!(f, "t+{:.6}s", d.as_secs_f64())
    }
}

/// A shared, monotone virtual clock.
///
/// Cloneable; all clones observe the same time.
///
/// # Example
///
/// ```
/// use cloud_sim::clock::SimClock;
/// use std::time::Duration;
///
/// let clock = SimClock::new();
/// let t0 = clock.now();
/// clock.advance(Duration::from_millis(5));
/// assert_eq!(clock.now().since(t0), Duration::from_millis(5));
/// ```
#[derive(Clone, Debug, Default)]
pub struct SimClock {
    now_ns: Arc<AtomicU64>,
}

impl SimClock {
    /// Creates a clock at `t = 0`.
    #[must_use]
    pub fn new() -> Self {
        SimClock::default()
    }

    /// The current virtual time.
    #[must_use]
    pub fn now(&self) -> SimTime {
        SimTime(self.now_ns.load(Ordering::SeqCst))
    }

    /// Advances the clock by `d`.
    pub fn advance(&self, d: Duration) {
        self.now_ns.fetch_add(
            d.as_nanos().min(u128::from(u64::MAX)) as u64,
            Ordering::SeqCst,
        );
    }

    /// Advances the clock *to* `t` if `t` is in the future (monotone).
    pub fn advance_to(&self, t: SimTime) {
        self.now_ns.fetch_max(t.0, Ordering::SeqCst);
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn clock_starts_at_zero_and_advances() {
        let clock = SimClock::new();
        assert_eq!(clock.now(), SimTime::ZERO);
        clock.advance(Duration::from_secs(1));
        assert_eq!(clock.now(), SimTime(1_000_000_000));
    }

    #[test]
    fn advance_to_is_monotone() {
        let clock = SimClock::new();
        clock.advance_to(SimTime(100));
        clock.advance_to(SimTime(50)); // must not rewind
        assert_eq!(clock.now(), SimTime(100));
        clock.advance_to(SimTime(200));
        assert_eq!(clock.now(), SimTime(200));
    }

    #[test]
    fn clones_share_time() {
        let a = SimClock::new();
        let b = a.clone();
        a.advance(Duration::from_millis(3));
        assert_eq!(b.now(), SimTime(3_000_000));
    }

    #[test]
    fn simtime_arithmetic() {
        let t = SimTime::ZERO.after(Duration::from_micros(7));
        assert_eq!(t, SimTime(7_000));
        assert_eq!(t.since(SimTime::ZERO), Duration::from_micros(7));
        assert_eq!(SimTime::ZERO.since(t), Duration::ZERO); // saturates
    }

    #[test]
    fn simtime_displays_seconds() {
        let t = SimTime(1_500_000_000);
        assert_eq!(t.to_string(), "t+1.500000s");
    }
}
