//! Untrusted per-machine persistent storage.
//!
//! Sealed blobs live here: the enclave hands them to the untrusted
//! application, which writes them to the machine's disk (the paper's
//! Table II "persistent data" flow). Because the disk is fully under the
//! adversary's control, it supports **snapshots and rollback** — the exact
//! capability the paper's §III fork and roll-back attacks exploit by
//! re-supplying an old sealed blob to a restarted enclave.

use parking_lot::Mutex;
use std::collections::HashMap;
use std::sync::Arc;

/// Why a fallible disk write ([`UntrustedDisk::try_put`]) failed.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum DiskError {
    /// The write was rejected outright; the stored value (if any) is
    /// unchanged.
    Failed,
    /// The write tore mid-way: a **prefix** of the new value replaced
    /// the old one before the failure (the classic crashed-mid-write
    /// artifact torn-write recovery must tolerate).
    Torn,
}

impl std::fmt::Display for DiskError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            DiskError::Failed => write!(f, "disk write failed"),
            DiskError::Torn => write!(f, "disk write torn mid-way"),
        }
    }
}

impl std::error::Error for DiskError {}

/// Verdict a write-fault hook returns for one [`UntrustedDisk::try_put`]
/// attempt.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum WriteFault {
    /// The write proceeds normally.
    None,
    /// The write is rejected; nothing is stored.
    Fail,
    /// The write tears: only the first `keep` bytes of the value are
    /// stored (clamped to the value length), and the write reports
    /// [`DiskError::Torn`].
    Torn {
        /// Prefix length that reaches the platter before the failure.
        keep: usize,
    },
}

/// A write-fault hook: inspects `(key, value)` of each fallible write
/// and decides its fate. Installed per disk via
/// [`UntrustedDisk::set_fault_hook`] (fault injection).
pub type FaultHook = Box<dyn FnMut(&str, &[u8]) -> WriteFault + Send>;

/// A point-in-time copy of a disk's contents (an adversary capability).
#[derive(Clone, Debug)]
pub struct DiskSnapshot {
    entries: HashMap<String, Vec<u8>>,
}

impl DiskSnapshot {
    /// Number of stored objects in the snapshot.
    #[must_use]
    pub fn len(&self) -> usize {
        self.entries.len()
    }

    /// Whether the snapshot is empty.
    #[must_use]
    pub fn is_empty(&self) -> bool {
        self.entries.is_empty()
    }

    /// Reads a single object out of the snapshot without restoring it.
    #[must_use]
    pub fn get(&self, key: &str) -> Option<&[u8]> {
        self.entries.get(key).map(Vec::as_slice)
    }
}

/// An untrusted key-value disk. Cloneable handle; clones share contents.
///
/// # Example
///
/// ```
/// use cloud_sim::disk::UntrustedDisk;
///
/// let disk = UntrustedDisk::new();
/// disk.put("blob", b"v1".to_vec());
/// let snap = disk.snapshot();          // adversary saves old state
/// disk.put("blob", b"v2".to_vec());
/// disk.restore(&snap);                 // ... and rolls it back later
/// assert_eq!(disk.get("blob").unwrap(), b"v1");
/// ```
#[derive(Clone, Default)]
pub struct UntrustedDisk {
    entries: Arc<Mutex<HashMap<String, Vec<u8>>>>,
    /// Shared across clones: every handle on the machine's disk sees the
    /// same injected faults.
    fault_hook: Arc<Mutex<Option<FaultHook>>>,
}

impl std::fmt::Debug for UntrustedDisk {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("UntrustedDisk")
            .field("objects", &self.entries.lock().len())
            .field("fault_hook", &self.fault_hook.lock().is_some())
            .finish()
    }
}

impl UntrustedDisk {
    /// Creates an empty disk.
    #[must_use]
    pub fn new() -> Self {
        UntrustedDisk::default()
    }

    /// Stores `value` under `key`, replacing any previous value.
    ///
    /// Infallible and immune to injected faults — this is the adversary's
    /// (and test harness's) direct handle on the medium. Durability-aware
    /// writers go through [`UntrustedDisk::try_put`].
    pub fn put(&self, key: &str, value: Vec<u8>) {
        self.entries.lock().insert(key.to_string(), value);
    }

    /// Stores `value` under `key` through the fault hook, if installed.
    ///
    /// # Errors
    ///
    /// [`DiskError::Failed`] leaves the stored value unchanged;
    /// [`DiskError::Torn`] stores a prefix of `value` before failing.
    pub fn try_put(&self, key: &str, value: Vec<u8>) -> Result<(), DiskError> {
        let fault = match &mut *self.fault_hook.lock() {
            Some(hook) => hook(key, &value),
            None => WriteFault::None,
        };
        match fault {
            WriteFault::None => {
                self.entries.lock().insert(key.to_string(), value);
                Ok(())
            }
            WriteFault::Fail => Err(DiskError::Failed),
            WriteFault::Torn { keep } => {
                let keep = keep.min(value.len());
                self.entries
                    .lock()
                    .insert(key.to_string(), value[..keep].to_vec());
                Err(DiskError::Torn)
            }
        }
    }

    /// Installs the write-fault hook consulted by every
    /// [`UntrustedDisk::try_put`] on this disk (all clones share it).
    pub fn set_fault_hook(&self, hook: impl FnMut(&str, &[u8]) -> WriteFault + Send + 'static) {
        *self.fault_hook.lock() = Some(Box::new(hook));
    }

    /// Removes the installed write-fault hook, restoring reliable writes.
    pub fn clear_fault_hook(&self) {
        *self.fault_hook.lock() = None;
    }

    /// Reads the value under `key`.
    #[must_use]
    pub fn get(&self, key: &str) -> Option<Vec<u8>> {
        self.entries.lock().get(key).cloned()
    }

    /// Length in bytes of the value under `key`, without copying it
    /// (metadata-only lookup).
    #[must_use]
    pub fn len(&self, key: &str) -> Option<usize> {
        self.entries.lock().get(key).map(Vec::len)
    }

    /// Deletes the value under `key`, returning it if present.
    pub fn delete(&self, key: &str) -> Option<Vec<u8>> {
        self.entries.lock().remove(key)
    }

    /// Lists all keys (sorted, for determinism).
    #[must_use]
    pub fn keys(&self) -> Vec<String> {
        let mut keys: Vec<String> = self.entries.lock().keys().cloned().collect();
        keys.sort();
        keys
    }

    /// Adversary capability: copies the entire disk state.
    #[must_use]
    pub fn snapshot(&self) -> DiskSnapshot {
        DiskSnapshot {
            entries: self.entries.lock().clone(),
        }
    }

    /// Adversary capability: replaces the disk contents with a snapshot.
    pub fn restore(&self, snapshot: &DiskSnapshot) {
        *self.entries.lock() = snapshot.entries.clone();
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn put_get_delete() {
        let disk = UntrustedDisk::new();
        assert_eq!(disk.get("a"), None);
        disk.put("a", vec![1, 2]);
        assert_eq!(disk.get("a").unwrap(), vec![1, 2]);
        assert_eq!(disk.delete("a").unwrap(), vec![1, 2]);
        assert_eq!(disk.get("a"), None);
        assert_eq!(disk.delete("a"), None);
    }

    #[test]
    fn overwrite_replaces() {
        let disk = UntrustedDisk::new();
        disk.put("k", b"old".to_vec());
        disk.put("k", b"new".to_vec());
        assert_eq!(disk.get("k").unwrap(), b"new");
    }

    #[test]
    fn snapshot_and_rollback() {
        let disk = UntrustedDisk::new();
        disk.put("state", b"v1".to_vec());
        disk.put("other", b"x".to_vec());
        let snap = disk.snapshot();
        assert_eq!(snap.len(), 2);
        assert_eq!(snap.get("state").unwrap(), b"v1");

        disk.put("state", b"v2".to_vec());
        disk.delete("other");
        disk.restore(&snap);
        assert_eq!(disk.get("state").unwrap(), b"v1");
        assert_eq!(disk.get("other").unwrap(), b"x");
    }

    #[test]
    fn snapshot_is_immutable_copy() {
        let disk = UntrustedDisk::new();
        disk.put("k", b"v1".to_vec());
        let snap = disk.snapshot();
        disk.put("k", b"v2".to_vec());
        // The snapshot still holds the old value.
        assert_eq!(snap.get("k").unwrap(), b"v1");
    }

    #[test]
    fn clones_share_state() {
        let disk = UntrustedDisk::new();
        let alias = disk.clone();
        disk.put("k", b"v".to_vec());
        assert_eq!(alias.get("k").unwrap(), b"v");
    }

    #[test]
    fn try_put_without_hook_behaves_like_put() {
        let disk = UntrustedDisk::new();
        disk.try_put("k", b"v".to_vec()).unwrap();
        assert_eq!(disk.get("k").unwrap(), b"v");
    }

    #[test]
    fn failed_write_leaves_old_value() {
        let disk = UntrustedDisk::new();
        disk.put("k", b"old".to_vec());
        disk.set_fault_hook(|_, _| WriteFault::Fail);
        assert_eq!(disk.try_put("k", b"new".to_vec()), Err(DiskError::Failed));
        assert_eq!(disk.get("k").unwrap(), b"old");
        // The infallible path is immune to the hook.
        disk.put("k", b"direct".to_vec());
        assert_eq!(disk.get("k").unwrap(), b"direct");
        disk.clear_fault_hook();
        disk.try_put("k", b"new".to_vec()).unwrap();
        assert_eq!(disk.get("k").unwrap(), b"new");
    }

    #[test]
    fn torn_write_stores_prefix_and_errors() {
        let disk = UntrustedDisk::new();
        disk.put("k", b"previous".to_vec());
        disk.set_fault_hook(|_, value| WriteFault::Torn {
            keep: value.len() / 2,
        });
        assert_eq!(
            disk.try_put("k", b"abcdefgh".to_vec()),
            Err(DiskError::Torn)
        );
        assert_eq!(disk.get("k").unwrap(), b"abcd");
    }

    #[test]
    fn fault_hook_is_shared_across_clones() {
        let disk = UntrustedDisk::new();
        let alias = disk.clone();
        disk.set_fault_hook(|_, _| WriteFault::Fail);
        assert_eq!(alias.try_put("k", vec![1]), Err(DiskError::Failed));
    }

    #[test]
    fn hook_sees_key_and_value() {
        let disk = UntrustedDisk::new();
        disk.set_fault_hook(|key, value| {
            if key.starts_with("ckpt/") && value.len() > 2 {
                WriteFault::Fail
            } else {
                WriteFault::None
            }
        });
        disk.try_put("ckpt/1", vec![0; 8]).unwrap_err();
        disk.try_put("ckpt/2", vec![0; 2]).unwrap();
        disk.try_put("other", vec![0; 8]).unwrap();
    }

    #[test]
    fn keys_are_sorted() {
        let disk = UntrustedDisk::new();
        disk.put("zeta", vec![]);
        disk.put("alpha", vec![]);
        disk.put("mid", vec![]);
        assert_eq!(disk.keys(), vec!["alpha", "mid", "zeta"]);
    }
}
