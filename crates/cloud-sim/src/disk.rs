//! Untrusted per-machine persistent storage.
//!
//! Sealed blobs live here: the enclave hands them to the untrusted
//! application, which writes them to the machine's disk (the paper's
//! Table II "persistent data" flow). Because the disk is fully under the
//! adversary's control, it supports **snapshots and rollback** — the exact
//! capability the paper's §III fork and roll-back attacks exploit by
//! re-supplying an old sealed blob to a restarted enclave.

use parking_lot::Mutex;
use std::collections::HashMap;
use std::sync::Arc;

/// A point-in-time copy of a disk's contents (an adversary capability).
#[derive(Clone, Debug)]
pub struct DiskSnapshot {
    entries: HashMap<String, Vec<u8>>,
}

impl DiskSnapshot {
    /// Number of stored objects in the snapshot.
    #[must_use]
    pub fn len(&self) -> usize {
        self.entries.len()
    }

    /// Whether the snapshot is empty.
    #[must_use]
    pub fn is_empty(&self) -> bool {
        self.entries.is_empty()
    }

    /// Reads a single object out of the snapshot without restoring it.
    #[must_use]
    pub fn get(&self, key: &str) -> Option<&[u8]> {
        self.entries.get(key).map(Vec::as_slice)
    }
}

/// An untrusted key-value disk. Cloneable handle; clones share contents.
///
/// # Example
///
/// ```
/// use cloud_sim::disk::UntrustedDisk;
///
/// let disk = UntrustedDisk::new();
/// disk.put("blob", b"v1".to_vec());
/// let snap = disk.snapshot();          // adversary saves old state
/// disk.put("blob", b"v2".to_vec());
/// disk.restore(&snap);                 // ... and rolls it back later
/// assert_eq!(disk.get("blob").unwrap(), b"v1");
/// ```
#[derive(Clone, Debug, Default)]
pub struct UntrustedDisk {
    entries: Arc<Mutex<HashMap<String, Vec<u8>>>>,
}

impl UntrustedDisk {
    /// Creates an empty disk.
    #[must_use]
    pub fn new() -> Self {
        UntrustedDisk::default()
    }

    /// Stores `value` under `key`, replacing any previous value.
    pub fn put(&self, key: &str, value: Vec<u8>) {
        self.entries.lock().insert(key.to_string(), value);
    }

    /// Reads the value under `key`.
    #[must_use]
    pub fn get(&self, key: &str) -> Option<Vec<u8>> {
        self.entries.lock().get(key).cloned()
    }

    /// Length in bytes of the value under `key`, without copying it
    /// (metadata-only lookup).
    #[must_use]
    pub fn len(&self, key: &str) -> Option<usize> {
        self.entries.lock().get(key).map(Vec::len)
    }

    /// Deletes the value under `key`, returning it if present.
    pub fn delete(&self, key: &str) -> Option<Vec<u8>> {
        self.entries.lock().remove(key)
    }

    /// Lists all keys (sorted, for determinism).
    #[must_use]
    pub fn keys(&self) -> Vec<String> {
        let mut keys: Vec<String> = self.entries.lock().keys().cloned().collect();
        keys.sort();
        keys
    }

    /// Adversary capability: copies the entire disk state.
    #[must_use]
    pub fn snapshot(&self) -> DiskSnapshot {
        DiskSnapshot {
            entries: self.entries.lock().clone(),
        }
    }

    /// Adversary capability: replaces the disk contents with a snapshot.
    pub fn restore(&self, snapshot: &DiskSnapshot) {
        *self.entries.lock() = snapshot.entries.clone();
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn put_get_delete() {
        let disk = UntrustedDisk::new();
        assert_eq!(disk.get("a"), None);
        disk.put("a", vec![1, 2]);
        assert_eq!(disk.get("a").unwrap(), vec![1, 2]);
        assert_eq!(disk.delete("a").unwrap(), vec![1, 2]);
        assert_eq!(disk.get("a"), None);
        assert_eq!(disk.delete("a"), None);
    }

    #[test]
    fn overwrite_replaces() {
        let disk = UntrustedDisk::new();
        disk.put("k", b"old".to_vec());
        disk.put("k", b"new".to_vec());
        assert_eq!(disk.get("k").unwrap(), b"new");
    }

    #[test]
    fn snapshot_and_rollback() {
        let disk = UntrustedDisk::new();
        disk.put("state", b"v1".to_vec());
        disk.put("other", b"x".to_vec());
        let snap = disk.snapshot();
        assert_eq!(snap.len(), 2);
        assert_eq!(snap.get("state").unwrap(), b"v1");

        disk.put("state", b"v2".to_vec());
        disk.delete("other");
        disk.restore(&snap);
        assert_eq!(disk.get("state").unwrap(), b"v1");
        assert_eq!(disk.get("other").unwrap(), b"x");
    }

    #[test]
    fn snapshot_is_immutable_copy() {
        let disk = UntrustedDisk::new();
        disk.put("k", b"v1".to_vec());
        let snap = disk.snapshot();
        disk.put("k", b"v2".to_vec());
        // The snapshot still holds the old value.
        assert_eq!(snap.get("k").unwrap(), b"v1");
    }

    #[test]
    fn clones_share_state() {
        let disk = UntrustedDisk::new();
        let alias = disk.clone();
        disk.put("k", b"v".to_vec());
        assert_eq!(alias.get("k").unwrap(), b"v");
    }

    #[test]
    fn keys_are_sorted() {
        let disk = UntrustedDisk::new();
        disk.put("zeta", vec![]);
        disk.put("alpha", vec![]);
        disk.put("mid", vec![]);
        assert_eq!(disk.keys(), vec!["alpha", "mid", "zeta"]);
    }
}
