//! The datacenter network: endpoints, timed delivery, and adversary hooks.
//!
//! Per the SGX threat model (paper §III-A), every channel between machines
//! — and even between VMs on one machine — is adversary-controlled. The
//! network therefore exposes *taps*: interception points that can record,
//! drop, or rewrite messages, used by the attack test-suite. Delivery
//! times follow a latency + bandwidth link model so the end-to-end
//! migration experiment can compare against VM-migration transfer times.

use crate::clock::{SimClock, SimTime};
use sgx_sim::machine::MachineId;
use std::cmp::Ordering as CmpOrdering;
use std::collections::BinaryHeap;
use std::time::Duration;

/// A network-addressable service instance.
///
/// Services are named (`"me"` for the Migration Enclave host in the
/// management VM, `"app:<name>"` for application hosts, etc.).
#[derive(Clone, PartialEq, Eq, Hash, Debug, PartialOrd, Ord)]
pub struct Endpoint {
    /// Hosting machine.
    pub machine: MachineId,
    /// Service name on that machine.
    pub service: String,
}

impl Endpoint {
    /// Convenience constructor.
    #[must_use]
    pub fn new(machine: MachineId, service: &str) -> Self {
        Endpoint {
            machine,
            service: service.to_string(),
        }
    }
}

impl std::fmt::Display for Endpoint {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "{}/{}", self.machine, self.service)
    }
}

/// A message in flight.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct Envelope {
    /// Sender endpoint.
    pub from: Endpoint,
    /// Destination endpoint.
    pub to: Endpoint,
    /// Opaque payload (protocol bytes).
    pub payload: Vec<u8>,
    /// Scheduled delivery time.
    pub deliver_at: SimTime,
    /// Tie-breaking sequence number (send order).
    pub seq: u64,
}

impl PartialOrd for Envelope {
    fn partial_cmp(&self, other: &Self) -> Option<CmpOrdering> {
        Some(self.cmp(other))
    }
}

impl Ord for Envelope {
    fn cmp(&self, other: &Self) -> CmpOrdering {
        // BinaryHeap is a max-heap; invert so the earliest message pops
        // first, with the send sequence as a deterministic tie-breaker.
        (other.deliver_at, other.seq).cmp(&(self.deliver_at, self.seq))
    }
}

/// Latency/bandwidth profile of a link.
#[derive(Clone, Copy, Debug)]
pub struct LinkProfile {
    /// One-way propagation latency.
    pub latency: Duration,
    /// Sustained throughput in bytes per second.
    pub bandwidth_bytes_per_sec: u64,
}

impl LinkProfile {
    /// A typical intra-datacenter link: 100 µs latency, 10 Gbit/s.
    #[must_use]
    pub fn datacenter() -> Self {
        LinkProfile {
            latency: Duration::from_micros(100),
            bandwidth_bytes_per_sec: 10_000_000_000 / 8,
        }
    }

    /// Same-machine (VM-to-VM / proxy) link: 10 µs, memory-speed.
    #[must_use]
    pub fn local() -> Self {
        LinkProfile {
            latency: Duration::from_micros(10),
            bandwidth_bytes_per_sec: 10_000_000_000,
        }
    }

    /// Transfer time for a message of `bytes` over this link.
    #[must_use]
    pub fn transfer_time(&self, bytes: usize) -> Duration {
        let serialization =
            Duration::from_secs_f64(bytes as f64 / self.bandwidth_bytes_per_sec as f64);
        self.latency + serialization
    }
}

/// What a network tap decides to do with a message.
#[derive(Debug)]
pub enum TapAction {
    /// Deliver unchanged.
    Deliver,
    /// Silently drop.
    Drop,
    /// Deliver a replacement payload instead.
    Replace(Vec<u8>),
    /// Hold the message back and re-deliver it `Duration` later (link
    /// jitter / transient congestion). The delayed copy passes the taps
    /// again on its new delivery time.
    Delay(Duration),
}

/// An adversary interception point. Taps see every message at delivery.
pub trait NetworkTap: Send {
    /// Inspects (and may act on) a message about to be delivered.
    fn intercept(&mut self, envelope: &Envelope) -> TapAction;
}

impl<F> NetworkTap for F
where
    F: FnMut(&Envelope) -> TapAction + Send,
{
    fn intercept(&mut self, envelope: &Envelope) -> TapAction {
        self(envelope)
    }
}

/// The datacenter network fabric.
///
/// Owns the delivery queue and the virtual clock; services send through
/// the `&mut Network` they receive as their context.
pub struct Network {
    clock: SimClock,
    queue: BinaryHeap<Envelope>,
    default_link: LinkProfile,
    local_link: LinkProfile,
    seq: u64,
    taps: Vec<Box<dyn NetworkTap>>,
    recording: bool,
    log: Vec<Envelope>,
}

impl std::fmt::Debug for Network {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("Network")
            .field("queued", &self.queue.len())
            .field("now", &self.clock.now())
            .finish_non_exhaustive()
    }
}

impl Network {
    /// Creates a network with datacenter-class links on `clock`.
    #[must_use]
    pub fn new(clock: SimClock) -> Self {
        Network {
            clock,
            queue: BinaryHeap::new(),
            default_link: LinkProfile::datacenter(),
            local_link: LinkProfile::local(),
            seq: 0,
            taps: Vec::new(),
            recording: false,
            log: Vec::new(),
        }
    }

    /// Current virtual time.
    #[must_use]
    pub fn now(&self) -> SimTime {
        self.clock.now()
    }

    /// The cross-machine link profile.
    #[must_use]
    pub fn link(&self) -> LinkProfile {
        self.default_link
    }

    /// Replaces the cross-machine link profile.
    pub fn set_link(&mut self, link: LinkProfile) {
        self.default_link = link;
    }

    /// Sends `payload` from `from` to `to`, scheduling timed delivery.
    pub fn send(&mut self, from: &Endpoint, to: &Endpoint, payload: Vec<u8>) {
        let link = if from.machine == to.machine {
            self.local_link
        } else {
            self.default_link
        };
        let deliver_at = self.clock.now().after(link.transfer_time(payload.len()));
        self.push(Envelope {
            from: from.clone(),
            to: to.clone(),
            payload,
            deliver_at,
            seq: 0, // assigned by push
        });
    }

    /// Re-injects a previously captured envelope (adversary replay). The
    /// message is delivered "now" regardless of its original timestamp.
    pub fn inject(&mut self, mut envelope: Envelope) {
        envelope.deliver_at = self.clock.now().after(Duration::from_micros(1));
        self.push(envelope);
    }

    fn push(&mut self, mut envelope: Envelope) {
        envelope.seq = self.seq;
        self.seq += 1;
        self.queue.push(envelope);
    }

    /// Installs an adversary tap (applied to every subsequent delivery).
    pub fn add_tap(&mut self, tap: Box<dyn NetworkTap>) {
        self.taps.push(tap);
    }

    /// Starts recording delivered messages into the log.
    pub fn start_recording(&mut self) {
        self.recording = true;
    }

    /// Stops recording and returns the captured messages.
    pub fn stop_recording(&mut self) -> Vec<Envelope> {
        self.recording = false;
        std::mem::take(&mut self.log)
    }

    /// Number of undelivered messages.
    #[must_use]
    pub fn pending(&self) -> usize {
        self.queue.len()
    }

    /// Advances the clock by `d` — models host-side processing or calls
    /// to external services outside the message fabric (e.g. the Intel
    /// Attestation Service HTTPS round trip).
    pub fn consume(&mut self, d: Duration) {
        self.clock.advance(d);
    }

    /// Pops the next message, advancing the clock to its delivery time
    /// and running it through the taps.
    ///
    /// Returns `None` when the queue is empty or the message was dropped
    /// by a tap (the clock still advances in the latter case).
    pub(crate) fn deliver_next(&mut self) -> Option<Envelope> {
        let mut envelope = self.queue.pop()?;
        self.clock.advance_to(envelope.deliver_at);
        for tap in &mut self.taps {
            match tap.intercept(&envelope) {
                TapAction::Deliver => {}
                TapAction::Drop => return None,
                TapAction::Replace(payload) => envelope.payload = payload,
                TapAction::Delay(by) => {
                    envelope.deliver_at = envelope.deliver_at.after(by);
                    self.push(envelope);
                    return None;
                }
            }
        }
        if self.recording {
            self.log.push(envelope.clone());
        }
        Some(envelope)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn ep(machine: u64, service: &str) -> Endpoint {
        Endpoint::new(MachineId(machine), service)
    }

    #[test]
    fn messages_deliver_in_time_order() {
        let clock = SimClock::new();
        let mut net = Network::new(clock);
        // Big cross-machine message (slow), then small local one (fast).
        net.send(&ep(1, "a"), &ep(2, "b"), vec![0; 1_000_000]);
        net.send(&ep(1, "a"), &ep(1, "c"), vec![0; 10]);
        let first = net.deliver_next().unwrap();
        assert_eq!(first.to, ep(1, "c"), "local small message arrives first");
        let second = net.deliver_next().unwrap();
        assert_eq!(second.to, ep(2, "b"));
        assert!(net.deliver_next().is_none());
    }

    #[test]
    fn clock_advances_to_delivery_time() {
        let clock = SimClock::new();
        let mut net = Network::new(clock.clone());
        net.send(&ep(1, "a"), &ep(2, "b"), vec![0; 125_000_000]); // 0.1s at 10Gbps
        net.deliver_next().unwrap();
        let now = clock.now();
        assert!(now.since(SimTime::ZERO) >= Duration::from_millis(100));
    }

    #[test]
    fn same_send_time_preserves_send_order() {
        let clock = SimClock::new();
        let mut net = Network::new(clock);
        net.send(&ep(1, "a"), &ep(1, "x"), b"first".to_vec());
        net.send(&ep(1, "a"), &ep(1, "x"), b"secnd".to_vec());
        assert_eq!(net.deliver_next().unwrap().payload, b"first");
        assert_eq!(net.deliver_next().unwrap().payload, b"secnd");
    }

    #[test]
    fn tap_can_drop_messages() {
        let mut net = Network::new(SimClock::new());
        net.add_tap(Box::new(|e: &Envelope| {
            if e.to.service == "victim" {
                TapAction::Drop
            } else {
                TapAction::Deliver
            }
        }));
        net.send(&ep(1, "a"), &ep(2, "victim"), b"x".to_vec());
        net.send(&ep(1, "a"), &ep(2, "ok"), b"y".to_vec());
        // Dropped message yields None; the next call returns the survivor.
        let deliveries: Vec<_> = std::iter::from_fn(|| {
            if net.pending() == 0 {
                None
            } else {
                Some(net.deliver_next())
            }
        })
        .flatten()
        .collect();
        assert_eq!(deliveries.len(), 1);
        assert_eq!(deliveries[0].to.service, "ok");
    }

    #[test]
    fn tap_can_rewrite_payloads() {
        let mut net = Network::new(SimClock::new());
        net.add_tap(Box::new(|_: &Envelope| {
            TapAction::Replace(b"evil".to_vec())
        }));
        net.send(&ep(1, "a"), &ep(2, "b"), b"good".to_vec());
        assert_eq!(net.deliver_next().unwrap().payload, b"evil");
    }

    #[test]
    fn tap_can_delay_messages() {
        let mut net = Network::new(SimClock::new());
        // Delay each message exactly once: the re-queued copy passes the
        // tap again, so a one-shot flag keeps this terminating.
        let mut delayed = false;
        net.add_tap(Box::new(move |_: &Envelope| {
            if delayed {
                TapAction::Deliver
            } else {
                delayed = true;
                TapAction::Delay(Duration::from_millis(5))
            }
        }));
        net.send(&ep(1, "a"), &ep(2, "b"), b"late".to_vec());
        let original_arrival = net
            .link()
            .transfer_time(4)
            .as_nanos()
            .try_into()
            .unwrap_or(u64::MAX);
        assert!(net.deliver_next().is_none(), "held back on first pass");
        assert_eq!(net.pending(), 1, "the delayed copy is re-queued");
        let envelope = net.deliver_next().unwrap();
        assert_eq!(envelope.payload, b"late");
        assert_eq!(
            envelope.deliver_at.0,
            original_arrival + 5_000_000,
            "re-delivered exactly the delay later"
        );
        assert_eq!(net.now(), envelope.deliver_at);
    }

    #[test]
    fn recording_and_replay() {
        let mut net = Network::new(SimClock::new());
        net.start_recording();
        net.send(&ep(1, "a"), &ep(2, "b"), b"capture me".to_vec());
        let delivered = net.deliver_next().unwrap();
        let log = net.stop_recording();
        assert_eq!(log.len(), 1);
        assert_eq!(log[0], delivered);

        // Replay later.
        net.inject(log[0].clone());
        let replayed = net.deliver_next().unwrap();
        assert_eq!(replayed.payload, b"capture me");
    }

    #[test]
    fn link_transfer_time_model() {
        let link = LinkProfile::datacenter();
        // 1 GiB at 10 Gbit/s ≈ 0.86 s.
        let t = link.transfer_time(1 << 30);
        assert!(t > Duration::from_millis(800) && t < Duration::from_millis(900));
        // Latency floor for empty messages.
        assert_eq!(link.transfer_time(0), Duration::from_micros(100));
    }
}
