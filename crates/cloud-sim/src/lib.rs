//! A deterministic discrete-event datacenter simulator for the
//! `sgx-migrate` workspace.
//!
//! The migration paper's setting is a cloud: physical machines with SGX
//! platforms, VMs that migrate between them, untrusted disks and networks
//! fully under the adversary's control. This crate provides that substrate:
//!
//! * [`clock`] — shared virtual time;
//! * [`disk`] — untrusted per-machine storage with adversary
//!   snapshot/rollback (the §III attack capability);
//! * [`network`] — timed message delivery with latency/bandwidth link
//!   models and adversary taps (record / drop / rewrite / replay);
//! * [`machine`] — physical machines (SGX platform + disk + labels);
//! * [`vm`] — guest VMs and the live-migration timing model;
//! * [`world`] — the event loop tying services, machines, and the network
//!   together deterministically.
//!
//! Everything is deterministic given the world seed, so protocol tests and
//! attack reproductions are exactly repeatable.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod clock;
pub mod disk;
pub mod machine;
pub mod network;
pub mod vm;
pub mod world;

pub use clock::{SimClock, SimTime};
pub use network::{Endpoint, Envelope, Network};
pub use world::{Service, World};
