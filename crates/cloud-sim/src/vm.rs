//! Virtual machines and the VM migration timing model.
//!
//! The simulator does not execute guest code — applications are services
//! registered with the world — but VMs carry the two attributes the
//! paper's evaluation needs: *where they run* (so enclave hosts know when
//! their machine changed under them) and *how big their memory is* (so
//! migration time can be modelled, per Nelson et al. \[10\]: "copying the
//! VM's entire memory between two machines can take in the order of
//! seconds").

use crate::network::LinkProfile;
use sgx_sim::machine::MachineId;
use std::time::Duration;

/// Identifies a VM in the world.
#[derive(Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord, Debug)]
pub struct VmId(pub u64);

impl std::fmt::Display for VmId {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "vm-{}", self.0)
    }
}

/// A guest VM: placement plus memory footprint.
#[derive(Clone, Debug)]
pub struct Vm {
    /// VM identifier.
    pub id: VmId,
    /// Machine currently hosting the VM.
    pub host: MachineId,
    /// Guest memory size in bytes (drives migration time).
    pub memory_bytes: u64,
}

/// Stop-and-copy downtime added on top of the memory transfer.
pub const MIGRATION_DOWNTIME: Duration = Duration::from_millis(50);

/// Models the duration of a live VM migration over `link`.
///
/// Live migration transfers the working set at least once; we model a
/// single full-memory copy plus a fixed stop-and-copy downtime, matching
/// the "order of seconds" the paper cites for datacenter VMs.
#[must_use]
pub fn vm_migration_time(vm: &Vm, link: &LinkProfile) -> Duration {
    link.transfer_time(vm.memory_bytes as usize) + MIGRATION_DOWNTIME
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn gigabyte_vm_migrates_in_seconds() {
        let vm = Vm {
            id: VmId(1),
            host: MachineId(1),
            memory_bytes: 4 << 30, // 4 GiB
        };
        let t = vm_migration_time(&vm, &LinkProfile::datacenter());
        // 4 GiB at 10 Gbit/s ≈ 3.4 s; the paper cites "order of seconds".
        assert!(t > Duration::from_secs(3), "got {t:?}");
        assert!(t < Duration::from_secs(5), "got {t:?}");
    }

    #[test]
    fn downtime_is_a_floor() {
        let vm = Vm {
            id: VmId(1),
            host: MachineId(1),
            memory_bytes: 0,
        };
        let t = vm_migration_time(&vm, &LinkProfile::datacenter());
        assert!(t >= MIGRATION_DOWNTIME);
    }
}
