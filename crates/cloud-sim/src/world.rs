//! The deterministic discrete-event world tying machines, VMs, the
//! network, and services together.
//!
//! Protocol engines (the Migration Enclave host, application hosts)
//! implement [`Service`] and are registered at an [`Endpoint`]. The world
//! pumps the network queue: each delivery advances the virtual clock,
//! passes through adversary taps, and invokes the destination service,
//! which may send further messages. `run_until_idle` drives the whole
//! exchange to quiescence — the simulator's equivalent of "wait for the
//! protocol to finish".

use crate::clock::{SimClock, SimTime};
use crate::disk::UntrustedDisk;
use crate::machine::{Machine, MachineLabels};
use crate::network::{Endpoint, Envelope, Network};
use crate::vm::{vm_migration_time, Vm, VmId};
use parking_lot::Mutex;
use rand::rngs::StdRng;
use rand::SeedableRng;
use sgx_sim::cost::CostModel;
use sgx_sim::ias::AttestationService;
use sgx_sim::machine::{MachineId, SgxMachine};
use std::collections::{BTreeMap, HashMap};
use std::sync::Arc;
use std::time::Duration;

/// A message-driven protocol engine (an untrusted host process).
pub trait Service: Send {
    /// Handles one delivered message. `net` allows sending replies and
    /// reading the clock.
    fn on_message(&mut self, net: &mut Network, from: &Endpoint, payload: &[u8]);
}

/// Safety valve: maximum deliveries per `run_until_idle` call.
const MAX_STEPS: usize = 1_000_000;

/// The simulated datacenter.
///
/// # Example
///
/// ```
/// use cloud_sim::machine::MachineLabels;
/// use cloud_sim::world::World;
///
/// let mut world = World::new(42);
/// let m1 = world.add_machine(MachineLabels::new("dc-1", "eu"));
/// let m2 = world.add_machine(MachineLabels::new("dc-1", "eu"));
/// assert_ne!(m1, m2);
/// assert_eq!(world.machine(m1).labels.datacenter, "dc-1");
/// ```
pub struct World {
    clock: SimClock,
    ias: AttestationService,
    machines: BTreeMap<MachineId, Machine>,
    vms: BTreeMap<VmId, Vm>,
    services: HashMap<Endpoint, Arc<Mutex<dyn Service>>>,
    network: Network,
    rng: StdRng,
    cost: Option<Arc<dyn CostModel>>,
    next_machine: u64,
    next_vm: u64,
    dead_letters: Vec<Envelope>,
}

impl std::fmt::Debug for World {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("World")
            .field("machines", &self.machines.len())
            .field("vms", &self.vms.len())
            .field("services", &self.services.len())
            .field("now", &self.clock.now())
            .finish_non_exhaustive()
    }
}

impl World {
    /// Creates a world with zero-latency platform firmware (tests).
    #[must_use]
    pub fn new(seed: u64) -> Self {
        Self::build(seed, None)
    }

    /// Creates a world whose machines use the given platform cost model.
    #[must_use]
    pub fn with_cost_model(seed: u64, cost: Arc<dyn CostModel>) -> Self {
        Self::build(seed, Some(cost))
    }

    fn build(seed: u64, cost: Option<Arc<dyn CostModel>>) -> Self {
        let mut rng = StdRng::seed_from_u64(seed);
        let clock = SimClock::new();
        let ias = AttestationService::new(&mut rng);
        World {
            network: Network::new(clock.clone()),
            clock,
            ias,
            machines: BTreeMap::new(),
            vms: BTreeMap::new(),
            services: HashMap::new(),
            rng,
            cost,
            next_machine: 1,
            next_vm: 1,
            dead_letters: Vec::new(),
        }
    }

    /// The world's attestation service (shared by all machines).
    #[must_use]
    pub fn ias(&self) -> &AttestationService {
        &self.ias
    }

    /// The shared virtual clock.
    #[must_use]
    pub fn clock(&self) -> SimClock {
        self.clock.clone()
    }

    /// Current virtual time.
    #[must_use]
    pub fn now(&self) -> SimTime {
        self.clock.now()
    }

    /// Provisions a new physical machine.
    pub fn add_machine(&mut self, labels: MachineLabels) -> MachineId {
        let id = MachineId(self.next_machine);
        self.next_machine += 1;
        let sgx = match &self.cost {
            Some(cost) => {
                SgxMachine::with_cost_model(id, &self.ias, Arc::clone(cost), &mut self.rng)
            }
            None => SgxMachine::new(id, &self.ias, &mut self.rng),
        };
        self.machines.insert(
            id,
            Machine {
                id,
                sgx,
                disk: UntrustedDisk::new(),
                labels,
            },
        );
        id
    }

    /// Looks up a machine.
    ///
    /// # Panics
    ///
    /// Panics if `id` was not created by this world — that is a test bug,
    /// not a runtime condition.
    #[must_use]
    pub fn machine(&self, id: MachineId) -> &Machine {
        self.machines.get(&id).expect("unknown machine id")
    }

    /// Iterates over all machines in id order.
    pub fn machines(&self) -> impl Iterator<Item = &Machine> {
        self.machines.values()
    }

    /// Boots a VM with `memory_bytes` of guest memory on `host`.
    pub fn create_vm(&mut self, host: MachineId, memory_bytes: u64) -> VmId {
        assert!(self.machines.contains_key(&host), "unknown host machine");
        let id = VmId(self.next_vm);
        self.next_vm += 1;
        self.vms.insert(
            id,
            Vm {
                id,
                host,
                memory_bytes,
            },
        );
        id
    }

    /// Looks up a VM.
    ///
    /// # Panics
    ///
    /// Panics on unknown ids (test bug).
    #[must_use]
    pub fn vm(&self, id: VmId) -> &Vm {
        self.vms.get(&id).expect("unknown vm id")
    }

    /// Migrates a VM to `dst`, advancing the clock by the modelled
    /// transfer time and returning it.
    ///
    /// The EPC is *not* copied (SGX-unaware migration): any enclaves the
    /// VM's applications were hosting on the source machine remain there,
    /// dead. Callers (the migration coordinator in `mig-core`) are
    /// responsible for re-creating enclaves on the destination.
    ///
    /// # Panics
    ///
    /// Panics on unknown VM or machine ids (test bug).
    pub fn migrate_vm(&mut self, vm_id: VmId, dst: MachineId) -> Duration {
        assert!(self.machines.contains_key(&dst), "unknown destination");
        let link = self.network.link();
        let vm = self.vms.get_mut(&vm_id).expect("unknown vm id");
        let duration = vm_migration_time(vm, &link);
        vm.host = dst;
        self.clock.advance(duration);
        duration
    }

    /// Registers a service at `endpoint`. The same `Arc` can be retained
    /// by the caller to drive the service directly (e.g. to initiate a
    /// migration).
    pub fn register_service(&mut self, endpoint: Endpoint, service: Arc<Mutex<dyn Service>>) {
        self.services.insert(endpoint, service);
    }

    /// Moves a service to a new endpoint (used after VM migration).
    ///
    /// Returns `true` if a service was present at `from`.
    pub fn move_service(&mut self, from: &Endpoint, to: Endpoint) -> bool {
        match self.services.remove(from) {
            Some(svc) => {
                self.services.insert(to, svc);
                true
            }
            None => false,
        }
    }

    /// Removes a service (e.g. the application process exited).
    pub fn unregister_service(&mut self, endpoint: &Endpoint) {
        self.services.remove(endpoint);
    }

    /// Sends a message into the world from an external party.
    pub fn send(&mut self, from: &Endpoint, to: &Endpoint, payload: Vec<u8>) {
        self.network.send(from, to, payload);
    }

    /// Mutable access to the network (taps, recording, link tuning).
    pub fn network_mut(&mut self) -> &mut Network {
        &mut self.network
    }

    /// Messages that arrived for endpoints with no registered service.
    #[must_use]
    pub fn dead_letters(&self) -> &[Envelope] {
        &self.dead_letters
    }

    /// Delivers a single message, if any is queued. Returns whether a
    /// message was consumed from the queue.
    pub fn step(&mut self) -> bool {
        if self.network.pending() == 0 {
            return false;
        }
        if let Some(envelope) = self.network.deliver_next() {
            match self.services.get(&envelope.to).cloned() {
                Some(service) => {
                    service
                        .lock()
                        .on_message(&mut self.network, &envelope.from, &envelope.payload);
                }
                None => self.dead_letters.push(envelope),
            }
            // Attribute any platform firmware latency incurred while
            // handling the message to the global clock.
            for machine in self.machines.values() {
                let t = machine.sgx.drain_virtual_time();
                if !t.is_zero() {
                    self.clock.advance(t);
                }
            }
        }
        true
    }

    /// Pumps the network until no messages remain, returning the number
    /// of queue pops performed.
    ///
    /// # Panics
    ///
    /// Panics after 1,000,000 deliveries — a protocol loop is a bug.
    pub fn run_until_idle(&mut self) -> usize {
        let mut steps = 0;
        while self.step() {
            steps += 1;
            assert!(
                steps < MAX_STEPS,
                "protocol livelock: {MAX_STEPS} deliveries"
            );
        }
        steps
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    /// Echo service: replies to every message with "echo:" + payload.
    struct Echo {
        me: Endpoint,
        received: Vec<Vec<u8>>,
    }

    impl Service for Echo {
        fn on_message(&mut self, net: &mut Network, from: &Endpoint, payload: &[u8]) {
            self.received.push(payload.to_vec());
            if !payload.starts_with(b"echo:") {
                let mut reply = b"echo:".to_vec();
                reply.extend_from_slice(payload);
                net.send(&self.me, from, reply);
            }
        }
    }

    #[test]
    fn request_reply_round_trip() {
        let mut world = World::new(1);
        let m1 = world.add_machine(MachineLabels::default());
        let m2 = world.add_machine(MachineLabels::default());
        let a = Endpoint::new(m1, "a");
        let b = Endpoint::new(m2, "b");

        let svc_a = Arc::new(Mutex::new(Echo {
            me: a.clone(),
            received: vec![],
        }));
        let svc_b = Arc::new(Mutex::new(Echo {
            me: b.clone(),
            received: vec![],
        }));
        world.register_service(a.clone(), svc_a.clone());
        world.register_service(b.clone(), svc_b.clone());

        world.send(&a, &b, b"ping".to_vec());
        let steps = world.run_until_idle();
        assert_eq!(steps, 2, "request + reply");
        assert_eq!(svc_b.lock().received, vec![b"ping".to_vec()]);
        assert_eq!(svc_a.lock().received, vec![b"echo:ping".to_vec()]);
        assert!(world.now() > SimTime::ZERO, "clock advanced");
    }

    #[test]
    fn unrouted_messages_become_dead_letters() {
        let mut world = World::new(1);
        let m1 = world.add_machine(MachineLabels::default());
        let from = Endpoint::new(m1, "x");
        let to = Endpoint::new(m1, "nobody");
        world.send(&from, &to, b"hello?".to_vec());
        world.run_until_idle();
        assert_eq!(world.dead_letters().len(), 1);
        assert_eq!(world.dead_letters()[0].payload, b"hello?");
    }

    #[test]
    fn vm_migration_moves_host_and_advances_clock() {
        let mut world = World::new(1);
        let m1 = world.add_machine(MachineLabels::default());
        let m2 = world.add_machine(MachineLabels::default());
        let vm = world.create_vm(m1, 1 << 30);
        assert_eq!(world.vm(vm).host, m1);

        let t0 = world.now();
        let duration = world.migrate_vm(vm, m2);
        assert_eq!(world.vm(vm).host, m2);
        assert!(
            duration > Duration::from_millis(800),
            "1 GiB over 10 Gbit/s"
        );
        assert_eq!(world.now().since(t0), duration);
    }

    #[test]
    fn move_service_relocates_endpoint() {
        let mut world = World::new(1);
        let m1 = world.add_machine(MachineLabels::default());
        let m2 = world.add_machine(MachineLabels::default());
        let old = Endpoint::new(m1, "app");
        let new = Endpoint::new(m2, "app");
        let svc = Arc::new(Mutex::new(Echo {
            me: new.clone(),
            received: vec![],
        }));
        world.register_service(old.clone(), svc.clone());
        assert!(world.move_service(&old, new.clone()));
        assert!(!world.move_service(&old, new.clone()), "already moved");

        let from = Endpoint::new(m1, "client");
        world.send(&from, &new, b"hi".to_vec());
        world.run_until_idle();
        assert_eq!(svc.lock().received.len(), 1);
    }

    #[test]
    fn deterministic_given_same_seed() {
        let run = |seed: u64| -> Vec<Vec<u8>> {
            let mut world = World::new(seed);
            let m1 = world.add_machine(MachineLabels::default());
            let a = Endpoint::new(m1, "a");
            let b = Endpoint::new(m1, "b");
            let svc = Arc::new(Mutex::new(Echo {
                me: b.clone(),
                received: vec![],
            }));
            world.register_service(b.clone(), svc.clone());
            for i in 0..10u8 {
                world.send(&a, &b, vec![i]);
            }
            world.run_until_idle();
            let out = svc.lock().received.clone();
            out
        };
        assert_eq!(run(7), run(7));
    }

    #[test]
    fn service_can_be_driven_externally_and_by_messages() {
        // The same Arc is usable by test code (direct lock) and the world.
        let mut world = World::new(1);
        let m1 = world.add_machine(MachineLabels::default());
        let ep = Endpoint::new(m1, "svc");
        let svc = Arc::new(Mutex::new(Echo {
            me: ep.clone(),
            received: vec![],
        }));
        world.register_service(ep.clone(), svc.clone());
        svc.lock().received.push(b"direct".to_vec());
        world.send(&Endpoint::new(m1, "ext"), &ep, b"via net".to_vec());
        world.run_until_idle();
        assert_eq!(svc.lock().received.len(), 2);
    }
}
