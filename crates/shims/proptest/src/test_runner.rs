//! Test-runner configuration, errors, and the deterministic RNG.

/// Per-`proptest!` configuration.
#[derive(Clone, Copy, Debug)]
pub struct ProptestConfig {
    /// Number of successful cases required.
    pub cases: u32,
}

impl ProptestConfig {
    /// Configuration running `cases` cases.
    #[must_use]
    pub fn with_cases(cases: u32) -> Self {
        ProptestConfig { cases }
    }
}

impl Default for ProptestConfig {
    fn default() -> Self {
        ProptestConfig { cases: 64 }
    }
}

/// Why a single case did not pass.
#[derive(Debug)]
pub enum TestCaseError {
    /// `prop_assume!` rejected the inputs; resample.
    Reject,
    /// `prop_assert*!` failed.
    Fail(String),
}

/// Deterministic per-test RNG (SplitMix64 seeded from the test name).
#[derive(Clone, Debug)]
pub struct TestRng {
    state: u64,
}

impl TestRng {
    /// Creates the RNG for the named test (FNV-1a over the name).
    #[must_use]
    pub fn for_test(name: &str) -> Self {
        let mut h: u64 = 0xcbf2_9ce4_8422_2325;
        for b in name.bytes() {
            h ^= u64::from(b);
            h = h.wrapping_mul(0x0000_0100_0000_01B3);
        }
        TestRng { state: h }
    }

    /// Next 64 random bits.
    pub fn next_u64(&mut self) -> u64 {
        self.state = self.state.wrapping_add(0x9E37_79B9_7F4A_7C15);
        let mut z = self.state;
        z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
        z ^ (z >> 31)
    }

    /// Uniform value in `0..bound` (`bound` must be non-zero).
    pub fn below(&mut self, bound: usize) -> usize {
        assert!(bound > 0, "below(0)");
        (self.next_u64() % bound as u64) as usize
    }
}
