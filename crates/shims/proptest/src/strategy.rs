//! Value-generation strategies.

use crate::test_runner::TestRng;

/// Generates values of an associated type from the test RNG.
pub trait Strategy {
    /// The generated type.
    type Value;

    /// Generates one value.
    fn generate(&self, rng: &mut TestRng) -> Self::Value;

    /// Maps generated values through `f`.
    fn prop_map<O, F>(self, f: F) -> Map<Self, F>
    where
        Self: Sized,
        F: Fn(Self::Value) -> O,
    {
        Map { inner: self, f }
    }

    /// Type-erases the strategy.
    fn boxed(self) -> BoxedStrategy<Self::Value>
    where
        Self: Sized + 'static,
    {
        BoxedStrategy(Box::new(move |rng| self.generate(rng)))
    }
}

/// A type-erased strategy.
pub struct BoxedStrategy<T>(Box<dyn Fn(&mut TestRng) -> T>);

impl<T> Strategy for BoxedStrategy<T> {
    type Value = T;
    fn generate(&self, rng: &mut TestRng) -> T {
        (self.0)(rng)
    }
}

/// Always generates a clone of the wrapped value.
#[derive(Clone, Debug)]
pub struct Just<T: Clone>(pub T);

impl<T: Clone> Strategy for Just<T> {
    type Value = T;
    fn generate(&self, _rng: &mut TestRng) -> T {
        self.0.clone()
    }
}

/// The [`Strategy::prop_map`] adapter.
pub struct Map<S, F> {
    inner: S,
    f: F,
}

impl<S, O, F> Strategy for Map<S, F>
where
    S: Strategy,
    F: Fn(S::Value) -> O,
{
    type Value = O;
    fn generate(&self, rng: &mut TestRng) -> O {
        (self.f)(self.inner.generate(rng))
    }
}

/// Weighted union of strategies (built by `prop_oneof!`).
pub struct Union<T> {
    arms: Vec<(u32, BoxedStrategy<T>)>,
    total: u64,
}

impl<T> Union<T> {
    /// Builds a union from weighted arms.
    ///
    /// # Panics
    ///
    /// Panics on an empty arm list or all-zero weights.
    #[must_use]
    pub fn new(arms: Vec<(u32, BoxedStrategy<T>)>) -> Self {
        let total = arms.iter().map(|(w, _)| u64::from(*w)).sum();
        assert!(total > 0, "prop_oneof needs a positive total weight");
        Union { arms, total }
    }
}

impl<T> Strategy for Union<T> {
    type Value = T;
    fn generate(&self, rng: &mut TestRng) -> T {
        let mut pick = rng.next_u64() % self.total;
        for (weight, strat) in &self.arms {
            if pick < u64::from(*weight) {
                return strat.generate(rng);
            }
            pick -= u64::from(*weight);
        }
        unreachable!("weights sum covered above")
    }
}

/// Produces any value of `T` (see [`Arbitrary`]).
#[must_use]
pub fn any<T: Arbitrary>() -> Any<T> {
    Any(std::marker::PhantomData)
}

/// The strategy returned by [`any`].
pub struct Any<T>(std::marker::PhantomData<T>);

impl<T: Arbitrary> Strategy for Any<T> {
    type Value = T;
    fn generate(&self, rng: &mut TestRng) -> T {
        T::arbitrary(rng)
    }
}

/// Types generatable by [`any`].
pub trait Arbitrary {
    /// Generates an arbitrary value.
    fn arbitrary(rng: &mut TestRng) -> Self;
}

macro_rules! impl_arbitrary_int {
    ($($t:ty),*) => {$(
        impl Arbitrary for $t {
            #[allow(clippy::cast_possible_truncation)]
            fn arbitrary(rng: &mut TestRng) -> Self {
                rng.next_u64() as $t
            }
        }
    )*};
}

impl_arbitrary_int!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

impl Arbitrary for bool {
    fn arbitrary(rng: &mut TestRng) -> Self {
        rng.next_u64() & 1 == 1
    }
}

impl<const N: usize> Arbitrary for [u8; N] {
    fn arbitrary(rng: &mut TestRng) -> Self {
        let mut out = [0u8; N];
        for chunk in out.chunks_mut(8) {
            let bytes = rng.next_u64().to_le_bytes();
            chunk.copy_from_slice(&bytes[..chunk.len()]);
        }
        out
    }
}

macro_rules! impl_range_strategy {
    ($($t:ty),*) => {$(
        impl Strategy for std::ops::Range<$t> {
            type Value = $t;
            fn generate(&self, rng: &mut TestRng) -> $t {
                assert!(self.start < self.end, "cannot sample empty range");
                let span = (self.end as u128).wrapping_sub(self.start as u128);
                self.start + ((rng.next_u64() as u128 % span) as $t)
            }
        }
        impl Strategy for std::ops::RangeInclusive<$t> {
            type Value = $t;
            fn generate(&self, rng: &mut TestRng) -> $t {
                let (start, end) = (*self.start(), *self.end());
                assert!(start <= end, "cannot sample empty range");
                let span = (end as u128) - (start as u128) + 1;
                start + ((rng.next_u64() as u128 % span) as $t)
            }
        }
    )*};
}

impl_range_strategy!(u8, u16, u32, u64, usize);

/// String strategy from a simplified regex: literal characters plus
/// `[a-z]`-style classes with optional `{m}` / `{m,n}` quantifiers —
/// the subset the workspace's tests use.
impl Strategy for &str {
    type Value = String;
    fn generate(&self, rng: &mut TestRng) -> String {
        generate_from_pattern(self, rng)
    }
}

fn generate_from_pattern(pattern: &str, rng: &mut TestRng) -> String {
    let chars: Vec<char> = pattern.chars().collect();
    let mut out = String::new();
    let mut i = 0;
    while i < chars.len() {
        let (choices, next) = if chars[i] == '[' {
            let close = chars[i..]
                .iter()
                .position(|c| *c == ']')
                .expect("unterminated char class")
                + i;
            let mut choices = Vec::new();
            let mut j = i + 1;
            while j < close {
                if j + 2 < close && chars[j + 1] == '-' {
                    let (lo, hi) = (chars[j] as u32, chars[j + 2] as u32);
                    for c in lo..=hi {
                        choices.push(char::from_u32(c).expect("ascii range"));
                    }
                    j += 3;
                } else {
                    choices.push(chars[j]);
                    j += 1;
                }
            }
            (choices, close + 1)
        } else {
            (vec![chars[i]], i + 1)
        };

        let (min, max, next) = if next < chars.len() && chars[next] == '{' {
            let close = chars[next..]
                .iter()
                .position(|c| *c == '}')
                .expect("unterminated quantifier")
                + next;
            let body: String = chars[next + 1..close].iter().collect();
            let (min, max) = match body.split_once(',') {
                Some((m, n)) => (
                    m.trim().parse().expect("quantifier min"),
                    n.trim().parse().expect("quantifier max"),
                ),
                None => {
                    let n: usize = body.trim().parse().expect("quantifier count");
                    (n, n)
                }
            };
            (min, max, close + 1)
        } else {
            (1, 1, next)
        };

        let count = min + rng.below(max - min + 1);
        for _ in 0..count {
            out.push(choices[rng.below(choices.len())]);
        }
        i = next;
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn ranges_and_any_stay_in_bounds() {
        let mut rng = TestRng::for_test("bounds");
        for _ in 0..500 {
            let v = (3u32..9).generate(&mut rng);
            assert!((3..9).contains(&v));
            let b: bool = any::<bool>().generate(&mut rng);
            let _ = b;
            let arr: [u8; 13] = any::<[u8; 13]>().generate(&mut rng);
            assert_eq!(arr.len(), 13);
        }
    }

    #[test]
    fn union_respects_weights_roughly() {
        let mut rng = TestRng::for_test("weights");
        let u = Union::new(vec![(9, Just(1u8).boxed()), (1, Just(2u8).boxed())]);
        let ones = (0..1000).filter(|_| u.generate(&mut rng) == 1).count();
        assert!(ones > 700, "{ones}");
    }

    #[test]
    fn pattern_strategy_matches_shape() {
        let mut rng = TestRng::for_test("pattern");
        for _ in 0..100 {
            let s = "[a-z]{1,12}".generate(&mut rng);
            assert!((1..=12).contains(&s.len()));
            assert!(s.chars().all(|c| c.is_ascii_lowercase()));
        }
        let lit = "ab{2}c".generate(&mut rng);
        assert_eq!(lit, "abbc");
    }
}
