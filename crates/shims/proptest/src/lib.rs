//! Offline shim for `proptest` covering the API surface this workspace
//! uses: the [`proptest!`] macro, [`strategy::Strategy`] with ranges /
//! [`strategy::Just`] /
//! `prop_map` / [`prop_oneof!`] / collections / simple `[a-z]{m,n}`
//! regex strategies, and the `prop_assert*!` / `prop_assume!` macros.
//!
//! Differences from real proptest: no shrinking (a failing case panics
//! with the deterministic per-test seed and case number so it can be
//! replayed by rerunning the test) and a smaller default case count.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod strategy;
pub mod test_runner;

/// Collection strategies (`vec`, `btree_set`).
pub mod collection {
    use crate::strategy::Strategy;
    use crate::test_runner::TestRng;
    use std::collections::BTreeSet;

    /// A size specification: an exact length or a half-open range.
    pub trait SizeRange {
        /// Samples a concrete size.
        fn sample(&self, rng: &mut TestRng) -> usize;
    }

    impl SizeRange for usize {
        fn sample(&self, _rng: &mut TestRng) -> usize {
            *self
        }
    }

    impl SizeRange for std::ops::Range<usize> {
        fn sample(&self, rng: &mut TestRng) -> usize {
            rng.below(self.end.saturating_sub(self.start).max(1)) + self.start
        }
    }

    /// Strategy producing `Vec`s of `element` with a sampled length.
    pub struct VecStrategy<S, L> {
        element: S,
        len: L,
    }

    /// Builds a [`VecStrategy`].
    pub fn vec<S: Strategy, L: SizeRange>(element: S, len: L) -> VecStrategy<S, L> {
        VecStrategy { element, len }
    }

    impl<S: Strategy, L: SizeRange> Strategy for VecStrategy<S, L> {
        type Value = Vec<S::Value>;
        fn generate(&self, rng: &mut TestRng) -> Self::Value {
            let n = self.len.sample(rng);
            (0..n).map(|_| self.element.generate(rng)).collect()
        }
    }

    /// Strategy producing `BTreeSet`s of `element` with a target size
    /// (best-effort: duplicates may make the set smaller).
    pub struct BTreeSetStrategy<S, L> {
        element: S,
        len: L,
    }

    /// Builds a [`BTreeSetStrategy`].
    pub fn btree_set<S, L>(element: S, len: L) -> BTreeSetStrategy<S, L>
    where
        S: Strategy,
        S::Value: Ord,
        L: SizeRange,
    {
        BTreeSetStrategy { element, len }
    }

    impl<S, L> Strategy for BTreeSetStrategy<S, L>
    where
        S: Strategy,
        S::Value: Ord,
        L: SizeRange,
    {
        type Value = BTreeSet<S::Value>;
        fn generate(&self, rng: &mut TestRng) -> Self::Value {
            let target = self.len.sample(rng);
            let mut set = BTreeSet::new();
            // Bounded attempts: a small element domain may not be able to
            // yield `target` distinct values.
            for _ in 0..target.saturating_mul(4).max(8) {
                if set.len() >= target {
                    break;
                }
                set.insert(self.element.generate(rng));
            }
            set
        }
    }

    /// Arbitrary values (re-export point mirroring proptest's layout).
    pub use crate::strategy::any;
}

/// Everything a test file needs.
pub mod prelude {
    pub use crate::strategy::{any, Just, Strategy};
    pub use crate::test_runner::ProptestConfig;
    pub use crate::{
        prop_assert, prop_assert_eq, prop_assert_ne, prop_assume, prop_oneof, proptest,
    };
}

/// Asserts a condition inside a proptest case.
#[macro_export]
macro_rules! prop_assert {
    ($cond:expr) => {
        $crate::prop_assert!($cond, "assertion failed: {}", stringify!($cond))
    };
    ($cond:expr, $($fmt:tt)*) => {
        if !$cond {
            return ::std::result::Result::Err($crate::test_runner::TestCaseError::Fail(
                format!($($fmt)*),
            ));
        }
    };
}

/// Asserts equality inside a proptest case.
#[macro_export]
macro_rules! prop_assert_eq {
    ($left:expr, $right:expr $(,)?) => {{
        let (left, right) = (&$left, &$right);
        $crate::prop_assert!(
            *left == *right,
            "assertion failed: `{} == {}`\n  left: {:?}\n right: {:?}",
            stringify!($left),
            stringify!($right),
            left,
            right
        );
    }};
}

/// Asserts inequality inside a proptest case.
#[macro_export]
macro_rules! prop_assert_ne {
    ($left:expr, $right:expr $(,)?) => {{
        let (left, right) = (&$left, &$right);
        $crate::prop_assert!(
            *left != *right,
            "assertion failed: `{} != {}`\n  both: {:?}",
            stringify!($left),
            stringify!($right),
            left
        );
    }};
}

/// Rejects the current case (resampled without counting towards the
/// case budget).
#[macro_export]
macro_rules! prop_assume {
    ($cond:expr) => {
        if !$cond {
            return ::std::result::Result::Err($crate::test_runner::TestCaseError::Reject);
        }
    };
}

/// Weighted (or unweighted) union of strategies.
#[macro_export]
macro_rules! prop_oneof {
    ($($weight:expr => $strat:expr),+ $(,)?) => {
        $crate::strategy::Union::new(vec![
            $(($weight as u32, $crate::strategy::Strategy::boxed($strat))),+
        ])
    };
    ($($strat:expr),+ $(,)?) => {
        $crate::strategy::Union::new(vec![
            $((1u32, $crate::strategy::Strategy::boxed($strat))),+
        ])
    };
}

/// Declares property-based tests.
#[macro_export]
macro_rules! proptest {
    (#![proptest_config($cfg:expr)] $($rest:tt)*) => {
        $crate::__proptest_impl!($cfg; $($rest)*);
    };
    ($($rest:tt)*) => {
        $crate::__proptest_impl!($crate::test_runner::ProptestConfig::default(); $($rest)*);
    };
}

/// Implementation detail of [`proptest!`].
#[doc(hidden)]
#[macro_export]
macro_rules! __proptest_impl {
    ($cfg:expr; $(
        $(#[$meta:meta])*
        fn $name:ident( $($arg:ident in $strat:expr),+ $(,)? ) $body:block
    )*) => {$(
        $(#[$meta])*
        fn $name() {
            let cfg: $crate::test_runner::ProptestConfig = $cfg;
            let mut rng = $crate::test_runner::TestRng::for_test(stringify!($name));
            let mut case: u32 = 0;
            let mut rejects: u32 = 0;
            while case < cfg.cases {
                $(let $arg = $crate::strategy::Strategy::generate(&$strat, &mut rng);)+
                let outcome: ::std::result::Result<(), $crate::test_runner::TestCaseError> =
                    (|| {
                        $body
                        #[allow(unreachable_code)]
                        ::std::result::Result::Ok(())
                    })();
                match outcome {
                    ::std::result::Result::Ok(()) => case += 1,
                    ::std::result::Result::Err(
                        $crate::test_runner::TestCaseError::Reject,
                    ) => {
                        rejects += 1;
                        assert!(
                            rejects < 10_000,
                            "{}: too many prop_assume rejections",
                            stringify!($name)
                        );
                    }
                    ::std::result::Result::Err(
                        $crate::test_runner::TestCaseError::Fail(msg),
                    ) => {
                        panic!(
                            "proptest {} failed at case {}: {}",
                            stringify!($name),
                            case,
                            msg
                        );
                    }
                }
            }
        }
    )*};
}
