//! Offline shim for the `rand` crate covering the API surface this
//! workspace uses: [`RngCore`], [`SeedableRng`], [`Rng::gen_range`], and
//! [`rngs::StdRng`]. The generator is xoshiro256++ seeded via SplitMix64
//! — deterministic, fast, and emphatically not cryptographic (the
//! simulator derives all secrets through `mig-crypto`, not through this
//! RNG's raw stream).

#![forbid(unsafe_code)]
#![warn(missing_docs)]

/// Core random-number-generator interface (mirror of `rand_core`).
pub trait RngCore {
    /// Returns the next 32 random bits.
    fn next_u32(&mut self) -> u32;
    /// Returns the next 64 random bits.
    fn next_u64(&mut self) -> u64;
    /// Fills `dest` with random bytes.
    fn fill_bytes(&mut self, dest: &mut [u8]);
}

impl<R: RngCore + ?Sized> RngCore for &mut R {
    fn next_u32(&mut self) -> u32 {
        (**self).next_u32()
    }
    fn next_u64(&mut self) -> u64 {
        (**self).next_u64()
    }
    fn fill_bytes(&mut self, dest: &mut [u8]) {
        (**self).fill_bytes(dest);
    }
}

/// Seedable construction (mirror of `rand_core::SeedableRng`).
pub trait SeedableRng: Sized {
    /// The fixed-size seed type.
    type Seed: Default + AsMut<[u8]>;

    /// Constructs the generator from a full seed.
    fn from_seed(seed: Self::Seed) -> Self;

    /// Constructs the generator from a `u64` via SplitMix64 expansion.
    fn seed_from_u64(mut state: u64) -> Self {
        let mut seed = Self::Seed::default();
        for chunk in seed.as_mut().chunks_mut(8) {
            let out = splitmix64(&mut state);
            let bytes = out.to_le_bytes();
            chunk.copy_from_slice(&bytes[..chunk.len()]);
        }
        Self::from_seed(seed)
    }
}

fn splitmix64(state: &mut u64) -> u64 {
    *state = state.wrapping_add(0x9E37_79B9_7F4A_7C15);
    let mut z = *state;
    z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    z ^ (z >> 31)
}

/// Extension methods over [`RngCore`] (mirror of `rand::Rng`).
pub trait Rng: RngCore {
    /// Samples a value uniformly from `range` (half-open).
    ///
    /// # Panics
    ///
    /// Panics on an empty range.
    fn gen_range<T, R>(&mut self, range: R) -> T
    where
        R: SampleRange<T>,
    {
        range.sample_single(self)
    }

    /// Returns `true` with probability `p`.
    ///
    /// # Panics
    ///
    /// Panics unless `0.0 <= p <= 1.0`.
    fn gen_bool(&mut self, p: f64) -> bool {
        assert!((0.0..=1.0).contains(&p), "probability out of range: {p}");
        // 53 uniform mantissa bits, the same resolution rand uses.
        let unit = (self.next_u64() >> 11) as f64 / (1u64 << 53) as f64;
        unit < p
    }
}

impl<R: RngCore + ?Sized> Rng for R {}

/// A range that can be sampled from (mirror of `rand::distributions`).
pub trait SampleRange<T> {
    /// Samples one value.
    fn sample_single<R: RngCore + ?Sized>(self, rng: &mut R) -> T;
}

macro_rules! impl_sample_range {
    ($($t:ty),*) => {$(
        impl SampleRange<$t> for core::ops::Range<$t> {
            fn sample_single<R: RngCore + ?Sized>(self, rng: &mut R) -> $t {
                assert!(self.start < self.end, "cannot sample empty range");
                let span = (self.end as u128).wrapping_sub(self.start as u128);
                let v = ((rng.next_u64() as u128) % span) as $t;
                self.start + v
            }
        }
        impl SampleRange<$t> for core::ops::RangeInclusive<$t> {
            fn sample_single<R: RngCore + ?Sized>(self, rng: &mut R) -> $t {
                let (start, end) = (*self.start(), *self.end());
                assert!(start <= end, "cannot sample empty range");
                let span = (end as u128) - (start as u128) + 1;
                let v = ((rng.next_u64() as u128) % span) as $t;
                start + v
            }
        }
    )*};
}

impl_sample_range!(u8, u16, u32, u64, usize);

/// Concrete generators.
pub mod rngs {
    use super::{RngCore, SeedableRng};

    /// The standard deterministic generator: xoshiro256++.
    #[derive(Clone, Debug)]
    pub struct StdRng {
        s: [u64; 4],
    }

    impl SeedableRng for StdRng {
        type Seed = [u8; 32];

        fn from_seed(seed: Self::Seed) -> Self {
            let mut s = [0u64; 4];
            for (i, word) in s.iter_mut().enumerate() {
                *word = u64::from_le_bytes(seed[i * 8..(i + 1) * 8].try_into().expect("8 bytes"));
            }
            // The all-zero state is a fixed point; nudge it.
            if s == [0; 4] {
                s[0] = 0x9E37_79B9_7F4A_7C15;
            }
            StdRng { s }
        }
    }

    impl RngCore for StdRng {
        fn next_u32(&mut self) -> u32 {
            (self.next_u64() >> 32) as u32
        }

        fn next_u64(&mut self) -> u64 {
            let s = &mut self.s;
            let result = s[0].wrapping_add(s[3]).rotate_left(23).wrapping_add(s[0]);
            let t = s[1] << 17;
            s[2] ^= s[0];
            s[3] ^= s[1];
            s[1] ^= s[2];
            s[0] ^= s[3];
            s[2] ^= t;
            s[3] = s[3].rotate_left(45);
            result
        }

        fn fill_bytes(&mut self, dest: &mut [u8]) {
            for chunk in dest.chunks_mut(8) {
                let bytes = self.next_u64().to_le_bytes();
                chunk.copy_from_slice(&bytes[..chunk.len()]);
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::rngs::StdRng;
    use super::{Rng, RngCore, SeedableRng};

    #[test]
    fn deterministic_for_same_seed() {
        let mut a = StdRng::seed_from_u64(7);
        let mut b = StdRng::seed_from_u64(7);
        for _ in 0..16 {
            assert_eq!(a.next_u64(), b.next_u64());
        }
        let mut c = StdRng::seed_from_u64(8);
        assert_ne!(a.next_u64(), c.next_u64());
    }

    #[test]
    fn fill_bytes_covers_partial_chunks() {
        let mut rng = StdRng::seed_from_u64(1);
        let mut buf = [0u8; 13];
        rng.fill_bytes(&mut buf);
        assert_ne!(buf, [0u8; 13]);
    }

    #[test]
    fn gen_range_stays_in_bounds() {
        let mut rng = StdRng::seed_from_u64(3);
        for _ in 0..1000 {
            let v: usize = rng.gen_range(3..17);
            assert!((3..17).contains(&v));
            let w: u8 = rng.gen_range(0..8);
            assert!(w < 8);
        }
    }
}
