//! Offline shim for `criterion` covering the API surface this workspace
//! uses: `criterion_group!` / `criterion_main!`, benchmark groups with
//! `sample_size` / `warm_up_time` / `measurement_time` / `throughput`,
//! and `Bencher::iter` / `iter_batched`.
//!
//! Statistics are deliberately simple — mean / min / max over
//! `sample_size` timed iterations after one warm-up iteration — printed
//! as one line per benchmark. No HTML reports, no regression analysis.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

use std::time::{Duration, Instant};

/// Prevents the compiler from optimizing a value away.
pub fn black_box<T>(x: T) -> T {
    std::hint::black_box(x)
}

/// How `iter_batched` amortizes setup cost.
#[derive(Clone, Copy, Debug)]
pub enum BatchSize {
    /// Fresh setup before every routine invocation.
    PerIteration,
    /// Setup shared across a small batch (treated as per-iteration here).
    SmallInput,
    /// Setup shared across a large batch (treated as per-iteration here).
    LargeInput,
}

/// Throughput annotation (recorded, printed alongside results).
#[derive(Clone, Copy, Debug)]
pub enum Throughput {
    /// Bytes processed per iteration.
    Bytes(u64),
    /// Elements processed per iteration.
    Elements(u64),
}

/// Per-benchmark timing driver.
pub struct Bencher {
    samples: Vec<Duration>,
    sample_size: usize,
}

impl Bencher {
    /// Times `routine` for the configured number of samples.
    pub fn iter<O>(&mut self, mut routine: impl FnMut() -> O) {
        let _ = black_box(routine()); // warm-up
        for _ in 0..self.sample_size {
            let start = Instant::now();
            let _ = black_box(routine());
            self.samples.push(start.elapsed());
        }
    }

    /// Times `routine` with a fresh `setup` input per invocation; only
    /// the routine is timed.
    pub fn iter_batched<I, O>(
        &mut self,
        mut setup: impl FnMut() -> I,
        mut routine: impl FnMut(I) -> O,
        _size: BatchSize,
    ) {
        let _ = black_box(routine(setup())); // warm-up
        for _ in 0..self.sample_size {
            let input = setup();
            let start = Instant::now();
            let _ = black_box(routine(input));
            self.samples.push(start.elapsed());
        }
    }
}

fn report(group: &str, name: &str, samples: &[Duration], throughput: Option<Throughput>) {
    if samples.is_empty() {
        println!("{group}/{name}: no samples");
        return;
    }
    let total: Duration = samples.iter().sum();
    let mean = total / samples.len() as u32;
    let min = samples.iter().min().expect("non-empty");
    let max = samples.iter().max().expect("non-empty");
    let rate = match throughput {
        Some(Throughput::Bytes(b)) if !mean.is_zero() => {
            let mbps = b as f64 / mean.as_secs_f64() / 1e6;
            format!("  {mbps:>10.1} MB/s")
        }
        Some(Throughput::Elements(e)) if !mean.is_zero() => {
            let eps = e as f64 / mean.as_secs_f64();
            format!("  {eps:>10.0} elem/s")
        }
        _ => String::new(),
    };
    println!(
        "{group}/{name}: mean {mean:>12.3?}  min {min:>12.3?}  max {max:>12.3?}  ({} samples){rate}",
        samples.len()
    );
}

/// A named set of related benchmarks.
pub struct BenchmarkGroup<'a> {
    name: String,
    sample_size: usize,
    throughput: Option<Throughput>,
    _criterion: &'a mut Criterion,
}

impl BenchmarkGroup<'_> {
    /// Sets the number of timed samples per benchmark.
    pub fn sample_size(&mut self, n: usize) -> &mut Self {
        self.sample_size = n.max(1);
        self
    }

    /// Accepted for API compatibility; the shim ignores warm-up budgets.
    pub fn warm_up_time(&mut self, _d: Duration) -> &mut Self {
        self
    }

    /// Accepted for API compatibility; the shim times exactly
    /// `sample_size` iterations instead of a wall-clock budget.
    pub fn measurement_time(&mut self, _d: Duration) -> &mut Self {
        self
    }

    /// Annotates subsequent benchmarks with a throughput.
    pub fn throughput(&mut self, t: Throughput) -> &mut Self {
        self.throughput = Some(t);
        self
    }

    /// Runs one benchmark.
    pub fn bench_function<S: Into<String>>(
        &mut self,
        name: S,
        f: impl FnOnce(&mut Bencher),
    ) -> &mut Self {
        let mut bencher = Bencher {
            samples: Vec::new(),
            sample_size: self.sample_size,
        };
        f(&mut bencher);
        report(&self.name, &name.into(), &bencher.samples, self.throughput);
        self
    }

    /// Ends the group.
    pub fn finish(&mut self) {}
}

/// Top-level benchmark context.
#[derive(Default)]
pub struct Criterion {}

impl Criterion {
    /// Opens a named benchmark group.
    pub fn benchmark_group(&mut self, name: impl Into<String>) -> BenchmarkGroup<'_> {
        let name = name.into();
        println!("== {name}");
        BenchmarkGroup {
            name,
            sample_size: 10,
            throughput: None,
            _criterion: self,
        }
    }

    /// Runs one stand-alone benchmark.
    pub fn bench_function(
        &mut self,
        name: impl Into<String>,
        f: impl FnOnce(&mut Bencher),
    ) -> &mut Self {
        let mut bencher = Bencher {
            samples: Vec::new(),
            sample_size: 10,
        };
        f(&mut bencher);
        report("bench", &name.into(), &bencher.samples, None);
        self
    }
}

/// Declares a group-runner function calling each benchmark function.
#[macro_export]
macro_rules! criterion_group {
    ($name:ident, $($target:path),+ $(,)?) => {
        pub fn $name() {
            let mut criterion = $crate::Criterion::default();
            $($target(&mut criterion);)+
        }
    };
}

/// Declares `main` running the listed groups.
#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            $($group();)+
        }
    };
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn bench_group_runs_functions() {
        let mut c = Criterion::default();
        let mut group = c.benchmark_group("shim");
        let mut runs = 0;
        group
            .sample_size(3)
            .throughput(Throughput::Bytes(128))
            .bench_function("iter", |b| b.iter(|| runs += 1));
        assert_eq!(runs, 4, "1 warm-up + 3 samples");
        group.bench_function("batched", |b| {
            b.iter_batched(|| 2u32, |x| x * 2, BatchSize::PerIteration)
        });
        group.finish();
    }
}
