//! Offline shim for `parking_lot`: a [`Mutex`] over `std::sync::Mutex`
//! whose `lock()` never returns a poison error (a panicked holder simply
//! passes the data on, matching parking_lot semantics).

#![forbid(unsafe_code)]
#![warn(missing_docs)]

use std::sync::PoisonError;

/// A mutual-exclusion primitive (non-poisoning `lock`).
#[derive(Default)]
pub struct Mutex<T: ?Sized> {
    inner: std::sync::Mutex<T>,
}

/// Guard returned by [`Mutex::lock`].
pub type MutexGuard<'a, T> = std::sync::MutexGuard<'a, T>;

impl<T> Mutex<T> {
    /// Creates a mutex protecting `value`.
    pub fn new(value: T) -> Self {
        Mutex {
            inner: std::sync::Mutex::new(value),
        }
    }

    /// Consumes the mutex, returning the protected value.
    pub fn into_inner(self) -> T {
        self.inner
            .into_inner()
            .unwrap_or_else(PoisonError::into_inner)
    }
}

impl<T: ?Sized> Mutex<T> {
    /// Acquires the lock, blocking until available.
    pub fn lock(&self) -> MutexGuard<'_, T> {
        self.inner.lock().unwrap_or_else(PoisonError::into_inner)
    }

    /// Attempts to acquire the lock without blocking.
    pub fn try_lock(&self) -> Option<MutexGuard<'_, T>> {
        match self.inner.try_lock() {
            Ok(guard) => Some(guard),
            Err(std::sync::TryLockError::Poisoned(e)) => Some(e.into_inner()),
            Err(std::sync::TryLockError::WouldBlock) => None,
        }
    }

    /// Mutable access without locking (requires exclusive access).
    pub fn get_mut(&mut self) -> &mut T {
        self.inner.get_mut().unwrap_or_else(PoisonError::into_inner)
    }
}

impl<T: ?Sized + std::fmt::Debug> std::fmt::Debug for Mutex<T> {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self.try_lock() {
            Some(guard) => f.debug_struct("Mutex").field("data", &&*guard).finish(),
            None => f.debug_struct("Mutex").field("data", &"<locked>").finish(),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::Mutex;
    use std::sync::Arc;

    #[test]
    fn lock_round_trip() {
        let m = Mutex::new(1);
        *m.lock() += 1;
        assert_eq!(*m.lock(), 2);
        assert_eq!(m.into_inner(), 2);
    }

    #[test]
    fn unsizes_to_trait_object() {
        trait Speak {
            fn speak(&self) -> &'static str;
        }
        struct Dog;
        impl Speak for Dog {
            fn speak(&self) -> &'static str {
                "woof"
            }
        }
        let concrete: Arc<Mutex<Dog>> = Arc::new(Mutex::new(Dog));
        let dyn_obj: Arc<Mutex<dyn Speak>> = concrete;
        assert_eq!(dyn_obj.lock().speak(), "woof");
    }

    #[test]
    fn poisoned_lock_recovers() {
        let m = Arc::new(Mutex::new(0));
        let m2 = Arc::clone(&m);
        let _ = std::thread::spawn(move || {
            let _guard = m2.lock();
            panic!("poison it");
        })
        .join();
        assert_eq!(*m.lock(), 0);
    }
}
