//! Minimal explicit binary codec used for every on-the-wire and
//! MAC-/signature-covered structure in the workspace.
//!
//! A security protocol wants a deterministic, length-prefixed, explicit
//! encoding — not a general serialization framework — so structures encode
//! themselves field by field through [`WireWriter`] and decode through
//! [`WireReader`]. All integers are little-endian; variable-length byte
//! strings carry a `u32` length prefix.

use crate::error::SgxError;

/// Builds a byte buffer field by field.
///
/// # Example
///
/// ```
/// use sgx_sim::wire::{WireReader, WireWriter};
///
/// let mut w = WireWriter::new();
/// w.u32(7).bytes(b"payload");
/// let buf = w.finish();
///
/// let mut r = WireReader::new(&buf);
/// assert_eq!(r.u32().unwrap(), 7);
/// assert_eq!(r.bytes().unwrap(), b"payload");
/// assert!(r.finish().is_ok());
/// ```
#[derive(Debug, Default)]
pub struct WireWriter {
    buf: Vec<u8>,
}

impl WireWriter {
    /// Creates an empty writer.
    #[must_use]
    pub fn new() -> Self {
        WireWriter { buf: Vec::new() }
    }

    /// Creates an empty writer with `capacity` bytes pre-reserved, for
    /// encoders that know the final frame length up front (batch
    /// containers, padded cells) and want a single allocation.
    #[must_use]
    pub fn with_capacity(capacity: usize) -> Self {
        WireWriter {
            buf: Vec::with_capacity(capacity),
        }
    }

    /// Appends a single byte.
    pub fn u8(&mut self, v: u8) -> &mut Self {
        self.buf.push(v);
        self
    }

    /// Appends a little-endian u32.
    pub fn u32(&mut self, v: u32) -> &mut Self {
        self.buf.extend_from_slice(&v.to_le_bytes());
        self
    }

    /// Appends a little-endian u64.
    pub fn u64(&mut self, v: u64) -> &mut Self {
        self.buf.extend_from_slice(&v.to_le_bytes());
        self
    }

    /// Appends a length-prefixed byte string (`u32` length).
    pub fn bytes(&mut self, v: &[u8]) -> &mut Self {
        self.u32(u32::try_from(v.len()).expect("wire byte strings are < 4 GiB"));
        self.buf.extend_from_slice(v);
        self
    }

    /// Appends a fixed-size array *without* a length prefix.
    pub fn array<const N: usize>(&mut self, v: &[u8; N]) -> &mut Self {
        self.buf.extend_from_slice(v);
        self
    }

    /// Returns the encoded buffer.
    #[must_use]
    pub fn finish(self) -> Vec<u8> {
        self.buf
    }

    /// Current encoded length in bytes.
    #[must_use]
    pub fn len(&self) -> usize {
        self.buf.len()
    }

    /// Whether nothing has been written yet.
    #[must_use]
    pub fn is_empty(&self) -> bool {
        self.buf.is_empty()
    }
}

/// Reads a byte buffer field by field, validating lengths.
#[derive(Debug)]
pub struct WireReader<'a> {
    buf: &'a [u8],
    pos: usize,
}

impl<'a> WireReader<'a> {
    /// Creates a reader over `buf`.
    #[must_use]
    pub fn new(buf: &'a [u8]) -> Self {
        WireReader { buf, pos: 0 }
    }

    fn take(&mut self, n: usize) -> Result<&'a [u8], SgxError> {
        if self.buf.len() - self.pos < n {
            return Err(SgxError::Decode);
        }
        let slice = &self.buf[self.pos..self.pos + n];
        self.pos += n;
        Ok(slice)
    }

    /// Reads a single byte.
    ///
    /// # Errors
    ///
    /// Returns [`SgxError::Decode`] on underflow.
    pub fn u8(&mut self) -> Result<u8, SgxError> {
        Ok(self.take(1)?[0])
    }

    /// Reads a little-endian u32.
    ///
    /// # Errors
    ///
    /// Returns [`SgxError::Decode`] on underflow.
    pub fn u32(&mut self) -> Result<u32, SgxError> {
        Ok(u32::from_le_bytes(
            self.take(4)?.try_into().expect("4 bytes"),
        ))
    }

    /// Reads a little-endian u64.
    ///
    /// # Errors
    ///
    /// Returns [`SgxError::Decode`] on underflow.
    pub fn u64(&mut self) -> Result<u64, SgxError> {
        Ok(u64::from_le_bytes(
            self.take(8)?.try_into().expect("8 bytes"),
        ))
    }

    /// Reads a length-prefixed byte string.
    ///
    /// # Errors
    ///
    /// Returns [`SgxError::Decode`] on underflow or an oversized length.
    pub fn bytes(&mut self) -> Result<&'a [u8], SgxError> {
        let len = self.u32()? as usize;
        self.take(len)
    }

    /// Reads a length-prefixed byte string into an owned vector.
    ///
    /// # Errors
    ///
    /// Returns [`SgxError::Decode`] on underflow.
    pub fn bytes_vec(&mut self) -> Result<Vec<u8>, SgxError> {
        Ok(self.bytes()?.to_vec())
    }

    /// Reads a fixed-size array (no length prefix).
    ///
    /// # Errors
    ///
    /// Returns [`SgxError::Decode`] on underflow.
    pub fn array<const N: usize>(&mut self) -> Result<[u8; N], SgxError> {
        Ok(self.take(N)?.try_into().expect("N bytes"))
    }

    /// Number of unread bytes.
    #[must_use]
    pub fn remaining(&self) -> usize {
        self.buf.len() - self.pos
    }

    /// Asserts that the entire buffer was consumed.
    ///
    /// # Errors
    ///
    /// Returns [`SgxError::Decode`] if trailing bytes remain — trailing
    /// garbage in a protocol message is always a decode error here.
    pub fn finish(self) -> Result<(), SgxError> {
        if self.remaining() == 0 {
            Ok(())
        } else {
            Err(SgxError::Decode)
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn round_trip_all_field_kinds() {
        let mut w = WireWriter::new();
        w.u8(0xAB)
            .u32(0xDEAD_BEEF)
            .u64(0x0123_4567_89AB_CDEF)
            .bytes(b"hello")
            .array(&[9u8; 16]);
        let buf = w.finish();

        let mut r = WireReader::new(&buf);
        assert_eq!(r.u8().unwrap(), 0xAB);
        assert_eq!(r.u32().unwrap(), 0xDEAD_BEEF);
        assert_eq!(r.u64().unwrap(), 0x0123_4567_89AB_CDEF);
        assert_eq!(r.bytes().unwrap(), b"hello");
        assert_eq!(r.array::<16>().unwrap(), [9u8; 16]);
        r.finish().unwrap();
    }

    #[test]
    fn empty_byte_string() {
        let mut w = WireWriter::new();
        w.bytes(b"");
        let buf = w.finish();
        let mut r = WireReader::new(&buf);
        assert_eq!(r.bytes().unwrap(), b"");
        r.finish().unwrap();
    }

    #[test]
    fn underflow_is_decode_error() {
        let mut r = WireReader::new(&[1, 2]);
        assert_eq!(r.u32().unwrap_err(), SgxError::Decode);
    }

    #[test]
    fn oversized_length_prefix_is_decode_error() {
        let mut w = WireWriter::new();
        w.u32(1000); // claims 1000 bytes follow
        let buf = w.finish();
        let mut r = WireReader::new(&buf);
        assert_eq!(r.bytes().unwrap_err(), SgxError::Decode);
    }

    #[test]
    fn trailing_bytes_rejected_by_finish() {
        let mut w = WireWriter::new();
        w.u8(1).u8(2);
        let buf = w.finish();
        let mut r = WireReader::new(&buf);
        let _ = r.u8().unwrap();
        assert_eq!(r.finish().unwrap_err(), SgxError::Decode);
    }

    #[test]
    fn writer_len_tracks_content() {
        let mut w = WireWriter::new();
        assert!(w.is_empty());
        w.u32(0);
        assert_eq!(w.len(), 4);
        w.bytes(b"ab");
        assert_eq!(w.len(), 4 + 4 + 2);
    }
}
