//! Local-attestation Diffie–Hellman sessions (the SDK's `sgx_dh` API).
//!
//! Two enclaves **on the same machine** establish a mutually attested
//! secure channel: X25519 public keys are exchanged inside reports whose
//! MACs only verify on the local platform, so a successful handshake
//! proves the peer is a genuine enclave on this machine with the identity
//! carried in its report — the foundation of the Migration Library ↔
//! Migration Enclave channel (paper §V-B/V-C).
//!
//! Message flow (as in the SDK):
//!
//! ```text
//! initiator                         responder
//!     |  <------- Msg1 (g_a, target)    |
//!     |  Msg2 (g_b, report_i) ------->  |
//!     |  <------- Msg3 (report_r)       |
//! both derive AEK = KDF(shared, g_a, g_b)
//! ```
//!
//! All messages travel over *untrusted* channels; the reports bind the DH
//! public keys, so tampering is detected.

use crate::enclave::EnclaveEnv;
use crate::error::SgxError;
use crate::measurement::{EnclaveIdentity, MrEnclave};
use crate::report::{Report, ReportData, TargetInfo};
use crate::wire::{WireReader, WireWriter};
use mig_crypto::hkdf::hkdf;
use mig_crypto::sha256::Sha256;
use mig_crypto::x25519::{PublicKey, StaticSecret};

/// The 128-bit attested session key both sides derive.
pub type SessionKey = [u8; 16];

/// Msg1: responder → initiator. Carries the responder's ephemeral public
/// key and target info (so the initiator can report *to* the responder).
#[derive(Clone, Debug)]
pub struct DhMsg1 {
    /// Responder's ephemeral X25519 public key.
    pub g_a: PublicKey,
    /// The responder's measurement, as report target info.
    pub responder: TargetInfo,
}

impl DhMsg1 {
    /// Serializes for untrusted transport.
    #[must_use]
    pub fn to_bytes(&self) -> Vec<u8> {
        let mut w = WireWriter::new();
        w.array(&self.g_a.0).array(&self.responder.mr_enclave.0);
        w.finish()
    }

    /// Parses from bytes.
    ///
    /// # Errors
    ///
    /// [`SgxError::Decode`] on malformed input.
    pub fn from_bytes(bytes: &[u8]) -> Result<Self, SgxError> {
        let mut r = WireReader::new(bytes);
        let g_a = PublicKey(r.array()?);
        let responder = TargetInfo {
            mr_enclave: MrEnclave(r.array()?),
        };
        r.finish()?;
        Ok(DhMsg1 { g_a, responder })
    }
}

/// Msg2: initiator → responder. Carries the initiator's ephemeral key and
/// a report (targeted at the responder) binding both keys.
#[derive(Clone, Debug)]
pub struct DhMsg2 {
    /// Initiator's ephemeral X25519 public key.
    pub g_b: PublicKey,
    /// Initiator's report; `report_data = H("msg2", g_b, g_a)`.
    pub report: Report,
}

impl DhMsg2 {
    /// Serializes for untrusted transport.
    #[must_use]
    pub fn to_bytes(&self) -> Vec<u8> {
        let mut w = WireWriter::new();
        w.array(&self.g_b.0);
        self.report.encode(&mut w);
        w.finish()
    }

    /// Parses from bytes.
    ///
    /// # Errors
    ///
    /// [`SgxError::Decode`] on malformed input.
    pub fn from_bytes(bytes: &[u8]) -> Result<Self, SgxError> {
        let mut r = WireReader::new(bytes);
        let g_b = PublicKey(r.array()?);
        let report = Report::decode(&mut r)?;
        r.finish()?;
        Ok(DhMsg2 { g_b, report })
    }
}

/// Msg3: responder → initiator. The responder's report closing the mutual
/// attestation; `report_data = H("msg3", g_a, g_b)`.
#[derive(Clone, Debug)]
pub struct DhMsg3 {
    /// Responder's report, targeted at the initiator.
    pub report: Report,
}

impl DhMsg3 {
    /// Serializes for untrusted transport.
    #[must_use]
    pub fn to_bytes(&self) -> Vec<u8> {
        let mut w = WireWriter::new();
        self.report.encode(&mut w);
        w.finish()
    }

    /// Parses from bytes.
    ///
    /// # Errors
    ///
    /// [`SgxError::Decode`] on malformed input.
    pub fn from_bytes(bytes: &[u8]) -> Result<Self, SgxError> {
        let mut r = WireReader::new(bytes);
        let report = Report::decode(&mut r)?;
        r.finish()?;
        Ok(DhMsg3 { report })
    }
}

fn binding_hash(label: &[u8], first: &PublicKey, second: &PublicKey) -> [u8; 32] {
    let mut h = Sha256::new();
    h.update(b"sgx-sim.dh.");
    h.update(label);
    h.update(&first.0);
    h.update(&second.0);
    h.finalize()
}

fn derive_aek(shared: &[u8; 32], g_a: &PublicKey, g_b: &PublicKey) -> SessionKey {
    let mut info = Vec::with_capacity(70);
    info.extend_from_slice(b"sgx-sim.dh.aek");
    info.extend_from_slice(&g_a.0);
    info.extend_from_slice(&g_b.0);
    hkdf::<16>(b"", shared, &info)
}

/// Responder side of a local-attestation DH session.
#[derive(Debug)]
pub struct DhResponder {
    secret: StaticSecret,
    g_a: PublicKey,
}

impl DhResponder {
    /// Starts a session, producing Msg1.
    pub fn start(env: &mut EnclaveEnv<'_>) -> (DhResponder, DhMsg1) {
        let mut seed = [0u8; 32];
        env.random_bytes(&mut seed);
        let secret = StaticSecret::from_bytes(seed);
        let g_a = secret.public_key();
        let msg1 = DhMsg1 {
            g_a,
            responder: TargetInfo {
                mr_enclave: env.identity().mr_enclave,
            },
        };
        (DhResponder { secret, g_a }, msg1)
    }

    /// Processes Msg2, producing Msg3, the session key, and the
    /// authenticated initiator identity.
    ///
    /// # Errors
    ///
    /// [`SgxError::ReportMacMismatch`] if the initiator's report does not
    /// verify on this machine or does not bind the session keys.
    pub fn process_msg2(
        self,
        env: &mut EnclaveEnv<'_>,
        msg2: &DhMsg2,
    ) -> Result<(DhMsg3, SessionKey, EnclaveIdentity), SgxError> {
        let body = env.verify_report(&msg2.report)?;
        let expected = binding_hash(b"msg2", &msg2.g_b, &self.g_a);
        if body.report_data.hash_prefix() != expected {
            return Err(SgxError::ReportMacMismatch);
        }
        let initiator_identity = body.identity;

        let report = env.ereport(
            &TargetInfo {
                mr_enclave: initiator_identity.mr_enclave,
            },
            &ReportData::from_hash(&binding_hash(b"msg3", &self.g_a, &msg2.g_b)),
        );
        let shared = self.secret.diffie_hellman(&msg2.g_b);
        let aek = derive_aek(&shared, &self.g_a, &msg2.g_b);
        Ok((DhMsg3 { report }, aek, initiator_identity))
    }
}

/// Initiator side of a local-attestation DH session.
#[derive(Debug)]
pub struct DhInitiator {
    secret: StaticSecret,
    g_a: PublicKey,
    g_b: PublicKey,
}

impl DhInitiator {
    /// Processes Msg1, producing Msg2.
    pub fn start(env: &mut EnclaveEnv<'_>, msg1: &DhMsg1) -> (DhInitiator, DhMsg2) {
        let mut seed = [0u8; 32];
        env.random_bytes(&mut seed);
        let secret = StaticSecret::from_bytes(seed);
        let g_b = secret.public_key();
        let report = env.ereport(
            &msg1.responder,
            &ReportData::from_hash(&binding_hash(b"msg2", &g_b, &msg1.g_a)),
        );
        (
            DhInitiator {
                secret,
                g_a: msg1.g_a,
                g_b,
            },
            DhMsg2 { g_b, report },
        )
    }

    /// Processes Msg3, completing the handshake.
    ///
    /// # Errors
    ///
    /// [`SgxError::ReportMacMismatch`] if the responder's report does not
    /// verify on this machine or does not bind the session keys.
    pub fn process_msg3(
        self,
        env: &mut EnclaveEnv<'_>,
        msg3: &DhMsg3,
    ) -> Result<(SessionKey, EnclaveIdentity), SgxError> {
        let body = env.verify_report(&msg3.report)?;
        let expected = binding_hash(b"msg3", &self.g_a, &self.g_b);
        if body.report_data.hash_prefix() != expected {
            return Err(SgxError::ReportMacMismatch);
        }
        let shared = self.secret.diffie_hellman(&self.g_a);
        let aek = derive_aek(&shared, &self.g_a, &self.g_b);
        Ok((aek, body.identity))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::enclave::EnclaveCode;
    use crate::ias::AttestationService;
    use crate::machine::{MachineId, SgxMachine};
    use crate::measurement::{EnclaveImage, EnclaveSigner};
    use parking_lot::Mutex;
    use rand::rngs::StdRng;
    use rand::SeedableRng;
    use std::sync::Arc;

    /// Test enclave that can play either DH role, driven by opcodes.
    #[derive(Default)]
    struct DhEnclave {
        responder: Option<DhResponder>,
        initiator: Option<DhInitiator>,
        result: Arc<Mutex<Option<(SessionKey, EnclaveIdentity)>>>,
    }

    const OP_START_RESPONDER: u32 = 1;
    const OP_START_INITIATOR: u32 = 2; // input: msg1
    const OP_PROC_MSG2: u32 = 3; // input: msg2, output: msg3
    const OP_PROC_MSG3: u32 = 4; // input: msg3

    impl EnclaveCode for DhEnclave {
        fn ecall(
            &mut self,
            env: &mut EnclaveEnv<'_>,
            opcode: u32,
            input: &[u8],
        ) -> Result<Vec<u8>, SgxError> {
            match opcode {
                OP_START_RESPONDER => {
                    let (responder, msg1) = DhResponder::start(env);
                    self.responder = Some(responder);
                    Ok(msg1.to_bytes())
                }
                OP_START_INITIATOR => {
                    let msg1 = DhMsg1::from_bytes(input)?;
                    let (initiator, msg2) = DhInitiator::start(env, &msg1);
                    self.initiator = Some(initiator);
                    Ok(msg2.to_bytes())
                }
                OP_PROC_MSG2 => {
                    let msg2 = DhMsg2::from_bytes(input)?;
                    let responder = self
                        .responder
                        .take()
                        .ok_or(SgxError::SessionState("no responder"))?;
                    let (msg3, key, peer) = responder.process_msg2(env, &msg2)?;
                    *self.result.lock() = Some((key, peer));
                    Ok(msg3.to_bytes())
                }
                OP_PROC_MSG3 => {
                    let msg3 = DhMsg3::from_bytes(input)?;
                    let initiator = self
                        .initiator
                        .take()
                        .ok_or(SgxError::SessionState("no initiator"))?;
                    let (key, peer) = initiator.process_msg3(env, &msg3)?;
                    *self.result.lock() = Some((key, peer));
                    Ok(vec![])
                }
                _ => Err(SgxError::InvalidParameter("opcode")),
            }
        }
    }

    struct World {
        m1: SgxMachine,
        m2: SgxMachine,
        img_a: EnclaveImage,
        img_b: EnclaveImage,
    }

    fn world() -> World {
        let mut rng = StdRng::seed_from_u64(21);
        let ias = AttestationService::new(&mut rng);
        let m1 = SgxMachine::new(MachineId(1), &ias, &mut rng);
        let m2 = SgxMachine::new(MachineId(2), &ias, &mut rng);
        let signer = EnclaveSigner::from_seed([1; 32]);
        let img_a = EnclaveImage::build("dh-a", 1, b"a", &signer);
        let img_b = EnclaveImage::build("dh-b", 1, b"b", &signer);
        World {
            m1,
            m2,
            img_a,
            img_b,
        }
    }

    #[test]
    fn handshake_on_same_machine_succeeds_and_agrees() {
        let w = world();
        let res_result = Arc::new(Mutex::new(None));
        let init_result = Arc::new(Mutex::new(None));
        let responder =
            w.m1.load_enclave(
                &w.img_a,
                Box::new(DhEnclave {
                    result: Arc::clone(&res_result),
                    ..Default::default()
                }),
            )
            .unwrap();
        let initiator =
            w.m1.load_enclave(
                &w.img_b,
                Box::new(DhEnclave {
                    result: Arc::clone(&init_result),
                    ..Default::default()
                }),
            )
            .unwrap();

        // Untrusted relay of the three messages.
        let msg1 = responder.ecall(OP_START_RESPONDER, b"").unwrap();
        let msg2 = initiator.ecall(OP_START_INITIATOR, &msg1).unwrap();
        let msg3 = responder.ecall(OP_PROC_MSG2, &msg2).unwrap();
        initiator.ecall(OP_PROC_MSG3, &msg3).unwrap();

        let (key_r, peer_r) = res_result.lock().take().unwrap();
        let (key_i, peer_i) = init_result.lock().take().unwrap();
        assert_eq!(key_r, key_i, "both sides derive the same AEK");
        assert_eq!(peer_r.mr_enclave, w.img_b.mr_enclave());
        assert_eq!(peer_i.mr_enclave, w.img_a.mr_enclave());
    }

    #[test]
    fn handshake_across_machines_fails() {
        let w = world();
        let responder =
            w.m1.load_enclave(&w.img_a, Box::<DhEnclave>::default())
                .unwrap();
        // Initiator on a DIFFERENT machine: its report can't verify on m1.
        let initiator =
            w.m2.load_enclave(&w.img_b, Box::<DhEnclave>::default())
                .unwrap();

        let msg1 = responder.ecall(OP_START_RESPONDER, b"").unwrap();
        let msg2 = initiator.ecall(OP_START_INITIATOR, &msg1).unwrap();
        assert_eq!(
            responder.ecall(OP_PROC_MSG2, &msg2).unwrap_err(),
            SgxError::ReportMacMismatch
        );
    }

    #[test]
    fn tampered_dh_public_key_detected() {
        let w = world();
        let responder =
            w.m1.load_enclave(&w.img_a, Box::<DhEnclave>::default())
                .unwrap();
        let initiator =
            w.m1.load_enclave(&w.img_b, Box::<DhEnclave>::default())
                .unwrap();

        let msg1 = responder.ecall(OP_START_RESPONDER, b"").unwrap();
        let mut msg2 = initiator.ecall(OP_START_INITIATOR, &msg1).unwrap();
        msg2[0] ^= 1; // MITM swaps a key byte
        assert_eq!(
            responder.ecall(OP_PROC_MSG2, &msg2).unwrap_err(),
            SgxError::ReportMacMismatch
        );
    }

    #[test]
    fn replayed_msg3_from_other_session_detected() {
        let w = world();
        // Session 1 between A and B, completed.
        let resp1 =
            w.m1.load_enclave(&w.img_a, Box::<DhEnclave>::default())
                .unwrap();
        let init1 =
            w.m1.load_enclave(&w.img_b, Box::<DhEnclave>::default())
                .unwrap();
        let msg1 = resp1.ecall(OP_START_RESPONDER, b"").unwrap();
        let msg2 = init1.ecall(OP_START_INITIATOR, &msg1).unwrap();
        let msg3_session1 = resp1.ecall(OP_PROC_MSG2, &msg2).unwrap();

        // Session 2: adversary replays session 1's msg3.
        let resp2 =
            w.m1.load_enclave(&w.img_a, Box::<DhEnclave>::default())
                .unwrap();
        let init2 =
            w.m1.load_enclave(&w.img_b, Box::<DhEnclave>::default())
                .unwrap();
        let msg1b = resp2.ecall(OP_START_RESPONDER, b"").unwrap();
        let _msg2b = init2.ecall(OP_START_INITIATOR, &msg1b).unwrap();
        assert_eq!(
            init2.ecall(OP_PROC_MSG3, &msg3_session1).unwrap_err(),
            SgxError::ReportMacMismatch
        );
    }

    #[test]
    fn message_encodings_round_trip() {
        let w = world();
        let responder =
            w.m1.load_enclave(&w.img_a, Box::<DhEnclave>::default())
                .unwrap();
        let msg1_bytes = responder.ecall(OP_START_RESPONDER, b"").unwrap();
        let msg1 = DhMsg1::from_bytes(&msg1_bytes).unwrap();
        assert_eq!(msg1.to_bytes(), msg1_bytes);
        assert!(DhMsg1::from_bytes(&msg1_bytes[..10]).is_err());
    }
}
