//! The Quoting Enclave and EPID-style quotes.
//!
//! For remote attestation (§II-A6) an enclave produces a report targeted at
//! the platform's Quoting Enclave (QE); the QE converts it into a *quote*
//! authenticated with the platform's EPID group credential, and the Intel
//! Attestation Service ([`crate::ias`]) verifies the quote for remote
//! parties.
//!
//! The EPID group *signature scheme* is modelled, not re-implemented: the
//! QE authenticates quotes with a MAC under the group secret shared with
//! the attestation service, which preserves exactly the properties the
//! migration protocol consumes — quotes are unforgeable without platform
//! credentials, bind (identity, report data, platform), and are revocable.
//! EPID's signer *anonymity* is irrelevant to the protocol and out of
//! scope (see DESIGN.md §2).

use crate::error::SgxError;
use crate::measurement::{measure, MrEnclave};
use crate::report::ReportBody;
use crate::wire::{WireReader, WireWriter};
use mig_crypto::hmac::HmacSha256;
use std::sync::OnceLock;

/// The simulated Quoting Enclave's measurement (identical on every
/// machine, like the real architectural enclave).
#[must_use]
pub fn qe_mr_enclave() -> MrEnclave {
    static QE: OnceLock<MrEnclave> = OnceLock::new();
    *QE.get_or_init(|| measure("sgx-sim.quoting-enclave", 1, b"architectural enclave"))
}

/// An attestation quote: a report body countersigned with the platform's
/// EPID group credential.
#[derive(Clone, PartialEq, Eq, Debug)]
pub struct Quote {
    /// The attested enclave's report body.
    pub body: ReportBody,
    /// Pseudonymous platform identifier (used for revocation).
    pub platform_id: [u8; 16],
    /// Group-credential MAC over body and platform id.
    pub mac: [u8; 32],
}

impl Quote {
    /// Serializes the quote for transport.
    #[must_use]
    pub fn to_bytes(&self) -> Vec<u8> {
        let mut w = WireWriter::new();
        self.body.encode(&mut w);
        w.array(&self.platform_id).array(&self.mac);
        w.finish()
    }

    /// Parses a quote.
    ///
    /// # Errors
    ///
    /// Returns [`SgxError::Decode`] on malformed input.
    pub fn from_bytes(bytes: &[u8]) -> Result<Self, SgxError> {
        let mut r = WireReader::new(bytes);
        let body = ReportBody::decode(&mut r)?;
        let platform_id: [u8; 16] = r.array()?;
        let mac: [u8; 32] = r.array()?;
        r.finish()?;
        Ok(Quote {
            body,
            platform_id,
            mac,
        })
    }

    fn mac_input(body: &ReportBody, platform_id: &[u8; 16]) -> Vec<u8> {
        let mut w = WireWriter::new();
        w.array(b"sgx-sim.quote.v1");
        body.encode(&mut w);
        w.array(platform_id);
        w.finish()
    }
}

/// Signs a report body into a quote (QE-side).
pub(crate) fn generate(group_secret: &[u8; 32], platform_id: [u8; 16], body: ReportBody) -> Quote {
    let mac = HmacSha256::mac(group_secret, &Quote::mac_input(&body, &platform_id));
    Quote {
        body,
        platform_id,
        mac,
    }
}

/// Verifies a quote's group MAC (IAS-side).
pub(crate) fn verify_mac(group_secret: &[u8; 32], quote: &Quote) -> bool {
    HmacSha256::verify(
        group_secret,
        &Quote::mac_input(&quote.body, &quote.platform_id),
        &quote.mac,
    )
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::measurement::{EnclaveIdentity, MrSigner};
    use crate::report::ReportData;

    fn body() -> ReportBody {
        ReportBody {
            identity: EnclaveIdentity {
                mr_enclave: MrEnclave([1; 32]),
                mr_signer: MrSigner([2; 32]),
            },
            report_data: ReportData::from_hash(&[3; 32]),
        }
    }

    #[test]
    fn qe_measurement_is_stable() {
        assert_eq!(qe_mr_enclave(), qe_mr_enclave());
    }

    #[test]
    fn quote_generate_verify_round_trip() {
        let secret = [9u8; 32];
        let quote = generate(&secret, [4; 16], body());
        assert!(verify_mac(&secret, &quote));
    }

    #[test]
    fn quote_rejects_wrong_group_secret() {
        let quote = generate(&[9u8; 32], [4; 16], body());
        assert!(!verify_mac(&[8u8; 32], &quote));
    }

    #[test]
    fn quote_binds_platform_id_and_body() {
        let secret = [9u8; 32];
        let mut quote = generate(&secret, [4; 16], body());
        quote.platform_id[0] ^= 1;
        assert!(!verify_mac(&secret, &quote));

        let mut quote = generate(&secret, [4; 16], body());
        quote.body.report_data = ReportData::from_hash(&[7; 32]);
        assert!(!verify_mac(&secret, &quote));
    }

    #[test]
    fn quote_bytes_round_trip() {
        let quote = generate(&[9u8; 32], [4; 16], body());
        let parsed = Quote::from_bytes(&quote.to_bytes()).unwrap();
        assert_eq!(parsed, quote);
        assert!(Quote::from_bytes(&quote.to_bytes()[..10]).is_err());
    }
}
