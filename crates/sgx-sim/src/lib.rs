//! A software simulator of Intel SGX, faithful to the properties that
//! *Migrating SGX Enclaves with Persistent State* (Alder et al., DSN 2018)
//! builds on.
//!
//! No SGX hardware, Intel Management Engine, or Intel Attestation Service
//! is available in this environment, so this crate rebuilds the platform
//! in software (DESIGN.md §2 documents each substitution):
//!
//! * [`measurement`] — enclave images, MRENCLAVE/MRSIGNER, launch control;
//! * [`cpu`] — per-machine CPU secrets and `EGETKEY` key derivation;
//! * [`enclave`] — the ECALL boundary, in-enclave platform view
//!   ([`enclave::EnclaveEnv`]), and enclave lifecycle;
//! * [`seal`] — machine-bound sealing (`sgx_seal_data`), AES-128-GCM;
//! * [`report`] / [`dh`] — local attestation and attested DH channels;
//! * [`counters`] — Platform Services monotonic counters with UUID nonces
//!   and destroy-is-forever semantics;
//! * [`quote`] / [`ias`] — the Quoting Enclave, EPID-modelled quotes, and
//!   a simulated Intel Attestation Service with revocation;
//! * [`machine`] — a physical machine tying the above together;
//! * [`cost`] — latency models for the Intel firmware (used by benches);
//! * [`wire`] — the explicit binary codec shared by all protocol structs.
//!
//! # The properties that matter
//!
//! The migration paper's attacks and defences rest on four platform facts,
//! all reproduced here and locked in by tests:
//!
//! 1. sealing keys are machine- and identity-specific ([`cpu::egetkey`]);
//! 2. monotonic counters are machine-local, monotonic, and a destroyed
//!    counter UUID can never be revived ([`counters::CounterStore`]);
//! 3. local attestation only verifies on the producing machine
//!    ([`report`], [`dh`]);
//! 4. remote attestation proves identity + genuineness to remote parties,
//!    with revocation ([`quote`], [`ias`]).
//!
//! # Example: sealing is machine-bound
//!
//! ```
//! use rand::SeedableRng;
//! use sgx_sim::enclave::{EnclaveCode, EnclaveEnv};
//! use sgx_sim::cpu::KeyPolicy;
//! use sgx_sim::error::SgxError;
//! use sgx_sim::ias::AttestationService;
//! use sgx_sim::machine::{MachineId, SgxMachine};
//! use sgx_sim::measurement::{EnclaveImage, EnclaveSigner};
//!
//! struct Sealer;
//! impl EnclaveCode for Sealer {
//!     fn ecall(&mut self, env: &mut EnclaveEnv<'_>, op: u32, input: &[u8])
//!         -> Result<Vec<u8>, SgxError>
//!     {
//!         match op {
//!             0 => Ok(env.seal_data(KeyPolicy::MrEnclave, b"", input)),
//!             _ => env.unseal_data(input).map(|(pt, _)| pt),
//!         }
//!     }
//! }
//!
//! let mut rng = rand::rngs::StdRng::seed_from_u64(1);
//! let ias = AttestationService::new(&mut rng);
//! let m1 = SgxMachine::new(MachineId(1), &ias, &mut rng);
//! let m2 = SgxMachine::new(MachineId(2), &ias, &mut rng);
//! let image = EnclaveImage::build("sealer", 1, b"code", &EnclaveSigner::from_seed([7; 32]));
//!
//! let e1 = m1.load_enclave(&image, Box::new(Sealer)).unwrap();
//! let e2 = m2.load_enclave(&image, Box::new(Sealer)).unwrap();
//! let blob = e1.ecall(0, b"secret").unwrap();
//! assert_eq!(e1.ecall(1, &blob).unwrap(), b"secret");      // same machine: ok
//! assert!(e2.ecall(1, &blob).is_err());                    // other machine: fails
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod cost;
pub mod counters;
pub mod cpu;
pub mod dh;
pub mod enclave;
pub mod error;
pub mod ias;
pub mod machine;
pub mod measurement;
pub mod quote;
pub mod report;
pub mod seal;
pub mod wire;

pub use error::SgxError;
