//! Enclave identities: MRENCLAVE, MRSIGNER, and the enclave image whose
//! measurement produces them.
//!
//! Loading an enclave hashes each page of its image (the simulator's
//! analogue of `EADD`/`EEXTEND`), producing a **deterministic, machine
//! independent** MRENCLAVE: the same image measures identically on every
//! machine. That property is what the paper's Migration Enclave uses to
//! guarantee that migration data is only delivered to "an enclave that
//! attests with exactly the same version as the source enclave" (§VI-A).

use crate::error::SgxError;
use crate::wire::{WireReader, WireWriter};
use mig_crypto::ed25519::{Signature, SigningKey, VerifyingKey};
use mig_crypto::sha256::{sha256, Sha256};

/// Page size used when measuring enclave images.
pub const PAGE_SIZE: usize = 4096;

/// The enclave identity: hash of the measured image (SGX `MRENCLAVE`).
#[derive(Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct MrEnclave(pub [u8; 32]);

impl std::fmt::Debug for MrEnclave {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "MrEnclave({}..)", mig_crypto::hex_encode(&self.0[..6]))
    }
}

impl std::fmt::Display for MrEnclave {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "{}", mig_crypto::hex_encode(&self.0))
    }
}

impl AsRef<[u8]> for MrEnclave {
    fn as_ref(&self) -> &[u8] {
        &self.0
    }
}

/// The signing identity: hash of the enclave developer's public key
/// (SGX `MRSIGNER`).
#[derive(Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct MrSigner(pub [u8; 32]);

impl std::fmt::Debug for MrSigner {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "MrSigner({}..)", mig_crypto::hex_encode(&self.0[..6]))
    }
}

impl AsRef<[u8]> for MrSigner {
    fn as_ref(&self) -> &[u8] {
        &self.0
    }
}

/// The pair of identities carried in reports and quotes.
#[derive(Clone, Copy, PartialEq, Eq, Hash, Debug)]
pub struct EnclaveIdentity {
    /// Measurement of the enclave image.
    pub mr_enclave: MrEnclave,
    /// Hash of the developer's signing key.
    pub mr_signer: MrSigner,
}

impl EnclaveIdentity {
    pub(crate) fn encode(&self, w: &mut WireWriter) {
        w.array(&self.mr_enclave.0).array(&self.mr_signer.0);
    }

    pub(crate) fn decode(r: &mut WireReader<'_>) -> Result<Self, SgxError> {
        Ok(EnclaveIdentity {
            mr_enclave: MrEnclave(r.array()?),
            mr_signer: MrSigner(r.array()?),
        })
    }
}

/// An enclave developer's signing key (the key behind `MRSIGNER`).
///
/// # Example
///
/// ```
/// use sgx_sim::measurement::{EnclaveImage, EnclaveSigner};
/// use rand::SeedableRng;
///
/// let mut rng = rand::rngs::StdRng::seed_from_u64(1);
/// let signer = EnclaveSigner::random(&mut rng);
/// let image = EnclaveImage::build("my-enclave", 1, b"code bytes", &signer);
/// assert_eq!(image.mr_signer(), signer.mr_signer());
/// ```
#[derive(Clone)]
pub struct EnclaveSigner {
    key: SigningKey,
}

impl std::fmt::Debug for EnclaveSigner {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("EnclaveSigner")
            .field("mr_signer", &self.mr_signer())
            .finish_non_exhaustive()
    }
}

impl EnclaveSigner {
    /// Samples a fresh signing key.
    #[must_use]
    pub fn random(rng: &mut impl rand::RngCore) -> Self {
        EnclaveSigner {
            key: SigningKey::random(rng),
        }
    }

    /// Deterministic signer from a seed (useful in tests).
    #[must_use]
    pub fn from_seed(seed: [u8; 32]) -> Self {
        EnclaveSigner {
            key: SigningKey::from_seed(seed),
        }
    }

    /// The MRSIGNER value all images signed by this key will carry.
    #[must_use]
    pub fn mr_signer(&self) -> MrSigner {
        MrSigner(sha256(&self.key.verifying_key().0))
    }

    fn sign_measurement(&self, mr_enclave: &MrEnclave) -> (VerifyingKey, Signature) {
        (self.key.verifying_key(), self.key.sign(&mr_enclave.0))
    }
}

/// A measurable enclave image: named code identity plus version and
/// signer, with a SIGSTRUCT-style signature over the measurement.
///
/// The image is pure data; the same image loaded on any simulated machine
/// yields the same MRENCLAVE.
#[derive(Clone, Debug)]
pub struct EnclaveImage {
    name: String,
    version: u32,
    mr_enclave: MrEnclave,
    signer_key: VerifyingKey,
    signature: Signature,
}

impl EnclaveImage {
    /// Measures `code` (split into [`PAGE_SIZE`] pages and extended page by
    /// page, like `EADD`/`EEXTEND`) and signs the measurement.
    #[must_use]
    pub fn build(name: &str, version: u32, code: &[u8], signer: &EnclaveSigner) -> Self {
        let mr_enclave = measure(name, version, code);
        let (signer_key, signature) = signer.sign_measurement(&mr_enclave);
        EnclaveImage {
            name: name.to_string(),
            version,
            mr_enclave,
            signer_key,
            signature,
        }
    }

    /// Human-readable image name; folded into the measurement (see
    /// [`measure`]), so renaming an image changes its MRENCLAVE.
    #[must_use]
    pub fn name(&self) -> &str {
        &self.name
    }

    /// Image version, also folded into the measurement.
    #[must_use]
    pub fn version(&self) -> u32 {
        self.version
    }

    /// The image's MRENCLAVE.
    #[must_use]
    pub fn mr_enclave(&self) -> MrEnclave {
        self.mr_enclave
    }

    /// The image's MRSIGNER (hash of the signer public key).
    #[must_use]
    pub fn mr_signer(&self) -> MrSigner {
        MrSigner(sha256(&self.signer_key.0))
    }

    /// Both identities as carried in reports.
    #[must_use]
    pub fn identity(&self) -> EnclaveIdentity {
        EnclaveIdentity {
            mr_enclave: self.mr_enclave(),
            mr_signer: self.mr_signer(),
        }
    }

    /// Verifies the SIGSTRUCT-style launch signature.
    ///
    /// # Errors
    ///
    /// Returns [`SgxError::LaunchControlFailed`] if the signature over the
    /// measurement does not verify under the embedded signer key.
    pub fn verify_launch_signature(&self) -> Result<(), SgxError> {
        self.signer_key
            .verify(&self.mr_enclave.0, &self.signature)
            .map_err(|_| SgxError::LaunchControlFailed)
    }
}

/// Computes the MRENCLAVE of a (name, version, code) triple.
///
/// The code bytes are split into 4 KiB pages; each page contributes
/// `sha256(page_index || page)` to a running extend hash, mimicking the
/// `EEXTEND` measurement discipline. Name and version participate so that
/// different builds measure differently, as in real SIGSTRUCT metadata.
#[must_use]
pub fn measure(name: &str, version: u32, code: &[u8]) -> MrEnclave {
    let mut h = Sha256::new();
    h.update(b"sgx-sim.ecreate.v1");
    h.update(&(name.len() as u64).to_le_bytes());
    h.update(name.as_bytes());
    h.update(&version.to_le_bytes());
    for (index, page) in code.chunks(PAGE_SIZE).enumerate() {
        let mut padded = [0u8; PAGE_SIZE];
        padded[..page.len()].copy_from_slice(page);
        let mut page_hash = Sha256::new();
        page_hash.update(&(index as u64).to_le_bytes());
        page_hash.update(&padded);
        h.update(&page_hash.finalize());
    }
    MrEnclave(h.finalize())
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::SeedableRng;

    fn signer() -> EnclaveSigner {
        EnclaveSigner::from_seed([1u8; 32])
    }

    #[test]
    fn measurement_is_deterministic() {
        let a = measure("enclave", 1, b"code");
        let b = measure("enclave", 1, b"code");
        assert_eq!(a, b);
    }

    #[test]
    fn measurement_depends_on_every_input() {
        let base = measure("enclave", 1, b"code");
        assert_ne!(base, measure("enclave2", 1, b"code"));
        assert_ne!(base, measure("enclave", 2, b"code"));
        assert_ne!(base, measure("enclave", 1, b"code!"));
    }

    #[test]
    fn measurement_distinguishes_page_boundaries() {
        // Same bytes, shifted across a page boundary, must differ.
        let mut a = vec![0u8; PAGE_SIZE];
        a.push(1);
        let mut b = vec![0u8; PAGE_SIZE - 1];
        b.push(1);
        b.push(0);
        assert_ne!(measure("e", 1, &a), measure("e", 1, &b));
    }

    #[test]
    fn image_identity_is_machine_independent() {
        let s = signer();
        let img1 = EnclaveImage::build("enclave", 3, b"the same code", &s);
        let img2 = EnclaveImage::build("enclave", 3, b"the same code", &s);
        assert_eq!(img1.mr_enclave(), img2.mr_enclave());
        assert_eq!(img1.mr_signer(), img2.mr_signer());
    }

    #[test]
    fn different_signers_same_mrenclave_different_mrsigner() {
        let mut rng = rand::rngs::StdRng::seed_from_u64(2);
        let s1 = EnclaveSigner::random(&mut rng);
        let s2 = EnclaveSigner::random(&mut rng);
        let img1 = EnclaveImage::build("enclave", 1, b"code", &s1);
        let img2 = EnclaveImage::build("enclave", 1, b"code", &s2);
        assert_eq!(img1.mr_enclave(), img2.mr_enclave());
        assert_ne!(img1.mr_signer().0, img2.mr_signer().0);
    }

    #[test]
    fn launch_signature_verifies() {
        let img = EnclaveImage::build("enclave", 1, b"code", &signer());
        img.verify_launch_signature().unwrap();
    }

    #[test]
    fn identity_encode_decode_round_trip() {
        let img = EnclaveImage::build("enclave", 1, b"code", &signer());
        let mut w = WireWriter::new();
        img.identity().encode(&mut w);
        let buf = w.finish();
        let mut r = WireReader::new(&buf);
        let id = EnclaveIdentity::decode(&mut r).unwrap();
        r.finish().unwrap();
        assert_eq!(id, img.identity());
    }
}
