//! Error type shared by the simulated SGX platform.

use std::error::Error;
use std::fmt;

/// Errors surfaced by the simulated SGX platform, mirroring the SGX SDK's
/// `sgx_status_t` failure codes that the migration paper's protocol relies
/// on (e.g. `SGX_ERROR_MC_NOT_FOUND` when a destroyed monotonic counter is
/// accessed — the paper's §V-C fork-attack defence hinges on that error).
#[derive(Debug, Clone, PartialEq, Eq)]
#[non_exhaustive]
pub enum SgxError {
    /// A parameter failed validation (SDK: `SGX_ERROR_INVALID_PARAMETER`).
    InvalidParameter(&'static str),
    /// MAC verification failed while unsealing (SDK: `SGX_ERROR_MAC_MISMATCH`).
    MacMismatch,
    /// A monotonic counter UUID does not exist — either never created or
    /// already destroyed (SDK: `SGX_ERROR_MC_NOT_FOUND`).
    CounterNotFound,
    /// The per-enclave monotonic counter quota (256) is exhausted
    /// (SDK: `SGX_ERROR_MC_OVER_QUOTA`).
    CounterQuotaExceeded,
    /// A counter would overflow `u32::MAX` if incremented.
    CounterOverflow,
    /// The enclave was destroyed (power event, VM migration, or explicit
    /// close) and can no longer service ECALLs (SDK: `SGX_ERROR_ENCLAVE_LOST`).
    EnclaveLost,
    /// A local-attestation report MAC did not verify.
    ReportMacMismatch,
    /// A quote's EPID group signature did not verify, or the platform is
    /// revoked.
    QuoteVerificationFailed,
    /// The launch-control signature over an enclave image did not verify.
    LaunchControlFailed,
    /// A byte buffer could not be decoded as the expected structure.
    Decode,
    /// An attestation session was driven out of order.
    SessionState(&'static str),
    /// Application-enclave-level failure propagated through the ECALL ABI.
    Enclave(String),
}

impl fmt::Display for SgxError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            SgxError::InvalidParameter(what) => write!(f, "invalid parameter: {what}"),
            SgxError::MacMismatch => write!(f, "sealed data MAC mismatch"),
            SgxError::CounterNotFound => write!(f, "monotonic counter not found"),
            SgxError::CounterQuotaExceeded => {
                write!(f, "monotonic counter quota (256) exceeded")
            }
            SgxError::CounterOverflow => write!(f, "monotonic counter would overflow"),
            SgxError::EnclaveLost => write!(f, "enclave lost"),
            SgxError::ReportMacMismatch => write!(f, "report MAC mismatch"),
            SgxError::QuoteVerificationFailed => write!(f, "quote verification failed"),
            SgxError::LaunchControlFailed => write!(f, "enclave launch control failed"),
            SgxError::Decode => write!(f, "malformed encoded structure"),
            SgxError::SessionState(what) => write!(f, "attestation session state: {what}"),
            SgxError::Enclave(msg) => write!(f, "enclave error: {msg}"),
        }
    }
}

impl Error for SgxError {}

impl From<mig_crypto::CryptoError> for SgxError {
    fn from(e: mig_crypto::CryptoError) -> Self {
        match e {
            mig_crypto::CryptoError::AuthenticationFailed => SgxError::MacMismatch,
            _ => SgxError::Decode,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_messages_nonempty() {
        let all = [
            SgxError::InvalidParameter("x"),
            SgxError::MacMismatch,
            SgxError::CounterNotFound,
            SgxError::CounterQuotaExceeded,
            SgxError::CounterOverflow,
            SgxError::EnclaveLost,
            SgxError::ReportMacMismatch,
            SgxError::QuoteVerificationFailed,
            SgxError::LaunchControlFailed,
            SgxError::Decode,
            SgxError::SessionState("x"),
            SgxError::Enclave("boom".into()),
        ];
        for e in all {
            assert!(!e.to_string().is_empty());
        }
    }

    #[test]
    fn crypto_auth_failure_maps_to_mac_mismatch() {
        let e: SgxError = mig_crypto::CryptoError::AuthenticationFailed.into();
        assert_eq!(e, SgxError::MacMismatch);
        let e: SgxError = mig_crypto::CryptoError::InvalidLength.into();
        assert_eq!(e, SgxError::Decode);
    }

    #[test]
    fn error_is_send_sync() {
        fn assert_send_sync<T: Send + Sync>() {}
        assert_send_sync::<SgxError>();
    }
}
