//! Platform Services monotonic counters.
//!
//! Models the Intel Platform Software counter facility the paper builds on
//! (§II-A5): up to 256 counters per enclave identity, each identified by a
//! *counter UUID* = (slot id, nonce). The nonce makes destroyed counters
//! permanently inaccessible: a new counter in the same slot receives a
//! fresh nonce, so *"it is not possible to destroy a counter and create a
//! new one with the same identifier but lower value on the same physical
//! machine"*. Counters live in per-machine NVRAM: they survive enclave
//! restarts and power cycles but never move between machines — which is
//! the root cause of the paper's fork/roll-back attacks.

use crate::error::SgxError;
use crate::measurement::MrEnclave;
use crate::wire::{WireReader, WireWriter};
use std::collections::HashMap;

/// Maximum number of live counters per enclave identity (SGX limit).
pub const COUNTER_QUOTA: usize = 256;

/// A monotonic counter UUID: slot id plus an unforgeable access nonce.
///
/// The paper (§II-A5): "Intel Platform Software assigns it a counter UUID
/// which consists of a counter ID and a nonce."
#[derive(Clone, Copy, PartialEq, Eq, Hash, Debug)]
pub struct CounterUuid {
    /// Slot index (0..256).
    pub slot: u8,
    /// Random per-creation nonce; required for any subsequent access.
    pub nonce: [u8; 8],
}

impl CounterUuid {
    /// Encodes into a wire writer (9 bytes).
    pub fn encode(&self, w: &mut WireWriter) {
        w.u8(self.slot).array(&self.nonce);
    }

    /// Decodes from a wire reader.
    ///
    /// # Errors
    ///
    /// Returns [`SgxError::Decode`] on underflow.
    pub fn decode(r: &mut WireReader<'_>) -> Result<Self, SgxError> {
        Ok(CounterUuid {
            slot: r.u8()?,
            nonce: r.array()?,
        })
    }
}

#[derive(Clone, Debug)]
struct CounterRecord {
    nonce: [u8; 8],
    value: u32,
}

/// All counters of one enclave identity on one machine.
#[derive(Clone, Debug, Default)]
struct EnclaveCounters {
    slots: HashMap<u8, CounterRecord>,
}

/// The per-machine NVRAM counter store.
///
/// Owned by the machine, keyed by enclave identity (MRENCLAVE): the nonce
/// check enforces that only the creating enclave identity can access a
/// counter, as the Platform Services guarantee.
#[derive(Debug, Default)]
pub struct CounterStore {
    by_enclave: HashMap<MrEnclave, EnclaveCounters>,
}

impl CounterStore {
    /// Creates an empty store (a machine with fresh NVRAM).
    #[must_use]
    pub fn new() -> Self {
        CounterStore::default()
    }

    /// Creates a counter for `owner`, initialized to zero.
    ///
    /// # Errors
    ///
    /// Returns [`SgxError::CounterQuotaExceeded`] if the identity already
    /// has 256 live counters.
    pub fn create(
        &mut self,
        owner: MrEnclave,
        rng: &mut impl rand::RngCore,
    ) -> Result<(CounterUuid, u32), SgxError> {
        let counters = self.by_enclave.entry(owner).or_default();
        if counters.slots.len() >= COUNTER_QUOTA {
            return Err(SgxError::CounterQuotaExceeded);
        }
        let slot = (0..=u8::MAX)
            .find(|s| !counters.slots.contains_key(s))
            .expect("quota check guarantees a free slot");
        let mut nonce = [0u8; 8];
        rng.fill_bytes(&mut nonce);
        counters
            .slots
            .insert(slot, CounterRecord { nonce, value: 0 });
        Ok((CounterUuid { slot, nonce }, 0))
    }

    fn record(&self, owner: MrEnclave, uuid: &CounterUuid) -> Result<&CounterRecord, SgxError> {
        let rec = self
            .by_enclave
            .get(&owner)
            .and_then(|c| c.slots.get(&uuid.slot))
            .ok_or(SgxError::CounterNotFound)?;
        // Nonce mismatch means "this UUID was destroyed (or never existed)";
        // the distinction must not be observable.
        if rec.nonce != uuid.nonce {
            return Err(SgxError::CounterNotFound);
        }
        Ok(rec)
    }

    /// Reads the current value.
    ///
    /// # Errors
    ///
    /// Returns [`SgxError::CounterNotFound`] if the UUID does not name a
    /// live counter of `owner` (never created, destroyed, or wrong nonce).
    pub fn read(&self, owner: MrEnclave, uuid: &CounterUuid) -> Result<u32, SgxError> {
        Ok(self.record(owner, uuid)?.value)
    }

    /// Increments and returns the new value.
    ///
    /// # Errors
    ///
    /// [`SgxError::CounterNotFound`] as for [`CounterStore::read`];
    /// [`SgxError::CounterOverflow`] at `u32::MAX`.
    pub fn increment(&mut self, owner: MrEnclave, uuid: &CounterUuid) -> Result<u32, SgxError> {
        self.record(owner, uuid)?; // validate nonce first
        let rec = self
            .by_enclave
            .get_mut(&owner)
            .and_then(|c| c.slots.get_mut(&uuid.slot))
            .expect("validated above");
        rec.value = rec.value.checked_add(1).ok_or(SgxError::CounterOverflow)?;
        Ok(rec.value)
    }

    /// Destroys the counter. The UUID becomes permanently unusable; the
    /// slot may be reused by a future creation under a fresh nonce.
    ///
    /// # Errors
    ///
    /// [`SgxError::CounterNotFound`] as for [`CounterStore::read`].
    pub fn destroy(&mut self, owner: MrEnclave, uuid: &CounterUuid) -> Result<(), SgxError> {
        self.record(owner, uuid)?;
        self.by_enclave
            .get_mut(&owner)
            .expect("validated above")
            .slots
            .remove(&uuid.slot);
        Ok(())
    }

    /// Number of live counters owned by `owner`.
    #[must_use]
    pub fn live_count(&self, owner: MrEnclave) -> usize {
        self.by_enclave.get(&owner).map_or(0, |c| c.slots.len())
    }

    /// Forces a counter value, bypassing monotonicity — test-only hook for
    /// exercising the overflow path.
    #[cfg(test)]
    fn force_value_for_test(&mut self, owner: MrEnclave, uuid: &CounterUuid, value: u32) {
        self.by_enclave
            .get_mut(&owner)
            .and_then(|c| c.slots.get_mut(&uuid.slot))
            .expect("counter exists")
            .value = value;
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    fn owner(tag: u8) -> MrEnclave {
        MrEnclave([tag; 32])
    }

    fn rng() -> StdRng {
        StdRng::seed_from_u64(99)
    }

    #[test]
    fn create_read_increment_destroy_lifecycle() {
        let mut store = CounterStore::new();
        let mut rng = rng();
        let (uuid, v) = store.create(owner(1), &mut rng).unwrap();
        assert_eq!(v, 0);
        assert_eq!(store.read(owner(1), &uuid).unwrap(), 0);
        assert_eq!(store.increment(owner(1), &uuid).unwrap(), 1);
        assert_eq!(store.increment(owner(1), &uuid).unwrap(), 2);
        assert_eq!(store.read(owner(1), &uuid).unwrap(), 2);
        store.destroy(owner(1), &uuid).unwrap();
        assert_eq!(
            store.read(owner(1), &uuid).unwrap_err(),
            SgxError::CounterNotFound
        );
    }

    #[test]
    fn destroyed_uuid_is_permanently_dead_even_after_slot_reuse() {
        let mut store = CounterStore::new();
        let mut rng = rng();
        let (uuid1, _) = store.create(owner(1), &mut rng).unwrap();
        for _ in 0..5 {
            store.increment(owner(1), &uuid1).unwrap();
        }
        store.destroy(owner(1), &uuid1).unwrap();

        // The freed slot is reused, but under a fresh nonce.
        let (uuid2, v) = store.create(owner(1), &mut rng).unwrap();
        assert_eq!(uuid2.slot, uuid1.slot);
        assert_ne!(uuid2.nonce, uuid1.nonce);
        assert_eq!(v, 0);

        // The old UUID must NOT alias onto the new counter.
        assert_eq!(
            store.read(owner(1), &uuid1).unwrap_err(),
            SgxError::CounterNotFound
        );
        assert_eq!(
            store.increment(owner(1), &uuid1).unwrap_err(),
            SgxError::CounterNotFound
        );
    }

    #[test]
    fn counters_are_isolated_between_enclave_identities() {
        let mut store = CounterStore::new();
        let mut rng = rng();
        let (uuid, _) = store.create(owner(1), &mut rng).unwrap();
        // Another identity guessing the same UUID must fail.
        assert_eq!(
            store.read(owner(2), &uuid).unwrap_err(),
            SgxError::CounterNotFound
        );
        assert_eq!(
            store.increment(owner(2), &uuid).unwrap_err(),
            SgxError::CounterNotFound
        );
        assert_eq!(
            store.destroy(owner(2), &uuid).unwrap_err(),
            SgxError::CounterNotFound
        );
    }

    #[test]
    fn wrong_nonce_is_rejected() {
        let mut store = CounterStore::new();
        let mut rng = rng();
        let (mut uuid, _) = store.create(owner(1), &mut rng).unwrap();
        uuid.nonce[0] ^= 1;
        assert_eq!(
            store.read(owner(1), &uuid).unwrap_err(),
            SgxError::CounterNotFound
        );
    }

    #[test]
    fn quota_is_256_per_identity() {
        let mut store = CounterStore::new();
        let mut rng = rng();
        let mut uuids = Vec::new();
        for _ in 0..COUNTER_QUOTA {
            uuids.push(store.create(owner(1), &mut rng).unwrap().0);
        }
        assert_eq!(store.live_count(owner(1)), 256);
        assert_eq!(
            store.create(owner(1), &mut rng).unwrap_err(),
            SgxError::CounterQuotaExceeded
        );
        // Other identities are unaffected by a full neighbour.
        assert!(store.create(owner(2), &mut rng).is_ok());
        // Destroying one frees quota.
        store.destroy(owner(1), &uuids[17]).unwrap();
        assert!(store.create(owner(1), &mut rng).is_ok());
    }

    #[test]
    fn overflow_is_detected() {
        let mut store = CounterStore::new();
        let mut rng = rng();
        let (uuid, _) = store.create(owner(1), &mut rng).unwrap();
        store.force_value_for_test(owner(1), &uuid, u32::MAX - 1);
        assert_eq!(store.increment(owner(1), &uuid).unwrap(), u32::MAX);
        assert_eq!(
            store.increment(owner(1), &uuid).unwrap_err(),
            SgxError::CounterOverflow
        );
        // The failed increment must not have changed the value.
        assert_eq!(store.read(owner(1), &uuid).unwrap(), u32::MAX);
    }

    #[test]
    fn uuid_wire_round_trip() {
        let uuid = CounterUuid {
            slot: 42,
            nonce: [1, 2, 3, 4, 5, 6, 7, 8],
        };
        let mut w = WireWriter::new();
        uuid.encode(&mut w);
        let buf = w.finish();
        let mut r = WireReader::new(&buf);
        assert_eq!(CounterUuid::decode(&mut r).unwrap(), uuid);
        r.finish().unwrap();
    }

    #[test]
    fn monotonicity_under_many_operations() {
        let mut store = CounterStore::new();
        let mut rng = rng();
        let (uuid, _) = store.create(owner(1), &mut rng).unwrap();
        let mut last = 0;
        for _ in 0..1000 {
            let v = store.increment(owner(1), &uuid).unwrap();
            assert!(v > last);
            last = v;
        }
        assert_eq!(last, 1000);
    }
}
