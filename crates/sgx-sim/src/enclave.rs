//! The enclave runtime: the [`EnclaveCode`] trait implemented by enclave
//! logic, the [`EnclaveHandle`] through which untrusted code drives it, and
//! the [`EnclaveEnv`] in-enclave view of the platform.
//!
//! The isolation model mirrors SGX: untrusted code can only enter an
//! enclave through the byte-oriented ECALL ABI of [`EnclaveHandle::ecall`]
//! (well-defined entry points, §II-A1), and the enclave's private state —
//! the fields of the [`EnclaveCode`] implementor — is unreachable from
//! outside the handle. Destroying an enclave (application exit, power
//! event, VM migration) irrecoverably drops that state, exactly the
//! lifecycle the paper's §I enumerates.

use crate::cost::PlatformOp;
use crate::counters::CounterUuid;
use crate::cpu::{egetkey, KeyName, KeyPolicy, KeyRequest};
use crate::error::SgxError;
use crate::machine::MachineCore;
use crate::measurement::{EnclaveIdentity, MrEnclave};
use crate::quote::{qe_mr_enclave, Quote};
use crate::report::{Report, ReportBody, ReportData, TargetInfo};
use crate::seal;
use mig_crypto::hmac::HmacSha256;
use parking_lot::Mutex;
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::Arc;

/// Trait implemented by enclave logic.
///
/// `ecall` is the single marshalled entry point: `opcode` selects the
/// function (the enclave's EDL, in SDK terms) and `input`/output are
/// explicit byte buffers, as across a real enclave boundary.
pub trait EnclaveCode: Send {
    /// Handles one ECALL.
    ///
    /// # Errors
    ///
    /// Implementations return [`SgxError`] values which cross the boundary
    /// verbatim (like `sgx_status_t`).
    fn ecall(
        &mut self,
        env: &mut EnclaveEnv<'_>,
        opcode: u32,
        input: &[u8],
    ) -> Result<Vec<u8>, SgxError>;
}

pub(crate) struct EnclaveInstance {
    pub(crate) code: Mutex<Box<dyn EnclaveCode>>,
    pub(crate) identity: EnclaveIdentity,
    pub(crate) alive: AtomicBool,
    pub(crate) epoch: u64,
}

/// Untrusted handle to a loaded enclave.
///
/// Cloneable; all clones refer to the same enclave instance. The handle
/// goes dead when the enclave is destroyed or the machine power-cycles.
#[derive(Clone)]
pub struct EnclaveHandle {
    pub(crate) core: Arc<MachineCore>,
    pub(crate) instance: Arc<EnclaveInstance>,
}

impl std::fmt::Debug for EnclaveHandle {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("EnclaveHandle")
            .field("identity", &self.instance.identity)
            .field("alive", &self.is_alive())
            .finish()
    }
}

impl EnclaveHandle {
    /// The loaded enclave's identity.
    #[must_use]
    pub fn identity(&self) -> EnclaveIdentity {
        self.instance.identity
    }

    /// Whether the enclave can still service ECALLs.
    #[must_use]
    pub fn is_alive(&self) -> bool {
        self.instance.alive.load(Ordering::SeqCst)
            && self.core.current_epoch() == self.instance.epoch
    }

    /// Destroys the enclave; its in-memory state is irrecoverably lost.
    pub fn destroy(&self) {
        self.instance.alive.store(false, Ordering::SeqCst);
    }

    /// Invokes an ECALL.
    ///
    /// # Errors
    ///
    /// Returns [`SgxError::EnclaveLost`] if the enclave was destroyed or
    /// the machine power-cycled; otherwise whatever the enclave returns.
    pub fn ecall(&self, opcode: u32, input: &[u8]) -> Result<Vec<u8>, SgxError> {
        if !self.is_alive() {
            return Err(SgxError::EnclaveLost);
        }
        if self.core.take_ecall_fault() {
            // Injected AEX-style abort: the call never enters the
            // enclave, so enclave state is untouched.
            return Err(SgxError::Enclave("injected ecall abort".into()));
        }
        let mut code = self.instance.code.lock();
        self.core.transitions.lock().begin_ecall();
        let mut env = EnclaveEnv {
            core: &self.core,
            identity: self.instance.identity,
        };
        let result = code.ecall(&mut env, opcode, input);
        self.core.transitions.lock().end_ecall();
        result
    }

    /// Snapshot of the host machine's ECALL/OCALL transition tally.
    #[must_use]
    pub fn transition_tally(&self) -> crate::cpu::TransitionTally {
        self.core.transitions.lock().clone()
    }

    /// The host machine's undrained virtual time (telemetry peeks the
    /// delta across one ECALL without consuming it).
    #[must_use]
    pub fn peek_virtual_time(&self) -> std::time::Duration {
        *self.core.virtual_elapsed.lock()
    }
}

/// The in-enclave view of the platform: key derivation, sealing, reports,
/// monotonic counters, randomness.
///
/// An `EnclaveEnv` only exists inside an ECALL, borrowed from the machine;
/// enclave code cannot stash it, mirroring how SGX instructions are only
/// usable from enclave mode.
pub struct EnclaveEnv<'m> {
    core: &'m MachineCore,
    identity: EnclaveIdentity,
}

impl std::fmt::Debug for EnclaveEnv<'_> {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("EnclaveEnv")
            .field("identity", &self.identity)
            .finish_non_exhaustive()
    }
}

impl EnclaveEnv<'_> {
    /// The calling enclave's identity.
    #[must_use]
    pub fn identity(&self) -> EnclaveIdentity {
        self.identity
    }

    /// The machine the enclave is running on (public, untrusted info).
    #[must_use]
    pub fn machine_id(&self) -> crate::machine::MachineId {
        self.core.machine_id
    }

    /// Fills `buf` with cryptographically secure random bytes (`RDRAND`).
    pub fn random_bytes(&mut self, buf: &mut [u8]) {
        use rand::RngCore as _;
        self.core.rng.lock().fill_bytes(buf);
    }

    /// Attributes the ECALL being serviced (and its remaining platform
    /// operations) to a migration trace id for transition telemetry.
    ///
    /// `trace` must be a *derived* identifier (a hash of the transfer
    /// nonce), never secret material itself — it is exported verbatim by
    /// the telemetry layer.
    pub fn attribute_transition(&mut self, trace: [u8; 8]) {
        self.core.transitions.lock().attribute(trace);
    }

    /// Excludes the ECALL being serviced from per-trace transition
    /// attribution: read-only diagnostics (telemetry / stat polling)
    /// call this first so they never count towards an active
    /// migration's tally, and any later [`Self::attribute_transition`]
    /// within the same ECALL is ignored.
    pub fn exclude_transition_attribution(&mut self) {
        self.core.transitions.lock().exclude();
    }

    /// Derives a 128-bit key (`EGETKEY`).
    #[must_use]
    pub fn egetkey(&mut self, req: &KeyRequest) -> [u8; 16] {
        self.core.account(PlatformOp::EgetKey);
        egetkey(&self.core.cpu, &self.identity, req)
    }

    /// Seals `plaintext` with authenticated `aad` under `policy`
    /// (`sgx_seal_data`). A fresh key id and nonce are drawn per call.
    #[must_use]
    pub fn seal_data(&mut self, policy: KeyPolicy, aad: &[u8], plaintext: &[u8]) -> Vec<u8> {
        let mut key_id = [0u8; 16];
        self.random_bytes(&mut key_id);
        let mut nonce = [0u8; 12];
        self.random_bytes(&mut nonce);
        self.core.account(PlatformOp::EgetKey);
        seal::seal(
            &self.core.cpu,
            &self.identity,
            policy,
            key_id,
            nonce,
            aad,
            plaintext,
        )
    }

    /// Unseals a blob sealed by this enclave identity on this machine
    /// (`sgx_unseal_data`), returning `(plaintext, aad)`.
    ///
    /// # Errors
    ///
    /// [`SgxError::MacMismatch`] if the blob was sealed on another machine,
    /// by another identity, or was tampered with; [`SgxError::Decode`] on
    /// malformed blobs.
    pub fn unseal_data(&mut self, blob: &[u8]) -> Result<(Vec<u8>, Vec<u8>), SgxError> {
        self.core.account(PlatformOp::EgetKey);
        seal::unseal(&self.core.cpu, &self.identity, blob)
    }

    /// Produces a report for `target` on the same machine (`EREPORT`).
    #[must_use]
    pub fn ereport(&mut self, target: &TargetInfo, data: &ReportData) -> Report {
        self.core.account(PlatformOp::Report);
        let body = ReportBody {
            identity: self.identity,
            report_data: *data,
        };
        let mac = report_mac(self.core, target.mr_enclave, &body);
        Report {
            body,
            target: target.mr_enclave,
            mac,
        }
    }

    /// Verifies a report targeted at *this* enclave (`sgx_verify_report`).
    ///
    /// # Errors
    ///
    /// [`SgxError::ReportMacMismatch`] if the report was not produced on
    /// this machine for this enclave.
    pub fn verify_report(&mut self, report: &Report) -> Result<ReportBody, SgxError> {
        if report.target != self.identity.mr_enclave {
            return Err(SgxError::ReportMacMismatch);
        }
        let expected = report_mac(self.core, self.identity.mr_enclave, &report.body);
        if !mig_crypto::ct::ct_eq(&expected, &report.mac) {
            return Err(SgxError::ReportMacMismatch);
        }
        Ok(report.body)
    }

    /// Target info for the platform's Quoting Enclave.
    #[must_use]
    pub fn qe_target_info(&self) -> TargetInfo {
        TargetInfo {
            mr_enclave: qe_mr_enclave(),
        }
    }

    /// Converts a report (targeted at the QE) into a quote.
    ///
    /// In real SGX this round-trips through the AESM service and the
    /// Quoting Enclave over an untrusted channel (the paper's §VI-C
    /// proxies); the simulator performs the QE's verification and signing
    /// inline.
    ///
    /// # Errors
    ///
    /// [`SgxError::ReportMacMismatch`] if the report does not target the
    /// QE or fails verification.
    pub fn quote_report(&mut self, report: &Report) -> Result<Quote, SgxError> {
        self.core.quote(report)
    }

    /// Creates a monotonic counter owned by this enclave's identity
    /// (`sgx_create_monotonic_counter`). Returns `(uuid, 0)`.
    ///
    /// # Errors
    ///
    /// [`SgxError::CounterQuotaExceeded`] past 256 live counters.
    pub fn create_counter(&mut self) -> Result<(CounterUuid, u32), SgxError> {
        self.core.account(PlatformOp::CounterCreate);
        let mut rng = self.core.rng.lock();
        self.core
            .counters
            .lock()
            .create(self.identity.mr_enclave, &mut *rng)
    }

    /// Reads a counter (`sgx_read_monotonic_counter`).
    ///
    /// # Errors
    ///
    /// [`SgxError::CounterNotFound`] for unknown/destroyed UUIDs.
    pub fn read_counter(&mut self, uuid: &CounterUuid) -> Result<u32, SgxError> {
        self.core.account(PlatformOp::CounterRead);
        self.core
            .counters
            .lock()
            .read(self.identity.mr_enclave, uuid)
    }

    /// Increments a counter (`sgx_increment_monotonic_counter`).
    ///
    /// # Errors
    ///
    /// [`SgxError::CounterNotFound`] for unknown/destroyed UUIDs;
    /// [`SgxError::CounterOverflow`] at `u32::MAX`.
    pub fn increment_counter(&mut self, uuid: &CounterUuid) -> Result<u32, SgxError> {
        self.core.account(PlatformOp::CounterIncrement);
        self.core
            .counters
            .lock()
            .increment(self.identity.mr_enclave, uuid)
    }

    /// Destroys a counter (`sgx_destroy_monotonic_counter`). The UUID is
    /// permanently invalidated — the property the migration protocol's
    /// fork-prevention relies on.
    ///
    /// # Errors
    ///
    /// [`SgxError::CounterNotFound`] for unknown/destroyed UUIDs.
    pub fn destroy_counter(&mut self, uuid: &CounterUuid) -> Result<(), SgxError> {
        self.core.account(PlatformOp::CounterDestroy);
        self.core
            .counters
            .lock()
            .destroy(self.identity.mr_enclave, uuid)
    }
}

/// Report MAC under the *target* enclave's report key.
fn report_mac(core: &MachineCore, target: MrEnclave, body: &ReportBody) -> [u8; 32] {
    let target_identity = EnclaveIdentity {
        mr_enclave: target,
        // MRSIGNER does not participate in report-key derivation.
        mr_signer: crate::measurement::MrSigner([0; 32]),
    };
    let key = egetkey(
        &core.cpu,
        &target_identity,
        &KeyRequest {
            name: KeyName::Report,
            policy: KeyPolicy::MrEnclave,
            key_id: [0; 16],
        },
    );
    HmacSha256::mac(&key, &body.to_bytes())
}
