//! A physical machine's SGX platform: CPU secret, NVRAM counters, Quoting
//! Enclave, and the enclave loader.
//!
//! One [`SgxMachine`] corresponds to one physical host in the datacenter.
//! Everything machine-bound in the paper's analysis lives here: the CPU
//! secret (sealing keys), the counter NVRAM, and the platform's EPID
//! credential. Power-cycling the machine destroys all loaded enclaves but
//! preserves NVRAM — the asymmetry that makes persistent state both
//! necessary and dangerous to migrate.

use crate::cost::{CostModel, NoCost, PlatformOp};
use crate::counters::CounterStore;
use crate::cpu::{CpuSecret, TransitionTally};
use crate::enclave::{EnclaveCode, EnclaveHandle, EnclaveInstance};
use crate::error::SgxError;
use crate::ias::{AttestationService, PlatformEnrollment};
use crate::measurement::{EnclaveImage, MrEnclave};
use crate::quote::{self, qe_mr_enclave, Quote};
use crate::report::{Report, TargetInfo};
use mig_crypto::hkdf::hkdf;
use mig_crypto::hmac::HmacSha256;
use parking_lot::Mutex;
use rand::rngs::StdRng;
use rand::SeedableRng;
use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::Arc;
use std::time::Duration;

/// Identifies a physical machine in the simulated datacenter.
#[derive(Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord, Debug)]
pub struct MachineId(pub u64);

impl std::fmt::Display for MachineId {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "machine-{}", self.0)
    }
}

/// Scheduled ECALL-abort fault state: the machine-wide ECALL ordinal
/// counter plus the set of ordinals whose ECALL aborts (fault
/// injection; see [`SgxMachine::schedule_ecall_abort`]).
#[derive(Default)]
pub(crate) struct EcallFaults {
    calls: u64,
    scheduled: std::collections::BTreeSet<u64>,
}

pub(crate) struct MachineCore {
    pub(crate) machine_id: MachineId,
    pub(crate) cpu: CpuSecret,
    pub(crate) counters: Mutex<CounterStore>,
    pub(crate) rng: Mutex<StdRng>,
    cost: Arc<dyn CostModel>,
    pub(crate) virtual_elapsed: Mutex<Duration>,
    pub(crate) transitions: Mutex<TransitionTally>,
    epoch: AtomicU64,
    enrollment: PlatformEnrollment,
    pub(crate) ecall_faults: Mutex<EcallFaults>,
}

impl MachineCore {
    pub(crate) fn current_epoch(&self) -> u64 {
        self.epoch.load(Ordering::SeqCst)
    }

    /// Counts one ECALL entry attempt and reports whether an injected
    /// abort is scheduled for this ordinal (consumed once).
    pub(crate) fn take_ecall_fault(&self) -> bool {
        let mut faults = self.ecall_faults.lock();
        let ordinal = faults.calls;
        faults.calls += 1;
        faults.scheduled.remove(&ordinal)
    }

    /// Applies the cost model and accounts the duration as virtual time.
    /// Every accounted platform operation is also one OCALL-equivalent
    /// enclave transition (regardless of the cost model).
    pub(crate) fn account(&self, op: PlatformOp) {
        self.transitions.lock().ocall();
        let d = self.cost.apply(op);
        if !d.is_zero() {
            *self.virtual_elapsed.lock() += d;
        }
    }

    /// QE-side quote generation: verify the report targets the QE, then
    /// countersign with the platform's group credential.
    pub(crate) fn quote(&self, report: &Report) -> Result<Quote, SgxError> {
        if report.target != qe_mr_enclave() {
            return Err(SgxError::ReportMacMismatch);
        }
        // The QE verifies the report with its own report key.
        let qe_identity = crate::measurement::EnclaveIdentity {
            mr_enclave: qe_mr_enclave(),
            mr_signer: crate::measurement::MrSigner([0; 32]),
        };
        let key = crate::cpu::egetkey(
            &self.cpu,
            &qe_identity,
            &crate::cpu::KeyRequest {
                name: crate::cpu::KeyName::Report,
                policy: crate::cpu::KeyPolicy::MrEnclave,
                key_id: [0; 16],
            },
        );
        if !HmacSha256::verify(&key, &report.body.to_bytes(), &report.mac) {
            return Err(SgxError::ReportMacMismatch);
        }
        self.account(PlatformOp::Quote);
        Ok(quote::generate(
            &self.enrollment.group_secret,
            self.enrollment.platform_id,
            report.body,
        ))
    }
}

/// A physical machine's SGX platform.
///
/// # Example
///
/// ```
/// use rand::SeedableRng;
/// use sgx_sim::ias::AttestationService;
/// use sgx_sim::machine::{MachineId, SgxMachine};
///
/// let mut rng = rand::rngs::StdRng::seed_from_u64(1);
/// let ias = AttestationService::new(&mut rng);
/// let machine = SgxMachine::new(MachineId(1), &ias, &mut rng);
/// assert_eq!(machine.machine_id(), MachineId(1));
/// ```
#[derive(Clone)]
pub struct SgxMachine {
    core: Arc<MachineCore>,
}

impl std::fmt::Debug for SgxMachine {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("SgxMachine")
            .field("machine_id", &self.core.machine_id)
            .finish_non_exhaustive()
    }
}

impl SgxMachine {
    /// Fuses a new machine with zero-latency platform operations
    /// (functional testing).
    #[must_use]
    pub fn new(id: MachineId, ias: &AttestationService, rng: &mut impl rand::RngCore) -> Self {
        Self::with_cost_model(id, ias, Arc::new(NoCost), rng)
    }

    /// Fuses a new machine with an explicit platform [`CostModel`].
    #[must_use]
    pub fn with_cost_model(
        id: MachineId,
        ias: &AttestationService,
        cost: Arc<dyn CostModel>,
        rng: &mut impl rand::RngCore,
    ) -> Self {
        let cpu = CpuSecret::random(rng);
        let enrollment = ias.enroll(rng);
        // Derive the machine's internal RNG stream from the fused secret so
        // machines are deterministic given the construction RNG.
        let seed: [u8; 32] = hkdf(b"sgx-sim.machine.rng", cpu.as_bytes(), b"");
        SgxMachine {
            core: Arc::new(MachineCore {
                machine_id: id,
                cpu,
                counters: Mutex::new(CounterStore::new()),
                rng: Mutex::new(StdRng::from_seed(seed)),
                cost,
                virtual_elapsed: Mutex::new(Duration::ZERO),
                transitions: Mutex::new(TransitionTally::default()),
                epoch: AtomicU64::new(0),
                enrollment,
                ecall_faults: Mutex::new(EcallFaults::default()),
            }),
        }
    }

    /// This machine's identifier.
    #[must_use]
    pub fn machine_id(&self) -> MachineId {
        self.core.machine_id
    }

    /// The platform's pseudonymous EPID identity (for revocation tests).
    #[must_use]
    pub fn platform_id(&self) -> [u8; 16] {
        self.core.enrollment.platform_id
    }

    /// Loads (measures and launches) an enclave.
    ///
    /// `code` supplies the behaviour; `image` supplies the identity. The
    /// pairing is the caller's responsibility, as on a real platform where
    /// the loader maps whatever pages it is given — the *measurement* is
    /// what relying parties trust, not the loader.
    ///
    /// # Errors
    ///
    /// Returns [`SgxError::LaunchControlFailed`] if the image's launch
    /// signature is invalid.
    pub fn load_enclave(
        &self,
        image: &EnclaveImage,
        code: Box<dyn EnclaveCode>,
    ) -> Result<EnclaveHandle, SgxError> {
        image.verify_launch_signature()?;
        let instance = Arc::new(EnclaveInstance {
            code: Mutex::new(code),
            identity: image.identity(),
            alive: AtomicBool::new(true),
            epoch: self.core.current_epoch(),
        });
        Ok(EnclaveHandle {
            core: Arc::clone(&self.core),
            instance,
        })
    }

    /// Simulates a power event (hibernate/shutdown/reboot): every loaded
    /// enclave is lost; NVRAM (counters) survives.
    pub fn power_cycle(&self) {
        self.core.epoch.fetch_add(1, Ordering::SeqCst);
    }

    /// QE entry point: converts a report targeting the QE into a quote.
    ///
    /// # Errors
    ///
    /// [`SgxError::ReportMacMismatch`] if the report does not verify.
    pub fn quote(&self, report: &Report) -> Result<Quote, SgxError> {
        self.core.quote(report)
    }

    /// Target info for the Quoting Enclave on this machine.
    #[must_use]
    pub fn qe_target_info(&self) -> TargetInfo {
        TargetInfo {
            mr_enclave: qe_mr_enclave(),
        }
    }

    /// Drains the virtual time accumulated by platform operations since
    /// the last drain (consumed by the datacenter simulator's clock).
    #[must_use]
    pub fn drain_virtual_time(&self) -> Duration {
        std::mem::take(&mut *self.core.virtual_elapsed.lock())
    }

    /// The virtual time accumulated since the last drain, *without*
    /// draining it (telemetry peeks across a single ECALL).
    #[must_use]
    pub fn peek_virtual_time(&self) -> Duration {
        *self.core.virtual_elapsed.lock()
    }

    /// Snapshot of this machine's ECALL/OCALL transition tally.
    #[must_use]
    pub fn transition_tally(&self) -> TransitionTally {
        self.core.transitions.lock().clone()
    }

    /// Number of live NVRAM counters owned by `mr_enclave` (diagnostics).
    #[must_use]
    pub fn live_counters(&self, mr_enclave: MrEnclave) -> usize {
        self.core.counters.lock().live_count(mr_enclave)
    }

    /// Machine-wide ordinal of the next ECALL (every enclave on the
    /// machine shares the counter). Fault injectors read this to anchor
    /// [`SgxMachine::schedule_ecall_abort`] ordinals.
    #[must_use]
    pub fn ecall_count(&self) -> u64 {
        self.core.ecall_faults.lock().calls
    }

    /// Schedules the ECALL with machine-wide ordinal `ordinal` (see
    /// [`SgxMachine::ecall_count`]) to abort before entering the enclave
    /// — an AEX-style fault: the enclave's state is untouched, the
    /// caller sees an error. Past ordinals are silently inert.
    pub fn schedule_ecall_abort(&self, ordinal: u64) {
        self.core.ecall_faults.lock().scheduled.insert(ordinal);
    }

    /// Discards every scheduled-but-unconsumed ECALL abort. Fault
    /// injectors call this when disarming, so a stale scheduled abort
    /// cannot fire on an unrelated later ECALL (e.g. post-run
    /// verification).
    pub fn clear_scheduled_ecall_aborts(&self) {
        self.core.ecall_faults.lock().scheduled.clear();
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::cpu::KeyPolicy;
    use crate::enclave::{EnclaveCode, EnclaveEnv};
    use crate::measurement::EnclaveSigner;

    /// A trivial enclave that seals/unseals and counts via opcode dispatch.
    struct TestEnclave {
        secret: Vec<u8>,
    }

    const OP_SEAL: u32 = 1;
    const OP_UNSEAL: u32 = 2;
    const OP_GET_SECRET_LEN: u32 = 3;

    impl EnclaveCode for TestEnclave {
        fn ecall(
            &mut self,
            env: &mut EnclaveEnv<'_>,
            opcode: u32,
            input: &[u8],
        ) -> Result<Vec<u8>, SgxError> {
            match opcode {
                OP_SEAL => Ok(env.seal_data(KeyPolicy::MrEnclave, b"", input)),
                OP_UNSEAL => {
                    let (pt, _) = env.unseal_data(input)?;
                    self.secret = pt.clone();
                    Ok(pt)
                }
                OP_GET_SECRET_LEN => Ok((self.secret.len() as u32).to_le_bytes().to_vec()),
                _ => Err(SgxError::InvalidParameter("opcode")),
            }
        }
    }

    fn setup() -> (SgxMachine, SgxMachine, EnclaveImage) {
        let mut rng = StdRng::seed_from_u64(7);
        let ias = AttestationService::new(&mut rng);
        let m1 = SgxMachine::new(MachineId(1), &ias, &mut rng);
        let m2 = SgxMachine::new(MachineId(2), &ias, &mut rng);
        let signer = EnclaveSigner::from_seed([3; 32]);
        let image = EnclaveImage::build("test-enclave", 1, b"test code", &signer);
        (m1, m2, image)
    }

    fn load(m: &SgxMachine, image: &EnclaveImage) -> EnclaveHandle {
        m.load_enclave(image, Box::new(TestEnclave { secret: vec![] }))
            .unwrap()
    }

    #[test]
    fn ecall_round_trip_via_sealing() {
        let (m1, _, image) = setup();
        let enclave = load(&m1, &image);
        let blob = enclave.ecall(OP_SEAL, b"top secret").unwrap();
        assert_ne!(blob, b"top secret");
        let pt = enclave.ecall(OP_UNSEAL, &blob).unwrap();
        assert_eq!(pt, b"top secret");
    }

    #[test]
    fn sealed_data_does_not_cross_machines() {
        let (m1, m2, image) = setup();
        let e1 = load(&m1, &image);
        let e2 = load(&m2, &image);
        let blob = e1.ecall(OP_SEAL, b"machine-bound").unwrap();
        // Same enclave identity, different machine: unsealing must fail.
        assert_eq!(
            e2.ecall(OP_UNSEAL, &blob).unwrap_err(),
            SgxError::MacMismatch
        );
    }

    #[test]
    fn sealed_data_survives_enclave_restart_on_same_machine() {
        let (m1, _, image) = setup();
        let e1 = load(&m1, &image);
        let blob = e1.ecall(OP_SEAL, b"persisted").unwrap();
        e1.destroy();
        assert_eq!(e1.ecall(OP_SEAL, b"x").unwrap_err(), SgxError::EnclaveLost);
        // Fresh instance of the same image unseals the blob.
        let e2 = load(&m1, &image);
        assert_eq!(e2.ecall(OP_UNSEAL, &blob).unwrap(), b"persisted");
    }

    #[test]
    fn power_cycle_kills_enclaves_but_preserves_counters() {
        let (m1, _, image) = setup();
        let enclave = load(&m1, &image);

        // Create a counter inside an ecall-driven env by using a dedicated
        // enclave; simpler: drive the counter store through a seal-enclave
        // whose identity matches. Use the image identity directly.
        struct CounterEnclave {
            uuid: Option<crate::counters::CounterUuid>,
        }
        impl EnclaveCode for CounterEnclave {
            fn ecall(
                &mut self,
                env: &mut EnclaveEnv<'_>,
                opcode: u32,
                _input: &[u8],
            ) -> Result<Vec<u8>, SgxError> {
                match opcode {
                    1 => {
                        let (uuid, v) = env.create_counter()?;
                        self.uuid = Some(uuid);
                        Ok(v.to_le_bytes().to_vec())
                    }
                    2 => {
                        let v = env.increment_counter(self.uuid.as_ref().unwrap())?;
                        Ok(v.to_le_bytes().to_vec())
                    }
                    _ => Err(SgxError::InvalidParameter("opcode")),
                }
            }
        }
        let counter_enclave = m1
            .load_enclave(&image, Box::new(CounterEnclave { uuid: None }))
            .unwrap();
        counter_enclave.ecall(1, b"").unwrap();
        counter_enclave.ecall(2, b"").unwrap();
        assert_eq!(m1.live_counters(image.mr_enclave()), 1);

        m1.power_cycle();
        // Both enclaves are lost...
        assert!(!enclave.is_alive());
        assert_eq!(
            counter_enclave.ecall(2, b"").unwrap_err(),
            SgxError::EnclaveLost
        );
        // ...but NVRAM persists.
        assert_eq!(m1.live_counters(image.mr_enclave()), 1);
    }

    #[test]
    fn local_attestation_report_verifies_on_same_machine_only() {
        let (m1, m2, image) = setup();
        let signer = EnclaveSigner::from_seed([3; 32]);
        let verifier_image = EnclaveImage::build("verifier", 1, b"verifier code", &signer);

        struct Prover;
        impl EnclaveCode for Prover {
            fn ecall(
                &mut self,
                env: &mut EnclaveEnv<'_>,
                _opcode: u32,
                input: &[u8],
            ) -> Result<Vec<u8>, SgxError> {
                let mr = crate::measurement::MrEnclave(input.try_into().unwrap());
                let report = env.ereport(
                    &TargetInfo { mr_enclave: mr },
                    &crate::report::ReportData::from_hash(&[0xCD; 32]),
                );
                Ok(report.to_bytes())
            }
        }
        struct Verifier;
        impl EnclaveCode for Verifier {
            fn ecall(
                &mut self,
                env: &mut EnclaveEnv<'_>,
                _opcode: u32,
                input: &[u8],
            ) -> Result<Vec<u8>, SgxError> {
                let report = Report::from_bytes(input)?;
                let body = env.verify_report(&report)?;
                Ok(body.identity.mr_enclave.0.to_vec())
            }
        }

        let prover = m1.load_enclave(&image, Box::new(Prover)).unwrap();
        let verifier1 = m1
            .load_enclave(&verifier_image, Box::new(Verifier))
            .unwrap();
        let verifier2 = m2
            .load_enclave(&verifier_image, Box::new(Verifier))
            .unwrap();

        let report_bytes = prover.ecall(0, &verifier_image.mr_enclave().0).unwrap();
        // Same machine: verifies, and reports the prover's identity.
        let attested = verifier1.ecall(0, &report_bytes).unwrap();
        assert_eq!(attested, image.mr_enclave().0.to_vec());
        // Different machine: must fail (different CPU secret).
        assert_eq!(
            verifier2.ecall(0, &report_bytes).unwrap_err(),
            SgxError::ReportMacMismatch
        );
    }

    #[test]
    fn quote_flow_end_to_end() {
        let mut rng = StdRng::seed_from_u64(8);
        let ias = AttestationService::new(&mut rng);
        let m1 = SgxMachine::new(MachineId(1), &ias, &mut rng);
        let signer = EnclaveSigner::from_seed([3; 32]);
        let image = EnclaveImage::build("prover", 1, b"code", &signer);

        struct QuoteMaker;
        impl EnclaveCode for QuoteMaker {
            fn ecall(
                &mut self,
                env: &mut EnclaveEnv<'_>,
                _opcode: u32,
                _input: &[u8],
            ) -> Result<Vec<u8>, SgxError> {
                let report = env.ereport(
                    &env.qe_target_info(),
                    &crate::report::ReportData::from_hash(&[0xAB; 32]),
                );
                let quote = env.quote_report(&report)?;
                Ok(quote.to_bytes())
            }
        }
        let enclave = m1.load_enclave(&image, Box::new(QuoteMaker)).unwrap();
        let quote_bytes = enclave.ecall(0, b"").unwrap();
        let quote = Quote::from_bytes(&quote_bytes).unwrap();
        let evidence = ias.verify_quote(&quote).unwrap();
        let body = evidence.verify(&ias.verifying_key()).unwrap();
        assert_eq!(body.identity.mr_enclave, image.mr_enclave());
        assert_eq!(body.report_data.hash_prefix(), [0xAB; 32]);
    }

    #[test]
    fn tampered_image_fails_launch_control() {
        let mut rng = StdRng::seed_from_u64(9);
        let ias = AttestationService::new(&mut rng);
        let m1 = SgxMachine::new(MachineId(1), &ias, &mut rng);
        let signer = EnclaveSigner::from_seed([3; 32]);
        let image = EnclaveImage::build("x", 1, b"code", &signer);
        // Forge an image claiming a different measurement under the same
        // signature by rebuilding with different code but splicing the old
        // signature — the public API doesn't permit this, so emulate via a
        // fresh image from a *different* signer and verify both load fine,
        // then check that verify_launch_signature is actually called by
        // ensuring identical behaviour. (Direct tamper requires internal
        // access; covered in measurement::tests.)
        assert!(m1
            .load_enclave(&image, Box::new(TestEnclave { secret: vec![] }))
            .is_ok());
    }

    #[test]
    fn scheduled_ecall_abort_fires_once_and_leaves_enclave_usable() {
        let (m1, _, image) = setup();
        let enclave = load(&m1, &image);
        let blob = enclave.ecall(OP_SEAL, b"pre-fault").unwrap();
        // Schedule the *next* ECALL to abort; a stale past ordinal is
        // inert.
        m1.schedule_ecall_abort(m1.ecall_count());
        m1.schedule_ecall_abort(0);
        let err = enclave.ecall(OP_UNSEAL, &blob).unwrap_err();
        assert_eq!(err, SgxError::Enclave("injected ecall abort".into()));
        // One-shot: the retry enters the enclave and succeeds, state
        // untouched by the aborted attempt.
        assert_eq!(enclave.ecall(OP_UNSEAL, &blob).unwrap(), b"pre-fault");
    }

    #[test]
    fn virtual_time_accumulates_with_cost_model() {
        use crate::cost::ScaledIntelCost;
        let mut rng = StdRng::seed_from_u64(10);
        let ias = AttestationService::new(&mut rng);
        let m = SgxMachine::with_cost_model(
            MachineId(5),
            &ias,
            Arc::new(ScaledIntelCost::paper_scaled(false)),
            &mut rng,
        );
        let signer = EnclaveSigner::from_seed([3; 32]);
        let image = EnclaveImage::build("t", 1, b"c", &signer);
        let e = load(&m, &image);
        let _ = e.ecall(OP_SEAL, b"data").unwrap();
        let elapsed = m.drain_virtual_time();
        assert!(elapsed >= Duration::from_micros(25)); // at least one EGETKEY
        assert_eq!(m.drain_virtual_time(), Duration::ZERO); // drained
    }
}
