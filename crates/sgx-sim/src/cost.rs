//! Latency model for the simulated Intel platform firmware.
//!
//! Real SGX monotonic counters are serviced by the Intel Management Engine
//! and take hundreds of milliseconds per operation (the paper's Fig. 3
//! baseline shows 0.1–0.35 s per op); `EGETKEY` and quote generation have
//! their own costs. The simulator routes every such operation through a
//! [`CostModel`] so that:
//!
//! * unit tests run with [`NoCost`] (zero latency, zero time),
//! * benchmarks run with [`ScaledIntelCost`] — Intel's latencies scaled
//!   down ~1000× and *actually spun* on the host CPU, preserving the
//!   relative overheads the paper measures while keeping CI fast,
//! * end-to-end experiments account the same durations as virtual time.

use std::time::{Duration, Instant};

/// Platform operations with modelled latency.
#[derive(Clone, Copy, PartialEq, Eq, Hash, Debug)]
pub enum PlatformOp {
    /// Create a monotonic counter (Platform Services).
    CounterCreate,
    /// Read a monotonic counter.
    CounterRead,
    /// Increment a monotonic counter.
    CounterIncrement,
    /// Destroy a monotonic counter.
    CounterDestroy,
    /// Derive a key via `EGETKEY`.
    EgetKey,
    /// Produce a report via `EREPORT`.
    Report,
    /// Produce a quote via the Quoting Enclave (includes EPID signing).
    Quote,
}

impl PlatformOp {
    /// All operation kinds (useful for tables and tests).
    pub const ALL: [PlatformOp; 7] = [
        PlatformOp::CounterCreate,
        PlatformOp::CounterRead,
        PlatformOp::CounterIncrement,
        PlatformOp::CounterDestroy,
        PlatformOp::EgetKey,
        PlatformOp::Report,
        PlatformOp::Quote,
    ];
}

/// A latency model for platform operations.
///
/// Implementations must be cheap and thread-safe; the machine invokes
/// [`CostModel::apply`] inline on every platform operation.
pub trait CostModel: Send + Sync + std::fmt::Debug {
    /// The modelled duration of `op`.
    fn cost(&self, op: PlatformOp) -> Duration;

    /// Applies the cost (optionally consuming real wall-clock time) and
    /// returns the duration to account as virtual time.
    fn apply(&self, op: PlatformOp) -> Duration {
        self.cost(op)
    }
}

/// Zero-latency model for functional tests.
#[derive(Debug, Default, Clone, Copy)]
pub struct NoCost;

impl CostModel for NoCost {
    fn cost(&self, _op: PlatformOp) -> Duration {
        Duration::ZERO
    }
}

/// Intel-like latencies scaled down for benchmarking.
///
/// Defaults approximate the paper's Fig. 3/4 baselines divided by ~100:
/// counter create ≈ 1.8 ms, read ≈ 1.0 ms, increment ≈ 2.5 ms, destroy
/// ≈ 3.2 ms, `EGETKEY` ≈ 25 µs, report ≈ 5 µs, quote ≈ 2 ms. The ~100×
/// (not 1000×) scale keeps the firmware-to-crypto cost *ratio* close to
/// the real platform's, so relative overheads (e.g. the cost of
/// resealing the library's state buffer against a counter operation)
/// keep the paper's shape. With `spin = true` the model burns real CPU
/// for the duration, so Criterion measurements inherit the modelled
/// latency structure.
#[derive(Debug, Clone)]
pub struct ScaledIntelCost {
    /// Busy-wait for the modelled duration (benchmarks) instead of only
    /// accounting it (simulated time).
    pub spin: bool,
    /// Latency of counter creation.
    pub counter_create: Duration,
    /// Latency of counter reads.
    pub counter_read: Duration,
    /// Latency of counter increments.
    pub counter_increment: Duration,
    /// Latency of counter destruction.
    pub counter_destroy: Duration,
    /// Latency of `EGETKEY`.
    pub egetkey: Duration,
    /// Latency of `EREPORT`.
    pub report: Duration,
    /// Latency of quote generation.
    pub quote: Duration,
}

impl ScaledIntelCost {
    /// The default scaled-down Intel latency profile (documented in
    /// EXPERIMENTS.md; scaling factor ~100×).
    #[must_use]
    pub fn paper_scaled(spin: bool) -> Self {
        ScaledIntelCost {
            spin,
            counter_create: Duration::from_micros(1_800),
            counter_read: Duration::from_micros(1_000),
            counter_increment: Duration::from_micros(2_500),
            counter_destroy: Duration::from_micros(3_200),
            egetkey: Duration::from_micros(25),
            report: Duration::from_micros(5),
            quote: Duration::from_millis(2),
        }
    }
}

impl CostModel for ScaledIntelCost {
    fn cost(&self, op: PlatformOp) -> Duration {
        match op {
            PlatformOp::CounterCreate => self.counter_create,
            PlatformOp::CounterRead => self.counter_read,
            PlatformOp::CounterIncrement => self.counter_increment,
            PlatformOp::CounterDestroy => self.counter_destroy,
            PlatformOp::EgetKey => self.egetkey,
            PlatformOp::Report => self.report,
            PlatformOp::Quote => self.quote,
        }
    }

    fn apply(&self, op: PlatformOp) -> Duration {
        let d = self.cost(op);
        if self.spin && !d.is_zero() {
            let start = Instant::now();
            while start.elapsed() < d {
                std::hint::spin_loop();
            }
        }
        d
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn no_cost_is_zero_everywhere() {
        for op in PlatformOp::ALL {
            assert_eq!(NoCost.cost(op), Duration::ZERO);
            assert_eq!(NoCost.apply(op), Duration::ZERO);
        }
    }

    #[test]
    fn scaled_profile_orders_counter_ops_like_the_paper() {
        // Fig. 3 baseline ordering: read < create < increment < destroy.
        let c = ScaledIntelCost::paper_scaled(false);
        assert!(c.cost(PlatformOp::CounterRead) < c.cost(PlatformOp::CounterCreate));
        assert!(c.cost(PlatformOp::CounterCreate) < c.cost(PlatformOp::CounterIncrement));
        assert!(c.cost(PlatformOp::CounterIncrement) < c.cost(PlatformOp::CounterDestroy));
    }

    #[test]
    fn non_spinning_apply_returns_cost_instantly() {
        let c = ScaledIntelCost::paper_scaled(false);
        let start = Instant::now();
        let d = c.apply(PlatformOp::Quote);
        assert_eq!(d, Duration::from_millis(2));
        // Should return almost immediately (no spinning).
        assert!(start.elapsed() < Duration::from_millis(2));
    }

    #[test]
    fn spinning_apply_consumes_wall_time() {
        let mut c = ScaledIntelCost::paper_scaled(true);
        c.counter_read = Duration::from_micros(200);
        let start = Instant::now();
        let d = c.apply(PlatformOp::CounterRead);
        assert!(start.elapsed() >= d);
    }
}
