//! The simulated CPU root of trust: per-machine secrets and the `EGETKEY`
//! key-derivation instruction.
//!
//! The property the migration paper depends on (§II-B): *"the sealing key is
//! derived from the CPU secret, which is unique to each physical machine"*,
//! so sealed data cannot move between machines. `egetkey` reproduces exactly
//! that derivation structure with HKDF.

use crate::error::SgxError;
use crate::measurement::EnclaveIdentity;
use mig_crypto::hkdf::hkdf;
use std::collections::BTreeMap;

/// ECALL/OCALL boundary-crossing counts.
///
/// The simulator has no asynchronous OCALLs; platform services (EGETKEY,
/// EREPORT, quoting, counter NVRAM) are the enclave's exits to the
/// platform, so each accounted [`crate::cost::PlatformOp`] is counted as
/// one OCALL-equivalent transition.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct TransitionCounters {
    /// Enclave entries ([`crate::enclave::EnclaveHandle::ecall`]).
    pub ecalls: u64,
    /// Platform-service exits (accounted platform operations).
    pub ocalls: u64,
}

/// Per-machine transition tally with per-migration attribution.
///
/// Totals count every transition on the machine. Enclave code may
/// attribute the ECALL it is currently servicing to a migration trace id
/// (a *hash* of the transfer nonce — never the nonce itself) via
/// [`crate::enclave::EnclaveEnv::attribute_transition`]; subsequent
/// platform operations within the same ECALL are credited to the same
/// trace.
#[derive(Clone, Debug, Default)]
pub struct TransitionTally {
    /// All transitions on the machine.
    pub total: TransitionCounters,
    /// Transitions attributed to a migration trace id.
    pub by_trace: BTreeMap<[u8; 8], TransitionCounters>,
    current: Option<[u8; 8]>,
    /// Whether the in-progress ECALL may still be attributed to a trace.
    /// Read-only diagnostics ECALLs (telemetry polling mid-stream) clear
    /// this so no code path reached from them can inflate a migration's
    /// per-trace tally.
    attributable: bool,
}

impl TransitionTally {
    /// Counts an enclave entry; attribution resets until the enclave
    /// claims the ECALL for a trace.
    pub(crate) fn begin_ecall(&mut self) {
        self.total.ecalls += 1;
        self.current = None;
        self.attributable = true;
    }

    /// Clears attribution when the ECALL returns.
    pub(crate) fn end_ecall(&mut self) {
        self.current = None;
    }

    /// Marks the in-progress ECALL as non-transfer work: later
    /// [`TransitionTally::attribute`] calls within it are ignored.
    pub(crate) fn exclude(&mut self) {
        self.current = None;
        self.attributable = false;
    }

    /// Retroactively credits the in-progress ECALL to `trace` and routes
    /// its remaining platform operations there. Ignored when the ECALL
    /// has been excluded from attribution.
    pub(crate) fn attribute(&mut self, trace: [u8; 8]) {
        if !self.attributable {
            return;
        }
        if self.current != Some(trace) {
            self.current = Some(trace);
            self.by_trace.entry(trace).or_default().ecalls += 1;
        }
    }

    /// Counts a platform-service exit, credited to the attributed trace
    /// when one is active.
    pub(crate) fn ocall(&mut self) {
        self.total.ocalls += 1;
        if let Some(trace) = self.current {
            self.by_trace.entry(trace).or_default().ocalls += 1;
        }
    }
}

/// The per-machine CPU fuse secret that every derived key is rooted in.
#[derive(Clone)]
pub struct CpuSecret([u8; 32]);

impl std::fmt::Debug for CpuSecret {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("CpuSecret").finish_non_exhaustive()
    }
}

impl CpuSecret {
    /// Samples a fresh CPU secret (done once when a machine is "fused").
    #[must_use]
    pub fn random(rng: &mut impl rand::RngCore) -> Self {
        let mut bytes = [0u8; 32];
        rng.fill_bytes(&mut bytes);
        CpuSecret(bytes)
    }

    /// Deterministic secret for tests.
    #[must_use]
    pub fn from_seed(seed: [u8; 32]) -> Self {
        CpuSecret(seed)
    }

    pub(crate) fn as_bytes(&self) -> &[u8; 32] {
        &self.0
    }
}

/// Which identity the derived key is bound to (SGX `key_policy`).
///
/// `MrEnclave`-bound keys are exclusive to one enclave build; `MrSigner`
/// keys are shared by all enclaves from the same developer (the paper,
/// §II-A4, notes this enables enclave upgrades).
#[derive(Clone, Copy, PartialEq, Eq, Hash, Debug)]
pub enum KeyPolicy {
    /// Bind to the enclave measurement.
    MrEnclave,
    /// Bind to the signing identity.
    MrSigner,
}

impl KeyPolicy {
    pub(crate) fn as_u8(self) -> u8 {
        match self {
            KeyPolicy::MrEnclave => 0,
            KeyPolicy::MrSigner => 1,
        }
    }

    pub(crate) fn from_u8(v: u8) -> Result<Self, SgxError> {
        match v {
            0 => Ok(KeyPolicy::MrEnclave),
            1 => Ok(KeyPolicy::MrSigner),
            _ => Err(SgxError::Decode),
        }
    }
}

/// Which of the CPU's key families to derive (SGX `key_name`).
#[derive(Clone, Copy, PartialEq, Eq, Hash, Debug)]
pub enum KeyName {
    /// Sealing keys (`EGETKEY` with `SGX_KEYSELECT_SEAL`).
    Seal,
    /// Report keys used to MAC local-attestation reports.
    Report,
}

impl KeyName {
    fn label(self) -> &'static [u8] {
        match self {
            KeyName::Seal => b"seal",
            KeyName::Report => b"report",
        }
    }
}

/// A key-derivation request (SGX `sgx_key_request_t`).
#[derive(Clone, Copy, Debug)]
pub struct KeyRequest {
    /// Key family.
    pub name: KeyName,
    /// Identity binding policy.
    pub policy: KeyPolicy,
    /// Wear-out/diversification nonce; a fresh value per sealed blob.
    pub key_id: [u8; 16],
}

/// Derives a 128-bit key for `identity` on the machine owning `secret`.
///
/// The derivation binds: machine (CPU secret), key family, policy, the
/// policy-selected identity, and the caller-chosen `key_id`. Any change to
/// any input yields an unrelated key — which is precisely why sealed data
/// is neither portable across machines nor across enclave identities.
#[must_use]
pub fn egetkey(secret: &CpuSecret, identity: &EnclaveIdentity, req: &KeyRequest) -> [u8; 16] {
    let bound_identity: &[u8; 32] = match req.policy {
        KeyPolicy::MrEnclave => &identity.mr_enclave.0,
        KeyPolicy::MrSigner => &identity.mr_signer.0,
    };
    let mut info = Vec::with_capacity(64);
    info.extend_from_slice(b"sgx-sim.egetkey.v1|");
    info.extend_from_slice(req.name.label());
    info.push(b'|');
    info.push(req.policy.as_u8());
    info.extend_from_slice(bound_identity);
    info.extend_from_slice(&req.key_id);
    hkdf::<16>(b"sgx-sim.egetkey.salt", secret.as_bytes(), &info)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::measurement::{MrEnclave, MrSigner};

    fn identity(tag: u8) -> EnclaveIdentity {
        EnclaveIdentity {
            mr_enclave: MrEnclave([tag; 32]),
            mr_signer: MrSigner([tag.wrapping_add(1); 32]),
        }
    }

    fn req(name: KeyName, policy: KeyPolicy, key_id: u8) -> KeyRequest {
        KeyRequest {
            name,
            policy,
            key_id: [key_id; 16],
        }
    }

    #[test]
    fn derivation_is_deterministic() {
        let cpu = CpuSecret::from_seed([7; 32]);
        let r = req(KeyName::Seal, KeyPolicy::MrEnclave, 0);
        assert_eq!(
            egetkey(&cpu, &identity(1), &r),
            egetkey(&cpu, &identity(1), &r)
        );
    }

    #[test]
    fn different_machines_derive_different_keys() {
        let r = req(KeyName::Seal, KeyPolicy::MrEnclave, 0);
        let k1 = egetkey(&CpuSecret::from_seed([1; 32]), &identity(1), &r);
        let k2 = egetkey(&CpuSecret::from_seed([2; 32]), &identity(1), &r);
        assert_ne!(k1, k2);
    }

    #[test]
    fn mrenclave_policy_isolates_enclaves() {
        let cpu = CpuSecret::from_seed([7; 32]);
        let r = req(KeyName::Seal, KeyPolicy::MrEnclave, 0);
        assert_ne!(
            egetkey(&cpu, &identity(1), &r),
            egetkey(&cpu, &identity(9), &r)
        );
    }

    #[test]
    fn mrsigner_policy_shares_across_enclaves_of_same_signer() {
        let cpu = CpuSecret::from_seed([7; 32]);
        let r = req(KeyName::Seal, KeyPolicy::MrSigner, 0);
        let mut id_a = identity(1);
        let mut id_b = identity(2);
        // Same signer, different measurements.
        id_a.mr_signer = MrSigner([9; 32]);
        id_b.mr_signer = MrSigner([9; 32]);
        assert_eq!(egetkey(&cpu, &id_a, &r), egetkey(&cpu, &id_b, &r));
    }

    #[test]
    fn key_families_are_independent() {
        let cpu = CpuSecret::from_seed([7; 32]);
        let seal = req(KeyName::Seal, KeyPolicy::MrEnclave, 0);
        let report = req(KeyName::Report, KeyPolicy::MrEnclave, 0);
        assert_ne!(
            egetkey(&cpu, &identity(1), &seal),
            egetkey(&cpu, &identity(1), &report)
        );
    }

    #[test]
    fn key_id_diversifies() {
        let cpu = CpuSecret::from_seed([7; 32]);
        let r0 = req(KeyName::Seal, KeyPolicy::MrEnclave, 0);
        let r1 = req(KeyName::Seal, KeyPolicy::MrEnclave, 1);
        assert_ne!(
            egetkey(&cpu, &identity(1), &r0),
            egetkey(&cpu, &identity(1), &r1)
        );
    }

    #[test]
    fn policy_byte_round_trips() {
        for p in [KeyPolicy::MrEnclave, KeyPolicy::MrSigner] {
            assert_eq!(KeyPolicy::from_u8(p.as_u8()).unwrap(), p);
        }
        assert!(KeyPolicy::from_u8(9).is_err());
    }
}
