//! Local attestation reports (`EREPORT`).
//!
//! A report proves, to a *target* enclave **on the same machine**, which
//! enclave produced it. The CPU MACs the report body with a report key
//! derived from the CPU secret and the target's MRENCLAVE, so only the
//! target enclave on the same machine can verify it — the paper's §II-A6:
//! "local attestation inherently guarantees that the prover is a genuine
//! SGX enclave running on the same machine as the verifier".

use crate::error::SgxError;
use crate::measurement::{EnclaveIdentity, MrEnclave};
use crate::wire::{WireReader, WireWriter};

/// Length of the free-form data field a report can carry.
pub const REPORT_DATA_LEN: usize = 64;

/// Identifies the enclave a report is destined for.
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub struct TargetInfo {
    /// Measurement of the verifying enclave.
    pub mr_enclave: MrEnclave,
}

/// The 64-byte application data field of a report.
///
/// Attestation-based protocols put channel-binding hashes here (e.g. the
/// hash of Diffie–Hellman public keys).
#[derive(Clone, Copy, PartialEq, Eq)]
pub struct ReportData(pub [u8; REPORT_DATA_LEN]);

impl std::fmt::Debug for ReportData {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "ReportData({}..)", mig_crypto::hex_encode(&self.0[..8]))
    }
}

impl Default for ReportData {
    fn default() -> Self {
        ReportData([0; REPORT_DATA_LEN])
    }
}

impl ReportData {
    /// Embeds a 32-byte hash in the first half, zero-padding the rest.
    #[must_use]
    pub fn from_hash(hash: &[u8; 32]) -> Self {
        let mut data = [0u8; REPORT_DATA_LEN];
        data[..32].copy_from_slice(hash);
        ReportData(data)
    }

    /// Returns the embedded 32-byte prefix.
    #[must_use]
    pub fn hash_prefix(&self) -> [u8; 32] {
        self.0[..32].try_into().expect("64 >= 32")
    }
}

/// The MAC-covered portion of a report.
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub struct ReportBody {
    /// Identity of the *producing* enclave.
    pub identity: EnclaveIdentity,
    /// Application-chosen binding data.
    pub report_data: ReportData,
}

impl ReportBody {
    /// Canonical byte encoding (MAC/signature input).
    #[must_use]
    pub fn to_bytes(&self) -> Vec<u8> {
        let mut w = WireWriter::new();
        self.encode(&mut w);
        w.finish()
    }

    pub(crate) fn encode(&self, w: &mut WireWriter) {
        self.identity.encode(w);
        w.array(&self.report_data.0);
    }

    pub(crate) fn decode(r: &mut WireReader<'_>) -> Result<Self, SgxError> {
        Ok(ReportBody {
            identity: EnclaveIdentity::decode(r)?,
            report_data: ReportData(r.array()?),
        })
    }
}

/// A local attestation report: body plus CPU-computed MAC.
///
/// Produced by [`crate::enclave::EnclaveEnv::ereport`]; verified by the
/// target via [`crate::enclave::EnclaveEnv::verify_report`].
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub struct Report {
    /// The MAC-covered body.
    pub body: ReportBody,
    /// MRENCLAVE of the target (determines the verification key).
    pub target: MrEnclave,
    /// HMAC-SHA-256 tag under the target's report key.
    pub mac: [u8; 32],
}

impl Report {
    /// Serializes for transport through untrusted channels.
    #[must_use]
    pub fn to_bytes(&self) -> Vec<u8> {
        let mut w = WireWriter::new();
        self.encode(&mut w);
        w.finish()
    }

    pub(crate) fn encode(&self, w: &mut WireWriter) {
        self.body.encode(w);
        w.array(&self.target.0);
        w.array(&self.mac);
    }

    /// Parses a report from bytes.
    ///
    /// # Errors
    ///
    /// Returns [`SgxError::Decode`] on malformed input.
    pub fn from_bytes(bytes: &[u8]) -> Result<Self, SgxError> {
        let mut r = WireReader::new(bytes);
        let report = Self::decode(&mut r)?;
        r.finish()?;
        Ok(report)
    }

    pub(crate) fn decode(r: &mut WireReader<'_>) -> Result<Self, SgxError> {
        Ok(Report {
            body: ReportBody::decode(r)?,
            target: MrEnclave(r.array()?),
            mac: r.array()?,
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::measurement::MrSigner;

    fn body() -> ReportBody {
        ReportBody {
            identity: EnclaveIdentity {
                mr_enclave: MrEnclave([1; 32]),
                mr_signer: MrSigner([2; 32]),
            },
            report_data: ReportData::from_hash(&[3; 32]),
        }
    }

    #[test]
    fn report_round_trips_through_bytes() {
        let report = Report {
            body: body(),
            target: MrEnclave([9; 32]),
            mac: [7; 32],
        };
        let parsed = Report::from_bytes(&report.to_bytes()).unwrap();
        assert_eq!(parsed, report);
    }

    #[test]
    fn report_data_hash_embedding() {
        let d = ReportData::from_hash(&[0xAA; 32]);
        assert_eq!(d.hash_prefix(), [0xAA; 32]);
        assert_eq!(&d.0[32..], &[0u8; 32]);
    }

    #[test]
    fn body_bytes_differ_when_any_field_differs() {
        let a = body();
        let mut b = a;
        b.report_data = ReportData::from_hash(&[4; 32]);
        assert_ne!(a.to_bytes(), b.to_bytes());
        let mut c = a;
        c.identity.mr_enclave = MrEnclave([5; 32]);
        assert_ne!(a.to_bytes(), c.to_bytes());
    }

    #[test]
    fn malformed_report_bytes_rejected() {
        assert!(Report::from_bytes(&[1, 2, 3]).is_err());
        let report = Report {
            body: body(),
            target: MrEnclave([9; 32]),
            mac: [7; 32],
        };
        let mut bytes = report.to_bytes();
        bytes.push(0); // trailing garbage
        assert!(Report::from_bytes(&bytes).is_err());
    }
}
