//! Native SGX sealing (`sgx_seal_data` / `sgx_unseal_data`).
//!
//! Sealing encrypts enclave data under a key derived from the CPU secret
//! and the enclave identity (per the chosen [`KeyPolicy`]), using
//! AES-128-GCM exactly like the SDK. The sealed blob is *machine-bound*:
//! it cannot be unsealed on any other machine, which is the limitation
//! the paper's Migration Sealing Key works around.
//!
//! This module defines the blob format and the pure sealing/unsealing
//! logic; enclaves reach it through [`crate::enclave::EnclaveEnv::seal_data`]
//! and [`crate::enclave::EnclaveEnv::unseal_data`].

use crate::cpu::{egetkey, CpuSecret, KeyName, KeyPolicy, KeyRequest};
use crate::error::SgxError;
use crate::measurement::EnclaveIdentity;
use crate::wire::{WireReader, WireWriter};
use mig_crypto::gcm::AesGcm;

const FORMAT_VERSION: u8 = 1;

/// Parsed header of a sealed blob (everything except the ciphertext).
///
/// Exposed so tests and tools can inspect how a blob was sealed without
/// being able to decrypt it.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct SealedHeader {
    /// Identity-binding policy the sealing key was derived under.
    pub policy: KeyPolicy,
    /// Per-blob key diversifier.
    pub key_id: [u8; 16],
    /// AES-GCM nonce.
    pub nonce: [u8; 12],
    /// The authenticated-but-not-encrypted additional data.
    pub aad: Vec<u8>,
}

/// Inspects a sealed blob's header without decrypting.
///
/// # Errors
///
/// Returns [`SgxError::Decode`] on malformed input.
pub fn parse_sealed_header(blob: &[u8]) -> Result<SealedHeader, SgxError> {
    let mut r = WireReader::new(blob);
    let version = r.u8()?;
    if version != FORMAT_VERSION {
        return Err(SgxError::Decode);
    }
    let policy = KeyPolicy::from_u8(r.u8()?)?;
    let key_id: [u8; 16] = r.array()?;
    let nonce: [u8; 12] = r.array()?;
    let aad = r.bytes_vec()?;
    let _ct = r.bytes()?;
    r.finish()?;
    Ok(SealedHeader {
        policy,
        key_id,
        nonce,
        aad,
    })
}

/// Computes the sealed size for a given plaintext/AAD size (format
/// overhead is constant).
#[must_use]
pub fn sealed_size(aad_len: usize, plaintext_len: usize) -> usize {
    // version + policy + key_id + nonce + (len+aad) + (len+ct+tag)
    1 + 1 + 16 + 12 + 4 + aad_len + 4 + plaintext_len + 16
}

pub(crate) fn seal(
    cpu: &CpuSecret,
    identity: &EnclaveIdentity,
    policy: KeyPolicy,
    key_id: [u8; 16],
    nonce: [u8; 12],
    aad: &[u8],
    plaintext: &[u8],
) -> Vec<u8> {
    let key = egetkey(
        cpu,
        identity,
        &KeyRequest {
            name: KeyName::Seal,
            policy,
            key_id,
        },
    );
    let mut header = WireWriter::new();
    header
        .u8(FORMAT_VERSION)
        .u8(policy.as_u8())
        .array(&key_id)
        .array(&nonce)
        .bytes(aad);
    let header_bytes = header.finish();

    // The whole header (including user AAD) is authenticated.
    let aead = AesGcm::new(key);
    let ct = aead.seal(&nonce, &header_bytes, plaintext);

    let mut out = header_bytes;
    let mut tail = WireWriter::new();
    tail.bytes(&ct);
    out.extend_from_slice(&tail.finish());
    out
}

pub(crate) fn unseal(
    cpu: &CpuSecret,
    identity: &EnclaveIdentity,
    blob: &[u8],
) -> Result<(Vec<u8>, Vec<u8>), SgxError> {
    let mut r = WireReader::new(blob);
    let version = r.u8()?;
    if version != FORMAT_VERSION {
        return Err(SgxError::Decode);
    }
    let policy = KeyPolicy::from_u8(r.u8()?)?;
    let key_id: [u8; 16] = r.array()?;
    let nonce: [u8; 12] = r.array()?;
    let aad = r.bytes_vec()?;
    let ct = r.bytes_vec()?;
    r.finish()?;

    // Reconstruct the authenticated header exactly as sealed.
    let mut header = WireWriter::new();
    header
        .u8(FORMAT_VERSION)
        .u8(policy.as_u8())
        .array(&key_id)
        .array(&nonce)
        .bytes(&aad);
    let header_bytes = header.finish();

    let key = egetkey(
        cpu,
        identity,
        &KeyRequest {
            name: KeyName::Seal,
            policy,
            key_id,
        },
    );
    let aead = AesGcm::new(key);
    let plaintext = aead
        .open(&nonce, &header_bytes, &ct)
        .map_err(|_| SgxError::MacMismatch)?;
    Ok((plaintext, aad))
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::measurement::{MrEnclave, MrSigner};

    fn identity(tag: u8) -> EnclaveIdentity {
        EnclaveIdentity {
            mr_enclave: MrEnclave([tag; 32]),
            mr_signer: MrSigner([0xEE; 32]),
        }
    }

    fn seal_simple(cpu: &CpuSecret, id: &EnclaveIdentity, policy: KeyPolicy) -> Vec<u8> {
        seal(cpu, id, policy, [1; 16], [2; 12], b"aad", b"secret data")
    }

    #[test]
    fn seal_unseal_round_trip() {
        let cpu = CpuSecret::from_seed([5; 32]);
        let blob = seal_simple(&cpu, &identity(1), KeyPolicy::MrEnclave);
        let (pt, aad) = unseal(&cpu, &identity(1), &blob).unwrap();
        assert_eq!(pt, b"secret data");
        assert_eq!(aad, b"aad");
    }

    #[test]
    fn sealed_blob_is_machine_bound() {
        let cpu1 = CpuSecret::from_seed([5; 32]);
        let cpu2 = CpuSecret::from_seed([6; 32]);
        let blob = seal_simple(&cpu1, &identity(1), KeyPolicy::MrEnclave);
        assert_eq!(
            unseal(&cpu2, &identity(1), &blob).unwrap_err(),
            SgxError::MacMismatch
        );
    }

    #[test]
    fn mrenclave_policy_binds_to_exact_enclave() {
        let cpu = CpuSecret::from_seed([5; 32]);
        let blob = seal_simple(&cpu, &identity(1), KeyPolicy::MrEnclave);
        assert_eq!(
            unseal(&cpu, &identity(2), &blob).unwrap_err(),
            SgxError::MacMismatch
        );
    }

    #[test]
    fn mrsigner_policy_shared_across_versions() {
        let cpu = CpuSecret::from_seed([5; 32]);
        // Same signer, different measurement (e.g. an upgraded enclave).
        let v1 = identity(1);
        let mut v2 = identity(2);
        v2.mr_signer = v1.mr_signer;
        let blob = seal_simple(&cpu, &v1, KeyPolicy::MrSigner);
        let (pt, _) = unseal(&cpu, &v2, &blob).unwrap();
        assert_eq!(pt, b"secret data");
    }

    #[test]
    fn tampering_any_byte_is_detected() {
        let cpu = CpuSecret::from_seed([5; 32]);
        let blob = seal_simple(&cpu, &identity(1), KeyPolicy::MrEnclave);
        for i in 0..blob.len() {
            let mut bad = blob.clone();
            bad[i] ^= 1;
            assert!(unseal(&cpu, &identity(1), &bad).is_err(), "byte {i}");
        }
    }

    #[test]
    fn header_parses_without_key() {
        let cpu = CpuSecret::from_seed([5; 32]);
        let blob = seal(
            &cpu,
            &identity(1),
            KeyPolicy::MrSigner,
            [9; 16],
            [8; 12],
            b"public metadata",
            b"secret",
        );
        let header = parse_sealed_header(&blob).unwrap();
        assert_eq!(header.policy, KeyPolicy::MrSigner);
        assert_eq!(header.key_id, [9; 16]);
        assert_eq!(header.nonce, [8; 12]);
        assert_eq!(header.aad, b"public metadata");
    }

    #[test]
    fn sealed_size_matches_actual() {
        let cpu = CpuSecret::from_seed([5; 32]);
        for (aad_len, pt_len) in [(0usize, 0usize), (3, 10), (100, 1000)] {
            let blob = seal(
                &cpu,
                &identity(1),
                KeyPolicy::MrEnclave,
                [0; 16],
                [0; 12],
                &vec![1; aad_len],
                &vec![2; pt_len],
            );
            assert_eq!(blob.len(), sealed_size(aad_len, pt_len));
        }
    }
}
