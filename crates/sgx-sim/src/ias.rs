//! The simulated Intel Attestation Service (IAS).
//!
//! Remote verifiers cannot check an EPID quote themselves; they submit it
//! to IAS, which verifies the group credential and returns a *signed
//! attestation verification report* the verifier checks against Intel's
//! pinned report-signing key (§II-A6). This module reproduces that flow:
//! machines enroll at construction (receiving the group credential for
//! their Quoting Enclave), verifiers call [`AttestationService::verify_quote`],
//! and anyone holding the service's verifying key can validate the returned
//! [`AttestationEvidence`] offline. Platform revocation is supported, as in
//! EPID.

use crate::error::SgxError;
use crate::quote::{self, Quote};
use crate::report::ReportBody;
use crate::wire::{WireReader, WireWriter};
use mig_crypto::ed25519::{Signature, SigningKey, VerifyingKey};
use parking_lot::Mutex;
use std::collections::HashSet;
use std::sync::Arc;

/// Credentials a machine receives when it enrolls its Quoting Enclave.
#[derive(Clone)]
pub struct PlatformEnrollment {
    /// Pseudonymous platform identifier (revocation handle).
    pub platform_id: [u8; 16],
    pub(crate) group_secret: [u8; 32],
}

impl std::fmt::Debug for PlatformEnrollment {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("PlatformEnrollment")
            .field("platform_id", &mig_crypto::hex_encode(&self.platform_id))
            .finish_non_exhaustive()
    }
}

struct IasInner {
    group_secret: [u8; 32],
    signing: SigningKey,
    enrolled: HashSet<[u8; 16]>,
    revoked: HashSet<[u8; 16]>,
}

/// A handle to the (global, cloneable) attestation service.
///
/// # Example
///
/// ```
/// use rand::SeedableRng;
/// let mut rng = rand::rngs::StdRng::seed_from_u64(3);
/// let ias = sgx_sim::ias::AttestationService::new(&mut rng);
/// let _vk = ias.verifying_key(); // pinned into verifiers
/// ```
#[derive(Clone)]
pub struct AttestationService {
    inner: Arc<Mutex<IasInner>>,
    verifying_key: VerifyingKey,
}

impl std::fmt::Debug for AttestationService {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("AttestationService")
            .field("verifying_key", &self.verifying_key)
            .finish_non_exhaustive()
    }
}

impl AttestationService {
    /// Creates a fresh service with its own EPID group and report-signing
    /// key.
    #[must_use]
    pub fn new(rng: &mut impl rand::RngCore) -> Self {
        let mut group_secret = [0u8; 32];
        rng.fill_bytes(&mut group_secret);
        let signing = SigningKey::random(rng);
        let verifying_key = signing.verifying_key();
        AttestationService {
            inner: Arc::new(Mutex::new(IasInner {
                group_secret,
                signing,
                enrolled: HashSet::new(),
                revoked: HashSet::new(),
            })),
            verifying_key,
        }
    }

    /// The report-signing verification key remote parties pin.
    #[must_use]
    pub fn verifying_key(&self) -> VerifyingKey {
        self.verifying_key
    }

    /// Enrolls a new platform, handing it the group credential.
    pub fn enroll(&self, rng: &mut impl rand::RngCore) -> PlatformEnrollment {
        let mut platform_id = [0u8; 16];
        rng.fill_bytes(&mut platform_id);
        let mut inner = self.inner.lock();
        inner.enrolled.insert(platform_id);
        PlatformEnrollment {
            platform_id,
            group_secret: inner.group_secret,
        }
    }

    /// Revokes a platform; its future quotes will be rejected.
    pub fn revoke(&self, platform_id: [u8; 16]) {
        self.inner.lock().revoked.insert(platform_id);
    }

    /// Verifies a quote and returns signed evidence for the relying party.
    ///
    /// # Errors
    ///
    /// Returns [`SgxError::QuoteVerificationFailed`] if the platform is
    /// unknown or revoked, or the group MAC does not verify.
    pub fn verify_quote(&self, q: &Quote) -> Result<AttestationEvidence, SgxError> {
        let inner = self.inner.lock();
        if !inner.enrolled.contains(&q.platform_id)
            || inner.revoked.contains(&q.platform_id)
            || !quote::verify_mac(&inner.group_secret, q)
        {
            return Err(SgxError::QuoteVerificationFailed);
        }
        let signed_bytes = AttestationEvidence::signed_bytes(&q.body, &q.platform_id);
        let signature = inner.signing.sign(&signed_bytes);
        Ok(AttestationEvidence {
            body: q.body,
            platform_id: q.platform_id,
            signature,
        })
    }
}

/// An IAS-signed attestation verification report.
///
/// Verifiable offline against the pinned [`AttestationService::verifying_key`].
#[derive(Clone, PartialEq, Eq, Debug)]
pub struct AttestationEvidence {
    /// The attested enclave's report body.
    pub body: ReportBody,
    /// The attested platform.
    pub platform_id: [u8; 16],
    /// IAS signature over body and platform id.
    pub signature: Signature,
}

impl AttestationEvidence {
    fn signed_bytes(body: &ReportBody, platform_id: &[u8; 16]) -> Vec<u8> {
        let mut w = WireWriter::new();
        w.array(b"sgx-sim.avr.v1\0\0");
        body.encode(&mut w);
        w.array(platform_id);
        w.finish()
    }

    /// Verifies the IAS signature and returns the attested body.
    ///
    /// # Errors
    ///
    /// Returns [`SgxError::QuoteVerificationFailed`] if the signature does
    /// not verify under `ias_key`.
    pub fn verify(&self, ias_key: &VerifyingKey) -> Result<&ReportBody, SgxError> {
        ias_key
            .verify(
                &Self::signed_bytes(&self.body, &self.platform_id),
                &self.signature,
            )
            .map_err(|_| SgxError::QuoteVerificationFailed)?;
        Ok(&self.body)
    }

    /// Serializes the evidence for transport.
    #[must_use]
    pub fn to_bytes(&self) -> Vec<u8> {
        let mut w = WireWriter::new();
        self.body.encode(&mut w);
        w.array(&self.platform_id).array(&self.signature.0);
        w.finish()
    }

    /// Parses evidence from bytes.
    ///
    /// # Errors
    ///
    /// Returns [`SgxError::Decode`] on malformed input.
    pub fn from_bytes(bytes: &[u8]) -> Result<Self, SgxError> {
        let mut r = WireReader::new(bytes);
        let body = ReportBody::decode(&mut r)?;
        let platform_id: [u8; 16] = r.array()?;
        let signature = Signature(r.array::<64>()?);
        r.finish()?;
        Ok(AttestationEvidence {
            body,
            platform_id,
            signature,
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::measurement::{EnclaveIdentity, MrEnclave, MrSigner};
    use crate::report::ReportData;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    fn body() -> ReportBody {
        ReportBody {
            identity: EnclaveIdentity {
                mr_enclave: MrEnclave([1; 32]),
                mr_signer: MrSigner([2; 32]),
            },
            report_data: ReportData::from_hash(&[3; 32]),
        }
    }

    fn setup() -> (AttestationService, PlatformEnrollment, StdRng) {
        let mut rng = StdRng::seed_from_u64(17);
        let ias = AttestationService::new(&mut rng);
        let platform = ias.enroll(&mut rng);
        (ias, platform, rng)
    }

    #[test]
    fn enrolled_platform_quote_verifies_end_to_end() {
        let (ias, platform, _) = setup();
        let q = quote::generate(&platform.group_secret, platform.platform_id, body());
        let evidence = ias.verify_quote(&q).unwrap();
        let verified = evidence.verify(&ias.verifying_key()).unwrap();
        assert_eq!(*verified, body());
    }

    #[test]
    fn unknown_platform_rejected() {
        let (ias, platform, _) = setup();
        let mut q = quote::generate(&platform.group_secret, platform.platform_id, body());
        q.platform_id = [0xFF; 16]; // not enrolled (also breaks the MAC)
        assert_eq!(
            ias.verify_quote(&q).unwrap_err(),
            SgxError::QuoteVerificationFailed
        );
    }

    #[test]
    fn revoked_platform_rejected() {
        let (ias, platform, _) = setup();
        let q = quote::generate(&platform.group_secret, platform.platform_id, body());
        assert!(ias.verify_quote(&q).is_ok());
        ias.revoke(platform.platform_id);
        assert_eq!(
            ias.verify_quote(&q).unwrap_err(),
            SgxError::QuoteVerificationFailed
        );
    }

    #[test]
    fn forged_quote_rejected() {
        let (ias, platform, _) = setup();
        // Forged with a guessed group secret.
        let q = quote::generate(&[0u8; 32], platform.platform_id, body());
        assert_eq!(
            ias.verify_quote(&q).unwrap_err(),
            SgxError::QuoteVerificationFailed
        );
    }

    #[test]
    fn evidence_signature_is_checked() {
        let (ias, platform, mut rng) = setup();
        let q = quote::generate(&platform.group_secret, platform.platform_id, body());
        let mut evidence = ias.verify_quote(&q).unwrap();
        // Tampered body must fail offline verification.
        evidence.body.report_data = ReportData::from_hash(&[0xAB; 32]);
        assert!(evidence.verify(&ias.verifying_key()).is_err());
        // A different IAS key must fail too.
        let other = AttestationService::new(&mut rng);
        let evidence = ias.verify_quote(&q).unwrap();
        assert!(evidence.verify(&other.verifying_key()).is_err());
    }

    #[test]
    fn evidence_bytes_round_trip() {
        let (ias, platform, _) = setup();
        let q = quote::generate(&platform.group_secret, platform.platform_id, body());
        let evidence = ias.verify_quote(&q).unwrap();
        let parsed = AttestationEvidence::from_bytes(&evidence.to_bytes()).unwrap();
        assert_eq!(parsed, evidence);
        parsed.verify(&ias.verifying_key()).unwrap();
    }

    #[test]
    fn two_services_are_independent_groups() {
        let mut rng = StdRng::seed_from_u64(18);
        let ias1 = AttestationService::new(&mut rng);
        let ias2 = AttestationService::new(&mut rng);
        let p1 = ias1.enroll(&mut rng);
        let q = quote::generate(&p1.group_secret, p1.platform_id, body());
        assert!(ias1.verify_quote(&q).is_ok());
        assert!(ias2.verify_quote(&q).is_err());
    }
}
