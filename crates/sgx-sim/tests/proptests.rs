//! Property-based tests for the simulated SGX platform.

use proptest::prelude::*;
use rand::rngs::StdRng;
use rand::SeedableRng;
use sgx_sim::counters::CounterStore;
use sgx_sim::cpu::{egetkey, CpuSecret, KeyName, KeyPolicy, KeyRequest};
use sgx_sim::measurement::{measure, EnclaveIdentity, MrEnclave, MrSigner};
use sgx_sim::SgxError;

fn identity(mr: [u8; 32]) -> EnclaveIdentity {
    EnclaveIdentity {
        mr_enclave: MrEnclave(mr),
        mr_signer: MrSigner([1; 32]),
    }
}

/// Operations an adversarial/chaotic host can drive against the counter
/// store.
#[derive(Clone, Debug)]
enum CounterOp {
    Create,
    Increment(u8),
    Read(u8),
    Destroy(u8),
}

fn counter_op() -> impl Strategy<Value = CounterOp> {
    prop_oneof![
        2 => Just(CounterOp::Create),
        4 => (0u8..8).prop_map(CounterOp::Increment),
        2 => (0u8..8).prop_map(CounterOp::Read),
        1 => (0u8..8).prop_map(CounterOp::Destroy),
    ]
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    /// The counter store never violates monotonicity, never resurrects a
    /// destroyed UUID, and read always reflects the increments applied —
    /// under arbitrary op interleavings.
    #[test]
    fn counter_store_invariants(seed in any::<u64>(),
                                ops in proptest::collection::vec(counter_op(), 1..120)) {
        let owner = MrEnclave([7; 32]);
        let mut store = CounterStore::new();
        let mut rng = StdRng::seed_from_u64(seed);
        // Shadow model: live counters with expected values, dead UUIDs.
        let mut live: Vec<(sgx_sim::counters::CounterUuid, u32)> = Vec::new();
        let mut dead: Vec<sgx_sim::counters::CounterUuid> = Vec::new();

        for op in ops {
            match op {
                CounterOp::Create => {
                    if live.len() < 256 {
                        let (uuid, v) = store.create(owner, &mut rng).unwrap();
                        prop_assert_eq!(v, 0);
                        live.push((uuid, 0));
                    }
                }
                CounterOp::Increment(i) => {
                    let len = live.len().max(1);
                    if let Some((uuid, value)) = live.get_mut(i as usize % len) {
                        let v = store.increment(owner, uuid).unwrap();
                        *value += 1;
                        prop_assert_eq!(v, *value);
                    }
                }
                CounterOp::Read(i) => {
                    if let Some((uuid, value)) = live.get(i as usize % live.len().max(1)) {
                        prop_assert_eq!(store.read(owner, uuid).unwrap(), *value);
                    }
                }
                CounterOp::Destroy(i) => {
                    if !live.is_empty() {
                        let (uuid, _) = live.remove(i as usize % live.len());
                        store.destroy(owner, &uuid).unwrap();
                        dead.push(uuid);
                    }
                }
            }
            // Dead UUIDs stay dead forever.
            for uuid in &dead {
                prop_assert_eq!(store.read(owner, uuid).unwrap_err(), SgxError::CounterNotFound);
            }
            prop_assert_eq!(store.live_count(owner), live.len());
        }
    }

    /// EGETKEY is a pure function of (secret, identity, request) and any
    /// single-field change yields a different key.
    #[test]
    fn egetkey_is_deterministic_and_separating(
        secret_a in any::<[u8; 32]>(),
        secret_b in any::<[u8; 32]>(),
        mr_a in any::<[u8; 32]>(),
        mr_b in any::<[u8; 32]>(),
        key_id in any::<[u8; 16]>(),
    ) {
        prop_assume!(secret_a != secret_b);
        prop_assume!(mr_a != mr_b);
        let req = KeyRequest { name: KeyName::Seal, policy: KeyPolicy::MrEnclave, key_id };
        let cpu_a = CpuSecret::from_seed(secret_a);
        let cpu_b = CpuSecret::from_seed(secret_b);

        let k = egetkey(&cpu_a, &identity(mr_a), &req);
        prop_assert_eq!(k, egetkey(&cpu_a, &identity(mr_a), &req));
        prop_assert_ne!(k, egetkey(&cpu_b, &identity(mr_a), &req));
        prop_assert_ne!(k, egetkey(&cpu_a, &identity(mr_b), &req));
        let report_req = KeyRequest { name: KeyName::Report, policy: KeyPolicy::MrEnclave, key_id };
        prop_assert_ne!(k, egetkey(&cpu_a, &identity(mr_a), &report_req));
    }

    /// Measurement is injective over (name, version, code) for the
    /// sampled space, and deterministic.
    #[test]
    fn measurement_determinism_and_sensitivity(
        name in "[a-z]{1,12}",
        version in any::<u32>(),
        code in proptest::collection::vec(any::<u8>(), 0..6000),
        flip in any::<usize>(),
    ) {
        let m = measure(&name, version, &code);
        prop_assert_eq!(m, measure(&name, version, &code));
        prop_assert_ne!(m, measure(&name, version.wrapping_add(1), &code));
        if !code.is_empty() {
            let mut tampered = code.clone();
            let i = flip % tampered.len();
            tampered[i] ^= 1;
            prop_assert_ne!(m, measure(&name, version, &tampered));
        }
    }
}
