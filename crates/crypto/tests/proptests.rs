//! Property-based tests for the crypto substrate.

use mig_crypto::ed25519::SigningKey;
use mig_crypto::gcm::{AesGcm, TAG_LEN};
use mig_crypto::hkdf::{hkdf_expand, hkdf_extract};
use mig_crypto::hmac::{HmacSha256, HmacSha512};
use mig_crypto::sha256::{sha256, Sha256};
use mig_crypto::sha512::{sha512, Sha512};
use mig_crypto::x25519::StaticSecret;
use proptest::prelude::*;

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    #[test]
    fn sha256_incremental_equals_one_shot(data in proptest::collection::vec(any::<u8>(), 0..2048),
                                          split in 0usize..2048) {
        let split = split.min(data.len());
        let mut h = Sha256::new();
        h.update(&data[..split]);
        h.update(&data[split..]);
        prop_assert_eq!(h.finalize(), sha256(&data));
    }

    #[test]
    fn sha512_incremental_equals_one_shot(data in proptest::collection::vec(any::<u8>(), 0..2048),
                                          split in 0usize..2048) {
        let split = split.min(data.len());
        let mut h = Sha512::new();
        h.update(&data[..split]);
        h.update(&data[split..]);
        prop_assert_eq!(h.finalize(), sha512(&data));
    }

    #[test]
    fn hmac_verify_accepts_own_tags(key in proptest::collection::vec(any::<u8>(), 0..200),
                                    data in proptest::collection::vec(any::<u8>(), 0..500)) {
        let t256 = HmacSha256::mac(&key, &data);
        prop_assert!(HmacSha256::verify(&key, &data, &t256));
        let t512 = HmacSha512::mac(&key, &data);
        prop_assert!(HmacSha512::verify(&key, &data, &t512));
    }

    #[test]
    fn hmac_tag_depends_on_every_input(key in proptest::collection::vec(any::<u8>(), 1..64),
                                       data in proptest::collection::vec(any::<u8>(), 1..128),
                                       idx in 0usize..128) {
        let tag = HmacSha256::mac(&key, &data);
        let mut tampered = data.clone();
        let i = idx % tampered.len();
        tampered[i] ^= 0x01;
        prop_assert_ne!(HmacSha256::mac(&key, &tampered), tag);
    }

    #[test]
    fn hkdf_output_prefix_stability(ikm in proptest::collection::vec(any::<u8>(), 1..64),
                                    salt in proptest::collection::vec(any::<u8>(), 0..64),
                                    info in proptest::collection::vec(any::<u8>(), 0..64),
                                    len in 1usize..96) {
        let prk = hkdf_extract(&salt, &ikm);
        let mut long = [0u8; 96];
        hkdf_expand(&prk, &info, &mut long);
        let mut short = vec![0u8; len];
        hkdf_expand(&prk, &info, &mut short);
        prop_assert_eq!(&long[..len], &short[..]);
    }

    #[test]
    fn gcm_round_trip(key in any::<[u8; 16]>(),
                      nonce in any::<[u8; 12]>(),
                      aad in proptest::collection::vec(any::<u8>(), 0..128),
                      pt in proptest::collection::vec(any::<u8>(), 0..512)) {
        let aead = AesGcm::new(key);
        let sealed = aead.seal(&nonce, &aad, &pt);
        prop_assert_eq!(sealed.len(), pt.len() + TAG_LEN);
        prop_assert_eq!(aead.open(&nonce, &aad, &sealed).unwrap(), pt);
    }

    #[test]
    fn gcm_tamper_always_detected(key in any::<[u8; 16]>(),
                                  nonce in any::<[u8; 12]>(),
                                  pt in proptest::collection::vec(any::<u8>(), 0..128),
                                  idx in any::<usize>(),
                                  bit in 0u8..8) {
        let aead = AesGcm::new(key);
        let mut sealed = aead.seal(&nonce, b"aad", &pt);
        let i = idx % sealed.len();
        sealed[i] ^= 1 << bit;
        prop_assert!(aead.open(&nonce, b"aad", &sealed).is_err());
    }

    #[test]
    fn gcm_wrong_nonce_rejected(key in any::<[u8; 16]>(),
                                n1 in any::<[u8; 12]>(),
                                n2 in any::<[u8; 12]>(),
                                pt in proptest::collection::vec(any::<u8>(), 1..64)) {
        prop_assume!(n1 != n2);
        let aead = AesGcm::new(key);
        let sealed = aead.seal(&n1, b"", &pt);
        prop_assert!(aead.open(&n2, b"", &sealed).is_err());
    }

    #[test]
    fn x25519_agreement_is_symmetric(sa in any::<[u8; 32]>(), sb in any::<[u8; 32]>()) {
        let a = StaticSecret::from_bytes(sa);
        let b = StaticSecret::from_bytes(sb);
        prop_assert_eq!(
            a.diffie_hellman(&b.public_key()),
            b.diffie_hellman(&a.public_key())
        );
    }

    #[test]
    fn ed25519_sign_verify_round_trip(seed in any::<[u8; 32]>(),
                                      msg in proptest::collection::vec(any::<u8>(), 0..256)) {
        let key = SigningKey::from_seed(seed);
        let sig = key.sign(&msg);
        prop_assert!(key.verifying_key().verify(&msg, &sig).is_ok());
    }

    #[test]
    fn ed25519_signature_binds_message(seed in any::<[u8; 32]>(),
                                       msg in proptest::collection::vec(any::<u8>(), 1..128),
                                       idx in any::<usize>()) {
        let key = SigningKey::from_seed(seed);
        let sig = key.sign(&msg);
        let mut tampered = msg.clone();
        let i = idx % tampered.len();
        tampered[i] ^= 0x80;
        prop_assert!(key.verifying_key().verify(&tampered, &sig).is_err());
    }
}
