//! From-scratch cryptographic primitives for the `sgx-migrate` workspace.
//!
//! The simulated SGX platform (`sgx-sim`) and the migration protocol
//! (`mig-core`) need real cryptography — sealing is AES-GCM, attestation
//! channels are Diffie–Hellman + AEAD, operator credentials are signatures —
//! and no cryptography crates are available in the offline dependency set.
//! This crate therefore implements the required primitives directly from
//! their specifications:
//!
//! * [`sha256`] / [`sha512`] — FIPS 180-4 hash functions,
//! * [`hmac`] — RFC 2104 / FIPS 198-1 message authentication,
//! * [`hkdf`] — RFC 5869 key derivation,
//! * [`aes`] — FIPS 197 AES-128 block cipher,
//! * [`gcm`] — NIST SP 800-38D AES-128-GCM authenticated encryption,
//! * [`x25519`] — RFC 7748 Diffie–Hellman over Curve25519,
//! * [`ed25519`] — RFC 8032 signatures,
//! * [`ct`] — constant-time comparison helpers,
//! * [`zeroize`] — best-effort scrubbing of key material on drop.
//!
//! Every primitive is validated against the published test vectors of its
//! specification (see the unit tests in each module) plus property-based
//! round-trip tests.
//!
//! # Security note
//!
//! This code backs a *research simulator*. The implementations are correct
//! against the specification vectors, and tag/signature comparisons are
//! constant-time, but no effort has been made to harden the field arithmetic
//! of the curve code against timing side channels. Do not reuse it to protect
//! production secrets.
//!
//! # Example
//!
//! ```
//! use mig_crypto::{gcm::AesGcm, sha256::sha256};
//!
//! # fn main() -> Result<(), mig_crypto::CryptoError> {
//! let key = sha256(b"example key material");
//! let aead = AesGcm::new(key[..16].try_into().unwrap());
//! let nonce = [7u8; 12];
//! let sealed = aead.seal(&nonce, b"associated data", b"secret");
//! let opened = aead.open(&nonce, b"associated data", &sealed)?;
//! assert_eq!(opened, b"secret");
//! # Ok(())
//! # }
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod aes;
pub mod ct;
pub mod ed25519;
pub mod gcm;
pub mod hkdf;
pub mod hmac;
pub mod sha256;
pub mod sha512;
pub mod x25519;
pub mod zeroize;

mod curve25519;

use std::error::Error;
use std::fmt;

/// Errors produced by the primitives in this crate.
///
/// The error deliberately carries no detail about *why* an authenticated
/// operation failed: distinguishing tag or decode failures is a classic
/// oracle.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
#[non_exhaustive]
pub enum CryptoError {
    /// An authentication tag or signature did not verify.
    AuthenticationFailed,
    /// An input had an invalid length (e.g. a truncated ciphertext).
    InvalidLength,
    /// An encoded curve point could not be decoded.
    InvalidPoint,
}

impl fmt::Display for CryptoError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            CryptoError::AuthenticationFailed => write!(f, "authentication failed"),
            CryptoError::InvalidLength => write!(f, "invalid input length"),
            CryptoError::InvalidPoint => write!(f, "invalid curve point encoding"),
        }
    }
}

impl Error for CryptoError {}

/// Convenience alias used throughout the crate.
pub type Result<T> = std::result::Result<T, CryptoError>;

/// Decodes a hexadecimal string; panics on malformed input.
///
/// Intended for tests and fixtures, where the input is a literal.
///
/// # Panics
///
/// Panics if `s` has odd length or contains a non-hex character.
///
/// # Example
///
/// ```
/// assert_eq!(mig_crypto::hex_decode("00ff"), vec![0x00, 0xff]);
/// ```
pub fn hex_decode(s: &str) -> Vec<u8> {
    assert!(
        s.len().is_multiple_of(2),
        "hex string must have even length"
    );
    (0..s.len())
        .step_by(2)
        .map(|i| u8::from_str_radix(&s[i..i + 2], 16).expect("invalid hex digit"))
        .collect()
}

/// Encodes bytes as a lowercase hexadecimal string.
///
/// # Example
///
/// ```
/// assert_eq!(mig_crypto::hex_encode(&[0x00, 0xff]), "00ff");
/// ```
pub fn hex_encode(bytes: &[u8]) -> String {
    use std::fmt::Write as _;
    let mut s = String::with_capacity(bytes.len() * 2);
    for b in bytes {
        let _ = write!(s, "{b:02x}");
    }
    s
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn error_display_is_nonempty_and_lowercase() {
        for e in [
            CryptoError::AuthenticationFailed,
            CryptoError::InvalidLength,
            CryptoError::InvalidPoint,
        ] {
            let s = e.to_string();
            assert!(!s.is_empty());
            assert!(s.chars().next().unwrap().is_lowercase());
        }
    }

    #[test]
    fn error_is_send_sync() {
        fn assert_send_sync<T: Send + Sync>() {}
        assert_send_sync::<CryptoError>();
    }

    #[test]
    fn hex_round_trip() {
        let bytes: Vec<u8> = (0..=255).collect();
        assert_eq!(hex_decode(&hex_encode(&bytes)), bytes);
    }

    #[test]
    #[should_panic(expected = "even length")]
    fn hex_decode_rejects_odd_length() {
        hex_decode("abc");
    }
}
