//! X25519 Diffie–Hellman key agreement (RFC 7748).
//!
//! Every secure channel in the migration protocol — Migration Library ↔
//! Migration Enclave (local attestation) and Migration Enclave ↔ Migration
//! Enclave (remote attestation) — starts with an X25519 exchange whose
//! public keys are bound into the attestation evidence, mirroring the
//! SGX SDK's `sgx_dh` and remote-attestation key-exchange libraries.
//! Validated against the RFC 7748 §5.2 and §6.1 test vectors.

use crate::curve25519::Fe;

/// Length of X25519 public keys, secret keys, and shared secrets.
pub const KEY_LEN: usize = 32;

/// An X25519 secret key (a clamped scalar).
///
/// # Example
///
/// ```
/// use mig_crypto::x25519::StaticSecret;
/// use rand::SeedableRng;
///
/// let mut rng = rand::rngs::StdRng::seed_from_u64(1);
/// let a = StaticSecret::random(&mut rng);
/// let b = StaticSecret::random(&mut rng);
/// assert_eq!(
///     a.diffie_hellman(&b.public_key()),
///     b.diffie_hellman(&a.public_key()),
/// );
/// ```
#[derive(Clone)]
pub struct StaticSecret {
    scalar: [u8; KEY_LEN],
}

impl std::fmt::Debug for StaticSecret {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("StaticSecret").finish_non_exhaustive()
    }
}

impl StaticSecret {
    /// Creates a secret key from 32 uniformly random bytes (clamped per
    /// RFC 7748).
    #[must_use]
    pub fn from_bytes(mut bytes: [u8; KEY_LEN]) -> Self {
        bytes[0] &= 248;
        bytes[31] &= 127;
        bytes[31] |= 64;
        StaticSecret { scalar: bytes }
    }

    /// Samples a fresh secret key from `rng`.
    #[must_use]
    pub fn random(rng: &mut impl rand::RngCore) -> Self {
        let mut bytes = [0u8; KEY_LEN];
        rng.fill_bytes(&mut bytes);
        Self::from_bytes(bytes)
    }

    /// Returns the corresponding public key.
    #[must_use]
    pub fn public_key(&self) -> PublicKey {
        PublicKey(x25519(&self.scalar, &BASE_POINT_U))
    }

    /// Computes the shared secret with `peer`.
    ///
    /// The result is raw ladder output; callers must run it through a KDF
    /// (see [`crate::hkdf`]) before using it as key material.
    #[must_use]
    pub fn diffie_hellman(&self, peer: &PublicKey) -> [u8; KEY_LEN] {
        x25519(&self.scalar, &peer.0)
    }
}

/// An X25519 public key (a u-coordinate).
#[derive(Clone, Copy, PartialEq, Eq, Hash)]
pub struct PublicKey(pub [u8; KEY_LEN]);

impl std::fmt::Debug for PublicKey {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "PublicKey({})", crate::hex_encode(&self.0))
    }
}

impl AsRef<[u8]> for PublicKey {
    fn as_ref(&self) -> &[u8] {
        &self.0
    }
}

impl From<[u8; KEY_LEN]> for PublicKey {
    fn from(bytes: [u8; KEY_LEN]) -> Self {
        PublicKey(bytes)
    }
}

/// The base point u = 9.
const BASE_POINT_U: [u8; 32] = {
    let mut b = [0u8; 32];
    b[0] = 9;
    b
};

/// The raw X25519 function: scalar multiplication on the Montgomery curve.
///
/// `scalar` is clamped as RFC 7748 requires, so passing unclamped bytes is
/// safe.
#[must_use]
pub fn x25519(scalar: &[u8; KEY_LEN], u: &[u8; KEY_LEN]) -> [u8; KEY_LEN] {
    let mut k = *scalar;
    k[0] &= 248;
    k[31] &= 127;
    k[31] |= 64;

    let x1 = Fe::from_bytes(u);
    let mut x2 = Fe::ONE;
    let mut z2 = Fe::ZERO;
    let mut x3 = x1;
    let mut z3 = Fe::ONE;
    let mut swap = false;

    let a24 = Fe::from_u64(121665);

    for t in (0..255).rev() {
        let k_t = (k[t / 8] >> (t % 8)) & 1 == 1;
        swap ^= k_t;
        Fe::cswap(swap, &mut x2, &mut x3);
        Fe::cswap(swap, &mut z2, &mut z3);
        swap = k_t;

        let a = x2.add(z2);
        let aa = a.square();
        let b = x2.sub(z2);
        let bb = b.square();
        let e = aa.sub(bb);
        let c = x3.add(z3);
        let d = x3.sub(z3);
        let da = d.mul(a);
        let cb = c.mul(b);
        x3 = da.add(cb).square();
        z3 = x1.mul(da.sub(cb).square());
        x2 = aa.mul(bb);
        z2 = e.mul(aa.add(a24.mul(e)));
    }
    Fe::cswap(swap, &mut x2, &mut x3);
    Fe::cswap(swap, &mut z2, &mut z3);

    x2.mul(z2.invert()).to_bytes()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{hex_decode, hex_encode};
    use rand::SeedableRng;

    #[test]
    fn rfc7748_vector_1() {
        let scalar: [u8; 32] =
            hex_decode("a546e36bf0527c9d3b16154b82465edd62144c0ac1fc5a18506a2244ba449ac4")
                .try_into()
                .unwrap();
        let u: [u8; 32] =
            hex_decode("e6db6867583030db3594c1a424b15f7c726624ec26b3353b10a903a6d0ab1c4c")
                .try_into()
                .unwrap();
        assert_eq!(
            hex_encode(&x25519(&scalar, &u)),
            "c3da55379de9c6908e94ea4df28d084f32eccf03491c71f754b4075577a28552"
        );
    }

    #[test]
    fn rfc7748_vector_2() {
        let scalar: [u8; 32] =
            hex_decode("4b66e9d4d1b4673c5ad22691957d6af5c11b6421e0ea01d42ca4169e7918ba0d")
                .try_into()
                .unwrap();
        let u: [u8; 32] =
            hex_decode("e5210f12786811d3f4b7959d0538ae2c31dbe7106fc03c3efc4cd549c715a493")
                .try_into()
                .unwrap();
        assert_eq!(
            hex_encode(&x25519(&scalar, &u)),
            "95cbde9476e8907d7aade45cb4b873f88b595a68799fa152e6f8f7647aac7957"
        );
    }

    #[test]
    fn rfc7748_iterated_once() {
        // One iteration of the §5.2 iteration test.
        let mut k: [u8; 32] = BASE_POINT_U;
        k[0] = 9;
        let mut u = BASE_POINT_U;
        let k1 = x25519(&k, &u);
        u = k;
        let _ = u;
        assert_eq!(
            hex_encode(&k1),
            "422c8e7a6227d7bca1350b3e2bb7279f7897b87bb6854b783c60e80311ae3079"
        );
    }

    #[test]
    fn rfc7748_iterated_thousand() {
        let mut k = BASE_POINT_U;
        let mut u = BASE_POINT_U;
        for _ in 0..1000 {
            let new_k = x25519(&k, &u);
            u = k;
            k = new_k;
        }
        assert_eq!(
            hex_encode(&k),
            "684cf59ba83309552800ef566f2f4d3c1c3887c49360e3875f2eb94d99532c51"
        );
    }

    #[test]
    fn rfc7748_alice_bob_shared_secret() {
        let alice_sk: [u8; 32] =
            hex_decode("77076d0a7318a57d3c16c17251b26645df4c2f87ebc0992ab177fba51db92c2a")
                .try_into()
                .unwrap();
        let bob_sk: [u8; 32] =
            hex_decode("5dab087e624a8a4b79e17f8b83800ee66f3bb1292618b6fd1c2f8b27ff88e0eb")
                .try_into()
                .unwrap();
        let alice = StaticSecret::from_bytes(alice_sk);
        let bob = StaticSecret::from_bytes(bob_sk);

        assert_eq!(
            hex_encode(&alice.public_key().0),
            "8520f0098930a754748b7ddcb43ef75a0dbf3a0d26381af4eba4a98eaa9b4e6a"
        );
        assert_eq!(
            hex_encode(&bob.public_key().0),
            "de9edb7d7b7dc1b4d35b61c2ece435373f8343c85b78674dadfc7e146f882b4f"
        );

        let shared_a = alice.diffie_hellman(&bob.public_key());
        let shared_b = bob.diffie_hellman(&alice.public_key());
        assert_eq!(shared_a, shared_b);
        assert_eq!(
            hex_encode(&shared_a),
            "4a5d9d5ba4ce2de1728e3bf480350f25e07e21c947d19e3376f09b3c1e161742"
        );
    }

    #[test]
    fn random_keypairs_agree() {
        let mut rng = rand::rngs::StdRng::seed_from_u64(42);
        for _ in 0..8 {
            let a = StaticSecret::random(&mut rng);
            let b = StaticSecret::random(&mut rng);
            assert_eq!(
                a.diffie_hellman(&b.public_key()),
                b.diffie_hellman(&a.public_key())
            );
        }
    }

    #[test]
    fn distinct_secrets_distinct_publics() {
        let mut rng = rand::rngs::StdRng::seed_from_u64(7);
        let a = StaticSecret::random(&mut rng);
        let b = StaticSecret::random(&mut rng);
        assert_ne!(a.public_key().0, b.public_key().0);
    }
}
