//! HKDF (RFC 5869) with HMAC-SHA-256.
//!
//! All key derivation in the workspace flows through HKDF: the simulated
//! `EGETKEY` instruction derives sealing/report keys from the CPU secret,
//! and attested Diffie–Hellman sessions derive their AEK session keys from
//! the X25519 shared secret. Validated against the RFC 5869 Appendix A
//! test vectors.

use crate::hmac::HmacSha256;
use crate::sha256::DIGEST_LEN;

/// Maximum output length: `255 * HashLen` per RFC 5869.
pub const MAX_OUTPUT_LEN: usize = 255 * DIGEST_LEN;

/// HKDF-Extract: derives a pseudorandom key from input keying material.
///
/// An empty `salt` is treated as `HashLen` zero bytes, as the RFC specifies.
#[must_use]
pub fn hkdf_extract(salt: &[u8], ikm: &[u8]) -> [u8; DIGEST_LEN] {
    let zero_salt = [0u8; DIGEST_LEN];
    let salt = if salt.is_empty() {
        &zero_salt[..]
    } else {
        salt
    };
    HmacSha256::mac(salt, ikm)
}

/// HKDF-Expand: expands `prk` into `out.len()` bytes of output keying
/// material bound to `info`.
///
/// # Panics
///
/// Panics if `out.len() > 255 * 32` (the RFC limit). All callers in this
/// workspace request at most 64 bytes.
pub fn hkdf_expand(prk: &[u8; DIGEST_LEN], info: &[u8], out: &mut [u8]) {
    assert!(
        out.len() <= MAX_OUTPUT_LEN,
        "HKDF output length exceeds 255*HashLen"
    );
    // T(i) is keying material; keep it in one fixed buffer and scrub it
    // before returning instead of reallocating per block.
    let mut t = [0u8; DIGEST_LEN];
    let mut t_len = 0usize;
    let mut generated = 0usize;
    let mut counter = 1u8;
    while generated < out.len() {
        let mut mac = HmacSha256::new(prk);
        mac.update(&t[..t_len]);
        mac.update(info);
        mac.update(&[counter]);
        t = mac.finalize();
        t_len = DIGEST_LEN;
        let take = (out.len() - generated).min(DIGEST_LEN);
        out[generated..generated + take].copy_from_slice(&t[..take]);
        generated += take;
        counter = counter.wrapping_add(1);
    }
    crate::zeroize::zeroize_bytes(&mut t);
}

/// One-shot HKDF (extract + expand) producing an `N`-byte key.
///
/// # Example
///
/// ```
/// let key: [u8; 16] = mig_crypto::hkdf::hkdf(b"salt", b"input keying material", b"context");
/// assert_ne!(key, [0u8; 16]);
/// ```
#[must_use]
pub fn hkdf<const N: usize>(salt: &[u8], ikm: &[u8], info: &[u8]) -> [u8; N] {
    let mut prk = hkdf_extract(salt, ikm);
    let mut out = [0u8; N];
    hkdf_expand(&prk, info, &mut out);
    crate::zeroize::zeroize_bytes(&mut prk);
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{hex_decode, hex_encode};

    #[test]
    fn rfc5869_case1() {
        let ikm = [0x0b; 22];
        let salt = hex_decode("000102030405060708090a0b0c");
        let info = hex_decode("f0f1f2f3f4f5f6f7f8f9");

        let prk = hkdf_extract(&salt, &ikm);
        assert_eq!(
            hex_encode(&prk),
            "077709362c2e32df0ddc3f0dc47bba6390b6c73bb50f9c3122ec844ad7c2b3e5"
        );

        let mut okm = [0u8; 42];
        hkdf_expand(&prk, &info, &mut okm);
        assert_eq!(
            hex_encode(&okm),
            "3cb25f25faacd57a90434f64d0362f2a2d2d0a90cf1a5a4c5db02d56ecc4c5bf\
34007208d5b887185865"
        );
    }

    #[test]
    fn rfc5869_case2_long_inputs() {
        let ikm: Vec<u8> = (0x00..=0x4f).collect();
        let salt: Vec<u8> = (0x60..=0xaf).collect();
        let info: Vec<u8> = (0xb0..=0xff).collect();

        let prk = hkdf_extract(&salt, &ikm);
        assert_eq!(
            hex_encode(&prk),
            "06a6b88c5853361a06104c9ceb35b45cef760014904671014a193f40c15fc244"
        );

        let mut okm = [0u8; 82];
        hkdf_expand(&prk, &info, &mut okm);
        assert_eq!(
            hex_encode(&okm),
            "b11e398dc80327a1c8e7f78c596a49344f012eda2d4efad8a050cc4c19afa97c\
59045a99cac7827271cb41c65e590e09da3275600c2f09b8367793a9aca3db71\
cc30c58179ec3e87c14c01d5c1f3434f1d87"
        );
    }

    #[test]
    fn rfc5869_case3_empty_salt_and_info() {
        let ikm = [0x0b; 22];

        let prk = hkdf_extract(&[], &ikm);
        assert_eq!(
            hex_encode(&prk),
            "19ef24a32c717b167f33a91d6f648bdf96596776afdb6377ac434c1c293ccb04"
        );

        let mut okm = [0u8; 42];
        hkdf_expand(&prk, &[], &mut okm);
        assert_eq!(
            hex_encode(&okm),
            "8da4e775a563c18f715f802a063c5a31b8a11f5c5ee1879ec3454e5f3c738d2d\
9d201395faa4b61a96c8"
        );
    }

    #[test]
    fn one_shot_matches_two_phase() {
        let out: [u8; 48] = hkdf(b"salt", b"ikm", b"info");
        let prk = hkdf_extract(b"salt", b"ikm");
        let mut expected = [0u8; 48];
        hkdf_expand(&prk, b"info", &mut expected);
        assert_eq!(out, expected);
    }

    #[test]
    fn distinct_info_gives_distinct_keys() {
        let a: [u8; 32] = hkdf(b"s", b"ikm", b"context-a");
        let b: [u8; 32] = hkdf(b"s", b"ikm", b"context-b");
        assert_ne!(a, b);
    }

    #[test]
    fn output_lengths_across_block_boundaries() {
        // Prefix property: a longer output must start with the shorter one.
        let prk = hkdf_extract(b"salt", b"ikm");
        let mut long = [0u8; 100];
        hkdf_expand(&prk, b"info", &mut long);
        for len in [1usize, 31, 32, 33, 64, 65, 99] {
            let mut short = vec![0u8; len];
            hkdf_expand(&prk, b"info", &mut short);
            assert_eq!(&long[..len], &short[..], "len {len}");
        }
    }
}
