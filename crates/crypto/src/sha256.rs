//! SHA-256 (FIPS 180-4), with a block-unrolled bulk compression kernel.
//!
//! Provides both a streaming [`Sha256`] hasher and the one-shot [`sha256`]
//! convenience function. The compression function is fully unrolled in
//! 16-round groups over a rolling 16-word message schedule — no 64-entry
//! schedule array and no per-round register rotation — and
//! [`Sha256::update`] folds every full-block run of its input through
//! [`compress_blocks`] in one call, so multi-megabyte payloads (chunk
//! digests, HMAC chains, sealed-state digests) never round-trip through
//! the 64-byte buffer. The straightforward rolled compression this
//! replaces is retained in [`reference`] as the equivalence oracle.
//! Validated against the FIPS 180-4 / NIST CAVP example vectors,
//! including the one-million-`a` vector.

/// Digest size in bytes.
pub const DIGEST_LEN: usize = 32;
/// Internal block size in bytes (used by HMAC).
pub const BLOCK_LEN: usize = 64;

const K: [u32; 64] = [
    0x428a2f98, 0x71374491, 0xb5c0fbcf, 0xe9b5dba5, 0x3956c25b, 0x59f111f1, 0x923f82a4, 0xab1c5ed5,
    0xd807aa98, 0x12835b01, 0x243185be, 0x550c7dc3, 0x72be5d74, 0x80deb1fe, 0x9bdc06a7, 0xc19bf174,
    0xe49b69c1, 0xefbe4786, 0x0fc19dc6, 0x240ca1cc, 0x2de92c6f, 0x4a7484aa, 0x5cb0a9dc, 0x76f988da,
    0x983e5152, 0xa831c66d, 0xb00327c8, 0xbf597fc7, 0xc6e00bf3, 0xd5a79147, 0x06ca6351, 0x14292967,
    0x27b70a85, 0x2e1b2138, 0x4d2c6dfc, 0x53380d13, 0x650a7354, 0x766a0abb, 0x81c2c92e, 0x92722c85,
    0xa2bfe8a1, 0xa81a664b, 0xc24b8b70, 0xc76c51a3, 0xd192e819, 0xd6990624, 0xf40e3585, 0x106aa070,
    0x19a4c116, 0x1e376c08, 0x2748774c, 0x34b0bcb5, 0x391c0cb3, 0x4ed8aa4a, 0x5b9cca4f, 0x682e6ff3,
    0x748f82ee, 0x78a5636f, 0x84c87814, 0x8cc70208, 0x90befffa, 0xa4506ceb, 0xbef9a3f7, 0xc67178f2,
];

const H0: [u32; 8] = [
    0x6a09e667, 0xbb67ae85, 0x3c6ef372, 0xa54ff53a, 0x510e527f, 0x9b05688c, 0x1f83d9ab, 0x5be0cd19,
];

/// One SHA-256 round with explicit register names. Sixteen invocations
/// with the names rotated one position to the right per round put every
/// register back in its original role, so a 16-round group needs no
/// register shuffling at all.
macro_rules! round {
    ($a:ident, $b:ident, $c:ident, $d:ident, $e:ident, $f:ident, $g:ident, $h:ident, $kw:expr) => {{
        let t1 = $h
            .wrapping_add($e.rotate_right(6) ^ $e.rotate_right(11) ^ $e.rotate_right(25))
            .wrapping_add(($e & $f) ^ (!$e & $g))
            .wrapping_add($kw);
        let t2 = ($a.rotate_right(2) ^ $a.rotate_right(13) ^ $a.rotate_right(22))
            .wrapping_add(($a & $b) ^ ($a & $c) ^ ($b & $c));
        $d = $d.wrapping_add(t1);
        $h = t1.wrapping_add(t2);
    }};
}

/// Sixteen unrolled rounds consuming `w[0..16]` against `K[$base..]`.
macro_rules! rounds16 {
    ($a:ident, $b:ident, $c:ident, $d:ident, $e:ident, $f:ident, $g:ident, $h:ident,
     $w:ident, $base:expr) => {{
        round!($a, $b, $c, $d, $e, $f, $g, $h, K[$base].wrapping_add($w[0]));
        round!(
            $h,
            $a,
            $b,
            $c,
            $d,
            $e,
            $f,
            $g,
            K[$base + 1].wrapping_add($w[1])
        );
        round!(
            $g,
            $h,
            $a,
            $b,
            $c,
            $d,
            $e,
            $f,
            K[$base + 2].wrapping_add($w[2])
        );
        round!(
            $f,
            $g,
            $h,
            $a,
            $b,
            $c,
            $d,
            $e,
            K[$base + 3].wrapping_add($w[3])
        );
        round!(
            $e,
            $f,
            $g,
            $h,
            $a,
            $b,
            $c,
            $d,
            K[$base + 4].wrapping_add($w[4])
        );
        round!(
            $d,
            $e,
            $f,
            $g,
            $h,
            $a,
            $b,
            $c,
            K[$base + 5].wrapping_add($w[5])
        );
        round!(
            $c,
            $d,
            $e,
            $f,
            $g,
            $h,
            $a,
            $b,
            K[$base + 6].wrapping_add($w[6])
        );
        round!(
            $b,
            $c,
            $d,
            $e,
            $f,
            $g,
            $h,
            $a,
            K[$base + 7].wrapping_add($w[7])
        );
        round!(
            $a,
            $b,
            $c,
            $d,
            $e,
            $f,
            $g,
            $h,
            K[$base + 8].wrapping_add($w[8])
        );
        round!(
            $h,
            $a,
            $b,
            $c,
            $d,
            $e,
            $f,
            $g,
            K[$base + 9].wrapping_add($w[9])
        );
        round!(
            $g,
            $h,
            $a,
            $b,
            $c,
            $d,
            $e,
            $f,
            K[$base + 10].wrapping_add($w[10])
        );
        round!(
            $f,
            $g,
            $h,
            $a,
            $b,
            $c,
            $d,
            $e,
            K[$base + 11].wrapping_add($w[11])
        );
        round!(
            $e,
            $f,
            $g,
            $h,
            $a,
            $b,
            $c,
            $d,
            K[$base + 12].wrapping_add($w[12])
        );
        round!(
            $d,
            $e,
            $f,
            $g,
            $h,
            $a,
            $b,
            $c,
            K[$base + 13].wrapping_add($w[13])
        );
        round!(
            $c,
            $d,
            $e,
            $f,
            $g,
            $h,
            $a,
            $b,
            K[$base + 14].wrapping_add($w[14])
        );
        round!(
            $b,
            $c,
            $d,
            $e,
            $f,
            $g,
            $h,
            $a,
            K[$base + 15].wrapping_add($w[15])
        );
    }};
}

/// Advances the rolling 16-word schedule in place: after the update,
/// `w[i]` holds `W[t+16+i]` where it held `W[t+i]` before. The ring
/// indices resolve to already-updated slots exactly where FIPS 180-4
/// references schedule words of the new group.
#[inline]
fn schedule_next(w: &mut [u32; 16]) {
    for i in 0..16 {
        let s0 = {
            let x = w[(i + 1) & 15];
            x.rotate_right(7) ^ x.rotate_right(18) ^ (x >> 3)
        };
        let s1 = {
            let x = w[(i + 14) & 15];
            x.rotate_right(17) ^ x.rotate_right(19) ^ (x >> 10)
        };
        w[i] = w[i]
            .wrapping_add(s0)
            .wrapping_add(w[(i + 9) & 15])
            .wrapping_add(s1);
    }
}

/// Folds a run of whole 64-byte blocks into `state`.
///
/// This is the bulk kernel behind [`Sha256::update`]: one call walks any
/// number of consecutive blocks with the unrolled round function and a
/// rolling schedule held in registers/stack scratch that is reused (and
/// overwritten) block after block — no per-block buffer copies, no
/// 64-entry schedule array.
///
/// # Panics
///
/// Debug-asserts that `blocks` is a multiple of [`BLOCK_LEN`]; a ragged
/// tail would be silently dropped otherwise (caller bug).
fn compress_blocks(state: &mut [u32; 8], blocks: &[u8]) {
    debug_assert_eq!(blocks.len() % BLOCK_LEN, 0);
    let mut w = [0u32; 16];
    for block in blocks.chunks_exact(BLOCK_LEN) {
        for (wi, chunk) in w.iter_mut().zip(block.chunks_exact(4)) {
            *wi = u32::from_be_bytes(chunk.try_into().expect("4-byte chunk"));
        }
        let [mut a, mut b, mut c, mut d, mut e, mut f, mut g, mut h] = *state;
        rounds16!(a, b, c, d, e, f, g, h, w, 0);
        schedule_next(&mut w);
        rounds16!(a, b, c, d, e, f, g, h, w, 16);
        schedule_next(&mut w);
        rounds16!(a, b, c, d, e, f, g, h, w, 32);
        schedule_next(&mut w);
        rounds16!(a, b, c, d, e, f, g, h, w, 48);
        state[0] = state[0].wrapping_add(a);
        state[1] = state[1].wrapping_add(b);
        state[2] = state[2].wrapping_add(c);
        state[3] = state[3].wrapping_add(d);
        state[4] = state[4].wrapping_add(e);
        state[5] = state[5].wrapping_add(f);
        state[6] = state[6].wrapping_add(g);
        state[7] = state[7].wrapping_add(h);
    }
    // The last block's schedule words are message-derived scratch; when
    // the message is keyed (HMAC/HKDF) they must not linger.
    crate::zeroize::zeroize_u32s(&mut w);
}

/// Streaming SHA-256 hasher.
///
/// # Example
///
/// ```
/// use mig_crypto::sha256::Sha256;
///
/// let mut h = Sha256::new();
/// h.update(b"ab");
/// h.update(b"c");
/// assert_eq!(h.finalize(), mig_crypto::sha256::sha256(b"abc"));
/// ```
#[derive(Clone)]
pub struct Sha256 {
    state: [u32; 8],
    buf: [u8; BLOCK_LEN],
    buf_len: usize,
    total_len: u64,
}

impl Default for Sha256 {
    fn default() -> Self {
        Self::new()
    }
}

impl std::fmt::Debug for Sha256 {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        // The buffered bytes may be secret; show only public progress info.
        f.debug_struct("Sha256")
            .field("total_len", &self.total_len)
            .finish_non_exhaustive()
    }
}

impl Drop for Sha256 {
    fn drop(&mut self) {
        // The chaining state and buffered bytes hold key material whenever
        // the hash is keyed (HMAC ipad/opad states, HKDF PRKs).
        crate::zeroize::zeroize_u32s(&mut self.state);
        crate::zeroize::zeroize_bytes(&mut self.buf);
        self.buf_len = 0;
    }
}

impl Sha256 {
    /// Creates a fresh hasher.
    #[must_use]
    pub fn new() -> Self {
        Sha256 {
            state: H0,
            buf: [0; BLOCK_LEN],
            buf_len: 0,
            total_len: 0,
        }
    }

    /// Absorbs `data` into the hash state.
    ///
    /// Full blocks are compressed straight from `data` in one
    /// [`compress_blocks`] call; only a ragged head (completing a
    /// previously buffered partial block) or tail touches the internal
    /// buffer.
    pub fn update(&mut self, data: &[u8]) {
        self.total_len = self.total_len.wrapping_add(data.len() as u64);
        let mut rest = data;
        if self.buf_len > 0 {
            let take = rest.len().min(BLOCK_LEN - self.buf_len);
            self.buf[self.buf_len..self.buf_len + take].copy_from_slice(&rest[..take]);
            self.buf_len += take;
            rest = &rest[take..];
            if self.buf_len == BLOCK_LEN {
                let block = self.buf;
                compress_blocks(&mut self.state, &block);
                self.buf_len = 0;
            }
        }
        let full = rest.len() - rest.len() % BLOCK_LEN;
        let (blocks, tail) = rest.split_at(full);
        if !blocks.is_empty() {
            compress_blocks(&mut self.state, blocks);
        }
        if !tail.is_empty() {
            self.buf[..tail.len()].copy_from_slice(tail);
            self.buf_len = tail.len();
        }
    }

    /// Consumes the hasher and returns the 32-byte digest.
    #[must_use]
    pub fn finalize(mut self) -> [u8; DIGEST_LEN] {
        let bit_len = self.total_len.wrapping_mul(8);
        // Padding: 0x80, zeros, 64-bit big-endian length.
        self.update(&[0x80]);
        while self.buf_len != 56 {
            self.update(&[0]);
        }
        // Appending the length below must not re-enter the length counter,
        // so compress the final block manually.
        self.buf[56..64].copy_from_slice(&bit_len.to_be_bytes());
        let block = self.buf;
        compress_blocks(&mut self.state, &block);

        let mut out = [0u8; DIGEST_LEN];
        for (i, word) in self.state.iter().enumerate() {
            out[i * 4..i * 4 + 4].copy_from_slice(&word.to_be_bytes());
        }
        out
    }
}

/// One-shot SHA-256.
///
/// # Example
///
/// ```
/// let d = mig_crypto::sha256::sha256(b"abc");
/// assert_eq!(mig_crypto::hex_encode(&d),
///     "ba7816bf8f01cfea414140de5dae2223b00361a396177a9cb410ff61f20015ad");
/// ```
#[must_use]
pub fn sha256(data: &[u8]) -> [u8; DIGEST_LEN] {
    let mut h = Sha256::new();
    h.update(data);
    h.finalize()
}

/// The straightforward rolled SHA-256 the unrolled kernel replaced,
/// retained verbatim as an independent equivalence oracle for tests and
/// the `crypto_kernels` microbench (`reference` feature).
#[cfg(any(test, feature = "reference"))]
pub mod reference {
    use super::{BLOCK_LEN, DIGEST_LEN, H0, K};

    /// One-shot rolled SHA-256 (64-entry schedule array, per-round
    /// register rotation) — the pre-kernel implementation.
    #[must_use]
    pub fn sha256_rolled(data: &[u8]) -> [u8; DIGEST_LEN] {
        let mut state = H0;
        let bit_len = (data.len() as u64).wrapping_mul(8);
        let mut msg = data.to_vec();
        msg.push(0x80);
        while msg.len() % BLOCK_LEN != 56 {
            msg.push(0);
        }
        msg.extend_from_slice(&bit_len.to_be_bytes());
        for block in msg.chunks_exact(BLOCK_LEN) {
            compress_rolled(&mut state, block.try_into().expect("exact block"));
        }
        let mut out = [0u8; DIGEST_LEN];
        for (i, word) in state.iter().enumerate() {
            out[i * 4..i * 4 + 4].copy_from_slice(&word.to_be_bytes());
        }
        out
    }

    fn compress_rolled(state: &mut [u32; 8], block: &[u8; BLOCK_LEN]) {
        let mut w = [0u32; 64];
        for (i, chunk) in block.chunks_exact(4).enumerate() {
            w[i] = u32::from_be_bytes(chunk.try_into().expect("4-byte chunk"));
        }
        for i in 16..64 {
            let s0 = w[i - 15].rotate_right(7) ^ w[i - 15].rotate_right(18) ^ (w[i - 15] >> 3);
            let s1 = w[i - 2].rotate_right(17) ^ w[i - 2].rotate_right(19) ^ (w[i - 2] >> 10);
            w[i] = w[i - 16]
                .wrapping_add(s0)
                .wrapping_add(w[i - 7])
                .wrapping_add(s1);
        }

        let [mut a, mut b, mut c, mut d, mut e, mut f, mut g, mut h] = *state;
        for i in 0..64 {
            let s1 = e.rotate_right(6) ^ e.rotate_right(11) ^ e.rotate_right(25);
            let ch = (e & f) ^ (!e & g);
            let t1 = h
                .wrapping_add(s1)
                .wrapping_add(ch)
                .wrapping_add(K[i])
                .wrapping_add(w[i]);
            let s0 = a.rotate_right(2) ^ a.rotate_right(13) ^ a.rotate_right(22);
            let maj = (a & b) ^ (a & c) ^ (b & c);
            let t2 = s0.wrapping_add(maj);
            h = g;
            g = f;
            f = e;
            e = d.wrapping_add(t1);
            d = c;
            c = b;
            b = a;
            a = t1.wrapping_add(t2);
        }

        state[0] = state[0].wrapping_add(a);
        state[1] = state[1].wrapping_add(b);
        state[2] = state[2].wrapping_add(c);
        state[3] = state[3].wrapping_add(d);
        state[4] = state[4].wrapping_add(e);
        state[5] = state[5].wrapping_add(f);
        state[6] = state[6].wrapping_add(g);
        state[7] = state[7].wrapping_add(h);
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::hex_encode;
    use proptest::prelude::*;

    #[test]
    fn fips_vector_empty() {
        assert_eq!(
            hex_encode(&sha256(b"")),
            "e3b0c44298fc1c149afbf4c8996fb92427ae41e4649b934ca495991b7852b855"
        );
    }

    #[test]
    fn fips_vector_abc() {
        assert_eq!(
            hex_encode(&sha256(b"abc")),
            "ba7816bf8f01cfea414140de5dae2223b00361a396177a9cb410ff61f20015ad"
        );
    }

    #[test]
    fn fips_vector_448_bits() {
        assert_eq!(
            hex_encode(&sha256(
                b"abcdbcdecdefdefgefghfghighijhijkijkljklmklmnlmnomnopnopq"
            )),
            "248d6a61d20638b8e5c026930c3e6039a33ce45964ff2167f6ecedd419db06c1"
        );
    }

    #[test]
    fn fips_vector_896_bits() {
        let msg = b"abcdefghbcdefghicdefghijdefghijkefghijklfghijklmghijklmn\
hijklmnoijklmnopjklmnopqklmnopqrlmnopqrsmnopqrstnopqrstu";
        assert_eq!(
            hex_encode(&sha256(msg)),
            "cf5b16a778af8380036ce59e7b0492370b249b11e8f07a51afac45037afee9d1"
        );
    }

    #[test]
    fn fips_vector_million_a() {
        let mut h = Sha256::new();
        let chunk = [b'a'; 1000];
        for _ in 0..1000 {
            h.update(&chunk);
        }
        assert_eq!(
            hex_encode(&h.finalize()),
            "cdc76e5c9914fb9281a1c7e284d73e67f1809a48a497200e046d39ccc7112cd0"
        );
    }

    #[test]
    fn streaming_matches_one_shot_at_all_split_points() {
        let data: Vec<u8> = (0..200u8).collect();
        let expected = sha256(&data);
        for split in 0..data.len() {
            let mut h = Sha256::new();
            h.update(&data[..split]);
            h.update(&data[split..]);
            assert_eq!(h.finalize(), expected, "split at {split}");
        }
    }

    #[test]
    fn boundary_lengths_55_56_57_63_64_65() {
        // Lengths around the padding boundary exercise the two-block padding
        // path; check self-consistency between byte-at-a-time and one-shot.
        for len in [55usize, 56, 57, 63, 64, 65, 119, 120, 128] {
            let data = vec![0xA5u8; len];
            let mut h = Sha256::new();
            for b in &data {
                h.update(std::slice::from_ref(b));
            }
            assert_eq!(h.finalize(), sha256(&data), "len {len}");
        }
    }

    #[test]
    fn unrolled_matches_rolled_oracle_at_block_boundaries() {
        // The multi-block bulk path and the padding paths must agree
        // with the retained rolled implementation bit for bit.
        for len in [0usize, 1, 55, 56, 63, 64, 65, 127, 128, 129, 1000, 4096] {
            let data: Vec<u8> = (0..len).map(|i| (i % 251) as u8).collect();
            assert_eq!(sha256(&data), reference::sha256_rolled(&data), "len {len}");
        }
    }

    proptest! {
        #[test]
        fn prop_unrolled_matches_rolled_oracle(data in proptest::collection::vec(any::<u8>(), 0..2048)) {
            prop_assert_eq!(sha256(&data), reference::sha256_rolled(&data));
        }

        #[test]
        fn prop_bulk_update_matches_chunked_updates(
            data in proptest::collection::vec(any::<u8>(), 0..1024),
            splits in proptest::collection::vec(0usize..1024, 0..8),
        ) {
            // Any partition of the input through the streaming interface
            // must equal the one-shot (single bulk compress_blocks run).
            let mut h = Sha256::new();
            let mut rest: &[u8] = &data;
            for s in splits {
                let take = s.min(rest.len());
                h.update(&rest[..take]);
                rest = &rest[take..];
            }
            h.update(rest);
            prop_assert_eq!(h.finalize(), sha256(&data));
        }
    }
}
