//! Best-effort secret scrubbing without `unsafe`.
//!
//! Key schedules, MAC states, and derived keys should not outlive their use
//! in process memory. The workspace forbids `unsafe`, so `ptr::write_volatile`
//! is unavailable; instead the helpers here overwrite the buffer and then
//! launder the reference through [`core::hint::black_box`], which tells the
//! optimizer the zeroed bytes are observed and keeps the stores from being
//! elided as dead writes. This is the strongest guarantee available in safe
//! Rust — it scrubs the final resting place of a value, not stack copies made
//! while it was alive — and is how the key types ([`crate::aes::Aes128`],
//! [`crate::gcm::AesGcm`], [`crate::sha256::Sha256`], [`crate::sha512::Sha512`])
//! implement `Drop`.

use core::hint::black_box;

/// Overwrites `bytes` with zeros and inhibits dead-store elimination.
pub fn zeroize_bytes(bytes: &mut [u8]) {
    for b in bytes.iter_mut() {
        *b = 0;
    }
    black_box(bytes);
}

/// Zeroizes a `u32` word buffer (SHA-256 chaining state).
pub fn zeroize_u32s(words: &mut [u32]) {
    for w in words.iter_mut() {
        *w = 0;
    }
    black_box(words);
}

/// Zeroizes a `u64` word buffer (SHA-512 chaining state).
pub fn zeroize_u64s(words: &mut [u64]) {
    for w in words.iter_mut() {
        *w = 0;
    }
    black_box(words);
}

/// Zeroizes a single `u128` (the GHASH subkey).
pub fn zeroize_u128(v: &mut u128) {
    *v = 0;
    black_box(v);
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn zeroize_clears_every_element() {
        let mut bytes = [0xA5u8; 64];
        zeroize_bytes(&mut bytes);
        assert_eq!(bytes, [0u8; 64]);

        let mut words32 = [0xDEAD_BEEFu32; 8];
        zeroize_u32s(&mut words32);
        assert_eq!(words32, [0u32; 8]);

        let mut words64 = [u64::MAX; 8];
        zeroize_u64s(&mut words64);
        assert_eq!(words64, [0u64; 8]);

        let mut h = u128::MAX;
        zeroize_u128(&mut h);
        assert_eq!(h, 0);
    }

    #[test]
    fn zeroize_handles_empty_slices() {
        zeroize_bytes(&mut []);
        zeroize_u32s(&mut []);
        zeroize_u64s(&mut []);
    }
}
