//! HMAC (RFC 2104 / FIPS 198-1) over SHA-256 and SHA-512.
//!
//! HMAC-SHA-256 keys the simulated SGX report MACs, the secure-channel
//! key-confirmation messages, and the chunk-stream MAC chain;
//! HMAC-SHA-512 is provided for completeness. `update` forwards
//! directly to the underlying hash, so whole containers fold through
//! the unrolled bulk compression kernel ([`Sha256::update`]) without
//! per-block buffering — the MAC chain rides the same hot path as
//! plain digests. Validated against the RFC 4231 test vectors.

use crate::ct::ct_eq;
use crate::sha256::{self, Sha256};
use crate::sha512::{self, Sha512};

/// Streaming HMAC-SHA-256.
///
/// # Example
///
/// ```
/// use mig_crypto::hmac::HmacSha256;
///
/// let mut mac = HmacSha256::new(b"key");
/// mac.update(b"message");
/// let tag = mac.finalize();
/// assert!(HmacSha256::verify(b"key", b"message", &tag));
/// ```
#[derive(Clone)]
pub struct HmacSha256 {
    inner: Sha256,
    outer: Sha256,
}

impl std::fmt::Debug for HmacSha256 {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        // The keyed hash states must never be printed.
        f.debug_struct("HmacSha256").finish_non_exhaustive()
    }
}

impl HmacSha256 {
    /// Creates an HMAC instance keyed with `key` (any length).
    #[must_use]
    pub fn new(key: &[u8]) -> Self {
        let mut key_block = [0u8; sha256::BLOCK_LEN];
        if key.len() > sha256::BLOCK_LEN {
            key_block[..sha256::DIGEST_LEN].copy_from_slice(&sha256::sha256(key));
        } else {
            key_block[..key.len()].copy_from_slice(key);
        }

        let mut ipad = [0x36u8; sha256::BLOCK_LEN];
        let mut opad = [0x5cu8; sha256::BLOCK_LEN];
        for i in 0..sha256::BLOCK_LEN {
            ipad[i] ^= key_block[i];
            opad[i] ^= key_block[i];
        }

        let mut inner = Sha256::new();
        inner.update(&ipad);
        let mut outer = Sha256::new();
        outer.update(&opad);
        crate::zeroize::zeroize_bytes(&mut key_block);
        crate::zeroize::zeroize_bytes(&mut ipad);
        crate::zeroize::zeroize_bytes(&mut opad);
        HmacSha256 { inner, outer }
    }

    /// Absorbs message data.
    pub fn update(&mut self, data: &[u8]) {
        self.inner.update(data);
    }

    /// Returns the 32-byte tag.
    #[must_use]
    pub fn finalize(mut self) -> [u8; sha256::DIGEST_LEN] {
        let inner_digest = self.inner.finalize();
        self.outer.update(&inner_digest);
        self.outer.finalize()
    }

    /// One-shot MAC computation.
    #[must_use]
    pub fn mac(key: &[u8], data: &[u8]) -> [u8; sha256::DIGEST_LEN] {
        let mut h = HmacSha256::new(key);
        h.update(data);
        h.finalize()
    }

    /// Verifies `tag` over `data` in constant time.
    #[must_use]
    pub fn verify(key: &[u8], data: &[u8], tag: &[u8]) -> bool {
        ct_eq(&Self::mac(key, data), tag)
    }
}

/// Streaming HMAC-SHA-512.
#[derive(Clone)]
pub struct HmacSha512 {
    inner: Sha512,
    outer: Sha512,
}

impl std::fmt::Debug for HmacSha512 {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        // The keyed hash states must never be printed.
        f.debug_struct("HmacSha512").finish_non_exhaustive()
    }
}

impl HmacSha512 {
    /// Creates an HMAC instance keyed with `key` (any length).
    #[must_use]
    pub fn new(key: &[u8]) -> Self {
        let mut key_block = [0u8; sha512::BLOCK_LEN];
        if key.len() > sha512::BLOCK_LEN {
            key_block[..sha512::DIGEST_LEN].copy_from_slice(&sha512::sha512(key));
        } else {
            key_block[..key.len()].copy_from_slice(key);
        }

        let mut ipad = [0x36u8; sha512::BLOCK_LEN];
        let mut opad = [0x5cu8; sha512::BLOCK_LEN];
        for i in 0..sha512::BLOCK_LEN {
            ipad[i] ^= key_block[i];
            opad[i] ^= key_block[i];
        }

        let mut inner = Sha512::new();
        inner.update(&ipad);
        let mut outer = Sha512::new();
        outer.update(&opad);
        crate::zeroize::zeroize_bytes(&mut key_block);
        crate::zeroize::zeroize_bytes(&mut ipad);
        crate::zeroize::zeroize_bytes(&mut opad);
        HmacSha512 { inner, outer }
    }

    /// Absorbs message data.
    pub fn update(&mut self, data: &[u8]) {
        self.inner.update(data);
    }

    /// Returns the 64-byte tag.
    #[must_use]
    pub fn finalize(mut self) -> [u8; sha512::DIGEST_LEN] {
        let inner_digest = self.inner.finalize();
        self.outer.update(&inner_digest);
        self.outer.finalize()
    }

    /// One-shot MAC computation.
    #[must_use]
    pub fn mac(key: &[u8], data: &[u8]) -> [u8; sha512::DIGEST_LEN] {
        let mut h = HmacSha512::new(key);
        h.update(data);
        h.finalize()
    }

    /// Verifies `tag` over `data` in constant time.
    #[must_use]
    pub fn verify(key: &[u8], data: &[u8], tag: &[u8]) -> bool {
        ct_eq(&Self::mac(key, data), tag)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{hex_decode, hex_encode};

    // RFC 4231 test cases.

    #[test]
    fn rfc4231_case1() {
        let key = [0x0b; 20];
        let data = b"Hi There";
        assert_eq!(
            hex_encode(&HmacSha256::mac(&key, data)),
            "b0344c61d8db38535ca8afceaf0bf12b881dc200c9833da726e9376c2e32cff7"
        );
        assert_eq!(
            hex_encode(&HmacSha512::mac(&key, data)),
            "87aa7cdea5ef619d4ff0b4241a1d6cb02379f4e2ce4ec2787ad0b30545e17cde\
daa833b7d6b8a702038b274eaea3f4e4be9d914eeb61f1702e696c203a126854"
        );
    }

    #[test]
    fn rfc4231_case2_short_key() {
        let key = b"Jefe";
        let data = b"what do ya want for nothing?";
        assert_eq!(
            hex_encode(&HmacSha256::mac(key, data)),
            "5bdcc146bf60754e6a042426089575c75a003f089d2739839dec58b964ec3843"
        );
        assert_eq!(
            hex_encode(&HmacSha512::mac(key, data)),
            "164b7a7bfcf819e2e395fbe73b56e0a387bd64222e831fd610270cd7ea250554\
9758bf75c05a994a6d034f65f8f0e6fdcaeab1a34d4a6b4b636e070a38bce737"
        );
    }

    #[test]
    fn rfc4231_case3_repeated_bytes() {
        let key = [0xaa; 20];
        let data = [0xdd; 50];
        assert_eq!(
            hex_encode(&HmacSha256::mac(&key, &data)),
            "773ea91e36800e46854db8ebd09181a72959098b3ef8c122d9635514ced565fe"
        );
    }

    #[test]
    fn rfc4231_case6_key_longer_than_block() {
        let key = [0xaa; 131];
        let data = b"Test Using Larger Than Block-Size Key - Hash Key First";
        assert_eq!(
            hex_encode(&HmacSha256::mac(&key, data)),
            "60e431591ee0b67f0d8a26aacbf5b77f8e0bc6213728c5140546040f0ee37f54"
        );
        assert_eq!(
            hex_encode(&HmacSha512::mac(&key, data)),
            "80b24263c7c1a3ebb71493c1dd7be8b49b46d1f41b4aeec1121b013783f8f352\
6b56d037e05f2598bd0fd2215d6a1e5295e64f73f63f0aec8b915a985d786598"
        );
    }

    #[test]
    fn rfc4231_case7_key_and_data_longer_than_block() {
        let key = [0xaa; 131];
        let data = hex_decode(
            "5468697320697320612074657374207573696e672061206c6172676572207468\
616e20626c6f636b2d73697a65206b657920616e642061206c61726765722074\
68616e20626c6f636b2d73697a6520646174612e20546865206b6579206e6565\
647320746f20626520686173686564206265666f7265206265696e6720757365\
642062792074686520484d414320616c676f726974686d2e",
        );
        assert_eq!(
            hex_encode(&HmacSha256::mac(&key, &data)),
            "9b09ffa71b942fcb27635fbcd5b0e944bfdc63644f0713938a7f51535c3a35e2"
        );
    }

    #[test]
    fn streaming_equals_one_shot() {
        let key = b"some key";
        let data: Vec<u8> = (0..200u8).collect();
        let one_shot = HmacSha256::mac(key, &data);
        let mut mac = HmacSha256::new(key);
        for chunk in data.chunks(13) {
            mac.update(chunk);
        }
        assert_eq!(mac.finalize(), one_shot);
    }

    #[test]
    fn verify_accepts_and_rejects() {
        let tag = HmacSha256::mac(b"k", b"m");
        assert!(HmacSha256::verify(b"k", b"m", &tag));
        assert!(!HmacSha256::verify(b"k", b"m2", &tag));
        assert!(!HmacSha256::verify(b"k2", b"m", &tag));
        assert!(!HmacSha256::verify(b"k", b"m", &tag[..31]));
        let tag512 = HmacSha512::mac(b"k", b"m");
        assert!(HmacSha512::verify(b"k", b"m", &tag512));
        assert!(!HmacSha512::verify(b"k", b"x", &tag512));
    }

    #[test]
    fn different_keys_give_different_tags() {
        // Sanity distinctness check over many single-byte key variations.
        let base = HmacSha256::mac(&[0u8; 32], b"msg");
        for i in 0..32 {
            let mut key = [0u8; 32];
            key[i] = 1;
            assert_ne!(HmacSha256::mac(&key, b"msg"), base);
        }
    }
}
