//! Constant-time comparison helpers.
//!
//! Authentication-tag and MAC comparisons must not leak, through timing, the
//! position of the first mismatching byte. The helpers here accumulate the
//! XOR of every byte pair before reducing to a boolean, so the running time
//! depends only on the input length.

/// Compares two byte slices in constant time (for equal-length inputs).
///
/// Returns `false` immediately if the lengths differ; the length of a MAC or
/// tag is public information, so this early exit leaks nothing secret.
///
/// # Example
///
/// ```
/// use mig_crypto::ct::ct_eq;
/// assert!(ct_eq(b"abc", b"abc"));
/// assert!(!ct_eq(b"abc", b"abd"));
/// assert!(!ct_eq(b"abc", b"ab"));
/// ```
#[must_use]
pub fn ct_eq(a: &[u8], b: &[u8]) -> bool {
    if a.len() != b.len() {
        return false;
    }
    let mut diff = 0u8;
    for (x, y) in a.iter().zip(b.iter()) {
        diff |= x ^ y;
    }
    // Map `diff == 0` to true without a data-dependent branch.
    ct_is_zero(diff)
}

/// Returns `true` iff `v == 0`, computed without a data-dependent branch.
#[must_use]
pub fn ct_is_zero(v: u8) -> bool {
    // (v | v.wrapping_neg()) has its MSB set iff v != 0.
    let nonzero_mask = (v | v.wrapping_neg()) >> 7;
    nonzero_mask == 0
}

/// Conditionally selects `b` (if `choice` is true) or `a` in constant time.
///
/// Used by the curve code for branch-free conditional swaps.
#[must_use]
pub fn ct_select_u64(a: u64, b: u64, choice: bool) -> u64 {
    let mask = (choice as u64).wrapping_neg();
    a ^ (mask & (a ^ b))
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn eq_on_equal_slices() {
        assert!(ct_eq(&[], &[]));
        assert!(ct_eq(&[1, 2, 3], &[1, 2, 3]));
        let long = vec![0xAB; 4096];
        assert!(ct_eq(&long, &long.clone()));
    }

    #[test]
    fn neq_on_any_single_bit_flip() {
        let base = vec![0x5A; 64];
        for i in 0..base.len() {
            for bit in 0..8 {
                let mut other = base.clone();
                other[i] ^= 1 << bit;
                assert!(!ct_eq(&base, &other), "flip at byte {i} bit {bit}");
            }
        }
    }

    #[test]
    fn neq_on_length_mismatch() {
        assert!(!ct_eq(&[0], &[]));
        assert!(!ct_eq(&[0, 0], &[0]));
    }

    #[test]
    fn is_zero() {
        assert!(ct_is_zero(0));
        for v in 1..=255u8 {
            assert!(!ct_is_zero(v));
        }
    }

    #[test]
    fn select() {
        assert_eq!(ct_select_u64(1, 2, false), 1);
        assert_eq!(ct_select_u64(1, 2, true), 2);
        assert_eq!(ct_select_u64(u64::MAX, 0, true), 0);
        assert_eq!(ct_select_u64(u64::MAX, 0, false), u64::MAX);
    }
}
