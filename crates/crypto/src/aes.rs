//! AES-128 block cipher (FIPS 197), encryption direction only, as a
//! constant-time bitsliced multi-block kernel.
//!
//! GCM mode ([`crate::gcm`]) only requires the forward cipher, which is the
//! only consumer in this workspace; SGX sealing keys are 128-bit, matching
//! the paper's 128-bit Migration Sealing Key (Table I).
//!
//! # Kernel design
//!
//! The cipher state for **[`PARALLEL_BLOCKS`] blocks at once** is held
//! as eight bit-planes of [`GROUPS`] four-block groups each ([`Bs`] =
//! `[u64; GROUPS]`, one `u64` per group): within a group's plane, the
//! bit for row `r`, column `c` of block `j` lives at position
//! `16·r + 4·c + j`, and `q[0]` carries the least-significant bit of
//! every state byte, `q[7]` the most. SubBytes becomes the
//! Boyar–Peralta 113-gate boolean circuit evaluated once across all
//! the state bytes simultaneously; ShiftRows and MixColumns become
//! fixed mask/rotate networks on the planes. Every gate is an
//! element-wise op over the group limbs, which the backend lowers to
//! wide vector logic (one 256-bit op per gate at `GROUPS = 4` on any
//! AVX2 target — see [`sub_bytes`] for how the circuit is shaped to
//! make that happen); the extra groups ride the same gate count the
//! single-group kernel pays. There are no key- or data-dependent
//! table lookups or branches anywhere — the kernel is constant-time
//! by construction, unlike the byte-serial SBOX walk it replaces
//! (which survives as the test/`reference` oracle). This is the
//! classic `aes_ct64` construction from the constant-time software
//! AES literature, widened to a group vector.
//!
//! Validated against the FIPS 197 Appendix B/C and SP 800-38A vectors,
//! and pinned to the scalar SBOX oracle by property tests.

/// AES block size in bytes.
pub const BLOCK_LEN: usize = 16;
/// AES-128 key size in bytes.
pub const KEY_LEN: usize = 16;
/// Blocks processed per bitsliced kernel invocation.
pub const PARALLEL_BLOCKS: usize = 4 * GROUPS;
/// Four-block bitslice groups per kernel invocation.
const GROUPS: usize = 4;

/// One bit-plane across all groups: limb `g` is the plane for
/// four-block group `g`. The S-box circuit, ShiftRows, and MixColumns
/// operate on whole planes, so widening the kernel is purely a matter
/// of raising [`GROUPS`] — all gate code is element-wise over the
/// limbs, which the backend lowers to the widest vector logic the
/// build target offers.
#[derive(Clone, Copy, Default)]
struct Bs([u64; GROUPS]);

impl std::ops::BitXor for Bs {
    type Output = Bs;
    #[inline(always)]
    fn bitxor(mut self, rhs: Bs) -> Bs {
        for g in 0..GROUPS {
            self.0[g] ^= rhs.0[g];
        }
        self
    }
}

impl std::ops::BitXorAssign for Bs {
    #[inline(always)]
    fn bitxor_assign(&mut self, rhs: Bs) {
        *self = *self ^ rhs;
    }
}

impl std::ops::BitAnd for Bs {
    type Output = Bs;
    #[inline(always)]
    fn bitand(mut self, rhs: Bs) -> Bs {
        for g in 0..GROUPS {
            self.0[g] &= rhs.0[g];
        }
        self
    }
}

impl std::ops::BitOr for Bs {
    type Output = Bs;
    #[inline(always)]
    fn bitor(mut self, rhs: Bs) -> Bs {
        for g in 0..GROUPS {
            self.0[g] |= rhs.0[g];
        }
        self
    }
}

impl std::ops::Not for Bs {
    type Output = Bs;
    #[inline(always)]
    fn not(mut self) -> Bs {
        for g in 0..GROUPS {
            self.0[g] = !self.0[g];
        }
        self
    }
}

impl Bs {
    /// Masks every limb with the same constant.
    #[inline(always)]
    fn mask(mut self, m: u64) -> Bs {
        for g in 0..GROUPS {
            self.0[g] &= m;
        }
        self
    }

    /// Shifts every limb left.
    #[inline(always)]
    fn shl(mut self, n: u32) -> Bs {
        for g in 0..GROUPS {
            self.0[g] <<= n;
        }
        self
    }

    /// Shifts every limb right.
    #[inline(always)]
    fn shr(mut self, n: u32) -> Bs {
        for g in 0..GROUPS {
            self.0[g] >>= n;
        }
        self
    }

    /// Rotates every limb right.
    #[inline(always)]
    fn rotate_right(mut self, n: u32) -> Bs {
        for g in 0..GROUPS {
            self.0[g] = self.0[g].rotate_right(n);
        }
        self
    }
}

const RCON: [u8; 10] = [0x01, 0x02, 0x04, 0x08, 0x10, 0x20, 0x40, 0x80, 0x1b, 0x36];

/// Swaps the `s`-bit sub-lanes selected by `cl`/`ch` between two planes;
/// three passes of these build the 8×8 bit-matrix transpose in [`ortho`].
macro_rules! swapn {
    ($cl:expr, $s:expr, $x:expr, $y:expr) => {{
        let a = $x;
        let b = $y;
        $x = (a & $cl) | ((b & $cl) << $s);
        $y = ((a >> $s) & $cl) | (b & !$cl);
    }};
}

/// Self-inverse orthogonalization: converts 8 interleaved words (one bit
/// position per byte lane) into 8 bit-planes and back.
fn ortho(q: &mut [u64; 8]) {
    const CL2: u64 = 0x5555_5555_5555_5555;
    swapn!(CL2, 1, q[0], q[1]);
    swapn!(CL2, 1, q[2], q[3]);
    swapn!(CL2, 1, q[4], q[5]);
    swapn!(CL2, 1, q[6], q[7]);
    const CL4: u64 = 0x3333_3333_3333_3333;
    swapn!(CL4, 2, q[0], q[2]);
    swapn!(CL4, 2, q[1], q[3]);
    swapn!(CL4, 2, q[4], q[6]);
    swapn!(CL4, 2, q[5], q[7]);
    const CL8: u64 = 0x0f0f_0f0f_0f0f_0f0f;
    swapn!(CL8, 4, q[0], q[4]);
    swapn!(CL8, 4, q[1], q[5]);
    swapn!(CL8, 4, q[2], q[6]);
    swapn!(CL8, 4, q[3], q[7]);
}

/// Spreads four little-endian state words so that byte `k` of each word
/// occupies bit positions `16k..16k+16` nibble-interleaved with the other
/// three words; block `j` of a 4-block group contributes `(q[j], q[4+j])`.
fn interleave_in(w: &[u32; 4]) -> (u64, u64) {
    let mut x0 = u64::from(w[0]);
    let mut x1 = u64::from(w[1]);
    let mut x2 = u64::from(w[2]);
    let mut x3 = u64::from(w[3]);
    x0 |= x0 << 16;
    x1 |= x1 << 16;
    x2 |= x2 << 16;
    x3 |= x3 << 16;
    x0 &= 0x0000_ffff_0000_ffff;
    x1 &= 0x0000_ffff_0000_ffff;
    x2 &= 0x0000_ffff_0000_ffff;
    x3 &= 0x0000_ffff_0000_ffff;
    x0 |= x0 << 8;
    x1 |= x1 << 8;
    x2 |= x2 << 8;
    x3 |= x3 << 8;
    x0 &= 0x00ff_00ff_00ff_00ff;
    x1 &= 0x00ff_00ff_00ff_00ff;
    x2 &= 0x00ff_00ff_00ff_00ff;
    x3 &= 0x00ff_00ff_00ff_00ff;
    (x0 | (x2 << 8), x1 | (x3 << 8))
}

/// Inverse of [`interleave_in`].
fn interleave_out(q0: u64, q1: u64) -> [u32; 4] {
    let mut x0 = q0 & 0x00ff_00ff_00ff_00ff;
    let mut x1 = q1 & 0x00ff_00ff_00ff_00ff;
    let mut x2 = (q0 >> 8) & 0x00ff_00ff_00ff_00ff;
    let mut x3 = (q1 >> 8) & 0x00ff_00ff_00ff_00ff;
    x0 |= x0 >> 8;
    x1 |= x1 >> 8;
    x2 |= x2 >> 8;
    x3 |= x3 >> 8;
    x0 &= 0x0000_ffff_0000_ffff;
    x1 &= 0x0000_ffff_0000_ffff;
    x2 &= 0x0000_ffff_0000_ffff;
    x3 &= 0x0000_ffff_0000_ffff;
    [
        (x0 | (x0 >> 16)) as u32,
        (x1 | (x1 >> 16)) as u32,
        (x2 | (x2 >> 16)) as u32,
        (x3 | (x3 >> 16)) as u32,
    ]
}

/// The S-box circuit values crossing the top-linear → nonlinear →
/// bottom-linear section boundaries (`x7` rides along because both
/// later sections AND with it).
#[allow(clippy::similar_names)]
struct SboxMid {
    y1: Bs,
    y2: Bs,
    y3: Bs,
    y4: Bs,
    y5: Bs,
    y6: Bs,
    y7: Bs,
    y8: Bs,
    y9: Bs,
    y10: Bs,
    y11: Bs,
    y12: Bs,
    y13: Bs,
    y14: Bs,
    y15: Bs,
    y16: Bs,
    y17: Bs,
    y18: Bs,
    y19: Bs,
    y20: Bs,
    y21: Bs,
    x7: Bs,
}

/// The GF(2^4) inversion-tower outputs feeding the `z` multiplies.
#[allow(clippy::similar_names)]
struct SboxInv {
    t29: Bs,
    t33: Bs,
    t37: Bs,
    t40: Bs,
    t41: Bs,
    t42: Bs,
    t43: Bs,
    t44: Bs,
    t45: Bs,
}

/// SubBytes over all blocks: the Boyar–Peralta combinational circuit
/// for the AES S-box ("A new combinational logic minimization technique
/// with applications to cryptology", 2009), evaluated on bit-planes.
/// `q[7]` carries the most significant bit of every byte (circuit input
/// `x0`), `q[0]` the least (input `x7`).
///
/// The circuit runs as three sections with `#[inline(never)]` memory
/// boundaries between them. This is deliberate: as one flat ~130-gate
/// function the whole dataflow lives in scalar SSA and the backend's
/// SLP vectorizer gives up on rebuilding vectors across it, emitting
/// per-limb scalar code. Bounded sections re-seed vectorization from
/// the loads/stores at each boundary, so every gate lowers to one wide
/// vector op per plane; the handful of L1 round trips at the seams is
/// noise next to the ~2× throughput of vectorized gates.
fn sub_bytes(q: &mut [Bs; 8]) {
    let mid = sb_linear_top(q);
    let inv = sb_nonlinear(&mid);
    sb_linear_bottom(&mid, &inv, q);
}

/// Top linear transformation of the S-box circuit.
#[allow(clippy::similar_names)]
#[inline(never)]
fn sb_linear_top(q: &[Bs; 8]) -> SboxMid {
    let x0 = q[7];
    let x1 = q[6];
    let x2 = q[5];
    let x3 = q[4];
    let x4 = q[3];
    let x5 = q[2];
    let x6 = q[1];
    let x7 = q[0];

    let y14 = x3 ^ x5;
    let y13 = x0 ^ x6;
    let y9 = x0 ^ x3;
    let y8 = x0 ^ x5;
    let t0 = x1 ^ x2;
    let y1 = t0 ^ x7;
    let y4 = y1 ^ x3;
    let y12 = y13 ^ y14;
    let y2 = y1 ^ x0;
    let y5 = y1 ^ x6;
    let y3 = y5 ^ y8;
    let t1 = x4 ^ y12;
    let y15 = t1 ^ x5;
    let y20 = t1 ^ x1;
    let y6 = y15 ^ x7;
    let y10 = y15 ^ t0;
    let y11 = y20 ^ y9;
    let y7 = x7 ^ y11;
    let y17 = y10 ^ y11;
    let y19 = y10 ^ y8;
    let y16 = t0 ^ y11;
    let y21 = y13 ^ y16;
    let y18 = x0 ^ y16;

    SboxMid {
        y1,
        y2,
        y3,
        y4,
        y5,
        y6,
        y7,
        y8,
        y9,
        y10,
        y11,
        y12,
        y13,
        y14,
        y15,
        y16,
        y17,
        y18,
        y19,
        y20,
        y21,
        x7,
    }
}

/// Non-linear section of the S-box circuit (GF(2^4) inversion tower).
#[allow(clippy::similar_names)]
#[inline(never)]
fn sb_nonlinear(m: &SboxMid) -> SboxInv {
    let SboxMid {
        y1,
        y2,
        y3,
        y4,
        y5,
        y6,
        y7,
        y8,
        y9,
        y10,
        y11,
        y12,
        y13,
        y14,
        y15,
        y16,
        y17,
        y18,
        y19,
        y20,
        y21,
        x7,
    } = *m;

    let t2 = y12 & y15;
    let t3 = y3 & y6;
    let t4 = t3 ^ t2;
    let t5 = y4 & x7;
    let t6 = t5 ^ t2;
    let t7 = y13 & y16;
    let t8 = y5 & y1;
    let t9 = t8 ^ t7;
    let t10 = y2 & y7;
    let t11 = t10 ^ t7;
    let t12 = y9 & y11;
    let t13 = y14 & y17;
    let t14 = t13 ^ t12;
    let t15 = y8 & y10;
    let t16 = t15 ^ t12;
    let t17 = t4 ^ t14;
    let t18 = t6 ^ t16;
    let t19 = t9 ^ t14;
    let t20 = t11 ^ t16;
    let t21 = t17 ^ y20;
    let t22 = t18 ^ y19;
    let t23 = t19 ^ y21;
    let t24 = t20 ^ y18;

    let t25 = t21 ^ t22;
    let t26 = t21 & t23;
    let t27 = t24 ^ t26;
    let t28 = t25 & t27;
    let t29 = t28 ^ t22;
    let t30 = t23 ^ t24;
    let t31 = t22 ^ t26;
    let t32 = t31 & t30;
    let t33 = t32 ^ t24;
    let t34 = t23 ^ t33;
    let t35 = t27 ^ t33;
    let t36 = t24 & t35;
    let t37 = t36 ^ t34;
    let t38 = t27 ^ t36;
    let t39 = t29 & t38;
    let t40 = t25 ^ t39;

    let t41 = t40 ^ t37;
    let t42 = t29 ^ t33;
    let t43 = t29 ^ t40;
    let t44 = t33 ^ t37;
    let t45 = t42 ^ t41;

    SboxInv {
        t29,
        t33,
        t37,
        t40,
        t41,
        t42,
        t43,
        t44,
        t45,
    }
}

/// Output multiplies (`z`) and bottom linear transformation of the
/// S-box circuit; writes the substituted planes back into `q`.
#[allow(clippy::similar_names)]
#[inline(never)]
fn sb_linear_bottom(m: &SboxMid, inv: &SboxInv, q: &mut [Bs; 8]) {
    let SboxMid {
        y1,
        y2,
        y3,
        y4,
        y5,
        y6,
        y7,
        y8,
        y9,
        y10,
        y11,
        y12,
        y13,
        y14,
        y15,
        y16,
        y17,
        x7,
        ..
    } = *m;
    let SboxInv {
        t29,
        t33,
        t37,
        t40,
        t41,
        t42,
        t43,
        t44,
        t45,
    } = *inv;

    let z0 = t44 & y15;
    let z1 = t37 & y6;
    let z2 = t33 & x7;
    let z3 = t43 & y16;
    let z4 = t40 & y1;
    let z5 = t29 & y7;
    let z6 = t42 & y11;
    let z7 = t45 & y17;
    let z8 = t41 & y10;
    let z9 = t44 & y12;
    let z10 = t37 & y3;
    let z11 = t33 & y4;
    let z12 = t43 & y13;
    let z13 = t40 & y5;
    let z14 = t29 & y2;
    let z15 = t42 & y9;
    let z16 = t45 & y14;
    let z17 = t41 & y8;

    // Bottom linear transformation.
    let t46 = z15 ^ z16;
    let t47 = z10 ^ z11;
    let t48 = z5 ^ z13;
    let t49 = z9 ^ z10;
    let t50 = z2 ^ z12;
    let t51 = z2 ^ z5;
    let t52 = z7 ^ z8;
    let t53 = z0 ^ z3;
    let t54 = z6 ^ z7;
    let t55 = z16 ^ z17;
    let t56 = z12 ^ t48;
    let t57 = t50 ^ t53;
    let t58 = z4 ^ t46;
    let t59 = z3 ^ t54;
    let t60 = t46 ^ t57;
    let t61 = z14 ^ t57;
    let t62 = t52 ^ t58;
    let t63 = t49 ^ t58;
    let t64 = z4 ^ t59;
    let t65 = t61 ^ t62;
    let t66 = z1 ^ t63;
    let s0 = t59 ^ t63;
    let s6 = t56 ^ !t62;
    let s7 = t48 ^ !t60;
    let t67 = t64 ^ t65;
    let s3 = t53 ^ t66;
    let s4 = t51 ^ t66;
    let s5 = t47 ^ t65;
    let s1 = t64 ^ !s3;
    let s2 = t55 ^ !t67;

    q[7] = s0;
    q[6] = s1;
    q[5] = s2;
    q[4] = s3;
    q[3] = s4;
    q[2] = s5;
    q[1] = s6;
    q[0] = s7;
}

/// ShiftRows on bit-planes: each 16-bit group of a plane limb holds one
/// state row across a four-block group (4 bits per column), so row `r`
/// rotates by `4·r` bit positions within its group.
fn shift_rows(q: &mut [Bs; 8]) {
    for x in q.iter_mut() {
        *x = x.mask(0x0000_0000_0000_ffff)
            | x.mask(0x0000_0000_fff0_0000).shr(4)
            | x.mask(0x0000_0000_000f_0000).shl(12)
            | x.mask(0x0000_ff00_0000_0000).shr(8)
            | x.mask(0x0000_00ff_0000_0000).shl(8)
            | x.mask(0xf000_0000_0000_0000).shr(12)
            | x.mask(0x0fff_0000_0000_0000).shl(4);
    }
}

/// MixColumns on bit-planes: with `ρ` = rotate-right-16 (move to next row)
/// this is `b = 2·(a ⊕ ρa) ⊕ ρa ⊕ ρ²(a ⊕ ρa)`, where the doubling feeds
/// plane `i`'s input into plane `i+1` with the AES polynomial folded into
/// planes 0, 1, 3 and 4.
#[allow(clippy::similar_names)]
fn mix_columns(q: &mut [Bs; 8]) {
    let q0 = q[0];
    let q1 = q[1];
    let q2 = q[2];
    let q3 = q[3];
    let q4 = q[4];
    let q5 = q[5];
    let q6 = q[6];
    let q7 = q[7];
    let r0 = q0.rotate_right(16);
    let r1 = q1.rotate_right(16);
    let r2 = q2.rotate_right(16);
    let r3 = q3.rotate_right(16);
    let r4 = q4.rotate_right(16);
    let r5 = q5.rotate_right(16);
    let r6 = q6.rotate_right(16);
    let r7 = q7.rotate_right(16);

    q[0] = q7 ^ r7 ^ r0 ^ (q0 ^ r0).rotate_right(32);
    q[1] = q0 ^ r0 ^ q7 ^ r7 ^ r1 ^ (q1 ^ r1).rotate_right(32);
    q[2] = q1 ^ r1 ^ r2 ^ (q2 ^ r2).rotate_right(32);
    q[3] = q2 ^ r2 ^ q7 ^ r7 ^ r3 ^ (q3 ^ r3).rotate_right(32);
    q[4] = q3 ^ r3 ^ q7 ^ r7 ^ r4 ^ (q4 ^ r4).rotate_right(32);
    q[5] = q4 ^ r4 ^ r5 ^ (q5 ^ r5).rotate_right(32);
    q[6] = q5 ^ r5 ^ r6 ^ (q6 ^ r6).rotate_right(32);
    q[7] = q6 ^ r6 ^ r7 ^ (q7 ^ r7).rotate_right(32);
}

/// Constant-time SubWord for the key schedule: runs one 32-bit word
/// through the bitsliced S-box circuit (the other lanes are zero).
fn sub_word(x: u32) -> u32 {
    let mut g = [0u64; 8];
    g[0] = u64::from(x);
    ortho(&mut g);
    let mut q = [Bs::default(); 8];
    for (plane, lane) in q.iter_mut().zip(g.iter()) {
        plane.0[0] = *lane;
    }
    sub_bytes(&mut q);
    for (lane, plane) in g.iter_mut().zip(q.iter()) {
        *lane = plane.0[0];
    }
    ortho(&mut g);
    let out = g[0] as u32;
    crate::zeroize::zeroize_u64s(&mut g);
    for plane in &mut q {
        crate::zeroize::zeroize_u64s(&mut plane.0);
    }
    out
}

/// An AES-128 key schedule expanded into bitsliced form, ready to
/// encrypt [`PARALLEL_BLOCKS`] blocks per call.
///
/// # Example
///
/// ```
/// use mig_crypto::aes::Aes128;
///
/// let cipher = Aes128::new(&[0u8; 16]);
/// let mut block = [0u8; 16];
/// cipher.encrypt_block(&mut block);
/// assert_ne!(block, [0u8; 16]);
/// ```
#[derive(Clone)]
pub struct Aes128 {
    /// Bitsliced round keys: each round key replicated across every
    /// block lane, pre-orthogonalized so AddRoundKey is 8 plane XORs.
    round_keys: [[Bs; 8]; 11],
}

impl std::fmt::Debug for Aes128 {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        // Round keys are secret; never print them.
        f.debug_struct("Aes128").finish_non_exhaustive()
    }
}

impl Drop for Aes128 {
    fn drop(&mut self) {
        // The expanded key schedule is equivalent to the key itself.
        for rk in &mut self.round_keys {
            for plane in rk.iter_mut() {
                crate::zeroize::zeroize_u64s(&mut plane.0);
            }
        }
    }
}

impl Aes128 {
    /// Expands `key` into the 11 bitsliced round keys of AES-128.
    ///
    /// The word expansion is the standard FIPS 197 recurrence but with
    /// SubWord routed through the bitsliced S-box — no table lookups on
    /// key-derived indices.
    #[must_use]
    pub fn new(key: &[u8; KEY_LEN]) -> Self {
        let mut w = [0u32; 44];
        for (i, chunk) in key.chunks_exact(4).enumerate() {
            w[i] = u32::from_le_bytes(chunk.try_into().expect("4-byte chunk"));
        }
        for i in 4..44 {
            let mut temp = w[i - 1];
            if i % 4 == 0 {
                // RotWord on little-endian-decoded words is a right rotation.
                temp = sub_word(temp.rotate_right(8)) ^ u32::from(RCON[i / 4 - 1]);
            }
            w[i] = w[i - 4] ^ temp;
        }
        let mut round_keys = [[Bs([0u64; GROUPS]); 8]; 11];
        for (r, rk) in round_keys.iter_mut().enumerate() {
            let words: [u32; 4] = w[4 * r..4 * r + 4].try_into().expect("4 words per round");
            let (lo, hi) = interleave_in(&words);
            // Replicate the round key into all four lanes of a group, then
            // move to the bit-plane domain once so the per-call AddRoundKey
            // is a plain XOR (ortho is a bit permutation, hence XOR-linear);
            // every group sees the same key, so broadcast the planes.
            let mut g = [lo, lo, lo, lo, hi, hi, hi, hi];
            ortho(&mut g);
            for (plane, lane) in rk.iter_mut().zip(g.iter()) {
                *plane = Bs([*lane; GROUPS]);
            }
            crate::zeroize::zeroize_u64s(&mut g);
        }
        crate::zeroize::zeroize_u32s(&mut w);
        Aes128 { round_keys }
    }

    /// Runs the 10 AES rounds on a bit-plane state covering all blocks.
    fn encrypt_planes(&self, q: &mut [Bs; 8]) {
        for (i, x) in q.iter_mut().enumerate() {
            *x ^= self.round_keys[0][i];
        }
        for round in 1..10 {
            sub_bytes(q);
            shift_rows(q);
            mix_columns(q);
            for (i, x) in q.iter_mut().enumerate() {
                *x ^= self.round_keys[round][i];
            }
        }
        sub_bytes(q);
        shift_rows(q);
        for (i, x) in q.iter_mut().enumerate() {
            *x ^= self.round_keys[10][i];
        }
    }

    /// Encrypts [`PARALLEL_BLOCKS`] 16-byte blocks in place with one
    /// pass through the bitsliced kernel — the hot entry point for CTR
    /// keystream generation. All lanes cost the same as one.
    pub fn encrypt_blocks(&self, blocks: &mut [[u8; BLOCK_LEN]; PARALLEL_BLOCKS]) {
        // Orthogonalize each four-block group separately (ortho is a
        // 64-bit in-place permutation), then zip the groups into the
        // multi-limb planes the round functions run on.
        let mut groups = [[0u64; 8]; GROUPS];
        for (g, quad) in blocks.chunks_exact(4).enumerate() {
            for (j, block) in quad.iter().enumerate() {
                let mut words = [0u32; 4];
                for (c, chunk) in block.chunks_exact(4).enumerate() {
                    words[c] = u32::from_le_bytes(chunk.try_into().expect("4-byte chunk"));
                }
                let (lo, hi) = interleave_in(&words);
                groups[g][j] = lo;
                groups[g][4 + j] = hi;
            }
            ortho(&mut groups[g]);
        }
        let mut q: [Bs; 8] = std::array::from_fn(|i| Bs(std::array::from_fn(|g| groups[g][i])));
        self.encrypt_planes(&mut q);
        for (g, group) in groups.iter_mut().enumerate() {
            for (lane, plane) in group.iter_mut().zip(q.iter()) {
                *lane = plane.0[g];
            }
            ortho(group);
        }
        for (g, quad) in blocks.chunks_exact_mut(4).enumerate() {
            for (j, block) in quad.iter_mut().enumerate() {
                let words = interleave_out(groups[g][j], groups[g][4 + j]);
                for (c, word) in words.iter().enumerate() {
                    block[4 * c..4 * c + 4].copy_from_slice(&word.to_le_bytes());
                }
            }
        }
        for group in &mut groups {
            crate::zeroize::zeroize_u64s(group);
        }
        for plane in &mut q {
            crate::zeroize::zeroize_u64s(&mut plane.0);
        }
    }

    /// Encrypts one 16-byte block in place (runs the multi-block kernel
    /// with the other lanes idle; used for GCM's `H` and `E(K, J0)`
    /// one-offs).
    pub fn encrypt_block(&self, block: &mut [u8; BLOCK_LEN]) {
        let mut group = [[0u8; BLOCK_LEN]; PARALLEL_BLOCKS];
        group[0] = *block;
        self.encrypt_blocks(&mut group);
        *block = group[0];
        for b in &mut group {
            crate::zeroize::zeroize_bytes(b);
        }
    }

    /// Encrypts one block, returning the ciphertext (convenience).
    #[must_use]
    pub fn encrypt(&self, block: &[u8; BLOCK_LEN]) -> [u8; BLOCK_LEN] {
        let mut out = *block;
        self.encrypt_block(&mut out);
        out
    }
}

/// The byte-serial SBOX-table AES the bitsliced kernel replaced, retained
/// verbatim as an independent oracle for tests and the `crypto_kernels`
/// microbench (`reference` feature). Not constant-time — never use it on
/// live keys outside tests/benches.
#[cfg(any(test, feature = "reference"))]
pub mod reference {
    use super::{BLOCK_LEN, KEY_LEN, RCON};

    const SBOX: [u8; 256] = [
        0x63, 0x7c, 0x77, 0x7b, 0xf2, 0x6b, 0x6f, 0xc5, 0x30, 0x01, 0x67, 0x2b, 0xfe, 0xd7, 0xab,
        0x76, 0xca, 0x82, 0xc9, 0x7d, 0xfa, 0x59, 0x47, 0xf0, 0xad, 0xd4, 0xa2, 0xaf, 0x9c, 0xa4,
        0x72, 0xc0, 0xb7, 0xfd, 0x93, 0x26, 0x36, 0x3f, 0xf7, 0xcc, 0x34, 0xa5, 0xe5, 0xf1, 0x71,
        0xd8, 0x31, 0x15, 0x04, 0xc7, 0x23, 0xc3, 0x18, 0x96, 0x05, 0x9a, 0x07, 0x12, 0x80, 0xe2,
        0xeb, 0x27, 0xb2, 0x75, 0x09, 0x83, 0x2c, 0x1a, 0x1b, 0x6e, 0x5a, 0xa0, 0x52, 0x3b, 0xd6,
        0xb3, 0x29, 0xe3, 0x2f, 0x84, 0x53, 0xd1, 0x00, 0xed, 0x20, 0xfc, 0xb1, 0x5b, 0x6a, 0xcb,
        0xbe, 0x39, 0x4a, 0x4c, 0x58, 0xcf, 0xd0, 0xef, 0xaa, 0xfb, 0x43, 0x4d, 0x33, 0x85, 0x45,
        0xf9, 0x02, 0x7f, 0x50, 0x3c, 0x9f, 0xa8, 0x51, 0xa3, 0x40, 0x8f, 0x92, 0x9d, 0x38, 0xf5,
        0xbc, 0xb6, 0xda, 0x21, 0x10, 0xff, 0xf3, 0xd2, 0xcd, 0x0c, 0x13, 0xec, 0x5f, 0x97, 0x44,
        0x17, 0xc4, 0xa7, 0x7e, 0x3d, 0x64, 0x5d, 0x19, 0x73, 0x60, 0x81, 0x4f, 0xdc, 0x22, 0x2a,
        0x90, 0x88, 0x46, 0xee, 0xb8, 0x14, 0xde, 0x5e, 0x0b, 0xdb, 0xe0, 0x32, 0x3a, 0x0a, 0x49,
        0x06, 0x24, 0x5c, 0xc2, 0xd3, 0xac, 0x62, 0x91, 0x95, 0xe4, 0x79, 0xe7, 0xc8, 0x37, 0x6d,
        0x8d, 0xd5, 0x4e, 0xa9, 0x6c, 0x56, 0xf4, 0xea, 0x65, 0x7a, 0xae, 0x08, 0xba, 0x78, 0x25,
        0x2e, 0x1c, 0xa6, 0xb4, 0xc6, 0xe8, 0xdd, 0x74, 0x1f, 0x4b, 0xbd, 0x8b, 0x8a, 0x70, 0x3e,
        0xb5, 0x66, 0x48, 0x03, 0xf6, 0x0e, 0x61, 0x35, 0x57, 0xb9, 0x86, 0xc1, 0x1d, 0x9e, 0xe1,
        0xf8, 0x98, 0x11, 0x69, 0xd9, 0x8e, 0x94, 0x9b, 0x1e, 0x87, 0xe9, 0xce, 0x55, 0x28, 0xdf,
        0x8c, 0xa1, 0x89, 0x0d, 0xbf, 0xe6, 0x42, 0x68, 0x41, 0x99, 0x2d, 0x0f, 0xb0, 0x54, 0xbb,
        0x16,
    ];

    /// The AES S-box, exposed for pinning the bitsliced SubWord.
    #[must_use]
    pub fn sbox(b: u8) -> u8 {
        SBOX[b as usize]
    }

    /// Multiplication by x in GF(2^8) with the AES polynomial.
    #[inline]
    fn xtime(b: u8) -> u8 {
        (b << 1) ^ (((b >> 7) & 1) * 0x1b)
    }

    /// Scalar one-block-at-a-time AES-128 (SBOX table walk).
    pub struct ScalarAes128 {
        round_keys: [[u8; 16]; 11],
    }

    impl ScalarAes128 {
        /// Expands `key` with the byte-oriented FIPS 197 schedule.
        #[must_use]
        pub fn new(key: &[u8; KEY_LEN]) -> Self {
            let mut w = [[0u8; 4]; 44];
            for i in 0..4 {
                w[i] = [key[4 * i], key[4 * i + 1], key[4 * i + 2], key[4 * i + 3]];
            }
            for i in 4..44 {
                let mut temp = w[i - 1];
                if i % 4 == 0 {
                    temp.rotate_left(1);
                    for t in &mut temp {
                        *t = SBOX[*t as usize];
                    }
                    temp[0] ^= RCON[i / 4 - 1];
                }
                for j in 0..4 {
                    w[i][j] = w[i - 4][j] ^ temp[j];
                }
            }
            let mut round_keys = [[0u8; 16]; 11];
            for (r, rk) in round_keys.iter_mut().enumerate() {
                for c in 0..4 {
                    rk[4 * c..4 * c + 4].copy_from_slice(&w[4 * r + c]);
                }
            }
            ScalarAes128 { round_keys }
        }

        /// Encrypts one 16-byte block in place.
        pub fn encrypt_block(&self, block: &mut [u8; BLOCK_LEN]) {
            add_round_key(block, &self.round_keys[0]);
            for round in 1..10 {
                sub_bytes(block);
                shift_rows(block);
                mix_columns(block);
                add_round_key(block, &self.round_keys[round]);
            }
            sub_bytes(block);
            shift_rows(block);
            add_round_key(block, &self.round_keys[10]);
        }

        /// Encrypts one block, returning the ciphertext (convenience).
        #[must_use]
        pub fn encrypt(&self, block: &[u8; BLOCK_LEN]) -> [u8; BLOCK_LEN] {
            let mut out = *block;
            self.encrypt_block(&mut out);
            out
        }
    }

    fn add_round_key(state: &mut [u8; 16], rk: &[u8; 16]) {
        for i in 0..16 {
            state[i] ^= rk[i];
        }
    }

    fn sub_bytes(state: &mut [u8; 16]) {
        for b in state.iter_mut() {
            *b = SBOX[*b as usize];
        }
    }

    // State is column-major: state[4*c + r] is row r, column c.
    fn shift_rows(state: &mut [u8; 16]) {
        let s = *state;
        for r in 1..4 {
            for c in 0..4 {
                state[4 * c + r] = s[4 * ((c + r) % 4) + r];
            }
        }
    }

    fn mix_columns(state: &mut [u8; 16]) {
        for c in 0..4 {
            let col = [
                state[4 * c],
                state[4 * c + 1],
                state[4 * c + 2],
                state[4 * c + 3],
            ];
            state[4 * c] = xtime(col[0]) ^ (xtime(col[1]) ^ col[1]) ^ col[2] ^ col[3];
            state[4 * c + 1] = col[0] ^ xtime(col[1]) ^ (xtime(col[2]) ^ col[2]) ^ col[3];
            state[4 * c + 2] = col[0] ^ col[1] ^ xtime(col[2]) ^ (xtime(col[3]) ^ col[3]);
            state[4 * c + 3] = (xtime(col[0]) ^ col[0]) ^ col[1] ^ col[2] ^ xtime(col[3]);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{hex_decode, hex_encode};
    use proptest::prelude::*;

    #[test]
    fn fips197_appendix_c1() {
        let key: [u8; 16] = hex_decode("000102030405060708090a0b0c0d0e0f")
            .try_into()
            .unwrap();
        let pt: [u8; 16] = hex_decode("00112233445566778899aabbccddeeff")
            .try_into()
            .unwrap();
        let cipher = Aes128::new(&key);
        assert_eq!(
            hex_encode(&cipher.encrypt(&pt)),
            "69c4e0d86a7b0430d8cdb78070b4c55a"
        );
    }

    #[test]
    fn fips197_appendix_b() {
        let key: [u8; 16] = hex_decode("2b7e151628aed2a6abf7158809cf4f3c")
            .try_into()
            .unwrap();
        let pt: [u8; 16] = hex_decode("3243f6a8885a308d313198a2e0370734")
            .try_into()
            .unwrap();
        let cipher = Aes128::new(&key);
        assert_eq!(
            hex_encode(&cipher.encrypt(&pt)),
            "3925841d02dc09fbdc118597196a0b32"
        );
    }

    #[test]
    fn nist_sp800_38a_ecb_vectors_via_encrypt_blocks() {
        // SP 800-38A F.1.1 ECB-AES128.Encrypt: four blocks under one key,
        // replicated into every four-block group — exactly one bitsliced
        // kernel invocation, all lanes live, and every group must agree
        // with the others and with the single-block path.
        let key: [u8; 16] = hex_decode("2b7e151628aed2a6abf7158809cf4f3c")
            .try_into()
            .unwrap();
        let cipher = Aes128::new(&key);
        let cases = [
            (
                "6bc1bee22e409f96e93d7e117393172a",
                "3ad77bb40d7a3660a89ecaf32466ef97",
            ),
            (
                "ae2d8a571e03ac9c9eb76fac45af8e51",
                "f5d3d58503b9699de785895a96fdbaaf",
            ),
            (
                "30c81c46a35ce411e5fbc1191a0a52ef",
                "43b1cd7f598ece23881b00e3ed030688",
            ),
            (
                "f69f2445df4f9b17ad2b417be66c3710",
                "7b0c785e27e8ad3f8223207104725dd4",
            ),
        ];
        let mut group = [[0u8; BLOCK_LEN]; PARALLEL_BLOCKS];
        for (lane, (pt_hex, _)) in cases.iter().cycle().take(PARALLEL_BLOCKS).enumerate() {
            group[lane] = hex_decode(pt_hex).try_into().unwrap();
        }
        cipher.encrypt_blocks(&mut group);
        for (lane, (pt_hex, ct_hex)) in cases.iter().cycle().take(PARALLEL_BLOCKS).enumerate() {
            assert_eq!(hex_encode(&group[lane]), *ct_hex, "lane {lane}");
            // Single-block path must agree with its lane.
            let pt: [u8; 16] = hex_decode(pt_hex).try_into().unwrap();
            assert_eq!(hex_encode(&cipher.encrypt(&pt)), *ct_hex);
        }
    }

    #[test]
    fn distinct_keys_distinct_ciphertexts() {
        let pt = [0x42u8; 16];
        let c1 = Aes128::new(&[0u8; 16]).encrypt(&pt);
        let c2 = Aes128::new(&[1u8; 16]).encrypt(&pt);
        assert_ne!(c1, c2);
    }

    #[test]
    fn encrypt_block_matches_encrypt() {
        let cipher = Aes128::new(b"0123456789abcdef");
        let pt = *b"fedcba9876543210";
        let mut in_place = pt;
        cipher.encrypt_block(&mut in_place);
        assert_eq!(in_place, cipher.encrypt(&pt));
    }

    #[test]
    fn ortho_is_an_involution() {
        let mut q = [0u64; 8];
        for (i, x) in q.iter_mut().enumerate() {
            *x = 0x0123_4567_89ab_cdefu64.wrapping_mul(i as u64 + 1);
        }
        let orig = q;
        ortho(&mut q);
        assert_ne!(q, orig);
        ortho(&mut q);
        assert_eq!(q, orig);
    }

    #[test]
    fn bitsliced_sub_word_matches_sbox_table_exhaustively() {
        // Every byte value in every byte position of the word.
        for b in 0..=255u8 {
            for pos in 0..4 {
                let x = u32::from(b) << (8 * pos);
                let expected = u32::from(reference::sbox(b)) << (8 * pos)
                    | (u32::from(reference::sbox(0)) * 0x0101_0101) & !(0xffu32 << (8 * pos));
                assert_eq!(sub_word(x), expected, "byte {b:#x} pos {pos}");
            }
        }
    }

    proptest! {
        #[test]
        fn prop_bitsliced_matches_scalar_oracle(
            key in any::<[u8; KEY_LEN]>(),
            data in any::<[u8; BLOCK_LEN * PARALLEL_BLOCKS]>(),
        ) {
            let bitsliced = Aes128::new(&key);
            let scalar = reference::ScalarAes128::new(&key);
            let mut blocks = [[0u8; BLOCK_LEN]; PARALLEL_BLOCKS];
            for (lane, chunk) in data.chunks_exact(BLOCK_LEN).enumerate() {
                blocks[lane].copy_from_slice(chunk);
            }
            let mut group = blocks;
            bitsliced.encrypt_blocks(&mut group);
            for lane in 0..PARALLEL_BLOCKS {
                prop_assert_eq!(group[lane], scalar.encrypt(&blocks[lane]));
            }
        }

        #[test]
        fn prop_interleave_round_trips(q0 in any::<u64>(), q1 in any::<u64>()) {
            let words = interleave_out(q0, q1);
            let (lo, hi) = interleave_in(&words);
            prop_assert_eq!((lo, hi), (q0, q1));
        }
    }
}
