//! AES-128 block cipher (FIPS 197), encryption direction only.
//!
//! GCM mode ([`crate::gcm`]) only requires the forward cipher, which is the
//! only consumer in this workspace; SGX sealing keys are 128-bit, matching
//! the paper's 128-bit Migration Sealing Key (Table I). Validated against
//! the FIPS 197 Appendix B/C vectors.

/// AES block size in bytes.
pub const BLOCK_LEN: usize = 16;
/// AES-128 key size in bytes.
pub const KEY_LEN: usize = 16;

const SBOX: [u8; 256] = [
    0x63, 0x7c, 0x77, 0x7b, 0xf2, 0x6b, 0x6f, 0xc5, 0x30, 0x01, 0x67, 0x2b, 0xfe, 0xd7, 0xab, 0x76,
    0xca, 0x82, 0xc9, 0x7d, 0xfa, 0x59, 0x47, 0xf0, 0xad, 0xd4, 0xa2, 0xaf, 0x9c, 0xa4, 0x72, 0xc0,
    0xb7, 0xfd, 0x93, 0x26, 0x36, 0x3f, 0xf7, 0xcc, 0x34, 0xa5, 0xe5, 0xf1, 0x71, 0xd8, 0x31, 0x15,
    0x04, 0xc7, 0x23, 0xc3, 0x18, 0x96, 0x05, 0x9a, 0x07, 0x12, 0x80, 0xe2, 0xeb, 0x27, 0xb2, 0x75,
    0x09, 0x83, 0x2c, 0x1a, 0x1b, 0x6e, 0x5a, 0xa0, 0x52, 0x3b, 0xd6, 0xb3, 0x29, 0xe3, 0x2f, 0x84,
    0x53, 0xd1, 0x00, 0xed, 0x20, 0xfc, 0xb1, 0x5b, 0x6a, 0xcb, 0xbe, 0x39, 0x4a, 0x4c, 0x58, 0xcf,
    0xd0, 0xef, 0xaa, 0xfb, 0x43, 0x4d, 0x33, 0x85, 0x45, 0xf9, 0x02, 0x7f, 0x50, 0x3c, 0x9f, 0xa8,
    0x51, 0xa3, 0x40, 0x8f, 0x92, 0x9d, 0x38, 0xf5, 0xbc, 0xb6, 0xda, 0x21, 0x10, 0xff, 0xf3, 0xd2,
    0xcd, 0x0c, 0x13, 0xec, 0x5f, 0x97, 0x44, 0x17, 0xc4, 0xa7, 0x7e, 0x3d, 0x64, 0x5d, 0x19, 0x73,
    0x60, 0x81, 0x4f, 0xdc, 0x22, 0x2a, 0x90, 0x88, 0x46, 0xee, 0xb8, 0x14, 0xde, 0x5e, 0x0b, 0xdb,
    0xe0, 0x32, 0x3a, 0x0a, 0x49, 0x06, 0x24, 0x5c, 0xc2, 0xd3, 0xac, 0x62, 0x91, 0x95, 0xe4, 0x79,
    0xe7, 0xc8, 0x37, 0x6d, 0x8d, 0xd5, 0x4e, 0xa9, 0x6c, 0x56, 0xf4, 0xea, 0x65, 0x7a, 0xae, 0x08,
    0xba, 0x78, 0x25, 0x2e, 0x1c, 0xa6, 0xb4, 0xc6, 0xe8, 0xdd, 0x74, 0x1f, 0x4b, 0xbd, 0x8b, 0x8a,
    0x70, 0x3e, 0xb5, 0x66, 0x48, 0x03, 0xf6, 0x0e, 0x61, 0x35, 0x57, 0xb9, 0x86, 0xc1, 0x1d, 0x9e,
    0xe1, 0xf8, 0x98, 0x11, 0x69, 0xd9, 0x8e, 0x94, 0x9b, 0x1e, 0x87, 0xe9, 0xce, 0x55, 0x28, 0xdf,
    0x8c, 0xa1, 0x89, 0x0d, 0xbf, 0xe6, 0x42, 0x68, 0x41, 0x99, 0x2d, 0x0f, 0xb0, 0x54, 0xbb, 0x16,
];

const RCON: [u8; 10] = [0x01, 0x02, 0x04, 0x08, 0x10, 0x20, 0x40, 0x80, 0x1b, 0x36];

/// Multiplication by x in GF(2^8) with the AES polynomial.
#[inline]
fn xtime(b: u8) -> u8 {
    (b << 1) ^ (((b >> 7) & 1) * 0x1b)
}

/// An AES-128 key schedule ready for encryption.
///
/// # Example
///
/// ```
/// use mig_crypto::aes::Aes128;
///
/// let cipher = Aes128::new(&[0u8; 16]);
/// let mut block = [0u8; 16];
/// cipher.encrypt_block(&mut block);
/// assert_ne!(block, [0u8; 16]);
/// ```
#[derive(Clone)]
pub struct Aes128 {
    round_keys: [[u8; 16]; 11],
}

impl std::fmt::Debug for Aes128 {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        // Round keys are secret; never print them.
        f.debug_struct("Aes128").finish_non_exhaustive()
    }
}

impl Drop for Aes128 {
    fn drop(&mut self) {
        // The expanded key schedule is equivalent to the key itself.
        for rk in &mut self.round_keys {
            crate::zeroize::zeroize_bytes(rk);
        }
    }
}

impl Aes128 {
    /// Expands `key` into the 11 round keys of AES-128.
    #[must_use]
    pub fn new(key: &[u8; KEY_LEN]) -> Self {
        let mut w = [[0u8; 4]; 44];
        for i in 0..4 {
            w[i] = [key[4 * i], key[4 * i + 1], key[4 * i + 2], key[4 * i + 3]];
        }
        for i in 4..44 {
            let mut temp = w[i - 1];
            if i % 4 == 0 {
                temp.rotate_left(1);
                for t in &mut temp {
                    *t = SBOX[*t as usize];
                }
                temp[0] ^= RCON[i / 4 - 1];
            }
            for j in 0..4 {
                w[i][j] = w[i - 4][j] ^ temp[j];
            }
        }
        let mut round_keys = [[0u8; 16]; 11];
        for (r, rk) in round_keys.iter_mut().enumerate() {
            for c in 0..4 {
                rk[4 * c..4 * c + 4].copy_from_slice(&w[4 * r + c]);
            }
        }
        for word in &mut w {
            crate::zeroize::zeroize_bytes(word);
        }
        Aes128 { round_keys }
    }

    /// Encrypts one 16-byte block in place.
    pub fn encrypt_block(&self, block: &mut [u8; BLOCK_LEN]) {
        add_round_key(block, &self.round_keys[0]);
        for round in 1..10 {
            sub_bytes(block);
            shift_rows(block);
            mix_columns(block);
            add_round_key(block, &self.round_keys[round]);
        }
        sub_bytes(block);
        shift_rows(block);
        add_round_key(block, &self.round_keys[10]);
    }

    /// Encrypts one block, returning the ciphertext (convenience).
    #[must_use]
    pub fn encrypt(&self, block: &[u8; BLOCK_LEN]) -> [u8; BLOCK_LEN] {
        let mut out = *block;
        self.encrypt_block(&mut out);
        out
    }
}

fn add_round_key(state: &mut [u8; 16], rk: &[u8; 16]) {
    for i in 0..16 {
        state[i] ^= rk[i];
    }
}

fn sub_bytes(state: &mut [u8; 16]) {
    for b in state.iter_mut() {
        *b = SBOX[*b as usize];
    }
}

// State is column-major: state[4*c + r] is row r, column c.
fn shift_rows(state: &mut [u8; 16]) {
    let s = *state;
    for r in 1..4 {
        for c in 0..4 {
            state[4 * c + r] = s[4 * ((c + r) % 4) + r];
        }
    }
}

fn mix_columns(state: &mut [u8; 16]) {
    for c in 0..4 {
        let col = [
            state[4 * c],
            state[4 * c + 1],
            state[4 * c + 2],
            state[4 * c + 3],
        ];
        state[4 * c] = xtime(col[0]) ^ (xtime(col[1]) ^ col[1]) ^ col[2] ^ col[3];
        state[4 * c + 1] = col[0] ^ xtime(col[1]) ^ (xtime(col[2]) ^ col[2]) ^ col[3];
        state[4 * c + 2] = col[0] ^ col[1] ^ xtime(col[2]) ^ (xtime(col[3]) ^ col[3]);
        state[4 * c + 3] = (xtime(col[0]) ^ col[0]) ^ col[1] ^ col[2] ^ xtime(col[3]);
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{hex_decode, hex_encode};

    #[test]
    fn fips197_appendix_c1() {
        let key: [u8; 16] = hex_decode("000102030405060708090a0b0c0d0e0f")
            .try_into()
            .unwrap();
        let pt: [u8; 16] = hex_decode("00112233445566778899aabbccddeeff")
            .try_into()
            .unwrap();
        let cipher = Aes128::new(&key);
        assert_eq!(
            hex_encode(&cipher.encrypt(&pt)),
            "69c4e0d86a7b0430d8cdb78070b4c55a"
        );
    }

    #[test]
    fn fips197_appendix_b() {
        let key: [u8; 16] = hex_decode("2b7e151628aed2a6abf7158809cf4f3c")
            .try_into()
            .unwrap();
        let pt: [u8; 16] = hex_decode("3243f6a8885a308d313198a2e0370734")
            .try_into()
            .unwrap();
        let cipher = Aes128::new(&key);
        assert_eq!(
            hex_encode(&cipher.encrypt(&pt)),
            "3925841d02dc09fbdc118597196a0b32"
        );
    }

    #[test]
    fn nist_sp800_38a_ecb_vectors() {
        // SP 800-38A F.1.1 ECB-AES128.Encrypt: four blocks under one key.
        let key: [u8; 16] = hex_decode("2b7e151628aed2a6abf7158809cf4f3c")
            .try_into()
            .unwrap();
        let cipher = Aes128::new(&key);
        let cases = [
            (
                "6bc1bee22e409f96e93d7e117393172a",
                "3ad77bb40d7a3660a89ecaf32466ef97",
            ),
            (
                "ae2d8a571e03ac9c9eb76fac45af8e51",
                "f5d3d58503b9699de785895a96fdbaaf",
            ),
            (
                "30c81c46a35ce411e5fbc1191a0a52ef",
                "43b1cd7f598ece23881b00e3ed030688",
            ),
            (
                "f69f2445df4f9b17ad2b417be66c3710",
                "7b0c785e27e8ad3f8223207104725dd4",
            ),
        ];
        for (pt_hex, ct_hex) in cases {
            let pt: [u8; 16] = hex_decode(pt_hex).try_into().unwrap();
            assert_eq!(hex_encode(&cipher.encrypt(&pt)), ct_hex);
        }
    }

    #[test]
    fn distinct_keys_distinct_ciphertexts() {
        let pt = [0x42u8; 16];
        let c1 = Aes128::new(&[0u8; 16]).encrypt(&pt);
        let c2 = Aes128::new(&[1u8; 16]).encrypt(&pt);
        assert_ne!(c1, c2);
    }

    #[test]
    fn encrypt_block_matches_encrypt() {
        let cipher = Aes128::new(b"0123456789abcdef");
        let pt = *b"fedcba9876543210";
        let mut in_place = pt;
        cipher.encrypt_block(&mut in_place);
        assert_eq!(in_place, cipher.encrypt(&pt));
    }
}
