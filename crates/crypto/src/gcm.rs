//! AES-128-GCM authenticated encryption (NIST SP 800-38D).
//!
//! This is the workhorse AEAD of the workspace: the simulated
//! `sgx_seal_data`, the migratable sealing of the Migration Library, and
//! every attested secure channel all encrypt with AES-128-GCM, mirroring the
//! SGX SDK (the paper, §II-A4, notes SGX sealing uses AES-GCM). Validated
//! against the original McGrew–Viega GCM specification test cases.
//!
//! # Kernel design
//!
//! Both halves of GCM run as multi-block kernels. The CTR keystream is
//! generated `PARALLEL_BLOCKS` counter blocks at a time through the bitsliced AES
//! kernel ([`Aes128::encrypt_blocks`]), so the per-call fixed cost of the
//! bitslice transform is amortized over 128 bytes of keystream. GHASH
//! uses Shoup's 8-bit table method: a 4 KiB per-key table (`htable[b]` =
//! byte-polynomial `b` times `H`) plus a shared key-independent 4 KiB
//! reduction table, bringing a block multiply down to 16 table lookups —
//! half the lookups of the 4-bit method it replaces (which survives in
//! [`reference`] as an oracle, alongside the bit-serial multiply).
//! Blocks are absorbed two at a time via a second table for `H²`:
//! `y·H² ⊕ x·H` runs as two *independent* Shoup walks whose table-load
//! latencies overlap in the out-of-order core, where the naive
//! block-at-a-time fold is one long serial dependency chain
//! ([`gf_mul_pair`]). [`AesGcm::seal_into`] writes `ciphertext || tag`
//! straight into a caller-provided buffer so batched seals never
//! reallocate.

use crate::aes::{Aes128, BLOCK_LEN, KEY_LEN, PARALLEL_BLOCKS};
use crate::ct::ct_eq;
use crate::{CryptoError, Result};

/// Nonce (IV) size: GCM's recommended 96-bit IV.
pub const NONCE_LEN: usize = 12;
/// Authentication-tag size: the full 128 bits.
pub const TAG_LEN: usize = 16;

/// An AES-128-GCM cipher instance with a fixed key.
///
/// `seal` produces `ciphertext || tag`; `open` verifies and strips the tag.
///
/// # Nonce discipline
///
/// A (key, nonce) pair must never be reused for different plaintexts.
/// Callers in this workspace either use random nonces from a CSPRNG or
/// strictly increasing counters per session key.
///
/// # Example
///
/// ```
/// use mig_crypto::gcm::AesGcm;
///
/// # fn main() -> Result<(), mig_crypto::CryptoError> {
/// let aead = AesGcm::new([0x42; 16]);
/// let ct = aead.seal(&[1; 12], b"header", b"payload");
/// assert_eq!(aead.open(&[1; 12], b"header", &ct)?, b"payload");
/// assert!(aead.open(&[1; 12], b"tampered", &ct).is_err());
/// # Ok(())
/// # }
/// ```
#[derive(Clone)]
pub struct AesGcm {
    cipher: Aes128,
    /// GHASH key H = E(K, 0^128), as a big-endian u128.
    h: u128,
    /// Shoup 8-bit multiplication table: `htable[b]` = (8-bit
    /// polynomial `b`) · H, so a GHASH block costs 16 table lookups.
    /// Boxed: 4 KiB inline would bloat every struct that embeds a
    /// channel (`MeSession` already boxes for the same reason).
    htable: Box<[u128; 256]>,
    /// The same table for H² = H·H, used by the two-blocks-at-a-time
    /// GHASH fold ([`gf_mul_pair`]). Key-derived and zeroized on drop,
    /// like `htable`.
    htable2: Box<[u128; 256]>,
}

impl std::fmt::Debug for AesGcm {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("AesGcm").finish_non_exhaustive()
    }
}

impl Drop for AesGcm {
    fn drop(&mut self) {
        // H = E(K, 0) lets an attacker forge tags; `cipher` scrubs itself.
        // Both multiplication tables are H-derived and equally sensitive.
        crate::zeroize::zeroize_u128(&mut self.h);
        for entry in self.htable.iter_mut().chain(self.htable2.iter_mut()) {
            crate::zeroize::zeroize_u128(entry);
        }
    }
}

impl AesGcm {
    /// Creates a GCM instance for the given 128-bit key.
    #[must_use]
    pub fn new(key: [u8; KEY_LEN]) -> Self {
        let cipher = Aes128::new(&key);
        let h_block = cipher.encrypt(&[0u8; BLOCK_LEN]);
        let h = u128::from_be_bytes(h_block);
        let htable = build_htable(h);
        let mut h2 = gf_mul_8bit(h, &htable);
        let htable2 = build_htable(h2);
        crate::zeroize::zeroize_u128(&mut h2);
        AesGcm {
            cipher,
            h,
            htable,
            htable2,
        }
    }

    /// Encrypts `plaintext` bound to `aad`, returning `ciphertext || tag`.
    #[must_use]
    pub fn seal(&self, nonce: &[u8; NONCE_LEN], aad: &[u8], plaintext: &[u8]) -> Vec<u8> {
        let mut out = Vec::with_capacity(plaintext.len() + TAG_LEN);
        self.seal_into(nonce, aad, plaintext, &mut out);
        out
    }

    /// Encrypts `plaintext` bound to `aad`, appending `ciphertext || tag`
    /// to `out` — the allocation-free entry point for batched seals.
    ///
    /// Reserves exactly the bytes it appends, so a caller that pre-sizes
    /// `out` (or reuses one buffer across a batch) never reallocates or
    /// copies the ciphertext a second time.
    pub fn seal_into(
        &self,
        nonce: &[u8; NONCE_LEN],
        aad: &[u8],
        plaintext: &[u8],
        out: &mut Vec<u8>,
    ) {
        let j0 = self.j0(nonce);
        out.reserve(plaintext.len() + TAG_LEN);
        let ct_start = out.len();
        out.extend_from_slice(plaintext);
        self.ctr(inc32(j0), &mut out[ct_start..]);
        let tag = self.tag(j0, aad, &out[ct_start..]);
        out.extend_from_slice(&tag);
    }

    /// Decrypts `sealed` (= `ciphertext || tag`) bound to `aad`.
    ///
    /// # Errors
    ///
    /// Returns [`CryptoError::InvalidLength`] if `sealed` is shorter than a
    /// tag, and [`CryptoError::AuthenticationFailed`] if the tag does not
    /// verify (wrong key, nonce, AAD, or tampered ciphertext).
    pub fn open(&self, nonce: &[u8; NONCE_LEN], aad: &[u8], sealed: &[u8]) -> Result<Vec<u8>> {
        if sealed.len() < TAG_LEN {
            return Err(CryptoError::InvalidLength);
        }
        let (ciphertext, tag) = sealed.split_at(sealed.len() - TAG_LEN);
        let j0 = self.j0(nonce);
        let expected = self.tag(j0, aad, ciphertext);
        if !ct_eq(&expected, tag) {
            return Err(CryptoError::AuthenticationFailed);
        }
        let mut out = ciphertext.to_vec();
        self.ctr(inc32(j0), &mut out);
        Ok(out)
    }

    /// Pre-counter block for a 96-bit IV: `IV || 0^31 || 1`.
    fn j0(&self, nonce: &[u8; NONCE_LEN]) -> [u8; BLOCK_LEN] {
        let mut j0 = [0u8; BLOCK_LEN];
        j0[..NONCE_LEN].copy_from_slice(nonce);
        j0[BLOCK_LEN - 1] = 1;
        j0
    }

    /// CTR-mode keystream XOR starting from counter block `icb`,
    /// `PARALLEL_BLOCKS` keystream blocks per bitsliced kernel call.
    fn ctr(&self, icb: [u8; BLOCK_LEN], data: &mut [u8]) {
        let mut ctr = u32::from_be_bytes(icb[12..16].try_into().expect("4 bytes"));
        let mut ks = [[0u8; BLOCK_LEN]; PARALLEL_BLOCKS];
        for chunk in data.chunks_mut(BLOCK_LEN * PARALLEL_BLOCKS) {
            for (j, block) in ks.iter_mut().enumerate() {
                block[..12].copy_from_slice(&icb[..12]);
                block[12..].copy_from_slice(&ctr.wrapping_add(j as u32).to_be_bytes());
            }
            self.cipher.encrypt_blocks(&mut ks);
            for (sub, kblock) in chunk.chunks_mut(BLOCK_LEN).zip(ks.iter()) {
                for (d, k) in sub.iter_mut().zip(kblock.iter()) {
                    *d ^= k;
                }
            }
            ctr = ctr.wrapping_add(PARALLEL_BLOCKS as u32);
        }
        // Unconsumed keystream from a ragged tail must not linger.
        for block in &mut ks {
            crate::zeroize::zeroize_bytes(block);
        }
    }

    /// GHASH over `aad` and `ciphertext`, then encrypted with `E(K, J0)`.
    fn tag(&self, j0: [u8; BLOCK_LEN], aad: &[u8], ciphertext: &[u8]) -> [u8; TAG_LEN] {
        let mut y = 0u128;
        y = self.ghash_blocks(y, aad);
        y = self.ghash_blocks(y, ciphertext);
        let mut len_block = [0u8; BLOCK_LEN];
        len_block[..8].copy_from_slice(&((aad.len() as u64) * 8).to_be_bytes());
        len_block[8..].copy_from_slice(&((ciphertext.len() as u64) * 8).to_be_bytes());
        y = gf_mul_8bit(y ^ u128::from_be_bytes(len_block), &self.htable);

        let ekj0 = self.cipher.encrypt(&j0);
        let mut tag = y.to_be_bytes();
        for (t, k) in tag.iter_mut().zip(ekj0.iter()) {
            *t ^= k;
        }
        tag
    }

    /// Absorbs `data` (zero-padded to full blocks) into the GHASH state,
    /// two blocks per fold: `((y ⊕ b₀)·H ⊕ b₁)·H = (y ⊕ b₀)·H² ⊕ b₁·H`,
    /// so each pair costs one latency-overlapped [`gf_mul_pair`] instead
    /// of two serial multiplies.
    fn ghash_blocks(&self, mut y: u128, data: &[u8]) -> u128 {
        let mut pairs = data.chunks_exact(2 * BLOCK_LEN);
        for pair in &mut pairs {
            let b0 = u128::from_be_bytes(pair[..BLOCK_LEN].try_into().expect("exact block"));
            let b1 = u128::from_be_bytes(pair[BLOCK_LEN..].try_into().expect("exact block"));
            y = gf_mul_pair(y ^ b0, b1, &self.htable2, &self.htable);
        }
        let mut blocks = pairs.remainder().chunks_exact(BLOCK_LEN);
        for chunk in &mut blocks {
            let block = u128::from_be_bytes(chunk.try_into().expect("exact block"));
            y = gf_mul_8bit(y ^ block, &self.htable);
        }
        let tail = blocks.remainder();
        if !tail.is_empty() {
            let mut block = [0u8; BLOCK_LEN];
            block[..tail.len()].copy_from_slice(tail);
            y = gf_mul_8bit(y ^ u128::from_be_bytes(block), &self.htable);
        }
        y
    }
}

/// Multiplies the reflected GCM element `v` by the field element `x`
/// (one right shift with conditional reduction).
fn mul_x(v: u128) -> u128 {
    const R: u128 = 0xe1 << 120;
    (v >> 1) ^ if v & 1 == 1 { R } else { 0 }
}

/// Builds the Shoup 8-bit table for multiplication by `h`: `t[b]` is
/// the product of the 8-bit polynomial `b` and `h`, where bit 7 of `b`
/// is the group's lowest-degree coefficient (GCM's reflected order).
/// 4 KiB per key; exposed (with [`gf_mul_8bit`]) for the
/// `crypto_kernels` microbench.
#[must_use]
pub fn build_htable(h: u128) -> Box<[u128; 256]> {
    let mut t = Box::new([0u128; 256]);
    let mut v = h;
    for bit in [0x80usize, 0x40, 0x20, 0x10, 8, 4, 2, 1] {
        t[bit] = v;
        v = mul_x(v);
    }
    // Composite entries combine the power-of-two entries; powers of two
    // reduce to themselves (the other operands index slot 0 = 0).
    for n in 0..256usize {
        t[n] = t[n & 0x80]
            ^ t[n & 0x40]
            ^ t[n & 0x20]
            ^ t[n & 0x10]
            ^ t[n & 8]
            ^ t[n & 4]
            ^ t[n & 2]
            ^ t[n & 1];
    }
    t
}

/// Reduction constants for shifting a reflected element right by eight
/// bits: `rem[b]` folds the eight shifted-out low bits `b` back in.
/// Because the reduction polynomial `0xe1 << 120` has no bits below
/// position 120, the eight single-bit steps never cascade, so the
/// combined constant is a plain XOR of shifted copies.
fn rem_8bit() -> [u128; 256] {
    const R: u128 = 0xe1 << 120;
    let mut t = [0u128; 256];
    for (n, entry) in t.iter_mut().enumerate() {
        let mut v = 0u128;
        for bit in 0..8 {
            if (n >> bit) & 1 == 1 {
                // The bit shifted out on step `bit` is reduced and then
                // shifted right by the remaining `7 - bit` steps.
                v ^= R >> (7 - bit);
            }
        }
        *entry = v;
    }
    t
}

/// The shared reduction table: depends only on the GCM polynomial, not
/// the key, so one copy serves all instances.
fn rem_table() -> &'static [u128; 256] {
    static REM: std::sync::OnceLock<[u128; 256]> = std::sync::OnceLock::new();
    REM.get_or_init(rem_8bit)
}

/// Multiplies the reflected element `x` by the table's key `H`,
/// 8 bits at a time (Shoup's method): 16 key-table lookups plus 15
/// reduction lookups per block — half the lookups of the 4-bit method.
#[must_use]
pub fn gf_mul_8bit(x: u128, htable: &[u128; 256]) -> u128 {
    let rem = rem_table();
    let mut z = 0u128;
    // Byte m holds the degree-(120 - 8m)..(127 - 8m) coefficient
    // group; Horner over groups runs from the lowest byte (highest
    // x-power) to the highest.
    for m in 0..16 {
        if m != 0 {
            z = (z >> 8) ^ rem[(z & 0xFF) as usize];
        }
        z ^= htable[((x >> (8 * m)) & 0xFF) as usize];
    }
    z
}

/// Computes `a·H² ⊕ b·H` given the Shoup tables for `H²` and `H` — one
/// GHASH fold over two blocks. The two Shoup walks are independent, so
/// interleaving them in one loop lets each step's table loads overlap
/// with the other walk's, roughly halving the per-block latency of the
/// serial one-multiply-per-block fold. Exposed (with [`gf_mul_8bit`]
/// and [`build_htable`]) for the `crypto_kernels` microbench.
#[must_use]
pub fn gf_mul_pair(a: u128, b: u128, htable2: &[u128; 256], htable: &[u128; 256]) -> u128 {
    let rem = rem_table();
    let mut za = 0u128;
    let mut zb = 0u128;
    for m in 0..16 {
        if m != 0 {
            za = (za >> 8) ^ rem[(za & 0xFF) as usize];
            zb = (zb >> 8) ^ rem[(zb & 0xFF) as usize];
        }
        za ^= htable2[((a >> (8 * m)) & 0xFF) as usize];
        zb ^= htable[((b >> (8 * m)) & 0xFF) as usize];
    }
    za ^ zb
}

/// Increments the last 32 bits of a counter block (mod 2^32).
fn inc32(mut block: [u8; BLOCK_LEN]) -> [u8; BLOCK_LEN] {
    let ctr = u32::from_be_bytes(block[12..16].try_into().expect("4 bytes"));
    block[12..16].copy_from_slice(&ctr.wrapping_add(1).to_be_bytes());
    block
}

/// The pre-kernel GHASH implementations, retained as independent oracles
/// for tests and the `crypto_kernels` microbench (`reference` feature).
#[cfg(any(test, feature = "reference"))]
pub mod reference {
    use super::mul_x;

    /// Builds the Shoup 4-bit table (the previous production path):
    /// `t[n]` = (4-bit polynomial `n`) · `h`, bit 3 of `n` being the
    /// group's lowest-degree coefficient.
    #[must_use]
    pub fn build_htable_4bit(h: u128) -> [u128; 16] {
        let mut t = [0u128; 16];
        let mut v = h;
        for bit in [8usize, 4, 2, 1] {
            t[bit] = v;
            v = mul_x(v);
        }
        for n in 0..16usize {
            t[n] = t[n & 8] ^ t[n & 4] ^ t[n & 2] ^ t[n & 1];
        }
        t
    }

    /// Multiplies the reflected element `x` by the table's key, 4 bits
    /// at a time: 32 table lookups per block.
    #[must_use]
    pub fn gf_mul_4bit(x: u128, htable: &[u128; 16]) -> u128 {
        static REM: std::sync::OnceLock<[u128; 16]> = std::sync::OnceLock::new();
        let rem = REM.get_or_init(rem_4bit);
        let mut z = 0u128;
        for m in 0..32 {
            if m != 0 {
                z = (z >> 4) ^ rem[(z & 0xF) as usize];
            }
            z ^= htable[((x >> (4 * m)) & 0xF) as usize];
        }
        z
    }

    fn rem_4bit() -> [u128; 16] {
        const R: u128 = 0xe1 << 120;
        let mut t = [0u128; 16];
        for (n, entry) in t.iter_mut().enumerate() {
            let mut v = 0u128;
            for bit in 0..4 {
                if (n >> bit) & 1 == 1 {
                    v ^= R >> (3 - bit);
                }
            }
            *entry = v;
        }
        t
    }

    /// Multiplication in GF(2^128) with the GCM polynomial, bit-serial.
    ///
    /// Operands use GCM's reflected bit order: bit 0 of the block is the
    /// u128 MSB, and the reduction polynomial appears as `0xe1 << 120`.
    /// The ground-truth oracle both table methods are tested against.
    #[must_use]
    pub fn gf_mul_bit_serial(x: u128, y: u128) -> u128 {
        const R: u128 = 0xe1 << 120;
        let mut z = 0u128;
        let mut v = y;
        for i in 0..128 {
            if (x >> (127 - i)) & 1 == 1 {
                z ^= v;
            }
            let lsb = v & 1;
            v >>= 1;
            if lsb == 1 {
                v ^= R;
            }
        }
        z
    }
}

#[cfg(test)]
mod tests {
    use super::reference::{build_htable_4bit, gf_mul_4bit, gf_mul_bit_serial};
    use super::*;
    use crate::{hex_decode, hex_encode};
    use proptest::prelude::*;

    fn run_case(key: &str, iv: &str, pt: &str, aad: &str, expect_ct: &str, expect_tag: &str) {
        let key: [u8; 16] = hex_decode(key).try_into().unwrap();
        let iv: [u8; 12] = hex_decode(iv).try_into().unwrap();
        let pt = hex_decode(pt);
        let aad = hex_decode(aad);
        let aead = AesGcm::new(key);
        let sealed = aead.seal(&iv, &aad, &pt);
        let (ct, tag) = sealed.split_at(sealed.len() - TAG_LEN);
        assert_eq!(hex_encode(ct), expect_ct);
        assert_eq!(hex_encode(tag), expect_tag);
        assert_eq!(aead.open(&iv, &aad, &sealed).unwrap(), pt);
    }

    #[test]
    fn gcm_spec_case1_empty() {
        run_case(
            "00000000000000000000000000000000",
            "000000000000000000000000",
            "",
            "",
            "",
            "58e2fccefa7e3061367f1d57a4e7455a",
        );
    }

    #[test]
    fn gcm_spec_case2_single_zero_block() {
        run_case(
            "00000000000000000000000000000000",
            "000000000000000000000000",
            "00000000000000000000000000000000",
            "",
            "0388dace60b6a392f328c2b971b2fe78",
            "ab6e47d42cec13bdf53a67b21257bddf",
        );
    }

    #[test]
    fn gcm_spec_case3_four_blocks() {
        run_case(
            "feffe9928665731c6d6a8f9467308308",
            "cafebabefacedbaddecaf888",
            "d9313225f88406e5a55909c5aff5269a86a7a9531534f7da2e4c303d8a318a72\
1c3c0c95956809532fcf0e2449a6b525b16aedf5aa0de657ba637b391aafd255",
            "",
            "42831ec2217774244b7221b784d0d49ce3aa212f2c02a4e035c17e2329aca12e\
21d514b25466931c7d8f6a5aac84aa051ba30b396a0aac973d58e091473f5985",
            "4d5c2af327cd64a62cf35abd2ba6fab4",
        );
    }

    #[test]
    fn gcm_spec_case4_with_aad_and_partial_block() {
        run_case(
            "feffe9928665731c6d6a8f9467308308",
            "cafebabefacedbaddecaf888",
            "d9313225f88406e5a55909c5aff5269a86a7a9531534f7da2e4c303d8a318a72\
1c3c0c95956809532fcf0e2449a6b525b16aedf5aa0de657ba637b39",
            "feedfacedeadbeeffeedfacedeadbeefabaddad2",
            "42831ec2217774244b7221b784d0d49ce3aa212f2c02a4e035c17e2329aca12e\
21d514b25466931c7d8f6a5aac84aa051ba30b396a0aac973d58e091",
            "5bc94fbc3221a5db94fae95ae7121a47",
        );
    }

    #[test]
    fn table_multiplies_match_bit_serial() {
        // Pseudo-random operands from a tiny LCG (no rand dependency).
        let mut s = 0x243F_6A88_85A3_08D3u128;
        let mut next = || {
            s = s
                .wrapping_mul(0x5851_F42D_4C95_7F2D)
                .wrapping_add(0x1405_7B7E_F767_814F);
            s ^ (s >> 64)
        };
        for _ in 0..200 {
            let h = next();
            let x = next();
            let expected = gf_mul_bit_serial(x, h);
            assert_eq!(
                expected,
                gf_mul_8bit(x, &build_htable(h)),
                "8-bit h={h:#034x} x={x:#034x}"
            );
            assert_eq!(
                expected,
                gf_mul_4bit(x, &build_htable_4bit(h)),
                "4-bit h={h:#034x} x={x:#034x}"
            );
        }
        // Edge operands.
        let h = next();
        let table = build_htable(h);
        for x in [0u128, 1, 1 << 127, u128::MAX] {
            assert_eq!(gf_mul_bit_serial(x, h), gf_mul_8bit(x, &table));
        }
        assert_eq!(gf_mul_8bit(7, &build_htable(0)), 0);
    }

    #[test]
    fn seal_into_appends_without_disturbing_prefix() {
        let aead = AesGcm::new([0x21; 16]);
        let nonce = [3u8; 12];
        let mut out = b"prefix".to_vec();
        aead.seal_into(&nonce, b"aad", b"hello world", &mut out);
        assert_eq!(&out[..6], b"prefix");
        assert_eq!(out[6..], aead.seal(&nonce, b"aad", b"hello world"));
    }

    #[test]
    fn open_rejects_truncated_input() {
        let aead = AesGcm::new([0; 16]);
        assert_eq!(
            aead.open(&[0; 12], b"", &[0u8; 15]).unwrap_err(),
            CryptoError::InvalidLength
        );
    }

    #[test]
    fn open_rejects_every_single_bit_flip() {
        let aead = AesGcm::new([7; 16]);
        let nonce = [9; 12];
        let sealed = aead.seal(&nonce, b"aad", b"some plaintext");
        for i in 0..sealed.len() {
            let mut bad = sealed.clone();
            bad[i] ^= 1;
            assert!(aead.open(&nonce, b"aad", &bad).is_err(), "byte {i}");
        }
    }

    #[test]
    fn open_rejects_wrong_nonce_aad_key() {
        let aead = AesGcm::new([7; 16]);
        let sealed = aead.seal(&[1; 12], b"aad", b"pt");
        assert!(aead.open(&[2; 12], b"aad", &sealed).is_err());
        assert!(aead.open(&[1; 12], b"aax", &sealed).is_err());
        assert!(AesGcm::new([8; 16])
            .open(&[1; 12], b"aad", &sealed)
            .is_err());
    }

    #[test]
    fn round_trip_various_lengths() {
        let aead = AesGcm::new([3; 16]);
        for len in [0usize, 1, 15, 16, 17, 31, 32, 33, 63, 64, 65, 100, 1000] {
            let pt: Vec<u8> = (0..len).map(|i| i as u8).collect();
            let nonce = [len as u8; 12];
            let sealed = aead.seal(&nonce, b"", &pt);
            assert_eq!(sealed.len(), len + TAG_LEN);
            assert_eq!(aead.open(&nonce, b"", &sealed).unwrap(), pt, "len {len}");
        }
    }

    #[test]
    fn empty_plaintext_still_authenticates_aad() {
        let aead = AesGcm::new([5; 16]);
        let sealed = aead.seal(&[0; 12], b"important aad", b"");
        assert_eq!(sealed.len(), TAG_LEN);
        assert!(aead.open(&[0; 12], b"important aad", &sealed).is_ok());
        assert!(aead.open(&[0; 12], b"other aad", &sealed).is_err());
    }

    /// Reconstructs the pre-kernel seal (scalar AES CTR one block at a
    /// time + 4-bit GHASH) entirely from oracle parts.
    fn seal_old(key: [u8; 16], nonce: &[u8; 12], aad: &[u8], plaintext: &[u8]) -> Vec<u8> {
        use crate::aes::reference::ScalarAes128;
        let cipher = ScalarAes128::new(&key);
        let h = u128::from_be_bytes(cipher.encrypt(&[0u8; BLOCK_LEN]));
        let htable = build_htable_4bit(h);

        let mut j0 = [0u8; BLOCK_LEN];
        j0[..NONCE_LEN].copy_from_slice(nonce);
        j0[BLOCK_LEN - 1] = 1;

        let mut out = plaintext.to_vec();
        let mut counter = inc32(j0);
        for chunk in out.chunks_mut(BLOCK_LEN) {
            let ks = cipher.encrypt(&counter);
            for (d, k) in chunk.iter_mut().zip(ks.iter()) {
                *d ^= k;
            }
            counter = inc32(counter);
        }

        let mut y = 0u128;
        for data in [aad, &out[..]] {
            for chunk in data.chunks(BLOCK_LEN) {
                let mut block = [0u8; BLOCK_LEN];
                block[..chunk.len()].copy_from_slice(chunk);
                y = gf_mul_4bit(y ^ u128::from_be_bytes(block), &htable);
            }
        }
        let mut len_block = [0u8; BLOCK_LEN];
        len_block[..8].copy_from_slice(&((aad.len() as u64) * 8).to_be_bytes());
        len_block[8..].copy_from_slice(&((out.len() as u64) * 8).to_be_bytes());
        y = gf_mul_4bit(y ^ u128::from_be_bytes(len_block), &htable);

        let ekj0 = cipher.encrypt(&j0);
        let mut tag = y.to_be_bytes();
        for (t, k) in tag.iter_mut().zip(ekj0.iter()) {
            *t ^= k;
        }
        out.extend_from_slice(&tag);
        out
    }

    proptest! {
        #[test]
        fn prop_8bit_ghash_matches_4bit_and_bit_serial(
            hb in any::<[u8; 16]>(),
            xb in any::<[u8; 16]>(),
        ) {
            let h = u128::from_be_bytes(hb);
            let x = u128::from_be_bytes(xb);
            let expected = gf_mul_bit_serial(x, h);
            prop_assert_eq!(expected, gf_mul_8bit(x, &build_htable(h)));
            prop_assert_eq!(expected, gf_mul_4bit(x, &build_htable_4bit(h)));
        }

        #[test]
        fn prop_pair_fold_matches_sequential_fold(
            hb in any::<[u8; 16]>(),
            yb in any::<[u8; 16]>(),
            b0b in any::<[u8; 16]>(),
            b1b in any::<[u8; 16]>(),
        ) {
            // The two-block fold (y ⊕ b₀)·H² ⊕ b₁·H must equal two
            // sequential one-block folds against the bit-serial oracle.
            let h = u128::from_be_bytes(hb);
            let y = u128::from_be_bytes(yb);
            let b0 = u128::from_be_bytes(b0b);
            let b1 = u128::from_be_bytes(b1b);
            let htable = build_htable(h);
            let htable2 = build_htable(gf_mul_bit_serial(h, h));
            let sequential = gf_mul_bit_serial(gf_mul_bit_serial(y ^ b0, h) ^ b1, h);
            prop_assert_eq!(gf_mul_pair(y ^ b0, b1, &htable2, &htable), sequential);
        }

        #[test]
        fn prop_kernel_seal_is_byte_identical_to_old_seal(
            key in any::<[u8; 16]>(),
            nonce in any::<[u8; 12]>(),
            aad in proptest::collection::vec(any::<u8>(), 0..64),
            pt in proptest::collection::vec(any::<u8>(), 0..512),
        ) {
            // Wire-format pin: the multi-block kernels must produce the
            // exact bytes of the byte-serial implementation they replaced.
            let aead = AesGcm::new(key);
            prop_assert_eq!(aead.seal(&nonce, &aad, &pt), seal_old(key, &nonce, &aad, &pt));
        }
    }
}
