//! Shared Curve25519 arithmetic: the field GF(2^255 - 19), the edwards25519
//! point group, and scalars modulo the group order L.
//!
//! Crate-internal; [`crate::x25519`] and [`crate::ed25519`] build the public
//! APIs on top. Field elements use five 51-bit limbs with `u128`
//! intermediates. Exponentiations (inversion, square roots) use a generic
//! square-and-multiply, trading a few microseconds for transcription safety;
//! the curve constants `d` and `sqrt(-1)` are *computed* from first
//! principles at first use rather than hard-coded.

use std::sync::OnceLock;

const MASK51: u64 = (1 << 51) - 1;

/// An element of GF(2^255 - 19) in five 51-bit limbs (weakly reduced:
/// every limb is below 2^52).
#[derive(Clone, Copy, Debug)]
pub(crate) struct Fe(pub(crate) [u64; 5]);

impl Fe {
    pub(crate) const ZERO: Fe = Fe([0; 5]);
    pub(crate) const ONE: Fe = Fe([1, 0, 0, 0, 0]);

    pub(crate) fn from_u64(v: u64) -> Fe {
        // Split a small integer across the first two limbs.
        Fe([v & MASK51, v >> 51, 0, 0, 0])
    }

    /// Parses 32 little-endian bytes, ignoring the top bit (bit 255),
    /// as RFC 7748 / RFC 8032 specify.
    pub(crate) fn from_bytes(bytes: &[u8; 32]) -> Fe {
        let w = |i: usize| u64::from_le_bytes(bytes[i * 8..i * 8 + 8].try_into().expect("8 bytes"));
        let (w0, w1, w2, w3) = (w(0), w(1), w(2), w(3));
        Fe([
            w0 & MASK51,
            ((w0 >> 51) | (w1 << 13)) & MASK51,
            ((w1 >> 38) | (w2 << 26)) & MASK51,
            ((w2 >> 25) | (w3 << 39)) & MASK51,
            (w3 >> 12) & MASK51,
        ])
    }

    /// Serializes to the unique canonical 32-byte little-endian encoding.
    pub(crate) fn to_bytes(self) -> [u8; 32] {
        // Fully carry so that limbs are below 2^51.
        let mut l = reduce_wide([
            self.0[0] as u128,
            self.0[1] as u128,
            self.0[2] as u128,
            self.0[3] as u128,
            self.0[4] as u128,
        ])
        .0;
        // A second pass leaves limb 1 strictly below 2^51 as well.
        let c = l[1] >> 51;
        l[1] &= MASK51;
        l[2] += c;
        let c = l[2] >> 51;
        l[2] &= MASK51;
        l[3] += c;
        let c = l[3] >> 51;
        l[3] &= MASK51;
        l[4] += c;
        let c = l[4] >> 51;
        l[4] &= MASK51;
        l[0] += 19 * c;
        let c = l[0] >> 51;
        l[0] &= MASK51;
        l[1] += c;

        // Canonicalize: subtract p exactly when the value is >= p, detected
        // by whether adding 19 carries all the way out of bit 255.
        let mut q = (l[0] + 19) >> 51;
        q = (l[1] + q) >> 51;
        q = (l[2] + q) >> 51;
        q = (l[3] + q) >> 51;
        q = (l[4] + q) >> 51;
        l[0] += 19 * q;
        let c = l[0] >> 51;
        l[0] &= MASK51;
        l[1] += c;
        let c = l[1] >> 51;
        l[1] &= MASK51;
        l[2] += c;
        let c = l[2] >> 51;
        l[2] &= MASK51;
        l[3] += c;
        let c = l[3] >> 51;
        l[3] &= MASK51;
        l[4] += c;
        l[4] &= MASK51; // drop the 2^255 carry: value is now reduced mod p

        let w0 = l[0] | (l[1] << 51);
        let w1 = (l[1] >> 13) | (l[2] << 38);
        let w2 = (l[2] >> 26) | (l[3] << 25);
        let w3 = (l[3] >> 39) | (l[4] << 12);
        let mut out = [0u8; 32];
        out[0..8].copy_from_slice(&w0.to_le_bytes());
        out[8..16].copy_from_slice(&w1.to_le_bytes());
        out[16..24].copy_from_slice(&w2.to_le_bytes());
        out[24..32].copy_from_slice(&w3.to_le_bytes());
        out
    }

    pub(crate) fn add(self, rhs: Fe) -> Fe {
        reduce_wide([
            self.0[0] as u128 + rhs.0[0] as u128,
            self.0[1] as u128 + rhs.0[1] as u128,
            self.0[2] as u128 + rhs.0[2] as u128,
            self.0[3] as u128 + rhs.0[3] as u128,
            self.0[4] as u128 + rhs.0[4] as u128,
        ])
    }

    pub(crate) fn sub(self, rhs: Fe) -> Fe {
        // Add 4p before subtracting so that limbs never underflow
        // (inputs are weakly reduced: every limb is below 2^52).
        const FOUR_P: [u64; 5] = [
            4 * ((1 << 51) - 19),
            4 * MASK51,
            4 * MASK51,
            4 * MASK51,
            4 * MASK51,
        ];
        reduce_wide([
            (self.0[0] + FOUR_P[0] - rhs.0[0]) as u128,
            (self.0[1] + FOUR_P[1] - rhs.0[1]) as u128,
            (self.0[2] + FOUR_P[2] - rhs.0[2]) as u128,
            (self.0[3] + FOUR_P[3] - rhs.0[3]) as u128,
            (self.0[4] + FOUR_P[4] - rhs.0[4]) as u128,
        ])
    }

    pub(crate) fn neg(self) -> Fe {
        Fe::ZERO.sub(self)
    }

    pub(crate) fn mul(self, rhs: Fe) -> Fe {
        let a = &self.0;
        let b = &rhs.0;
        let m = |x: u64, y: u64| x as u128 * y as u128;
        let c0 =
            m(a[0], b[0]) + 19 * (m(a[1], b[4]) + m(a[2], b[3]) + m(a[3], b[2]) + m(a[4], b[1]));
        let c1 =
            m(a[0], b[1]) + m(a[1], b[0]) + 19 * (m(a[2], b[4]) + m(a[3], b[3]) + m(a[4], b[2]));
        let c2 =
            m(a[0], b[2]) + m(a[1], b[1]) + m(a[2], b[0]) + 19 * (m(a[3], b[4]) + m(a[4], b[3]));
        let c3 = m(a[0], b[3]) + m(a[1], b[2]) + m(a[2], b[1]) + m(a[3], b[0]) + 19 * m(a[4], b[4]);
        let c4 = m(a[0], b[4]) + m(a[1], b[3]) + m(a[2], b[2]) + m(a[3], b[1]) + m(a[4], b[0]);
        reduce_wide([c0, c1, c2, c3, c4])
    }

    pub(crate) fn square(self) -> Fe {
        self.mul(self)
    }

    /// Generic square-and-multiply exponentiation with a little-endian
    /// 32-byte exponent. Variable-time; acceptable for this simulator
    /// (see the crate-level security note).
    pub(crate) fn pow(self, exp_le: &[u8; 32]) -> Fe {
        let mut acc = Fe::ONE;
        for i in (0..256).rev() {
            acc = acc.square();
            if (exp_le[i / 8] >> (i % 8)) & 1 == 1 {
                acc = acc.mul(self);
            }
        }
        acc
    }

    /// Multiplicative inverse via Fermat: self^(p-2). Inverse of zero is zero.
    pub(crate) fn invert(self) -> Fe {
        // p - 2 = 2^255 - 21
        let mut exp = [0xffu8; 32];
        exp[0] = 0xeb;
        exp[31] = 0x7f;
        self.pow(&exp)
    }

    /// self^((p-5)/8), the core of the square-root computation.
    fn pow_p58(self) -> Fe {
        // (p-5)/8 = 2^252 - 3
        let mut exp = [0xffu8; 32];
        exp[0] = 0xfd;
        exp[31] = 0x0f;
        self.pow(&exp)
    }

    pub(crate) fn is_zero(self) -> bool {
        self.to_bytes() == [0u8; 32]
    }

    /// "Negative" per RFC 8032: the canonical encoding is odd.
    pub(crate) fn is_negative(self) -> bool {
        self.to_bytes()[0] & 1 == 1
    }

    pub(crate) fn ct_eq(self, rhs: Fe) -> bool {
        crate::ct::ct_eq(&self.to_bytes(), &rhs.to_bytes())
    }

    /// Branch-free conditional swap, used by the Montgomery ladder.
    pub(crate) fn cswap(swap: bool, a: &mut Fe, b: &mut Fe) {
        let mask = (swap as u64).wrapping_neg();
        for i in 0..5 {
            let t = mask & (a.0[i] ^ b.0[i]);
            a.0[i] ^= t;
            b.0[i] ^= t;
        }
    }
}

/// Carries a wide (post-multiplication) limb vector back into weakly
/// reduced form: every output limb below 2^52.
fn reduce_wide(mut t: [u128; 5]) -> Fe {
    const M: u128 = MASK51 as u128;
    t[1] += t[0] >> 51;
    t[0] &= M;
    t[2] += t[1] >> 51;
    t[1] &= M;
    t[3] += t[2] >> 51;
    t[2] &= M;
    t[4] += t[3] >> 51;
    t[3] &= M;
    t[0] += 19 * (t[4] >> 51);
    t[4] &= M;
    t[1] += t[0] >> 51;
    t[0] &= M;
    Fe([
        t[0] as u64,
        t[1] as u64,
        t[2] as u64,
        t[3] as u64,
        t[4] as u64,
    ])
}

/// Computes `sqrt(u/v)` if it exists: returns `r` with `r^2 * v = u`.
///
/// Returns `None` when `u/v` is not a square.
pub(crate) fn sqrt_ratio(u: Fe, v: Fe) -> Option<Fe> {
    let v3 = v.square().mul(v);
    let v7 = v3.square().mul(v);
    let mut r = u.mul(v3).mul(u.mul(v7).pow_p58());
    let check = v.mul(r.square());
    if check.ct_eq(u) {
        Some(r)
    } else if check.ct_eq(u.neg()) {
        r = r.mul(consts().sqrt_m1);
        Some(r)
    } else {
        None
    }
}

/// Lazily computed curve constants.
pub(crate) struct Consts {
    /// Edwards curve constant d = -121665/121666.
    pub(crate) d: Fe,
    /// 2d, used by the extended-coordinate addition formulas.
    pub(crate) d2: Fe,
    /// A square root of -1 (mod p).
    pub(crate) sqrt_m1: Fe,
    /// The edwards25519 base point B (y = 4/5, x positive... even).
    pub(crate) base: EdwardsPoint,
}

pub(crate) fn consts() -> &'static Consts {
    static CONSTS: OnceLock<Consts> = OnceLock::new();
    CONSTS.get_or_init(|| {
        let d = Fe::from_u64(121665)
            .neg()
            .mul(Fe::from_u64(121666).invert());
        let d2 = d.add(d);
        // sqrt(-1) = 2^((p-1)/4); (p-1)/4 = 2^253 - 5.
        let mut exp = [0xffu8; 32];
        exp[0] = 0xfb;
        exp[31] = 0x1f;
        let sqrt_m1 = Fe::from_u64(2).pow(&exp);
        debug_assert!(sqrt_m1.square().ct_eq(Fe::ONE.neg()));

        // Base point: y = 4/5, with the even (non-"negative") x.
        let y = Fe::from_u64(4).mul(Fe::from_u64(5).invert());
        let mut base_bytes = y.to_bytes();
        base_bytes[31] &= 0x7f; // sign bit 0 selects the even x
        let base = EdwardsPoint::decompress_with(&base_bytes, d, sqrt_m1)
            .expect("base point must decompress");
        Consts {
            d,
            d2,
            sqrt_m1,
            base,
        }
    })
}

/// A point on edwards25519 in extended homogeneous coordinates
/// (X : Y : Z : T) with X*Y = Z*T.
#[derive(Clone, Copy, Debug)]
pub(crate) struct EdwardsPoint {
    pub(crate) x: Fe,
    pub(crate) y: Fe,
    pub(crate) z: Fe,
    pub(crate) t: Fe,
}

impl EdwardsPoint {
    pub(crate) fn identity() -> EdwardsPoint {
        EdwardsPoint {
            x: Fe::ZERO,
            y: Fe::ONE,
            z: Fe::ONE,
            t: Fe::ZERO,
        }
    }

    pub(crate) fn base() -> EdwardsPoint {
        consts().base
    }

    /// Complete point addition (extended coordinates, a = -1).
    pub(crate) fn add(&self, other: &EdwardsPoint) -> EdwardsPoint {
        let a = self.y.sub(self.x).mul(other.y.sub(other.x));
        let b = self.y.add(self.x).mul(other.y.add(other.x));
        let c = self.t.mul(consts().d2).mul(other.t);
        let d = self.z.mul(other.z).add(self.z.mul(other.z));
        let e = b.sub(a);
        let f = d.sub(c);
        let g = d.add(c);
        let h = b.add(a);
        EdwardsPoint {
            x: e.mul(f),
            y: g.mul(h),
            z: f.mul(g),
            t: e.mul(h),
        }
    }

    pub(crate) fn double(&self) -> EdwardsPoint {
        let a = self.x.square();
        let b = self.y.square();
        let c = self.z.square().add(self.z.square());
        let h = a.add(b);
        let e = h.sub(self.x.add(self.y).square());
        let g = a.sub(b);
        let f = c.add(g);
        EdwardsPoint {
            x: e.mul(f),
            y: g.mul(h),
            z: f.mul(g),
            t: e.mul(h),
        }
    }

    pub(crate) fn neg(&self) -> EdwardsPoint {
        EdwardsPoint {
            x: self.x.neg(),
            y: self.y,
            z: self.z,
            t: self.t.neg(),
        }
    }

    /// Scalar multiplication by a 256-bit little-endian scalar,
    /// plain double-and-add (variable-time; see crate security note).
    pub(crate) fn scalar_mul(&self, scalar_le: &[u8; 32]) -> EdwardsPoint {
        let mut acc = EdwardsPoint::identity();
        for i in (0..256).rev() {
            acc = acc.double();
            if (scalar_le[i / 8] >> (i % 8)) & 1 == 1 {
                acc = acc.add(self);
            }
        }
        acc
    }

    /// Compresses to the 32-byte RFC 8032 encoding (y with x-sign bit).
    pub(crate) fn compress(&self) -> [u8; 32] {
        let zinv = self.z.invert();
        let x = self.x.mul(zinv);
        let y = self.y.mul(zinv);
        let mut bytes = y.to_bytes();
        bytes[31] |= (x.is_negative() as u8) << 7;
        bytes
    }

    /// Decompresses an RFC 8032 point encoding.
    pub(crate) fn decompress(bytes: &[u8; 32]) -> Option<EdwardsPoint> {
        let c = consts();
        Self::decompress_with(bytes, c.d, c.sqrt_m1)
    }

    // Split out so that `consts()` can decompress the base point while the
    // constants are still being initialized.
    fn decompress_with(bytes: &[u8; 32], d: Fe, _sqrt_m1: Fe) -> Option<EdwardsPoint> {
        let sign = bytes[31] >> 7 == 1;
        let y = Fe::from_bytes(bytes);
        // Reject non-canonical y encodings to make point decoding injective.
        let mut canonical = y.to_bytes();
        canonical[31] |= (sign as u8) << 7;
        if &canonical != bytes {
            return None;
        }
        let y2 = y.square();
        let u = y2.sub(Fe::ONE);
        let v = d.mul(y2).add(Fe::ONE);
        let mut x = sqrt_ratio(u, v)?;
        if x.is_zero() && sign {
            return None; // "negative zero" is invalid
        }
        if x.is_negative() != sign {
            x = x.neg();
        }
        Some(EdwardsPoint {
            x,
            y,
            z: Fe::ONE,
            t: x.mul(y),
        })
    }

    /// Projective equality: X1*Z2 == X2*Z1 and Y1*Z2 == Y2*Z1.
    pub(crate) fn ct_eq(&self, other: &EdwardsPoint) -> bool {
        let a = self.x.mul(other.z).ct_eq(other.x.mul(self.z));
        let b = self.y.mul(other.z).ct_eq(other.y.mul(self.z));
        a && b
    }
}

// ---------------------------------------------------------------------------
// Scalars modulo the group order L = 2^252 + 27742317777372353535851937790883648493.
// ---------------------------------------------------------------------------

/// L as four little-endian u64 limbs.
const L_LIMBS: [u64; 4] = [
    0x5812631a5cf5d3ed,
    0x14def9dea2f79cd6,
    0x0000000000000000,
    0x1000000000000000,
];

/// A scalar modulo L in canonical little-endian byte form.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub(crate) struct Scalar(pub(crate) [u8; 32]);

impl Scalar {
    #[cfg_attr(not(test), allow(dead_code))]
    pub(crate) const ZERO: Scalar = Scalar([0u8; 32]);

    /// Reduces a 512-bit little-endian value modulo L.
    pub(crate) fn from_bytes_mod_order_wide(input: &[u8; 64]) -> Scalar {
        let mut limbs = [0u64; 8];
        for (i, chunk) in input.chunks_exact(8).enumerate() {
            limbs[i] = u64::from_le_bytes(chunk.try_into().expect("8 bytes"));
        }
        Scalar(limbs_to_bytes(&mod_l_wide(&limbs)))
    }

    /// Reduces a 256-bit little-endian value modulo L.
    pub(crate) fn from_bytes_mod_order(input: &[u8; 32]) -> Scalar {
        let mut wide = [0u8; 64];
        wide[..32].copy_from_slice(input);
        Scalar::from_bytes_mod_order_wide(&wide)
    }

    /// Returns `true` iff `input` is already the canonical encoding of a
    /// scalar (i.e. strictly below L). RFC 8032 requires rejecting
    /// non-canonical `s` values in signatures (malleability).
    pub(crate) fn is_canonical(input: &[u8; 32]) -> bool {
        let mut limbs = [0u64; 4];
        for (i, chunk) in input.chunks_exact(8).enumerate() {
            limbs[i] = u64::from_le_bytes(chunk.try_into().expect("8 bytes"));
        }
        lt(&limbs, &L_LIMBS)
    }

    /// (a * b + c) mod L — the core of Ed25519 signing.
    pub(crate) fn mul_add(a: &Scalar, b: &Scalar, c: &Scalar) -> Scalar {
        let al = bytes_to_limbs(&a.0);
        let bl = bytes_to_limbs(&b.0);
        let cl = bytes_to_limbs(&c.0);

        // Schoolbook 4x4 -> 8 limb multiply.
        let mut prod = [0u64; 8];
        for i in 0..4 {
            let mut carry: u128 = 0;
            for j in 0..4 {
                let v = prod[i + j] as u128 + al[i] as u128 * bl[j] as u128 + carry;
                prod[i + j] = v as u64;
                carry = v >> 64;
            }
            prod[i + 4] = carry as u64;
        }
        // Add c (cannot overflow 512 bits: product < L^2 << 2^512).
        let mut carry: u128 = 0;
        for i in 0..8 {
            let add = if i < 4 { cl[i] as u128 } else { 0 };
            let v = prod[i] as u128 + add + carry;
            prod[i] = v as u64;
            carry = v >> 64;
        }
        Scalar(limbs_to_bytes(&mod_l_wide(&prod)))
    }

    pub(crate) fn as_bytes(&self) -> &[u8; 32] {
        &self.0
    }
}

fn bytes_to_limbs(bytes: &[u8; 32]) -> [u64; 4] {
    let mut limbs = [0u64; 4];
    for (i, chunk) in bytes.chunks_exact(8).enumerate() {
        limbs[i] = u64::from_le_bytes(chunk.try_into().expect("8 bytes"));
    }
    limbs
}

fn limbs_to_bytes(limbs: &[u64; 4]) -> [u8; 32] {
    let mut out = [0u8; 32];
    for (i, l) in limbs.iter().enumerate() {
        out[i * 8..i * 8 + 8].copy_from_slice(&l.to_le_bytes());
    }
    out
}

/// `a < b` over 4-limb little-endian values.
fn lt(a: &[u64; 4], b: &[u64; 4]) -> bool {
    for i in (0..4).rev() {
        if a[i] != b[i] {
            return a[i] < b[i];
        }
    }
    false
}

/// Subtracts L in place (callers guarantee the value is >= L).
fn sub_l(r: &mut [u64; 4]) {
    let mut borrow: i128 = 0;
    for i in 0..4 {
        let v = r[i] as i128 - L_LIMBS[i] as i128 + borrow;
        if v < 0 {
            r[i] = (v + (1i128 << 64)) as u64;
            borrow = -1;
        } else {
            r[i] = v as u64;
            borrow = 0;
        }
    }
    debug_assert_eq!(borrow, 0);
}

/// Reduces a 512-bit value modulo L by binary long division.
///
/// Runs 512 shift/compare/subtract steps; scalars are reduced only a handful
/// of times per signature, so simplicity wins over speed here.
fn mod_l_wide(x: &[u64; 8]) -> [u64; 4] {
    let mut r = [0u64; 4];
    for i in (0..512).rev() {
        // r = (r << 1) | bit_i(x); r stays < 2L < 2^254 so no overflow.
        let mut carry = (x[i / 64] >> (i % 64)) & 1;
        for limb in r.iter_mut() {
            let new_carry = *limb >> 63;
            *limb = (*limb << 1) | carry;
            carry = new_carry;
        }
        debug_assert_eq!(carry, 0);
        if !lt(&r, &L_LIMBS) {
            sub_l(&mut r);
        }
    }
    r
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::hex_encode;

    #[test]
    fn field_one_plus_one_is_two() {
        let two = Fe::ONE.add(Fe::ONE);
        assert!(two.ct_eq(Fe::from_u64(2)));
    }

    #[test]
    fn field_sub_wraps_correctly() {
        // 0 - 1 == p - 1, whose canonical encoding is p-1 = 2^255 - 20.
        let minus_one = Fe::ZERO.sub(Fe::ONE);
        let bytes = minus_one.to_bytes();
        assert_eq!(bytes[0], 0xec); // 2^255 - 20 ends in ...ec
        assert_eq!(bytes[31], 0x7f);
        // And -1 + 1 == 0.
        assert!(minus_one.add(Fe::ONE).is_zero());
    }

    #[test]
    fn field_mul_matches_known_small_values() {
        let a = Fe::from_u64(1234567890123456789);
        let b = Fe::from_u64(987654321);
        let prod = a.mul(b);
        // 1234567890123456789 * 987654321 < 2^120, verify via u128.
        let expected = 1234567890123456789u128 * 987654321u128;
        let mut expect_bytes = [0u8; 32];
        expect_bytes[..16].copy_from_slice(&expected.to_le_bytes());
        assert_eq!(prod.to_bytes(), expect_bytes);
    }

    #[test]
    fn field_invert_round_trips() {
        for v in [1u64, 2, 3, 19, 121665, u64::MAX] {
            let x = Fe::from_u64(v);
            assert!(x.mul(x.invert()).ct_eq(Fe::ONE), "v = {v}");
        }
    }

    #[test]
    fn field_canonical_encoding_reduces_p_to_zero() {
        // p itself must encode as zero.
        let p_limbs = Fe([(1 << 51) - 19, MASK51, MASK51, MASK51, MASK51]);
        assert!(p_limbs.is_zero());
        // p + 1 must encode as one.
        assert!(p_limbs.add(Fe::ONE).ct_eq(Fe::ONE));
    }

    #[test]
    fn field_from_bytes_ignores_high_bit() {
        let mut bytes = [0u8; 32];
        bytes[0] = 5;
        bytes[31] = 0x80;
        assert!(Fe::from_bytes(&bytes).ct_eq(Fe::from_u64(5)));
    }

    #[test]
    fn sqrt_m1_squares_to_minus_one() {
        let c = consts();
        assert!(c.sqrt_m1.square().ct_eq(Fe::ONE.neg()));
    }

    #[test]
    fn d_constant_matches_reference() {
        // RFC 8032: d = 370957059346694393431380835087545651895421138798432190163887855330\
        // 85940283555; its canonical little-endian hex is well known.
        assert_eq!(
            hex_encode(&consts().d.to_bytes()),
            "a3785913ca4deb75abd841414d0a700098e879777940c78c73fe6f2bee6c0352"
        );
    }

    #[test]
    fn base_point_compresses_to_rfc_encoding() {
        let expected = "5866666666666666666666666666666666666666666666666666666666666666";
        assert_eq!(hex_encode(&EdwardsPoint::base().compress()), expected);
    }

    #[test]
    fn base_point_has_order_dividing_l() {
        // [L]B == identity.
        let l_bytes = limbs_to_bytes(&L_LIMBS);
        let lb = EdwardsPoint::base().scalar_mul(&l_bytes);
        assert!(lb.ct_eq(&EdwardsPoint::identity()));
    }

    #[test]
    fn point_add_is_consistent_with_double() {
        let b = EdwardsPoint::base();
        assert!(b.add(&b).ct_eq(&b.double()));
        let b4a = b.double().double();
        let b4b = b.add(&b).add(&b).add(&b);
        assert!(b4a.ct_eq(&b4b));
    }

    #[test]
    fn point_neg_cancels() {
        let b = EdwardsPoint::base();
        assert!(b.add(&b.neg()).ct_eq(&EdwardsPoint::identity()));
    }

    #[test]
    fn compress_decompress_round_trip() {
        let mut p = EdwardsPoint::base();
        for _ in 0..16 {
            let c = p.compress();
            let q = EdwardsPoint::decompress(&c).expect("valid point");
            assert!(p.ct_eq(&q));
            p = p.add(&EdwardsPoint::base());
        }
    }

    #[test]
    fn decompress_rejects_invalid_points() {
        // y = 2 gives a non-square x^2 on edwards25519.
        let mut bytes = [0u8; 32];
        bytes[0] = 2;
        assert!(EdwardsPoint::decompress(&bytes).is_none());
    }

    #[test]
    fn decompress_rejects_non_canonical_y() {
        // Encode p + 1 (non-canonical form of 1).
        let mut bytes = [0u8; 32];
        bytes[0] = 0xee; // p + 1 = 2^255 - 18, little-endian starts 0xee
        for b in bytes.iter_mut().take(31).skip(1) {
            *b = 0xff;
        }
        bytes[31] = 0x7f;
        assert!(EdwardsPoint::decompress(&bytes).is_none());
    }

    #[test]
    fn scalar_mod_l_of_l_is_zero() {
        let l_bytes = limbs_to_bytes(&L_LIMBS);
        assert_eq!(Scalar::from_bytes_mod_order(&l_bytes), Scalar::ZERO);
        assert!(!Scalar::is_canonical(&l_bytes));
        let mut l_minus_1 = l_bytes;
        l_minus_1[0] -= 1;
        assert!(Scalar::is_canonical(&l_minus_1));
    }

    #[test]
    fn scalar_mul_add_small_values() {
        let two = Scalar::from_bytes_mod_order(&{
            let mut b = [0u8; 32];
            b[0] = 2;
            b
        });
        let three = Scalar::from_bytes_mod_order(&{
            let mut b = [0u8; 32];
            b[0] = 3;
            b
        });
        let seven = Scalar::from_bytes_mod_order(&{
            let mut b = [0u8; 32];
            b[0] = 7;
            b
        });
        // 2*3 + 7 = 13
        let r = Scalar::mul_add(&two, &three, &seven);
        let mut expect = [0u8; 32];
        expect[0] = 13;
        assert_eq!(r.0, expect);
    }

    #[test]
    fn scalar_wide_reduction_matches_iterated_reduction() {
        // (2^256) mod L computed two ways.
        let mut wide = [0u8; 64];
        wide[32] = 1; // 2^256
        let direct = Scalar::from_bytes_mod_order_wide(&wide);

        // 2^256 mod L == (2^255 mod L) * 2 mod L. Compute via mul_add.
        let mut half = [0u8; 32];
        half[31] = 0x80; // 2^255
        let half_reduced = Scalar::from_bytes_mod_order(&half);
        let two = Scalar::from_bytes_mod_order(&{
            let mut b = [0u8; 32];
            b[0] = 2;
            b
        });
        let indirect = Scalar::mul_add(&half_reduced, &two, &Scalar::ZERO);
        assert_eq!(direct, indirect);
    }

    #[test]
    fn scalar_mul_distributes_over_point_add() {
        // [2]B + [3]B == [5]B
        let b = EdwardsPoint::base();
        let mut s2 = [0u8; 32];
        s2[0] = 2;
        let mut s3 = [0u8; 32];
        s3[0] = 3;
        let mut s5 = [0u8; 32];
        s5[0] = 5;
        let sum = b.scalar_mul(&s2).add(&b.scalar_mul(&s3));
        assert!(sum.ct_eq(&b.scalar_mul(&s5)));
    }
}
