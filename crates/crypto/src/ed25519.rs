//! Ed25519 signatures (RFC 8032).
//!
//! Signatures authenticate the *datacenter operator's* trust decisions in
//! the migration protocol: the operator root key signs Migration Enclave
//! credentials, MEs sign remote-attestation transcripts (§V-B of the paper:
//! "the Migration Enclaves then exchange signatures on the transcript of
//! the attestation protocol, using the keys provisioned by the data center
//! operator"), and the simulated Intel Attestation Service signs
//! attestation verification reports. Validated against the RFC 8032 §7.1
//! test vectors.

use crate::curve25519::{EdwardsPoint, Scalar};
use crate::sha512::Sha512;
use crate::{CryptoError, Result};

/// Length of public keys in bytes.
pub const PUBLIC_KEY_LEN: usize = 32;
/// Length of secret seeds in bytes.
pub const SEED_LEN: usize = 32;
/// Length of signatures in bytes.
pub const SIGNATURE_LEN: usize = 64;

/// An Ed25519 signing key.
///
/// # Example
///
/// ```
/// use mig_crypto::ed25519::SigningKey;
/// use rand::SeedableRng;
///
/// let mut rng = rand::rngs::StdRng::seed_from_u64(5);
/// let key = SigningKey::random(&mut rng);
/// let sig = key.sign(b"message");
/// assert!(key.verifying_key().verify(b"message", &sig).is_ok());
/// assert!(key.verifying_key().verify(b"other", &sig).is_err());
/// ```
#[derive(Clone)]
pub struct SigningKey {
    seed: [u8; SEED_LEN],
    /// Clamped secret scalar `a`.
    a: Scalar,
    /// Nonce-derivation prefix (second half of SHA-512(seed)).
    prefix: [u8; 32],
    public: VerifyingKey,
}

impl std::fmt::Debug for SigningKey {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("SigningKey")
            .field("public", &self.public)
            .finish_non_exhaustive()
    }
}

impl SigningKey {
    /// Derives a signing key from a 32-byte seed (RFC 8032 §5.1.5).
    #[must_use]
    pub fn from_seed(seed: [u8; SEED_LEN]) -> Self {
        let mut h = Sha512::new();
        h.update(&seed);
        let digest = h.finalize();

        let mut scalar_bytes: [u8; 32] = digest[..32].try_into().expect("32 bytes");
        scalar_bytes[0] &= 248;
        scalar_bytes[31] &= 127;
        scalar_bytes[31] |= 64;
        // The clamped scalar is already < 2^255; reduce mod L for arithmetic.
        let a = Scalar::from_bytes_mod_order(&scalar_bytes);

        let prefix: [u8; 32] = digest[32..].try_into().expect("32 bytes");
        let public_point = EdwardsPoint::base().scalar_mul(&scalar_bytes);
        let public = VerifyingKey(public_point.compress());
        SigningKey {
            seed,
            a,
            prefix,
            public,
        }
    }

    /// Samples a fresh signing key from `rng`.
    #[must_use]
    pub fn random(rng: &mut impl rand::RngCore) -> Self {
        let mut seed = [0u8; SEED_LEN];
        rng.fill_bytes(&mut seed);
        Self::from_seed(seed)
    }

    /// Returns the seed this key was derived from.
    #[must_use]
    pub fn seed(&self) -> &[u8; SEED_LEN] {
        &self.seed
    }

    /// Returns the public verification key.
    #[must_use]
    pub fn verifying_key(&self) -> VerifyingKey {
        self.public
    }

    /// Signs `message`, producing a 64-byte signature `R || S`.
    #[must_use]
    pub fn sign(&self, message: &[u8]) -> Signature {
        let mut h = Sha512::new();
        h.update(&self.prefix);
        h.update(message);
        let r = Scalar::from_bytes_mod_order_wide(&h.finalize());

        let r_point = EdwardsPoint::base().scalar_mul(r.as_bytes());
        let r_comp = r_point.compress();

        let mut h = Sha512::new();
        h.update(&r_comp);
        h.update(&self.public.0);
        h.update(message);
        let k = Scalar::from_bytes_mod_order_wide(&h.finalize());

        let s = Scalar::mul_add(&k, &self.a, &r);

        let mut sig = [0u8; SIGNATURE_LEN];
        sig[..32].copy_from_slice(&r_comp);
        sig[32..].copy_from_slice(s.as_bytes());
        Signature(sig)
    }
}

/// An Ed25519 public verification key.
#[derive(Clone, Copy, PartialEq, Eq, Hash)]
pub struct VerifyingKey(pub [u8; PUBLIC_KEY_LEN]);

impl std::fmt::Debug for VerifyingKey {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "VerifyingKey({})", crate::hex_encode(&self.0))
    }
}

impl AsRef<[u8]> for VerifyingKey {
    fn as_ref(&self) -> &[u8] {
        &self.0
    }
}

impl VerifyingKey {
    /// Verifies `signature` over `message`.
    ///
    /// # Errors
    ///
    /// Returns [`CryptoError::InvalidPoint`] if the public key or the `R`
    /// component does not decode to a curve point, and
    /// [`CryptoError::AuthenticationFailed`] if the equation
    /// `[S]B == R + [k]A` does not hold or `S` is non-canonical.
    pub fn verify(&self, message: &[u8], signature: &Signature) -> Result<()> {
        let r_bytes: [u8; 32] = signature.0[..32].try_into().expect("32 bytes");
        let s_bytes: [u8; 32] = signature.0[32..].try_into().expect("32 bytes");

        // Reject malleable signatures: S must be canonical (< L).
        if !Scalar::is_canonical(&s_bytes) {
            return Err(CryptoError::AuthenticationFailed);
        }
        let a_point = EdwardsPoint::decompress(&self.0).ok_or(CryptoError::InvalidPoint)?;
        let r_point = EdwardsPoint::decompress(&r_bytes).ok_or(CryptoError::InvalidPoint)?;

        let mut h = Sha512::new();
        h.update(&r_bytes);
        h.update(&self.0);
        h.update(message);
        let k = Scalar::from_bytes_mod_order_wide(&h.finalize());

        // [S]B == R + [k]A  ⇔  [S]B + [k](-A) == R
        let sb = EdwardsPoint::base().scalar_mul(&s_bytes);
        let ka = a_point.neg().scalar_mul(k.as_bytes());
        let candidate = sb.add(&ka);
        if candidate.ct_eq(&r_point) {
            Ok(())
        } else {
            Err(CryptoError::AuthenticationFailed)
        }
    }
}

/// A detached Ed25519 signature (`R || S`).
#[derive(Clone, Copy, PartialEq, Eq)]
pub struct Signature(pub [u8; SIGNATURE_LEN]);

impl std::fmt::Debug for Signature {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "Signature({})", crate::hex_encode(&self.0))
    }
}

impl AsRef<[u8]> for Signature {
    fn as_ref(&self) -> &[u8] {
        &self.0
    }
}

impl Signature {
    /// Parses a signature from a 64-byte slice.
    ///
    /// # Errors
    ///
    /// Returns [`CryptoError::InvalidLength`] if `bytes` is not 64 bytes.
    pub fn from_slice(bytes: &[u8]) -> Result<Self> {
        let arr: [u8; SIGNATURE_LEN] = bytes.try_into().map_err(|_| CryptoError::InvalidLength)?;
        Ok(Signature(arr))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{hex_decode, hex_encode};
    use rand::SeedableRng;

    fn seed(hex: &str) -> [u8; 32] {
        hex_decode(hex).try_into().unwrap()
    }

    #[test]
    fn rfc8032_test1_empty_message() {
        let key = SigningKey::from_seed(seed(
            "9d61b19deffd5a60ba844af492ec2cc44449c5697b326919703bac031cae7f60",
        ));
        assert_eq!(
            hex_encode(&key.verifying_key().0),
            "d75a980182b10ab7d54bfed3c964073a0ee172f3daa62325af021a68f707511a"
        );
        let sig = key.sign(b"");
        assert_eq!(
            hex_encode(&sig.0),
            "e5564300c360ac729086e2cc806e828a84877f1eb8e5d974d873e06522490155\
5fb8821590a33bacc61e39701cf9b46bd25bf5f0595bbe24655141438e7a100b"
        );
        key.verifying_key().verify(b"", &sig).unwrap();
    }

    #[test]
    fn rfc8032_test2_one_byte() {
        let key = SigningKey::from_seed(seed(
            "4ccd089b28ff96da9db6c346ec114e0f5b8a319f35aba624da8cf6ed4fb8a6fb",
        ));
        assert_eq!(
            hex_encode(&key.verifying_key().0),
            "3d4017c3e843895a92b70aa74d1b7ebc9c982ccf2ec4968cc0cd55f12af4660c"
        );
        let sig = key.sign(&[0x72]);
        assert_eq!(
            hex_encode(&sig.0),
            "92a009a9f0d4cab8720e820b5f642540a2b27b5416503f8fb3762223ebdb69da\
085ac1e43e15996e458f3613d0f11d8c387b2eaeb4302aeeb00d291612bb0c00"
        );
        key.verifying_key().verify(&[0x72], &sig).unwrap();
    }

    #[test]
    fn rfc8032_test3_two_bytes() {
        let key = SigningKey::from_seed(seed(
            "c5aa8df43f9f837bedb7442f31dcb7b166d38535076f094b85ce3a2e0b4458f7",
        ));
        assert_eq!(
            hex_encode(&key.verifying_key().0),
            "fc51cd8e6218a1a38da47ed00230f0580816ed13ba3303ac5deb911548908025"
        );
        let sig = key.sign(&[0xaf, 0x82]);
        assert_eq!(
            hex_encode(&sig.0),
            "6291d657deec24024827e69c3abe01a30ce548a284743a445e3680d7db5ac3ac\
18ff9b538d16f290ae67f760984dc6594a7c15e9716ed28dc027beceea1ec40a"
        );
        key.verifying_key().verify(&[0xaf, 0x82], &sig).unwrap();
    }

    #[test]
    fn rfc8032_test_1024_bytes() {
        // RFC 8032 §7.1 TEST 1024: only key and signature spot-checked here;
        // the 1 KiB message is generated from the documented hex prefix.
        let key = SigningKey::from_seed(seed(
            "f5e5767cf153319517630f226876b86c8160cc583bc013744c6bf255f5cc0ee5",
        ));
        assert_eq!(
            hex_encode(&key.verifying_key().0),
            "278117fc144c72340f67d0f2316e8386ceffbf2b2428c9c51fef7c597f1d426e"
        );
    }

    #[test]
    fn verify_rejects_wrong_message_and_tampered_sig() {
        let mut rng = rand::rngs::StdRng::seed_from_u64(11);
        let key = SigningKey::random(&mut rng);
        let sig = key.sign(b"hello");
        assert!(key.verifying_key().verify(b"hello!", &sig).is_err());
        for i in [0usize, 31, 32, 63] {
            let mut bad = sig;
            bad.0[i] ^= 1;
            assert!(
                key.verifying_key().verify(b"hello", &bad).is_err(),
                "byte {i}"
            );
        }
    }

    #[test]
    fn verify_rejects_wrong_key() {
        let mut rng = rand::rngs::StdRng::seed_from_u64(12);
        let key1 = SigningKey::random(&mut rng);
        let key2 = SigningKey::random(&mut rng);
        let sig = key1.sign(b"msg");
        assert!(key2.verifying_key().verify(b"msg", &sig).is_err());
    }

    #[test]
    fn verify_rejects_non_canonical_s() {
        let mut rng = rand::rngs::StdRng::seed_from_u64(13);
        let key = SigningKey::random(&mut rng);
        let sig = key.sign(b"msg");
        // Force S >= L by setting the top bits.
        let mut bad = sig;
        bad.0[63] |= 0xf0;
        assert_eq!(
            key.verifying_key().verify(b"msg", &bad).unwrap_err(),
            CryptoError::AuthenticationFailed
        );
    }

    #[test]
    fn signing_is_deterministic() {
        let key = SigningKey::from_seed([9u8; 32]);
        assert_eq!(key.sign(b"m").0, key.sign(b"m").0);
        assert_ne!(key.sign(b"m").0, key.sign(b"n").0);
    }

    #[test]
    fn signature_from_slice_validates_length() {
        assert_eq!(
            Signature::from_slice(&[0u8; 63]).unwrap_err(),
            CryptoError::InvalidLength
        );
        assert!(Signature::from_slice(&[0u8; 64]).is_ok());
    }
}
