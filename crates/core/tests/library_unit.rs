//! Unit-level tests of the Migration Library driven through a bare
//! machine (no datacenter, no Migration Enclave) — the paths that do not
//! need the ME session: initialization, migratable sealing, and counter
//! bookkeeping, including all error paths.

use mig_core::harness::{
    encode_init, open_envelope, ops as lib_ops, AppCtx, AppLogic, MigratableEnclave,
};
use mig_core::library::InitRequest;
use rand::rngs::StdRng;
use rand::SeedableRng;
use sgx_sim::enclave::EnclaveHandle;
use sgx_sim::ias::AttestationService;
use sgx_sim::machine::{MachineId, SgxMachine};
use sgx_sim::measurement::{EnclaveImage, EnclaveSigner, MrEnclave};
use sgx_sim::wire::WireWriter;
use sgx_sim::SgxError;

struct LibApp;

mod ops {
    pub const CREATE: u32 = 1;
    pub const INC: u32 = 2;
    pub const READ: u32 = 3;
    pub const DESTROY: u32 = 4;
    pub const SEAL: u32 = 5;
    pub const UNSEAL: u32 = 6;
    pub const ACTIVE: u32 = 7;
}

impl AppLogic for LibApp {
    fn handle(
        &mut self,
        ctx: &mut AppCtx<'_, '_>,
        opcode: u32,
        input: &[u8],
    ) -> Result<Vec<u8>, SgxError> {
        match opcode {
            ops::CREATE => {
                let (id, v) = ctx.lib.create_migratable_counter(ctx.env)?;
                let mut out = vec![id];
                out.extend_from_slice(&v.to_le_bytes());
                Ok(out)
            }
            ops::INC => Ok(ctx
                .lib
                .increment_migratable_counter(ctx.env, input[0])?
                .to_le_bytes()
                .to_vec()),
            ops::READ => Ok(ctx
                .lib
                .read_migratable_counter(ctx.env, input[0])?
                .to_le_bytes()
                .to_vec()),
            ops::DESTROY => {
                ctx.lib.destroy_migratable_counter(ctx.env, input[0])?;
                Ok(vec![])
            }
            ops::SEAL => Ok(ctx.lib.seal_migratable_data(ctx.env, b"unit", input)?),
            ops::UNSEAL => Ok(ctx.lib.unseal_migratable_data(ctx.env, input)?.0),
            ops::ACTIVE => Ok((ctx.lib.active_counters() as u32).to_le_bytes().to_vec()),
            _ => Err(SgxError::InvalidParameter("opcode")),
        }
    }
}

fn machine() -> SgxMachine {
    let mut rng = StdRng::seed_from_u64(51);
    let ias = AttestationService::new(&mut rng);
    SgxMachine::new(MachineId(1), &ias, &mut rng)
}

fn image() -> EnclaveImage {
    EnclaveImage::build("lib-unit", 1, b"code", &EnclaveSigner::from_seed([5; 32]))
}

fn me_mr() -> MrEnclave {
    mig_core::me::me_image().mr_enclave()
}

/// Loads + inits an enclave, returning the handle and the initial blob.
fn fresh(machine: &SgxMachine) -> (EnclaveHandle, Vec<u8>) {
    let enclave = machine
        .load_enclave(&image(), Box::new(MigratableEnclave::new(LibApp)))
        .unwrap();
    let out = enclave
        .ecall(lib_ops::MIG_INIT, &encode_init(&me_mr(), &InitRequest::New))
        .unwrap();
    let (_, blob) = open_envelope(&out).unwrap();
    (enclave, blob.expect("init persists"))
}

fn call(enclave: &EnclaveHandle, opcode: u32, input: &[u8]) -> Result<Vec<u8>, SgxError> {
    let out = enclave.ecall(opcode, input)?;
    Ok(open_envelope(&out).unwrap().0)
}

#[test]
fn init_new_persists_a_fresh_blob() {
    let m = machine();
    let (_enclave, blob) = fresh(&m);
    assert!(!blob.is_empty());
    // The blob is sealed: an identical enclave can parse it only through
    // the library (Restore), not as plaintext.
    assert!(sgx_sim::seal::parse_sealed_header(&blob).is_ok());
}

#[test]
fn calling_app_before_init_fails() {
    let m = machine();
    let enclave = m
        .load_enclave(&image(), Box::new(MigratableEnclave::new(LibApp)))
        .unwrap();
    let err = enclave.ecall(ops::SEAL, b"x").unwrap_err();
    assert!(matches!(err, SgxError::Enclave(ref msg) if msg.contains("not initialized")));
}

#[test]
fn counter_ids_are_reused_after_destroy() {
    let m = machine();
    let (enclave, _) = fresh(&m);
    let a = call(&enclave, ops::CREATE, &[]).unwrap()[0];
    let b = call(&enclave, ops::CREATE, &[]).unwrap()[0];
    assert_eq!((a, b), (0, 1), "ids assigned in order");
    call(&enclave, ops::DESTROY, &[a]).unwrap();
    // The freed id is reused (library-level id, not the SGX UUID).
    let c = call(&enclave, ops::CREATE, &[]).unwrap()[0];
    assert_eq!(c, a);
    // And it starts at effective 0 again.
    let v = u32::from_le_bytes(
        call(&enclave, ops::READ, &[c]).unwrap()[..4]
            .try_into()
            .unwrap(),
    );
    assert_eq!(v, 0);
}

#[test]
fn unknown_and_destroyed_ids_error() {
    let m = machine();
    let (enclave, _) = fresh(&m);
    for op in [ops::INC, ops::READ, ops::DESTROY] {
        let err = call(&enclave, op, &[42]).unwrap_err();
        assert!(
            matches!(err, SgxError::Enclave(ref msg) if msg.contains("unknown")),
            "{err:?}"
        );
    }
    let id = call(&enclave, ops::CREATE, &[]).unwrap()[0];
    call(&enclave, ops::DESTROY, &[id]).unwrap();
    assert!(call(&enclave, ops::INC, &[id]).is_err());
}

#[test]
fn quota_of_256_counters_enforced() {
    let m = machine();
    let (enclave, _) = fresh(&m);
    for _ in 0..256 {
        call(&enclave, ops::CREATE, &[]).unwrap();
    }
    let active = u32::from_le_bytes(
        call(&enclave, ops::ACTIVE, &[]).unwrap()[..4]
            .try_into()
            .unwrap(),
    );
    assert_eq!(active, 256);
    let err = call(&enclave, ops::CREATE, &[]).unwrap_err();
    assert_eq!(err, SgxError::CounterQuotaExceeded);
}

#[test]
fn migratable_seal_round_trip_and_tamper_detection() {
    let m = machine();
    let (enclave, _) = fresh(&m);
    let blob = call(&enclave, ops::SEAL, b"payload").unwrap();
    assert_eq!(call(&enclave, ops::UNSEAL, &blob).unwrap(), b"payload");
    for i in 0..blob.len() {
        let mut bad = blob.clone();
        bad[i] ^= 1;
        assert!(call(&enclave, ops::UNSEAL, &bad).is_err(), "byte {i}");
    }
}

#[test]
fn msk_is_unique_per_enclave_lifetime() {
    let m = machine();
    let (e1, _) = fresh(&m);
    let (e2, _) = fresh(&m);
    // Two independent "new" initializations have different MSKs, even for
    // the same image on the same machine.
    let blob = call(&e1, ops::SEAL, b"x").unwrap();
    assert!(call(&e2, ops::UNSEAL, &blob).is_err());
}

#[test]
fn restore_round_trips_counters_and_msk() {
    let m = machine();
    let (e1, _) = fresh(&m);
    let id = call(&e1, ops::CREATE, &[]).unwrap()[0];
    call(&e1, ops::INC, &[id]).unwrap();
    let sealed = call(&e1, ops::SEAL, b"kept").unwrap();
    // The latest persist blob came from the CREATE call.
    let out = e1.ecall(ops::INC, &[id]).unwrap();
    let (_, persist) = open_envelope(&out).unwrap();
    assert!(persist.is_none(), "increment does not reseal (paper §VI-B)");

    // Fetch the blob produced by CREATE by re-driving a fresh enclave.
    let e_fresh = m
        .load_enclave(&image(), Box::new(MigratableEnclave::new(LibApp)))
        .unwrap();
    let out = e_fresh
        .ecall(lib_ops::MIG_INIT, &encode_init(&me_mr(), &InitRequest::New))
        .unwrap();
    let _ = out;

    // Simulate restart of e1: we need its last persist blob. Re-create it
    // by calling CREATE on a new counter (which reseals) and using that.
    let out = e1.ecall(ops::CREATE, &[]).unwrap();
    let (_, blob) = open_envelope(&out).unwrap();
    let blob = blob.unwrap();

    e1.destroy();
    let e2 = m
        .load_enclave(&image(), Box::new(MigratableEnclave::new(LibApp)))
        .unwrap();
    e2.ecall(
        lib_ops::MIG_INIT,
        &encode_init(&me_mr(), &InitRequest::Restore { blob }),
    )
    .unwrap();
    // Counter state and MSK both restored.
    let v = u32::from_le_bytes(
        call(&e2, ops::READ, &[id]).unwrap()[..4]
            .try_into()
            .unwrap(),
    );
    assert_eq!(v, 2);
    assert_eq!(call(&e2, ops::UNSEAL, &sealed).unwrap(), b"kept");
}

#[test]
fn restore_rejects_blob_from_other_enclave() {
    let m = machine();
    let other_image = EnclaveImage::build(
        "other",
        1,
        b"other code",
        &EnclaveSigner::from_seed([6; 32]),
    );
    let other = m
        .load_enclave(&other_image, Box::new(MigratableEnclave::new(LibApp)))
        .unwrap();
    let out = other
        .ecall(lib_ops::MIG_INIT, &encode_init(&me_mr(), &InitRequest::New))
        .unwrap();
    let (_, blob) = open_envelope(&out).unwrap();
    let foreign_blob = blob.unwrap();

    // Same machine, different MRENCLAVE: native sealing rejects it.
    let mine = m
        .load_enclave(&image(), Box::new(MigratableEnclave::new(LibApp)))
        .unwrap();
    let err = mine
        .ecall(
            lib_ops::MIG_INIT,
            &encode_init(&me_mr(), &InitRequest::Restore { blob: foreign_blob }),
        )
        .unwrap_err();
    assert_eq!(err, SgxError::MacMismatch);
}

#[test]
fn restore_rejects_garbage_blob() {
    let m = machine();
    let enclave = m
        .load_enclave(&image(), Box::new(MigratableEnclave::new(LibApp)))
        .unwrap();
    let err = enclave
        .ecall(
            lib_ops::MIG_INIT,
            &encode_init(
                &me_mr(),
                &InitRequest::Restore {
                    blob: vec![1, 2, 3],
                },
            ),
        )
        .unwrap_err();
    assert!(matches!(err, SgxError::Decode | SgxError::MacMismatch));
}

#[test]
fn await_migration_phase_refuses_operations() {
    let m = machine();
    let enclave = m
        .load_enclave(&image(), Box::new(MigratableEnclave::new(LibApp)))
        .unwrap();
    enclave
        .ecall(
            lib_ops::MIG_INIT,
            &encode_init(&me_mr(), &InitRequest::Migrate),
        )
        .unwrap();
    for (op, input) in [
        (ops::CREATE, vec![]),
        (ops::SEAL, b"x".to_vec()),
        (ops::INC, vec![0]),
    ] {
        let err = enclave.ecall(op, &input).unwrap_err();
        assert!(
            matches!(err, SgxError::Enclave(ref msg) if msg.contains("awaiting")),
            "{err:?}"
        );
    }
    // Phase is observable.
    let out = enclave.ecall(lib_ops::PHASE, &[]).unwrap();
    let (payload, _) = open_envelope(&out).unwrap();
    assert_eq!(payload, vec![2], "AwaitingMigration");
}

#[test]
fn migration_start_requires_attested_session() {
    let m = machine();
    let (enclave, _) = fresh(&m);
    let mut w = WireWriter::new();
    w.u64(2);
    let err = enclave.ecall(lib_ops::MIG_START, &w.finish()).unwrap_err();
    assert!(
        matches!(err, SgxError::Enclave(ref msg) if msg.contains("migration enclave")),
        "{err:?}"
    );
}

#[test]
fn me_msg1_rejects_wrong_me_measurement() {
    // The library fails fast if the responding "ME" does not carry the
    // expected measurement.
    let m = machine();
    let (enclave, _) = fresh(&m);
    let msg1 = sgx_sim::dh::DhMsg1 {
        g_a: mig_crypto::x25519::PublicKey([9; 32]),
        responder: sgx_sim::report::TargetInfo {
            mr_enclave: MrEnclave([0xEE; 32]), // not the ME image
        },
    };
    let err = enclave
        .ecall(lib_ops::ME_MSG1, &msg1.to_bytes())
        .unwrap_err();
    assert!(
        matches!(err, SgxError::Enclave(ref msg) if msg.contains("measurement")),
        "{err:?}"
    );
}

#[test]
fn me_msg3_without_handshake_errors() {
    let m = machine();
    let (enclave, _) = fresh(&m);
    let msg3 = sgx_sim::dh::DhMsg3 {
        report: sgx_sim::report::Report {
            body: sgx_sim::report::ReportBody {
                identity: enclave.identity(),
                report_data: sgx_sim::report::ReportData::default(),
            },
            target: enclave.identity().mr_enclave,
            mac: [0; 32],
        },
    };
    let err = enclave
        .ecall(lib_ops::ME_MSG3, &msg3.to_bytes())
        .unwrap_err();
    assert!(
        matches!(err, SgxError::Enclave(ref msg) if msg.contains("no ME handshake")),
        "{err:?}"
    );
}

#[test]
fn effective_value_spans_restart_lineage() {
    // create → inc ×3 → restart → inc ×2 → effective 5.
    let m = machine();
    let (e1, _) = fresh(&m);
    let id = call(&e1, ops::CREATE, &[]).unwrap()[0];
    for _ in 0..3 {
        call(&e1, ops::INC, &[id]).unwrap();
    }
    // Persist via a second counter creation (reseal trigger).
    let out = e1.ecall(ops::CREATE, &[]).unwrap();
    let (_, blob) = open_envelope(&out).unwrap();
    let blob = blob.unwrap();
    e1.destroy();

    let e2 = m
        .load_enclave(&image(), Box::new(MigratableEnclave::new(LibApp)))
        .unwrap();
    e2.ecall(
        lib_ops::MIG_INIT,
        &encode_init(&me_mr(), &InitRequest::Restore { blob }),
    )
    .unwrap();
    for expected in [4u32, 5] {
        let v = u32::from_le_bytes(call(&e2, ops::INC, &[id]).unwrap()[..4].try_into().unwrap());
        assert_eq!(v, expected);
    }
}
