//! Unit-level tests of the Migration Enclave's ECALL state machine:
//! provisioning, session bookkeeping, and every "wrong order / wrong
//! peer" error path, driven directly against the enclave handle.

use cloud_sim::machine::MachineLabels;
use mig_core::me::{me_image, ops as me_ops, MeAction, MigrationEnclave};
use mig_core::operator::CloudOperator;
use mig_core::policy::MigrationPolicy;
use mig_crypto::ed25519::VerifyingKey;
use rand::rngs::StdRng;
use rand::SeedableRng;
use sgx_sim::enclave::EnclaveHandle;
use sgx_sim::ias::AttestationService;
use sgx_sim::machine::{MachineId, SgxMachine};
use sgx_sim::wire::WireWriter;
use sgx_sim::SgxError;

struct Fixture {
    ias: AttestationService,
    operator: CloudOperator,
    machine: SgxMachine,
}

fn fixture(seed: u64) -> Fixture {
    let mut rng = StdRng::seed_from_u64(seed);
    let ias = AttestationService::new(&mut rng);
    let operator = CloudOperator::new(&mut rng);
    let machine = SgxMachine::new(MachineId(1), &ias, &mut rng);
    Fixture {
        ias,
        operator,
        machine,
    }
}

fn load_me(f: &Fixture) -> EnclaveHandle {
    f.machine
        .load_enclave(&me_image(), Box::new(MigrationEnclave::new()))
        .unwrap()
}

fn provision(f: &Fixture, me: &EnclaveHandle, policy: &MigrationPolicy) {
    let pubkey = me.ecall(me_ops::KEYGEN, &[]).unwrap();
    let cred = f.operator.issue_credential(
        VerifyingKey(pubkey.try_into().unwrap()),
        f.machine.machine_id(),
        &MachineLabels::default(),
    );
    let mut w = WireWriter::new();
    w.bytes(&cred.to_bytes());
    w.array(&f.operator.root_key().0);
    w.array(&f.ias.verifying_key().0);
    w.bytes(&policy.to_bytes());
    me.ecall(me_ops::PROVISION, &w.finish()).unwrap();
}

#[test]
fn me_image_is_stable_and_loadable() {
    let f = fixture(1);
    assert_eq!(me_image().mr_enclave(), me_image().mr_enclave());
    let me = load_me(&f);
    assert_eq!(me.identity().mr_enclave, me_image().mr_enclave());
}

#[test]
fn provisioning_happy_path() {
    let f = fixture(2);
    let me = load_me(&f);
    provision(&f, &me, &MigrationPolicy::same_operator_only());
}

#[test]
fn provisioning_rejects_credential_for_wrong_key() {
    let f = fixture(3);
    let me = load_me(&f);
    let _our_key = me.ecall(me_ops::KEYGEN, &[]).unwrap();
    // Credential issued for some other key.
    let mut rng = StdRng::seed_from_u64(77);
    let other = mig_crypto::ed25519::SigningKey::random(&mut rng);
    let cred = f.operator.issue_credential(
        other.verifying_key(),
        f.machine.machine_id(),
        &MachineLabels::default(),
    );
    let mut w = WireWriter::new();
    w.bytes(&cred.to_bytes());
    w.array(&f.operator.root_key().0);
    w.array(&f.ias.verifying_key().0);
    w.bytes(&MigrationPolicy::same_operator_only().to_bytes());
    let err = me.ecall(me_ops::PROVISION, &w.finish()).unwrap_err();
    assert!(
        matches!(err, SgxError::Enclave(ref m) if m.contains("does not match")),
        "{err:?}"
    );
}

#[test]
fn provisioning_rejects_forged_credential() {
    let f = fixture(4);
    let me = load_me(&f);
    let pubkey = me.ecall(me_ops::KEYGEN, &[]).unwrap();
    // Credential signed by a different operator than the root we provide.
    let mut rng = StdRng::seed_from_u64(78);
    let rogue = CloudOperator::new(&mut rng);
    let cred = rogue.issue_credential(
        VerifyingKey(pubkey.try_into().unwrap()),
        f.machine.machine_id(),
        &MachineLabels::default(),
    );
    let mut w = WireWriter::new();
    w.bytes(&cred.to_bytes());
    w.array(&f.operator.root_key().0); // genuine root
    w.array(&f.ias.verifying_key().0);
    w.bytes(&MigrationPolicy::same_operator_only().to_bytes());
    let err = me.ecall(me_ops::PROVISION, &w.finish()).unwrap_err();
    assert!(
        matches!(err, SgxError::Enclave(ref m) if m.contains("credential")),
        "{err:?}"
    );
}

#[test]
fn operations_before_provisioning_fail() {
    let f = fixture(5);
    let me = load_me(&f);
    // RA hello requires configuration.
    let mut w = WireWriter::new();
    w.u64(2);
    w.array(&[0u8; 32]);
    w.bytes(&[0u8; 8]);
    let err = me.ecall(me_ops::RA_HELLO, &w.finish()).unwrap_err();
    // Either a decode failure of the bogus evidence or NotInitialized —
    // both deny service before provisioning; for well-formed evidence it
    // is NotInitialized, here the bogus evidence fails first.
    assert!(matches!(err, SgxError::Decode | SgxError::Enclave(_)));
}

#[test]
fn la_msg2_with_unknown_token_fails() {
    let f = fixture(6);
    let me = load_me(&f);
    provision(&f, &me, &MigrationPolicy::same_operator_only());
    let mut w = WireWriter::new();
    w.bytes(b"no-such-token");
    w.bytes(&[0u8; 4]);
    let err = me.ecall(me_ops::LA_MSG2, &w.finish()).unwrap_err();
    assert!(matches!(err, SgxError::Decode | SgxError::Enclave(_)));
}

#[test]
fn lib_msg_without_session_fails() {
    let f = fixture(7);
    let me = load_me(&f);
    provision(&f, &me, &MigrationPolicy::same_operator_only());
    let mut w = WireWriter::new();
    w.array(&[7u8; 32]); // some MRENCLAVE with no session
    w.bytes(b"ciphertext");
    let err = me.ecall(me_ops::LIB_MSG, &w.finish()).unwrap_err();
    assert!(
        matches!(err, SgxError::Enclave(ref m) if m.contains("no local session")),
        "{err:?}"
    );
}

#[test]
fn ra_response_without_handshake_fails() {
    let f = fixture(8);
    let me = load_me(&f);
    provision(&f, &me, &MigrationPolicy::same_operator_only());
    // A syntactically valid (but unsolicited) RA response input.
    let mut rng = StdRng::seed_from_u64(99);
    let key = mig_crypto::ed25519::SigningKey::random(&mut rng);
    let cred =
        f.operator
            .issue_credential(key.verifying_key(), MachineId(2), &MachineLabels::default());
    // Build minimal evidence bytes via a genuine quote from this machine.
    // (Evidence content is irrelevant: the session lookup fails first.)
    let mut w = WireWriter::new();
    w.u64(2);
    w.array(&[1u8; 32]);
    w.bytes(&[0u8; 4]); // bogus evidence → decode error, or...
    w.bytes(&cred.to_bytes());
    w.array(&[0u8; 64]);
    let err = me.ecall(me_ops::RA_RESPONSE, &w.finish()).unwrap_err();
    assert!(matches!(err, SgxError::Decode | SgxError::Enclave(_)));
}

#[test]
fn transfer_without_channel_fails() {
    let f = fixture(9);
    let me = load_me(&f);
    provision(&f, &me, &MigrationPolicy::same_operator_only());
    let mut w = WireWriter::new();
    w.u64(5);
    w.bytes(b"ct");
    let err = me.ecall(me_ops::TRANSFER, &w.finish()).unwrap_err();
    assert!(
        matches!(err, SgxError::Enclave(ref m) if m.contains("no attested channel")),
        "{err:?}"
    );
}

#[test]
fn ack_without_channel_fails() {
    let f = fixture(10);
    let me = load_me(&f);
    provision(&f, &me, &MigrationPolicy::same_operator_only());
    let mut w = WireWriter::new();
    w.u64(5);
    w.bytes(b"ct");
    let err = me.ecall(me_ops::ACK, &w.finish()).unwrap_err();
    assert!(
        matches!(err, SgxError::Enclave(ref m) if m.contains("no attested channel")),
        "{err:?}"
    );
}

#[test]
fn retry_without_retained_data_fails() {
    let f = fixture(11);
    let me = load_me(&f);
    provision(&f, &me, &MigrationPolicy::same_operator_only());
    let mut w = WireWriter::new();
    w.array(&[7u8; 32]);
    w.u64(2);
    let err = me.ecall(me_ops::RETRY, &w.finish()).unwrap_err();
    assert!(
        matches!(err, SgxError::Enclave(ref m) if m.contains("no retained")),
        "{err:?}"
    );
}

#[test]
fn unknown_opcode_rejected() {
    let f = fixture(12);
    let me = load_me(&f);
    let err = me.ecall(0xDEAD, &[]).unwrap_err();
    assert!(matches!(err, SgxError::Enclave(_)));
}

#[test]
fn me_action_encodings_round_trip() {
    let actions = [
        MeAction::None,
        MeAction::ConnectRemote {
            destination: MachineId(7),
            hello: vec![1, 2, 3],
        },
        MeAction::SendRemote {
            destination: MachineId(8),
            transfer: vec![4, 5],
        },
        MeAction::AckSource {
            source: MachineId(9),
            ack: vec![6],
        },
    ];
    for action in actions {
        assert_eq!(MeAction::from_bytes(&action.to_bytes()).unwrap(), action);
    }
    assert!(MeAction::from_bytes(&[99]).is_err());
}
