//! Authenticated-encryption channels over attested session keys.
//!
//! Both attested key exchanges in the protocol — library ↔ ME (local
//! attestation DH, §V-B) and ME ↔ ME (remote attestation, §V-D) — yield a
//! 128-bit session key. A [`SecureChannel`] turns that key into a
//! bidirectional AEAD channel with strictly increasing per-direction
//! sequence numbers, so recorded protocol messages cannot be replayed or
//! reordered within a session.

use crate::error::MigError;
use mig_crypto::gcm::AesGcm;

/// Which end of the channel this instance is (determines nonce spaces).
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub enum ChannelRole {
    /// The side that initiated the key exchange.
    Initiator,
    /// The side that responded.
    Responder,
}

impl ChannelRole {
    fn direction_byte(self) -> u8 {
        match self {
            ChannelRole::Initiator => 0x01,
            ChannelRole::Responder => 0x02,
        }
    }

    fn peer(self) -> ChannelRole {
        match self {
            ChannelRole::Initiator => ChannelRole::Responder,
            ChannelRole::Responder => ChannelRole::Initiator,
        }
    }
}

/// A sequenced AEAD channel bound to an attested session key.
///
/// # Example
///
/// ```
/// use mig_core::secure_channel::{ChannelRole, SecureChannel};
///
/// # fn main() -> Result<(), mig_core::MigError> {
/// let key = [7u8; 16];
/// let mut alice = SecureChannel::new(key, ChannelRole::Initiator);
/// let mut bob = SecureChannel::new(key, ChannelRole::Responder);
/// let ct = alice.seal(b"migration data");
/// assert_eq!(bob.open(&ct)?, b"migration data");
/// # Ok(())
/// # }
/// ```
pub struct SecureChannel {
    aead: AesGcm,
    role: ChannelRole,
    send_seq: u64,
    recv_seq: u64,
}

impl std::fmt::Debug for SecureChannel {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("SecureChannel")
            .field("role", &self.role)
            .field("send_seq", &self.send_seq)
            .field("recv_seq", &self.recv_seq)
            .finish_non_exhaustive()
    }
}

impl SecureChannel {
    /// Creates a channel endpoint over an attested session key.
    #[must_use]
    pub fn new(session_key: [u8; 16], role: ChannelRole) -> Self {
        SecureChannel {
            aead: AesGcm::new(session_key),
            role,
            send_seq: 0,
            recv_seq: 0,
        }
    }

    fn nonce(direction: u8, seq: u64) -> [u8; 12] {
        let mut nonce = [0u8; 12];
        nonce[0] = direction;
        nonce[4..].copy_from_slice(&seq.to_le_bytes());
        nonce
    }

    /// Encrypts and sequences a message.
    #[must_use]
    pub fn seal(&mut self, plaintext: &[u8]) -> Vec<u8> {
        let nonce = Self::nonce(self.role.direction_byte(), self.send_seq);
        self.send_seq += 1;
        self.aead.seal(&nonce, b"sgx-migrate.channel", plaintext)
    }

    /// Decrypts the next in-order message from the peer.
    ///
    /// # Errors
    ///
    /// [`MigError::Sgx`] (MAC mismatch) on tampering, replay, reordering,
    /// or a message sealed under a different session key.
    pub fn open(&mut self, ciphertext: &[u8]) -> Result<Vec<u8>, MigError> {
        let nonce = Self::nonce(self.role.peer().direction_byte(), self.recv_seq);
        let plaintext = self
            .aead
            .open(&nonce, b"sgx-migrate.channel", ciphertext)
            .map_err(|_| MigError::Sgx(sgx_sim::SgxError::MacMismatch))?;
        self.recv_seq += 1;
        Ok(plaintext)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn pair() -> (SecureChannel, SecureChannel) {
        let key = [0x5A; 16];
        (
            SecureChannel::new(key, ChannelRole::Initiator),
            SecureChannel::new(key, ChannelRole::Responder),
        )
    }

    #[test]
    fn bidirectional_round_trip() {
        let (mut a, mut b) = pair();
        let ct1 = a.seal(b"hello");
        assert_eq!(b.open(&ct1).unwrap(), b"hello");
        let ct2 = b.seal(b"world");
        assert_eq!(a.open(&ct2).unwrap(), b"world");
    }

    #[test]
    fn sequences_are_independent_per_direction() {
        let (mut a, mut b) = pair();
        // Three messages one way, none the other.
        for i in 0..3u8 {
            let ct = a.seal(&[i]);
            assert_eq!(b.open(&ct).unwrap(), vec![i]);
        }
        let ct = b.seal(b"back");
        assert_eq!(a.open(&ct).unwrap(), b"back");
    }

    #[test]
    fn replay_is_rejected() {
        let (mut a, mut b) = pair();
        let ct = a.seal(b"once");
        assert_eq!(b.open(&ct).unwrap(), b"once");
        assert!(b.open(&ct).is_err(), "replay of the same ciphertext");
    }

    #[test]
    fn reordering_is_rejected() {
        let (mut a, mut b) = pair();
        let ct1 = a.seal(b"first");
        let ct2 = a.seal(b"second");
        assert!(b.open(&ct2).is_err(), "out-of-order delivery");
        // A failed open does not consume the receive sequence: in-order
        // delivery still succeeds afterwards.
        assert_eq!(b.open(&ct1).unwrap(), b"first");
        assert_eq!(b.open(&ct2).unwrap(), b"second");
    }

    #[test]
    fn tampering_is_rejected() {
        let (mut a, mut b) = pair();
        let mut ct = a.seal(b"payload");
        ct[0] ^= 1;
        assert!(b.open(&ct).is_err());
    }

    #[test]
    fn direction_confusion_rejected() {
        // A message sealed by the initiator cannot be opened by another
        // initiator-side endpoint (reflection attack).
        let key = [1u8; 16];
        let mut a = SecureChannel::new(key, ChannelRole::Initiator);
        let mut a2 = SecureChannel::new(key, ChannelRole::Initiator);
        let ct = a.seal(b"reflect");
        assert!(a2.open(&ct).is_err());
    }

    #[test]
    fn wrong_key_rejected() {
        let mut a = SecureChannel::new([1; 16], ChannelRole::Initiator);
        let mut b = SecureChannel::new([2; 16], ChannelRole::Responder);
        let ct = a.seal(b"x");
        assert!(b.open(&ct).is_err());
    }
}
