//! Authenticated-encryption channels over attested session keys.
//!
//! Both attested key exchanges in the protocol — library ↔ ME (local
//! attestation DH, §V-B) and ME ↔ ME (remote attestation, §V-D) — yield a
//! 128-bit session key. A [`SecureChannel`] turns that key into a
//! bidirectional AEAD channel with strictly increasing per-direction
//! sequence numbers, so recorded protocol messages cannot be replayed or
//! reordered within a session.

use crate::error::MigError;
use mig_crypto::gcm::{AesGcm, TAG_LEN};

/// Which end of the channel this instance is (determines nonce spaces).
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub enum ChannelRole {
    /// The side that initiated the key exchange.
    Initiator,
    /// The side that responded.
    Responder,
}

impl ChannelRole {
    fn direction_byte(self) -> u8 {
        match self {
            ChannelRole::Initiator => 0x01,
            ChannelRole::Responder => 0x02,
        }
    }

    fn peer(self) -> ChannelRole {
        match self {
            ChannelRole::Initiator => ChannelRole::Responder,
            ChannelRole::Responder => ChannelRole::Initiator,
        }
    }
}

/// A sequenced AEAD channel bound to an attested session key.
///
/// # Example
///
/// ```
/// use mig_core::secure_channel::{ChannelRole, SecureChannel};
///
/// # fn main() -> Result<(), mig_core::MigError> {
/// let key = [7u8; 16];
/// let mut alice = SecureChannel::new(key, ChannelRole::Initiator);
/// let mut bob = SecureChannel::new(key, ChannelRole::Responder);
/// let ct = alice.seal(b"migration data");
/// assert_eq!(bob.open(&ct)?, b"migration data");
/// # Ok(())
/// # }
/// ```
pub struct SecureChannel {
    aead: AesGcm,
    role: ChannelRole,
    send_seq: u64,
    recv_seq: u64,
}

impl std::fmt::Debug for SecureChannel {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("SecureChannel")
            .field("role", &self.role)
            .field("send_seq", &self.send_seq)
            .field("recv_seq", &self.recv_seq)
            .finish_non_exhaustive()
    }
}

impl SecureChannel {
    /// Creates a channel endpoint over an attested session key.
    #[must_use]
    pub fn new(session_key: [u8; 16], role: ChannelRole) -> Self {
        SecureChannel {
            aead: AesGcm::new(session_key),
            role,
            send_seq: 0,
            recv_seq: 0,
        }
    }

    fn nonce(direction: u8, seq: u64) -> [u8; 12] {
        let mut nonce = [0u8; 12];
        nonce[0] = direction;
        nonce[4..].copy_from_slice(&seq.to_le_bytes());
        nonce
    }

    /// Encrypts and sequences a message.
    #[must_use]
    pub fn seal(&mut self, plaintext: &[u8]) -> Vec<u8> {
        let nonce = Self::nonce(self.role.direction_byte(), self.send_seq);
        self.send_seq += 1;
        self.aead.seal(&nonce, CHANNEL_AAD, plaintext)
    }

    /// Encrypts and sequences a message, appending `ciphertext || tag`
    /// to `out` — identical bytes to [`SecureChannel::seal`], but into a
    /// caller-provided buffer so frame builders that know their final
    /// length (batch containers, padded cells) seal with zero
    /// intermediate allocations or copies.
    pub fn seal_into(&mut self, plaintext: &[u8], out: &mut Vec<u8>) {
        let nonce = Self::nonce(self.role.direction_byte(), self.send_seq);
        self.send_seq += 1;
        self.aead.seal_into(&nonce, CHANNEL_AAD, plaintext, out);
    }

    /// Decrypts the next in-order message from the peer.
    ///
    /// # Errors
    ///
    /// [`MigError::Sgx`] (MAC mismatch) on tampering, replay, reordering,
    /// or a message sealed under a different session key.
    pub fn open(&mut self, ciphertext: &[u8]) -> Result<Vec<u8>, MigError> {
        let nonce = Self::nonce(self.role.peer().direction_byte(), self.recv_seq);
        let plaintext = self
            .aead
            .open(&nonce, CHANNEL_AAD, ciphertext)
            .map_err(|_| MigError::Sgx(sgx_sim::SgxError::MacMismatch))?;
        self.recv_seq += 1;
        Ok(plaintext)
    }

    /// Seals a run of messages, assigning them consecutive send
    /// sequence numbers in slice order, with the AEAD work fanned out
    /// over `lanes` worker threads (message `i` on lane `i % lanes`).
    /// The ciphertexts are byte-identical to `lanes` sequential
    /// [`SecureChannel::seal`] calls — the lane split only overlaps the
    /// encryption, it never reorders the sequence space.
    #[must_use]
    pub fn seal_many(&mut self, plaintexts: &[Vec<u8>], lanes: u32) -> Vec<Vec<u8>> {
        let direction = self.role.direction_byte();
        let base = self.send_seq;
        self.send_seq += plaintexts.len() as u64;
        let lanes = effective_lanes(lanes, plaintexts.len());
        if lanes <= 1 {
            return plaintexts
                .iter()
                .enumerate()
                .map(|(i, pt)| {
                    self.aead
                        .seal(&Self::nonce(direction, base + i as u64), CHANNEL_AAD, pt)
                })
                .collect();
        }
        let aead = &self.aead;
        let mut out: Vec<Vec<u8>> = vec![Vec::new(); plaintexts.len()];
        std::thread::scope(|s| {
            let handles: Vec<_> = (0..lanes)
                .map(|lane| {
                    s.spawn(move || {
                        plaintexts
                            .iter()
                            .enumerate()
                            .skip(lane)
                            .step_by(lanes)
                            .map(|(i, pt)| {
                                (
                                    i,
                                    aead.seal(
                                        &Self::nonce(direction, base + i as u64),
                                        CHANNEL_AAD,
                                        pt,
                                    ),
                                )
                            })
                            .collect::<Vec<_>>()
                    })
                })
                .collect();
            for handle in handles {
                // mig-lint: allow(enclave-panic, "a panicked seal lane is a caller bug (AesGcm::seal is infallible); propagating the panic preserves fail-stop semantics")
                for (i, ct) in handle.join().expect("seal lane panicked") {
                    out[i] = ct;
                }
            }
        });
        out
    }

    /// Seals a run of messages like [`SecureChannel::seal_many`], but
    /// appends each ciphertext to `out` behind a `u32` length prefix —
    /// the `TRANSFER_BATCH` cell framing — so a batch container is
    /// assembled in place. With one effective lane (the common case on
    /// small hosts) every cell is sealed directly into `out` with no
    /// intermediate per-cell allocation or copy; with more lanes the
    /// AEAD work fans out exactly like `seal_many` and only the final
    /// gather copies. Bytes and sequence numbers are identical either
    /// way.
    pub fn seal_many_framed(&mut self, plaintexts: &[Vec<u8>], lanes: u32, out: &mut Vec<u8>) {
        if effective_lanes(lanes, plaintexts.len()) <= 1 {
            let direction = self.role.direction_byte();
            for pt in plaintexts {
                let sealed_len = u32::try_from(pt.len() + TAG_LEN).expect("cell < 4 GiB");
                out.extend_from_slice(&sealed_len.to_le_bytes());
                let nonce = Self::nonce(direction, self.send_seq);
                self.send_seq += 1;
                self.aead.seal_into(&nonce, CHANNEL_AAD, pt, out);
            }
        } else {
            for ct in self.seal_many(plaintexts, lanes) {
                let sealed_len = u32::try_from(ct.len()).expect("cell < 4 GiB");
                out.extend_from_slice(&sealed_len.to_le_bytes());
                out.extend_from_slice(&ct);
            }
        }
    }

    /// Opens a run of ciphertexts expected at consecutive receive
    /// sequence numbers, fanning the AEAD work over `lanes` worker
    /// threads (cell `i` on lane `i % lanes`).
    ///
    /// Semantics match a loop of sequential [`SecureChannel::open`]
    /// calls exactly: the verified *prefix* before the first failing
    /// cell is returned and only those cells consume receive sequence
    /// numbers; everything at and after the first failure is discarded.
    /// The `bool` is `true` when every cell verified.
    #[must_use]
    pub fn open_many(&mut self, ciphertexts: &[&[u8]], lanes: u32) -> (Vec<Vec<u8>>, bool) {
        let direction = self.role.peer().direction_byte();
        let base = self.recv_seq;
        let lanes = effective_lanes(lanes, ciphertexts.len());
        let mut opened: Vec<Option<Vec<u8>>> = if lanes <= 1 {
            ciphertexts
                .iter()
                .enumerate()
                .map(|(i, ct)| {
                    self.aead
                        .open(&Self::nonce(direction, base + i as u64), CHANNEL_AAD, ct)
                        .ok()
                })
                .collect()
        } else {
            let aead = &self.aead;
            let mut out: Vec<Option<Vec<u8>>> = vec![None; ciphertexts.len()];
            std::thread::scope(|s| {
                let handles: Vec<_> = (0..lanes)
                    .map(|lane| {
                        s.spawn(move || {
                            ciphertexts
                                .iter()
                                .enumerate()
                                .skip(lane)
                                .step_by(lanes)
                                .map(|(i, ct)| {
                                    (
                                        i,
                                        aead.open(
                                            &Self::nonce(direction, base + i as u64),
                                            CHANNEL_AAD,
                                            ct,
                                        )
                                        .ok(),
                                    )
                                })
                                .collect::<Vec<_>>()
                        })
                    })
                    .collect();
                for handle in handles {
                    // mig-lint: allow(enclave-panic, "a panicked open lane is a caller bug (AesGcm::open returns Result); propagating the panic preserves fail-stop semantics")
                    for (i, pt) in handle.join().expect("open lane panicked") {
                        out[i] = pt;
                    }
                }
            });
            out
        };
        let verified = opened.iter().take_while(|pt| pt.is_some()).count();
        self.recv_seq += verified as u64;
        let ok = verified == ciphertexts.len();
        opened.truncate(verified);
        let prefix = opened.into_iter().flatten().collect();
        (prefix, ok)
    }
}

/// AAD binding every channel message to this protocol.
const CHANNEL_AAD: &[u8] = b"sgx-migrate.channel";

/// Worker-lane count actually used for a batch of `items` cells: the
/// configured count, clamped to the item count and to the host's
/// available parallelism. Lane assignment is by index modulo lanes, so
/// the clamp only changes scheduling, never bytes — extra lanes on a
/// single-core host are pure thread overhead.
fn effective_lanes(lanes: u32, items: usize) -> usize {
    let cores = std::thread::available_parallelism().map_or(1, std::num::NonZeroUsize::get);
    (lanes.max(1) as usize).min(items.max(1)).min(cores)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn pair() -> (SecureChannel, SecureChannel) {
        let key = [0x5A; 16];
        (
            SecureChannel::new(key, ChannelRole::Initiator),
            SecureChannel::new(key, ChannelRole::Responder),
        )
    }

    #[test]
    fn bidirectional_round_trip() {
        let (mut a, mut b) = pair();
        let ct1 = a.seal(b"hello");
        assert_eq!(b.open(&ct1).unwrap(), b"hello");
        let ct2 = b.seal(b"world");
        assert_eq!(a.open(&ct2).unwrap(), b"world");
    }

    #[test]
    fn sequences_are_independent_per_direction() {
        let (mut a, mut b) = pair();
        // Three messages one way, none the other.
        for i in 0..3u8 {
            let ct = a.seal(&[i]);
            assert_eq!(b.open(&ct).unwrap(), vec![i]);
        }
        let ct = b.seal(b"back");
        assert_eq!(a.open(&ct).unwrap(), b"back");
    }

    #[test]
    fn replay_is_rejected() {
        let (mut a, mut b) = pair();
        let ct = a.seal(b"once");
        assert_eq!(b.open(&ct).unwrap(), b"once");
        assert!(b.open(&ct).is_err(), "replay of the same ciphertext");
    }

    #[test]
    fn reordering_is_rejected() {
        let (mut a, mut b) = pair();
        let ct1 = a.seal(b"first");
        let ct2 = a.seal(b"second");
        assert!(b.open(&ct2).is_err(), "out-of-order delivery");
        // A failed open does not consume the receive sequence: in-order
        // delivery still succeeds afterwards.
        assert_eq!(b.open(&ct1).unwrap(), b"first");
        assert_eq!(b.open(&ct2).unwrap(), b"second");
    }

    #[test]
    fn tampering_is_rejected() {
        let (mut a, mut b) = pair();
        let mut ct = a.seal(b"payload");
        ct[0] ^= 1;
        assert!(b.open(&ct).is_err());
    }

    #[test]
    fn direction_confusion_rejected() {
        // A message sealed by the initiator cannot be opened by another
        // initiator-side endpoint (reflection attack).
        let key = [1u8; 16];
        let mut a = SecureChannel::new(key, ChannelRole::Initiator);
        let mut a2 = SecureChannel::new(key, ChannelRole::Initiator);
        let ct = a.seal(b"reflect");
        assert!(a2.open(&ct).is_err());
    }

    #[test]
    fn wrong_key_rejected() {
        let mut a = SecureChannel::new([1; 16], ChannelRole::Initiator);
        let mut b = SecureChannel::new([2; 16], ChannelRole::Responder);
        let ct = a.seal(b"x");
        assert!(b.open(&ct).is_err());
    }

    #[test]
    fn seal_many_matches_sequential_seals_for_every_lane_count() {
        let msgs: Vec<Vec<u8>> = (0..7u8).map(|i| vec![i; 40 + i as usize]).collect();
        let mut reference = SecureChannel::new([3; 16], ChannelRole::Initiator);
        let expected: Vec<Vec<u8>> = msgs.iter().map(|m| reference.seal(m)).collect();
        for lanes in [1, 2, 3, 8] {
            let mut c = SecureChannel::new([3; 16], ChannelRole::Initiator);
            assert_eq!(c.seal_many(&msgs, lanes), expected, "lanes={lanes}");
        }
        // Follow-on single seals continue the sequence space.
        let mut c = SecureChannel::new([3; 16], ChannelRole::Initiator);
        let _ = c.seal_many(&msgs[..3], 4);
        assert_eq!(c.seal(&msgs[3]), expected[3]);
    }

    #[test]
    fn seal_into_matches_seal_and_continues_sequence() {
        let mut reference = SecureChannel::new([4; 16], ChannelRole::Initiator);
        let expected: Vec<Vec<u8>> = (0..3u8).map(|i| reference.seal(&[i; 33])).collect();

        let mut c = SecureChannel::new([4; 16], ChannelRole::Initiator);
        let mut buf = b"hdr".to_vec();
        c.seal_into(&[0; 33], &mut buf);
        assert_eq!(&buf[..3], b"hdr");
        assert_eq!(buf[3..], expected[0]);
        // Mixing seal_into and seal shares one sequence space.
        assert_eq!(c.seal(&[1; 33]), expected[1]);
        let mut buf = Vec::new();
        c.seal_into(&[2; 33], &mut buf);
        assert_eq!(buf, expected[2]);
    }

    #[test]
    fn seal_many_framed_matches_length_prefixed_seal_many() {
        let msgs: Vec<Vec<u8>> = (0..5u8).map(|i| vec![i; 48]).collect();
        for lanes in [1, 2, 4] {
            let mut by_parts = SecureChannel::new([6; 16], ChannelRole::Responder);
            let mut expected = Vec::new();
            for ct in by_parts.seal_many(&msgs, lanes) {
                expected.extend_from_slice(&(ct.len() as u32).to_le_bytes());
                expected.extend_from_slice(&ct);
            }
            let mut framed = SecureChannel::new([6; 16], ChannelRole::Responder);
            let mut out = Vec::new();
            framed.seal_many_framed(&msgs, lanes, &mut out);
            assert_eq!(out, expected, "lanes={lanes}");
            // Both channels end at the same sequence number.
            assert_eq!(framed.seal(b"next"), by_parts.seal(b"next"));
        }
    }

    #[test]
    fn open_many_round_trips_and_keeps_prefix_on_failure() {
        let (mut a, mut b) = pair();
        let msgs: Vec<Vec<u8>> = (0..6u8).map(|i| vec![i; 64]).collect();
        let cts = a.seal_many(&msgs, 3);
        let refs: Vec<&[u8]> = cts.iter().map(Vec::as_slice).collect();
        let (opened, ok) = b.open_many(&refs, 3);
        assert!(ok);
        assert_eq!(opened, msgs);

        // A tampered cell mid-run: the verified prefix is kept, exactly
        // the cells before it consume receive sequence numbers, and the
        // channel continues in-order from there.
        let cts = a.seal_many(&msgs, 2);
        let mut tampered: Vec<Vec<u8>> = cts.clone();
        tampered[3][0] ^= 1;
        let refs: Vec<&[u8]> = tampered.iter().map(Vec::as_slice).collect();
        let (opened, ok) = b.open_many(&refs, 4);
        assert!(!ok);
        assert_eq!(opened, &msgs[..3]);
        // The untampered original of cell 3 still opens next in order.
        assert_eq!(b.open(&cts[3]).unwrap(), msgs[3]);
    }
}
