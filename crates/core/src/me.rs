//! The **Migration Enclave** (ME) — the per-machine trusted migration
//! manager (§V-B, §VI-A).
//!
//! One ME runs in each machine's management VM. It:
//!
//! * accepts local attestations from application enclaves and keeps one
//!   attested channel per application MRENCLAVE;
//! * on an outgoing `MigrateRequest`, mutually remote-attests the peer ME
//!   (same MRENCLAVE required), authenticates it as belonging to the same
//!   cloud operator via credential + transcript signatures, checks the
//!   migration policy, and forwards the migration data over the resulting
//!   secure channel;
//! * on an incoming transfer, matches the migrating enclave's MRENCLAVE
//!   to a locally attested enclave — forwarding immediately — or stores
//!   the data until such an enclave attests (§VI-A);
//! * retains outgoing migration data until the destination confirms
//!   delivery (`DONE`), per Fig. 2's error-handling rule.
//!
//! The ME is driven through its ECALL ABI ([`ops`]) by the untrusted
//! [`MeHost`](crate::host::MeHost); every input arrives over untrusted
//! channels and every secret crosses only inside attested channels.

use crate::error::MigError;
use crate::library::state::MigrationData;
use crate::msgs::{LibToMe, MeToLib, MeToMe};
use crate::operator::MeCredential;
use crate::policy::MigrationPolicy;
use crate::remote_attest::{transcript_bytes, RaConfig, RaInitiator, RaResponder, RaResponseQuote};
use crate::secure_channel::{ChannelRole, SecureChannel};
use crate::transfer::chunker::{chunk_count, ChunkAssembler, ChunkStream, TransferNonce};
use crate::transfer::delta::{self, DeltaManifest, PageDigests};
use crate::transfer::{AdaptiveLink, DrrScheduler, StreamDemand, TransferConfig, MIN_CHUNK_SIZE};
use mig_crypto::ed25519::{Signature, SigningKey, VerifyingKey};
use mig_crypto::x25519::PublicKey;
use sgx_sim::dh::{DhMsg2, DhResponder};
use sgx_sim::enclave::{EnclaveCode, EnclaveEnv};
use sgx_sim::ias::AttestationEvidence;
use sgx_sim::machine::MachineId;
use sgx_sim::measurement::{EnclaveImage, EnclaveSigner, MrEnclave};
use sgx_sim::wire::{WireReader, WireWriter};
use sgx_sim::SgxError;
use std::collections::HashMap;
use std::sync::{Arc, OnceLock};

/// ECALL opcodes of the Migration Enclave.
pub mod ops {
    /// Generate the ME's transcript-signing keypair; returns the public key.
    pub const KEYGEN: u32 = 1;
    /// Provision credential, operator root, IAS key, and policy.
    pub const PROVISION: u32 = 2;
    /// Begin a local-attestation session (returns DH Msg1).
    pub const LA_START: u32 = 3;
    /// Complete a local attestation (processes Msg2, returns Msg3 + info).
    pub const LA_MSG2: u32 = 4;
    /// Deliver an encrypted library→ME message.
    pub const LIB_MSG: u32 = 5;
    /// Remote attestation: incoming hello (destination side).
    pub const RA_HELLO: u32 = 6;
    /// Remote attestation: response received (source side).
    pub const RA_RESPONSE: u32 = 7;
    /// Remote attestation: finish received (destination side).
    pub const RA_FINISH: u32 = 8;
    /// Encrypted ME→ME transfer received (destination side).
    pub const TRANSFER: u32 = 9;
    /// Encrypted ME→ME acknowledgement received (source side).
    pub const ACK: u32 = 10;
    /// Re-dispatch retained migration data, optionally to a new
    /// destination (Fig. 2's error rule: "the migration data remains in
    /// the Migration Enclave on the source machine until the error is
    /// resolved or another destination machine is selected").
    pub const RETRY: u32 = 11;
    /// Seal the ME's durable state (identity, credential, retained
    /// migration data) for storage by the untrusted host, so retained
    /// data survives management-VM restarts.
    pub const PERSIST: u32 = 12;
    /// Restore the ME's durable state after a restart. Attested sessions
    /// and channels are ephemeral and must be re-established.
    pub const RESTORE: u32 = 13;
    /// Streaming-transfer progress query for a retained outgoing
    /// migration (diagnostics / resumable-migration orchestration).
    pub const STREAM_STAT: u32 = 14;
    /// Adaptive-controller state query for a destination link
    /// (diagnostics: current chunk size and send window).
    pub const LINK_STAT: u32 = 15;
}

/// The canonical Migration Enclave image. Identical on every machine, as
/// required for the MRENCLAVE-equality check during ME↔ME attestation.
#[must_use]
pub fn me_image() -> EnclaveImage {
    static IMAGE: OnceLock<EnclaveImage> = OnceLock::new();
    IMAGE
        .get_or_init(|| {
            let signer = EnclaveSigner::from_seed(*b"sgx-migrate me reference signer!");
            EnclaveImage::build(
                "sgx-migrate.migration-enclave",
                1,
                b"migration enclave reference implementation",
                &signer,
            )
        })
        .clone()
}

/// Writes an optional byte string (flag + length-prefixed bytes).
pub(crate) fn write_opt(w: &mut WireWriter, value: Option<&[u8]>) {
    match value {
        None => {
            w.u8(0);
        }
        Some(bytes) => {
            w.u8(1);
            w.bytes(bytes);
        }
    }
}

/// Reads an optional byte string.
pub(crate) fn read_opt(r: &mut WireReader<'_>) -> Result<Option<Vec<u8>>, SgxError> {
    match r.u8()? {
        0 => Ok(None),
        1 => Ok(Some(r.bytes_vec()?)),
        _ => Err(SgxError::Decode),
    }
}

/// Seals chunk `idx` of `stream` on `channel`, padded to the
/// destination's wire `cell`. Chunk payloads are encoded straight from
/// the stream's shared buffer ([`MeToMe::encode_chunk`]) — no per-chunk
/// clone.
///
/// Every stream frame towards one destination (announcements included)
/// is padded to the same cell so equal-length ciphertexts stay FIFO on
/// the size-ordered simulated network even when several streams'
/// frames interleave on the shared channel.
fn seal_chunk(stream: &ChunkStream, channel: &mut SecureChannel, idx: u32, cell: u32) -> Vec<u8> {
    let (payload, mac) = stream.chunk(idx);
    let pad = cell.saturating_sub(payload.len() as u32);
    channel.seal(&MeToMe::encode_chunk(
        &stream.nonce(),
        idx,
        payload,
        &mac,
        pad,
    ))
}

/// Action the untrusted host must take after a [`ops::LIB_MSG`] ECALL.
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum MeAction {
    /// Nothing to do (e.g. handshake already in flight; data queued).
    None,
    /// Open a connection to the destination ME: send the RA hello.
    ConnectRemote {
        /// Destination machine.
        destination: MachineId,
        /// `RaHello` bytes to deliver to the destination's ME host.
        hello: Vec<u8>,
    },
    /// A channel already exists: send this encrypted transfer.
    SendRemote {
        /// Destination machine.
        destination: MachineId,
        /// Channel-sealed [`MeToMe::Transfer`].
        transfer: Vec<u8>,
    },
    /// A channel exists and a streamed transfer is starting or resuming:
    /// send these encrypted frames in order.
    StreamRemote {
        /// Destination machine.
        destination: MachineId,
        /// Channel-sealed [`MeToMe`] stream frames (`ChunkStart` /
        /// `Chunk` / `ResumeRequest`).
        frames: Vec<Vec<u8>>,
    },
    /// (Destination side) relay this encrypted acknowledgement to the
    /// source ME.
    AckSource {
        /// Source machine.
        source: MachineId,
        /// Channel-sealed [`MeToMe::Delivered`].
        ack: Vec<u8>,
    },
}

impl MeAction {
    /// Serializes the action (ECALL output).
    #[must_use]
    pub fn to_bytes(&self) -> Vec<u8> {
        let mut w = WireWriter::new();
        match self {
            MeAction::None => {
                w.u8(0);
            }
            MeAction::ConnectRemote { destination, hello } => {
                w.u8(1);
                w.u64(destination.0);
                w.bytes(hello);
            }
            MeAction::SendRemote {
                destination,
                transfer,
            } => {
                w.u8(2);
                w.u64(destination.0);
                w.bytes(transfer);
            }
            MeAction::AckSource { source, ack } => {
                w.u8(3);
                w.u64(source.0);
                w.bytes(ack);
            }
            MeAction::StreamRemote {
                destination,
                frames,
            } => {
                w.u8(4);
                w.u64(destination.0);
                w.u32(frames.len() as u32);
                for frame in frames {
                    w.bytes(frame);
                }
            }
        }
        w.finish()
    }

    /// Parses an action.
    ///
    /// # Errors
    ///
    /// [`SgxError::Decode`] on malformed input.
    pub fn from_bytes(bytes: &[u8]) -> Result<Self, SgxError> {
        let mut r = WireReader::new(bytes);
        let action = match r.u8()? {
            0 => MeAction::None,
            1 => MeAction::ConnectRemote {
                destination: MachineId(r.u64()?),
                hello: r.bytes_vec()?,
            },
            2 => MeAction::SendRemote {
                destination: MachineId(r.u64()?),
                transfer: r.bytes_vec()?,
            },
            3 => MeAction::AckSource {
                source: MachineId(r.u64()?),
                ack: r.bytes_vec()?,
            },
            4 => {
                let destination = MachineId(r.u64()?);
                let n = r.u32()? as usize;
                let mut frames = Vec::with_capacity(n);
                for _ in 0..n {
                    frames.push(r.bytes_vec()?);
                }
                MeAction::StreamRemote {
                    destination,
                    frames,
                }
            }
            _ => return Err(SgxError::Decode),
        };
        r.finish()?;
        Ok(action)
    }
}

/// The authenticated RA response: responder's key+quote plus operator
/// credential and transcript signature (§V-B's "exchange signatures on
/// the transcript of the attestation protocol").
#[derive(Clone, Debug)]
pub struct RaResponseAuth {
    /// Responder's ephemeral key and quote.
    pub response: RaResponseQuote,
    /// Responder's operator credential.
    pub credential: MeCredential,
    /// Signature over `transcript || "R"` under the credentialed key.
    pub signature: Signature,
}

impl RaResponseAuth {
    /// Serializes for transport.
    #[must_use]
    pub fn to_bytes(&self) -> Vec<u8> {
        let mut w = WireWriter::new();
        w.bytes(&self.response.to_bytes());
        w.bytes(&self.credential.to_bytes());
        w.array(&self.signature.0);
        w.finish()
    }

    /// Parses from bytes.
    ///
    /// # Errors
    ///
    /// [`SgxError::Decode`] on malformed input.
    pub fn from_bytes(bytes: &[u8]) -> Result<Self, SgxError> {
        let mut r = WireReader::new(bytes);
        let response = RaResponseQuote::from_bytes(r.bytes()?)?;
        let credential = MeCredential::from_bytes(r.bytes()?)?;
        let signature = Signature(r.array::<64>()?);
        r.finish()?;
        Ok(RaResponseAuth {
            response,
            credential,
            signature,
        })
    }
}

/// The initiator's closing authentication message.
#[derive(Clone, Debug)]
pub struct RaFinishAuth {
    /// Initiator's operator credential.
    pub credential: MeCredential,
    /// Signature over `transcript || "I"` under the credentialed key.
    pub signature: Signature,
}

impl RaFinishAuth {
    /// Serializes for transport.
    #[must_use]
    pub fn to_bytes(&self) -> Vec<u8> {
        let mut w = WireWriter::new();
        w.bytes(&self.credential.to_bytes());
        w.array(&self.signature.0);
        w.finish()
    }

    /// Parses from bytes.
    ///
    /// # Errors
    ///
    /// [`SgxError::Decode`] on malformed input.
    pub fn from_bytes(bytes: &[u8]) -> Result<Self, SgxError> {
        let mut r = WireReader::new(bytes);
        let credential = MeCredential::from_bytes(r.bytes()?)?;
        let signature = Signature(r.array::<64>()?);
        r.finish()?;
        Ok(RaFinishAuth {
            credential,
            signature,
        })
    }
}

struct MeConfig {
    operator_root: VerifyingKey,
    ias_key: VerifyingKey,
    credential: MeCredential,
    policy: MigrationPolicy,
    transfer: TransferConfig,
}

/// Progress of a chunked outgoing transfer (persisted so a restarted ME
/// resumes *all* in-flight streams from their last acknowledged chunks).
struct OutgoingStream {
    nonce: TransferNonce,
    /// Chunk size the stream was started with (survives re-provisioning
    /// with a different [`TransferConfig`] and adaptive drift).
    chunk_size: u32,
    /// Length of the streamed payload: the full state for a full stream,
    /// the packed dirty pages for a delta stream.
    payload_len: u64,
    /// State generation this stream installs at the destination.
    generation: u64,
    /// `Some(base)` when the stream ships a dirty-page delta against the
    /// destination's retained generation `base`.
    delta_base: Option<u64>,
    /// Cumulative acknowledgement: chunks `< acked` are at the
    /// destination.
    acked: u32,
    /// Next chunk index to put on the wire (not persisted; reset to
    /// `acked` on restore).
    next_to_send: u32,
    /// A `ResumeRequest` is outstanding: the scheduler must not grant
    /// this stream chunks until the destination names the resume point
    /// (ephemeral; set whenever a resume renegotiation starts).
    awaiting_resume: bool,
}

impl OutgoingStream {
    fn n_chunks(&self) -> u32 {
        chunk_count(self.payload_len, self.chunk_size)
    }

    /// Whether every chunk has been cumulatively acknowledged.
    fn complete(&self) -> bool {
        self.acked >= self.n_chunks()
    }

    /// Wire cost of one frame of this stream in bytes — what the
    /// destination link's cell must cover while the stream is active.
    fn frame_cost(&self) -> u32 {
        if self.n_chunks() > 1 {
            self.chunk_size
        } else {
            (self.payload_len as u32).max(MIN_CHUNK_SIZE)
        }
    }
}

struct OutgoingMigration {
    destination: MachineId,
    data: MigrationData,
    /// Bulk state accompanying the Table I payload (possibly empty).
    /// Shared with the chunk stream and the generation cache — never
    /// cloned on the streaming path.
    state: Arc<[u8]>,
    sent: bool,
    /// The destination confirmed it parked the payload (`Stored`); the
    /// retained copy awaits `Delivered`. Ephemeral — a restore
    /// re-dispatches and the destination answers idempotently.
    stored: bool,
    /// Present once the transfer went (or is going) down the streamed
    /// path.
    stream: Option<OutgoingStream>,
}

impl OutgoingMigration {
    fn n_chunks(&self) -> u32 {
        self.stream.as_ref().map_or(0, OutgoingStream::n_chunks)
    }

    /// An announced stream that the destination has not fully
    /// acknowledged yet.
    fn stream_active(&self) -> bool {
        self.sent && self.stream.as_ref().is_some_and(|s| !s.complete())
    }
}

/// A chunked transfer being received (destination side).
struct InboundStream {
    source: MachineId,
    mr_enclave: MrEnclave,
    data: MigrationData,
    assembler: ChunkAssembler,
    /// State generation the stream installs.
    generation: u64,
    /// Present for a delta stream: the dirty-page manifest to apply onto
    /// the retained base generation once the payload completes.
    delta: Option<DeltaManifest>,
}

/// The last state generation an ME holds for an enclave measurement —
/// recorded on both ends of every completed streamed transfer so repeat
/// migrations can ship dirty-page deltas against it. The cache is
/// byte-budgeted ([`TransferConfig::cache_budget`]): least-recently-used
/// entries are evicted, and an evicted base simply falls back to a full
/// stream via the `DeltaNack` path.
struct CachedGeneration {
    generation: u64,
    state: Arc<[u8]>,
    /// LRU tick of the last insert or delta-base use (persisted so the
    /// eviction order survives restarts).
    last_used: u64,
}

struct PendingInbound {
    key: [u8; 16],
    g_i: PublicKey,
    g_r: PublicKey,
}

/// Evicts least-recently-used entries from a generation cache until the
/// retained state fits `budget` bytes (the [`TransferConfig::cache_budget`]
/// bound on the ME's delta-base memory and sealed-checkpoint footprint).
///
/// Entries in `pinned` are never evicted: an in-flight delta stream's
/// base must survive until the stream completes — a restarted ME
/// rebuilds the delta payload from it, and unlike the destination
/// (which NACKs a missing base back to a full stream) the source has no
/// fallback once the delta is announced. The budget may be exceeded
/// transiently while such streams are active.
fn evict_lru(
    cache: &mut HashMap<MrEnclave, CachedGeneration>,
    budget: u64,
    pinned: &std::collections::HashSet<MrEnclave>,
) {
    let mut total: u64 = cache.values().map(|c| c.state.len() as u64).sum();
    while total > budget {
        let Some((victim, len)) = cache
            .iter()
            .filter(|(mr, _)| !pinned.contains(*mr))
            .min_by_key(|(_, c)| c.last_used)
            .map(|(mr, c)| (*mr, c.state.len() as u64))
        else {
            break;
        };
        cache.remove(&victim);
        total -= len;
    }
}

/// The Migration Enclave's trusted state and logic.
///
/// Construct with [`MigrationEnclave::new`], load with
/// [`me_image`], then drive through [`ops`].
#[derive(Default)]
pub struct MigrationEnclave {
    signing: Option<SigningKey>,
    config: Option<MeConfig>,
    /// In-progress local attestations, keyed by host-chosen token.
    la_handshakes: HashMap<Vec<u8>, DhResponder>,
    /// Attested channels to local application enclaves, by MRENCLAVE
    /// (§VI-A: sessions are matched to enclaves by measurement).
    local_sessions: HashMap<MrEnclave, SecureChannel>,
    /// Outgoing migrations retained until the destination confirms.
    outgoing: HashMap<MrEnclave, OutgoingMigration>,
    /// In-progress outbound RA handshakes, keyed by requested destination.
    ra_out_pending: HashMap<MachineId, RaInitiator>,
    /// Inbound RA sessions awaiting the finish message.
    ra_in_pending: HashMap<MachineId, PendingInbound>,
    /// Established channels to destination MEs (this side initiated).
    channels_out: HashMap<MachineId, SecureChannel>,
    /// Established channels from source MEs (this side responded).
    channels_in: HashMap<MachineId, SecureChannel>,
    /// Incoming migration data (Table I payload + bulk state) stored
    /// until a matching enclave attests.
    pending_incoming: HashMap<MrEnclave, (MigrationData, Arc<[u8]>, MachineId)>,
    /// Delivered incoming data awaiting the library's DONE.
    awaiting_done: HashMap<MrEnclave, MachineId>,
    /// Chunked transfers in reception, keyed by transfer nonce.
    inbound_streams: HashMap<TransferNonce, InboundStream>,
    /// Transient source-side chunk caches (chain MACs precomputed);
    /// rebuilt on demand after a restore.
    out_streams: HashMap<MrEnclave, ChunkStream>,
    /// Transient manifests of outgoing delta streams (kept in lockstep
    /// with `out_streams`, rebuilt by the same O(state) diff — so a
    /// resume-to-zero re-announcement does not diff twice).
    out_manifests: HashMap<MrEnclave, DeltaManifest>,
    /// Last state generation held per enclave measurement (both roles:
    /// what we last shipped out and what we last received). Persisted;
    /// the delta base for repeat migrations. LRU-evicted beyond
    /// [`TransferConfig::cache_budget`].
    state_cache: HashMap<MrEnclave, CachedGeneration>,
    /// Monotonic tick stamping [`CachedGeneration::last_used`].
    cache_clock: u64,
    /// Per-destination adaptive chunk/window controllers. Ephemeral —
    /// a restarted ME re-seeds them from the provisioned config.
    links: HashMap<MachineId, AdaptiveLink>,
    /// Per-destination deficit-round-robin schedulers apportioning the
    /// shared link window among concurrent streams. Ephemeral —
    /// fairness state, not correctness state.
    schedulers: HashMap<MachineId, DrrScheduler<MrEnclave>>,
    /// Per-destination wire-cell high-water marks: every stream frame
    /// towards a destination is padded to its current cell so frames of
    /// concurrently multiplexed streams stay FIFO on the size-ordered
    /// network. Shrinks only when nothing is in flight. Ephemeral.
    wire_cells: HashMap<MachineId, u32>,
}

impl std::fmt::Debug for MigrationEnclave {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("MigrationEnclave")
            .field("provisioned", &self.config.is_some())
            .field("local_sessions", &self.local_sessions.len())
            .field("outgoing", &self.outgoing.len())
            .field("pending_incoming", &self.pending_incoming.len())
            .finish_non_exhaustive()
    }
}

impl MigrationEnclave {
    /// Creates an unprovisioned ME.
    #[must_use]
    pub fn new() -> Self {
        MigrationEnclave::default()
    }

    fn config(&self) -> Result<&MeConfig, MigError> {
        self.config.as_ref().ok_or(MigError::NotInitialized)
    }

    fn signing(&self) -> Result<&SigningKey, MigError> {
        self.signing.as_ref().ok_or(MigError::NotInitialized)
    }

    fn ra_config(&self, env: &EnclaveEnv<'_>) -> Result<RaConfig, MigError> {
        Ok(RaConfig {
            ias_key: self.config()?.ias_key,
            // Peer MEs must run the exact same ME build (§VI-A).
            expected_mr_enclave: env.identity().mr_enclave,
        })
    }

    /// Verifies a peer credential + transcript signature + policy.
    fn authenticate_peer(
        &self,
        credential: &MeCredential,
        claimed_machine: MachineId,
        transcript: &[u8],
        role_tag: &[u8],
        signature: &Signature,
    ) -> Result<(), MigError> {
        let cfg = self.config()?;
        credential.verify(&cfg.operator_root)?;
        if credential.machine != claimed_machine {
            return Err(MigError::PeerAuthenticationFailed(
                "credential machine mismatch",
            ));
        }
        let mut signed = transcript.to_vec();
        signed.extend_from_slice(role_tag);
        credential
            .me_key
            .verify(&signed, signature)
            .map_err(|_| MigError::PeerAuthenticationFailed("transcript signature"))?;
        cfg.policy.check(&cfg.credential, credential)?;
        Ok(())
    }

    // ------------------------------------------------------------------
    // Opcode handlers
    // ------------------------------------------------------------------

    fn op_keygen(&mut self, env: &mut EnclaveEnv<'_>) -> Result<Vec<u8>, MigError> {
        let mut seed = [0u8; 32];
        env.random_bytes(&mut seed);
        let key = SigningKey::from_seed(seed);
        let public = key.verifying_key();
        self.signing = Some(key);
        Ok(public.0.to_vec())
    }

    fn op_provision(&mut self, input: &[u8]) -> Result<Vec<u8>, MigError> {
        let mut r = WireReader::new(input);
        let credential = MeCredential::from_bytes(r.bytes()?)?;
        let operator_root = VerifyingKey(r.array()?);
        let ias_key = VerifyingKey(r.array()?);
        let policy = MigrationPolicy::from_bytes(r.bytes()?)?;
        // Optional trailing transfer tuning (older provisioning payloads
        // omit it).
        let transfer = if r.remaining() > 0 {
            TransferConfig::decode(&mut r)?
        } else {
            TransferConfig::default()
        };
        r.finish()?;

        // The credential must certify *our* signing key under the root we
        // are being provisioned with.
        let signing = self.signing()?;
        if credential.me_key != signing.verifying_key() {
            return Err(MigError::PeerAuthenticationFailed(
                "credential does not match our key",
            ));
        }
        credential.verify(&operator_root)?;
        self.config = Some(MeConfig {
            operator_root,
            ias_key,
            credential,
            policy,
            transfer,
        });
        Ok(vec![])
    }

    fn op_la_start(&mut self, env: &mut EnclaveEnv<'_>, input: &[u8]) -> Result<Vec<u8>, MigError> {
        let mut r = WireReader::new(input);
        let token = r.bytes_vec()?;
        r.finish()?;
        let (responder, msg1) = DhResponder::start(env);
        self.la_handshakes.insert(token, responder);
        Ok(msg1.to_bytes())
    }

    fn op_la_msg2(&mut self, env: &mut EnclaveEnv<'_>, input: &[u8]) -> Result<Vec<u8>, MigError> {
        let mut r = WireReader::new(input);
        let token = r.bytes_vec()?;
        let msg2 = DhMsg2::from_bytes(r.bytes()?)?;
        r.finish()?;

        let responder = self
            .la_handshakes
            .remove(&token)
            .ok_or(MigError::Protocol("unknown local-attestation token"))?;
        let (msg3, key, peer) = responder.process_msg2(env, &msg2)?;
        let mr = peer.mr_enclave;
        let mut channel = SecureChannel::new(key, ChannelRole::Responder);

        // If migration data for this measurement is parked, forward it now
        // (§VI-A: "the migration data will be stored until an enclave with
        // the matching MRENCLAVE value performs a local attestation"). The
        // parked copy is retained until the library confirms with DONE, so
        // an ME restart between forward and confirmation loses nothing.
        let forward = if let Some((data, state, source)) = self.pending_incoming.get(&mr) {
            let ct = channel.seal(&MeToLib::encode_incoming_migration(data, state));
            self.awaiting_done.insert(mr, *source);
            Some(ct)
        } else {
            None
        };
        self.local_sessions.insert(mr, channel);

        let mut w = WireWriter::new();
        w.bytes(&msg3.to_bytes());
        w.array(&mr.0);
        write_opt(&mut w, forward.as_deref());
        Ok(w.finish())
    }

    fn op_lib_msg(&mut self, env: &mut EnclaveEnv<'_>, input: &[u8]) -> Result<Vec<u8>, MigError> {
        let mut r = WireReader::new(input);
        let mr = MrEnclave(r.array()?);
        let ciphertext = r.bytes_vec()?;
        r.finish()?;

        let channel = self
            .local_sessions
            .get_mut(&mr)
            .ok_or(MigError::Protocol("no local session for enclave"))?;
        let plaintext = channel.open(&ciphertext)?;
        let action = match LibToMe::from_bytes(&plaintext)? {
            LibToMe::MigrateRequest {
                destination,
                data,
                state,
            } => {
                self.out_streams.remove(&mr);
                self.out_manifests.remove(&mr);
                self.outgoing.insert(
                    mr,
                    OutgoingMigration {
                        destination,
                        data,
                        state: state.into(),
                        sent: false,
                        stored: false,
                        stream: None,
                    },
                );
                self.dispatch_outgoing(env, destination)?
            }
            LibToMe::Done => {
                // Destination side: the library confirmed installation; the
                // parked copy can finally be dropped.
                let source = self
                    .awaiting_done
                    .remove(&mr)
                    .ok_or(MigError::Protocol("unexpected DONE"))?;
                self.pending_incoming.remove(&mr);
                let channel = self
                    .channels_in
                    .get_mut(&source)
                    .ok_or(MigError::Protocol("no channel to source"))?;
                let ack = channel.seal(&MeToMe::Delivered { mr_enclave: mr }.to_bytes());
                MeAction::AckSource { source, ack }
            }
        };
        Ok(action.to_bytes())
    }

    /// Chunks in flight (sent, not yet cumulatively acknowledged) across
    /// every stream towards `destination` — the consumed share of the
    /// link's shared window budget.
    fn in_flight_chunks(&self, destination: MachineId) -> u32 {
        self.outgoing
            .values()
            .filter(|mig| mig.destination == destination && mig.sent)
            .filter_map(|mig| mig.stream.as_ref())
            .map(|s| s.next_to_send.saturating_sub(s.acked))
            .sum()
    }

    /// Announced-and-incomplete streams towards `destination` (the
    /// occupancy counted against [`TransferConfig::max_streams`]).
    fn active_stream_count(&self, destination: MachineId) -> u32 {
        self.outgoing
            .values()
            .filter(|mig| mig.destination == destination && mig.stream_active())
            .count() as u32
    }

    /// Bumps the LRU clock and re-stamps `mr`'s cache entry (called on
    /// every delta-base use so hot bases survive the byte budget).
    fn cache_touch(&mut self, mr: &MrEnclave) {
        self.cache_clock += 1;
        let tick = self.cache_clock;
        if let Some(cached) = self.state_cache.get_mut(mr) {
            cached.last_used = tick;
        }
    }

    /// Inserts a generation into the per-measurement cache and evicts
    /// least-recently-used entries beyond the provisioned byte budget.
    /// An entry larger than the whole budget is itself evicted — the
    /// next repeat migration then simply streams in full.
    fn cache_insert(&mut self, mr: MrEnclave, generation: u64, state: Arc<[u8]>) {
        self.cache_clock += 1;
        let budget = self
            .config
            .as_ref()
            .map_or(u64::MAX, |c| c.transfer.cache_budget);
        self.state_cache.insert(
            mr,
            CachedGeneration {
                generation,
                state,
                last_used: self.cache_clock,
            },
        );
        // Bases referenced by announced-but-incomplete delta streams are
        // pinned: the stream's payload is rebuilt from them on restore.
        let pinned: std::collections::HashSet<MrEnclave> = self
            .outgoing
            .iter()
            .filter(|(_, mig)| {
                mig.stream
                    .as_ref()
                    .is_some_and(|s| s.delta_base.is_some() && !s.complete())
            })
            .map(|(mr, _)| *mr)
            .collect();
        evict_lru(&mut self.state_cache, budget, &pinned);
    }

    /// The destination's current wire cell: the uniform padded size of
    /// every stream frame on that link. Grows to `needed` while frames
    /// are in flight (a larger frame sealed later cannot overtake) and
    /// shrinks back only when the link is drained — a smaller frame
    /// sealed behind in-flight larger ones would arrive first on the
    /// size-ordered network and desync the channel.
    fn bump_cell(&mut self, destination: MachineId, needed: u32, in_flight_before: u32) -> u32 {
        let cell = self.wire_cells.entry(destination).or_insert(0);
        if in_flight_before == 0 {
            *cell = needed;
        } else {
            *cell = (*cell).max(needed);
        }
        *cell = (*cell).max(MIN_CHUNK_SIZE);
        *cell
    }

    /// Grants send slots across the ready streams towards `destination`
    /// — deficit round-robin over the shared link window — and seals the
    /// resulting frames: `leads` (announcements / re-announcements)
    /// first, each padded to the wire cell, then the granted chunks.
    fn pump_streams(
        &mut self,
        destination: MachineId,
        leads: Vec<MeToMe>,
        lead_cost: u32,
    ) -> Result<Vec<Vec<u8>>, MigError> {
        let transfer_cfg = self.config()?.transfer;
        let window = self
            .links
            .entry(destination)
            .or_insert_with(|| AdaptiveLink::new(&transfer_cfg))
            .window();
        let in_flight = self.in_flight_chunks(destination);
        let budget = window.saturating_sub(in_flight);

        // Demands of every stream that could put a chunk on the wire
        // right now, deterministic order.
        let mut demands: Vec<(MrEnclave, StreamDemand)> = self
            .outgoing
            .iter()
            .filter(|(_, mig)| mig.destination == destination && mig.sent)
            .filter_map(|(mr, mig)| mig.stream.as_ref().map(|s| (*mr, s)))
            .filter(|(_, s)| !s.awaiting_resume && s.next_to_send < s.n_chunks())
            .map(|(mr, s)| {
                (
                    mr,
                    StreamDemand {
                        pending_chunks: s.n_chunks() - s.next_to_send,
                        chunk_cost: u64::from(s.frame_cost()),
                    },
                )
            })
            .collect();
        demands.sort_by_key(|(mr, _)| mr.0);

        let grants = self
            .schedulers
            .entry(destination)
            .or_default()
            .allocate(budget, &demands);
        if leads.is_empty() && grants.is_empty() {
            return Ok(Vec::new());
        }

        // Rebuild transient chunk caches for everything about to send.
        for mr in &grants {
            self.ensure_out_stream(*mr)?;
        }

        // The cell must cover every frame of this batch: the granted
        // streams' chunk geometry and the lead frames' natural sizes.
        let lead_bytes: Vec<Vec<u8>> = leads.iter().map(MeToMe::to_bytes).collect();
        let mut needed = lead_cost;
        for (mr, demand) in &demands {
            if grants.contains(mr) {
                needed = needed.max(demand.chunk_cost as u32);
            }
        }
        for bytes in &lead_bytes {
            // A lead larger than the cell's frame size (a delta manifest
            // naming many pages) raises the cell so chunks sealed after
            // it cannot overtake it.
            needed = needed.max(MeToMe::cell_for_frame_len(bytes.len()));
        }
        let cell = self.bump_cell(destination, needed, in_flight);
        let target = MeToMe::chunk_frame_len(cell);

        let mut next: HashMap<MrEnclave, u32> = grants
            .iter()
            .map(|mr| {
                let s = self.outgoing[mr].stream.as_ref().expect("granted stream");
                (*mr, s.next_to_send)
            })
            .collect();
        let channel = self
            .channels_out
            .get_mut(&destination)
            .ok_or(MigError::Protocol("no channel to destination"))?;
        let mut frames = Vec::with_capacity(lead_bytes.len() + grants.len());
        for mut bytes in lead_bytes {
            MeToMe::pad_frame(&mut bytes, target);
            frames.push(channel.seal(&bytes));
        }
        for mr in &grants {
            let cache = self.out_streams.get(mr).expect("ensured above");
            let idx = next[mr];
            frames.push(seal_chunk(cache, channel, idx, cell));
            *next.get_mut(mr).expect("inserted above") += 1;
        }
        for (mr, n) in next {
            let stream = self
                .outgoing
                .get_mut(&mr)
                .and_then(|mig| mig.stream.as_mut())
                .expect("granted stream");
            stream.next_to_send = n;
        }
        Ok(frames)
    }

    /// Builds the announcement for a fresh stream of `mr` (delta against
    /// the cached base when profitable, full otherwise), registers the
    /// per-nonce stream state, and returns the unsealed start message.
    fn announce_stream(
        &mut self,
        env: &mut EnclaveEnv<'_>,
        mr: MrEnclave,
        chunk_size: u32,
    ) -> Result<MeToMe, MigError> {
        let transfer_cfg = self.config()?.transfer;
        let cached = self
            .state_cache
            .get(&mr)
            .map(|c| (c.generation, Arc::clone(&c.state)));
        if cached.is_some() {
            self.cache_touch(&mr);
        }
        let mut nonce: TransferNonce = [0; 16];
        env.random_bytes(&mut nonce);
        let mig = self
            .outgoing
            .get_mut(&mr)
            .ok_or(MigError::Protocol("no retained migration data"))?;
        let generation = cached.as_ref().map_or(0, |(g, _)| g + 1);
        // When a previous generation of this enclave's state is cached (a
        // repeat migration), diff against it and ship only the dirty
        // pages — unless the delta exceeds the provisioned fraction of
        // the full state, in which case the full stream is cheaper than
        // a delta that rewrites most pages anyway.
        let delta = cached.and_then(|(base_generation, base_state)| {
            let digests = PageDigests::compute(&base_state, delta::PAGE_SIZE);
            let (manifest, payload) =
                delta::diff(&digests, base_generation, generation, &mig.state);
            let within_budget = manifest.payload_len().saturating_mul(100)
                <= (mig.state.len() as u64)
                    .saturating_mul(u64::from(transfer_cfg.max_delta_percent));
            within_budget.then_some((manifest, payload))
        });
        let (stream, delta_base, start_msg) = match delta {
            Some((manifest, payload)) => {
                let stream = ChunkStream::new(nonce, chunk_size, payload);
                let delta_base = manifest.base_generation;
                let start = MeToMe::DeltaStart {
                    mr_enclave: mr,
                    nonce,
                    chunk_size,
                    payload_digest: stream.digest(),
                    manifest: manifest.clone(),
                    data: mig.data.clone(),
                };
                self.out_manifests.insert(mr, manifest);
                (stream, Some(delta_base), start)
            }
            None => {
                let stream = ChunkStream::new(nonce, chunk_size, Arc::clone(&mig.state));
                let start = MeToMe::ChunkStart {
                    mr_enclave: mr,
                    nonce,
                    generation,
                    total_len: stream.total_len(),
                    chunk_size,
                    state_digest: stream.digest(),
                    data: mig.data.clone(),
                };
                (stream, None, start)
            }
        };
        let mig = self.outgoing.get_mut(&mr).expect("present above");
        mig.sent = true;
        mig.stream = Some(OutgoingStream {
            nonce,
            chunk_size,
            payload_len: stream.total_len(),
            generation,
            delta_base,
            acked: 0,
            next_to_send: 0,
            awaiting_resume: false,
        });
        self.out_streams.insert(mr, stream);
        Ok(start_msg)
    }

    /// Sends or queues outgoing data for `destination`.
    ///
    /// With an open channel, every unsent migration towards the
    /// destination dispatches **concurrently** (up to
    /// [`TransferConfig::max_streams`]), multiplexed on the shared
    /// attested channel: streams that predate a crash/reconnect send a
    /// [`MeToMe::ResumeRequest`] renegotiating their per-nonce resume
    /// point, fresh large states announce a `ChunkStart`/`DeltaStart`
    /// and get their first chunks from the deficit-round-robin share of
    /// the link window, and small states ride the paper's single-shot
    /// [`MeToMe::Transfer`] when the link is quiet (on a busy link a
    /// small frame sealed behind in-flight cells would overtake them,
    /// so non-empty small states join the multiplex as single-chunk
    /// streams instead). Migrations beyond the stream cap stay queued
    /// and drain as streams complete.
    fn dispatch_outgoing(
        &mut self,
        env: &mut EnclaveEnv<'_>,
        destination: MachineId,
    ) -> Result<MeAction, MigError> {
        if !self.channels_out.contains_key(&destination) {
            if self.ra_out_pending.contains_key(&destination) {
                // Handshake already in flight; data stays queued.
                return Ok(MeAction::None);
            }
            let (session, hello) = RaInitiator::start(env)?;
            self.ra_out_pending.insert(destination, session);
            return Ok(MeAction::ConnectRemote {
                destination,
                hello: hello.to_bytes(),
            });
        }

        let transfer_cfg = self.config()?.transfer;
        let active = self.active_stream_count(destination);
        let unconfirmed_singleshot = self.outgoing.values().any(|mig| {
            mig.destination == destination && mig.sent && mig.stream.is_none() && !mig.stored
        });
        // Nothing this ME previously put on the wire towards the
        // destination can still be in flight.
        let quiet = active == 0 && !unconfirmed_singleshot;

        let mut unsent: Vec<MrEnclave> = self
            .outgoing
            .iter()
            .filter(|(_, mig)| mig.destination == destination && !mig.sent)
            .map(|(mr, _)| *mr)
            .collect();
        unsent.sort_by_key(|mr| mr.0);
        if unsent.is_empty() {
            return Ok(MeAction::None);
        }

        let mut slots = transfer_cfg.max_streams.saturating_sub(active);
        let fresh_count = unsent
            .iter()
            .filter(|mr| self.outgoing[*mr].stream.is_none())
            .count();
        // Decided up front, not while partitioning: a ResumeRequest is
        // smaller than a non-empty Transfer frame, so the two must never
        // share a batch regardless of MRENCLAVE sort order (the smaller
        // frame sealed second would overtake on the size-ordered
        // network).
        let batch_resumes = unsent.len() != fresh_count;
        let mut singleshots: Vec<MrEnclave> = Vec::new();
        let mut resumes: Vec<MrEnclave> = Vec::new();
        let mut announces: Vec<MrEnclave> = Vec::new();
        for mr in unsent {
            let mig = &self.outgoing[&mr];
            if mig.stream.is_some() {
                if slots > 0 {
                    resumes.push(mr);
                    slots -= 1;
                }
            } else if mig.state.is_empty() {
                // No bulk state: must ride the single-shot message (a
                // zero-length payload cannot chunk). Safe only on a
                // quiet link; otherwise it waits for the streams to
                // drain (dispatch re-runs on every completion).
                if quiet {
                    singleshots.push(mr);
                }
            } else if mig.state.len() <= transfer_cfg.stream_threshold as usize
                && quiet
                && fresh_count == 1
                && !batch_resumes
            {
                // Small-state fast path: the paper's single-shot
                // transfer, kept for the common sole-migration case.
                singleshots.push(mr);
            } else if slots > 0 && !unconfirmed_singleshot {
                // A non-empty single-shot Transfer still in flight is
                // *larger* than cell-padded chunk frames; announcing a
                // stream now would let its frames overtake the Transfer
                // on the size-ordered network and desync the channel.
                // Stay queued until the Stored/Delivered confirmation
                // re-runs dispatch (empty Transfers are smaller than
                // every stream frame and need no such gate).
                announces.push(mr);
                slots -= 1;
            }
        }

        // Seal order = arrival order on the size-ordered network:
        // single-shot transfers (empty ones are the smallest frames),
        // then resume requests, then cell-padded announcements + chunks.
        let mut frames = Vec::new();
        for mr in singleshots {
            let mig = self.outgoing.get_mut(&mr).expect("listed above");
            mig.sent = true;
            let msg = MeToMe::Transfer {
                mr_enclave: mr,
                data: mig.data.clone(),
                state: mig.state.to_vec(),
            };
            let channel = self
                .channels_out
                .get_mut(&destination)
                .expect("checked above");
            frames.push(channel.seal(&msg.to_bytes()));
        }
        for mr in resumes {
            let mig = self.outgoing.get_mut(&mr).expect("listed above");
            mig.sent = true;
            let stream = mig.stream.as_mut().expect("resume implies stream");
            // Anything this side believed in flight died with the old
            // channel; the destination's `Resume` names the true point.
            stream.next_to_send = stream.acked;
            stream.awaiting_resume = true;
            let msg = MeToMe::ResumeRequest {
                mr_enclave: mr,
                nonce: stream.nonce,
            };
            let channel = self
                .channels_out
                .get_mut(&destination)
                .expect("checked above");
            frames.push(channel.seal(&msg.to_bytes()));
        }
        if !announces.is_empty() {
            let chunk_size = self
                .links
                .entry(destination)
                .or_insert_with(|| AdaptiveLink::new(&transfer_cfg))
                .chunk_size();
            let mut leads = Vec::with_capacity(announces.len());
            let mut lead_cost = 0u32;
            for mr in announces {
                leads.push(self.announce_stream(env, mr, chunk_size)?);
                let stream = self.outgoing[&mr].stream.as_ref().expect("announced");
                lead_cost = lead_cost.max(stream.frame_cost());
            }
            frames.extend(self.pump_streams(destination, leads, lead_cost)?);
        }

        Ok(match frames.len() {
            0 => MeAction::None,
            1 => MeAction::SendRemote {
                destination,
                transfer: frames.remove(0),
            },
            _ => MeAction::StreamRemote {
                destination,
                frames,
            },
        })
    }

    /// Recomputes the delta payload of an outgoing delta stream from the
    /// cached base generation (deterministic: the same diff that was
    /// announced).
    fn delta_payload(&self, mr: MrEnclave) -> Result<(DeltaManifest, Vec<u8>), MigError> {
        let mig = self
            .outgoing
            .get(&mr)
            .ok_or(MigError::Protocol("no retained migration data"))?;
        let stream = mig
            .stream
            .as_ref()
            .ok_or(MigError::Protocol("no stream for migration"))?;
        let base_generation = stream
            .delta_base
            .ok_or(MigError::Protocol("stream is not a delta"))?;
        let cached = self
            .state_cache
            .get(&mr)
            .filter(|c| c.generation == base_generation)
            .ok_or(MigError::Protocol("delta base generation not cached"))?;
        let digests = PageDigests::compute(&cached.state, delta::PAGE_SIZE);
        let (manifest, payload) =
            delta::diff(&digests, base_generation, stream.generation, &mig.state);
        if payload.len() as u64 != stream.payload_len {
            return Err(MigError::Protocol(
                "delta payload drifted from announcement",
            ));
        }
        Ok((manifest, payload))
    }

    /// Rebuilds the transient chunk cache for `mr` after a restore.
    fn ensure_out_stream(&mut self, mr: MrEnclave) -> Result<(), MigError> {
        if self.out_streams.contains_key(&mr) {
            return Ok(());
        }
        let mig = self
            .outgoing
            .get(&mr)
            .ok_or(MigError::Protocol("no retained migration data"))?;
        let stream = mig
            .stream
            .as_ref()
            .ok_or(MigError::Protocol("no stream for migration"))?;
        let (nonce, chunk_size) = (stream.nonce, stream.chunk_size);
        let payload: Arc<[u8]> = if stream.delta_base.is_some() {
            let (manifest, payload) = self.delta_payload(mr)?;
            self.out_manifests.insert(mr, manifest);
            payload.into()
        } else {
            Arc::clone(&mig.state)
        };
        self.out_streams
            .insert(mr, ChunkStream::new(nonce, chunk_size, payload));
        Ok(())
    }

    /// Rebuilds the announcement frame (`ChunkStart` / `DeltaStart`) of
    /// the retained stream for `mr` — used when a resume renegotiation
    /// rewinds to chunk 0.
    fn rebuild_start_msg(&self, mr: MrEnclave) -> Result<MeToMe, MigError> {
        let mig = self
            .outgoing
            .get(&mr)
            .ok_or(MigError::Protocol("no retained migration data"))?;
        let stream = mig
            .stream
            .as_ref()
            .ok_or(MigError::Protocol("no stream for migration"))?;
        let cache = self
            .out_streams
            .get(&mr)
            .ok_or(MigError::Protocol("chunk cache not rebuilt"))?;
        Ok(match stream.delta_base {
            None => MeToMe::ChunkStart {
                mr_enclave: mr,
                nonce: stream.nonce,
                generation: stream.generation,
                total_len: cache.total_len(),
                chunk_size: cache.chunk_size(),
                state_digest: cache.digest(),
                data: mig.data.clone(),
            },
            Some(_) => MeToMe::DeltaStart {
                mr_enclave: mr,
                nonce: stream.nonce,
                chunk_size: cache.chunk_size(),
                payload_digest: cache.digest(),
                manifest: self
                    .out_manifests
                    .get(&mr)
                    .cloned()
                    .map_or_else(|| self.delta_payload(mr).map(|(m, _)| m), Ok)?,
                data: mig.data.clone(),
            },
        })
    }

    fn op_ra_hello(&mut self, env: &mut EnclaveEnv<'_>, input: &[u8]) -> Result<Vec<u8>, MigError> {
        let mut r = WireReader::new(input);
        let source = MachineId(r.u64()?);
        let g_i = PublicKey(r.array()?);
        let evidence = AttestationEvidence::from_bytes(r.bytes()?)?;
        r.finish()?;

        let cfg = self.ra_config(env)?;
        let (session, response) = RaResponder::respond(env, &cfg, g_i, &evidence)?;
        let (g_i, g_r) = session.keys();
        let transcript = transcript_bytes(&g_i, &g_r, &env.identity().mr_enclave);
        let mut signed = transcript;
        signed.extend_from_slice(b"R");
        let signature = self.signing()?.sign(&signed);
        let auth = RaResponseAuth {
            response,
            credential: self.config()?.credential.clone(),
            signature,
        };
        self.ra_in_pending.insert(
            source,
            PendingInbound {
                key: session.session_key(),
                g_i,
                g_r,
            },
        );
        Ok(auth.to_bytes())
    }

    fn op_ra_response(
        &mut self,
        env: &mut EnclaveEnv<'_>,
        input: &[u8],
    ) -> Result<Vec<u8>, MigError> {
        let mut r = WireReader::new(input);
        let destination = MachineId(r.u64()?);
        let g_r = PublicKey(r.array()?);
        let evidence = AttestationEvidence::from_bytes(r.bytes()?)?;
        let credential = MeCredential::from_bytes(r.bytes()?)?;
        let signature = Signature(r.array::<64>()?);
        r.finish()?;

        let session = self
            .ra_out_pending
            .remove(&destination)
            .ok_or(MigError::Protocol("no RA handshake for destination"))?;
        let g_i = session.g_i();
        let cfg = self.ra_config(env)?;
        let key = session.process_response(&cfg, g_r, &evidence)?;

        let transcript = transcript_bytes(&g_i, &g_r, &env.identity().mr_enclave);
        self.authenticate_peer(&credential, destination, &transcript, b"R", &signature)?;

        // Channel up: authenticate ourselves and dispatch the first
        // queued migration (chunked transfers serialize per destination;
        // the rest of the queue drains as Delivered/Stored acks free the
        // channel — see `op_ack`).
        let mut signed = transcript;
        signed.extend_from_slice(b"I");
        let finish = RaFinishAuth {
            credential: self.config()?.credential.clone(),
            signature: self.signing()?.sign(&signed),
        };
        self.channels_out
            .insert(destination, SecureChannel::new(key, ChannelRole::Initiator));
        let transfers = match self.dispatch_outgoing(env, destination)? {
            MeAction::None => Vec::new(),
            MeAction::SendRemote { transfer, .. } => vec![transfer],
            MeAction::StreamRemote { frames, .. } => frames,
            _ => return Err(MigError::Protocol("unexpected dispatch action")),
        };

        let mut w = WireWriter::new();
        w.bytes(&finish.to_bytes());
        w.u32(transfers.len() as u32);
        for transfer in &transfers {
            w.bytes(transfer);
        }
        Ok(w.finish())
    }

    fn op_retry(&mut self, env: &mut EnclaveEnv<'_>, input: &[u8]) -> Result<Vec<u8>, MigError> {
        let mut r = WireReader::new(input);
        let mr = MrEnclave(r.array()?);
        let destination = MachineId(r.u64()?);
        r.finish()?;

        let outgoing = self
            .outgoing
            .get_mut(&mr)
            .ok_or(MigError::Protocol("no retained migration data"))?;
        outgoing.destination = destination;
        // The failure being retried may be a dead peer channel (e.g. the
        // destination's management VM restarted); drop any cached state
        // towards the destination so a fresh mutual attestation runs.
        // Every migration multiplexed on that channel lost its in-flight
        // frames with it, so mark them all unsent: the reconnect
        // renegotiates each stream's resume point per nonce.
        self.channels_out.remove(&destination);
        self.ra_out_pending.remove(&destination);
        self.schedulers.remove(&destination);
        self.wire_cells.remove(&destination);
        for mig in self
            .outgoing
            .values_mut()
            .filter(|mig| mig.destination == destination)
        {
            mig.sent = false;
            mig.stored = false;
            if let Some(stream) = mig.stream.as_mut() {
                stream.next_to_send = stream.acked;
                stream.awaiting_resume = false;
            }
        }
        let action = self.dispatch_outgoing(env, destination)?;
        Ok(action.to_bytes())
    }

    /// AAD tag binding sealed ME-state blobs.
    const STATE_AAD: &'static [u8] = b"sgx-migrate.me-state.v1";

    fn op_persist(&mut self, env: &mut EnclaveEnv<'_>) -> Result<Vec<u8>, MigError> {
        let signing = self.signing()?;
        let cfg = self.config()?;
        let mut w = WireWriter::new();
        w.array(signing.seed());
        w.bytes(&cfg.credential.to_bytes());
        w.array(&cfg.operator_root.0);
        w.array(&cfg.ias_key.0);
        w.bytes(&cfg.policy.to_bytes());
        cfg.transfer.encode(&mut w);
        w.u32(self.outgoing.len() as u32);
        for (mr, mig) in &self.outgoing {
            w.array(&mr.0);
            w.u64(mig.destination.0);
            w.bytes(&mig.data.to_bytes());
            w.bytes(&mig.state);
            match &mig.stream {
                None => {
                    w.u8(0);
                }
                Some(stream) => {
                    w.u8(1);
                    w.array(&stream.nonce);
                    w.u32(stream.chunk_size);
                    w.u64(stream.payload_len);
                    w.u64(stream.generation);
                    match stream.delta_base {
                        None => {
                            w.u8(0);
                        }
                        Some(base) => {
                            w.u8(1);
                            w.u64(base);
                        }
                    }
                    w.u32(stream.acked);
                }
            }
        }
        w.u32(self.pending_incoming.len() as u32);
        for (mr, (data, state, source)) in &self.pending_incoming {
            w.array(&mr.0);
            w.bytes(&data.to_bytes());
            w.bytes(state);
            w.u64(source.0);
        }
        w.u32(self.inbound_streams.len() as u32);
        for (nonce, inbound) in &self.inbound_streams {
            w.array(nonce);
            w.u64(inbound.source.0);
            w.array(&inbound.mr_enclave.0);
            w.bytes(&inbound.data.to_bytes());
            w.bytes(&inbound.assembler.to_bytes());
            w.u64(inbound.generation);
            write_opt(
                &mut w,
                inbound
                    .delta
                    .as_ref()
                    .map(DeltaManifest::to_bytes)
                    .as_deref(),
            );
        }
        w.u32(self.state_cache.len() as u32);
        for (mr, cached) in &self.state_cache {
            w.array(&mr.0);
            w.u64(cached.generation);
            w.u64(cached.last_used);
            w.bytes(&cached.state);
        }
        w.u64(self.cache_clock);
        let plaintext = w.finish();
        Ok(env.seal_data(
            sgx_sim::cpu::KeyPolicy::MrEnclave,
            Self::STATE_AAD,
            &plaintext,
        ))
    }

    fn op_restore(&mut self, env: &mut EnclaveEnv<'_>, input: &[u8]) -> Result<Vec<u8>, MigError> {
        let (plaintext, aad) = env.unseal_data(input)?;
        if aad != Self::STATE_AAD {
            return Err(MigError::Sgx(SgxError::Decode));
        }
        let mut r = WireReader::new(&plaintext);
        let seed: [u8; 32] = r.array()?;
        let credential = MeCredential::from_bytes(r.bytes()?)?;
        let operator_root = VerifyingKey(r.array()?);
        let ias_key = VerifyingKey(r.array()?);
        let policy = MigrationPolicy::from_bytes(r.bytes()?)?;
        let transfer = TransferConfig::decode(&mut r)?;
        let n_outgoing = r.u32()? as usize;
        let mut outgoing = HashMap::new();
        for _ in 0..n_outgoing {
            let mr = MrEnclave(r.array()?);
            let destination = MachineId(r.u64()?);
            let data = MigrationData::from_bytes(r.bytes()?)?;
            let state = r.bytes_vec()?;
            let stream = match r.u8()? {
                0 => None,
                1 => {
                    let nonce: TransferNonce = r.array()?;
                    let chunk_size = r.u32()?;
                    let payload_len = r.u64()?;
                    let generation = r.u64()?;
                    let delta_base = match r.u8()? {
                        0 => None,
                        1 => Some(r.u64()?),
                        _ => return Err(MigError::Sgx(SgxError::Decode)),
                    };
                    let acked = r.u32()?;
                    Some(OutgoingStream {
                        nonce,
                        chunk_size,
                        payload_len,
                        generation,
                        delta_base,
                        acked,
                        // Anything past the last ack may be lost in
                        // flight; resend from there.
                        next_to_send: acked,
                        awaiting_resume: false,
                    })
                }
                _ => return Err(MigError::Sgx(SgxError::Decode)),
            };
            // Not yet confirmed delivered: mark unsent so a retry
            // re-dispatches it (resuming the stream) over a fresh
            // channel.
            outgoing.insert(
                mr,
                OutgoingMigration {
                    destination,
                    data,
                    state: state.into(),
                    sent: false,
                    stored: false,
                    stream,
                },
            );
        }
        let n_pending = r.u32()? as usize;
        let mut pending_incoming = HashMap::new();
        for _ in 0..n_pending {
            let mr = MrEnclave(r.array()?);
            let data = MigrationData::from_bytes(r.bytes()?)?;
            let state: Arc<[u8]> = r.bytes_vec()?.into();
            let source = MachineId(r.u64()?);
            pending_incoming.insert(mr, (data, state, source));
        }
        let n_inbound = r.u32()? as usize;
        let mut inbound_streams = HashMap::new();
        for _ in 0..n_inbound {
            let nonce: TransferNonce = r.array()?;
            let source = MachineId(r.u64()?);
            let mr_enclave = MrEnclave(r.array()?);
            let data = MigrationData::from_bytes(r.bytes()?)?;
            let assembler = ChunkAssembler::from_bytes(r.bytes()?)?;
            let generation = r.u64()?;
            let delta = match read_opt(&mut r)? {
                None => None,
                Some(bytes) => Some(DeltaManifest::from_bytes(&bytes)?),
            };
            inbound_streams.insert(
                nonce,
                InboundStream {
                    source,
                    mr_enclave,
                    data,
                    assembler,
                    generation,
                    delta,
                },
            );
        }
        let n_cached = r.u32()? as usize;
        let mut state_cache = HashMap::new();
        for _ in 0..n_cached {
            let mr = MrEnclave(r.array()?);
            let generation = r.u64()?;
            let last_used = r.u64()?;
            let state: Arc<[u8]> = r.bytes_vec()?.into();
            state_cache.insert(
                mr,
                CachedGeneration {
                    generation,
                    state,
                    last_used,
                },
            );
        }
        let cache_clock = r.u64()?;
        r.finish()?;

        let signing = SigningKey::from_seed(seed);
        if credential.me_key != signing.verifying_key() {
            return Err(MigError::PeerAuthenticationFailed(
                "restored credential does not match key",
            ));
        }
        credential.verify(&operator_root)?;
        self.signing = Some(signing);
        self.config = Some(MeConfig {
            operator_root,
            ias_key,
            credential,
            policy,
            transfer,
        });
        self.outgoing = outgoing;
        self.pending_incoming = pending_incoming;
        self.inbound_streams = inbound_streams;
        self.state_cache = state_cache;
        self.cache_clock = cache_clock;
        self.out_streams.clear();
        self.out_manifests.clear();
        // Adaptive link, scheduler, and wire-cell state is ephemeral:
        // re-seeded from the provisioned config on the next stream.
        self.links.clear();
        self.schedulers.clear();
        self.wire_cells.clear();
        Ok(vec![])
    }

    /// Accepts complete incoming migration data: parks it, forwards to a
    /// matching attested enclave if present, or tells the source it is
    /// stored. Returns the encoded `TRANSFER` output.
    fn accept_incoming(
        &mut self,
        source: MachineId,
        mr_enclave: MrEnclave,
        data: MigrationData,
        state: Arc<[u8]>,
        final_ack: Option<Vec<u8>>,
    ) -> Vec<u8> {
        // Park the data regardless; it is only dropped once the
        // destination library confirms with DONE (crash safety). The
        // Arc is shared with the caller and the generation cache.
        self.pending_incoming
            .insert(mr_enclave, (data.clone(), Arc::clone(&state), source));
        if let Some(local) = self.local_sessions.get_mut(&mr_enclave) {
            let forward = local.seal(&MeToLib::encode_incoming_migration(&data, &state));
            self.awaiting_done.insert(mr_enclave, source);
            let mut w = WireWriter::new();
            w.u8(1); // forwarded
            w.array(&mr_enclave.0);
            write_opt(&mut w, Some(&forward));
            write_opt(&mut w, final_ack.as_deref());
            w.finish()
        } else {
            // No matching enclave yet; tell the source the data is
            // stored (it keeps its copy). A chunked transfer's final
            // cumulative ack already means "stored"; reuse it.
            let ack = final_ack.unwrap_or_else(|| {
                let channel = self
                    .channels_in
                    .get_mut(&source)
                    .expect("caller verified the channel");
                channel.seal(&MeToMe::Stored { mr_enclave }.to_bytes())
            });
            let mut w = WireWriter::new();
            w.u8(2); // stored
            w.array(&mr_enclave.0);
            write_opt(&mut w, None);
            write_opt(&mut w, Some(&ack));
            w.finish()
        }
    }

    fn op_transfer(&mut self, input: &[u8]) -> Result<Vec<u8>, MigError> {
        let mut r = WireReader::new(input);
        let source = MachineId(r.u64()?);
        let ciphertext = r.bytes_vec()?;
        r.finish()?;

        let channel = self
            .channels_in
            .get_mut(&source)
            .ok_or(MigError::Protocol("no channel from source"))?;
        let plaintext = channel.open(&ciphertext)?;
        match MeToMe::from_bytes(&plaintext)? {
            MeToMe::Transfer {
                mr_enclave,
                data,
                state,
            } => Ok(self.accept_incoming(source, mr_enclave, data, state.into(), None)),
            MeToMe::ChunkStart {
                mr_enclave,
                nonce,
                generation,
                total_len,
                chunk_size,
                state_digest,
                data,
            } => {
                // A repeated announcement (stream restarted from 0)
                // replaces any stale partial state for this nonce.
                let assembler = ChunkAssembler::new(nonce, chunk_size, total_len, state_digest)?;
                self.inbound_streams.insert(
                    nonce,
                    InboundStream {
                        source,
                        mr_enclave,
                        data,
                        assembler,
                        generation,
                        delta: None,
                    },
                );
                let mut w = WireWriter::new();
                w.u8(3); // stream progress
                w.array(&mr_enclave.0);
                write_opt(&mut w, None);
                write_opt(&mut w, None);
                Ok(w.finish())
            }
            MeToMe::DeltaStart {
                mr_enclave,
                nonce,
                chunk_size,
                payload_digest,
                manifest,
                data,
            } => {
                // Accept the delta stream even when we do not hold its
                // base generation: the payload is small by construction
                // (the source capped it at a fraction of the full state)
                // and NACKing *after* the last chunk keeps the channel
                // strictly FIFO — a NACK racing in-flight chunks would
                // let the restarted announcement overtake them on the
                // size-ordered network and desync the channel sequence.
                let assembler =
                    ChunkAssembler::new(nonce, chunk_size, manifest.payload_len(), payload_digest)?;
                let generation = manifest.new_generation;
                self.inbound_streams.insert(
                    nonce,
                    InboundStream {
                        source,
                        mr_enclave,
                        data,
                        assembler,
                        generation,
                        delta: Some(manifest),
                    },
                );
                let mut w = WireWriter::new();
                w.u8(3); // stream progress
                w.array(&mr_enclave.0);
                write_opt(&mut w, None);
                write_opt(&mut w, None);
                Ok(w.finish())
            }
            MeToMe::Chunk {
                nonce,
                idx,
                payload,
                mac,
                pad: _,
            } => {
                let inbound = self
                    .inbound_streams
                    .get_mut(&nonce)
                    .ok_or(MigError::Protocol("chunk for unknown stream"))?;
                if inbound.source != source {
                    return Err(MigError::Protocol("chunk from wrong source"));
                }
                if let Err(e) = inbound.assembler.accept(idx, &payload, &mac) {
                    // An out-of-order index is a loss artifact of the
                    // network: keep the verified prefix so a resume
                    // renegotiation continues from it. Anything else —
                    // a chain-MAC mismatch (cross-nonce splice, payload
                    // tamper) or a wrong length — is evidence of
                    // manipulation below the channel: quarantine *this*
                    // stream only (drop its partial state; a resume
                    // restarts it from chunk 0) and leave every other
                    // multiplexed stream untouched.
                    if !matches!(e, MigError::Transfer("chunk index out of order")) {
                        self.inbound_streams.remove(&nonce);
                    }
                    return Err(e);
                }
                let upto = inbound.assembler.next_idx();
                let mr_enclave = inbound.mr_enclave;
                if !inbound.assembler.is_complete() {
                    let ack = self
                        .channels_in
                        .get_mut(&source)
                        .expect("checked above")
                        .seal(&MeToMe::ChunkAck { nonce, upto }.to_bytes());
                    let mut w = WireWriter::new();
                    w.u8(3); // stream progress
                    w.array(&mr_enclave.0);
                    write_opt(&mut w, None);
                    write_opt(&mut w, Some(&ack));
                    return Ok(w.finish());
                }
                let inbound = self.inbound_streams.remove(&nonce).expect("present above");
                let payload = inbound.assembler.finish()?;
                // A delta payload is applied onto the retained base
                // generation (digest-verified before release); a full
                // payload *is* the state. A delta whose base we do not
                // hold (never seen, pruned, or a different generation)
                // is NACKed *in place of* the final ack — the source
                // restarts as a full stream with no frames left in
                // flight to race the restarted announcement.
                let state: Arc<[u8]> = match &inbound.delta {
                    Some(manifest) => {
                        // The base is content-addressed: generation
                        // number AND whole-state digest must match our
                        // retained copy (generations renumber after a
                        // fallback reset, so the number alone is not
                        // identity).
                        let base = self.state_cache.get(&mr_enclave).filter(|c| {
                            c.generation == manifest.base_generation
                                && c.state.len() as u64 == manifest.base_len
                                && mig_crypto::sha256::sha256(&c.state) == manifest.base_digest
                        });
                        match base {
                            Some(base) => {
                                let applied: Arc<[u8]> =
                                    delta::apply(&base.state, manifest, &payload)?.into();
                                self.cache_touch(&mr_enclave);
                                applied
                            }
                            None => {
                                let nack = self
                                    .channels_in
                                    .get_mut(&source)
                                    .expect("checked above")
                                    .seal(&MeToMe::DeltaNack { mr_enclave, nonce }.to_bytes());
                                let mut w = WireWriter::new();
                                w.u8(3); // stream progress
                                w.array(&mr_enclave.0);
                                write_opt(&mut w, None);
                                write_opt(&mut w, Some(&nack));
                                return Ok(w.finish());
                            }
                        }
                    }
                    None => payload.into(),
                };
                // Both ends retain the installed generation as the next
                // repeat migration's delta base (LRU-bounded; an evicted
                // base later NACKs back to a full stream).
                self.cache_insert(mr_enclave, inbound.generation, Arc::clone(&state));
                let ack = self
                    .channels_in
                    .get_mut(&source)
                    .expect("checked above")
                    .seal(&MeToMe::ChunkAck { nonce, upto }.to_bytes());
                Ok(self.accept_incoming(source, mr_enclave, inbound.data, state, Some(ack)))
            }
            MeToMe::ResumeRequest { mr_enclave, nonce } => {
                // Three cases: mid-stream partial (resume from next
                // index), already fully received (Stored — the normal
                // retention flow finishes delivery), or nothing known
                // (restart from 0).
                let reply = if let Some(inbound) = self.inbound_streams.get(&nonce) {
                    MeToMe::Resume {
                        nonce,
                        from_idx: inbound.assembler.next_idx(),
                    }
                } else if self.pending_incoming.contains_key(&mr_enclave) {
                    MeToMe::Stored { mr_enclave }
                } else {
                    MeToMe::Resume { nonce, from_idx: 0 }
                };
                let ack = self
                    .channels_in
                    .get_mut(&source)
                    .expect("checked above")
                    .seal(&reply.to_bytes());
                let mut w = WireWriter::new();
                w.u8(3); // stream progress
                w.array(&mr_enclave.0);
                write_opt(&mut w, None);
                write_opt(&mut w, Some(&ack));
                Ok(w.finish())
            }
            _ => Err(MigError::Protocol("unexpected ME-to-ME message")),
        }
    }

    /// Encodes the `ACK` ECALL output: kind, MRENCLAVE, optional
    /// completion ciphertext for the local library, and follow-on stream
    /// frames to send back to the destination.
    fn ack_output(kind: u8, mr: MrEnclave, complete: Option<&[u8]>, frames: &[Vec<u8>]) -> Vec<u8> {
        let mut w = WireWriter::new();
        w.u8(kind);
        w.array(&mr.0);
        write_opt(&mut w, complete);
        w.u32(frames.len() as u32);
        for frame in frames {
            w.bytes(frame);
        }
        w.finish()
    }

    /// Looks up the outgoing migration owning stream `nonce`.
    fn outgoing_by_nonce(&self, nonce: &TransferNonce) -> Result<MrEnclave, MigError> {
        self.outgoing
            .iter()
            .find(|(_, mig)| {
                mig.stream
                    .as_ref()
                    .is_some_and(|s| mig.sent && s.nonce == *nonce)
            })
            .map(|(mr, _)| *mr)
            .ok_or(MigError::Protocol("ack for unknown stream"))
    }

    /// Advances the outgoing stream `nonce` after a cumulative ack
    /// (`resume: false`) or a negotiated resume point (`resume: true`;
    /// `upto == 0` restarts the stream, fresh `ChunkStart` included),
    /// then refills the freed shared-window budget **across every
    /// stream** towards the destination (deficit round-robin), returning
    /// the owning MRENCLAVE and the frames to send.
    fn advance_stream(
        &mut self,
        destination: MachineId,
        nonce: TransferNonce,
        upto: u32,
        resume: bool,
    ) -> Result<(MrEnclave, Vec<Vec<u8>>), MigError> {
        let mr = self.outgoing_by_nonce(&nonce)?;
        // Per-nonce binding: an ack relayed from a different peer than
        // the stream's destination is a cross-stream splice attempt —
        // reject it without touching any stream's state.
        if self.outgoing[&mr].destination != destination {
            return Err(MigError::Protocol("ack from wrong destination"));
        }
        self.ensure_out_stream(mr)?;
        // Feed the adaptive controller: a cumulative ack is the healthy
        // signal that grows the window; a resume renegotiation is the
        // disruption that shrinks chunk size for *future* streams (the
        // current stream keeps its announced geometry).
        let transfer_cfg = self.config()?.transfer;
        {
            let link = self
                .links
                .entry(destination)
                .or_insert_with(|| AdaptiveLink::new(&transfer_cfg));
            if resume {
                link.on_disruption();
            } else {
                link.on_clean_ack();
            }
        }
        let mig = self.outgoing.get_mut(&mr).expect("found above");
        let n_chunks = mig.n_chunks();
        if upto > n_chunks {
            return Err(MigError::Protocol("ack/resume beyond stream end"));
        }
        let stream = mig.stream.as_mut().expect("stream checked above");
        if resume {
            // Anything past the negotiated point may be lost; rewind.
            stream.acked = upto;
            stream.next_to_send = upto;
            stream.awaiting_resume = false;
        } else {
            stream.acked = stream.acked.max(upto);
            stream.next_to_send = stream.next_to_send.max(stream.acked);
        }

        let (leads, lead_cost) = if resume && upto == 0 {
            // Rewind to the very beginning: re-announce the stream
            // (ChunkStart or DeltaStart, whichever it was).
            let cost = mig.stream.as_ref().expect("checked above").frame_cost();
            (vec![self.rebuild_start_msg(mr)?], cost)
        } else {
            (Vec::new(), 0)
        };
        let frames = self.pump_streams(destination, leads, lead_cost)?;
        Ok((mr, frames))
    }

    /// Converts a [`MeAction`] produced by `dispatch_outgoing` into raw
    /// frames for `destination` (used where the output encoding carries
    /// frames instead of an action).
    fn action_frames(action: MeAction) -> Vec<Vec<u8>> {
        match action {
            MeAction::SendRemote { transfer, .. } => vec![transfer],
            MeAction::StreamRemote { frames, .. } => frames,
            _ => Vec::new(),
        }
    }

    fn op_ack(&mut self, env: &mut EnclaveEnv<'_>, input: &[u8]) -> Result<Vec<u8>, MigError> {
        let mut r = WireReader::new(input);
        let destination = MachineId(r.u64()?);
        let ciphertext = r.bytes_vec()?;
        r.finish()?;

        let channel = self
            .channels_out
            .get_mut(&destination)
            .ok_or(MigError::Protocol("no channel to destination"))?;
        let plaintext = channel.open(&ciphertext)?;
        match MeToMe::from_bytes(&plaintext)? {
            MeToMe::Delivered { mr_enclave } => {
                // Delivery binding: only the migration's *current*
                // destination may release the retained copy (Fig. 2) —
                // a stale confirmation from a previous destination must
                // not destroy the frozen source's only copy mid-stream
                // towards the new one.
                if self
                    .outgoing
                    .get(&mr_enclave)
                    .is_some_and(|mig| mig.destination != destination)
                {
                    return Err(MigError::Protocol(
                        "delivery confirmation from wrong destination",
                    ));
                }
                // Safe to delete the retained migration data (Fig. 2).
                self.outgoing.remove(&mr_enclave);
                self.out_streams.remove(&mr_enclave);
                self.out_manifests.remove(&mr_enclave);
                // Tell the (frozen) source library, if still attested.
                let complete = self
                    .local_sessions
                    .get_mut(&mr_enclave)
                    .map(|local| local.seal(&MeToLib::MigrationComplete.to_bytes()));
                // The channel is free again: dispatch the next queued
                // migration for this destination, if any.
                let next = Self::action_frames(self.dispatch_outgoing(env, destination)?);
                Ok(Self::ack_output(1, mr_enclave, complete.as_deref(), &next))
            }
            MeToMe::Stored { mr_enclave } => {
                // Destination parked the data; retain ours until DONE —
                // but the stream slot (or single-shot confirmation) is
                // free for further queued migrations. Same binding as
                // Delivered: only the current destination's confirmation
                // may close the stream's accounting.
                let mut completed_stream = None;
                if let Some(mig) = self.outgoing.get_mut(&mr_enclave) {
                    if mig.destination != destination {
                        return Err(MigError::Protocol(
                            "storage confirmation from wrong destination",
                        ));
                    }
                    mig.stored = true;
                    if let Some(stream) = mig.stream.as_mut() {
                        // A resume renegotiation found the payload fully
                        // received: close out the stream's accounting.
                        let n = stream.n_chunks();
                        stream.acked = n;
                        stream.next_to_send = n;
                        stream.awaiting_resume = false;
                        completed_stream = Some((stream.generation, Arc::clone(&mig.state)));
                    }
                }
                // The destination holds (and caches) the full streamed
                // generation: record it as the delta base exactly as the
                // final-ChunkAck path does, so a repeat migration after
                // a Stored-closed resume still ships a delta.
                if let Some((generation, state)) = completed_stream {
                    self.cache_insert(mr_enclave, generation, state);
                }
                let next = Self::action_frames(self.dispatch_outgoing(env, destination)?);
                Ok(Self::ack_output(2, mr_enclave, None, &next))
            }
            MeToMe::ChunkAck { nonce, upto } => {
                let (mr, mut frames) = self.advance_stream(destination, nonce, upto, false)?;
                if upto
                    == self
                        .outgoing
                        .get(&mr)
                        .map_or(0, OutgoingMigration::n_chunks)
                {
                    // Final cumulative ack: the stream is fully at the
                    // destination (retained until Delivered). Record the
                    // shipped generation as the delta base for the next
                    // repeat migration, then let the freed stream slot
                    // start the next queued migration.
                    let completed = self.outgoing.get(&mr).and_then(|mig| {
                        mig.stream
                            .as_ref()
                            .map(|s| (s.generation, Arc::clone(&mig.state)))
                    });
                    if let Some((generation, state)) = completed {
                        self.cache_insert(mr, generation, state);
                    }
                    frames.extend(Self::action_frames(
                        self.dispatch_outgoing(env, destination)?,
                    ));
                }
                Ok(Self::ack_output(3, mr, None, &frames))
            }
            MeToMe::Resume { nonce, from_idx } => {
                // The destination told us where to pick the stream back
                // up after a crash (0 restarts, announcement included).
                let (mr, frames) = self.advance_stream(destination, nonce, from_idx, true)?;
                Ok(Self::ack_output(3, mr, None, &frames))
            }
            MeToMe::DeltaNack { mr_enclave, nonce } => {
                // The destination does not hold our delta base: drop the
                // stale cache entry and the delta stream, then restart
                // the transfer as a full stream over the same channel.
                let mr = self.outgoing_by_nonce(&nonce)?;
                if mr != mr_enclave {
                    return Err(MigError::Protocol("delta nack for wrong enclave"));
                }
                self.state_cache.remove(&mr);
                self.out_streams.remove(&mr);
                self.out_manifests.remove(&mr);
                let mig = self
                    .outgoing
                    .get_mut(&mr)
                    .ok_or(MigError::Protocol("no retained migration data"))?;
                mig.sent = false;
                mig.stream = None;
                let frames = Self::action_frames(self.dispatch_outgoing(env, destination)?);
                Ok(Self::ack_output(3, mr, None, &frames))
            }
            _ => Err(MigError::Protocol("unexpected message on ack path")),
        }
    }

    fn op_stream_stat(&self, input: &[u8]) -> Result<Vec<u8>, MigError> {
        let mut r = WireReader::new(input);
        let mr = MrEnclave(r.array()?);
        r.finish()?;
        let mut w = WireWriter::new();
        match self.outgoing.get(&mr) {
            Some(mig) => match &mig.stream {
                Some(stream) => {
                    w.u8(1);
                    w.u32(stream.acked);
                    w.u32(mig.n_chunks());
                    w.u64(mig.state.len() as u64);
                    w.u64(stream.payload_len);
                    w.u8(u8::from(stream.delta_base.is_some()));
                    w.u32(stream.chunk_size);
                }
                None => {
                    w.u8(2); // retained, not streamed
                    w.u64(mig.state.len() as u64);
                }
            },
            None => {
                w.u8(0); // nothing retained
            }
        }
        Ok(w.finish())
    }

    fn op_link_stat(&self, input: &[u8]) -> Result<Vec<u8>, MigError> {
        let mut r = WireReader::new(input);
        let destination = MachineId(r.u64()?);
        r.finish()?;
        let mut w = WireWriter::new();
        match self.links.get(&destination) {
            Some(link) => {
                w.u8(1);
                w.u32(link.chunk_size());
                w.u32(link.window());
            }
            None => {
                w.u8(0);
            }
        }
        // Per-stream state of the multiplexed link (diagnostics): every
        // announced stream towards the destination with its per-nonce
        // progress. The nonce itself stays inside the enclave — it keys
        // the chunk HMAC chain.
        let mut streams: Vec<(&MrEnclave, &OutgoingStream)> = self
            .outgoing
            .iter()
            .filter(|(_, mig)| mig.destination == destination && mig.sent)
            .filter_map(|(mr, mig)| mig.stream.as_ref().map(|s| (mr, s)))
            .collect();
        streams.sort_by_key(|(mr, _)| mr.0);
        w.u32(streams.len() as u32);
        for (mr, stream) in streams {
            w.array(&mr.0);
            w.u32(stream.acked);
            w.u32(stream.n_chunks());
            w.u32(stream.next_to_send.saturating_sub(stream.acked));
            w.u8(u8::from(stream.delta_base.is_some()));
            w.u8(u8::from(stream.awaiting_resume));
        }
        w.u32(self.wire_cells.get(&destination).copied().unwrap_or(0));
        Ok(w.finish())
    }
}

impl EnclaveCode for MigrationEnclave {
    fn ecall(
        &mut self,
        env: &mut EnclaveEnv<'_>,
        opcode: u32,
        input: &[u8],
    ) -> Result<Vec<u8>, SgxError> {
        let result = match opcode {
            ops::KEYGEN => self.op_keygen(env),
            ops::PROVISION => self.op_provision(input),
            ops::LA_START => self.op_la_start(env, input),
            ops::LA_MSG2 => self.op_la_msg2(env, input),
            ops::LIB_MSG => self.op_lib_msg(env, input),
            ops::RA_HELLO => self.op_ra_hello(env, input),
            ops::RA_RESPONSE => self.op_ra_response(env, input),
            ops::RA_FINISH => self.op_ra_finish_env(env, input),
            ops::TRANSFER => self.op_transfer(input),
            ops::ACK => self.op_ack(env, input),
            ops::RETRY => self.op_retry(env, input),
            ops::PERSIST => self.op_persist(env),
            ops::RESTORE => self.op_restore(env, input),
            ops::STREAM_STAT => self.op_stream_stat(input),
            ops::LINK_STAT => self.op_link_stat(input),
            _ => Err(MigError::Protocol("unknown opcode")),
        };
        result.map_err(SgxError::from)
    }
}

impl MigrationEnclave {
    /// RA finish with access to the enclave's own identity.
    fn op_ra_finish_env(
        &mut self,
        env: &mut EnclaveEnv<'_>,
        input: &[u8],
    ) -> Result<Vec<u8>, MigError> {
        let mut r = WireReader::new(input);
        let source = MachineId(r.u64()?);
        let finish = RaFinishAuth::from_bytes(r.bytes()?)?;
        r.finish()?;

        let pending = self
            .ra_in_pending
            .remove(&source)
            .ok_or(MigError::Protocol("no inbound RA session"))?;
        let transcript = transcript_bytes(&pending.g_i, &pending.g_r, &env.identity().mr_enclave);
        self.authenticate_peer(
            &finish.credential,
            source,
            &transcript,
            b"I",
            &finish.signature,
        )?;
        self.channels_in.insert(
            source,
            SecureChannel::new(pending.key, ChannelRole::Responder),
        );
        Ok(vec![])
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn entry(len: usize, last_used: u64) -> CachedGeneration {
        CachedGeneration {
            generation: 0,
            state: vec![0u8; len].into(),
            last_used,
        }
    }

    fn no_pins() -> std::collections::HashSet<MrEnclave> {
        std::collections::HashSet::new()
    }

    #[test]
    fn lru_eviction_respects_budget_and_recency() {
        let mut cache = HashMap::new();
        cache.insert(MrEnclave([1; 32]), entry(100, 1));
        cache.insert(MrEnclave([2; 32]), entry(100, 3));
        cache.insert(MrEnclave([3; 32]), entry(100, 2));
        evict_lru(&mut cache, 200, &no_pins());
        assert!(!cache.contains_key(&MrEnclave([1; 32])), "oldest evicted");
        assert!(cache.contains_key(&MrEnclave([2; 32])));
        assert!(cache.contains_key(&MrEnclave([3; 32])));
        // A touch (fresher tick) protects an entry from the next round.
        cache.get_mut(&MrEnclave([3; 32])).unwrap().last_used = 4;
        evict_lru(&mut cache, 100, &no_pins());
        assert!(cache.contains_key(&MrEnclave([3; 32])));
        assert_eq!(cache.len(), 1);
    }

    #[test]
    fn lru_eviction_drops_oversized_sole_entry() {
        let mut cache = HashMap::new();
        cache.insert(MrEnclave([1; 32]), entry(500, 1));
        evict_lru(&mut cache, 400, &no_pins());
        assert!(cache.is_empty(), "an entry larger than the budget goes too");
        // Zero entries never loop.
        evict_lru(&mut cache, 0, &no_pins());
    }

    #[test]
    fn lru_eviction_never_evicts_pinned_bases() {
        // An in-flight delta stream's base must survive even over
        // budget; the next-oldest unpinned entry goes instead, and if
        // everything left is pinned the budget is exceeded transiently.
        let mut cache = HashMap::new();
        cache.insert(MrEnclave([1; 32]), entry(100, 1)); // oldest, pinned
        cache.insert(MrEnclave([2; 32]), entry(100, 2));
        cache.insert(MrEnclave([3; 32]), entry(100, 3));
        let pinned: std::collections::HashSet<MrEnclave> =
            [MrEnclave([1; 32])].into_iter().collect();
        evict_lru(&mut cache, 200, &pinned);
        assert!(cache.contains_key(&MrEnclave([1; 32])), "pinned survives");
        assert!(!cache.contains_key(&MrEnclave([2; 32])), "next LRU goes");
        evict_lru(&mut cache, 50, &pinned);
        assert!(
            cache.contains_key(&MrEnclave([1; 32])),
            "pinned survives even a budget it alone exceeds"
        );
        assert_eq!(cache.len(), 1);
    }

    #[test]
    fn outgoing_stream_frame_cost_and_completion() {
        let mut stream = OutgoingStream {
            nonce: [0; 16],
            chunk_size: 64 * 1024,
            payload_len: 256 * 1024,
            generation: 0,
            delta_base: None,
            acked: 0,
            next_to_send: 0,
            awaiting_resume: false,
        };
        assert_eq!(stream.n_chunks(), 4);
        assert_eq!(
            stream.frame_cost(),
            64 * 1024,
            "multi-chunk cost = chunk size"
        );
        assert!(!stream.complete());
        stream.acked = 4;
        assert!(stream.complete());
        // A single-chunk stream costs its payload (floored at the
        // minimum chunk size).
        stream.payload_len = 1000;
        assert_eq!(stream.n_chunks(), 1);
        assert_eq!(stream.frame_cost(), MIN_CHUNK_SIZE);
        stream.payload_len = 20_000;
        assert_eq!(stream.frame_cost(), 20_000);
    }
}
