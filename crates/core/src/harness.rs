//! The migratable-enclave harness: composes application enclave logic
//! with the Migration Library behind a uniform ECALL ABI.
//!
//! An application provides an [`AppLogic`] implementation; the harness
//! wraps it in a [`MigratableEnclave`], which:
//!
//! * routes migration-control opcodes ([`ops`]) to the embedded
//!   [`MigrationLibrary`];
//! * routes all other opcodes to the application, giving it an
//!   [`AppCtx`] with both the library (for migratable sealing/counters)
//!   and the raw [`EnclaveEnv`];
//! * wraps **every** ECALL response in an envelope that carries the
//!   freshly resealed Table II blob whenever the library state changed,
//!   so the untrusted host can persist it (the paper's "handing the data
//!   in a sealed data blob over to the untrusted part", §VI-B).

use crate::error::MigError;
use crate::library::{InitRequest, LibPhase, MigrationLibrary};
use sgx_sim::enclave::{EnclaveCode, EnclaveEnv};
use sgx_sim::machine::MachineId;
use sgx_sim::measurement::MrEnclave;
use sgx_sim::wire::{WireReader, WireWriter};
use sgx_sim::SgxError;

/// Migration-control opcodes (all ≥ `0x1000`; application opcodes must
/// stay below).
pub mod ops {
    /// `migration_init` (Listing 1).
    pub const MIG_INIT: u32 = 0x1000;
    /// Local-attestation Msg1 in, Msg2 out.
    pub const ME_MSG1: u32 = 0x1001;
    /// Local-attestation Msg3 in.
    pub const ME_MSG3: u32 = 0x1002;
    /// `migration_start` (Listing 1).
    pub const MIG_START: u32 = 0x1003;
    /// Encrypted ME→library message in; optional encrypted reply out.
    pub const ME_CT: u32 = 0x1004;
    /// Library phase query (diagnostics).
    pub const PHASE: u32 = 0x1005;
    /// Staged bulk state query: returns the optional bulk payload (on a
    /// migration target, the state that arrived with the migration).
    pub const BULK_STATE: u32 = 0x1006;
}

/// First application-reserved opcode.
pub const APP_OPCODE_LIMIT: u32 = 0x1000;

/// Application logic hosted inside a migratable enclave.
pub trait AppLogic: Send {
    /// Handles an application ECALL. `ctx` exposes the Migration Library
    /// and the enclave environment.
    ///
    /// # Errors
    ///
    /// Application-defined; crosses the ECALL boundary as [`SgxError`].
    fn handle(
        &mut self,
        ctx: &mut AppCtx<'_, '_>,
        opcode: u32,
        input: &[u8],
    ) -> Result<Vec<u8>, SgxError>;

    /// Exports the enclave's in-memory state (used by the Gu-style
    /// data-memory migration baseline; the persistent-state framework
    /// never calls this).
    fn export_state(&self) -> Vec<u8> {
        Vec::new()
    }

    /// Restores in-memory state exported by [`AppLogic::export_state`].
    ///
    /// # Errors
    ///
    /// [`SgxError::Decode`] on malformed input.
    fn import_state(&mut self, _bytes: &[u8]) -> Result<(), SgxError> {
        Ok(())
    }
}

/// What an application ECALL can reach: the Migration Library and the
/// enclave environment.
pub struct AppCtx<'a, 'm> {
    /// The embedded Migration Library.
    pub lib: &'a mut MigrationLibrary,
    /// The current ECALL's enclave environment.
    pub env: &'a mut EnclaveEnv<'m>,
}

/// The enclave wrapper: Migration Library + application logic.
pub struct MigratableEnclave<A: AppLogic> {
    lib: Option<MigrationLibrary>,
    app: A,
}

impl<A: AppLogic> MigratableEnclave<A> {
    /// Wraps `app`; the library is created by the `MIG_INIT` ECALL.
    pub fn new(app: A) -> Self {
        MigratableEnclave { lib: None, app }
    }

    fn lib_mut(&mut self) -> Result<&mut MigrationLibrary, MigError> {
        self.lib.as_mut().ok_or(MigError::NotInitialized)
    }
}

/// Encodes the uniform ECALL response envelope: payload + optional
/// persist blob.
fn envelope(payload: &[u8], persist: Option<&[u8]>) -> Vec<u8> {
    let mut w = WireWriter::new();
    w.bytes(payload);
    crate::me::write_opt(&mut w, persist);
    w.finish()
}

/// Decodes the response envelope (host side).
///
/// # Errors
///
/// [`SgxError::Decode`] on malformed input.
pub fn open_envelope(bytes: &[u8]) -> Result<(Vec<u8>, Option<Vec<u8>>), SgxError> {
    let mut r = WireReader::new(bytes);
    let payload = r.bytes_vec()?;
    let persist = crate::me::read_opt(&mut r)?;
    r.finish()?;
    Ok((payload, persist))
}

/// Encodes a `MIG_INIT` request (host side).
#[must_use]
pub fn encode_init(expected_me: &MrEnclave, request: &InitRequest) -> Vec<u8> {
    let mut w = WireWriter::new();
    w.array(&expected_me.0);
    match request {
        InitRequest::New => {
            w.u8(0);
        }
        InitRequest::Restore { blob } => {
            w.u8(1);
            w.bytes(blob);
        }
        InitRequest::Migrate => {
            w.u8(2);
        }
    }
    w.finish()
}

fn decode_init(input: &[u8]) -> Result<(MrEnclave, InitRequest), SgxError> {
    let mut r = WireReader::new(input);
    let expected_me = MrEnclave(r.array()?);
    let request = match r.u8()? {
        0 => InitRequest::New,
        1 => InitRequest::Restore {
            blob: r.bytes_vec()?,
        },
        2 => InitRequest::Migrate,
        _ => return Err(SgxError::Decode),
    };
    r.finish()?;
    Ok((expected_me, request))
}

impl<A: AppLogic> EnclaveCode for MigratableEnclave<A> {
    fn ecall(
        &mut self,
        env: &mut EnclaveEnv<'_>,
        opcode: u32,
        input: &[u8],
    ) -> Result<Vec<u8>, SgxError> {
        let payload: Result<Vec<u8>, MigError> = match opcode {
            ops::MIG_INIT => {
                let (expected_me, request) = decode_init(input)?;
                let lib = MigrationLibrary::init(env, expected_me, request)?;
                self.lib = Some(lib);
                Ok(Vec::new())
            }
            ops::ME_MSG1 => self
                .lib_mut()
                .and_then(|lib| lib.me_attest_msg1(env, input)),
            ops::ME_MSG3 => self
                .lib_mut()
                .and_then(|lib| lib.me_attest_msg3(env, input).map(|()| Vec::new())),
            ops::MIG_START => {
                let mut r = WireReader::new(input);
                let destination = r
                    .u64()
                    .and_then(|d| r.finish().map(|()| MachineId(d)))
                    .map_err(MigError::Sgx);
                destination
                    .and_then(|dst| self.lib_mut().and_then(|lib| lib.start_migration(env, dst)))
            }
            ops::ME_CT => self.lib_mut().and_then(|lib| {
                lib.receive_me_message(env, input).map(|reply| {
                    let mut w = WireWriter::new();
                    crate::me::write_opt(&mut w, reply.as_deref());
                    w.finish()
                })
            }),
            ops::PHASE => {
                let phase = match &self.lib {
                    None => 0u8,
                    Some(lib) => match lib.phase() {
                        LibPhase::Operational => 1,
                        LibPhase::AwaitingMigration => 2,
                        LibPhase::Frozen => 3,
                    },
                };
                Ok(vec![phase])
            }
            ops::BULK_STATE => {
                let lib = self.lib.as_ref().ok_or(MigError::NotInitialized)?;
                let mut w = WireWriter::new();
                crate::me::write_opt(&mut w, lib.bulk_state());
                Ok(w.finish())
            }
            app_opcode if app_opcode < APP_OPCODE_LIMIT => {
                let lib = self.lib.as_mut().ok_or(MigError::NotInitialized)?;
                let mut ctx = AppCtx { lib, env };
                self.app
                    .handle(&mut ctx, app_opcode, input)
                    .map_err(MigError::Sgx)
            }
            _ => Err(MigError::Protocol("unknown migration opcode")),
        };
        let payload = payload.map_err(SgxError::from)?;
        let persist = self.lib.as_mut().and_then(MigrationLibrary::take_persist);
        Ok(envelope(&payload, persist.as_deref()))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn envelope_round_trip() {
        let enc = envelope(b"payload", Some(b"persist me"));
        let (payload, persist) = open_envelope(&enc).unwrap();
        assert_eq!(payload, b"payload");
        assert_eq!(persist.unwrap(), b"persist me");

        let enc = envelope(b"", None);
        let (payload, persist) = open_envelope(&enc).unwrap();
        assert!(payload.is_empty());
        assert!(persist.is_none());
    }

    #[test]
    fn init_encoding_round_trip() {
        let mr = MrEnclave([9; 32]);
        for request in [
            InitRequest::New,
            InitRequest::Restore {
                blob: vec![1, 2, 3],
            },
            InitRequest::Migrate,
        ] {
            let bytes = encode_init(&mr, &request);
            let (decoded_mr, decoded_req) = decode_init(&bytes).unwrap();
            assert_eq!(decoded_mr, mr);
            match (&request, &decoded_req) {
                (InitRequest::New, InitRequest::New) => {}
                (InitRequest::Restore { blob: a }, InitRequest::Restore { blob: b }) => {
                    assert_eq!(a, b);
                }
                (InitRequest::Migrate, InitRequest::Migrate) => {}
                _ => panic!("request kind changed in round trip"),
            }
        }
    }

    #[test]
    fn malformed_init_rejected() {
        assert!(decode_init(&[0u8; 3]).is_err());
        let mut bytes = encode_init(&MrEnclave([0; 32]), &InitRequest::New);
        bytes[32] = 9; // invalid kind
        assert!(decode_init(&bytes).is_err());
    }
}
