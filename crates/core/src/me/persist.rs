//! The **persist layer** of the Migration Enclave: the
//! generation-numbered "me-state" checkpoint codec (sealed for the
//! untrusted host via `PERSIST` / `RESTORE`) and the byte-budgeted,
//! LRU-evicted per-measurement generation cache that backs dirty-page
//! delta transfers.
//!
//! What survives a management-VM restart is exactly what correctness
//! needs: identity and provisioning, every retained outgoing migration
//! with its per-nonce [`StreamProgress`],
//! parked incoming data, partially received inbound streams (their
//! verified prefixes), and the generation cache with its LRU ticks.
//! Channels, schedulers, wire cells, and speculative staging are
//! ephemeral — rebuilt or renegotiated after the restore.

use crate::error::MigError;
use crate::library::state::MigrationData;
use crate::me::session::{OutgoingMigration, ReceiverFsm, SenderFsm, StreamProgress};
use crate::me::{MeConfig, MigrationEnclave};
use crate::operator::MeCredential;
use crate::policy::MigrationPolicy;
use crate::transfer::chunker::{ChunkAssembler, TransferNonce};
use crate::transfer::delta::DeltaManifest;
use crate::transfer::TransferConfig;
use mig_crypto::ed25519::{SigningKey, VerifyingKey};
use sgx_sim::enclave::EnclaveEnv;
use sgx_sim::machine::MachineId;
use sgx_sim::measurement::MrEnclave;
use sgx_sim::wire::{WireReader, WireWriter};
use sgx_sim::SgxError;
use std::collections::{HashMap, HashSet};
use std::sync::Arc;

use super::{read_opt, write_opt};

/// The last state generation an ME holds for an enclave measurement —
/// recorded on both ends of every completed streamed transfer so repeat
/// migrations can ship dirty-page deltas against it. The cache is
/// byte-budgeted ([`TransferConfig::cache_budget`]): least-recently-used
/// entries are evicted, and an evicted base simply falls back to a full
/// stream via the `DeltaNack` path.
pub(crate) struct CachedGeneration {
    pub(crate) generation: u64,
    pub(crate) state: Arc<[u8]>,
    /// LRU tick of the last insert or delta-base use (persisted so the
    /// eviction order survives restarts).
    pub(crate) last_used: u64,
}

/// Evicts least-recently-used entries from a generation cache until the
/// retained state fits `budget` bytes (the [`TransferConfig::cache_budget`]
/// bound on the ME's delta-base memory and sealed-checkpoint footprint).
///
/// Entries in `pinned` are never evicted: an in-flight delta stream's
/// base must survive until the stream completes — a restarted ME
/// rebuilds the delta payload from it, and unlike the destination
/// (which NACKs a missing base back to a full stream) the source has no
/// fallback once the delta is announced. The budget may be exceeded
/// transiently while such streams are active.
///
/// Returns the number of entries evicted (telemetry).
fn evict_lru(
    cache: &mut HashMap<MrEnclave, CachedGeneration>,
    budget: u64,
    pinned: &HashSet<MrEnclave>,
) -> u64 {
    let mut total: u64 = cache.values().map(|c| c.state.len() as u64).sum();
    let mut evicted = 0;
    while total > budget {
        let Some((victim, len)) = cache
            .iter()
            .filter(|(mr, _)| !pinned.contains(*mr))
            .min_by_key(|(_, c)| c.last_used)
            .map(|(mr, c)| (*mr, c.state.len() as u64))
        else {
            break;
        };
        cache.remove(&victim);
        total -= len;
        evicted += 1;
    }
    evicted
}

/// The per-measurement generation cache plus its monotonic LRU clock.
#[derive(Default)]
pub(crate) struct GenerationCache {
    entries: HashMap<MrEnclave, CachedGeneration>,
    clock: u64,
}

impl GenerationCache {
    pub(crate) fn get(&self, mr: &MrEnclave) -> Option<&CachedGeneration> {
        self.entries.get(mr)
    }

    pub(crate) fn remove(&mut self, mr: &MrEnclave) {
        self.entries.remove(mr);
    }

    /// Bumps the LRU clock and re-stamps `mr`'s entry (called on every
    /// delta-base use so hot bases survive the byte budget).
    pub(crate) fn touch(&mut self, mr: &MrEnclave) {
        self.clock += 1;
        let tick = self.clock;
        if let Some(cached) = self.entries.get_mut(mr) {
            cached.last_used = tick;
        }
    }

    /// Inserts a generation and evicts least-recently-used entries
    /// beyond `budget` (entries in `pinned` survive). An entry larger
    /// than the whole budget is itself evicted — the next repeat
    /// migration then simply streams in full. Returns how many entries
    /// the insert evicted (telemetry).
    pub(crate) fn insert(
        &mut self,
        mr: MrEnclave,
        generation: u64,
        state: Arc<[u8]>,
        budget: u64,
        pinned: &HashSet<MrEnclave>,
    ) -> u64 {
        self.clock += 1;
        self.entries.insert(
            mr,
            CachedGeneration {
                generation,
                state,
                last_used: self.clock,
            },
        );
        evict_lru(&mut self.entries, budget, pinned)
    }

    /// Total retained state bytes across every cached generation (the
    /// quantity [`evict_lru`] bounds; exported as a telemetry gauge).
    pub(crate) fn total_bytes(&self) -> u64 {
        self.entries.values().map(|c| c.state.len() as u64).sum()
    }

    /// The retained entry for `mr` iff it content-addresses the base
    /// named by `manifest`: generation number, length, AND whole-state
    /// digest must match (generations renumber after a fallback reset,
    /// so the number alone is not identity).
    pub(crate) fn delta_base(
        &self,
        mr: &MrEnclave,
        manifest: &DeltaManifest,
    ) -> Option<&CachedGeneration> {
        self.entries.get(mr).filter(|c| {
            c.generation == manifest.base_generation
                && c.state.len() as u64 == manifest.base_len
                && mig_crypto::ct::ct_eq(
                    &mig_crypto::sha256::sha256(&c.state),
                    &manifest.base_digest,
                )
        })
    }

    fn encode(&self, w: &mut WireWriter) {
        w.u32(self.entries.len() as u32);
        for (mr, cached) in &self.entries {
            w.array(&mr.0);
            w.u64(cached.generation);
            w.u64(cached.last_used);
            w.bytes(&cached.state);
        }
        w.u64(self.clock);
    }

    fn decode(r: &mut WireReader<'_>) -> Result<Self, SgxError> {
        let n = r.u32()? as usize;
        let mut entries = HashMap::new();
        for _ in 0..n {
            let mr = MrEnclave(r.array()?);
            let generation = r.u64()?;
            let last_used = r.u64()?;
            let state: Arc<[u8]> = r.bytes_vec()?.into();
            entries.insert(
                mr,
                CachedGeneration {
                    generation,
                    state,
                    last_used,
                },
            );
        }
        let clock = r.u64()?;
        Ok(GenerationCache { entries, clock })
    }
}

impl MigrationEnclave {
    /// Inserts a generation into the per-measurement cache under the
    /// provisioned byte budget. Bases referenced by announced-but-
    /// incomplete delta streams are pinned: the stream's payload is
    /// rebuilt from them on restore.
    pub(crate) fn cache_insert(&mut self, mr: MrEnclave, generation: u64, state: Arc<[u8]>) {
        let budget = self
            .config
            .as_ref()
            .map_or(u64::MAX, |c| c.transfer.cache_budget);
        let pinned: HashSet<MrEnclave> = self
            .outgoing
            .iter()
            .filter(|(_, mig)| {
                mig.fsm
                    .stream()
                    .is_some_and(|s| s.delta_base().is_some() && !s.complete())
            })
            .map(|(mr, _)| *mr)
            .collect();
        let evicted = self.cache.insert(mr, generation, state, budget, &pinned);
        self.telemetry.cache_evictions += evicted;
    }

    /// AAD tag binding sealed ME-state blobs.
    const STATE_AAD: &'static [u8] = b"sgx-migrate.me-state.v1";

    pub(super) fn op_persist(&mut self, env: &mut EnclaveEnv<'_>) -> Result<Vec<u8>, MigError> {
        let signing = self.signing()?;
        let cfg = self.config()?;
        let mut w = WireWriter::new();
        w.array(signing.seed());
        w.bytes(&cfg.credential.to_bytes());
        w.array(&cfg.operator_root.0);
        w.array(&cfg.ias_key.0);
        w.bytes(&cfg.policy.to_bytes());
        cfg.transfer.encode(&mut w);
        w.u32(self.outgoing.len() as u32);
        for (mr, mig) in &self.outgoing {
            w.array(&mr.0);
            w.u64(mig.destination.0);
            w.bytes(&mig.data.to_bytes());
            w.bytes(&mig.state);
            match mig.fsm.stream() {
                None => {
                    w.u8(0);
                }
                Some(stream) => {
                    w.u8(1);
                    w.array(&stream.nonce());
                    w.u32(stream.chunk_size);
                    w.u64(stream.payload_len);
                    w.u64(stream.generation);
                    match stream.delta_base {
                        None => {
                            w.u8(0);
                        }
                        Some(base) => {
                            w.u8(1);
                            w.u64(base);
                        }
                    }
                    w.u32(stream.acked);
                }
            }
        }
        w.u32(self.pending_incoming.len() as u32);
        for (mr, (data, state, source)) in &self.pending_incoming {
            w.array(&mr.0);
            w.bytes(&data.to_bytes());
            w.bytes(state);
            w.u64(source.0);
        }
        w.u32(self.inbound.len() as u32);
        for (nonce, fsm) in &self.inbound {
            w.array(nonce);
            w.u64(fsm.source().0);
            w.array(&fsm.mr_enclave().0);
            w.bytes(&fsm.data().to_bytes());
            w.bytes(&fsm.assembler_bytes());
            w.u64(fsm.generation());
            write_opt(
                &mut w,
                fsm.delta_manifest().map(DeltaManifest::to_bytes).as_deref(),
            );
        }
        self.cache.encode(&mut w);
        let plaintext = w.finish();
        Ok(env.seal_data(
            sgx_sim::cpu::KeyPolicy::MrEnclave,
            Self::STATE_AAD,
            &plaintext,
        ))
    }

    pub(super) fn op_restore(
        &mut self,
        env: &mut EnclaveEnv<'_>,
        input: &[u8],
    ) -> Result<Vec<u8>, MigError> {
        let (plaintext, aad) = env.unseal_data(input)?;
        if aad != Self::STATE_AAD {
            return Err(MigError::Sgx(SgxError::Decode));
        }
        let mut r = WireReader::new(&plaintext);
        let seed: [u8; 32] = r.array()?;
        let credential = MeCredential::from_bytes(r.bytes()?)?;
        let operator_root = VerifyingKey(r.array()?);
        let ias_key = VerifyingKey(r.array()?);
        let policy = MigrationPolicy::from_bytes(r.bytes()?)?;
        let transfer = TransferConfig::decode(&mut r)?;
        let n_outgoing = r.u32()? as usize;
        let mut outgoing = HashMap::new();
        for _ in 0..n_outgoing {
            let mr = MrEnclave(r.array()?);
            let destination = MachineId(r.u64()?);
            let data = MigrationData::from_bytes(r.bytes()?)?;
            let state = r.bytes_vec()?;
            let stream = match r.u8()? {
                0 => None,
                1 => {
                    let nonce: TransferNonce = r.array()?;
                    let chunk_size = r.u32()?;
                    let payload_len = r.u64()?;
                    let generation = r.u64()?;
                    let delta_base = match r.u8()? {
                        0 => None,
                        1 => Some(r.u64()?),
                        _ => return Err(MigError::Sgx(SgxError::Decode)),
                    };
                    let acked = r.u32()?;
                    // Anything past the last ack may be lost in flight;
                    // resend from there.
                    Some(StreamProgress::restored(
                        nonce,
                        chunk_size,
                        payload_len,
                        generation,
                        delta_base,
                        acked,
                    ))
                }
                _ => return Err(MigError::Sgx(SgxError::Decode)),
            };
            // Not yet confirmed delivered: rewind to Idle so a retry
            // re-dispatches it (resuming the stream) over a fresh
            // channel.
            outgoing.insert(
                mr,
                OutgoingMigration {
                    destination,
                    data,
                    state: state.into(),
                    fsm: SenderFsm::Idle { stream },
                },
            );
        }
        let n_pending = r.u32()? as usize;
        let mut pending_incoming = HashMap::new();
        for _ in 0..n_pending {
            let mr = MrEnclave(r.array()?);
            let data = MigrationData::from_bytes(r.bytes()?)?;
            let state: Arc<[u8]> = r.bytes_vec()?.into();
            let source = MachineId(r.u64()?);
            pending_incoming.insert(mr, (data, state, source));
        }
        let n_inbound = r.u32()? as usize;
        let mut inbound_parts = Vec::with_capacity(n_inbound);
        for _ in 0..n_inbound {
            let nonce: TransferNonce = r.array()?;
            let source = MachineId(r.u64()?);
            let mr_enclave = MrEnclave(r.array()?);
            let data = MigrationData::from_bytes(r.bytes()?)?;
            let assembler = ChunkAssembler::from_bytes(r.bytes()?)?;
            let generation = r.u64()?;
            let manifest = match read_opt(&mut r)? {
                None => None,
                Some(bytes) => Some(DeltaManifest::from_bytes(&bytes)?),
            };
            inbound_parts.push((
                nonce, source, mr_enclave, data, assembler, generation, manifest,
            ));
        }
        let cache = GenerationCache::decode(&mut r)?;
        r.finish()?;

        let signing = SigningKey::from_seed(seed);
        if credential.me_key != signing.verifying_key() {
            return Err(MigError::PeerAuthenticationFailed(
                "restored credential does not match key",
            ));
        }
        credential.verify(&operator_root)?;

        // Inbound streams come back with their staging rebuilt: the
        // verified prefix is re-absorbed onto the (re-verified) base
        // when speculation is on and the base survived; otherwise the
        // stream falls back to the deferred-apply path.
        let mut inbound = HashMap::new();
        for (nonce, source, mr_enclave, data, assembler, generation, manifest) in inbound_parts {
            // The content-verifying lookup hashes the base; skip it when
            // speculation is off and the staging would be discarded.
            let base = transfer
                .speculative_restore
                .then(|| {
                    manifest
                        .as_ref()
                        .and_then(|m| cache.delta_base(&mr_enclave, m))
                        .map(|c| Arc::clone(&c.state))
                })
                .flatten();
            inbound.insert(
                nonce,
                ReceiverFsm::restore(
                    source,
                    mr_enclave,
                    data,
                    generation,
                    assembler,
                    manifest,
                    base.as_deref(),
                    transfer.speculative_restore,
                ),
            );
        }

        self.signing = Some(signing);
        self.config = Some(MeConfig {
            operator_root,
            ias_key,
            credential,
            policy,
            transfer,
        });
        self.outgoing = outgoing;
        self.pending_incoming = pending_incoming;
        self.inbound = inbound;
        self.cache = cache;
        self.out_streams.clear();
        self.out_manifests.clear();
        // Wire-layer state (adaptive links, scheduler rounds, cells) is
        // ephemeral: re-seeded from the provisioned config on the next
        // stream.
        self.shapers.clear();
        Ok(vec![])
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn entry(len: usize, last_used: u64) -> CachedGeneration {
        CachedGeneration {
            generation: 0,
            state: vec![0u8; len].into(),
            last_used,
        }
    }

    fn no_pins() -> HashSet<MrEnclave> {
        HashSet::new()
    }

    #[test]
    fn lru_eviction_respects_budget_and_recency() {
        let mut cache = HashMap::new();
        cache.insert(MrEnclave([1; 32]), entry(100, 1));
        cache.insert(MrEnclave([2; 32]), entry(100, 3));
        cache.insert(MrEnclave([3; 32]), entry(100, 2));
        evict_lru(&mut cache, 200, &no_pins());
        assert!(!cache.contains_key(&MrEnclave([1; 32])), "oldest evicted");
        assert!(cache.contains_key(&MrEnclave([2; 32])));
        assert!(cache.contains_key(&MrEnclave([3; 32])));
        // A touch (fresher tick) protects an entry from the next round.
        cache.get_mut(&MrEnclave([3; 32])).unwrap().last_used = 4;
        evict_lru(&mut cache, 100, &no_pins());
        assert!(cache.contains_key(&MrEnclave([3; 32])));
        assert_eq!(cache.len(), 1);
    }

    #[test]
    fn lru_eviction_drops_oversized_sole_entry() {
        let mut cache = HashMap::new();
        cache.insert(MrEnclave([1; 32]), entry(500, 1));
        evict_lru(&mut cache, 400, &no_pins());
        assert!(cache.is_empty(), "an entry larger than the budget goes too");
        // Zero entries never loop.
        evict_lru(&mut cache, 0, &no_pins());
    }

    #[test]
    fn lru_eviction_never_evicts_pinned_bases() {
        // An in-flight delta stream's base must survive even over
        // budget; the next-oldest unpinned entry goes instead, and if
        // everything left is pinned the budget is exceeded transiently.
        let mut cache = HashMap::new();
        cache.insert(MrEnclave([1; 32]), entry(100, 1)); // oldest, pinned
        cache.insert(MrEnclave([2; 32]), entry(100, 2));
        cache.insert(MrEnclave([3; 32]), entry(100, 3));
        let pinned: HashSet<MrEnclave> = [MrEnclave([1; 32])].into_iter().collect();
        evict_lru(&mut cache, 200, &pinned);
        assert!(cache.contains_key(&MrEnclave([1; 32])), "pinned survives");
        assert!(!cache.contains_key(&MrEnclave([2; 32])), "next LRU goes");
        evict_lru(&mut cache, 50, &pinned);
        assert!(
            cache.contains_key(&MrEnclave([1; 32])),
            "pinned survives even a budget it alone exceeds"
        );
        assert_eq!(cache.len(), 1);
    }

    #[test]
    fn generation_cache_touch_and_content_addressing() {
        let mut cache = GenerationCache::default();
        let state: Arc<[u8]> = vec![7u8; 8192].into();
        cache.insert(
            MrEnclave([1; 32]),
            4,
            Arc::clone(&state),
            u64::MAX,
            &no_pins(),
        );
        cache.touch(&MrEnclave([1; 32]));
        assert_eq!(cache.get(&MrEnclave([1; 32])).unwrap().last_used, 2);
        // delta_base is content-addressed: generation AND digest.
        let digests =
            crate::transfer::delta::PageDigests::compute(&state, crate::transfer::delta::PAGE_SIZE);
        let (manifest, _) = crate::transfer::delta::diff(&digests, 4, 5, &vec![8u8; 8192]);
        assert!(cache.delta_base(&MrEnclave([1; 32]), &manifest).is_some());
        let mut wrong_gen = manifest.clone();
        wrong_gen.base_generation = 9;
        assert!(cache.delta_base(&MrEnclave([1; 32]), &wrong_gen).is_none());
        let mut wrong_digest = manifest;
        wrong_digest.base_digest[0] ^= 1;
        assert!(cache
            .delta_base(&MrEnclave([1; 32]), &wrong_digest)
            .is_none());
    }
}
